// Benchmarks regenerating the cost profile of every table and figure in
// the paper's evaluation (Sec. IV), plus the ablations called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Naming: BenchmarkTable2_* measure the Table II architectures' forward
// cost; BenchmarkTable3_* measure one federated fine-tuning round per
// architecture; BenchmarkFig2_* one federated MLM pretraining round;
// BenchmarkFig3_* one full secure networked round. Absolute numbers
// reflect this reproduction's pure-Go CPU substrate, not the paper's GPUs;
// relative cost between models/schemes is the reproduction target.
package clinfl_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"clinfl/internal/data"
	"clinfl/internal/ehr"
	"clinfl/internal/experiments"
	"clinfl/internal/fl"
	"clinfl/internal/mlm"
	"clinfl/internal/model"
	"clinfl/internal/nn"
	"clinfl/internal/tensor"
	"clinfl/internal/token"
)

// benchCohort builds a small encoded ADR dataset shared by benchmarks.
func benchCohort(b *testing.B, n int) (data.Dataset, int) {
	b.Helper()
	cfg := ehr.DefaultConfig()
	cfg.Patients = n
	cfg.CorpusSentences = 1
	patients, err := ehr.GenerateCohort(cfg)
	if err != nil {
		b.Fatal(err)
	}
	streams := make([][]string, len(patients))
	for i, p := range patients {
		streams[i] = p.Tokens
	}
	vocab, err := token.BuildVocab(streams, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	tok, err := token.NewTokenizer(vocab, 24)
	if err != nil {
		b.Fatal(err)
	}
	ds := make(data.Dataset, len(patients))
	for i, p := range patients {
		ids, padMask := tok.Encode(p.Tokens)
		ds[i] = data.Example{IDs: ids, PadMask: padMask, Label: p.Outcome}
	}
	return ds, vocab.Size()
}

// benchModel instantiates a Table II architecture over the bench vocab.
func benchModel(b *testing.B, name string, vocabSize int) model.Classifier {
	b.Helper()
	spec, err := model.SpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	m, err := model.New(spec, vocabSize, 24, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- Table II: per-architecture inference cost ---

func benchmarkForward(b *testing.B, name string) {
	ds, vocab := benchCohort(b, 64)
	m := benchModel(b, name, vocab)
	batch := []data.Example(ds[:16])
	// One warmup pass grows the model's recycled eval context (arena slabs,
	// tape node pool) to its working-set size, so the timed iterations
	// measure the steady state the serving path actually runs in.
	if _, err := m.Predict(batch); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nn.NumParams(m.Params())), "params")
}

func BenchmarkTable2_ForwardLSTM(b *testing.B)     { benchmarkForward(b, "lstm") }
func BenchmarkTable2_ForwardBERTMini(b *testing.B) { benchmarkForward(b, "bert-mini") }
func BenchmarkTable2_ForwardBERT(b *testing.B)     { benchmarkForward(b, "bert") }

// --- Table III: one federated fine-tuning round per architecture ---

func benchmarkFLRound(b *testing.B, name string, clients int, perClient int) {
	ds, vocab := benchCohort(b, clients*perClient+16)
	shards, err := data.PartitionBalanced(ds[:clients*perClient], clients)
	if err != nil {
		b.Fatal(err)
	}
	executors := make([]fl.Executor, clients)
	var ref model.Classifier
	for i, shard := range shards {
		m := benchModel(b, name, vocab)
		if i == 0 {
			ref = m
		}
		exec, err := fl.NewClassifierExecutor(fmt.Sprintf("site-%d", i), m, shard, nil,
			fl.LocalConfig{Epochs: 1, LR: 1e-3, BatchSize: 16, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		executors[i] = exec
	}
	initial := nn.SnapshotWeights(ref.Params())
	// Warmup round: grows each executor's persistent Trainer (tapes, arenas,
	// gradient buffers) so the timed rounds measure steady-state cost.
	if err := runFLRound(executors, initial); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runFLRound(executors, initial); err != nil {
			b.Fatal(err)
		}
	}
}

func runFLRound(executors []fl.Executor, initial map[string]*tensor.Matrix) error {
	ctrl, err := fl.NewController(fl.ControllerConfig{Rounds: 1}, executors)
	if err != nil {
		return err
	}
	_, err = ctrl.Run(context.Background(), initial)
	return err
}

func BenchmarkTable3_FLRoundLSTM(b *testing.B)     { benchmarkFLRound(b, "lstm", 4, 16) }
func BenchmarkTable3_FLRoundBERTMini(b *testing.B) { benchmarkFLRound(b, "bert-mini", 4, 16) }
func BenchmarkTable3_FLRoundBERT(b *testing.B)     { benchmarkFLRound(b, "bert", 4, 8) }

// --- Fig. 2: one federated MLM pretraining round ---

func BenchmarkFig2_MLMRound(b *testing.B) {
	cfg := ehr.DefaultConfig()
	cfg.CorpusSentences = 80
	corpus, err := ehr.GenerateCorpus(cfg)
	if err != nil {
		b.Fatal(err)
	}
	vocab, err := token.BuildVocab(corpus, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	tok, err := token.NewTokenizer(vocab, 20)
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([][]int, len(corpus))
	for i, sent := range corpus {
		ids, _ := tok.Encode(sent)
		seqs[i] = ids
	}
	const clients = 4
	maskCfg := mlm.DefaultConfig(vocab.Size())
	executors := make([]fl.Executor, clients)
	var ref *model.BERT
	for i := 0; i < clients; i++ {
		spec := model.SpecBERTMini
		mc, err := model.New(spec, vocab.Size(), 20, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		bm := mc.(*model.BERT)
		if i == 0 {
			ref = bm
		}
		lo, hi := i*len(seqs)/clients, (i+1)*len(seqs)/clients
		exec, err := fl.NewMLMExecutor(fmt.Sprintf("site-%d", i), bm, bm.Params(), seqs[lo:hi], maskCfg,
			fl.LocalConfig{Epochs: 1, LR: 1e-3, BatchSize: 16, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		executors[i] = exec
	}
	initial := nn.SnapshotWeights(ref.Params())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl, err := fl.NewController(fl.ControllerConfig{Rounds: 1}, executors)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctrl.Run(context.Background(), initial); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 3: full secure networked lifecycle (provision + TLS + rounds) ---

func BenchmarkFig3_SecureDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(context.Background(), io.Discard, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblation_AggregationFedAvg vs Mean: aggregation cost over
// realistic LSTM-sized updates.
func benchmarkAggregation(b *testing.B, agg fl.Aggregator) {
	_, vocab := benchCohort(b, 32)
	const clients = 8
	updates := make([]*fl.ClientUpdate, clients)
	for i := range updates {
		m := benchModel(b, "lstm", vocab)
		updates[i] = &fl.ClientUpdate{
			ClientName: fmt.Sprintf("site-%d", i),
			Weights:    nn.SnapshotWeights(m.Params()),
			NumSamples: 10 + i,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Aggregate(updates); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_AggregationFedAvg(b *testing.B) { benchmarkAggregation(b, fl.FedAvg{}) }
func BenchmarkAblation_AggregationMean(b *testing.B)   { benchmarkAggregation(b, fl.MeanAggregator{}) }

// BenchmarkAblation_LocalEpochs: cost of one round as local epochs grow.
func benchmarkLocalEpochs(b *testing.B, epochs int) {
	ds, vocab := benchCohort(b, 80)
	m := benchModel(b, "lstm", vocab)
	exec, err := fl.NewClassifierExecutor("site", m, ds[:64], nil,
		fl.LocalConfig{Epochs: epochs, LR: 1e-3, BatchSize: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	initial := nn.SnapshotWeights(m.Params())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.ExecuteRound(i, initial); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_LocalEpochs1(b *testing.B) { benchmarkLocalEpochs(b, 1) }
func BenchmarkAblation_LocalEpochs2(b *testing.B) { benchmarkLocalEpochs(b, 2) }
func BenchmarkAblation_LocalEpochs4(b *testing.B) { benchmarkLocalEpochs(b, 4) }

// BenchmarkAblation_Matmul: the kernel the whole stack sits on, at the
// LSTM gate-projection shape (batch x hidden by hidden x 4*hidden).
func BenchmarkAblation_Matmul(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := rng.Normal(32, 128, 0, 1)
	w := rng.Normal(128, 512, 0, 1)
	out := tensor.New(32, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMulInto(out, x, w); err != nil {
			b.Fatal(err)
		}
	}
	flops := float64(2 * 32 * 128 * 512)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// --- Per-kernel GEMM microbenchmarks (BENCH_kernels.json) ---
//
// One benchmark per hot shape, named BenchmarkGEMM_{m}x{k}x{n}: the BERT
// attention projection (16×128·128x128), the BERT FFN up-projection
// (16×128·128x512), the LSTM gate projection (32×128·128x512), a
// batch-heavy attention shape (64×128·128x128), and the BERT-mini FFN
// (16×50·50x200). Each reports GFLOP/s so kernel-level changes are
// visible without the model stack on top.

func benchmarkGEMM(b *testing.B, m, k, n int) {
	rng := tensor.NewRNG(1)
	x := rng.Normal(m, k, 0, 1)
	w := rng.Normal(k, n, 0, 1)
	out := tensor.New(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMulInto(out, x, w); err != nil {
			b.Fatal(err)
		}
	}
	flops := float64(2 * m * k * n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGEMM_16x128x128(b *testing.B) { benchmarkGEMM(b, 16, 128, 128) }
func BenchmarkGEMM_16x128x512(b *testing.B) { benchmarkGEMM(b, 16, 128, 512) }
func BenchmarkGEMM_32x128x512(b *testing.B) { benchmarkGEMM(b, 32, 128, 512) }
func BenchmarkGEMM_64x128x128(b *testing.B) { benchmarkGEMM(b, 64, 128, 128) }
func BenchmarkGEMM_16x50x200(b *testing.B)  { benchmarkGEMM(b, 16, 50, 200) }

// Quantized eval kernels at the LSTM gate shape, for tracking the
// reduced-precision Validate/Predict path next to the dense kernel.
func benchmarkGEMMPrec(b *testing.B, prec tensor.Precision) {
	const m, k, n = 32, 128, 512
	rng := tensor.NewRNG(1)
	x := rng.Normal(m, k, 0, 1)
	w := rng.Normal(k, n, 0, 1)
	out := tensor.New(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.EvalMatMul(out, x, w, prec); err != nil {
			b.Fatal(err)
		}
	}
	flops := float64(2 * m * k * n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGEMM_F16_32x128x512(b *testing.B)  { benchmarkGEMMPrec(b, tensor.PrecF16) }
func BenchmarkGEMM_Int8_32x128x512(b *testing.B) { benchmarkGEMMPrec(b, tensor.PrecInt8) }

// BenchmarkAblation_PrivacyFilters: cost of the DP filter chain (norm cap
// + Gaussian noise) over an LSTM-sized update.
func BenchmarkAblation_PrivacyFilters(b *testing.B) {
	_, vocab := benchCohort(b, 32)
	m := benchModel(b, "lstm", vocab)
	global := nn.SnapshotWeights(m.Params())
	filters := []fl.Filter{
		fl.NormCapFilter{Cap: 1},
		fl.GaussianNoiseFilter{Sigma: 0.01, RNG: tensor.NewRNG(1)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		update := &fl.ClientUpdate{
			ClientName: "c", Weights: nn.SnapshotWeights(m.Params()), NumSamples: 1,
		}
		for _, f := range filters {
			if err := f.Apply(update, global); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblation_WeightSerialization: parameter-exchange encode/decode
// cost (the FL wire path).
func BenchmarkAblation_WeightSerialization(b *testing.B) {
	_, vocab := benchCohort(b, 32)
	m := benchModel(b, "lstm", vocab)
	weights := nn.SnapshotWeights(m.Params())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := fl.EncodeWeights(weights)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fl.DecodeWeights(blob); err != nil {
			b.Fatal(err)
		}
	}
}
