// Benchmarks for the durability tax: what one fsync'd WAL append costs in
// isolation (BenchmarkWALAppend*, with the realistic payload of a full
// LSTM client update — CI gates BenchmarkWALAppend at 5% of the LSTM
// round so durability stays off the hot path), and what a whole
// WAL-backed federated round costs relative to the identical round
// without one (BenchmarkTable3_FLRoundDurableLSTM vs
// BenchmarkTable3_FLRoundLSTM, tracked in the scoreboard JSON; the
// ratio is core-count dependent, see DESIGN.md).
package clinfl_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"clinfl/internal/data"
	"clinfl/internal/fl"
	"clinfl/internal/fl/durable"
	"clinfl/internal/model"
	"clinfl/internal/nn"
	"clinfl/internal/tensor"
)

// benchWALWeights is a realistic update payload: the full LSTM classifier
// weight map the Table III round ships per client.
func benchWALWeights(b *testing.B) map[string]*tensor.Matrix {
	b.Helper()
	_, vocab := benchCohort(b, 16)
	return nn.SnapshotWeights(benchModel(b, "lstm", vocab).Params())
}

func benchmarkWALAppend(b *testing.B, opts durable.Options) {
	weights := benchWALWeights(b)
	wal, err := durable.Open(filepath.Join(b.TempDir(), "bench.wal"), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer wal.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wal.Append(&durable.Record{
			Type: durable.RecUpdate, Round: i, Client: "site-0",
			NumSamples: 64, TrainLoss: 0.5, PayloadBytes: 1 << 16,
			Weights: weights,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend is the blocking durable append: encode, CRC, write,
// fsync before return.
func BenchmarkWALAppend(b *testing.B) { benchmarkWALAppend(b, durable.Options{}) }

// BenchmarkWALAppendNoSync isolates the encode+CRC+write cost from the
// fsync, which dominates the durable variant.
func BenchmarkWALAppendNoSync(b *testing.B) { benchmarkWALAppend(b, durable.Options{NoSync: true}) }

// BenchmarkWALAppendLazy is the group-committed path the round gather
// actually uses: the caller pays encode+write, the background syncer
// batches the fsyncs, and one Sync barrier at the end settles the tail —
// the per-record cost the <5% round-overhead budget rides on.
func BenchmarkWALAppendLazy(b *testing.B) {
	weights := benchWALWeights(b)
	wal, err := durable.Open(filepath.Join(b.TempDir(), "bench.wal"), durable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer wal.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wal.AppendUpdate(i, "site-0", 64, 0.5, 1<<16, weights); err != nil {
			b.Fatal(err)
		}
	}
	if err := wal.Sync(); err != nil {
		b.Fatal(err)
	}
}

// benchmarkFLRoundDurable mirrors benchmarkFLRound with a group-commit
// WAL attached to the controller. One log is shared across iterations,
// as in a real multi-round run: each timed round pays its lazy record
// writes, while the background syncer flushes the previous round's burst
// under the current round's training — the steady-state pipeline the <5%
// overhead budget is about. The final tail flush settles in Close, off
// the timer (it is one fsync amortized over the whole run).
func benchmarkFLRoundDurable(b *testing.B, name string, clients, perClient int) {
	ds, vocab := benchCohort(b, clients*perClient+16)
	shards, err := data.PartitionBalanced(ds[:clients*perClient], clients)
	if err != nil {
		b.Fatal(err)
	}
	executors := make([]fl.Executor, clients)
	var ref model.Classifier
	for i, shard := range shards {
		m := benchModel(b, name, vocab)
		if i == 0 {
			ref = m
		}
		exec, err := fl.NewClassifierExecutor(fmt.Sprintf("site-%d", i), m, shard, nil,
			fl.LocalConfig{Epochs: 1, LR: 1e-3, BatchSize: 16, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		executors[i] = exec
	}
	initial := nn.SnapshotWeights(ref.Params())
	wal, err := durable.Open(filepath.Join(b.TempDir(), "rounds.wal"), durable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	runDurable := func() error {
		ctrl, err := fl.NewController(fl.ControllerConfig{Rounds: 1, WAL: wal}, executors)
		if err != nil {
			return err
		}
		_, err = ctrl.Run(context.Background(), initial)
		return err
	}
	// Warmup, as in the plain variant: grow each executor's persistent
	// trainer so timed rounds measure steady state.
	if err := runDurable(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runDurable(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := wal.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable3_FLRoundDurableLSTM(b *testing.B) {
	benchmarkFLRoundDurable(b, "lstm", 4, 16)
}

func BenchmarkTable3_FLRoundDurableBERT(b *testing.B) {
	benchmarkFLRoundDurable(b, "bert", 4, 8)
}
