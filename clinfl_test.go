package clinfl_test

import (
	"context"
	"testing"

	"clinfl"
	"clinfl/internal/ehr"
)

// TestPublicAPIFederatedRun exercises the facade end to end at tiny scale.
func TestPublicAPIFederatedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := clinfl.DefaultConfig(clinfl.TaskFinetune, clinfl.ModeFederated, "lstm")
	cfg.TrainSize, cfg.ValidSize = 64, 32
	cfg.Rounds = 2
	cfg.MaxLen = 12
	cfg.EHR = ehr.Config{
		Seed: 1, Patients: 200, TargetPositiveRate: 0.211,
		CorpusSentences: 10, LabelNoise: 0.05,
		MinVisitTokens: 6, MaxVisitTokens: 10,
	}
	rep, err := clinfl.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy <= 0 || rep.Accuracy > 1 {
		t.Fatalf("accuracy %v", rep.Accuracy)
	}
	if rep.Config.Mode != clinfl.ModeFederated {
		t.Fatal("report lost its config")
	}
}

func TestPublicAPIRejectsBadConfig(t *testing.T) {
	cfg := clinfl.DefaultConfig(clinfl.TaskFinetune, clinfl.ModeFederated, "lstm")
	cfg.Rounds = 0
	if _, err := clinfl.Run(context.Background(), cfg); err == nil {
		t.Fatal("want config error")
	}
}

func TestDefaultConfigPerModel(t *testing.T) {
	for _, m := range []string{"lstm", "bert", "bert-mini"} {
		cfg := clinfl.DefaultConfig(clinfl.TaskFinetune, clinfl.ModeCentralized, m)
		if cfg.ModelName != m || cfg.Clients != 8 || cfg.LR <= 0 {
			t.Fatalf("default config for %s malformed: %+v", m, cfg)
		}
	}
}
