#!/usr/bin/env sh
# Checks every relative link in the repo's tracked markdown files:
# [text](target) must name a file or directory that exists, resolved
# against the linking file's own directory (anchors and external
# http/https/mailto links are skipped). Dependency-free — POSIX sh plus
# git/grep/sed only — so the CI docs job needs no link-checker install.
#
# Usage: scripts/check_links.sh [file.md ...]   (default: all tracked *.md)
#
# Exit status: 0 when every relative link resolves, 1 otherwise.
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
    files="$*"
else
    files="$(git ls-files '*.md')"
fi

status=0
for f in $files; do
    dir="$(dirname "$f")"
    # One "](target)" match per line; targets in this repo never contain
    # spaces or nested parentheses, which keeps the extraction a grep.
    links="$(grep -o '](\([^)]*\))' "$f" 2>/dev/null | sed 's/^](//; s/)$//')" || continue
    for l in $links; do
        case "$l" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        target="${l%%#*}" # strip any #anchor
        [ -z "$target" ] && continue
        if [ ! -e "$dir/$target" ]; then
            echo "check_links: $f links to \"$l\" but $dir/$target does not exist" >&2
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "check_links: all relative markdown links resolve"
fi
exit "$status"
