#!/usr/bin/env sh
# Runs the Table II / Table III scoreboard benchmarks with -benchmem and
# records ns/op, B/op and allocs/op as BENCH_arena.json at the repo root,
# so both the speed and the allocation discipline of the training hot path
# are tracked PR over PR. BENCH_batched.json (the PR 1 scoreboard) is kept
# frozen as the previous reference point.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-3x}"
OUT="BENCH_arena.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'BenchmarkTable2_ForwardBERT|BenchmarkTable3_FLRoundBERT' \
  -benchmem -benchtime "$BENCHTIME" -count 1 . | tee "$RAW"

{
  printf '{\n'
  printf '  "generated_by": "scripts/bench.sh",\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "benchtime": "%s",\n' "$BENCHTIME"
  printf '  "cpu": "%s",\n' "$(grep -m1 '^cpu:' "$RAW" | cut -d: -f2- | sed 's/^ *//')"
  # Pre-batching seed measurement (per-sequence BERT path, scalar matmul
  # kernels), taken on the reference single-core Xeon 2.10GHz box; kept here
  # so every regeneration of the JSON preserves the original baseline.
  printf '  "seed_baseline_ns_per_op": {\n'
  printf '    "BenchmarkTable2_ForwardBERTMini": 60791589,\n'
  printf '    "BenchmarkTable2_ForwardBERT": 622974650,\n'
  printf '    "BenchmarkTable3_FLRoundBERTMini": 864552461,\n'
  printf '    "BenchmarkTable3_FLRoundBERT": 6958233067\n'
  printf '  },\n'
  # PR 1 (batched path, pre-arena) reference on the same box, including the
  # allocation profile the arena work is measured against; see
  # BENCH_batched.json for the full PR 1 scoreboard.
  printf '  "pr1_batched_baseline": {\n'
  printf '    "BenchmarkTable2_ForwardBERT": {"ns_per_op": 389830663, "bytes_per_op": 189959456, "allocs_per_op": 4443},\n'
  printf '    "BenchmarkTable3_FLRoundBERT": {"ns_per_op": 3571771922, "bytes_per_op": 1714803997, "allocs_per_op": 43272}\n'
  printf '  },\n'
  printf '  "results": {\n'
  grep '^Benchmark' "$RAW" | awk '
    {
      gsub(/[ \t]+/, " ")
      n = $1; sub(/-[0-9]+$/, "", n)
      ns = $3
      bytes = "null"; allocs = "null"
      for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
      }
      lines[++cnt] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", n, ns, bytes, allocs)
    }
    END {
      for (i = 1; i <= cnt; i++) printf "%s%s\n", lines[i], (i < cnt ? "," : "")
    }'
  printf '  }\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
