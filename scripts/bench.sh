#!/usr/bin/env sh
# Runs the Table II / Table III scoreboard benchmarks with -benchmem and
# records ns/op, B/op and allocs/op as BENCH_parallel.json at the repo
# root, so both the speed and the allocation discipline of the training
# hot path are tracked PR over PR. A second pass sweeps -cpu 1,2,4 into a
# "cpu_scaling" block (keys keep the go-test -N suffix) so the fork-join
# runtime's scaling is measured, not assumed. BENCH_batched.json (PR 1)
# and BENCH_arena.json (PR 2) are kept frozen as previous reference
# points.
#
# Usage: scripts/bench.sh [benchtime] [cpus]   (default 3x and 1,2,4)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-3x}"
CPUS="${2:-1,2,4}"
OUT="BENCH_parallel.json"
RAW="$(mktemp)"
RAWCPU="$(mktemp)"
trap 'rm -f "$RAW" "$RAWCPU"' EXIT

# Pass 1: the scoreboard at the machine's default GOMAXPROCS (the numbers
# CI gates on, comparable to previous scoreboards).
go test -run '^$' \
  -bench 'BenchmarkTable2_ForwardBERT|BenchmarkTable3_FLRoundBERT' \
  -benchmem -benchtime "$BENCHTIME" -count 1 . | tee "$RAW"

# Pass 2: CPU scaling of the two headline benchmarks. The shared sched
# pool resizes with GOMAXPROCS, so each -cpu value exercises the pool at
# that width.
go test -run '^$' \
  -bench 'BenchmarkTable2_ForwardBERT$|BenchmarkTable3_FLRoundBERT$' \
  -benchmem -benchtime "$BENCHTIME" -cpu "$CPUS" -count 1 . | tee "$RAWCPU"

# results_json <file> <strip> emits one "name": {...} line per benchmark;
# strip=1 removes go test's -N GOMAXPROCS suffix (default pass), strip=0
# keeps it (cpu-scaling pass, where the suffix is the datum).
results_json() {
    grep '^Benchmark' "$1" | awk -v strip="$2" '
    {
      gsub(/[ \t]+/, " ")
      n = $1
      if (strip) sub(/-[0-9]+$/, "", n)
      ns = $3
      bytes = "null"; allocs = "null"
      for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
      }
      lines[++cnt] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", n, ns, bytes, allocs)
    }
    END {
      for (i = 1; i <= cnt; i++) printf "%s%s\n", lines[i], (i < cnt ? "," : "")
    }'
}

{
  printf '{\n'
  printf '  "generated_by": "scripts/bench.sh",\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "benchtime": "%s",\n' "$BENCHTIME"
  printf '  "cpu": "%s",\n' "$(grep -m1 '^cpu:' "$RAW" | cut -d: -f2- | sed 's/^ *//')"
  printf '  "num_cpu": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
  # go test suffixes each benchmark with -GOMAXPROCS; read it back from
  # the default pass so the JSON records the width the scoreboard ran at.
  printf '  "gomaxprocs": %s,\n' "$(grep -m1 '^Benchmark' "$RAW" | awk '{n=$1; if (match(n, /-[0-9]+$/)) print substr(n, RSTART+1); else print 1}')"
  printf '  "cpu_matrix": "%s",\n' "$CPUS"
  # Pre-batching seed measurement (per-sequence BERT path, scalar matmul
  # kernels), taken on the reference single-core Xeon 2.10GHz box; kept
  # here so every regeneration of the JSON preserves the original
  # baseline.
  printf '  "seed_baseline_ns_per_op": {\n'
  printf '    "BenchmarkTable2_ForwardBERTMini": 60791589,\n'
  printf '    "BenchmarkTable2_ForwardBERT": 622974650,\n'
  printf '    "BenchmarkTable3_FLRoundBERTMini": 864552461,\n'
  printf '    "BenchmarkTable3_FLRoundBERT": 6958233067\n'
  printf '  },\n'
  # PR 1 (batched path) and PR 2 (arena path) references on the same box;
  # see BENCH_batched.json / BENCH_arena.json for the full scoreboards.
  printf '  "pr1_batched_baseline": {\n'
  printf '    "BenchmarkTable2_ForwardBERT": {"ns_per_op": 389830663, "bytes_per_op": 189959456, "allocs_per_op": 4443},\n'
  printf '    "BenchmarkTable3_FLRoundBERT": {"ns_per_op": 3571771922, "bytes_per_op": 1714803997, "allocs_per_op": 43272}\n'
  printf '  },\n'
  printf '  "pr2_arena_baseline": {\n'
  printf '    "BenchmarkTable2_ForwardBERT": {"ns_per_op": 319339288, "bytes_per_op": 24621, "allocs_per_op": 246},\n'
  printf '    "BenchmarkTable3_FLRoundBERT": {"ns_per_op": 2430453728, "bytes_per_op": 140832424, "allocs_per_op": 5688}\n'
  printf '  },\n'
  printf '  "results": {\n'
  results_json "$RAW" 1
  printf '  },\n'
  printf '  "cpu_scaling": {\n'
  results_json "$RAWCPU" 0
  printf '  }\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
