#!/usr/bin/env sh
# Runs the Table II / Table III scoreboard benchmarks and records the
# results as BENCH_batched.json at the repo root, so the perf trajectory of
# the batched execution path is tracked PR over PR.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-3x}"
OUT="BENCH_batched.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'BenchmarkTable2_ForwardBERT|BenchmarkTable3_FLRoundBERT' \
  -benchtime "$BENCHTIME" -count 1 . | tee "$RAW"

{
  printf '{\n'
  printf '  "generated_by": "scripts/bench.sh",\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "benchtime": "%s",\n' "$BENCHTIME"
  printf '  "cpu": "%s",\n' "$(grep -m1 '^cpu:' "$RAW" | cut -d: -f2- | sed 's/^ *//')"
  # Pre-batching seed measurement (per-sequence BERT path, scalar matmul
  # kernels), taken on the reference single-core Xeon 2.10GHz box; kept here
  # so every regeneration of the JSON preserves the original baseline.
  printf '  "seed_baseline_ns_per_op": {\n'
  printf '    "BenchmarkTable2_ForwardBERTMini": 60791589,\n'
  printf '    "BenchmarkTable2_ForwardBERT": 622974650,\n'
  printf '    "BenchmarkTable3_FLRoundBERTMini": 864552461,\n'
  printf '    "BenchmarkTable3_FLRoundBERT": 6958233067\n'
  printf '  },\n'
  printf '  "results_ns_per_op": {\n'
  grep '^Benchmark' "$RAW" | awk '
    { gsub(/[ \t]+/, " "); n = $1; sub(/-[0-9]+$/, "", n); ns = $3 }
    { lines[NR] = sprintf("    \"%s\": %s", n, ns) }
    END {
      for (i = 1; i <= NR; i++) printf "%s%s\n", lines[i], (i < NR ? "," : "")
    }'
  printf '  }\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
