#!/usr/bin/env sh
# Runs the Table II / Table III scoreboard benchmarks with -benchmem and
# records ns/op, B/op and allocs/op as BENCH_parallel.json at the repo
# root, so both the speed and the allocation discipline of the training
# hot path are tracked PR over PR. A second pass sweeps -cpu 1,2,4 into a
# "cpu_scaling" block (keys keep the go-test -N suffix) so the fork-join
# runtime's scaling is measured, not assumed. BENCH_batched.json (PR 1)
# and BENCH_arena.json (PR 2) are kept frozen as previous reference
# points.
#
# A third pass runs the per-kernel GEMM microbenchmarks (plus the
# scoreboard headliners already measured in pass 1) into
# BENCH_kernels.json, keyed by the GOAMD64 level the binary was built at,
# so the scalar and FMA kernel variants are tracked separately.
#
# Usage: scripts/bench.sh [benchtime] [cpus]   (default 3x and 1,2,4)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-3x}"
CPUS="${2:-1,2,4}"
OUT="BENCH_parallel.json"
KOUT="BENCH_kernels.json"
RAW="$(mktemp)"
RAWCPU="$(mktemp)"
RAWK="$(mktemp)"
trap 'rm -f "$RAW" "$RAWCPU" "$RAWK"' EXIT

# Pass 1: the scoreboard at the machine's default GOMAXPROCS (the numbers
# CI gates on, comparable to previous scoreboards).
go test -run '^$' \
  -bench 'BenchmarkTable2_ForwardBERT|BenchmarkTable3_FLRoundBERT' \
  -benchmem -benchtime "$BENCHTIME" -count 1 . | tee "$RAW"

# Pass 1b: the durability, reconciliation and streaming-tier taxes, at a
# fixed iteration count so the ratios are stable even when the scoreboard
# pass runs a 1x CI smoke. CI gates BenchmarkWALAppend (one blocking
# fsync'd record) at 5% of the LSTM round, the reconcile-mode round
# (health monitor + work queue on a round where nothing fails) at 2% of
# the plain one, and the hier-tier round (expansion folds + big.Float
# finalize) at 5% of its identical flat control round via bench_check's
# A/B mode; the
# plain-vs-WAL round pair is tracked alongside as an observable of the
# end-to-end group-commit pipeline (ungated — the ratio depends on
# whether a spare core exists to absorb writeback, see DESIGN.md).
RAWWAL="$(mktemp)"
trap 'rm -f "$RAW" "$RAWCPU" "$RAWK" "$RAWWAL"' EXIT
go test -run '^$' \
  -bench 'BenchmarkTable3_FLRoundLSTM$|BenchmarkTable3_FLRoundDurableLSTM$|BenchmarkTable3_FLRoundReconcileLSTM$|BenchmarkTable3_FLRoundHierLSTM$|BenchmarkTable3_FLRoundFlatLSTM$|BenchmarkWALAppend' \
  -benchmem -benchtime 5x -count 1 . | tee "$RAWWAL"

# Pass 2: CPU scaling of the two headline benchmarks. The shared sched
# pool resizes with GOMAXPROCS, so each -cpu value exercises the pool at
# that width.
go test -run '^$' \
  -bench 'BenchmarkTable2_ForwardBERT$|BenchmarkTable3_FLRoundBERT$' \
  -benchmem -benchtime "$BENCHTIME" -cpu "$CPUS" -count 1 . | tee "$RAWCPU"

# Pass 3: per-kernel GEMM microbenchmarks for BENCH_kernels.json. GEMM
# iterations are microseconds, so a fixed higher iteration count keeps the
# GFLOP/s figures stable regardless of the scoreboard benchtime.
go test -run '^$' \
  -bench 'BenchmarkGEMM_|BenchmarkAblation_Matmul$' \
  -benchtime 200x -count 1 . | tee "$RAWK"

# results_json <file> <strip> emits one "name": {...} line per benchmark;
# strip=1 removes go test's -N GOMAXPROCS suffix (default pass), strip=0
# keeps it (cpu-scaling pass, where the suffix is the datum).
results_json() {
    grep '^Benchmark' "$1" | awk -v strip="$2" '
    {
      gsub(/[ \t]+/, " ")
      n = $1
      if (strip) sub(/-[0-9]+$/, "", n)
      ns = $3
      bytes = "null"; allocs = "null"
      for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
      }
      lines[++cnt] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", n, ns, bytes, allocs)
    }
    END {
      for (i = 1; i <= cnt; i++) printf "%s%s\n", lines[i], (i < cnt ? "," : "")
    }'
}

{
  printf '{\n'
  printf '  "generated_by": "scripts/bench.sh",\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "benchtime": "%s",\n' "$BENCHTIME"
  printf '  "cpu": "%s",\n' "$(grep -m1 '^cpu:' "$RAW" | cut -d: -f2- | sed 's/^ *//')"
  printf '  "num_cpu": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
  # go test suffixes each benchmark with -GOMAXPROCS; read it back from
  # the default pass so the JSON records the width the scoreboard ran at.
  printf '  "gomaxprocs": %s,\n' "$(grep -m1 '^Benchmark' "$RAW" | awk '{n=$1; if (match(n, /-[0-9]+$/)) print substr(n, RSTART+1); else print 1}')"
  printf '  "cpu_matrix": "%s",\n' "$CPUS"
  # Pre-batching seed measurement (per-sequence BERT path, scalar matmul
  # kernels), taken on the reference single-core Xeon 2.10GHz box; kept
  # here so every regeneration of the JSON preserves the original
  # baseline.
  printf '  "seed_baseline_ns_per_op": {\n'
  printf '    "BenchmarkTable2_ForwardBERTMini": 60791589,\n'
  printf '    "BenchmarkTable2_ForwardBERT": 622974650,\n'
  printf '    "BenchmarkTable3_FLRoundBERTMini": 864552461,\n'
  printf '    "BenchmarkTable3_FLRoundBERT": 6958233067\n'
  printf '  },\n'
  # PR 1 (batched path) and PR 2 (arena path) references on the same box;
  # see BENCH_batched.json / BENCH_arena.json for the full scoreboards.
  printf '  "pr1_batched_baseline": {\n'
  printf '    "BenchmarkTable2_ForwardBERT": {"ns_per_op": 389830663, "bytes_per_op": 189959456, "allocs_per_op": 4443},\n'
  printf '    "BenchmarkTable3_FLRoundBERT": {"ns_per_op": 3571771922, "bytes_per_op": 1714803997, "allocs_per_op": 43272}\n'
  printf '  },\n'
  printf '  "pr2_arena_baseline": {\n'
  printf '    "BenchmarkTable2_ForwardBERT": {"ns_per_op": 319339288, "bytes_per_op": 24621, "allocs_per_op": 246},\n'
  printf '    "BenchmarkTable3_FLRoundBERT": {"ns_per_op": 2430453728, "bytes_per_op": 140832424, "allocs_per_op": 5688}\n'
  printf '  },\n'
  printf '  "results": {\n'
  results_json "$RAW" 1 | sed 's/}$/},/'
  results_json "$RAWWAL" 1
  printf '  },\n'
  printf '  "cpu_scaling": {\n'
  results_json "$RAWCPU" 0
  printf '  }\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"

# kernels_json emits one "name": {...} line per GEMM benchmark, keeping
# the GFLOP/s custom metric next to ns/op.
kernels_json() {
    grep '^Benchmark' "$1" | awk '
    {
      gsub(/[ \t]+/, " ")
      n = $1
      sub(/-[0-9]+$/, "", n)
      ns = $3
      gf = "null"
      for (i = 4; i <= NF; i++) {
        if ($(i) == "GFLOP/s") gf = $(i-1)
      }
      lines[++cnt] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"gflops\": %s}", n, ns, gf)
    }
    END {
      for (i = 1; i <= cnt; i++) printf "%s%s\n", lines[i], (i < cnt ? "," : "")
    }'
}

{
  printf '{\n'
  printf '  "generated_by": "scripts/bench.sh",\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "cpu": "%s",\n' "$(grep -m1 '^cpu:' "$RAWK" | cut -d: -f2- | sed 's/^ *//')"
  printf '  "num_cpu": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
  # The GOAMD64 level the benchmark binary was compiled at selects the
  # kernel variant (v1/v2 scalar, v3+ FMA row-pair); track it so scalar
  # and FMA numbers are never conflated.
  printf '  "goamd64": "%s",\n' "${GOAMD64:-v1}"
  # PR 4 scoreboard on the reference single-core Xeon 2.10GHz box (from
  # BENCH_parallel.json at the PR 5 seed): what this PR's kernels are
  # measured against.
  printf '  "pr4_baseline_ns_per_op": {\n'
  printf '    "BenchmarkTable2_ForwardBERT": 325681648,\n'
  printf '    "BenchmarkTable3_FLRoundBERT": 2456765299,\n'
  printf '    "BenchmarkAblation_Matmul_gflops": 6.3\n'
  printf '  },\n'
  # Per-variant reference numbers measured on the same box while
  # calibrating this PR (see DESIGN.md "Kernel calibration"): the default
  # v1 build streams scalar kernels at the FP-port bound; a GOAMD64=v3
  # build swaps in the FMA row-pair kernel.
  printf '  "variant_reference": {\n'
  printf '    "scalar_v1": {"BenchmarkTable2_ForwardBERT_ns": 347000000, "BenchmarkAblation_Matmul_gflops": 6.8},\n'
  printf '    "fma_v3":    {"BenchmarkTable2_ForwardBERT_ns": 286000000, "BenchmarkAblation_Matmul_gflops": 9.85}\n'
  printf '  },\n'
  # Scoreboard headliners from pass 1, for gating kernels against the PR 4
  # baseline in the same file.
  printf '  "results": {\n'
  results_json "$RAW" 1 | sed 's/}$/},/'
  kernels_json "$RAWK"
  printf '  }\n'
  printf '}\n'
} > "$KOUT"

echo "wrote $KOUT"
