#!/usr/bin/env sh
# Compares a freshly generated bench scoreboard (BENCH_parallel.json, or
# any earlier-generation file with a "results" block) against a baseline
# copy and fails if any named benchmark regressed by more than the
# allowed percentage. Used by the CI bench-smoke job to gate PRs on the
# training hot path:
#
#   scripts/bench.sh 1x                            # writes BENCH_parallel.json
#   scripts/bench_check.sh /tmp/bench_baseline.json BENCH_parallel.json \
#       BenchmarkTable3_FLRoundBERT,BenchmarkTable2_ForwardBERT 25
#
# The benchmark argument is a comma-separated list; the default gates
# both scoreboard headliners (the FL round and the forward pass, so a
# kernel change cannot trade one for the other unnoticed). An entry of
# the form "A/B" is a same-file pair instead: A's ns/op may exceed B's by
# at most the budget, both read from the fresh file (the baseline is
# ignored for pairs). That is how CI gates the WAL-backed FL round
# against the plain one at +5% — an overhead bound, not a regression
# bound, so it cannot be defeated by a slow baseline:
#
#   scripts/bench_check.sh BENCH_parallel.json BENCH_parallel.json \
#       BenchmarkTable3_FLRoundDurableLSTM/BenchmarkTable3_FLRoundLSTM 5
#
# Both files only need a "results" object keyed by benchmark name, so a
# BENCH_arena.json baseline from an older base commit still gates a fresh
# BENCH_parallel.json. The default budget for the hot paths is +25%
# (same-runner comparisons; the fork-join runtime must never cost more
# than that even on single-core runners where it cannot win).
#
# Exit status: 0 when within budget, 1 on regression or missing data.
set -eu

BASELINE="${1:?usage: bench_check.sh baseline.json fresh.json benchmarks max_regression_pct}"
FRESH="${2:?missing fresh.json}"
BENCHES="${3:-BenchmarkTable3_FLRoundBERT,BenchmarkTable2_ForwardBERT}"
MAXPCT="${4:-25}"

# extract <file> <bench> pulls ns_per_op for one benchmark out of the
# "results" object (the baseline blocks in the JSON repeat benchmark names,
# so only lines inside "results" count).
extract() {
    awk -v bench="\"$2\":" '
        /"results": \{/ { inres = 1 }
        inres && index($0, bench) {
            if (match($0, /"ns_per_op": [0-9]+/)) {
                print substr($0, RSTART + 13, RLENGTH - 13)
                exit
            }
        }
    ' "$1"
}

status=0
for BENCH in $(printf '%s' "$BENCHES" | tr ',' ' '); do
    case "$BENCH" in
    */*)
        # Pair mode: gate A against B within the fresh results.
        A="${BENCH%%/*}"
        B="${BENCH#*/}"
        a_ns="$(extract "$FRESH" "$A")"
        b_ns="$(extract "$FRESH" "$B")"
        if [ -z "$a_ns" ] || [ -z "$b_ns" ]; then
            echo "bench_check: pair $BENCH missing from fresh results $FRESH" >&2
            status=1
            continue
        fi
        awk -v a="$a_ns" -v b="$b_ns" -v maxpct="$MAXPCT" -v pa="$A" -v pb="$B" '
            BEGIN {
                pct = 100 * (a - b) / b
                printf "bench_check: %s %.0f ns/op vs %s %.0f ns/op (%+.1f%%, budget +%s%%)\n",
                    pa, a, pb, b, pct, maxpct
                exit (pct > maxpct) ? 1 : 0
            }
        ' || status=1
        continue
        ;;
    esac
    base_ns="$(extract "$BASELINE" "$BENCH")"
    fresh_ns="$(extract "$FRESH" "$BENCH")"
    if [ -z "$base_ns" ]; then
        # A benchmark added in this PR has no baseline yet: report and
        # skip rather than fail, so new entries can join the gate list in
        # the same PR that introduces them.
        echo "bench_check: $BENCH missing from baseline $BASELINE, skipping (new benchmark?)" >&2
        continue
    fi
    if [ -z "$fresh_ns" ]; then
        echo "bench_check: $BENCH missing from fresh results $FRESH" >&2
        status=1
        continue
    fi

    # Integer arithmetic in awk (64-bit doubles are exact well past these
    # magnitudes); regression% = 100 * (fresh - base) / base.
    awk -v base="$base_ns" -v fresh="$fresh_ns" -v maxpct="$MAXPCT" -v bench="$BENCH" '
        BEGIN {
            pct = 100 * (fresh - base) / base
            printf "bench_check: %s baseline %.0f ns/op, fresh %.0f ns/op (%+.1f%%, budget +%s%%)\n",
                bench, base, fresh, pct, maxpct
            exit (pct > maxpct) ? 1 : 0
        }
    ' || status=1
done
exit "$status"
