// Benchmark for the reconciliation tax: what the health-monitor round
// loop (reconcile.Monitor observations, the requeue work queue, the
// wake-scheduling gather) costs on a round where nothing fails, relative
// to the identical legacy round (BenchmarkTable3_FLRoundReconcileLSTM vs
// BenchmarkTable3_FLRoundLSTM — CI gates the overhead at 2%, so the
// control plane stays free until something actually breaks).
package clinfl_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"clinfl/internal/data"
	"clinfl/internal/fl"
	"clinfl/internal/model"
	"clinfl/internal/nn"
	"clinfl/internal/tensor"
)

func benchmarkFLRoundReconcile(b *testing.B, name string, clients, perClient int) {
	ds, vocab := benchCohort(b, clients*perClient+16)
	shards, err := data.PartitionBalanced(ds[:clients*perClient], clients)
	if err != nil {
		b.Fatal(err)
	}
	executors := make([]fl.Executor, clients)
	var ref model.Classifier
	for i, shard := range shards {
		m := benchModel(b, name, vocab)
		if i == 0 {
			ref = m
		}
		exec, err := fl.NewClassifierExecutor(fmt.Sprintf("site-%d", i), m, shard, nil,
			fl.LocalConfig{Epochs: 1, LR: 1e-3, BatchSize: 16, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		executors[i] = exec
	}
	initial := nn.SnapshotWeights(ref.Params())
	if err := runFLRoundReconcile(executors, initial); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runFLRoundReconcile(executors, initial); err != nil {
			b.Fatal(err)
		}
	}
}

func runFLRoundReconcile(executors []fl.Executor, initial map[string]*tensor.Matrix) error {
	ctrl, err := fl.NewController(fl.ControllerConfig{
		Rounds:        1,
		RoundDeadline: time.Minute,
		Reconcile:     &fl.ReconcilePolicy{Substitute: true},
	}, executors)
	if err != nil {
		return err
	}
	_, err = ctrl.Run(context.Background(), initial)
	return err
}

func BenchmarkTable3_FLRoundReconcileLSTM(b *testing.B) {
	benchmarkFLRoundReconcile(b, "lstm", 4, 16)
}
