package nn

import (
	"testing"

	"clinfl/internal/tensor"
)

// TestEncoderForwardBatchMatchesPerSequence checks that a whole-minibatch
// encoder pass over the flattened (B·T)×dim layout reproduces the
// per-sequence Forward path exactly (eval mode, so dropout is inert).
func TestEncoderForwardBatchMatchesPerSequence(t *testing.T) {
	rng := tensor.NewRNG(3)
	const batch, seq, dim = 3, 6, 8
	enc, err := NewEncoder("enc", 2, dim, 2, 0, 0, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.Matrix, batch)
	for i := range xs {
		xs[i] = rng.Normal(seq, dim, 0, 1)
	}
	padMasks := [][]bool{
		nil,
		{false, false, false, false, true, true},
		{false, false, true, true, true, true},
	}

	flat, err := tensor.Concat(xs...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(false, nil)
	batched, err := enc.ForwardBatch(ctx, ctx.Tape.Constant(flat), batch, padMasks)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < batch; i++ {
		refCtx := NewCtx(false, nil)
		ref, err := enc.Forward(refCtx, refCtx.Tape.Constant(xs[i].Clone()), padMasks[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := batched.Value.SliceRows(i*seq, (i+1)*seq)
		if err != nil {
			t.Fatal(err)
		}
		if !got.AllClose(ref.Value, 1e-12, 1e-12) {
			t.Fatalf("sequence %d: batched encoder output diverges from per-sequence path", i)
		}
	}
}

// TestAttentionForwardBatchRejectsBadShapes covers the batched entry-point
// validation.
func TestAttentionForwardBatchRejectsBadShapes(t *testing.T) {
	rng := tensor.NewRNG(4)
	attn, err := NewMultiHeadSelfAttention("a", 8, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(false, nil)
	x := ctx.Tape.Constant(rng.Normal(6, 8, 0, 1))
	if _, err := attn.ForwardBatch(ctx, x, 4, nil); err == nil {
		t.Fatal("want error: rows not divisible by batch")
	}
	if _, err := attn.ForwardBatch(ctx, x, 2, [][]bool{nil}); err == nil {
		t.Fatal("want error: mask count mismatch")
	}
	if _, err := attn.ForwardBatch(ctx, x, 2, [][]bool{nil, {true}}); err == nil {
		t.Fatal("want error: mask length mismatch")
	}
	if _, err := attn.ForwardBatch(ctx, x, 0, nil); err == nil {
		t.Fatal("want error: non-positive batch")
	}
}

// TestEmbeddingForwardBatch checks flattened layout and ragged rejection.
func TestEmbeddingForwardBatch(t *testing.T) {
	rng := tensor.NewRNG(5)
	emb := NewEmbedding("e", 10, 4, rng)
	ctx := NewCtx(false, nil)
	out, err := emb.ForwardBatch(ctx, [][]int{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value.Rows() != 4 || out.Value.Cols() != 4 {
		t.Fatalf("flattened shape %dx%d, want 4x4", out.Value.Rows(), out.Value.Cols())
	}
	for i, id := range []int{1, 2, 3, 4} {
		want := emb.Table.W.Row(id)
		for j, v := range out.Value.Row(i) {
			if v != want[j] {
				t.Fatalf("row %d does not match table row %d", i, id)
			}
		}
	}
	if _, err := emb.ForwardBatch(ctx, [][]int{{1, 2}, {3}}); err == nil {
		t.Fatal("want error: ragged batch")
	}
	if _, err := emb.ForwardBatch(ctx, nil); err == nil {
		t.Fatal("want error: empty batch")
	}
}
