package nn

import (
	"fmt"
	"math"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
)

// MultiHeadSelfAttention implements the scaled dot-product attention block
// of the transformer encoder: per head h,
//
//	Attn_h(X) = softmax(Q_h K_hᵀ / √d_h + M) V_h
//
// with learned projections Q=XWq, K=XWk, V=XWv and an output projection Wo.
// M is an additive key-padding mask (-inf at padded positions).
//
// As in x-transformers (the paper's transformer library), the per-head
// width HeadDim is independent of the model width: the projections map
// dim → heads·HeadDim and Wo maps back. This is what lets Table II pair
// hidden size 128 with 6 attention heads.
type MultiHeadSelfAttention struct {
	Dim, Heads, HeadDim int
	Wq, Wk, Wv, Wo      *Linear
}

// NewMultiHeadSelfAttention builds an attention block. headDim <= 0 derives
// it from dim/heads (rounded up when not divisible).
func NewMultiHeadSelfAttention(name string, dim, heads, headDim int, rng *tensor.RNG) (*MultiHeadSelfAttention, error) {
	if heads <= 0 {
		return nil, fmt.Errorf("nn: attention %s: heads must be positive, got %d", name, heads)
	}
	if headDim <= 0 {
		headDim = (dim + heads - 1) / heads
	}
	inner := heads * headDim
	return &MultiHeadSelfAttention{
		Dim:     dim,
		Heads:   heads,
		HeadDim: headDim,
		Wq:      NewLinear(name+".q", dim, inner, rng),
		Wk:      NewLinear(name+".k", dim, inner, rng),
		Wv:      NewLinear(name+".v", dim, inner, rng),
		Wo:      NewLinear(name+".out", inner, dim, rng),
	}, nil
}

// Forward attends over x (seq×dim). padMask, if non-nil, marks padded
// positions (true = padding) that keys must not attend to.
func (a *MultiHeadSelfAttention) Forward(ctx *Ctx, x *autograd.Node, padMask []bool) (*autograd.Node, error) {
	seq := x.Value.Rows()
	if padMask != nil && len(padMask) != seq {
		return nil, fmt.Errorf("nn: attention: mask length %d != seq %d", len(padMask), seq)
	}
	q, err := a.Wq.Forward(ctx, x)
	if err != nil {
		return nil, err
	}
	k, err := a.Wk.Forward(ctx, x)
	if err != nil {
		return nil, err
	}
	v, err := a.Wv.Forward(ctx, x)
	if err != nil {
		return nil, err
	}

	var maskNode *autograd.Node
	if padMask != nil {
		mask := tensor.New(seq, seq)
		for j, pad := range padMask {
			if !pad {
				continue
			}
			for i := 0; i < seq; i++ {
				mask.Set(i, j, -1e9)
			}
		}
		maskNode = ctx.Tape.Constant(mask)
	}

	scale := 1 / math.Sqrt(float64(a.HeadDim))
	headOuts := make([]*autograd.Node, a.Heads)
	for h := 0; h < a.Heads; h++ {
		lo, hi := h*a.HeadDim, (h+1)*a.HeadDim
		qh, err := ctx.Tape.SliceCols(q, lo, hi)
		if err != nil {
			return nil, err
		}
		kh, err := ctx.Tape.SliceCols(k, lo, hi)
		if err != nil {
			return nil, err
		}
		vh, err := ctx.Tape.SliceCols(v, lo, hi)
		if err != nil {
			return nil, err
		}
		scores, err := ctx.Tape.MatMulTransB(qh, kh)
		if err != nil {
			return nil, err
		}
		scores = ctx.Tape.Scale(scale, scores)
		if maskNode != nil {
			scores, err = ctx.Tape.Add(scores, maskNode)
			if err != nil {
				return nil, err
			}
		}
		attn := ctx.Tape.SoftmaxRows(scores)
		out, err := ctx.Tape.MatMul(attn, vh)
		if err != nil {
			return nil, err
		}
		headOuts[h] = out
	}

	cat := headOuts[0]
	for h := 1; h < a.Heads; h++ {
		var err error
		cat, err = ctx.Tape.ConcatCols(cat, headOuts[h])
		if err != nil {
			return nil, err
		}
	}
	return a.Wo.Forward(ctx, cat)
}

// Params implements Module.
func (a *MultiHeadSelfAttention) Params() []*Param {
	var out []*Param
	for _, l := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		out = append(out, l.Params()...)
	}
	return out
}

var _ Module = (*MultiHeadSelfAttention)(nil)
