package nn

import (
	"fmt"
	"math"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
)

// MultiHeadSelfAttention implements the scaled dot-product attention block
// of the transformer encoder: per head h,
//
//	Attn_h(X) = softmax(Q_h K_hᵀ / √d_h + M) V_h
//
// with learned projections Q=XWq, K=XWk, V=XWv and an output projection Wo.
// M is an additive key-padding mask (-inf at padded positions).
//
// As in x-transformers (the paper's transformer library), the per-head
// width HeadDim is independent of the model width: the projections map
// dim → heads·HeadDim and Wo maps back. This is what lets Table II pair
// hidden size 128 with 6 attention heads.
type MultiHeadSelfAttention struct {
	Dim, Heads, HeadDim int
	Wq, Wk, Wv, Wo      *Linear
}

// NewMultiHeadSelfAttention builds an attention block. headDim <= 0 derives
// it from dim/heads (rounded up when not divisible).
func NewMultiHeadSelfAttention(name string, dim, heads, headDim int, rng *tensor.RNG) (*MultiHeadSelfAttention, error) {
	if heads <= 0 {
		return nil, fmt.Errorf("nn: attention %s: heads must be positive, got %d", name, heads)
	}
	if headDim <= 0 {
		headDim = (dim + heads - 1) / heads
	}
	inner := heads * headDim
	return &MultiHeadSelfAttention{
		Dim:     dim,
		Heads:   heads,
		HeadDim: headDim,
		Wq:      NewLinear(name+".q", dim, inner, rng),
		Wk:      NewLinear(name+".k", dim, inner, rng),
		Wv:      NewLinear(name+".v", dim, inner, rng),
		Wo:      NewLinear(name+".out", inner, dim, rng),
	}, nil
}

// Forward attends over one sequence x (seq×dim). padMask, if non-nil, marks
// padded positions (true = padding) that keys must not attend to. It is a
// thin B=1 wrapper over ForwardBatch.
func (a *MultiHeadSelfAttention) Forward(ctx *Ctx, x *autograd.Node, padMask []bool) (*autograd.Node, error) {
	var padMasks [][]bool
	if padMask != nil {
		padMasks = [][]bool{padMask}
	}
	return a.ForwardBatch(ctx, x, 1, padMasks)
}

// ForwardBatch attends over a flattened minibatch x ((batch·seq)×dim, with
// each sequence occupying a contiguous block of seq rows). padMasks, if
// non-nil, holds one key-padding mask per sequence; the block softmax
// consumes it directly, so no dense seq×seq mask matrix is ever built.
// Attention scores are computed per row block and never cross sequence
// boundaries.
func (a *MultiHeadSelfAttention) ForwardBatch(ctx *Ctx, x *autograd.Node, batch int, padMasks [][]bool) (*autograd.Node, error) {
	rows := x.Value.Rows()
	if batch <= 0 || rows%batch != 0 {
		return nil, fmt.Errorf("nn: attention: %d rows not divisible into %d sequences", rows, batch)
	}
	seq := rows / batch
	if padMasks != nil {
		if len(padMasks) != batch {
			return nil, fmt.Errorf("nn: attention: %d masks for %d sequences", len(padMasks), batch)
		}
		for i, m := range padMasks {
			if m != nil && len(m) != seq {
				return nil, fmt.Errorf("nn: attention: mask %d length %d != seq %d", i, len(m), seq)
			}
		}
	}
	q, err := a.Wq.Forward(ctx, x)
	if err != nil {
		return nil, err
	}
	k, err := a.Wk.Forward(ctx, x)
	if err != nil {
		return nil, err
	}
	v, err := a.Wv.Forward(ctx, x)
	if err != nil {
		return nil, err
	}

	scale := 1 / math.Sqrt(float64(a.HeadDim))
	headOuts := make([]*autograd.Node, a.Heads)
	for h := 0; h < a.Heads; h++ {
		lo, hi := h*a.HeadDim, (h+1)*a.HeadDim
		qh, err := ctx.Tape.SliceCols(q, lo, hi)
		if err != nil {
			return nil, err
		}
		kh, err := ctx.Tape.SliceCols(k, lo, hi)
		if err != nil {
			return nil, err
		}
		vh, err := ctx.Tape.SliceCols(v, lo, hi)
		if err != nil {
			return nil, err
		}
		// The 1/√d score scale is folded into the fused block matmul, so no
		// separate Scale node (or full score-matrix copy) is recorded.
		scores, err := ctx.Tape.BlockMatMulTransBScaled(qh, kh, seq, scale)
		if err != nil {
			return nil, err
		}
		attn, err := ctx.Tape.BlockSoftmaxRows(scores, seq, padMasks)
		if err != nil {
			return nil, err
		}
		out, err := ctx.Tape.BlockMatMul(attn, vh, seq)
		if err != nil {
			return nil, err
		}
		headOuts[h] = out
	}

	cat := headOuts[0]
	for h := 1; h < a.Heads; h++ {
		var err error
		cat, err = ctx.Tape.ConcatCols(cat, headOuts[h])
		if err != nil {
			return nil, err
		}
	}
	return a.Wo.Forward(ctx, cat)
}

// Params implements Module.
func (a *MultiHeadSelfAttention) Params() []*Param {
	var out []*Param
	for _, l := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		out = append(out, l.Params()...)
	}
	return out
}

var _ Module = (*MultiHeadSelfAttention)(nil)
