package nn

import (
	"bytes"
	"testing"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
)

// layerGradCheck verifies a layer composite against finite differences by
// exposing its parameters (and the input) as gradcheck leaves.
func layerGradCheck(t *testing.T, params []*Param, input *tensor.Matrix,
	forward func(ctx *Ctx, x *autograd.Node) (*autograd.Node, error)) {
	t.Helper()
	leaves := []*tensor.Matrix{input}
	for _, p := range params {
		leaves = append(leaves, p.W)
	}
	rel, err := autograd.GradCheck(leaves, func(tp *autograd.Tape, ns []*autograd.Node) (*autograd.Node, error) {
		ctx := &testCtx{Ctx: Ctx{Tape: tp, Training: false}, leafNodes: map[*tensor.Matrix]*autograd.Node{}}
		for i, leaf := range leaves {
			ctx.leafNodes[leaf] = ns[i]
		}
		y, err := forward(ctx.wire(params), ns[0])
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	}, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 2e-4 {
		t.Fatalf("max relative gradient error %v", rel)
	}
}

// testCtx lets gradcheck rebuild a Ctx whose param leaves alias the
// gradcheck leaves.
type testCtx struct {
	Ctx
	leafNodes map[*tensor.Matrix]*autograd.Node
}

func (c *testCtx) wire(params []*Param) *Ctx {
	ctx := &c.Ctx
	ctx.leaves = make(map[*Param]*autograd.Node, len(params))
	for _, p := range params {
		if n, ok := c.leafNodes[p.W]; ok {
			ctx.leaves[p] = n
		}
	}
	return ctx
}

func TestLinearForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("fc", 4, 3, rng)
	ctx := NewCtx(false, nil)
	x := ctx.Tape.Constant(rng.Normal(5, 4, 0, 1))
	y, err := l.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Value.Rows() != 5 || y.Value.Cols() != 3 {
		t.Fatalf("shape %dx%d", y.Value.Rows(), y.Value.Cols())
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear("fc", 3, 2, rng)
	layerGradCheck(t, l.Params(), rng.Normal(4, 3, 0, 1), l.Forward)
}

func TestLayerNormGradCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	ln := NewLayerNorm("ln", 6)
	// Perturb gain/bias away from the 1/0 init for a stronger check.
	ln.Gain.W.CopyFrom(rng.Normal(1, 6, 1, 0.2))
	ln.Bias.W.CopyFrom(rng.Normal(1, 6, 0, 0.2))
	layerGradCheck(t, ln.Params(), rng.Normal(3, 6, 0, 2), ln.Forward)
}

func TestAttentionGradCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	attn, err := NewMultiHeadSelfAttention("attn", 6, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	layerGradCheck(t, attn.Params(), rng.Normal(4, 6, 0, 1),
		func(ctx *Ctx, x *autograd.Node) (*autograd.Node, error) {
			return attn.Forward(ctx, x, nil)
		})
}

func TestAttentionHeadDimDerivation(t *testing.T) {
	rng := tensor.NewRNG(5)
	// 128 not divisible by 6: Table II's BERT row — headDim rounds up.
	attn, err := NewMultiHeadSelfAttention("attn", 128, 6, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if attn.HeadDim != 22 {
		t.Fatalf("headDim %d, want ceil(128/6)=22", attn.HeadDim)
	}
	if attn.Wq.Out != 6*22 {
		t.Fatalf("inner dim %d, want 132", attn.Wq.Out)
	}
	if _, err := NewMultiHeadSelfAttention("bad", 8, 0, 0, rng); err == nil {
		t.Fatal("want error for zero heads")
	}
}

func TestAttentionPaddingMaskBlocksKeys(t *testing.T) {
	rng := tensor.NewRNG(6)
	attn, err := NewMultiHeadSelfAttention("attn", 4, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.Normal(3, 4, 0, 1)

	// Output at query 0 must not change when a masked key row changes.
	run := func(xm *tensor.Matrix) []float64 {
		ctx := NewCtx(false, nil)
		y, err := attn.Forward(ctx, ctx.Tape.Constant(xm), []bool{false, false, true})
		if err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), y.Value.Row(0)...)
	}
	base := run(x)
	x2 := x.Clone()
	for j := 0; j < 4; j++ {
		x2.Set(2, j, x2.At(2, j)+100)
	}
	got := run(x2)
	for j := range base {
		// Row 2 feeds only K/V at position 2, which is masked out.
		if diff := base[j] - got[j]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("masked key leaked into output: %v vs %v", base[j], got[j])
		}
	}
}

func TestAttentionMaskLengthError(t *testing.T) {
	rng := tensor.NewRNG(7)
	attn, _ := NewMultiHeadSelfAttention("attn", 4, 1, 0, rng)
	ctx := NewCtx(false, nil)
	x := ctx.Tape.Constant(rng.Normal(3, 4, 0, 1))
	if _, err := attn.Forward(ctx, x, []bool{false}); err == nil {
		t.Fatal("want mask length error")
	}
}

func TestFeedForwardGradCheck(t *testing.T) {
	rng := tensor.NewRNG(8)
	ff := NewFeedForward("ffn", 4, 6, rng)
	layerGradCheck(t, ff.Params(), rng.Normal(3, 4, 0, 1), ff.Forward)
}

func TestFeedForwardDefaultsTo4x(t *testing.T) {
	ff := NewFeedForward("ffn", 8, 0, tensor.NewRNG(9))
	if ff.Hidden != 32 {
		t.Fatalf("hidden %d, want 32", ff.Hidden)
	}
}

func TestEncoderLayerGradCheck(t *testing.T) {
	rng := tensor.NewRNG(10)
	layer, err := NewEncoderLayer("enc", 4, 2, 0, 8, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	layerGradCheck(t, layer.Params(), rng.Normal(3, 4, 0, 1),
		func(ctx *Ctx, x *autograd.Node) (*autograd.Node, error) {
			return layer.Forward(ctx, x, nil)
		})
}

func TestEncoderStack(t *testing.T) {
	rng := tensor.NewRNG(11)
	enc, err := NewEncoder("enc", 3, 8, 2, 0, 16, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Layers) != 3 {
		t.Fatalf("layers %d", len(enc.Layers))
	}
	ctx := NewCtx(false, nil)
	x := ctx.Tape.Constant(rng.Normal(5, 8, 0, 1))
	y, err := enc.Forward(ctx, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if y.Value.Rows() != 5 || y.Value.Cols() != 8 {
		t.Fatalf("shape %dx%d", y.Value.Rows(), y.Value.Cols())
	}
}

func TestLSTMLayerGradCheck(t *testing.T) {
	rng := tensor.NewRNG(12)
	layer := NewLSTMLayer("lstm", 3, 4, rng)
	layerGradCheck(t, layer.Params(), rng.Normal(2, 3, 0, 1),
		func(ctx *Ctx, x *autograd.Node) (*autograd.Node, error) {
			s := layer.InitState(ctx, 2)
			s, err := layer.Step(ctx, x, s)
			if err != nil {
				return nil, err
			}
			// A second step exercises backprop through time.
			s, err = layer.Step(ctx, x, s)
			if err != nil {
				return nil, err
			}
			return s.H, nil
		})
}

func TestLSTMForgetBiasInit(t *testing.T) {
	layer := NewLSTMLayer("lstm", 3, 4, tensor.NewRNG(13))
	for j := 0; j < 16; j++ {
		want := 0.0
		if j >= 4 && j < 8 {
			want = 1 // forget-gate slice
		}
		if layer.B.W.At(0, j) != want {
			t.Fatalf("bias[%d] = %v, want %v", j, layer.B.W.At(0, j), want)
		}
	}
}

func TestLSTMStackShapes(t *testing.T) {
	rng := tensor.NewRNG(14)
	l := NewLSTM("lstm", 2, 3, 5, rng)
	ctx := NewCtx(false, nil)
	xs := make([]*autograd.Node, 4)
	for t := range xs {
		xs[t] = ctx.Tape.Constant(rng.Normal(2, 3, 0, 1))
	}
	hs, err := l.Forward(ctx, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 4 {
		t.Fatalf("outputs %d", len(hs))
	}
	for _, h := range hs {
		if h.Value.Rows() != 2 || h.Value.Cols() != 5 {
			t.Fatalf("hidden shape %dx%d", h.Value.Rows(), h.Value.Cols())
		}
	}
	if _, err := l.Forward(ctx, nil); err == nil {
		t.Fatal("want error for empty sequence")
	}
}

func TestCollectParamsDuplicateDetection(t *testing.T) {
	rng := tensor.NewRNG(15)
	a := NewLinear("same", 2, 2, rng)
	b := NewLinear("same", 2, 2, rng)
	if _, err := CollectParams(a, b); err == nil {
		t.Fatal("want duplicate-name error")
	}
	ps, err := CollectParams(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("params %d", len(ps))
	}
}

func TestWeightsSerializationRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(16)
	l := NewLinear("fc", 3, 4, rng)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	weights, err := ReadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 2 {
		t.Fatalf("weights %d", len(weights))
	}
	clone := NewLinear("fc", 3, 4, tensor.NewRNG(999))
	if clone.W.W.Equal(l.W.W) {
		t.Fatal("different seeds should differ before load")
	}
	if err := LoadWeights(clone.Params(), weights); err != nil {
		t.Fatal(err)
	}
	if !clone.W.W.Equal(l.W.W) || !clone.B.W.Equal(l.B.W) {
		t.Fatal("load did not restore weights")
	}
}

func TestLoadWeightsMissingParam(t *testing.T) {
	rng := tensor.NewRNG(17)
	l := NewLinear("fc", 2, 2, rng)
	if err := LoadWeights(l.Params(), map[string]*tensor.Matrix{}); err == nil {
		t.Fatal("want missing-weight error")
	}
}

func TestReadWeightsRejectsGarbage(t *testing.T) {
	if _, err := ReadWeights(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("want magic error")
	}
}

func TestCtxSharesLeafAcrossUses(t *testing.T) {
	rng := tensor.NewRNG(18)
	l := NewLinear("fc", 2, 2, rng)
	ctx := NewCtx(true, nil)
	n1 := ctx.Node(l.W)
	n2 := ctx.Node(l.W)
	if n1 != n2 {
		t.Fatal("same param should map to one leaf per ctx (weight tying)")
	}
}

func TestCtxBackwardHarvestsIntoParams(t *testing.T) {
	rng := tensor.NewRNG(19)
	l := NewLinear("fc", 2, 1, rng)
	ctx := NewCtx(true, nil)
	x := ctx.Tape.Constant(rng.Normal(3, 2, 0, 1))
	y, err := l.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Backward(ctx.Tape.Mean(y)); err != nil {
		t.Fatal(err)
	}
	if l.W.Grad.Norm() == 0 {
		t.Fatal("weight gradient not harvested")
	}
	if l.B.Grad.Norm() == 0 {
		t.Fatal("bias gradient not harvested")
	}
}

func TestSortedByName(t *testing.T) {
	params := []*Param{
		NewParam("b", tensor.New(1, 1)),
		NewParam("a", tensor.New(1, 1)),
	}
	sorted := SortedByName(params)
	if sorted[0].Name != "a" || sorted[1].Name != "b" {
		t.Fatal("not sorted")
	}
	if params[0].Name != "b" {
		t.Fatal("input mutated")
	}
}

func TestNumParams(t *testing.T) {
	l := NewLinear("fc", 3, 4, tensor.NewRNG(20))
	if n := NumParams(l.Params()); n != 3*4+4 {
		t.Fatalf("NumParams %d, want 16", n)
	}
}
