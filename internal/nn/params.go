// Package nn provides neural-network building blocks — parameter
// management, linear/embedding/normalization layers, multi-head
// self-attention, feed-forward blocks and LSTMs — on top of the autograd
// engine. The layers mirror the PyTorch modules the paper's reference
// implementation composes (x-transformers, mlm-pytorch, torch.nn.LSTM).
package nn

import (
	"fmt"
	"sort"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
)

// Param is a named trainable weight matrix with its accumulated gradient.
//
// The weight W is read-only during forward/backward passes (which may run
// concurrently across goroutines, each on its own tape); gradients are
// harvested from tape leaves into Grad by the training loop, and the
// optimizer then updates W between passes.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam wraps w as a parameter with a zeroed gradient buffer.
func NewParam(name string, w *tensor.Matrix) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Rows(), w.Cols())}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Size returns the number of scalar weights.
func (p *Param) Size() int { return p.W.Size() }

// Module is anything exposing trainable parameters.
type Module interface {
	// Params returns the module's parameters. The returned slice is owned
	// by the caller; the *Param values are shared with the module.
	Params() []*Param
}

// CollectParams flattens the parameters of several modules, verifying that
// names are unique (required for serialization and FL parameter exchange).
func CollectParams(mods ...Module) ([]*Param, error) {
	var out []*Param
	seen := make(map[string]bool)
	for _, m := range mods {
		for _, p := range m.Params() {
			if seen[p.Name] {
				return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
			}
			seen[p.Name] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// NumParams returns the total scalar weight count of params.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Size()
	}
	return n
}

// SortedByName returns a copy of params sorted by name, the canonical order
// for serialization.
func SortedByName(params []*Param) []*Param {
	out := append([]*Param(nil), params...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Ctx carries per-forward-pass state: the autograd tape, the train/eval
// mode, and the RNG used by dropout. A Ctx must not be shared across
// goroutines; concurrent workers each build their own.
//
// A Ctx is reusable: Reset recycles the tape (and its arena, if built with
// NewArenaCtx) so a long-lived worker runs every sub-batch through the same
// context with zero steady-state allocation.
type Ctx struct {
	Tape     *autograd.Tape
	Training bool
	RNG      *tensor.RNG

	// EvalPrecision selects the storage precision weight matmuls run in
	// during eval-mode forwards (tensor.PrecF64/PrecF16/PrecInt8). It is
	// applied to the tape by Reset only when training is false; training
	// passes always run full precision so gradients match the forward.
	EvalPrecision tensor.Precision

	leaves map[*Param]*autograd.Node
}

// NewCtx returns a forward-pass context on a fresh heap-backed tape.
func NewCtx(training bool, rng *tensor.RNG) *Ctx {
	return &Ctx{
		Tape:     autograd.NewTape(),
		Training: training,
		RNG:      rng,
		leaves:   make(map[*Param]*autograd.Node),
	}
}

// NewArenaCtx returns a reusable forward-pass context whose tape draws all
// node values, gradients and scratch from a private arena. Every matrix the
// tape produces is invalidated by Reset; callers must copy out anything
// (losses, logits, harvested gradients) they need across resets.
func NewArenaCtx(training bool, rng *tensor.RNG) *Ctx {
	return &Ctx{
		Tape:     autograd.NewTapeArena(tensor.NewArena()),
		Training: training,
		RNG:      rng,
		leaves:   make(map[*Param]*autograd.Node),
	}
}

// Reset recycles the context for the next forward pass: the tape (and
// arena) rewind, leaf bindings clear, and the dropout RNG reseeds to the
// stream NewRNG(seed) would produce. No memory is released or allocated.
func (c *Ctx) Reset(training bool, seed int64) {
	c.Tape.Reset()
	clear(c.leaves)
	c.Training = training
	if training {
		c.Tape.SetEvalPrecision(tensor.PrecF64)
	} else {
		c.Tape.SetEvalPrecision(c.EvalPrecision)
	}
	if c.RNG != nil {
		c.RNG.Reseed(seed)
	}
}

// Node returns the tape leaf for p, creating it on first use so that a
// parameter used by several layers (weight tying) accumulates a single
// gradient.
func (c *Ctx) Node(p *Param) *autograd.Node {
	if n, ok := c.leaves[p]; ok {
		return n
	}
	n := c.Tape.Leaf(p.W)
	c.leaves[p] = n
	return n
}

// Backward runs reverse-mode differentiation from loss and harvests leaf
// gradients into each parameter's Grad accumulator.
func (c *Ctx) Backward(loss *autograd.Node) error {
	if err := c.Tape.Backward(loss); err != nil {
		return fmt.Errorf("nn: backward: %w", err)
	}
	for p, leaf := range c.leaves {
		if leaf.Grad != nil {
			if err := p.Grad.AddInPlace(leaf.Grad); err != nil {
				return fmt.Errorf("nn: harvest %q: %w", p.Name, err)
			}
		}
	}
	return nil
}

// HarvestInto accumulates leaf gradients into dst (a parallel gradient
// buffer keyed by parameter) instead of the shared Param.Grad; used by
// concurrent minibatch workers that reduce afterwards.
func (c *Ctx) HarvestInto(dst map[*Param]*tensor.Matrix) error {
	for p, leaf := range c.leaves {
		if leaf.Grad == nil {
			continue
		}
		buf, ok := dst[p]
		if !ok {
			buf = tensor.New(p.W.Rows(), p.W.Cols())
			dst[p] = buf
		}
		if err := buf.AddInPlace(leaf.Grad); err != nil {
			return fmt.Errorf("nn: harvest %q: %w", p.Name, err)
		}
	}
	return nil
}

// HarvestGrads accumulates leaf gradients into dst, a flat buffer slice
// keyed by parameter index (index maps each parameter to its position), and
// marks each harvested index in touched. Unlike the map form, the buffers
// are caller-owned and recycled across steps, so steady-state harvesting
// allocates nothing. Buffers of untouched indices are left alone; callers
// zero touched buffers between steps.
func (c *Ctx) HarvestGrads(index map[*Param]int, dst []*tensor.Matrix, touched []bool) error {
	for p, leaf := range c.leaves {
		if leaf.Grad == nil {
			continue
		}
		i, ok := index[p]
		if !ok {
			return fmt.Errorf("nn: harvest %q: parameter not in index", p.Name)
		}
		if err := dst[i].AddInPlace(leaf.Grad); err != nil {
			return fmt.Errorf("nn: harvest %q: %w", p.Name, err)
		}
		touched[i] = true
	}
	return nil
}
