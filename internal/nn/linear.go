package nn

import (
	"fmt"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
)

// Linear is a fully-connected layer: y = xW + b, with W in R^{in×out}.
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear builds a Linear layer with Xavier-initialized weights.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	return &Linear{
		In:  in,
		Out: out,
		W:   NewParam(name+".weight", rng.Xavier(in, out)),
		B:   NewParam(name+".bias", tensor.New(1, out)),
	}
}

// Forward applies the layer to x (N×in) returning N×out, as one fused
// affine tape node (matmul + bias).
func (l *Linear) Forward(ctx *Ctx, x *autograd.Node) (*autograd.Node, error) {
	h, err := ctx.Tape.Affine(x, ctx.Node(l.W), ctx.Node(l.B))
	if err != nil {
		return nil, fmt.Errorf("nn: linear %s: %w", l.W.Name, err)
	}
	return h, nil
}

// ForwardGELU applies GELU(xW + b) as one fused tape node; the transformer
// feed-forward and MLM-head hot path.
func (l *Linear) ForwardGELU(ctx *Ctx, x *autograd.Node) (*autograd.Node, error) {
	h, err := ctx.Tape.LinearGELU(x, ctx.Node(l.W), ctx.Node(l.B))
	if err != nil {
		return nil, fmt.Errorf("nn: linear %s: %w", l.W.Name, err)
	}
	return h, nil
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

var _ Module = (*Linear)(nil)

// Embedding maps token ids to dense vectors via a learned table.
type Embedding struct {
	Vocab, Dim int
	Table      *Param
}

// NewEmbedding builds a vocab×dim embedding table with N(0, 0.02²) init
// (BERT's initializer).
func NewEmbedding(name string, vocab, dim int, rng *tensor.RNG) *Embedding {
	return &Embedding{
		Vocab: vocab,
		Dim:   dim,
		Table: NewParam(name+".weight", rng.Normal(vocab, dim, 0, 0.02)),
	}
}

// Forward gathers embeddings for ids, returning len(ids)×dim.
func (e *Embedding) Forward(ctx *Ctx, ids []int) (*autograd.Node, error) {
	n, err := ctx.Tape.Embedding(ctx.Node(e.Table), ids)
	if err != nil {
		return nil, fmt.Errorf("nn: embedding %s: %w", e.Table.Name, err)
	}
	return n, nil
}

// ForwardBatch gathers embeddings for a minibatch of equal-length id
// sequences into the flattened (B·T)×dim layout (sequence b occupies rows
// [b·T, (b+1)·T)) as a single tape op.
func (e *Embedding) ForwardBatch(ctx *Ctx, idsBatch [][]int) (*autograd.Node, error) {
	if len(idsBatch) == 0 {
		return nil, fmt.Errorf("nn: embedding %s: empty batch", e.Table.Name)
	}
	seq := len(idsBatch[0])
	flat := make([]int, 0, len(idsBatch)*seq)
	for i, ids := range idsBatch {
		if len(ids) != seq {
			return nil, fmt.Errorf("nn: embedding %s: ragged batch, sequence %d has %d ids, want %d",
				e.Table.Name, i, len(ids), seq)
		}
		flat = append(flat, ids...)
	}
	return e.Forward(ctx, flat)
}

// Params implements Module.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

var _ Module = (*Embedding)(nil)

// LayerNorm normalizes rows and applies a learned affine transform, as used
// after every transformer sub-layer.
type LayerNorm struct {
	Dim        int
	Eps        float64
	Gain, Bias *Param
}

// NewLayerNorm builds a LayerNorm over dim features (gain=1, bias=0).
func NewLayerNorm(name string, dim int) *LayerNorm {
	gain := tensor.New(1, dim)
	gain.Fill(1)
	return &LayerNorm{
		Dim:  dim,
		Eps:  1e-5,
		Gain: NewParam(name+".gain", gain),
		Bias: NewParam(name+".bias", tensor.New(1, dim)),
	}
}

// Forward normalizes x (N×dim).
func (l *LayerNorm) Forward(ctx *Ctx, x *autograd.Node) (*autograd.Node, error) {
	n, err := ctx.Tape.LayerNorm(x, ctx.Node(l.Gain), ctx.Node(l.Bias), l.Eps)
	if err != nil {
		return nil, fmt.Errorf("nn: layernorm %s: %w", l.Gain.Name, err)
	}
	return n, nil
}

// Params implements Module.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gain, l.Bias} }

var _ Module = (*LayerNorm)(nil)
