package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"clinfl/internal/tensor"
)

// weightsMagic identifies the checkpoint / parameter-exchange format.
const weightsMagic = "CFLW1\n"

// WriteWeights serializes params (in name-sorted canonical order) to w.
// The format is the wire format used both for model checkpoints and for FL
// parameter upload/download.
func WriteWeights(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(weightsMagic); err != nil {
		return fmt.Errorf("nn: write magic: %w", err)
	}
	sorted := SortedByName(params)
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(len(sorted)))
	if _, err := bw.Write(count[:]); err != nil {
		return fmt.Errorf("nn: write count: %w", err)
	}
	for _, p := range sorted {
		if err := writeString(bw, p.Name); err != nil {
			return fmt.Errorf("nn: write name %q: %w", p.Name, err)
		}
		if _, err := p.W.WriteTo(bw); err != nil {
			return fmt.Errorf("nn: write tensor %q: %w", p.Name, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("nn: flush weights: %w", err)
	}
	return nil
}

// ReadWeights deserializes a weight map from r.
func ReadWeights(r io.Reader) (map[string]*tensor.Matrix, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(weightsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: read magic: %w", err)
	}
	if string(magic) != weightsMagic {
		return nil, fmt.Errorf("nn: bad weights magic %q", magic)
	}
	var count [8]byte
	if _, err := io.ReadFull(br, count[:]); err != nil {
		return nil, fmt.Errorf("nn: read count: %w", err)
	}
	n := binary.LittleEndian.Uint64(count[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("nn: implausible parameter count %d", n)
	}
	out := make(map[string]*tensor.Matrix, n)
	for i := uint64(0); i < n; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("nn: read name %d: %w", i, err)
		}
		var m tensor.Matrix
		if _, err := m.ReadFrom(br); err != nil {
			return nil, fmt.Errorf("nn: read tensor %q: %w", name, err)
		}
		out[name] = &m
	}
	return out, nil
}

// LoadWeights copies values from a weight map into matching params,
// verifying every parameter is present with the right shape.
func LoadWeights(params []*Param, weights map[string]*tensor.Matrix) error {
	for _, p := range params {
		m, ok := weights[p.Name]
		if !ok {
			return fmt.Errorf("nn: missing weight %q", p.Name)
		}
		if err := p.W.CopyFrom(m); err != nil {
			return fmt.Errorf("nn: load %q: %w", p.Name, err)
		}
	}
	return nil
}

// SnapshotWeights deep-copies the current parameter values into a map.
func SnapshotWeights(params []*Param) map[string]*tensor.Matrix {
	out := make(map[string]*tensor.Matrix, len(params))
	for _, p := range params {
		out[p.Name] = p.W.Clone()
	}
	return out
}

// WriteWeightMap serializes a raw name→matrix map in the same wire format
// as WriteWeights (name-sorted). Used for FL parameter exchange where the
// sender may hold a snapshot rather than live parameters.
func WriteWeightMap(w io.Writer, weights map[string]*tensor.Matrix) error {
	params := make([]*Param, 0, len(weights))
	for name, m := range weights {
		params = append(params, &Param{Name: name, W: m})
	}
	return WriteWeights(w, params)
}

func writeString(w io.Writer, s string) error {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	ln := binary.LittleEndian.Uint32(n[:])
	if ln > 1<<16 {
		return "", fmt.Errorf("implausible string length %d", ln)
	}
	buf := make([]byte, ln)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
