package nn

import (
	"fmt"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
)

// FeedForward is the transformer position-wise MLP: GELU(xW1+b1)W2+b2.
type FeedForward struct {
	Dim, Hidden int
	W1, W2      *Linear
}

// NewFeedForward builds the MLP with the conventional 4x expansion unless
// hidden is given explicitly (>0).
func NewFeedForward(name string, dim, hidden int, rng *tensor.RNG) *FeedForward {
	if hidden <= 0 {
		hidden = 4 * dim
	}
	return &FeedForward{
		Dim:    dim,
		Hidden: hidden,
		W1:     NewLinear(name+".fc1", dim, hidden, rng),
		W2:     NewLinear(name+".fc2", hidden, dim, rng),
	}
}

// Forward applies the MLP to x (seq×dim). The first projection and its GELU
// run as a single fused tape node.
func (f *FeedForward) Forward(ctx *Ctx, x *autograd.Node) (*autograd.Node, error) {
	h, err := f.W1.ForwardGELU(ctx, x)
	if err != nil {
		return nil, err
	}
	return f.W2.Forward(ctx, h)
}

// Params implements Module.
func (f *FeedForward) Params() []*Param {
	return append(f.W1.Params(), f.W2.Params()...)
}

var _ Module = (*FeedForward)(nil)

// EncoderLayer is one pre-LN transformer encoder block:
//
//	x = x + Attn(LN1(x));  x = x + FFN(LN2(x))
//
// Pre-LN is used instead of the original post-LN because it trains stably at
// depth 12 without a warmup schedule (documented substitution in DESIGN.md).
type EncoderLayer struct {
	Attn     *MultiHeadSelfAttention
	FFN      *FeedForward
	LN1, LN2 *LayerNorm
	Dropout  float64
}

// NewEncoderLayer builds an encoder block of width dim with the given head
// count and feed-forward width.
func NewEncoderLayer(name string, dim, heads, headDim, ffnHidden int, dropout float64, rng *tensor.RNG) (*EncoderLayer, error) {
	attn, err := NewMultiHeadSelfAttention(name+".attn", dim, heads, headDim, rng)
	if err != nil {
		return nil, err
	}
	return &EncoderLayer{
		Attn:    attn,
		FFN:     NewFeedForward(name+".ffn", dim, ffnHidden, rng),
		LN1:     NewLayerNorm(name+".ln1", dim),
		LN2:     NewLayerNorm(name+".ln2", dim),
		Dropout: dropout,
	}, nil
}

// Forward applies the block to one sequence x (seq×dim) with an optional
// key-padding mask. It is a thin B=1 wrapper over ForwardBatch.
func (e *EncoderLayer) Forward(ctx *Ctx, x *autograd.Node, padMask []bool) (*autograd.Node, error) {
	var padMasks [][]bool
	if padMask != nil {
		padMasks = [][]bool{padMask}
	}
	return e.ForwardBatch(ctx, x, 1, padMasks)
}

// ForwardBatch applies the block to a flattened minibatch x
// ((batch·seq)×dim). LayerNorm, the FFN and dropout are position-wise, so
// they run over the flattened rows unchanged; only attention needs the
// block structure.
func (e *EncoderLayer) ForwardBatch(ctx *Ctx, x *autograd.Node, batch int, padMasks [][]bool) (*autograd.Node, error) {
	h, err := e.LN1.Forward(ctx, x)
	if err != nil {
		return nil, err
	}
	h, err = e.Attn.ForwardBatch(ctx, h, batch, padMasks)
	if err != nil {
		return nil, err
	}
	h = ctx.Tape.Dropout(h, e.Dropout, ctx.RNG, ctx.Training)
	x, err = ctx.Tape.Add(x, h)
	if err != nil {
		return nil, err
	}
	h, err = e.LN2.Forward(ctx, x)
	if err != nil {
		return nil, err
	}
	h, err = e.FFN.Forward(ctx, h)
	if err != nil {
		return nil, err
	}
	h = ctx.Tape.Dropout(h, e.Dropout, ctx.RNG, ctx.Training)
	return ctx.Tape.Add(x, h)
}

// Params implements Module.
func (e *EncoderLayer) Params() []*Param {
	var out []*Param
	out = append(out, e.Attn.Params()...)
	out = append(out, e.FFN.Params()...)
	out = append(out, e.LN1.Params()...)
	out = append(out, e.LN2.Params()...)
	return out
}

var _ Module = (*EncoderLayer)(nil)

// Encoder stacks N encoder layers with a final LayerNorm (pre-LN
// convention).
type Encoder struct {
	Layers  []*EncoderLayer
	FinalLN *LayerNorm
}

// NewEncoder builds a stack of n encoder layers.
func NewEncoder(name string, n, dim, heads, headDim, ffnHidden int, dropout float64, rng *tensor.RNG) (*Encoder, error) {
	enc := &Encoder{FinalLN: NewLayerNorm(name+".final_ln", dim)}
	for i := 0; i < n; i++ {
		layer, err := NewEncoderLayer(fmt.Sprintf("%s.layer%d", name, i), dim, heads, headDim, ffnHidden, dropout, rng)
		if err != nil {
			return nil, err
		}
		enc.Layers = append(enc.Layers, layer)
	}
	return enc, nil
}

// Forward runs the full stack over one sequence x (seq×dim). It is a thin
// B=1 wrapper over ForwardBatch.
func (e *Encoder) Forward(ctx *Ctx, x *autograd.Node, padMask []bool) (*autograd.Node, error) {
	var padMasks [][]bool
	if padMask != nil {
		padMasks = [][]bool{padMask}
	}
	return e.ForwardBatch(ctx, x, 1, padMasks)
}

// ForwardBatch runs the full stack over a flattened minibatch x
// ((batch·seq)×dim) on a single tape.
func (e *Encoder) ForwardBatch(ctx *Ctx, x *autograd.Node, batch int, padMasks [][]bool) (*autograd.Node, error) {
	var err error
	for _, layer := range e.Layers {
		x, err = layer.ForwardBatch(ctx, x, batch, padMasks)
		if err != nil {
			return nil, err
		}
	}
	return e.FinalLN.Forward(ctx, x)
}

// Params implements Module.
func (e *Encoder) Params() []*Param {
	var out []*Param
	for _, l := range e.Layers {
		out = append(out, l.Params()...)
	}
	return append(out, e.FinalLN.Params()...)
}

var _ Module = (*Encoder)(nil)
