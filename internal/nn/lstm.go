package nn

import (
	"fmt"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
)

// LSTMLayer is a single recurrent layer computing, per timestep,
//
//	i,f,g,o = split(x_t Wx + h_{t-1} Wh + b)
//	c_t = σ(f)⊙c_{t-1} + σ(i)⊙tanh(g)
//	h_t = σ(o)⊙tanh(c_t)
//
// The implementation is batched: x_t is a B×in matrix holding one timestep
// for every sequence in the minibatch.
type LSTMLayer struct {
	In, Hidden int
	Wx, Wh, B  *Param
}

// NewLSTMLayer builds one LSTM layer. The forget-gate bias is initialized
// to 1, the standard trick for stable long-range gradient flow.
func NewLSTMLayer(name string, in, hidden int, rng *tensor.RNG) *LSTMLayer {
	b := tensor.New(1, 4*hidden)
	for j := hidden; j < 2*hidden; j++ { // forget gate slice
		b.Set(0, j, 1)
	}
	return &LSTMLayer{
		In:     in,
		Hidden: hidden,
		Wx:     NewParam(name+".wx", rng.Xavier(in, 4*hidden)),
		Wh:     NewParam(name+".wh", rng.Xavier(hidden, 4*hidden)),
		B:      NewParam(name+".bias", b),
	}
}

// State is the (h, c) pair carried between timesteps.
type State struct {
	H, C *autograd.Node
}

// InitState returns a zero state for a batch of size b.
func (l *LSTMLayer) InitState(ctx *Ctx, b int) State {
	return State{
		H: ctx.Tape.Constant(tensor.New(b, l.Hidden)),
		C: ctx.Tape.Constant(tensor.New(b, l.Hidden)),
	}
}

// Step advances the layer one timestep: x is B×in, s the previous state.
func (l *LSTMLayer) Step(ctx *Ctx, x *autograd.Node, s State) (State, error) {
	tp := ctx.Tape
	zx, err := tp.MatMul(x, ctx.Node(l.Wx))
	if err != nil {
		return State{}, fmt.Errorf("nn: lstm %s: %w", l.Wx.Name, err)
	}
	zh, err := tp.MatMul(s.H, ctx.Node(l.Wh))
	if err != nil {
		return State{}, fmt.Errorf("nn: lstm %s: %w", l.Wh.Name, err)
	}
	z, err := tp.Add(zx, zh)
	if err != nil {
		return State{}, err
	}
	z, err = tp.AddRowVector(z, ctx.Node(l.B))
	if err != nil {
		return State{}, err
	}
	h := l.Hidden
	iGate, err := tp.SliceCols(z, 0, h)
	if err != nil {
		return State{}, err
	}
	fGate, err := tp.SliceCols(z, h, 2*h)
	if err != nil {
		return State{}, err
	}
	gGate, err := tp.SliceCols(z, 2*h, 3*h)
	if err != nil {
		return State{}, err
	}
	oGate, err := tp.SliceCols(z, 3*h, 4*h)
	if err != nil {
		return State{}, err
	}
	i := tp.Sigmoid(iGate)
	f := tp.Sigmoid(fGate)
	g := tp.Tanh(gGate)
	o := tp.Sigmoid(oGate)

	fc, err := tp.Mul(f, s.C)
	if err != nil {
		return State{}, err
	}
	ig, err := tp.Mul(i, g)
	if err != nil {
		return State{}, err
	}
	c, err := tp.Add(fc, ig)
	if err != nil {
		return State{}, err
	}
	hOut, err := tp.Mul(o, tp.Tanh(c))
	if err != nil {
		return State{}, err
	}
	return State{H: hOut, C: c}, nil
}

// Params implements Module.
func (l *LSTMLayer) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

var _ Module = (*LSTMLayer)(nil)

// LSTM stacks several LSTMLayers; the output sequence of layer k feeds
// layer k+1, matching torch.nn.LSTM(num_layers=n).
type LSTM struct {
	Layers []*LSTMLayer
}

// NewLSTM builds an n-layer stack (layer 0 maps in→hidden, deeper layers
// hidden→hidden).
func NewLSTM(name string, n, in, hidden int, rng *tensor.RNG) *LSTM {
	l := &LSTM{}
	for i := 0; i < n; i++ {
		layerIn := hidden
		if i == 0 {
			layerIn = in
		}
		l.Layers = append(l.Layers, NewLSTMLayer(fmt.Sprintf("%s.layer%d", name, i), layerIn, hidden, rng))
	}
	return l
}

// Forward consumes a sequence of B×in timestep nodes and returns the
// top-layer hidden state at every timestep (each B×hidden).
func (l *LSTM) Forward(ctx *Ctx, xs []*autograd.Node) ([]*autograd.Node, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("nn: lstm forward on empty sequence")
	}
	batch := xs[0].Value.Rows()
	states := make([]State, len(l.Layers))
	for i, layer := range l.Layers {
		states[i] = layer.InitState(ctx, batch)
	}
	outs := make([]*autograd.Node, len(xs))
	for t, x := range xs {
		cur := x
		for i, layer := range l.Layers {
			var err error
			states[i], err = layer.Step(ctx, cur, states[i])
			if err != nil {
				return nil, fmt.Errorf("nn: lstm layer %d step %d: %w", i, t, err)
			}
			cur = states[i].H
		}
		outs[t] = cur
	}
	return outs, nil
}

// Params implements Module.
func (l *LSTM) Params() []*Param {
	var out []*Param
	for _, layer := range l.Layers {
		out = append(out, layer.Params()...)
	}
	return out
}

var _ Module = (*LSTM)(nil)
