// Package mlm implements the BERT masked-language-model pretraining
// objective as described in the paper (Sec. III-B): 15% of tokens are
// selected for prediction; of those, 80% are replaced by [MASK], 10% by a
// random vocabulary token, and 10% are kept unchanged but still included in
// the loss ("to regulate the BERT model, 10% of the tokens were not masked
// but were included in the loss calculation").
package mlm

import (
	"fmt"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
	"clinfl/internal/token"
)

// Config controls masking behaviour.
type Config struct {
	// MaskProb is the probability a (non-special) position is selected for
	// prediction. Paper: 0.15.
	MaskProb float64
	// MaskTokenFrac of selected positions become [MASK]. Paper: 0.8.
	MaskTokenFrac float64
	// RandomTokenFrac of selected positions become a random token.
	// Paper: 0.1 (the remaining 0.1 are kept unchanged).
	RandomTokenFrac float64
	// VocabSize bounds random replacement tokens.
	VocabSize int
}

// DefaultConfig returns the paper's masking parameters for vocabSize.
func DefaultConfig(vocabSize int) Config {
	return Config{MaskProb: 0.15, MaskTokenFrac: 0.8, RandomTokenFrac: 0.1, VocabSize: vocabSize}
}

// Validate checks config invariants.
func (c Config) Validate() error {
	if c.MaskProb <= 0 || c.MaskProb >= 1 {
		return fmt.Errorf("mlm: MaskProb %v out of (0,1)", c.MaskProb)
	}
	if c.MaskTokenFrac < 0 || c.RandomTokenFrac < 0 || c.MaskTokenFrac+c.RandomTokenFrac > 1 {
		return fmt.Errorf("mlm: mask/random fractions %v/%v invalid", c.MaskTokenFrac, c.RandomTokenFrac)
	}
	if c.VocabSize <= token.NumSpecial {
		return fmt.Errorf("mlm: VocabSize %d too small", c.VocabSize)
	}
	return nil
}

// MaskedExample is a masked input sequence with its prediction targets.
type MaskedExample struct {
	// Input is the corrupted id sequence fed to the model.
	Input []int
	// Targets holds the original id at predicted positions and
	// autograd.IgnoreIndex elsewhere, aligned with Input.
	Targets []int
	// NumMasked counts predicted positions.
	NumMasked int
}

// Mask corrupts ids per cfg. Special tokens ([PAD], [CLS], [SEP], ...) are
// never selected. At least one position is always selected (falling back to
// a random eligible position) so every example contributes loss.
func Mask(cfg Config, ids []int, rng *tensor.RNG) (MaskedExample, error) {
	if err := cfg.Validate(); err != nil {
		return MaskedExample{}, err
	}
	me := MaskedExample{
		Input:   make([]int, len(ids)),
		Targets: make([]int, len(ids)),
	}
	copy(me.Input, ids)
	eligible := make([]int, 0, len(ids))
	for i := range me.Targets {
		me.Targets[i] = autograd.IgnoreIndex
		if !token.IsSpecial(ids[i]) {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return me, nil
	}
	for _, i := range eligible {
		if rng.Float64() >= cfg.MaskProb {
			continue
		}
		me.maskPosition(cfg, ids, i, rng)
	}
	if me.NumMasked == 0 {
		i := eligible[rng.Intn(len(eligible))]
		me.maskPosition(cfg, ids, i, rng)
	}
	return me, nil
}

// maskPosition applies the 80/10/10 corruption rule at position i.
func (me *MaskedExample) maskPosition(cfg Config, ids []int, i int, rng *tensor.RNG) {
	me.Targets[i] = ids[i]
	me.NumMasked++
	switch r := rng.Float64(); {
	case r < cfg.MaskTokenFrac:
		me.Input[i] = token.MASK
	case r < cfg.MaskTokenFrac+cfg.RandomTokenFrac:
		// Draw a random non-special token.
		me.Input[i] = token.NumSpecial + rng.Intn(cfg.VocabSize-token.NumSpecial)
	default:
		// Keep the original token; still predicted.
	}
}
