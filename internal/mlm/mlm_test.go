package mlm

import (
	"testing"
	"testing/quick"

	"clinfl/internal/autograd"
	"clinfl/internal/tensor"
	"clinfl/internal/token"
)

func testIDs(n int) []int {
	ids := make([]int, n)
	ids[0] = token.CLS
	for i := 1; i < n-1; i++ {
		ids[i] = token.NumSpecial + i
	}
	ids[n-1] = token.SEP
	return ids
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(100)
	if cfg.MaskProb != 0.15 {
		t.Fatalf("MaskProb %v, want paper's 0.15", cfg.MaskProb)
	}
	if cfg.MaskTokenFrac != 0.8 || cfg.RandomTokenFrac != 0.1 {
		t.Fatalf("corruption split %v/%v, want 0.8/0.1", cfg.MaskTokenFrac, cfg.RandomTokenFrac)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaskProb: 0, MaskTokenFrac: 0.8, RandomTokenFrac: 0.1, VocabSize: 100},
		{MaskProb: 1, MaskTokenFrac: 0.8, RandomTokenFrac: 0.1, VocabSize: 100},
		{MaskProb: 0.15, MaskTokenFrac: 0.8, RandomTokenFrac: 0.3, VocabSize: 100},
		{MaskProb: 0.15, MaskTokenFrac: 0.8, RandomTokenFrac: 0.1, VocabSize: 3},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
}

func TestMaskNeverTouchesSpecials(t *testing.T) {
	cfg := DefaultConfig(64)
	rng := tensor.NewRNG(1)
	ids := testIDs(32)
	for trial := 0; trial < 50; trial++ {
		me, err := Mask(cfg, ids, rng)
		if err != nil {
			t.Fatal(err)
		}
		if me.Input[0] != token.CLS || me.Input[len(ids)-1] != token.SEP {
			t.Fatal("special positions corrupted")
		}
		if me.Targets[0] != autograd.IgnoreIndex || me.Targets[len(ids)-1] != autograd.IgnoreIndex {
			t.Fatal("special positions targeted")
		}
	}
}

func TestMaskAlwaysSelectsAtLeastOne(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.MaskProb = 0.01 // would usually select nothing on a short sequence
	rng := tensor.NewRNG(2)
	ids := testIDs(6)
	for trial := 0; trial < 100; trial++ {
		me, err := Mask(cfg, ids, rng)
		if err != nil {
			t.Fatal(err)
		}
		if me.NumMasked == 0 {
			t.Fatal("no positions selected")
		}
	}
}

func TestMaskTargetsAlignWithOriginals(t *testing.T) {
	cfg := DefaultConfig(64)
	rng := tensor.NewRNG(3)
	ids := testIDs(24)
	me, err := Mask(cfg, ids, rng)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i, tgt := range me.Targets {
		if tgt == autograd.IgnoreIndex {
			// Unselected positions must pass through unmodified.
			if me.Input[i] != ids[i] {
				t.Fatalf("unselected position %d modified", i)
			}
			continue
		}
		count++
		if tgt != ids[i] {
			t.Fatalf("target at %d is %d, want original %d", i, tgt, ids[i])
		}
	}
	if count != me.NumMasked {
		t.Fatalf("NumMasked %d != counted %d", me.NumMasked, count)
	}
}

func TestMaskCorruptionDistribution(t *testing.T) {
	cfg := DefaultConfig(1000)
	rng := tensor.NewRNG(4)
	ids := testIDs(400)
	var masked, random, kept, selected int
	for trial := 0; trial < 50; trial++ {
		me, err := Mask(cfg, ids, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, tgt := range me.Targets {
			if tgt == autograd.IgnoreIndex {
				continue
			}
			selected++
			switch {
			case me.Input[i] == token.MASK:
				masked++
			case me.Input[i] == ids[i]:
				kept++
			default:
				random++
			}
		}
	}
	mf := float64(masked) / float64(selected)
	rf := float64(random) / float64(selected)
	kf := float64(kept) / float64(selected)
	if mf < 0.74 || mf > 0.86 {
		t.Fatalf("[MASK] fraction %.3f far from 0.8", mf)
	}
	// Random replacements can coincide with the original token, shifting a
	// little mass from "random" to "kept".
	if rf < 0.05 || rf > 0.15 {
		t.Fatalf("random fraction %.3f far from 0.1", rf)
	}
	if kf < 0.05 || kf > 0.16 {
		t.Fatalf("kept fraction %.3f far from 0.1", kf)
	}
}

func TestMaskSelectionRate(t *testing.T) {
	cfg := DefaultConfig(1000)
	rng := tensor.NewRNG(5)
	ids := testIDs(1000)
	var selected, eligible int
	for trial := 0; trial < 30; trial++ {
		me, err := Mask(cfg, ids, rng)
		if err != nil {
			t.Fatal(err)
		}
		selected += me.NumMasked
		eligible += len(ids) - 2 // CLS and SEP excluded
	}
	rate := float64(selected) / float64(eligible)
	if rate < 0.12 || rate > 0.18 {
		t.Fatalf("selection rate %.3f far from p=0.15", rate)
	}
}

func TestMaskAllPadSequence(t *testing.T) {
	cfg := DefaultConfig(64)
	rng := tensor.NewRNG(6)
	ids := []int{token.CLS, token.SEP, token.PAD, token.PAD}
	me, err := Mask(cfg, ids, rng)
	if err != nil {
		t.Fatal(err)
	}
	if me.NumMasked != 0 {
		t.Fatal("all-special sequence should select nothing")
	}
}

// Property: Input and Targets always have the sequence's length, and
// random replacements are never special tokens.
func TestMaskShapeProperty(t *testing.T) {
	cfg := DefaultConfig(128)
	f := func(seed int64, n uint8) bool {
		ln := int(n%30) + 5
		ids := testIDs(ln)
		me, err := Mask(cfg, ids, tensor.NewRNG(seed))
		if err != nil {
			return false
		}
		if len(me.Input) != ln || len(me.Targets) != ln {
			return false
		}
		for i, tgt := range me.Targets {
			if tgt == autograd.IgnoreIndex {
				continue
			}
			if me.Input[i] != token.MASK && me.Input[i] != ids[i] && token.IsSpecial(me.Input[i]) {
				return false // random replacement drew a special token
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
