// Package token implements the clinical vocabulary and a WordPiece-style
// tokenizer with the BERT special tokens ([PAD] [UNK] [CLS] [SEP] [MASK]).
//
// Clinical event streams are already discrete codes ("RX_CLOPIDOGREL",
// "DX_I21_4", ...), so whole-token lookup covers the common case; rare or
// unseen codes fall back to greedy longest-match WordPiece segmentation so
// the model still sees their sub-structure instead of a bare [UNK].
package token

import (
	"errors"
	"fmt"
	"sort"
)

// Special-token ids occupy the lowest vocabulary slots, matching BERT's
// layout.
const (
	PAD  = 0
	UNK  = 1
	CLS  = 2
	SEP  = 3
	MASK = 4

	// NumSpecial is the count of reserved special tokens.
	NumSpecial = 5
)

// specialNames maps the reserved ids to their printed forms.
var specialNames = [NumSpecial]string{"[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"}

// ErrEmptyCorpus is returned by BuildVocab on empty input.
var ErrEmptyCorpus = errors.New("token: empty corpus")

// Vocab maps tokens to contiguous ids with the special tokens first.
type Vocab struct {
	idOf  map[string]int
	words []string
}

// BuildVocab constructs a vocabulary from a tokenized corpus, keeping
// tokens seen at least minFreq times up to maxSize entries (most frequent
// first; ties broken lexicographically for determinism). Character-level
// continuation pieces ("##x") are always added for every byte seen, so
// WordPiece segmentation can never fail entirely.
func BuildVocab(corpus [][]string, minFreq, maxSize int) (*Vocab, error) {
	if len(corpus) == 0 {
		return nil, ErrEmptyCorpus
	}
	if minFreq < 1 {
		minFreq = 1
	}
	freq := make(map[string]int)
	chars := make(map[byte]bool)
	for _, sent := range corpus {
		for _, tok := range sent {
			freq[tok]++
			for i := 0; i < len(tok); i++ {
				chars[tok[i]] = true
			}
		}
	}
	type tf struct {
		tok string
		n   int
	}
	cands := make([]tf, 0, len(freq))
	for tok, n := range freq {
		if n >= minFreq {
			cands = append(cands, tf{tok, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].tok < cands[j].tok
	})

	v := &Vocab{idOf: make(map[string]int)}
	for _, name := range specialNames {
		v.add(name)
	}
	// Character pieces guarantee full coverage.
	charList := make([]string, 0, 2*len(chars))
	for c := range chars {
		charList = append(charList, string(c), "##"+string(c))
	}
	sort.Strings(charList)
	for _, p := range charList {
		v.add(p)
	}
	for _, c := range cands {
		if maxSize > 0 && v.Size() >= maxSize {
			break
		}
		v.add(c.tok)
	}
	return v, nil
}

// add inserts tok if absent.
func (v *Vocab) add(tok string) {
	if _, ok := v.idOf[tok]; ok {
		return
	}
	v.idOf[tok] = len(v.words)
	v.words = append(v.words, tok)
}

// Size returns the vocabulary size including specials.
func (v *Vocab) Size() int { return len(v.words) }

// ID returns the id of tok and whether it is present.
func (v *Vocab) ID(tok string) (int, bool) {
	id, ok := v.idOf[tok]
	return id, ok
}

// Token returns the string form of id ("[UNK]" for out-of-range).
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.words) {
		return specialNames[UNK]
	}
	return v.words[id]
}

// Words returns a copy of the vocabulary in id order.
func (v *Vocab) Words() []string {
	return append([]string(nil), v.words...)
}

// Tokenizer encodes clinical token streams into model-ready id sequences.
type Tokenizer struct {
	vocab  *Vocab
	maxLen int
}

// NewTokenizer wraps vocab with a maximum encoded length (including [CLS]
// and [SEP]).
func NewTokenizer(vocab *Vocab, maxLen int) (*Tokenizer, error) {
	if maxLen < 3 {
		return nil, fmt.Errorf("token: maxLen %d too small (need >= 3)", maxLen)
	}
	return &Tokenizer{vocab: vocab, maxLen: maxLen}, nil
}

// Vocab returns the underlying vocabulary.
func (t *Tokenizer) Vocab() *Vocab { return t.vocab }

// MaxLen returns the fixed encoded sequence length.
func (t *Tokenizer) MaxLen() int { return t.maxLen }

// wordpiece greedily segments tok into vocabulary pieces, returning nil if
// segmentation fails (which cannot happen for byte-covered vocabularies
// built by BuildVocab).
func (t *Tokenizer) wordpiece(tok string) []int {
	var out []int
	start := 0
	for start < len(tok) {
		end := len(tok)
		found := -1
		for end > start {
			piece := tok[start:end]
			if start > 0 {
				piece = "##" + piece
			}
			if id, ok := t.vocab.ID(piece); ok {
				found = id
				break
			}
			end--
		}
		if found < 0 {
			return nil
		}
		out = append(out, found)
		start = end
	}
	return out
}

// EncodeTokens maps raw tokens to ids (no specials, no padding) using
// whole-token lookup with WordPiece fallback.
func (t *Tokenizer) EncodeTokens(tokens []string) []int {
	out := make([]int, 0, len(tokens))
	for _, tok := range tokens {
		if id, ok := t.vocab.ID(tok); ok {
			out = append(out, id)
			continue
		}
		if pieces := t.wordpiece(tok); pieces != nil {
			out = append(out, pieces...)
			continue
		}
		out = append(out, UNK)
	}
	return out
}

// Encode produces a fixed-length id sequence
// [CLS] tok... [SEP] [PAD]... together with a padding mask (true = [PAD]).
// Sequences longer than maxLen-2 are truncated from the end.
func (t *Tokenizer) Encode(tokens []string) (ids []int, padMask []bool) {
	body := t.EncodeTokens(tokens)
	if len(body) > t.maxLen-2 {
		body = body[:t.maxLen-2]
	}
	ids = make([]int, t.maxLen)
	padMask = make([]bool, t.maxLen)
	ids[0] = CLS
	copy(ids[1:], body)
	ids[1+len(body)] = SEP
	for i := 2 + len(body); i < t.maxLen; i++ {
		ids[i] = PAD
		padMask[i] = true
	}
	return ids, padMask
}

// Decode maps ids back to token strings, skipping [PAD].
func (t *Tokenizer) Decode(ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == PAD {
			continue
		}
		out = append(out, t.vocab.Token(id))
	}
	return out
}

// IsSpecial reports whether id is one of the reserved special tokens.
func IsSpecial(id int) bool { return id >= 0 && id < NumSpecial }
