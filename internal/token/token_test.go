package token

import (
	"errors"
	"testing"
	"testing/quick"
)

func buildTestVocab(t *testing.T) *Vocab {
	t.Helper()
	corpus := [][]string{
		{"RX_ASPIRIN", "DX_I10", "RX_ASPIRIN"},
		{"DX_I10", "LAB_HGB_LOW", "RX_METFORMIN"},
	}
	v, err := BuildVocab(corpus, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBuildVocabEmpty(t *testing.T) {
	if _, err := BuildVocab(nil, 1, 0); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("want ErrEmptyCorpus, got %v", err)
	}
}

func TestSpecialTokensFirst(t *testing.T) {
	v := buildTestVocab(t)
	for id, want := range map[int]string{PAD: "[PAD]", UNK: "[UNK]", CLS: "[CLS]", SEP: "[SEP]", MASK: "[MASK]"} {
		if got := v.Token(id); got != want {
			t.Fatalf("Token(%d) = %q, want %q", id, got, want)
		}
	}
}

func TestVocabLookup(t *testing.T) {
	v := buildTestVocab(t)
	id, ok := v.ID("RX_ASPIRIN")
	if !ok {
		t.Fatal("RX_ASPIRIN missing")
	}
	if v.Token(id) != "RX_ASPIRIN" {
		t.Fatalf("round trip got %q", v.Token(id))
	}
	if _, ok := v.ID("NOT_A_TOKEN_ZZZ"); ok {
		t.Fatal("unexpected token present")
	}
}

func TestVocabFrequencyOrdering(t *testing.T) {
	corpus := [][]string{{"COMMON", "COMMON", "COMMON", "RARE"}}
	v, err := BuildVocab(corpus, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := v.ID("COMMON")
	ri, _ := v.ID("RARE")
	if ci >= ri {
		t.Fatalf("COMMON id %d should precede RARE id %d", ci, ri)
	}
}

func TestVocabMinFreq(t *testing.T) {
	corpus := [][]string{{"AAA", "AAA", "BBB"}}
	v, err := BuildVocab(corpus, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.ID("AAA"); !ok {
		t.Fatal("AAA should survive minFreq=2")
	}
	if _, ok := v.ID("BBB"); ok {
		t.Fatal("BBB should be pruned at minFreq=2")
	}
}

func TestVocabDeterminism(t *testing.T) {
	corpus := [][]string{{"B", "A", "C"}, {"C", "A"}}
	v1, _ := BuildVocab(corpus, 1, 0)
	v2, _ := BuildVocab(corpus, 1, 0)
	w1, w2 := v1.Words(), v2.Words()
	if len(w1) != len(w2) {
		t.Fatal("sizes differ")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("word %d differs: %q vs %q", i, w1[i], w2[i])
		}
	}
}

func TestEncodeLayout(t *testing.T) {
	v := buildTestVocab(t)
	tok, err := NewTokenizer(v, 8)
	if err != nil {
		t.Fatal(err)
	}
	ids, padMask := tok.Encode([]string{"RX_ASPIRIN", "DX_I10"})
	if len(ids) != 8 || len(padMask) != 8 {
		t.Fatalf("lengths %d/%d", len(ids), len(padMask))
	}
	if ids[0] != CLS {
		t.Fatalf("ids[0] = %d, want CLS", ids[0])
	}
	if ids[3] != SEP {
		t.Fatalf("ids[3] = %d, want SEP", ids[3])
	}
	for i := 4; i < 8; i++ {
		if ids[i] != PAD || !padMask[i] {
			t.Fatalf("position %d should be padding", i)
		}
	}
	for i := 0; i < 4; i++ {
		if padMask[i] {
			t.Fatalf("position %d wrongly masked", i)
		}
	}
}

func TestEncodeTruncates(t *testing.T) {
	v := buildTestVocab(t)
	tok, err := NewTokenizer(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := tok.Encode([]string{"RX_ASPIRIN", "DX_I10", "RX_METFORMIN", "LAB_HGB_LOW"})
	if len(ids) != 4 {
		t.Fatalf("len %d", len(ids))
	}
	if ids[0] != CLS || ids[3] != SEP {
		t.Fatalf("truncated layout wrong: %v", ids)
	}
}

func TestWordPieceFallback(t *testing.T) {
	v := buildTestVocab(t)
	tok, err := NewTokenizer(v, 32)
	if err != nil {
		t.Fatal(err)
	}
	// "DX_I10X" is unseen but decomposes into seen characters; must not
	// produce UNK.
	out := tok.EncodeTokens([]string{"DX_I10X"})
	if len(out) == 0 {
		t.Fatal("empty encoding")
	}
	for _, id := range out {
		if id == UNK {
			t.Fatal("wordpiece fallback produced UNK for decomposable token")
		}
	}
}

func TestUNKForUndecomposable(t *testing.T) {
	v := buildTestVocab(t)
	tok, err := NewTokenizer(v, 32)
	if err != nil {
		t.Fatal(err)
	}
	// 'z' never appears in the corpus so "zzz" cannot be segmented.
	out := tok.EncodeTokens([]string{"zzz"})
	if len(out) != 1 || out[0] != UNK {
		t.Fatalf("want [UNK], got %v", out)
	}
}

func TestDecodeSkipsPad(t *testing.T) {
	v := buildTestVocab(t)
	tok, _ := NewTokenizer(v, 8)
	ids, _ := tok.Encode([]string{"DX_I10"})
	toks := tok.Decode(ids)
	for _, s := range toks {
		if s == "[PAD]" {
			t.Fatal("Decode leaked [PAD]")
		}
	}
	if toks[0] != "[CLS]" || toks[1] != "DX_I10" || toks[2] != "[SEP]" {
		t.Fatalf("decoded %v", toks)
	}
}

func TestNewTokenizerRejectsTinyMaxLen(t *testing.T) {
	v := buildTestVocab(t)
	if _, err := NewTokenizer(v, 2); err == nil {
		t.Fatal("want error for maxLen 2")
	}
}

// Property: Encode always emits exactly maxLen ids with CLS first and
// non-pad positions unmasked.
func TestEncodeShapeProperty(t *testing.T) {
	v := buildTestVocab(t)
	tok, _ := NewTokenizer(v, 10)
	words := v.Words()[NumSpecial:] // special strings would encode to reserved ids
	f := func(seed uint32, n uint8) bool {
		cnt := int(n%20) + 1
		toks := make([]string, cnt)
		for i := range toks {
			toks[i] = words[int(seed+uint32(i)*7)%len(words)]
		}
		ids, padMask := tok.Encode(toks)
		if len(ids) != 10 || len(padMask) != 10 || ids[0] != CLS {
			return false
		}
		for i, pad := range padMask {
			if pad != (ids[i] == PAD) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsSpecial(t *testing.T) {
	for id := 0; id < NumSpecial; id++ {
		if !IsSpecial(id) {
			t.Fatalf("id %d should be special", id)
		}
	}
	if IsSpecial(NumSpecial) || IsSpecial(-1) {
		t.Fatal("non-special misclassified")
	}
}
