package ehr

import (
	"math"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Patients = 800
	cfg.CorpusSentences = 500
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero patients", func(c *Config) { c.Patients = 0 }},
		{"rate too high", func(c *Config) { c.TargetPositiveRate = 1 }},
		{"rate zero", func(c *Config) { c.TargetPositiveRate = 0 }},
		{"label noise half", func(c *Config) { c.LabelNoise = 0.5 }},
		{"bad visit bounds", func(c *Config) { c.MaxVisitTokens = c.MinVisitTokens - 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestCohortPositiveRateCalibration(t *testing.T) {
	cfg := testConfig()
	patients, err := GenerateCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(patients)
	if st.Patients != cfg.Patients {
		t.Fatalf("patients %d, want %d", st.Patients, cfg.Patients)
	}
	// Realized rate = target adjusted by label noise:
	// r' = r(1-noise) + (1-r)noise.
	want := cfg.TargetPositiveRate*(1-cfg.LabelNoise) + (1-cfg.TargetPositiveRate)*cfg.LabelNoise
	if math.Abs(st.PositiveRate-want) > 0.05 {
		t.Fatalf("positive rate %.3f far from calibrated %.3f", st.PositiveRate, want)
	}
}

func TestCohortDeterminism(t *testing.T) {
	a, err := GenerateCohort(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCohort(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Outcome != b[i].Outcome || len(a[i].Tokens) != len(b[i].Tokens) {
			t.Fatalf("patient %d differs across same-seed generation", i)
		}
		for j := range a[i].Tokens {
			if a[i].Tokens[j] != b[i].Tokens[j] {
				t.Fatalf("patient %d token %d differs", i, j)
			}
		}
	}
	cfg := testConfig()
	cfg.Seed = 99
	c, err := GenerateCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Outcome == c[i].Outcome {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical outcomes")
	}
}

func TestEveryPatientHasClopidogrel(t *testing.T) {
	patients, err := GenerateCohort(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patients {
		found := false
		for _, tok := range p.Tokens {
			if tok == tokClopidogrel {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("patient %d lacks the clopidogrel anchor", i)
		}
	}
}

func TestPPIOrderEncodedInStream(t *testing.T) {
	patients, err := GenerateCohort(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range patients {
		if !p.PPIUse {
			continue
		}
		ppiIdx, clopiIdx := -1, -1
		for i, tok := range p.Tokens {
			switch tok {
			case tokOmeprazole:
				ppiIdx = i
			case tokClopidogrel:
				clopiIdx = i
			}
		}
		if ppiIdx < 0 {
			t.Fatal("PPI user without PPI token")
		}
		if p.PPIBeforeClopidogrel && ppiIdx > clopiIdx {
			t.Fatal("PPI-before patient has PPI after clopidogrel in stream")
		}
		if !p.PPIBeforeClopidogrel && ppiIdx < clopiIdx {
			t.Fatal("PPI-after patient has PPI before clopidogrel in stream")
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no PPI users generated")
	}
}

func TestRiskFactorsRaisePositiveRate(t *testing.T) {
	patients, err := GenerateCohort(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var lofPos, lofN, noLofPos, noLofN int
	for _, p := range patients {
		if p.CYP2C19LOF {
			lofN++
			lofPos += p.Outcome
		} else {
			noLofN++
			noLofPos += p.Outcome
		}
	}
	lofRate := float64(lofPos) / float64(lofN)
	noLofRate := float64(noLofPos) / float64(noLofN)
	if lofRate <= noLofRate {
		t.Fatalf("LOF carriers should fail more: %.3f vs %.3f", lofRate, noLofRate)
	}
}

func TestSequenceLengthBounds(t *testing.T) {
	cfg := testConfig()
	patients, err := GenerateCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patients {
		// Risk-factor-rich patients can exceed the filler target slightly,
		// but the stream must stay within a sane envelope.
		if len(p.Tokens) < 4 || len(p.Tokens) > cfg.MaxVisitTokens+8 {
			t.Fatalf("patient %d stream length %d outside envelope", i, len(p.Tokens))
		}
	}
}

func TestCorpusGeneration(t *testing.T) {
	cfg := testConfig()
	corpus, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != cfg.CorpusSentences {
		t.Fatalf("corpus %d sentences, want %d", len(corpus), cfg.CorpusSentences)
	}
	for i, sent := range corpus {
		if len(sent) < 3 {
			t.Fatalf("sentence %d too short: %v", i, sent)
		}
	}
}

func TestCorpusDeterminismAndIndependenceFromCohort(t *testing.T) {
	a, err := GenerateCorpus(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Generating the cohort in between must not perturb the corpus stream.
	if _, err := GenerateCohort(testConfig()); err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("sentence %d differs", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("sentence %d token %d differs", i, j)
			}
		}
	}
}

func TestCorpusCooccurrence(t *testing.T) {
	corpus, err := GenerateCorpus(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Diabetes sentences should frequently carry metformin: the structure
	// the MLM objective learns.
	var dmSent, dmWithMet int
	for _, sent := range corpus {
		hasDM, hasMet := false, false
		for _, tok := range sent {
			if tok == tokDiabetes {
				hasDM = true
			}
			if tok == "RX_METFORMIN_500MG" {
				hasMet = true
			}
		}
		if hasDM {
			dmSent++
			if hasMet {
				dmWithMet++
			}
		}
	}
	if dmSent == 0 {
		t.Fatal("no diabetes sentences")
	}
	if frac := float64(dmWithMet) / float64(dmSent); frac < 0.5 {
		t.Fatalf("metformin co-occurrence %.2f too weak for MLM learnability", frac)
	}
}

func TestAllTokensInventory(t *testing.T) {
	toks := AllTokens()
	seen := make(map[string]bool, len(toks))
	for _, tok := range toks {
		if seen[tok] {
			t.Fatalf("duplicate token %q in inventory", tok)
		}
		seen[tok] = true
	}
	if !seen[tokClopidogrel] || !seen[tokCYP2C19LOF] {
		t.Fatal("anchor tokens missing from inventory")
	}
}

func TestStatsString(t *testing.T) {
	patients, err := GenerateCohort(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s := Stats(patients).String(); s == "" {
		t.Fatal("empty stats string")
	}
	if s := Stats(nil); s.Patients != 0 || s.PositiveRate != 0 {
		t.Fatal("empty cohort stats should be zero")
	}
}
