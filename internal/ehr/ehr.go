// Package ehr generates the synthetic clinical data that stands in for the
// paper's proprietary Cipherome cohort (8,638 clopidogrel patients, 1,824
// treatment failures [13]) and its 453k-sentence clinical pretraining
// corpus.
//
// The generator is a seeded, deterministic simulator with two outputs:
//
//  1. An ADR (adverse drug reaction) cohort: per-patient clinical event
//     token streams whose binary outcome — clopidogrel treatment failure —
//     is a stochastic function of clinically-motivated risk factors that
//     are *visible in the token sequence* (CYP2C19 loss-of-function
//     genotype, proton-pump-inhibitor co-prescription and its order
//     relative to clopidogrel initiation, diabetes, age, smoking, prior
//     MI). Order sensitivity is deliberate: it exercises exactly the
//     sequence-modelling capability the paper compares between the
//     recursive (LSTM) and attentive (BERT) models.
//
//  2. A clinical-note pretraining corpus: templated visit "sentences" with
//     strong token co-occurrence structure (diagnoses pull in their usual
//     medications and lab abnormalities), giving the masked-language-model
//     objective learnable statistics.
//
// Everything is parameterized by Config so tests run on small cohorts while
// the experiment harness scales up.
package ehr

import (
	"errors"
	"fmt"
)

// Config controls cohort and corpus generation.
type Config struct {
	// Seed drives all randomness; equal seeds give identical data.
	Seed int64
	// Patients is the ADR cohort size (paper: 8,638).
	Patients int
	// TargetPositiveRate is the desired treatment-failure fraction
	// (paper: 1,824/8,638 ≈ 0.211).
	TargetPositiveRate float64
	// CorpusSentences is the number of pretraining sentences
	// (paper: 453,377; scaled down by default for CPU budgets).
	CorpusSentences int
	// LabelNoise is the probability a label is flipped, bounding the best
	// achievable accuracy below 100% as in real clinical data.
	LabelNoise float64
	// MinVisitTokens / MaxVisitTokens bound patient sequence lengths
	// before tokenizer truncation.
	MinVisitTokens, MaxVisitTokens int
}

// DefaultConfig mirrors the paper's cohort statistics at reduced corpus
// scale.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Patients:           8638,
		TargetPositiveRate: 1824.0 / 8638.0,
		CorpusSentences:    20000,
		LabelNoise:         0.05,
		MinVisitTokens:     8,
		MaxVisitTokens:     20,
	}
}

// Validate checks config invariants.
func (c Config) Validate() error {
	if c.Patients <= 0 {
		return errors.New("ehr: Patients must be positive")
	}
	if c.TargetPositiveRate <= 0 || c.TargetPositiveRate >= 1 {
		return fmt.Errorf("ehr: TargetPositiveRate %v out of (0,1)", c.TargetPositiveRate)
	}
	if c.LabelNoise < 0 || c.LabelNoise >= 0.5 {
		return fmt.Errorf("ehr: LabelNoise %v out of [0,0.5)", c.LabelNoise)
	}
	if c.MinVisitTokens < 4 || c.MaxVisitTokens < c.MinVisitTokens {
		return fmt.Errorf("ehr: visit token bounds [%d,%d] invalid", c.MinVisitTokens, c.MaxVisitTokens)
	}
	return nil
}

// Patient is one synthetic clinical record.
type Patient struct {
	// Tokens is the temporally-ordered clinical event stream.
	Tokens []string
	// Outcome is 1 for clopidogrel treatment failure (ADR), 0 otherwise.
	Outcome int
	// Risk factors retained for analysis/debugging of the generator.
	CYP2C19LOF, PPIUse, PPIBeforeClopidogrel bool
	Diabetes, Elderly, Smoker, PriorMI       bool
}
