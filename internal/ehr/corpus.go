package ehr

import (
	"math"
	"sort"

	"clinfl/internal/tensor"
)

// GenerateCorpus produces cfg.CorpusSentences templated clinical "visit
// sentences" for masked-language-model pretraining. Sentences have strong,
// learnable structure: an encounter-type token, demographics, one or two
// diagnoses, then the medications and labs those diagnoses typically pull
// in (per dxAssociations), plus a Zipf tail of rare codes — so an MLM that
// learns co-occurrence statistics drives its loss well below the uniform
// baseline ln|V|.
func GenerateCorpus(cfg Config) ([][]string, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed + 7919) // decouple from cohort stream

	dxPool := make([]string, 0, len(dxAssociations))
	for dx := range dxAssociations {
		dxPool = append(dxPool, dx)
	}
	// Map iteration order is random; sort for determinism.
	sortStrings(dxPool)

	out := make([][]string, cfg.CorpusSentences)
	for i := range out {
		out[i] = generateSentence(rng, dxPool)
	}
	return out, nil
}

// generateSentence emits one visit sentence.
func generateSentence(rng *tensor.RNG, dxPool []string) []string {
	sent := make([]string, 0, 16)
	sent = append(sent, visitTokens[rng.Intn(len(visitTokens))])
	if rng.Float64() < 0.5 {
		sent = append(sent, tokSexM)
	} else {
		sent = append(sent, tokSexF)
	}
	if rng.Float64() < 0.3 {
		sent = append(sent, tokElderly)
	} else {
		sent = append(sent, tokAdult)
	}

	nDx := 1 + rng.Intn(2)
	for d := 0; d < nDx; d++ {
		dx := dxPool[rng.Intn(len(dxPool))]
		sent = append(sent, dx)
		assoc := dxAssociations[dx]
		for _, med := range assoc.meds {
			if rng.Float64() < 0.75 {
				sent = append(sent, med)
			}
		}
		for _, lab := range assoc.labs {
			if rng.Float64() < 0.6 {
				sent = append(sent, lab)
			}
		}
	}

	// The clopidogrel+PPI+genotype motif appears in the corpus too, so
	// pretraining exposes BERT to the fine-tuning domain.
	if rng.Float64() < 0.15 {
		sent = append(sent, tokPriorMI, tokClopidogrel)
		if rng.Float64() < 0.4 {
			sent = append(sent, tokOmeprazole)
		}
		if rng.Float64() < 0.3 {
			sent = append(sent, tokCYP2C19LOF)
		}
	}

	// Noise tail.
	nNoise := rng.Intn(4)
	for k := 0; k < nNoise; k++ {
		if rng.Float64() < 0.7 {
			sent = append(sent, labTokens[rng.Intn(len(labTokens))])
		} else {
			u := rng.Float64()
			idx := int(math.Floor(float64(extraRareTokens) * u * u * u))
			if idx >= extraRareTokens {
				idx = extraRareTokens - 1
			}
			sent = append(sent, rareToken(idx))
		}
	}
	return sent
}

// sortStrings sorts s in place (map iteration order is randomized, so the
// diagnosis pool must be sorted for deterministic generation).
func sortStrings(s []string) {
	sort.Strings(s)
}
