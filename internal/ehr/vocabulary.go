package ehr

import "fmt"

// Clinical code inventories. These are synthetic but shaped like real
// prescription / ICD-10 / LOINC-style streams so tokenization behaves as it
// would on the paper's data.

// Core risk-factor and anchor tokens referenced by the outcome model.
const (
	tokClopidogrel = "RX_CLOPIDOGREL_75MG"
	tokOmeprazole  = "RX_OMEPRAZOLE_20MG" // PPI that inhibits CYP2C19
	tokCYP2C19LOF  = "GEN_CYP2C19_LOF"    // loss-of-function genotype
	tokDiabetes    = "DX_E11_9"           // type 2 diabetes
	tokPriorMI     = "DX_I21_4"           // prior myocardial infarction
	tokSmoker      = "SOC_TOBACCO_USE"
	tokElderly     = "AGE_75_84"
	tokAdult       = "AGE_45_54"
	tokSexM        = "SEX_M"
	tokSexF        = "SEX_F"
)

// benignMeds are filler prescriptions with no outcome effect.
var benignMeds = []string{
	"RX_ATORVASTATIN_40MG", "RX_LISINOPRIL_10MG", "RX_METOPROLOL_50MG",
	"RX_AMLODIPINE_5MG", "RX_METFORMIN_500MG", "RX_ASPIRIN_81MG",
	"RX_LEVOTHYROXINE_50MCG", "RX_ALBUTEROL_INH", "RX_GABAPENTIN_300MG",
	"RX_FUROSEMIDE_20MG", "RX_PANTOPRAZOLE_40MG", "RX_SERTRALINE_50MG",
}

// benignDx are filler diagnosis codes.
var benignDx = []string{
	"DX_I10", "DX_E78_5", "DX_J44_9", "DX_K21_9", "DX_M54_5",
	"DX_F41_1", "DX_N18_3", "DX_G47_33", "DX_H40_11", "DX_L40_0",
	"DX_E03_9", "DX_J45_909", "DX_R07_9", "DX_I48_91", "DX_M17_11",
}

// labTokens are lab-result tokens (value-binned LOINC style).
var labTokens = []string{
	"LAB_HGB_LOW", "LAB_HGB_NORMAL", "LAB_PLT_LOW", "LAB_PLT_NORMAL",
	"LAB_CREAT_HIGH", "LAB_CREAT_NORMAL", "LAB_HBA1C_HIGH", "LAB_HBA1C_NORMAL",
	"LAB_LDL_HIGH", "LAB_LDL_NORMAL", "LAB_INR_HIGH", "LAB_INR_NORMAL",
	"LAB_TROP_HIGH", "LAB_TROP_NORMAL", "LAB_BNP_HIGH", "LAB_BNP_NORMAL",
}

// procTokens are procedure codes.
var procTokens = []string{
	"PX_PCI_STENT", "PX_CABG", "PX_ECHO", "PX_STRESS_TEST",
	"PX_CATH_DIAG", "PX_EKG", "PX_CT_ANGIO", "PX_ENDOSCOPY",
}

// visitTokens delimit encounters in the event stream.
var visitTokens = []string{
	"ENC_OUTPATIENT", "ENC_INPATIENT", "ENC_ED", "ENC_TELEHEALTH",
}

// dxAssociations captures the co-occurrence structure the pretraining
// corpus teaches: each diagnosis pulls in its typical medications and labs.
var dxAssociations = map[string]struct {
	meds []string
	labs []string
}{
	"DX_I10":    {meds: []string{"RX_LISINOPRIL_10MG", "RX_AMLODIPINE_5MG"}, labs: []string{"LAB_CREAT_NORMAL"}},
	"DX_E78_5":  {meds: []string{"RX_ATORVASTATIN_40MG"}, labs: []string{"LAB_LDL_HIGH"}},
	tokDiabetes: {meds: []string{"RX_METFORMIN_500MG"}, labs: []string{"LAB_HBA1C_HIGH"}},
	tokPriorMI:  {meds: []string{"RX_ASPIRIN_81MG", "RX_METOPROLOL_50MG", tokClopidogrel}, labs: []string{"LAB_TROP_HIGH"}},
	"DX_K21_9":  {meds: []string{tokOmeprazole, "RX_PANTOPRAZOLE_40MG"}, labs: []string{}},
	"DX_E03_9":  {meds: []string{"RX_LEVOTHYROXINE_50MCG"}, labs: []string{}},
	"DX_J44_9":  {meds: []string{"RX_ALBUTEROL_INH"}, labs: []string{}},
	"DX_N18_3":  {meds: []string{"RX_FUROSEMIDE_20MG"}, labs: []string{"LAB_CREAT_HIGH"}},
}

// AllTokens returns the full clinical token inventory (used to seed
// vocabulary construction and for generator tests).
func AllTokens() []string {
	out := []string{
		tokClopidogrel, tokOmeprazole, tokCYP2C19LOF, tokDiabetes,
		tokPriorMI, tokSmoker, tokElderly, tokAdult, tokSexM, tokSexF,
	}
	out = append(out, benignMeds...)
	out = append(out, benignDx...)
	out = append(out, labTokens...)
	out = append(out, procTokens...)
	out = append(out, visitTokens...)
	for i := 0; i < extraRareTokens; i++ {
		out = append(out, rareToken(i))
	}
	return out
}

// extraRareTokens pads the vocabulary with a long Zipf tail of rare codes,
// as real code systems have.
const extraRareTokens = 60

// rareToken names the i-th rare filler code.
func rareToken(i int) string { return fmt.Sprintf("DX_RARE_%03d", i) }
