package ehr

import (
	"fmt"
	"math"

	"clinfl/internal/tensor"
)

// Outcome-model coefficients. The logit combines clinically-motivated risk
// factors; the PPI coefficient depends on whether the PPI was started
// *after* clopidogrel (the clinically-relevant interaction window), making
// token order informative.
const (
	coefLOF       = 2.4
	coefPPIAfter  = 1.8
	coefPPIBefore = 0.3
	coefDiabetes  = 0.9
	coefElderly   = 0.7
	coefSmoker    = 0.5
	coefPriorMI   = 0.7
	logitNoiseStd = 0.05
)

// GenerateCohort produces the synthetic clopidogrel cohort. The intercept
// of the outcome model is calibrated by bisection so the realized positive
// rate matches cfg.TargetPositiveRate (paper: 1,824/8,638).
func GenerateCohort(cfg Config) ([]*Patient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)

	// Draw latent risk factors first so the intercept calibration sees the
	// true population.
	type latent struct {
		lof, ppi, ppiBefore, dm, old, smoke, mi bool
		noise                                   float64
	}
	lats := make([]latent, cfg.Patients)
	for i := range lats {
		lats[i] = latent{
			lof:       rng.Float64() < 0.30,
			ppi:       rng.Float64() < 0.40,
			ppiBefore: rng.Float64() < 0.5,
			dm:        rng.Float64() < 0.25,
			old:       rng.Float64() < 0.30,
			smoke:     rng.Float64() < 0.20,
			mi:        rng.Float64() < 0.35,
			noise:     rng.Rand().NormFloat64() * logitNoiseStd,
		}
	}
	rawLogit := func(l latent) float64 {
		z := l.noise
		if l.lof {
			z += coefLOF
		}
		if l.ppi {
			if l.ppiBefore {
				z += coefPPIBefore
			} else {
				z += coefPPIAfter
			}
		}
		if l.dm {
			z += coefDiabetes
		}
		if l.old {
			z += coefElderly
		}
		if l.smoke {
			z += coefSmoker
		}
		if l.mi {
			z += coefPriorMI
		}
		return z
	}

	// Calibrate the intercept: choose b so the fraction of patients with
	// rawLogit + b > 0 matches the target positive rate. Outcomes are
	// thresholded (not Bernoulli-sampled) so the achievable accuracy
	// ceiling is set by LabelNoise and record missingness rather than by
	// outcome sampling — matching the paper's ~88% top-1 regime.
	lo, hi := -12.0, 12.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		pos := 0
		for _, l := range lats {
			if rawLogit(l)+mid > 0 {
				pos++
			}
		}
		if float64(pos)/float64(len(lats)) < cfg.TargetPositiveRate {
			lo = mid
		} else {
			hi = mid
		}
	}
	intercept := (lo + hi) / 2

	patients := make([]*Patient, cfg.Patients)
	for i, l := range lats {
		p := &Patient{
			CYP2C19LOF:           l.lof,
			PPIUse:               l.ppi,
			PPIBeforeClopidogrel: l.ppi && l.ppiBefore,
			Diabetes:             l.dm,
			Elderly:              l.old,
			Smoker:               l.smoke,
			PriorMI:              l.mi,
		}
		outcome := 0
		if rawLogit(l)+intercept > 0 {
			outcome = 1
		}
		if rng.Float64() < cfg.LabelNoise {
			outcome = 1 - outcome
		}
		p.Outcome = outcome
		p.Tokens = buildEventStream(rng, cfg, p)
		patients[i] = p
	}
	return patients, nil
}

// buildEventStream renders a patient's risk factors and filler events as a
// temporally-ordered token sequence. Clopidogrel initiation is the anchor:
// PPI placement before/after it encodes the interaction the outcome model
// keys on.
func buildEventStream(rng *tensor.RNG, cfg Config, p *Patient) []string {
	var pre, post []string // events before / after clopidogrel start

	// Demographics always lead the record.
	head := make([]string, 0, 4)
	if rng.Float64() < 0.5 {
		head = append(head, tokSexM)
	} else {
		head = append(head, tokSexF)
	}
	if p.Elderly {
		head = append(head, tokElderly)
	} else {
		head = append(head, tokAdult)
	}

	// Genotype is observed (documented in the record) 90% of the time;
	// the missing 10% bounds achievable accuracy like real-world missingness.
	if p.CYP2C19LOF && rng.Float64() < 0.9 {
		pre = append(pre, tokCYP2C19LOF)
	}
	if p.Diabetes {
		pre = append(pre, tokDiabetes)
		if rng.Float64() < 0.7 {
			pre = append(pre, "RX_METFORMIN_500MG")
		}
	}
	if p.PriorMI {
		pre = append(pre, tokPriorMI)
		if rng.Float64() < 0.5 {
			pre = append(pre, "PX_PCI_STENT")
		}
	}
	if p.Smoker {
		pre = append(pre, tokSmoker)
	}
	if p.PPIUse {
		if p.PPIBeforeClopidogrel {
			pre = append(pre, tokOmeprazole)
		} else {
			post = append(post, tokOmeprazole)
		}
	}

	// Filler noise: benign meds/dx/labs/procedures with a Zipf tail.
	span := cfg.MaxVisitTokens - cfg.MinVisitTokens + 1
	targetLen := cfg.MinVisitTokens + rng.Intn(span)
	filler := targetLen - len(head) - len(pre) - len(post) - 1 // -1 for clopidogrel
	for i := 0; i < filler; i++ {
		tok := sampleFiller(rng)
		if rng.Float64() < 0.5 {
			pre = append(pre, tok)
		} else {
			post = append(post, tok)
		}
	}
	rng.Shuffle(len(pre), func(i, j int) { pre[i], pre[j] = pre[j], pre[i] })
	rng.Shuffle(len(post), func(i, j int) { post[i], post[j] = post[j], post[i] })

	out := make([]string, 0, len(head)+len(pre)+1+len(post))
	out = append(out, head...)
	out = append(out, pre...)
	out = append(out, tokClopidogrel)
	out = append(out, post...)
	return out
}

// sampleFiller draws a non-informative event token: mostly common codes,
// with a Zipf tail of rare ones.
func sampleFiller(rng *tensor.RNG) string {
	switch r := rng.Float64(); {
	case r < 0.30:
		return benignMeds[rng.Intn(len(benignMeds))]
	case r < 0.55:
		return benignDx[rng.Intn(len(benignDx))]
	case r < 0.75:
		return labTokens[rng.Intn(len(labTokens))]
	case r < 0.85:
		return procTokens[rng.Intn(len(procTokens))]
	case r < 0.93:
		return visitTokens[rng.Intn(len(visitTokens))]
	default:
		// Zipf-ish tail over the rare inventory.
		u := rng.Float64()
		idx := int(math.Floor(float64(extraRareTokens) * u * u))
		if idx >= extraRareTokens {
			idx = extraRareTokens - 1
		}
		return rareToken(idx)
	}
}

// CohortStats summarizes a generated cohort.
type CohortStats struct {
	Patients     int
	Positives    int
	PositiveRate float64
	MeanTokens   float64
}

// Stats computes summary statistics for a cohort.
func Stats(patients []*Patient) CohortStats {
	s := CohortStats{Patients: len(patients)}
	var tokens int
	for _, p := range patients {
		s.Positives += p.Outcome
		tokens += len(p.Tokens)
	}
	if s.Patients > 0 {
		s.PositiveRate = float64(s.Positives) / float64(s.Patients)
		s.MeanTokens = float64(tokens) / float64(s.Patients)
	}
	return s
}

// String renders stats in the style of the paper's Table I data rows.
func (s CohortStats) String() string {
	return fmt.Sprintf("patients=%d positives=%d (%.1f%%) mean_tokens=%.1f",
		s.Patients, s.Positives, 100*s.PositiveRate, s.MeanTokens)
}
