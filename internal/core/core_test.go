package core

import (
	"context"
	"math"
	"testing"

	"clinfl/internal/ehr"
)

// tinyConfig returns a fast-running pipeline config for tests.
func tinyConfig(task Task, mode Mode, modelName string) Config {
	cfg := Default(task, mode, modelName)
	cfg.TrainSize = 64
	cfg.ValidSize = 32
	cfg.Rounds = 2
	cfg.MaxLen = 12
	cfg.StandaloneLimit = 2
	cfg.EHR = ehr.Config{
		Seed: 1, Patients: 200, TargetPositiveRate: 0.211,
		CorpusSentences: 160, LabelNoise: 0.05,
		MinVisitTokens: 6, MaxVisitTokens: 10,
	}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	good := tinyConfig(TaskFinetune, ModeFederated, "lstm")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad task", func(c *Config) { c.Task = "guess" }},
		{"bad mode", func(c *Config) { c.Mode = "solo" }},
		{"bad partition", func(c *Config) { c.Partition = "zipf" }},
		{"zero clients", func(c *Config) { c.Clients = 0 }},
		{"imbalanced wrong clients", func(c *Config) { c.Clients = 4 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"tiny maxlen", func(c *Config) { c.MaxLen = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	for _, task := range []Task{TaskFinetune, TaskPretrain} {
		for _, mode := range []Mode{ModeCentralized, ModeFederated, ModeStandalone} {
			for _, m := range []string{"lstm", "bert", "bert-mini"} {
				if err := Default(task, mode, m).Validate(); err != nil {
					t.Fatalf("%s/%s/%s: %v", task, mode, m, err)
				}
			}
		}
	}
}

func TestFinetuneFederatedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := tinyConfig(TaskFinetune, ModeFederated, "lstm")
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy <= 0 || rep.Accuracy > 1 {
		t.Fatalf("accuracy %v out of range", rep.Accuracy)
	}
	if len(rep.History.Rounds) != cfg.Rounds {
		t.Fatalf("rounds %d, want %d", len(rep.History.Rounds), cfg.Rounds)
	}
	if rep.EvalCurve == nil || len(rep.EvalCurve.Points) != cfg.Rounds {
		t.Fatal("eval curve missing points")
	}
	if rep.EpochTimes.Count() == 0 {
		t.Fatal("no epoch timings recorded")
	}
	if rep.VocabSize <= 0 {
		t.Fatal("vocab size missing")
	}
}

func TestFinetuneStandalonePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := tinyConfig(TaskFinetune, ModeStandalone, "lstm")
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerSite) != cfg.StandaloneLimit {
		t.Fatalf("per-site results %d, want %d", len(rep.PerSite), cfg.StandaloneLimit)
	}
	// Weighted mean must lie within the per-site range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range rep.PerSite {
		lo, hi = math.Min(lo, s.Accuracy), math.Max(hi, s.Accuracy)
	}
	if rep.Accuracy < lo-1e-9 || rep.Accuracy > hi+1e-9 {
		t.Fatalf("mean accuracy %v outside per-site range [%v,%v]", rep.Accuracy, lo, hi)
	}
}

func TestPretrainCentralizedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := tinyConfig(TaskPretrain, ModeCentralized, "bert-mini")
	cfg.TrainSize = 48
	cfg.ValidSize = 24
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Curve has the untrained baseline plus one point per round.
	if len(rep.EvalCurve.Points) != cfg.Rounds+1 {
		t.Fatalf("curve points %d, want %d", len(rep.EvalCurve.Points), cfg.Rounds+1)
	}
	// The untrained loss should be near ln|V| and training must reduce it.
	start := rep.EvalCurve.First()
	lnV := math.Log(float64(rep.VocabSize))
	if math.Abs(start-lnV) > 2.5 {
		t.Fatalf("untrained MLM loss %.2f far from ln|V| = %.2f", start, lnV)
	}
	if rep.EvalLoss >= start {
		t.Fatalf("MLM loss did not improve: %.3f -> %.3f", start, rep.EvalLoss)
	}
}

func TestPretrainRejectsLSTM(t *testing.T) {
	cfg := tinyConfig(TaskPretrain, ModeCentralized, "lstm")
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err == nil {
		t.Fatal("want error: LSTM cannot pretrain with MLM")
	}
}

func TestPipelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	run := func() float64 {
		cfg := tinyConfig(TaskFinetune, ModeCentralized, "lstm")
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Accuracy
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed pipelines diverged: %v vs %v", a, b)
	}
}

func TestPipelineRejectsInvalidConfig(t *testing.T) {
	cfg := tinyConfig(TaskFinetune, ModeFederated, "lstm")
	cfg.Rounds = 0
	if _, err := NewPipeline(cfg); err == nil {
		t.Fatal("want config error")
	}
}
