// Package core implements the paper's primary contribution: the integrated
// system pipeline of Fig. 1 — task allocation (pretraining / fine-tuning),
// NVFlare-style provisioning and execution, and result collection — gluing
// the NLP models, the synthetic clinical substrate, and the FL framework
// into one reproducible harness.
package core

import (
	"fmt"

	"clinfl/internal/data"
	"clinfl/internal/ehr"
)

// Task selects the workload (Fig. 1 "tasks allocation").
type Task string

// Supported tasks.
const (
	// TaskFinetune is ADR binary classification (Table III).
	TaskFinetune Task = "finetune"
	// TaskPretrain is masked-language-model pretraining (Fig. 2).
	TaskPretrain Task = "pretrain"
)

// Mode selects the training scheme compared in the paper.
type Mode string

// Supported training schemes.
const (
	// ModeCentralized pools all data at one site (upper bound).
	ModeCentralized Mode = "centralized"
	// ModeFederated trains across clients with FedAvg aggregation.
	ModeFederated Mode = "fl"
	// ModeStandalone trains each site alone on its own shard (the paper's
	// "standalone" / "small dataset" lower bound).
	ModeStandalone Mode = "standalone"
)

// Partition selects how client shards are drawn.
type Partition string

// Supported partitions.
const (
	// PartitionBalanced gives every client the same data volume.
	PartitionBalanced Partition = "balanced"
	// PartitionImbalanced uses the paper's ratio vector
	// {0.29, 0.22, 0.17, 0.14, 0.09, 0.04, 0.03, 0.02}.
	PartitionImbalanced Partition = "imbalanced"
)

// Config fully describes one pipeline run.
type Config struct {
	Task      Task
	Mode      Mode
	Partition Partition
	// ModelName is "bert", "bert-mini" or "lstm" (Table II).
	ModelName string

	// Clients is the federation size (paper: 8).
	Clients int
	// Rounds is E, the communication-round count. For centralized and
	// standalone modes each "round" is one eval checkpoint of
	// LocalEpochs epochs, keeping curves comparable across modes.
	Rounds int
	// LocalEpochs per round.
	LocalEpochs int
	// StandaloneLimit caps how many sites are trained in standalone mode
	// (mean is reported); 0 trains every site.
	StandaloneLimit int

	// LR / BatchSize / Workers / ClipNorm parameterize local Adam training.
	LR        float64
	BatchSize int
	Workers   int
	ClipNorm  float64

	// MaxLen is the encoded sequence length (with [CLS]/[SEP]).
	MaxLen int
	// TrainSize / ValidSize subsample the generated data (0 = use all).
	// The paper's full sizes are 6,927/1,732 for fine-tuning.
	TrainSize, ValidSize int
	// EHR configures the synthetic clinical substrate.
	EHR ehr.Config
	// Seed drives model init and training streams.
	Seed int64
}

// Default returns the scaled-down reference configuration used by the
// experiment harness (see DESIGN.md for the scaling rationale). Model
// geometry always follows Table II; data volume and sequence length are
// CPU-budget substitutions.
func Default(task Task, mode Mode, modelName string) Config {
	cfg := Config{
		Task:        task,
		Mode:        mode,
		Partition:   PartitionImbalanced,
		ModelName:   modelName,
		Clients:     8,
		Rounds:      8,
		LocalEpochs: 1,
		BatchSize:   32,
		ClipNorm:    1,
		MaxLen:      24,
		TrainSize:   640,
		ValidSize:   200,
		EHR:         ehr.DefaultConfig(),
		Seed:        1,
	}
	// Per-model stable learning rates. The paper's Table I lists Adam 1e-2,
	// which diverges for transformers trained from scratch in this stack;
	// the substitution is documented in DESIGN.md and EXPERIMENTS.md.
	switch modelName {
	case "lstm":
		cfg.LR = 5e-3
	case "bert-mini":
		cfg.LR = 2e-3
	default:
		cfg.LR = 1e-3
	}
	if task == TaskPretrain {
		cfg.TrainSize = 800
		cfg.ValidSize = 240
		cfg.MaxLen = 20
		cfg.Rounds = 5
	}
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Task {
	case TaskFinetune, TaskPretrain:
	default:
		return fmt.Errorf("core: unknown task %q", c.Task)
	}
	switch c.Mode {
	case ModeCentralized, ModeFederated, ModeStandalone:
	default:
		return fmt.Errorf("core: unknown mode %q", c.Mode)
	}
	switch c.Partition {
	case PartitionBalanced, PartitionImbalanced:
	default:
		return fmt.Errorf("core: unknown partition %q", c.Partition)
	}
	if c.Clients <= 0 {
		return fmt.Errorf("core: Clients %d must be positive", c.Clients)
	}
	if c.Partition == PartitionImbalanced && c.Mode != ModeCentralized && c.Clients != len(data.PaperImbalancedRatios) {
		return fmt.Errorf("core: imbalanced partition requires %d clients, got %d",
			len(data.PaperImbalancedRatios), c.Clients)
	}
	if c.Rounds <= 0 || c.LocalEpochs <= 0 {
		return fmt.Errorf("core: Rounds/LocalEpochs must be positive")
	}
	if c.MaxLen < 3 {
		return fmt.Errorf("core: MaxLen %d too small", c.MaxLen)
	}
	if err := c.EHR.Validate(); err != nil {
		return err
	}
	return nil
}
