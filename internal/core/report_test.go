package core

import (
	"context"
	"testing"
	"time"

	"clinfl/internal/data"
	"clinfl/internal/ehr"
	"clinfl/internal/metrics"
)

// These tests exercise pipeline plumbing that the training integration
// tests don't reach: data preparation invariants, partition dispatch and
// report bookkeeping — all cheap enough to run in -short mode.

func TestPrepareFinetuneSplitsAndEncodes(t *testing.T) {
	cfg := tinyConfig(TaskFinetune, ModeFederated, "lstm")
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, valid, vocabSize, err := p.prepareFinetune()
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != cfg.TrainSize || len(valid) != cfg.ValidSize {
		t.Fatalf("split %d/%d, want %d/%d", len(train), len(valid), cfg.TrainSize, cfg.ValidSize)
	}
	if vocabSize <= 0 {
		t.Fatal("empty vocab")
	}
	for i, ex := range train {
		if len(ex.IDs) != cfg.MaxLen || len(ex.PadMask) != cfg.MaxLen {
			t.Fatalf("example %d not padded to MaxLen", i)
		}
		if ex.Label != 0 && ex.Label != 1 {
			t.Fatalf("example %d label %d", i, ex.Label)
		}
	}
	// Class balance should roughly match the cohort's.
	rate := data.Dataset(train).PositiveRate()
	if rate < 0.1 || rate > 0.4 {
		t.Fatalf("train positive rate %.3f implausible", rate)
	}
}

func TestPrepareFinetuneRejectsOversizedSplit(t *testing.T) {
	cfg := tinyConfig(TaskFinetune, ModeCentralized, "lstm")
	cfg.TrainSize = 10000
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := p.prepareFinetune(); err == nil {
		t.Fatal("want error for train+valid exceeding cohort")
	}
}

func TestPreparePretrainEncodes(t *testing.T) {
	cfg := tinyConfig(TaskPretrain, ModeCentralized, "bert-mini")
	cfg.TrainSize, cfg.ValidSize = 40, 20
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, valid, vocabSize, err := p.preparePretrain()
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 40 || len(valid) != 20 {
		t.Fatalf("split %d/%d", len(train), len(valid))
	}
	if vocabSize <= 0 {
		t.Fatal("empty vocab")
	}
	for i, ids := range train {
		if len(ids) != cfg.MaxLen {
			t.Fatalf("sequence %d length %d, want %d", i, len(ids), cfg.MaxLen)
		}
	}
}

func TestPartitionDispatch(t *testing.T) {
	cfg := tinyConfig(TaskFinetune, ModeFederated, "lstm")
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := make(data.Dataset, 100)
	imb, err := p.partition(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(imb) != 8 || len(imb[0]) <= len(imb[7]) {
		t.Fatal("imbalanced partition shape wrong")
	}

	cfg.Partition = PartitionBalanced
	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := p2.partition(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(bal) != 8 {
		t.Fatalf("balanced shards %d", len(bal))
	}
	for _, s := range bal {
		if len(s) != 12 && len(s) != 13 {
			t.Fatalf("balanced shard size %d", len(s))
		}
	}
}

func TestPartitionIDsPreservesSequences(t *testing.T) {
	cfg := tinyConfig(TaskPretrain, ModeFederated, "bert-mini")
	cfg.Partition = PartitionBalanced
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]int, 64)
	for i := range seqs {
		seqs[i] = []int{i, i + 1}
	}
	shards, err := p.partitionIDs(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != cfg.Clients {
		t.Fatalf("shards %d", len(shards))
	}
	seen := 0
	for _, shard := range shards {
		for _, ids := range shard {
			if ids[1] != ids[0]+1 {
				t.Fatal("sequence corrupted by partition")
			}
			seen++
		}
	}
	if seen != 64 {
		t.Fatalf("partition covers %d of 64", seen)
	}
}

func TestLocalConfigTimingHook(t *testing.T) {
	cfg := tinyConfig(TaskFinetune, ModeCentralized, "lstm")
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	timing := metrics.NewTiming("test")
	lc := p.localConfig(timing)
	if lc.EpochHook == nil {
		t.Fatal("no epoch hook wired")
	}
	lc.EpochHook("site", 0, 0, 5*time.Millisecond)
	if timing.Count() != 1 {
		t.Fatal("hook did not record")
	}
	if p.localConfig(nil).EpochHook != nil {
		t.Fatal("nil timing should not wire a hook")
	}
}

func TestDefaultUsesPaperCohort(t *testing.T) {
	cfg := Default(TaskFinetune, ModeFederated, "lstm")
	if cfg.EHR.Patients != 8638 {
		t.Fatalf("cohort %d, want the paper's 8,638", cfg.EHR.Patients)
	}
	want := 1824.0 / 8638.0
	if diff := cfg.EHR.TargetPositiveRate - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("positive rate %v, want %v", cfg.EHR.TargetPositiveRate, want)
	}
	if _, err := ehr.GenerateCorpus(ehr.Config{}); err == nil {
		t.Fatal("zero ehr config should not validate")
	}
}

func TestRunUnknownTaskRejected(t *testing.T) {
	cfg := tinyConfig(TaskFinetune, ModeFederated, "lstm")
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.cfg.Task = "bogus" // bypass NewPipeline validation deliberately
	if _, err := p.Run(context.Background()); err == nil {
		t.Fatal("want unknown-task error")
	}
}
