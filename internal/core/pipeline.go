package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"clinfl/internal/data"
	"clinfl/internal/ehr"
	"clinfl/internal/fl"
	"clinfl/internal/metrics"
	"clinfl/internal/mlm"
	"clinfl/internal/model"
	"clinfl/internal/nn"
	"clinfl/internal/tensor"
	"clinfl/internal/token"
)

// SiteResult is one standalone site's outcome.
type SiteResult struct {
	Site     string
	Samples  int
	Accuracy float64 // finetune
	EvalLoss float64 // pretrain
}

// Report is the pipeline output (Fig. 1 "obtaining results").
type Report struct {
	Config    Config
	VocabSize int

	// Accuracy is the selected global model's top-1 validation accuracy
	// (finetune). For standalone mode it is the sample-weighted mean over
	// trained sites.
	Accuracy float64
	// EvalLoss is the final held-out MLM loss (pretrain).
	EvalLoss float64
	// PerSite holds standalone per-site outcomes.
	PerSite []SiteResult

	// EvalCurve tracks validation accuracy (finetune) or held-out MLM loss
	// (pretrain) per round — the Fig. 2 trajectories.
	EvalCurve *metrics.Curve
	// TrainCurve tracks mean local training loss per round.
	TrainCurve *metrics.Curve
	// EpochTimes aggregates local-epoch wall-clock times (Fig. 3).
	EpochTimes *metrics.Timing
	// History is the federated run record (nil for standalone).
	History *fl.History
	// Duration is total pipeline wall-clock time.
	Duration time.Duration
}

// Pipeline executes the paper's system pipeline for one configuration.
type Pipeline struct {
	cfg Config
}

// NewPipeline validates cfg and returns a runnable pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg}, nil
}

// Run executes the pipeline: data generation → tokenization → model
// construction → (centralized | federated | standalone) training →
// results.
func (p *Pipeline) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	var (
		rep *Report
		err error
	)
	switch p.cfg.Task {
	case TaskFinetune:
		rep, err = p.runFinetune(ctx)
	case TaskPretrain:
		rep, err = p.runPretrain(ctx)
	default:
		return nil, fmt.Errorf("core: unknown task %q", p.cfg.Task)
	}
	if err != nil {
		return nil, err
	}
	rep.Config = p.cfg
	rep.Duration = time.Since(start)
	return rep, nil
}

// ---- data preparation ----

// prepareFinetune generates the cohort, builds the vocabulary and encodes
// train/validation example sets.
func (p *Pipeline) prepareFinetune() (train, valid data.Dataset, vocabSize int, err error) {
	patients, err := ehr.GenerateCohort(p.cfg.EHR)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: cohort: %w", err)
	}
	streams := make([][]string, len(patients))
	for i, pt := range patients {
		streams[i] = pt.Tokens
	}
	vocab, err := token.BuildVocab(streams, 1, 0)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: vocab: %w", err)
	}
	tok, err := token.NewTokenizer(vocab, p.cfg.MaxLen)
	if err != nil {
		return nil, nil, 0, err
	}
	all := make(data.Dataset, len(patients))
	for i, pt := range patients {
		ids, padMask := tok.Encode(pt.Tokens)
		all[i] = data.Example{IDs: ids, PadMask: padMask, Label: pt.Outcome}
	}
	all = all.Shuffled(tensor.NewRNG(p.cfg.Seed + 17))

	trainSize, validSize := p.cfg.TrainSize, p.cfg.ValidSize
	if trainSize <= 0 || validSize <= 0 {
		// Paper split: 6,927 train / 1,732 valid of 8,638 (~80/20).
		trainSize = len(all) * 8 / 10
		validSize = len(all) - trainSize
	}
	if trainSize+validSize > len(all) {
		return nil, nil, 0, fmt.Errorf("core: train+valid %d exceeds cohort %d", trainSize+validSize, len(all))
	}
	return all[:trainSize], all[trainSize : trainSize+validSize], vocab.Size(), nil
}

// preparePretrain generates the corpus and encodes train/validation id
// sequences.
func (p *Pipeline) preparePretrain() (train, valid [][]int, vocabSize int, err error) {
	corpus, err := ehr.GenerateCorpus(p.cfg.EHR)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: corpus: %w", err)
	}
	vocab, err := token.BuildVocab(corpus, 1, 0)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: vocab: %w", err)
	}
	tok, err := token.NewTokenizer(vocab, p.cfg.MaxLen)
	if err != nil {
		return nil, nil, 0, err
	}
	all := make([][]int, len(corpus))
	for i, sent := range corpus {
		ids, _ := tok.Encode(sent)
		all[i] = ids
	}
	rng := tensor.NewRNG(p.cfg.Seed + 23)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	trainSize, validSize := p.cfg.TrainSize, p.cfg.ValidSize
	if trainSize <= 0 || validSize <= 0 {
		trainSize = len(all) * 9 / 10
		validSize = len(all) - trainSize
	}
	if trainSize+validSize > len(all) {
		return nil, nil, 0, fmt.Errorf("core: train+valid %d exceeds corpus %d", trainSize+validSize, len(all))
	}
	return all[:trainSize], all[trainSize : trainSize+validSize], vocab.Size(), nil
}

// newClassifier instantiates the configured Table II model.
func (p *Pipeline) newClassifier(vocabSize int, seed int64) (model.Classifier, error) {
	spec, err := model.SpecByName(p.cfg.ModelName)
	if err != nil {
		return nil, err
	}
	return model.New(spec, vocabSize, p.cfg.MaxLen, 2, seed)
}

// localConfig builds the per-client training configuration.
func (p *Pipeline) localConfig(timing *metrics.Timing) fl.LocalConfig {
	lc := fl.LocalConfig{
		Epochs:    p.cfg.LocalEpochs,
		LR:        p.cfg.LR,
		BatchSize: p.cfg.BatchSize,
		Workers:   p.cfg.Workers,
		ClipNorm:  p.cfg.ClipNorm,
		Seed:      p.cfg.Seed,
	}
	if timing != nil {
		lc.EpochHook = func(_ string, _, _ int, d time.Duration) { timing.Add(d) }
	}
	return lc
}

// partition splits the training set per the configured scheme.
func (p *Pipeline) partition(train data.Dataset) ([]data.Dataset, error) {
	switch p.cfg.Partition {
	case PartitionBalanced:
		return data.PartitionBalanced(train, p.cfg.Clients)
	case PartitionImbalanced:
		return data.PartitionRatios(train, data.PaperImbalancedRatios)
	default:
		return nil, fmt.Errorf("core: unknown partition %q", p.cfg.Partition)
	}
}

// partitionIDs splits pretraining sequences per the configured scheme.
func (p *Pipeline) partitionIDs(train [][]int) ([][][]int, error) {
	// Reuse the dataset partitioners via index datasets to keep the ratio
	// logic in one place.
	idx := make(data.Dataset, len(train))
	for i := range idx {
		idx[i] = data.Example{Label: i}
	}
	var parts []data.Dataset
	var err error
	switch p.cfg.Partition {
	case PartitionBalanced:
		parts, err = data.PartitionBalanced(idx, p.cfg.Clients)
	case PartitionImbalanced:
		parts, err = data.PartitionRatios(idx, data.PaperImbalancedRatios)
	default:
		return nil, fmt.Errorf("core: unknown partition %q", p.cfg.Partition)
	}
	if err != nil {
		return nil, err
	}
	out := make([][][]int, len(parts))
	for ci, part := range parts {
		shard := make([][]int, len(part))
		for i, e := range part {
			shard[i] = train[e.Label]
		}
		out[ci] = shard
	}
	return out, nil
}

// ---- fine-tuning (Table III) ----

func (p *Pipeline) runFinetune(ctx context.Context) (*Report, error) {
	trainSet, validSet, vocabSize, err := p.prepareFinetune()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		VocabSize:  vocabSize,
		EvalCurve:  &metrics.Curve{Name: string(p.cfg.Mode) + "/" + p.cfg.ModelName + "/val_acc"},
		TrainCurve: &metrics.Curve{Name: string(p.cfg.Mode) + "/" + p.cfg.ModelName + "/train_loss"},
		EpochTimes: metrics.NewTiming("local_epoch"),
	}

	valModel, err := p.newClassifier(vocabSize, p.cfg.Seed)
	if err != nil {
		return nil, err
	}
	validate := func(weights map[string]*tensor.Matrix) (float64, error) {
		if err := nn.LoadWeights(valModel.Params(), weights); err != nil {
			return 0, err
		}
		preds, err := valModel.Predict(validSet)
		if err != nil {
			return 0, err
		}
		acc, err := metrics.Accuracy(preds, validSet.Labels())
		if err != nil {
			return 0, err
		}
		return acc, nil
	}

	switch p.cfg.Mode {
	case ModeStandalone:
		return p.runStandaloneFinetune(ctx, rep, trainSet, validate)
	case ModeCentralized, ModeFederated:
	default:
		return nil, fmt.Errorf("core: unknown mode %q", p.cfg.Mode)
	}

	shards := []data.Dataset{trainSet}
	if p.cfg.Mode == ModeFederated {
		if shards, err = p.partition(trainSet); err != nil {
			return nil, err
		}
	}
	executors := make([]fl.Executor, len(shards))
	for i, shard := range shards {
		mdl, err := p.newClassifier(vocabSize, p.cfg.Seed)
		if err != nil {
			return nil, err
		}
		lc := p.localConfig(rep.EpochTimes)
		lc.Seed = p.cfg.Seed + int64(i)*37
		exec, err := fl.NewClassifierExecutor(fmt.Sprintf("site-%d", i+1), mdl, shard, nil, lc)
		if err != nil {
			return nil, err
		}
		executors[i] = exec
	}

	ctrl, err := fl.NewController(fl.ControllerConfig{
		Rounds:   p.cfg.Rounds,
		Validate: validate,
	}, executors)
	if err != nil {
		return nil, err
	}
	initial := nn.SnapshotWeights(valModel.Params())
	res, err := ctrl.Run(ctx, initial)
	if err != nil {
		return nil, err
	}
	for _, r := range res.History.Rounds {
		rep.EvalCurve.Add(r.Round, r.ValScore)
		rep.TrainCurve.Add(r.Round, r.MeanTrainLoss)
	}
	rep.History = &res.History
	rep.Accuracy = res.History.BestScore
	return rep, nil
}

// runStandaloneFinetune trains each site alone and reports the
// sample-weighted mean validation accuracy.
func (p *Pipeline) runStandaloneFinetune(ctx context.Context, rep *Report, trainSet data.Dataset, validate func(map[string]*tensor.Matrix) (float64, error)) (*Report, error) {
	shards, err := p.partition(trainSet)
	if err != nil {
		return nil, err
	}
	limit := p.cfg.StandaloneLimit
	if limit <= 0 || limit > len(shards) {
		limit = len(shards)
	}
	var accSum, weightSum float64
	for i := 0; i < limit; i++ {
		mdl, err := p.newClassifier(rep.VocabSize, p.cfg.Seed)
		if err != nil {
			return nil, err
		}
		lc := p.localConfig(rep.EpochTimes)
		lc.Seed = p.cfg.Seed + int64(i)*37
		site := fmt.Sprintf("site-%d", i+1)
		exec, err := fl.NewClassifierExecutor(site, mdl, shards[i], nil, lc)
		if err != nil {
			return nil, err
		}
		ctrl, err := fl.NewController(fl.ControllerConfig{
			Rounds:   p.cfg.Rounds,
			Validate: validate,
		}, []fl.Executor{exec})
		if err != nil {
			return nil, err
		}
		res, err := ctrl.Run(ctx, nn.SnapshotWeights(mdl.Params()))
		if err != nil {
			return nil, fmt.Errorf("core: standalone %s: %w", site, err)
		}
		acc := res.History.BestScore
		rep.PerSite = append(rep.PerSite, SiteResult{Site: site, Samples: len(shards[i]), Accuracy: acc})
		accSum += acc * float64(len(shards[i]))
		weightSum += float64(len(shards[i]))
	}
	rep.Accuracy = accSum / weightSum
	return rep, nil
}

// ---- pretraining (Fig. 2) ----

func (p *Pipeline) runPretrain(ctx context.Context) (*Report, error) {
	if p.cfg.ModelName == "lstm" {
		return nil, errors.New("core: MLM pretraining requires a BERT-family model")
	}
	trainSeqs, validSeqs, vocabSize, err := p.preparePretrain()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		VocabSize:  vocabSize,
		EvalCurve:  &metrics.Curve{Name: string(p.cfg.Mode) + "/" + string(p.cfg.Partition) + "/mlm_loss"},
		TrainCurve: &metrics.Curve{Name: string(p.cfg.Mode) + "/" + string(p.cfg.Partition) + "/train_loss"},
		EpochTimes: metrics.NewTiming("local_epoch"),
	}
	maskCfg := mlm.DefaultConfig(vocabSize)

	newBERT := func(seed int64) (*model.BERT, error) {
		spec, err := model.SpecByName(p.cfg.ModelName)
		if err != nil {
			return nil, err
		}
		c, err := model.New(spec, vocabSize, p.cfg.MaxLen, 2, seed)
		if err != nil {
			return nil, err
		}
		b, ok := c.(*model.BERT)
		if !ok {
			return nil, fmt.Errorf("core: %s is not a BERT-family model", p.cfg.ModelName)
		}
		return b, nil
	}

	evalModel, err := newBERT(p.cfg.Seed)
	if err != nil {
		return nil, err
	}
	evalExec, err := fl.NewMLMExecutor("eval", evalModel, evalModel.Params(), trainSeqs[:1], maskCfg, p.localConfig(nil))
	if err != nil {
		return nil, err
	}
	// Record the untrained baseline (round -1 in spirit; plotted at 0 with
	// trained rounds at 1..E). The paper's Fig. 2 starting loss ≈ ln|V|.
	baseLoss, err := evalExec.EvalMLMLoss(nn.SnapshotWeights(evalModel.Params()), validSeqs, p.cfg.Seed+101)
	if err != nil {
		return nil, err
	}
	rep.EvalCurve.Add(0, baseLoss)

	validate := func(weights map[string]*tensor.Matrix) (float64, error) {
		loss, err := evalExec.EvalMLMLoss(weights, validSeqs, p.cfg.Seed+101)
		if err != nil {
			return 0, err
		}
		return -loss, nil // higher is better for model selection
	}

	var shards [][][]int
	switch p.cfg.Mode {
	case ModeCentralized:
		shards = [][][]int{trainSeqs}
	case ModeFederated:
		if shards, err = p.partitionIDs(trainSeqs); err != nil {
			return nil, err
		}
	case ModeStandalone:
		// The paper's "BERT utilizing a small dataset": one site training
		// alone on a balanced-shard-sized subset.
		allShards, err := p.partitionIDs(trainSeqs)
		if err != nil {
			return nil, err
		}
		limit := p.cfg.StandaloneLimit
		if limit <= 0 || limit > 1 {
			limit = 1
		}
		shards = allShards[:limit]
	}

	executors := make([]fl.Executor, len(shards))
	for i, shard := range shards {
		mdl, err := newBERT(p.cfg.Seed)
		if err != nil {
			return nil, err
		}
		lc := p.localConfig(rep.EpochTimes)
		lc.Seed = p.cfg.Seed + int64(i)*37
		exec, err := fl.NewMLMExecutor(fmt.Sprintf("site-%d", i+1), mdl, mdl.Params(), shard, maskCfg, lc)
		if err != nil {
			return nil, err
		}
		executors[i] = exec
	}
	ctrl, err := fl.NewController(fl.ControllerConfig{
		Rounds:   p.cfg.Rounds,
		Validate: validate,
	}, executors)
	if err != nil {
		return nil, err
	}
	res, err := ctrl.Run(ctx, nn.SnapshotWeights(evalModel.Params()))
	if err != nil {
		return nil, err
	}
	for _, r := range res.History.Rounds {
		rep.EvalCurve.Add(r.Round+1, -r.ValScore)
		rep.TrainCurve.Add(r.Round+1, r.MeanTrainLoss)
	}
	rep.History = &res.History
	rep.EvalLoss = rep.EvalCurve.Last()
	return rep, nil
}
