package autograd

import (
	"errors"
	"math"
	"testing"

	"clinfl/internal/tensor"
)

// checkGrad is a convenience wrapper asserting a max relative error bound.
func checkGrad(t *testing.T, leaves []*tensor.Matrix, f func(tp *Tape, ns []*Node) (*Node, error)) {
	t.Helper()
	rel, err := GradCheck(leaves, f, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-4 {
		t.Fatalf("max relative gradient error %v > 1e-4", rel)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	tp := NewTape()
	n := tp.Leaf(tensor.New(2, 2))
	if err := tp.Backward(n); !errors.Is(err, ErrNotScalar) {
		t.Fatalf("want ErrNotScalar, got %v", err)
	}
}

func TestBackwardWrongTape(t *testing.T) {
	t1, t2 := NewTape(), NewTape()
	n := t1.Leaf(tensor.New(1, 1))
	if err := t2.Backward(n); err == nil {
		t.Fatal("want error for cross-tape backward")
	}
}

func TestAddGrad(t *testing.T) {
	rng := tensor.NewRNG(1)
	a, b := rng.Normal(3, 4, 0, 1), rng.Normal(3, 4, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.Add(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		return tp.Mean(s), nil
	})
}

func TestSubGrad(t *testing.T) {
	rng := tensor.NewRNG(2)
	a, b := rng.Normal(2, 5, 0, 1), rng.Normal(2, 5, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.Sub(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(s, s)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestMulGrad(t *testing.T) {
	rng := tensor.NewRNG(3)
	a, b := rng.Normal(3, 3, 0, 1), rng.Normal(3, 3, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.Mul(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		return tp.Mean(s), nil
	})
}

func TestMatMulGrad(t *testing.T) {
	rng := tensor.NewRNG(4)
	a, b := rng.Normal(3, 4, 0, 1), rng.Normal(4, 2, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.MatMul(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		return tp.Mean(s), nil
	})
}

func TestMatMulTransBGrad(t *testing.T) {
	rng := tensor.NewRNG(5)
	a, b := rng.Normal(3, 4, 0, 1), rng.Normal(5, 4, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.MatMulTransB(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(s, s)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestActivationGrads(t *testing.T) {
	acts := map[string]func(tp *Tape, n *Node) *Node{
		"tanh":    func(tp *Tape, n *Node) *Node { return tp.Tanh(n) },
		"sigmoid": func(tp *Tape, n *Node) *Node { return tp.Sigmoid(n) },
		"gelu":    func(tp *Tape, n *Node) *Node { return tp.GELU(n) },
	}
	for name, act := range acts {
		act := act
		t.Run(name, func(t *testing.T) {
			x := tensor.NewRNG(6).Normal(4, 4, 0, 2)
			checkGrad(t, []*tensor.Matrix{x}, func(tp *Tape, ns []*Node) (*Node, error) {
				return tp.Mean(act(tp, ns[0])), nil
			})
		})
	}
}

func TestReLUGradAwayFromKink(t *testing.T) {
	// Keep values away from 0 where ReLU is non-differentiable.
	x := tensor.MustFromSlice(2, 3, []float64{-2, -1, -0.5, 0.5, 1, 2})
	checkGrad(t, []*tensor.Matrix{x}, func(tp *Tape, ns []*Node) (*Node, error) {
		return tp.Mean(tp.ReLU(ns[0])), nil
	})
}

func TestSoftmaxRowsGrad(t *testing.T) {
	x := tensor.NewRNG(7).Normal(3, 5, 0, 1)
	checkGrad(t, []*tensor.Matrix{x}, func(tp *Tape, ns []*Node) (*Node, error) {
		s := tp.SoftmaxRows(ns[0])
		sq, err := tp.Mul(s, s)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	tp := NewTape()
	x := tp.Constant(tensor.NewRNG(8).Normal(4, 6, 0, 3))
	s := tp.SoftmaxRows(x)
	for i := 0; i < 4; i++ {
		var sum float64
		for _, v := range s.Value.Row(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestLayerNormGrad(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := rng.Normal(3, 6, 0, 2)
	gain := rng.Normal(1, 6, 1, 0.1)
	bias := rng.Normal(1, 6, 0, 0.1)
	checkGrad(t, []*tensor.Matrix{x, gain, bias}, func(tp *Tape, ns []*Node) (*Node, error) {
		y, err := tp.LayerNorm(ns[0], ns[1], ns[2], 1e-5)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestLayerNormNormalizes(t *testing.T) {
	tp := NewTape()
	rng := tensor.NewRNG(10)
	x := tp.Constant(rng.Normal(5, 16, 3, 4))
	gain := tensor.New(1, 16)
	gain.Fill(1)
	y, err := tp.LayerNorm(x, tp.Constant(gain), tp.Constant(tensor.New(1, 16)), 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		row := y.Value.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean %v", i, mean)
		}
		var variance float64
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(len(row))
		if math.Abs(variance-1) > 1e-6 {
			t.Fatalf("row %d variance %v", i, variance)
		}
	}
}

func TestEmbeddingGradScatter(t *testing.T) {
	table := tensor.NewRNG(11).Normal(5, 3, 0, 1)
	ids := []int{2, 2, 4}
	tp := NewTape()
	tn := tp.Leaf(table)
	emb, err := tp.Embedding(tn, ids)
	if err != nil {
		t.Fatal(err)
	}
	loss := tp.Mean(emb)
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	// Row 2 referenced twice, row 4 once, others zero.
	g := tn.Grad
	per := 1.0 / 9.0 // mean over 3x3 output
	for j := 0; j < 3; j++ {
		if math.Abs(g.At(2, j)-2*per) > 1e-12 {
			t.Fatalf("row2 grad %v, want %v", g.At(2, j), 2*per)
		}
		if math.Abs(g.At(4, j)-per) > 1e-12 {
			t.Fatalf("row4 grad %v, want %v", g.At(4, j), per)
		}
		if g.At(0, j) != 0 {
			t.Fatal("unreferenced row got gradient")
		}
	}
}

func TestEmbeddingOutOfRange(t *testing.T) {
	tp := NewTape()
	tn := tp.Leaf(tensor.New(3, 2))
	if _, err := tp.Embedding(tn, []int{3}); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := tp.Embedding(tn, []int{-1}); err == nil {
		t.Fatal("want negative id error")
	}
}

func TestConcatColsGrad(t *testing.T) {
	rng := tensor.NewRNG(12)
	a, b := rng.Normal(3, 2, 0, 1), rng.Normal(3, 4, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		c, err := tp.ConcatCols(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(c, c)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestConcatRowsGrad(t *testing.T) {
	rng := tensor.NewRNG(13)
	a, b := rng.Normal(2, 3, 0, 1), rng.Normal(4, 3, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		c, err := tp.ConcatRows(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(c, c)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestSliceGrads(t *testing.T) {
	rng := tensor.NewRNG(14)
	x := rng.Normal(4, 6, 0, 1)
	checkGrad(t, []*tensor.Matrix{x}, func(tp *Tape, ns []*Node) (*Node, error) {
		c, err := tp.SliceCols(ns[0], 1, 4)
		if err != nil {
			return nil, err
		}
		r, err := tp.SliceRows(c, 1, 3)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(r, r)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestMeanRowsGrad(t *testing.T) {
	x := tensor.NewRNG(15).Normal(5, 3, 0, 1)
	checkGrad(t, []*tensor.Matrix{x}, func(tp *Tape, ns []*Node) (*Node, error) {
		m := tp.MeanRows(ns[0])
		sq, err := tp.Mul(m, m)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestAddRowVectorGrad(t *testing.T) {
	rng := tensor.NewRNG(16)
	x, b := rng.Normal(4, 3, 0, 1), rng.Normal(1, 3, 0, 1)
	checkGrad(t, []*tensor.Matrix{x, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		y, err := tp.AddRowVector(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Mean(sq), nil
	})
}

func TestCrossEntropyGrad(t *testing.T) {
	logits := tensor.NewRNG(17).Normal(4, 3, 0, 1)
	targets := []int{0, 2, 1, IgnoreIndex}
	checkGrad(t, []*tensor.Matrix{logits}, func(tp *Tape, ns []*Node) (*Node, error) {
		loss, _, err := tp.CrossEntropy(ns[0], targets)
		return loss, err
	})
}

func TestCrossEntropyCountsIgnored(t *testing.T) {
	tp := NewTape()
	logits := tp.Constant(tensor.New(3, 2))
	_, counted, err := tp.CrossEntropy(logits, []int{0, IgnoreIndex, 1})
	if err != nil {
		t.Fatal(err)
	}
	if counted != 2 {
		t.Fatalf("counted = %d, want 2", counted)
	}
}

func TestCrossEntropyUniformLogitsLossIsLogC(t *testing.T) {
	tp := NewTape()
	logits := tp.Constant(tensor.New(2, 8)) // all-zero logits = uniform distribution
	loss, _, err := tp.CrossEntropy(logits, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(8)
	if math.Abs(loss.Value.At(0, 0)-want) > 1e-12 {
		t.Fatalf("uniform CE loss = %v, want ln(8)=%v", loss.Value.At(0, 0), want)
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	tp := NewTape()
	logits := tp.Constant(tensor.New(2, 3))
	if _, _, err := tp.CrossEntropy(logits, []int{0}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, _, err := tp.CrossEntropy(logits, []int{0, 7}); err == nil {
		t.Fatal("want out-of-range target error")
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	tp := NewTape()
	x := tp.Constant(tensor.NewRNG(18).Normal(3, 3, 0, 1))
	y := tp.Dropout(x, 0.5, tensor.NewRNG(1), false)
	if y != x {
		t.Fatal("eval-mode dropout should be identity")
	}
}

func TestDropoutTrainScalesSurvivors(t *testing.T) {
	tp := NewTape()
	src := tensor.New(100, 100)
	src.Fill(1)
	x := tp.Constant(src)
	y := tp.Dropout(x, 0.25, tensor.NewRNG(2), true)
	var zeros, scaled int
	for _, v := range y.Value.Data() {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-1/0.75) < 1e-12:
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	frac := float64(zeros) / 10000
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("dropped fraction %v far from p=0.25", frac)
	}
	if scaled == 0 {
		t.Fatal("no survivors scaled")
	}
}

func TestGradAccumulationAcrossReuse(t *testing.T) {
	// y = x + x must give dy/dx = 2.
	x := tensor.MustFromSlice(1, 1, []float64{3})
	tp := NewTape()
	xn := tp.Leaf(x)
	y, err := tp.Add(xn, xn)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Backward(tp.Mean(y)); err != nil {
		t.Fatal(err)
	}
	if got := xn.Grad.At(0, 0); got != 2 {
		t.Fatalf("grad = %v, want 2", got)
	}
}

func TestTapeReset(t *testing.T) {
	tp := NewTape()
	tp.Leaf(tensor.New(1, 1))
	if tp.Len() != 1 {
		t.Fatalf("len = %d", tp.Len())
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatalf("after reset len = %d", tp.Len())
	}
}

func TestScaleGrad(t *testing.T) {
	x := tensor.NewRNG(19).Normal(2, 2, 0, 1)
	checkGrad(t, []*tensor.Matrix{x}, func(tp *Tape, ns []*Node) (*Node, error) {
		return tp.Mean(tp.Scale(2.5, ns[0])), nil
	})
}

func TestSumScalarsGrad(t *testing.T) {
	rng := tensor.NewRNG(20)
	a, b := rng.Normal(2, 2, 0, 1), rng.Normal(2, 2, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		return tp.SumScalars(tp.Mean(ns[0]), tp.Mean(ns[1]))
	})
}
