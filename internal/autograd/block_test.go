package autograd

import (
	"math"
	"testing"

	"clinfl/internal/tensor"
)

func TestBlockMatMulGrad(t *testing.T) {
	rng := tensor.NewRNG(21)
	const block = 3
	a := rng.Normal(2*block, block, 0, 1)
	b := rng.Normal(2*block, 4, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		v, err := tp.BlockMatMul(ns[0], ns[1], block)
		if err != nil {
			return nil, err
		}
		return tp.Mean(v), nil
	})
}

func TestBlockMatMulTransBGrad(t *testing.T) {
	rng := tensor.NewRNG(22)
	const block = 3
	a := rng.Normal(2*block, 5, 0, 1)
	b := rng.Normal(2*block, 5, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		v, err := tp.BlockMatMulTransB(ns[0], ns[1], block)
		if err != nil {
			return nil, err
		}
		return tp.Mean(v), nil
	})
}

func TestBlockSoftmaxRowsGradUnmasked(t *testing.T) {
	rng := tensor.NewRNG(23)
	const block = 4
	a := rng.Normal(2*block, block, 0, 1)
	w := rng.Normal(2*block, block, 0, 1) // weight so the mean sees asymmetric upstream grads
	checkGrad(t, []*tensor.Matrix{a}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.BlockSoftmaxRows(ns[0], block, nil)
		if err != nil {
			return nil, err
		}
		v, err := tp.Mul(s, tp.Constant(w))
		if err != nil {
			return nil, err
		}
		return tp.Mean(v), nil
	})
}

func TestBlockSoftmaxRowsGradMasked(t *testing.T) {
	rng := tensor.NewRNG(24)
	const block = 4
	a := rng.Normal(2*block, block, 0, 1)
	w := rng.Normal(2*block, block, 0, 1)
	padMasks := [][]bool{
		{false, false, true, true},
		nil, // second sequence unpadded
	}
	checkGrad(t, []*tensor.Matrix{a}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.BlockSoftmaxRows(ns[0], block, padMasks)
		if err != nil {
			return nil, err
		}
		v, err := tp.Mul(s, tp.Constant(w))
		if err != nil {
			return nil, err
		}
		return tp.Mean(v), nil
	})
}

func TestBlockSoftmaxRowsMatchesAdditiveMask(t *testing.T) {
	// The batched exclusion mask must reproduce the legacy dense additive
	// -1e9 mask bit for bit: exp(x-1e9) underflows to exactly 0 in float64.
	rng := tensor.NewRNG(25)
	const block = 5
	scores := rng.Normal(block, block, 0, 1)
	padMask := []bool{false, false, false, true, true}

	tp := NewTape()
	got, err := tp.BlockSoftmaxRows(tp.Constant(scores), block, [][]bool{padMask})
	if err != nil {
		t.Fatal(err)
	}

	masked := scores.Clone()
	for j, pad := range padMask {
		if !pad {
			continue
		}
		for i := 0; i < block; i++ {
			masked.Set(i, j, masked.At(i, j)-1e9)
		}
	}
	want := tensor.SoftmaxRows(masked)
	if !got.Value.AllClose(want, 0, 1e-15) {
		t.Fatalf("masked block softmax diverges from additive mask:\n%v\nvs\n%v", got.Value, want)
	}
	for i := 0; i < block; i++ {
		for j, pad := range padMask {
			if pad && got.Value.At(i, j) != 0 {
				t.Fatalf("padded key (%d,%d) got weight %v", i, j, got.Value.At(i, j))
			}
		}
	}
}

func TestBlockSoftmaxRowsAllMaskedRowIsZero(t *testing.T) {
	tp := NewTape()
	scores := tensor.New(2, 2)
	scores.Fill(3)
	s, err := tp.BlockSoftmaxRows(tp.Constant(scores), 2, [][]bool{{true, true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Value.Data() {
		if v != 0 {
			t.Fatalf("fully-masked block produced weight %v", v)
		}
	}
}

func TestBlockSoftmaxRowsShapeErrors(t *testing.T) {
	tp := NewTape()
	a := tp.Constant(tensor.New(6, 3))
	if _, err := tp.BlockSoftmaxRows(a, 2, nil); err == nil {
		t.Fatal("want error: cols != block")
	}
	b := tp.Constant(tensor.New(6, 6))
	if _, err := tp.BlockSoftmaxRows(b, 6, [][]bool{{true}}); err == nil {
		t.Fatal("want error: short mask")
	}
	c := tp.Constant(tensor.New(4, 2))
	if _, err := tp.BlockSoftmaxRows(c, 2, [][]bool{nil}); err == nil {
		t.Fatal("want error: mask count != block count")
	}
}

func TestGatherRowsGrad(t *testing.T) {
	rng := tensor.NewRNG(26)
	a := rng.Normal(5, 3, 0, 1)
	w := rng.Normal(4, 3, 0, 1)
	// Index 2 repeats: the scatter-add backward must accumulate both rows.
	rows := []int{0, 2, 2, 4}
	checkGrad(t, []*tensor.Matrix{a}, func(tp *Tape, ns []*Node) (*Node, error) {
		g, err := tp.GatherRows(ns[0], rows)
		if err != nil {
			return nil, err
		}
		v, err := tp.Mul(g, tp.Constant(w))
		if err != nil {
			return nil, err
		}
		return tp.Mean(v), nil
	})
}

func TestGatherRowsForwardAndBounds(t *testing.T) {
	tp := NewTape()
	a := tp.Constant(tensor.MustFromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6}))
	g, err := tp.GatherRows(a, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MustFromSlice(2, 2, []float64{5, 6, 1, 2})
	if !g.Value.Equal(want) {
		t.Fatalf("GatherRows = %v, want %v", g.Value, want)
	}
	if _, err := tp.GatherRows(a, []int{3}); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := tp.GatherRows(a, []int{-1}); err == nil {
		t.Fatal("want negative-index error")
	}
}

func TestBlockSoftmaxSumsToOne(t *testing.T) {
	rng := tensor.NewRNG(27)
	const block = 6
	tp := NewTape()
	a := tp.Constant(rng.Normal(3*block, block, 0, 2))
	padMasks := [][]bool{nil, {false, true, false, true, false, true}, nil}
	s, err := tp.BlockSoftmaxRows(a, block, padMasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Value.Rows(); i++ {
		var sum float64
		for _, v := range s.Value.Row(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}
