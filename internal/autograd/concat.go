package autograd

import (
	"fmt"

	"clinfl/internal/tensor"
)

// ConcatRows stacks nodes vertically (all must share a column count).
// Used to gather per-example hidden states back into a batch matrix.
func (t *Tape) ConcatRows(nodes ...*Node) (*Node, error) {
	if len(nodes) == 0 {
		return t.Constant(tensor.New(0, 0)), nil
	}
	mats := make([]*tensor.Matrix, len(nodes))
	for i, n := range nodes {
		mats[i] = n.Value
	}
	v, err := tensor.Concat(mats...)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	parents := append([]*Node(nil), nodes...)
	return t.newOp(v, func(n *Node) {
		off := 0
		for _, p := range parents {
			r := p.Value.Rows()
			if p.requiresGrad {
				g, _ := n.Grad.SliceRows(off, off+r)
				p.accumulate(g)
			}
			off += r
		}
	}, parents...), nil
}
