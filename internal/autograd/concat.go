package autograd

import (
	"fmt"

	"clinfl/internal/tensor"
)

// ConcatRows stacks nodes vertically (all must share a column count).
// Used to gather per-example hidden states back into a batch matrix.
func (t *Tape) ConcatRows(nodes ...*Node) (*Node, error) {
	if len(nodes) == 0 {
		return t.Constant(tensor.New(0, 0)), nil
	}
	cols := nodes[0].Value.Cols()
	total := 0
	for _, p := range nodes {
		if p.Value.Cols() != cols {
			return nil, fmt.Errorf("autograd: %w: ConcatRows col mismatch %d vs %d",
				tensor.ErrShape, p.Value.Cols(), cols)
		}
		total += p.Value.Rows()
	}
	v := t.newMatrix(total, cols)
	off := 0
	for _, p := range nodes {
		r := p.Value.Rows()
		for i := 0; i < r; i++ {
			copy(v.Row(off+i), p.Value.Row(i))
		}
		off += r
	}
	return t.newOpN(opConcatRows, v, nodes), nil
}
