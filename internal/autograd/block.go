package autograd

import (
	"fmt"
	"math"

	"clinfl/internal/tensor"
)

// Block-aware ops for batched transformer execution over the flattened
// (B·T)×d minibatch layout. Each treats its operands as B independent
// row blocks of `block` rows, so attention never crosses sequence
// boundaries while still running as one tape node per minibatch.

// BlockMatMul multiplies row blocks independently: output block g is
// a_g×b_g (a is (B·block)×block, b is (B·block)×n). Used for attn×V.
func (t *Tape) BlockMatMul(a, b *Node, block int) (*Node, error) {
	v, err := tensor.BlockMatMul(a.Value, b.Value, block)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		if a.requiresGrad {
			// d a_g = g_g × b_gᵀ
			ga, _ := tensor.BlockMatMulTransB(n.Grad, b.Value, block)
			a.accumulate(ga)
		}
		if b.requiresGrad {
			// d b_g = a_gᵀ × g_g
			gb, _ := tensor.BlockMatMulTransA(a.Value, n.Grad, block)
			b.accumulate(gb)
		}
	}, a, b), nil
}

// BlockMatMulTransB computes per-block a_g×b_gᵀ (both (B·block)×k),
// returning (B·block)×block. Used for per-sequence Q×Kᵀ attention scores.
func (t *Tape) BlockMatMulTransB(a, b *Node, block int) (*Node, error) {
	v, err := tensor.BlockMatMulTransB(a.Value, b.Value, block)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		if a.requiresGrad {
			// d a_g = g_g × b_g
			ga, _ := tensor.BlockMatMul(n.Grad, b.Value, block)
			a.accumulate(ga)
		}
		if b.requiresGrad {
			// d b_g = g_gᵀ × a_g
			gb, _ := tensor.BlockMatMulTransA(n.Grad, a.Value, block)
			b.accumulate(gb)
		}
	}, a, b), nil
}

// BlockSoftmaxRows applies a numerically-stable softmax along every row of a
// (B·block)×block score matrix, restricted per block to non-padded key
// columns: row r of block g is normalized over columns j with
// !padMasks[g][j], and padded columns get exactly 0. padMasks may be nil
// (no padding anywhere) and individual entries may be nil (no padding in
// that sequence). This replaces the dense seq×seq additive mask the
// per-sequence path used to allocate per call.
func (t *Tape) BlockSoftmaxRows(a *Node, block int, padMasks [][]bool) (*Node, error) {
	rows, cols := a.Value.Rows(), a.Value.Cols()
	if block <= 0 || cols != block || rows%block != 0 {
		return nil, fmt.Errorf("autograd: %w: BlockSoftmaxRows %dx%d with block %d",
			tensor.ErrShape, rows, cols, block)
	}
	nb := rows / block
	if padMasks != nil && len(padMasks) != nb {
		return nil, fmt.Errorf("autograd: BlockSoftmaxRows %d masks for %d blocks", len(padMasks), nb)
	}
	for g := range padMasks {
		if padMasks[g] != nil && len(padMasks[g]) != block {
			return nil, fmt.Errorf("autograd: BlockSoftmaxRows mask %d length %d != block %d",
				g, len(padMasks[g]), block)
		}
	}
	s := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		var mask []bool
		if padMasks != nil {
			mask = padMasks[i/block]
		}
		src, dst := a.Value.Row(i), s.Row(i)
		mx := math.Inf(-1)
		for j, v := range src {
			if (mask == nil || !mask[j]) && v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range src {
			if mask != nil && mask[j] {
				continue
			}
			e := math.Exp(v - mx)
			dst[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range dst {
			dst[j] *= inv
		}
	}
	return t.newOp(s, func(n *Node) {
		// Padded columns hold s=0, so the standard softmax VJP already
		// routes no gradient through them.
		g := tensor.New(rows, cols)
		for i := 0; i < rows; i++ {
			srow, urow, grow := s.Row(i), n.Grad.Row(i), g.Row(i)
			var dot float64
			for j := range srow {
				dot += urow[j] * srow[j]
			}
			for j := range srow {
				grow[j] = srow[j] * (urow[j] - dot)
			}
		}
		a.accumulate(g)
	}, a), nil
}

// GatherRows selects rows of a by index: out row i = a row rows[i]. The
// backward pass scatter-adds upstream gradients into the source rows, so an
// index may appear more than once. Used to pull [CLS] positions and masked
// MLM positions out of the flattened (B·T)×d batch layout.
func (t *Tape) GatherRows(a *Node, rows []int) (*Node, error) {
	cols := a.Value.Cols()
	v := tensor.New(len(rows), cols)
	for i, r := range rows {
		if r < 0 || r >= a.Value.Rows() {
			return nil, fmt.Errorf("autograd: GatherRows index %d out of range [0,%d)", r, a.Value.Rows())
		}
		copy(v.Row(i), a.Value.Row(r))
	}
	rowsCopy := make([]int, len(rows))
	copy(rowsCopy, rows)
	return t.newOp(v, func(n *Node) {
		g := tensor.New(a.Value.Rows(), cols)
		for i, r := range rowsCopy {
			dst, src := g.Row(r), n.Grad.Row(i)
			for j, u := range src {
				dst[j] += u
			}
		}
		a.accumulate(g)
	}, a), nil
}
