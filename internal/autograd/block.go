package autograd

import (
	"fmt"

	"clinfl/internal/tensor"
)

// Block-aware ops for batched transformer execution over the flattened
// (B·T)×d minibatch layout. Each treats its operands as B independent
// row blocks of `block` rows, so attention never crosses sequence
// boundaries while still running as one tape node per minibatch.

// BlockMatMul multiplies row blocks independently: output block g is
// a_g×b_g (a is (B·block)×block, b is (B·block)×n). Used for attn×V.
func (t *Tape) BlockMatMul(a, b *Node, block int) (*Node, error) {
	if err := blockShapeCheck("BlockMatMul", a.Value, block); err != nil {
		return nil, err
	}
	v := t.newMatrix(a.Value.Rows(), b.Value.Cols())
	if err := tensor.BlockMatMulAcc(v, a.Value, b.Value, block, 1); err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	n := t.newOp(opBlockMatMul, v, a, b, nil)
	n.iaux = block
	return n, nil
}

// BlockMatMulTransB computes per-block a_g×b_gᵀ (both (B·block)×k),
// returning (B·block)×block. Used for per-sequence Q×Kᵀ attention scores.
func (t *Tape) BlockMatMulTransB(a, b *Node, block int) (*Node, error) {
	return t.BlockMatMulTransBScaled(a, b, block, 1)
}

// BlockMatMulTransBScaled computes alpha·(a_g×b_gᵀ) per block as a single
// fused node. Attention folds its 1/√d score scale in here, deleting the
// separate Scale node (and its full-score-matrix value and gradient) per
// head per layer.
func (t *Tape) BlockMatMulTransBScaled(a, b *Node, block int, alpha float64) (*Node, error) {
	if err := blockShapeCheck("BlockMatMulTransB", a.Value, block); err != nil {
		return nil, err
	}
	v := t.newMatrix(a.Value.Rows(), block)
	if err := tensor.BlockMatMulTransBInto(v, a.Value, b.Value, block, alpha); err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	n := t.newOp(opBlockMatMulTransB, v, a, b, nil)
	n.iaux = block
	n.alpha = alpha
	return n, nil
}

func blockShapeCheck(op string, m *tensor.Matrix, block int) error {
	if block <= 0 {
		return fmt.Errorf("autograd: %w: %s block size %d", tensor.ErrShape, op, block)
	}
	if m.Rows()%block != 0 {
		return fmt.Errorf("autograd: %w: %s %d rows not divisible into blocks of %d",
			tensor.ErrShape, op, m.Rows(), block)
	}
	return nil
}

// BlockSoftmaxRows applies a numerically-stable softmax along every row of a
// (B·block)×block score matrix, restricted per block to non-padded key
// columns: row r of block g is normalized over columns j with
// !padMasks[g][j], and padded columns get exactly 0. padMasks may be nil
// (no padding anywhere) and individual entries may be nil (no padding in
// that sequence). This replaces the dense seq×seq additive mask the
// per-sequence path used to allocate per call. The backward rule runs fully
// in place: the softmax VJP needs only a per-row dot product, so gradients
// accumulate directly into the parent buffer with no scratch matrix.
func (t *Tape) BlockSoftmaxRows(a *Node, block int, padMasks [][]bool) (*Node, error) {
	rows, cols := a.Value.Rows(), a.Value.Cols()
	if block <= 0 || cols != block || rows%block != 0 {
		return nil, fmt.Errorf("autograd: %w: BlockSoftmaxRows %dx%d with block %d",
			tensor.ErrShape, rows, cols, block)
	}
	nb := rows / block
	if padMasks != nil && len(padMasks) != nb {
		return nil, fmt.Errorf("autograd: BlockSoftmaxRows %d masks for %d blocks", len(padMasks), nb)
	}
	for g := range padMasks {
		if padMasks[g] != nil && len(padMasks[g]) != block {
			return nil, fmt.Errorf("autograd: BlockSoftmaxRows mask %d length %d != block %d",
				g, len(padMasks[g]), block)
		}
	}
	s := t.newMatrix(rows, cols)
	tensor.BlockSoftmaxRowsInto(s, a.Value, block, padMasks)
	n := t.newOp(opBlockSoftmaxRows, s, a, nil, nil)
	n.iaux = block
	return n, nil
}

// GatherRows selects rows of a by index: out row i = a row rows[i]. The
// backward pass scatter-adds upstream gradients into the source rows, so an
// index may appear more than once. Used to pull [CLS] positions and masked
// MLM positions out of the flattened (B·T)×d batch layout.
func (t *Tape) GatherRows(a *Node, rows []int) (*Node, error) {
	cols := a.Value.Cols()
	v := t.newMatrix(len(rows), cols)
	for i, r := range rows {
		if r < 0 || r >= a.Value.Rows() {
			return nil, fmt.Errorf("autograd: GatherRows index %d out of range [0,%d)", r, a.Value.Rows())
		}
		copy(v.Row(i), a.Value.Row(r))
	}
	n := t.newOp(opGatherRows, v, a, nil, nil)
	n.ints = t.takeInts(rows)
	return n, nil
}
