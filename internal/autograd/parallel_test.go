package autograd

import (
	"testing"

	"clinfl/internal/sched"
	"clinfl/internal/tensor"
)

// Coverage for the parallel tape backward: the dependency-wave replay
// must produce gradients bit-identical to the serial reverse scan at
// every pool width, on graphs with real branch structure (shared parents
// fanned into many heads, re-converging sums — the attention shape).

// branchyLoss records a multi-head graph on tape: x×W fans into `heads`
// column slices, each head runs softmax(tanh(slice))×slice-of-W2-ish
// work, heads concat back and collapse to a scalar. W and W2 are shared
// parents of every head, so the consumer-ordering chains are exercised
// hard, and the node count comfortably exceeds the parallel threshold.
func branchyLoss(t *testing.T, tape *Tape, w, w2, x *tensor.Matrix, heads int) *Node {
	t.Helper()
	wn := tape.Leaf(w)
	w2n := tape.Leaf(w2)
	xn := tape.Constant(x)
	h, err := tape.MatMul(xn, wn)
	if err != nil {
		t.Fatal(err)
	}
	w2t := tape.Tanh(w2n) // shared by every head: exercises the chains
	dim := w.Cols() / heads
	var scalars []*Node
	for hd := 0; hd < heads; hd++ {
		s, err := tape.SliceCols(h, hd*dim, (hd+1)*dim)
		if err != nil {
			t.Fatal(err)
		}
		a := tape.SoftmaxRows(tape.Tanh(s))
		ws, err := tape.SliceCols(w2t, hd*dim, (hd+1)*dim)
		if err != nil {
			t.Fatal(err)
		}
		p, err := tape.MatMulTransB(a, ws)
		if err != nil {
			t.Fatal(err)
		}
		g := tape.GELU(p)
		scalars = append(scalars, tape.Mean(g))
	}
	loss, err := tape.SumScalars(scalars...)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

// runBranchyGrads runs forward+backward under a pinned pool width and
// returns copies of the two parameter gradients.
func runBranchyGrads(t *testing.T, width, heads int) (*tensor.Matrix, *tensor.Matrix, int) {
	t.Helper()
	pool := sched.New(width)
	defer pool.Close()
	defer sched.SetDefault(sched.SetDefault(pool))

	rng := tensor.NewRNG(42)
	w := rng.Normal(24, 8*heads, 0, 0.5)
	w2 := rng.Normal(24, 8*heads, 0, 0.5)
	x := rng.Normal(16, 24, 0, 1)

	tape := NewTapeArena(tensor.NewArena())
	loss := branchyLoss(t, tape, w, w2, x, heads)
	if err := tape.Backward(loss); err != nil {
		t.Fatal(err)
	}
	var gw, gw2 *tensor.Matrix
	for _, n := range tape.nodes {
		if n.op == opLeaf && n.Grad != nil {
			if n.Value == w {
				gw = n.Grad.Clone()
			}
			if n.Value == w2 {
				gw2 = n.Grad.Clone()
			}
		}
	}
	if gw == nil || gw2 == nil {
		t.Fatal("missing leaf gradients")
	}
	return gw, gw2, tape.Len()
}

// TestParallelBackwardBitIdenticalAcrossWidths pins the tentpole
// determinism guarantee: pool widths 1 (serial scan), 2 and 4 must
// produce byte-for-byte identical gradients.
func TestParallelBackwardBitIdenticalAcrossWidths(t *testing.T) {
	const heads = 10
	refW, refW2, nodes := runBranchyGrads(t, 1, heads)
	if nodes < parallelBackwardMinNodes {
		t.Fatalf("test graph has %d nodes, below the parallel threshold %d",
			nodes, parallelBackwardMinNodes)
	}
	for _, width := range []int{2, 4} {
		gw, gw2, _ := runBranchyGrads(t, width, heads)
		for name, pair := range map[string][2]*tensor.Matrix{
			"W":  {refW, gw},
			"W2": {refW2, gw2},
		} {
			a, b := pair[0].Data(), pair[1].Data()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("width %d: grad %s[%d] = %x, serial %x",
						width, name, i, b[i], a[i])
				}
			}
		}
	}
}

// TestParallelBackwardRepeatedRunsStable re-runs the parallel replay many
// times on one recycled tape; every run must reproduce the same bits
// (catches ordering races that only strike under particular schedules).
func TestParallelBackwardRepeatedRunsStable(t *testing.T) {
	pool := sched.New(4)
	defer pool.Close()
	defer sched.SetDefault(sched.SetDefault(pool))

	rng := tensor.NewRNG(7)
	const heads = 10
	w := rng.Normal(24, 8*heads, 0, 0.5)
	w2 := rng.Normal(24, 8*heads, 0, 0.5)
	x := rng.Normal(16, 24, 0, 1)

	tape := NewTapeArena(tensor.NewArena())
	var ref []float64
	for run := 0; run < 30; run++ {
		tape.Reset()
		loss := branchyLoss(t, tape, w, w2, x, heads)
		if err := tape.Backward(loss); err != nil {
			t.Fatal(err)
		}
		var got []float64
		for _, n := range tape.nodes {
			if n.op == opLeaf && n.Grad != nil && n.Value == w {
				got = append([]float64(nil), n.Grad.Data()...)
			}
		}
		if got == nil {
			t.Fatal("missing W gradient")
		}
		if run == 0 {
			ref = got
			continue
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("run %d: grad[%d] drifted: %x vs %x", run, i, got[i], ref[i])
			}
		}
	}
}

// TestParallelBackwardMatchesGradcheck keeps the numeric ground truth in
// the loop: finite differences against the parallel replay.
func TestParallelBackwardMatchesGradcheck(t *testing.T) {
	pool := sched.New(4)
	defer pool.Close()
	defer sched.SetDefault(sched.SetDefault(pool))

	rng := tensor.NewRNG(3)
	w := rng.Normal(12, 48, 0, 0.5)
	x := rng.Normal(8, 12, 0, 1)
	// Forward builder for GradCheck: enough ops to clear the threshold.
	build := func(tape *Tape, params []*Node) (*Node, error) {
		h, err := tape.MatMul(tape.Constant(x), params[0])
		if err != nil {
			return nil, err
		}
		var scalars []*Node
		for hd := 0; hd < 12; hd++ {
			s, err := tape.SliceCols(h, hd*4, (hd+1)*4)
			if err != nil {
				return nil, err
			}
			a := tape.SoftmaxRows(tape.Tanh(s))
			p, err := tape.MatMulTransB(a, s)
			if err != nil {
				return nil, err
			}
			scalars = append(scalars, tape.Mean(tape.GELU(p)))
		}
		return tape.SumScalars(scalars...)
	}
	maxRel, err := GradCheck([]*tensor.Matrix{w}, build, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if maxRel > 2e-6 {
		t.Fatalf("gradcheck max relative error %.3g under parallel backward", maxRel)
	}
}
