package autograd

import (
	"fmt"
	"math"

	"clinfl/internal/tensor"
)

// Forward constructors. Each records one node carrying the opcode and the
// auxiliary state its backward rule (backward.go) needs; values are computed
// into tape-allocated (arena-recycled) matrices with no intermediate
// allocation.

// Add returns a+b.
func (t *Tape) Add(a, b *Node) (*Node, error) {
	if !a.Value.SameShape(b.Value) {
		return nil, fmt.Errorf("autograd: %w: Add %dx%d + %dx%d", tensor.ErrShape,
			a.Value.Rows(), a.Value.Cols(), b.Value.Rows(), b.Value.Cols())
	}
	v := t.newMatrixUninit(a.Value.Rows(), a.Value.Cols())
	vd, ad, bd := v.Data(), a.Value.Data(), b.Value.Data()
	for i, av := range ad {
		vd[i] = av + bd[i]
	}
	return t.newOp(opAdd, v, a, b, nil), nil
}

// Sub returns a-b.
func (t *Tape) Sub(a, b *Node) (*Node, error) {
	if !a.Value.SameShape(b.Value) {
		return nil, fmt.Errorf("autograd: %w: Sub %dx%d - %dx%d", tensor.ErrShape,
			a.Value.Rows(), a.Value.Cols(), b.Value.Rows(), b.Value.Cols())
	}
	v := t.newMatrixUninit(a.Value.Rows(), a.Value.Cols())
	vd, ad, bd := v.Data(), a.Value.Data(), b.Value.Data()
	for i, av := range ad {
		vd[i] = av - bd[i]
	}
	return t.newOp(opSub, v, a, b, nil), nil
}

// Mul returns the elementwise (Hadamard) product a⊙b.
func (t *Tape) Mul(a, b *Node) (*Node, error) {
	if !a.Value.SameShape(b.Value) {
		return nil, fmt.Errorf("autograd: %w: Mul %dx%d ⊙ %dx%d", tensor.ErrShape,
			a.Value.Rows(), a.Value.Cols(), b.Value.Rows(), b.Value.Cols())
	}
	v := t.newMatrixUninit(a.Value.Rows(), a.Value.Cols())
	vd, ad, bd := v.Data(), a.Value.Data(), b.Value.Data()
	for i, av := range ad {
		vd[i] = av * bd[i]
	}
	return t.newOp(opMul, v, a, b, nil), nil
}

// Scale returns alpha*a for a compile-time constant alpha.
func (t *Tape) Scale(alpha float64, a *Node) *Node {
	v := t.newMatrixUninit(a.Value.Rows(), a.Value.Cols())
	vd, ad := v.Data(), a.Value.Data()
	for i, av := range ad {
		vd[i] = alpha * av
	}
	n := t.newOp(opScale, v, a, nil, nil)
	n.alpha = alpha
	return n
}

// MatMul returns a×b.
func (t *Tape) MatMul(a, b *Node) (*Node, error) {
	if a.Value.Cols() != b.Value.Rows() {
		return nil, fmt.Errorf("autograd: %w: MatMul %dx%d × %dx%d", tensor.ErrShape,
			a.Value.Rows(), a.Value.Cols(), b.Value.Rows(), b.Value.Cols())
	}
	// Assign-mode kernel writes every element, so the output can skip the
	// arena's zeroing pass.
	v := t.newMatrixUninit(a.Value.Rows(), b.Value.Cols())
	if err := tensor.EvalMatMul(v, a.Value, b.Value, t.evalPrec); err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(opMatMul, v, a, b, nil), nil
}

// MatMulTransB returns a×bᵀ, used by attention score computation.
func (t *Tape) MatMulTransB(a, b *Node) (*Node, error) {
	if a.Value.Cols() != b.Value.Cols() {
		return nil, fmt.Errorf("autograd: %w: MatMulTransB %dx%d × (%dx%d)ᵀ", tensor.ErrShape,
			a.Value.Rows(), a.Value.Cols(), b.Value.Rows(), b.Value.Cols())
	}
	v := t.newMatrixUninit(a.Value.Rows(), b.Value.Rows())
	if err := tensor.MatMulTransBInto(v, a.Value, b.Value); err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(opMatMulTransB, v, a, b, nil), nil
}

// Affine returns x×w + b with b a 1×out bias row, fused into a single node.
// This is the Linear layer's forward; fusing removes one intermediate
// matrix and one tape node per projection relative to MatMul+AddRowVector.
func (t *Tape) Affine(x, w, b *Node) (*Node, error) {
	v, err := t.affineValue("Affine", x, w, b)
	if err != nil {
		return nil, err
	}
	return t.newOp(opAffine, v, x, w, b), nil
}

// LinearGELU returns GELU(x×w + b) as one fused node: the transformer
// feed-forward (and MLM-head) hot chain. The pre-activation is saved for
// the backward rule; the activation itself is computed in place.
func (t *Tape) LinearGELU(x, w, b *Node) (*Node, error) {
	h, err := t.affineValue("LinearGELU", x, w, b)
	if err != nil {
		return nil, err
	}
	v := t.newMatrixUninit(h.Rows(), h.Cols())
	vd, hd := v.Data(), h.Data()
	for i, x := range hd {
		vd[i] = geluValue(x)
	}
	n := t.newOp(opLinearGELU, v, x, w, b)
	n.m1 = h
	return n, nil
}

// affineValue computes x×w + b into a fresh tape matrix.
func (t *Tape) affineValue(op string, x, w, b *Node) (*tensor.Matrix, error) {
	if x.Value.Cols() != w.Value.Rows() {
		return nil, fmt.Errorf("autograd: %w: %s %dx%d × %dx%d", tensor.ErrShape, op,
			x.Value.Rows(), x.Value.Cols(), w.Value.Rows(), w.Value.Cols())
	}
	if b.Value.Rows() != 1 || b.Value.Cols() != w.Value.Cols() {
		return nil, fmt.Errorf("autograd: %w: %s bias must be 1x%d, got %dx%d", tensor.ErrShape,
			op, w.Value.Cols(), b.Value.Rows(), b.Value.Cols())
	}
	// Weight matmuls honor the tape's eval precision (f64 in training;
	// the backward rules always differentiate the exact product).
	v := t.newMatrixUninit(x.Value.Rows(), w.Value.Cols())
	if err := tensor.EvalMatMul(v, x.Value, w.Value, t.evalPrec); err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	bd := b.Value.Data()
	for i := 0; i < v.Rows(); i++ {
		row := v.Row(i)
		for j, bv := range bd {
			row[j] += bv
		}
	}
	return v, nil
}

// AddRowVector returns x with the 1×C bias b added to every row.
func (t *Tape) AddRowVector(x, b *Node) (*Node, error) {
	if b.Value.Rows() != 1 || b.Value.Cols() != x.Value.Cols() {
		return nil, fmt.Errorf("autograd: %w: AddRowVector %dx%d + %dx%d", tensor.ErrShape,
			x.Value.Rows(), x.Value.Cols(), b.Value.Rows(), b.Value.Cols())
	}
	v := t.newMatrixUninit(x.Value.Rows(), x.Value.Cols())
	bd := b.Value.Data()
	for i := 0; i < v.Rows(); i++ {
		src, dst := x.Value.Row(i), v.Row(i)
		for j, bv := range bd {
			dst[j] = src[j] + bv
		}
	}
	return t.newOp(opAddRowVector, v, x, b, nil), nil
}

// apply computes f elementwise into a fresh tape matrix.
func (t *Tape) apply(a *Node, f func(float64) float64) *tensor.Matrix {
	v := t.newMatrixUninit(a.Value.Rows(), a.Value.Cols())
	vd, ad := v.Data(), a.Value.Data()
	for i, x := range ad {
		vd[i] = f(x)
	}
	return v
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.newOp(opTanh, t.apply(a, math.Tanh), a, nil, nil)
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := t.apply(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	return t.newOp(opSigmoid, v, a, nil, nil)
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	v := t.apply(a, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	return t.newOp(opReLU, v, a, nil, nil)
}

// geluCoeff is sqrt(2/pi) used by the tanh approximation of GELU.
var geluCoeff = math.Sqrt(2 / math.Pi)

// geluValue is the tanh approximation of GELU(x). The fused and unfused
// ops must share it (with geluDeriv) so they stay bit-identical.
func geluValue(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluCoeff*(x+0.044715*x*x*x)))
}

// geluDeriv is d/dx of geluValue.
func geluDeriv(x float64) float64 {
	u := geluCoeff * (x + 0.044715*x*x*x)
	th := math.Tanh(u)
	du := geluCoeff * (1 + 3*0.044715*x*x)
	return 0.5*(1+th) + 0.5*x*(1-th*th)*du
}

// GELU applies the Gaussian error linear unit (tanh approximation), the
// activation BERT uses in its feed-forward blocks.
func (t *Tape) GELU(a *Node) *Node {
	return t.newOp(opGELU, t.apply(a, geluValue), a, nil, nil)
}

// SoftmaxRows applies a numerically-stable softmax along every row.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	s := t.newMatrix(a.Value.Rows(), a.Value.Cols())
	tensor.SoftmaxRowsInto(s, a.Value)
	return t.newOp(opSoftmaxRows, s, a, nil, nil)
}

// LayerNorm normalizes every row of x to zero mean / unit variance, then
// applies the learned gain and bias (both 1×C).
func (t *Tape) LayerNorm(x, gain, bias *Node, eps float64) (*Node, error) {
	rows, cols := x.Value.Rows(), x.Value.Cols()
	if gain.Value.Rows() != 1 || gain.Value.Cols() != cols ||
		bias.Value.Rows() != 1 || bias.Value.Cols() != cols {
		return nil, fmt.Errorf("autograd: %w: LayerNorm gain/bias must be 1x%d", tensor.ErrShape, cols)
	}
	v := t.newMatrix(rows, cols)
	xhat := t.newMatrix(rows, cols)
	invStd := t.newMatrix(1, rows)
	isd := invStd.Data()
	gd, bd := gain.Value.Data(), bias.Value.Data()
	for i := 0; i < rows; i++ {
		xr, vr, hr := x.Value.Row(i), v.Row(i), xhat.Row(i)
		var mean float64
		for _, xv := range xr {
			mean += xv
		}
		mean /= float64(cols)
		var variance float64
		for _, xv := range xr {
			d := xv - mean
			variance += d * d
		}
		variance /= float64(cols)
		is := 1 / math.Sqrt(variance+eps)
		isd[i] = is
		for j, xv := range xr {
			h := (xv - mean) * is
			hr[j] = h
			vr[j] = h*gd[j] + bd[j]
		}
	}
	n := t.newOp(opLayerNorm, v, x, gain, bias)
	n.m1 = xhat
	n.m2 = invStd
	n.alpha = eps
	return n, nil
}

// Embedding gathers rows of table by ids: out row i = table row ids[i].
// The backward pass scatter-adds into the table gradient, so padding rows
// still receive (zero) updates only when referenced.
func (t *Tape) Embedding(table *Node, ids []int) (*Node, error) {
	cols := table.Value.Cols()
	v := t.newMatrix(len(ids), cols)
	for i, id := range ids {
		if id < 0 || id >= table.Value.Rows() {
			return nil, fmt.Errorf("autograd: embedding id %d out of range [0,%d)", id, table.Value.Rows())
		}
		copy(v.Row(i), table.Value.Row(id))
	}
	n := t.newOp(opEmbedding, v, table, nil, nil)
	n.ints = t.takeInts(ids)
	return n, nil
}

// ConcatCols concatenates a (R×Ca) and b (R×Cb) into R×(Ca+Cb).
func (t *Tape) ConcatCols(a, b *Node) (*Node, error) {
	if a.Value.Rows() != b.Value.Rows() {
		return nil, fmt.Errorf("autograd: %w: ConcatCols rows %d vs %d",
			tensor.ErrShape, a.Value.Rows(), b.Value.Rows())
	}
	rows, ca := a.Value.Rows(), a.Value.Cols()
	v := t.newMatrix(rows, ca+b.Value.Cols())
	for i := 0; i < rows; i++ {
		copy(v.Row(i)[:ca], a.Value.Row(i))
		copy(v.Row(i)[ca:], b.Value.Row(i))
	}
	return t.newOp(opConcatCols, v, a, b, nil), nil
}

// SliceCols returns columns [lo, hi) of a.
func (t *Tape) SliceCols(a *Node, lo, hi int) (*Node, error) {
	if lo < 0 || hi > a.Value.Cols() || lo > hi {
		return nil, fmt.Errorf("autograd: %w: SliceCols [%d,%d) of %d cols",
			tensor.ErrShape, lo, hi, a.Value.Cols())
	}
	rows := a.Value.Rows()
	v := t.newMatrix(rows, hi-lo)
	for i := 0; i < rows; i++ {
		copy(v.Row(i), a.Value.Row(i)[lo:hi])
	}
	n := t.newOp(opSliceCols, v, a, nil, nil)
	n.iaux, n.jaux = lo, hi
	return n, nil
}

// SliceRows returns rows [lo, hi) of a.
func (t *Tape) SliceRows(a *Node, lo, hi int) (*Node, error) {
	if lo < 0 || hi > a.Value.Rows() || lo > hi {
		return nil, fmt.Errorf("autograd: %w: SliceRows [%d,%d) of %d rows",
			tensor.ErrShape, lo, hi, a.Value.Rows())
	}
	cols := a.Value.Cols()
	v := t.newMatrix(hi-lo, cols)
	for i := lo; i < hi; i++ {
		copy(v.Row(i-lo), a.Value.Row(i))
	}
	n := t.newOp(opSliceRows, v, a, nil, nil)
	n.iaux, n.jaux = lo, hi
	return n, nil
}

// MeanRows returns a 1×C node holding the column means of a; used for mean
// pooling over sequence positions.
func (t *Tape) MeanRows(a *Node) *Node {
	rows, cols := a.Value.Rows(), a.Value.Cols()
	v := t.newMatrix(1, cols)
	vd := v.Data()
	for i := 0; i < rows; i++ {
		for j, x := range a.Value.Row(i) {
			vd[j] += x
		}
	}
	if rows > 0 {
		inv := 1 / float64(rows)
		for j := range vd {
			vd[j] *= inv
		}
	}
	return t.newOp(opMeanRows, v, a, nil, nil)
}

// Mean returns the scalar mean of all elements of a.
func (t *Tape) Mean(a *Node) *Node {
	v := t.newMatrix(1, 1)
	v.Set(0, 0, a.Value.Mean())
	return t.newOp(opMean, v, a, nil, nil)
}

// SumScalars adds a set of 1×1 nodes; used to combine per-example losses.
func (t *Tape) SumScalars(nodes ...*Node) (*Node, error) {
	v := t.newMatrix(1, 1)
	var sum float64
	for _, a := range nodes {
		if a.Value.Rows() != 1 || a.Value.Cols() != 1 {
			return nil, fmt.Errorf("autograd: SumScalars got %dx%d node", a.Value.Rows(), a.Value.Cols())
		}
		sum += a.Value.At(0, 0)
	}
	v.Set(0, 0, sum)
	return t.newOpN(opSumScalars, v, nodes), nil
}

// Dropout zeroes elements with probability p at train time, scaling the
// survivors by 1/(1-p) (inverted dropout). When training is false it is the
// identity.
func (t *Tape) Dropout(a *Node, p float64, rng *tensor.RNG, training bool) *Node {
	if !training || p <= 0 {
		return a
	}
	keep := 1 - p
	mask := t.newMatrix(a.Value.Rows(), a.Value.Cols())
	md := mask.Data()
	for i := range md {
		if rng.Float64() < keep {
			md[i] = 1 / keep
		} else {
			md[i] = 0
		}
	}
	v := t.newMatrix(a.Value.Rows(), a.Value.Cols())
	vd, ad := v.Data(), a.Value.Data()
	for i, av := range ad {
		vd[i] = av * md[i]
	}
	n := t.newOp(opDropout, v, a, nil, nil)
	n.m1 = mask
	return n
}

// IgnoreIndex marks a target position excluded from the cross-entropy loss
// (non-masked positions in MLM training).
const IgnoreIndex = -1

// CrossEntropy computes the mean negative log-likelihood of targets under
// softmax(logits). Rows whose target is IgnoreIndex contribute nothing.
// Returns the scalar loss node and the number of counted rows.
func (t *Tape) CrossEntropy(logits *Node, targets []int) (*Node, int, error) {
	rows, cols := logits.Value.Rows(), logits.Value.Cols()
	if len(targets) != rows {
		return nil, 0, fmt.Errorf("autograd: CrossEntropy %d targets for %d rows", len(targets), rows)
	}
	probs := t.newMatrix(rows, cols)
	tensor.SoftmaxRowsInto(probs, logits.Value)
	counted := 0
	var total float64
	for i, tgt := range targets {
		if tgt == IgnoreIndex {
			continue
		}
		if tgt < 0 || tgt >= cols {
			return nil, 0, fmt.Errorf("autograd: CrossEntropy target %d out of range [0,%d)", tgt, cols)
		}
		counted++
		p := probs.At(i, tgt)
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
	}
	v := t.newMatrix(1, 1)
	if counted > 0 {
		v.Set(0, 0, total/float64(counted))
	}
	n := t.newOp(opCrossEntropy, v, logits, nil, nil)
	n.m1 = probs
	n.ints = t.takeInts(targets)
	n.iaux = counted
	return n, counted, nil
}
