package autograd

import (
	"fmt"
	"math"

	"clinfl/internal/tensor"
)

// mustAdd wraps tensor shape errors that indicate internal bugs.
func mustAdd(dst, src *tensor.Matrix) {
	if err := dst.AddInPlace(src); err != nil {
		panic(fmt.Sprintf("autograd: internal shape bug: %v", err))
	}
}

// Add returns a+b.
func (t *Tape) Add(a, b *Node) (*Node, error) {
	v, err := tensor.Add(a.Value, b.Value)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		a.accumulate(n.Grad)
		b.accumulate(n.Grad)
	}, a, b), nil
}

// Sub returns a-b.
func (t *Tape) Sub(a, b *Node) (*Node, error) {
	v, err := tensor.Sub(a.Value, b.Value)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		a.accumulate(n.Grad)
		b.accumulate(tensor.Scale(-1, n.Grad))
	}, a, b), nil
}

// Mul returns the elementwise (Hadamard) product a⊙b.
func (t *Tape) Mul(a, b *Node) (*Node, error) {
	v, err := tensor.Mul(a.Value, b.Value)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		if a.requiresGrad {
			ga, _ := tensor.Mul(n.Grad, b.Value)
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb, _ := tensor.Mul(n.Grad, a.Value)
			b.accumulate(gb)
		}
	}, a, b), nil
}

// Scale returns alpha*a for a compile-time constant alpha.
func (t *Tape) Scale(alpha float64, a *Node) *Node {
	v := tensor.Scale(alpha, a.Value)
	return t.newOp(v, func(n *Node) {
		a.accumulate(tensor.Scale(alpha, n.Grad))
	}, a)
}

// MatMul returns a×b.
func (t *Tape) MatMul(a, b *Node) (*Node, error) {
	v, err := tensor.MatMul(a.Value, b.Value)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		if a.requiresGrad {
			ga, _ := tensor.MatMulTransB(n.Grad, b.Value)
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb, _ := tensor.MatMulTransA(a.Value, n.Grad)
			b.accumulate(gb)
		}
	}, a, b), nil
}

// MatMulTransB returns a×bᵀ, used by attention score computation.
func (t *Tape) MatMulTransB(a, b *Node) (*Node, error) {
	v, err := tensor.MatMulTransB(a.Value, b.Value)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		if a.requiresGrad {
			// d a = g × b
			ga, _ := tensor.MatMul(n.Grad, b.Value)
			a.accumulate(ga)
		}
		if b.requiresGrad {
			// d b = gᵀ × a
			gb, _ := tensor.MatMulTransA(n.Grad, a.Value)
			b.accumulate(gb)
		}
	}, a, b), nil
}

// AddRowVector returns x with the 1×C bias b added to every row.
func (t *Tape) AddRowVector(x, b *Node) (*Node, error) {
	v, err := tensor.AddRowVector(x.Value, b.Value)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		x.accumulate(n.Grad)
		if b.requiresGrad {
			b.accumulate(tensor.SumRows(n.Grad))
		}
	}, x, b), nil
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	v := a.Value.Apply(math.Tanh)
	return t.newOp(v, func(n *Node) {
		g := tensor.New(v.Rows(), v.Cols())
		gd, vd, ud := g.Data(), v.Data(), n.Grad.Data()
		for i := range gd {
			gd[i] = ud[i] * (1 - vd[i]*vd[i])
		}
		a.accumulate(g)
	}, a)
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := a.Value.Apply(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	return t.newOp(v, func(n *Node) {
		g := tensor.New(v.Rows(), v.Cols())
		gd, vd, ud := g.Data(), v.Data(), n.Grad.Data()
		for i := range gd {
			gd[i] = ud[i] * vd[i] * (1 - vd[i])
		}
		a.accumulate(g)
	}, a)
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	v := a.Value.Apply(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	return t.newOp(v, func(n *Node) {
		g := tensor.New(v.Rows(), v.Cols())
		gd, xd, ud := g.Data(), a.Value.Data(), n.Grad.Data()
		for i := range gd {
			if xd[i] > 0 {
				gd[i] = ud[i]
			}
		}
		a.accumulate(g)
	}, a)
}

// geluCoeff is sqrt(2/pi) used by the tanh approximation of GELU.
var geluCoeff = math.Sqrt(2 / math.Pi)

// GELU applies the Gaussian error linear unit (tanh approximation), the
// activation BERT uses in its feed-forward blocks.
func (t *Tape) GELU(a *Node) *Node {
	v := a.Value.Apply(func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(geluCoeff*(x+0.044715*x*x*x)))
	})
	return t.newOp(v, func(n *Node) {
		g := tensor.New(v.Rows(), v.Cols())
		gd, xd, ud := g.Data(), a.Value.Data(), n.Grad.Data()
		for i := range gd {
			x := xd[i]
			u := geluCoeff * (x + 0.044715*x*x*x)
			th := math.Tanh(u)
			du := geluCoeff * (1 + 3*0.044715*x*x)
			gd[i] = ud[i] * (0.5*(1+th) + 0.5*x*(1-th*th)*du)
		}
		a.accumulate(g)
	}, a)
}

// SoftmaxRows applies a numerically-stable softmax along every row.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	s := tensor.SoftmaxRows(a.Value)
	return t.newOp(s, func(n *Node) {
		rows, cols := s.Rows(), s.Cols()
		g := tensor.New(rows, cols)
		for i := 0; i < rows; i++ {
			srow, urow, grow := s.Row(i), n.Grad.Row(i), g.Row(i)
			var dot float64
			for j := range srow {
				dot += urow[j] * srow[j]
			}
			for j := range srow {
				grow[j] = srow[j] * (urow[j] - dot)
			}
		}
		a.accumulate(g)
	}, a)
}

// LayerNorm normalizes every row of x to zero mean / unit variance, then
// applies the learned gain and bias (both 1×C).
func (t *Tape) LayerNorm(x, gain, bias *Node, eps float64) (*Node, error) {
	rows, cols := x.Value.Rows(), x.Value.Cols()
	if gain.Value.Rows() != 1 || gain.Value.Cols() != cols ||
		bias.Value.Rows() != 1 || bias.Value.Cols() != cols {
		return nil, fmt.Errorf("autograd: %w: LayerNorm gain/bias must be 1x%d", tensor.ErrShape, cols)
	}
	v := tensor.New(rows, cols)
	xhat := tensor.New(rows, cols)
	invStd := make([]float64, rows)
	gd, bd := gain.Value.Data(), bias.Value.Data()
	for i := 0; i < rows; i++ {
		xr, vr, hr := x.Value.Row(i), v.Row(i), xhat.Row(i)
		var mean float64
		for _, xv := range xr {
			mean += xv
		}
		mean /= float64(cols)
		var variance float64
		for _, xv := range xr {
			d := xv - mean
			variance += d * d
		}
		variance /= float64(cols)
		is := 1 / math.Sqrt(variance+eps)
		invStd[i] = is
		for j, xv := range xr {
			h := (xv - mean) * is
			hr[j] = h
			vr[j] = h*gd[j] + bd[j]
		}
	}
	return t.newOp(v, func(n *Node) {
		if bias.requiresGrad {
			bias.accumulate(tensor.SumRows(n.Grad))
		}
		if gain.requiresGrad {
			gg, _ := tensor.Mul(n.Grad, xhat)
			gain.accumulate(tensor.SumRows(gg))
		}
		if !x.requiresGrad {
			return
		}
		gx := tensor.New(rows, cols)
		for i := 0; i < rows; i++ {
			ur, hr, gr := n.Grad.Row(i), xhat.Row(i), gx.Row(i)
			// gy = upstream ⊙ gain; dx = (gy - mean(gy) - xhat*mean(gy⊙xhat)) * invStd
			var m1, m2 float64
			for j := range ur {
				gy := ur[j] * gd[j]
				m1 += gy
				m2 += gy * hr[j]
			}
			m1 /= float64(cols)
			m2 /= float64(cols)
			for j := range ur {
				gy := ur[j] * gd[j]
				gr[j] = (gy - m1 - hr[j]*m2) * invStd[i]
			}
		}
		x.accumulate(gx)
	}, x, gain, bias), nil
}

// Embedding gathers rows of table by ids: out row i = table row ids[i].
// The backward pass scatter-adds into the table gradient, so padding rows
// still receive (zero) updates only when referenced.
func (t *Tape) Embedding(table *Node, ids []int) (*Node, error) {
	cols := table.Value.Cols()
	v := tensor.New(len(ids), cols)
	for i, id := range ids {
		if id < 0 || id >= table.Value.Rows() {
			return nil, fmt.Errorf("autograd: embedding id %d out of range [0,%d)", id, table.Value.Rows())
		}
		copy(v.Row(i), table.Value.Row(id))
	}
	idsCopy := make([]int, len(ids))
	copy(idsCopy, ids)
	return t.newOp(v, func(n *Node) {
		g := table.ensureGrad()
		for i, id := range idsCopy {
			dst, src := g.Row(id), n.Grad.Row(i)
			for j, u := range src {
				dst[j] += u
			}
		}
	}, table), nil
}

// ConcatCols concatenates a (R×Ca) and b (R×Cb) into R×(Ca+Cb).
func (t *Tape) ConcatCols(a, b *Node) (*Node, error) {
	if a.Value.Rows() != b.Value.Rows() {
		return nil, fmt.Errorf("autograd: %w: ConcatCols rows %d vs %d",
			tensor.ErrShape, a.Value.Rows(), b.Value.Rows())
	}
	rows, ca, cb := a.Value.Rows(), a.Value.Cols(), b.Value.Cols()
	v := tensor.New(rows, ca+cb)
	for i := 0; i < rows; i++ {
		copy(v.Row(i)[:ca], a.Value.Row(i))
		copy(v.Row(i)[ca:], b.Value.Row(i))
	}
	return t.newOp(v, func(n *Node) {
		if a.requiresGrad {
			ga := tensor.New(rows, ca)
			for i := 0; i < rows; i++ {
				copy(ga.Row(i), n.Grad.Row(i)[:ca])
			}
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb := tensor.New(rows, cb)
			for i := 0; i < rows; i++ {
				copy(gb.Row(i), n.Grad.Row(i)[ca:])
			}
			b.accumulate(gb)
		}
	}, a, b), nil
}

// SliceCols returns columns [lo, hi) of a.
func (t *Tape) SliceCols(a *Node, lo, hi int) (*Node, error) {
	v, err := a.Value.SliceCols(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		g := tensor.New(a.Value.Rows(), a.Value.Cols())
		for i := 0; i < v.Rows(); i++ {
			copy(g.Row(i)[lo:hi], n.Grad.Row(i))
		}
		a.accumulate(g)
	}, a), nil
}

// SliceRows returns rows [lo, hi) of a.
func (t *Tape) SliceRows(a *Node, lo, hi int) (*Node, error) {
	v, err := a.Value.SliceRows(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("autograd: %w", err)
	}
	return t.newOp(v, func(n *Node) {
		g := tensor.New(a.Value.Rows(), a.Value.Cols())
		for i := lo; i < hi; i++ {
			copy(g.Row(i), n.Grad.Row(i-lo))
		}
		a.accumulate(g)
	}, a), nil
}

// MeanRows returns a 1×C node holding the column means of a; used for mean
// pooling over sequence positions.
func (t *Tape) MeanRows(a *Node) *Node {
	rows := a.Value.Rows()
	v := tensor.SumRows(a.Value)
	if rows > 0 {
		v.ScaleInPlace(1 / float64(rows))
	}
	return t.newOp(v, func(n *Node) {
		if rows == 0 {
			return
		}
		g := tensor.New(rows, a.Value.Cols())
		inv := 1 / float64(rows)
		for i := 0; i < rows; i++ {
			row := g.Row(i)
			for j, u := range n.Grad.Row(0) {
				row[j] = u * inv
			}
		}
		a.accumulate(g)
	}, a)
}

// Mean returns the scalar mean of all elements of a.
func (t *Tape) Mean(a *Node) *Node {
	size := a.Value.Size()
	v := tensor.New(1, 1)
	v.Set(0, 0, a.Value.Mean())
	return t.newOp(v, func(n *Node) {
		if size == 0 {
			return
		}
		g := tensor.New(a.Value.Rows(), a.Value.Cols())
		g.Fill(n.Grad.At(0, 0) / float64(size))
		a.accumulate(g)
	}, a)
}

// SumScalars adds a set of 1×1 nodes; used to combine per-example losses.
func (t *Tape) SumScalars(nodes ...*Node) (*Node, error) {
	v := tensor.New(1, 1)
	for _, a := range nodes {
		if a.Value.Rows() != 1 || a.Value.Cols() != 1 {
			return nil, fmt.Errorf("autograd: SumScalars got %dx%d node", a.Value.Rows(), a.Value.Cols())
		}
		v.Set(0, 0, v.At(0, 0)+a.Value.At(0, 0))
	}
	parents := append([]*Node(nil), nodes...)
	return t.newOp(v, func(n *Node) {
		for _, a := range parents {
			a.accumulate(n.Grad)
		}
	}, parents...), nil
}

// Dropout zeroes elements with probability p at train time, scaling the
// survivors by 1/(1-p) (inverted dropout). When training is false it is the
// identity.
func (t *Tape) Dropout(a *Node, p float64, rng *tensor.RNG, training bool) *Node {
	if !training || p <= 0 {
		return a
	}
	keep := 1 - p
	mask := tensor.New(a.Value.Rows(), a.Value.Cols())
	md := mask.Data()
	for i := range md {
		if rng.Float64() < keep {
			md[i] = 1 / keep
		}
	}
	v, _ := tensor.Mul(a.Value, mask)
	return t.newOp(v, func(n *Node) {
		g, _ := tensor.Mul(n.Grad, mask)
		a.accumulate(g)
	}, a)
}

// IgnoreIndex marks a target position excluded from the cross-entropy loss
// (non-masked positions in MLM training).
const IgnoreIndex = -1

// CrossEntropy computes the mean negative log-likelihood of targets under
// softmax(logits). Rows whose target is IgnoreIndex contribute nothing.
// Returns the scalar loss node and the number of counted rows.
func (t *Tape) CrossEntropy(logits *Node, targets []int) (*Node, int, error) {
	rows, cols := logits.Value.Rows(), logits.Value.Cols()
	if len(targets) != rows {
		return nil, 0, fmt.Errorf("autograd: CrossEntropy %d targets for %d rows", len(targets), rows)
	}
	probs := tensor.SoftmaxRows(logits.Value)
	counted := 0
	var total float64
	for i, tgt := range targets {
		if tgt == IgnoreIndex {
			continue
		}
		if tgt < 0 || tgt >= cols {
			return nil, 0, fmt.Errorf("autograd: CrossEntropy target %d out of range [0,%d)", tgt, cols)
		}
		counted++
		p := probs.At(i, tgt)
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
	}
	v := tensor.New(1, 1)
	if counted > 0 {
		v.Set(0, 0, total/float64(counted))
	}
	tgtCopy := make([]int, len(targets))
	copy(tgtCopy, targets)
	node := t.newOp(v, func(n *Node) {
		if counted == 0 {
			return
		}
		scale := n.Grad.At(0, 0) / float64(counted)
		g := tensor.New(rows, cols)
		for i, tgt := range tgtCopy {
			if tgt == IgnoreIndex {
				continue
			}
			grow, prow := g.Row(i), probs.Row(i)
			for j, p := range prow {
				grow[j] = p * scale
			}
			grow[tgt] -= scale
		}
		logits.accumulate(g)
	}, logits)
	return node, counted, nil
}
