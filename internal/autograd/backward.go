package autograd

import (
	"fmt"

	"clinfl/internal/tensor"
)

// backward applies one node's vector-Jacobian product, accumulating into
// its parents' gradient buffers. Every rule works in place: matmul VJPs use
// the tensor Acc kernels to add straight into existing gradients, and
// elementwise rules loop over the parent buffer directly, so the backward
// pass allocates no scratch beyond the (arena-recycled) gradient buffers
// themselves and the single pre-activation buffer of the fused LinearGELU.
//
// Dispatching on an opcode instead of a stored closure is what lets Reset
// recycle Node objects: a node carries only plain data (parents, aux
// fields), never a heap-allocated func value.
func (n *Node) backward() {
	g := n.Grad
	switch n.op {
	case opAdd:
		n.a.accumulate(g)
		n.b.accumulate(g)

	case opSub:
		n.a.accumulate(g)
		if n.b.requiresGrad {
			mustAcc(n.b.ensureGrad().AddScaledInPlace(-1, g))
		}

	case opMul:
		if n.a.requiresGrad {
			accMulInto(n.a.ensureGrad(), g, n.b.Value)
		}
		if n.b.requiresGrad {
			accMulInto(n.b.ensureGrad(), g, n.a.Value)
		}

	case opScale:
		if n.a.requiresGrad {
			mustAcc(n.a.ensureGrad().AddScaledInPlace(n.alpha, g))
		}

	case opMatMul:
		if n.a.requiresGrad {
			mustAcc(tensor.MatMulTransBAcc(n.a.ensureGrad(), g, n.b.Value))
		}
		if n.b.requiresGrad {
			mustAcc(tensor.MatMulTransAAcc(n.b.ensureGrad(), n.a.Value, g))
		}

	case opMatMulTransB:
		if n.a.requiresGrad {
			// d a = g × b
			mustAcc(tensor.MatMulAcc(n.a.ensureGrad(), g, n.b.Value))
		}
		if n.b.requiresGrad {
			// d b = gᵀ × a
			mustAcc(tensor.MatMulTransAAcc(n.b.ensureGrad(), g, n.a.Value))
		}

	case opAffine:
		n.backwardAffine(g)

	case opLinearGELU:
		// dh = upstream ⊙ GELU'(pre-activation), then the affine VJPs on dh.
		// The scratch is pre-allocated into m2 by the parallel scheduler's
		// liveness pass (deterministic arena order); the serial path
		// allocates it lazily here. Every element is written before use.
		h := n.m1
		dh := n.m2
		if dh == nil {
			dh = n.tape.newMatrixUninit(h.Rows(), h.Cols())
		}
		dd, hd, ud := dh.Data(), h.Data(), g.Data()
		for i, x := range hd {
			dd[i] = ud[i] * geluDeriv(x)
		}
		n.backwardAffine(dh)

	case opAddRowVector:
		n.a.accumulate(g)
		if n.b.requiresGrad {
			accColSums(n.b.ensureGrad(), g)
		}

	case opTanh:
		if n.a.requiresGrad {
			dst, vd, ud := n.a.ensureGrad().Data(), n.Value.Data(), g.Data()
			for i, v := range vd {
				dst[i] += ud[i] * (1 - v*v)
			}
		}

	case opSigmoid:
		if n.a.requiresGrad {
			dst, vd, ud := n.a.ensureGrad().Data(), n.Value.Data(), g.Data()
			for i, v := range vd {
				dst[i] += ud[i] * v * (1 - v)
			}
		}

	case opReLU:
		if n.a.requiresGrad {
			dst, xd, ud := n.a.ensureGrad().Data(), n.a.Value.Data(), g.Data()
			for i, x := range xd {
				if x > 0 {
					dst[i] += ud[i]
				}
			}
		}

	case opGELU:
		if n.a.requiresGrad {
			dst, xd, ud := n.a.ensureGrad().Data(), n.a.Value.Data(), g.Data()
			for i, x := range xd {
				dst[i] += ud[i] * geluDeriv(x)
			}
		}

	case opSoftmaxRows, opBlockSoftmaxRows:
		// In-place softmax VJP: needs only the per-row dot Σ u⊙s, so the
		// gradient adds directly into the parent buffer with no scratch.
		// Padded columns of the block variant hold s=0 and route nothing.
		if n.a.requiresGrad {
			s := n.Value
			ga := n.a.ensureGrad()
			for i := 0; i < s.Rows(); i++ {
				srow, urow, grow := s.Row(i), g.Row(i), ga.Row(i)
				var dot float64
				for j := range srow {
					dot += urow[j] * srow[j]
				}
				for j := range srow {
					grow[j] += srow[j] * (urow[j] - dot)
				}
			}
		}

	case opLayerNorm:
		n.backwardLayerNorm(g)

	case opEmbedding:
		gt := n.a.ensureGrad()
		for i, id := range n.ints {
			dst, src := gt.Row(id), g.Row(i)
			for j, u := range src {
				dst[j] += u
			}
		}

	case opConcatCols:
		ca := n.a.Value.Cols()
		if n.a.requiresGrad {
			ga := n.a.ensureGrad()
			for i := 0; i < ga.Rows(); i++ {
				dst, src := ga.Row(i), g.Row(i)[:ca]
				for j, u := range src {
					dst[j] += u
				}
			}
		}
		if n.b.requiresGrad {
			gb := n.b.ensureGrad()
			for i := 0; i < gb.Rows(); i++ {
				dst, src := gb.Row(i), g.Row(i)[ca:]
				for j, u := range src {
					dst[j] += u
				}
			}
		}

	case opConcatRows:
		off := 0
		for _, p := range n.parents {
			r := p.Value.Rows()
			if p.requiresGrad {
				gp := p.ensureGrad()
				for i := 0; i < r; i++ {
					dst, src := gp.Row(i), g.Row(off+i)
					for j, u := range src {
						dst[j] += u
					}
				}
			}
			off += r
		}

	case opSliceCols:
		if n.a.requiresGrad {
			ga := n.a.ensureGrad()
			lo := n.iaux
			for i := 0; i < n.Value.Rows(); i++ {
				dst, src := ga.Row(i)[lo:n.jaux], g.Row(i)
				for j, u := range src {
					dst[j] += u
				}
			}
		}

	case opSliceRows:
		if n.a.requiresGrad {
			ga := n.a.ensureGrad()
			for i := n.iaux; i < n.jaux; i++ {
				dst, src := ga.Row(i), g.Row(i-n.iaux)
				for j, u := range src {
					dst[j] += u
				}
			}
		}

	case opMeanRows:
		if rows := n.a.Value.Rows(); rows > 0 && n.a.requiresGrad {
			ga := n.a.ensureGrad()
			inv := 1 / float64(rows)
			src := g.Row(0)
			for i := 0; i < rows; i++ {
				dst := ga.Row(i)
				for j, u := range src {
					dst[j] += u * inv
				}
			}
		}

	case opMean:
		if size := n.a.Value.Size(); size > 0 && n.a.requiresGrad {
			dst := n.a.ensureGrad().Data()
			u := g.At(0, 0) / float64(size)
			for i := range dst {
				dst[i] += u
			}
		}

	case opSumScalars:
		for _, p := range n.parents {
			p.accumulate(g)
		}

	case opDropout:
		if n.a.requiresGrad {
			accMulInto(n.a.ensureGrad(), g, n.m1)
		}

	case opCrossEntropy:
		counted := n.iaux
		if counted == 0 || !n.a.requiresGrad {
			return
		}
		scale := g.At(0, 0) / float64(counted)
		probs := n.m1
		gl := n.a.ensureGrad()
		for i, tgt := range n.ints {
			if tgt == IgnoreIndex {
				continue
			}
			grow, prow := gl.Row(i), probs.Row(i)
			for j, p := range prow {
				grow[j] += p * scale
			}
			grow[tgt] -= scale
		}

	case opBlockMatMul:
		if n.a.requiresGrad {
			// d a_g = g_g × b_gᵀ
			mustAcc(tensor.BlockMatMulTransBAcc(n.a.ensureGrad(), g, n.b.Value, n.iaux, 1))
		}
		if n.b.requiresGrad {
			// d b_g = a_gᵀ × g_g
			mustAcc(tensor.BlockMatMulTransAAcc(n.b.ensureGrad(), n.a.Value, g, n.iaux, 1))
		}

	case opBlockMatMulTransB:
		if n.a.requiresGrad {
			// d a_g = alpha · g_g × b_g
			mustAcc(tensor.BlockMatMulAcc(n.a.ensureGrad(), g, n.b.Value, n.iaux, n.alpha))
		}
		if n.b.requiresGrad {
			// d b_g = alpha · g_gᵀ × a_g
			mustAcc(tensor.BlockMatMulTransAAcc(n.b.ensureGrad(), g, n.a.Value, n.iaux, n.alpha))
		}

	case opGatherRows:
		ga := n.a.ensureGrad()
		for i, r := range n.ints {
			dst, src := ga.Row(r), g.Row(i)
			for j, u := range src {
				dst[j] += u
			}
		}

	default:
		panic(fmt.Sprintf("autograd: no backward rule for opcode %d", n.op))
	}
}

// backwardAffine applies the x×W + bias VJPs for upstream gradient u
// (parents a=x, b=W, c=bias). Shared by Affine and LinearGELU.
func (n *Node) backwardAffine(u *tensor.Matrix) {
	if n.a.requiresGrad {
		// d x = u × Wᵀ
		mustAcc(tensor.MatMulTransBAcc(n.a.ensureGrad(), u, n.b.Value))
	}
	if n.b.requiresGrad {
		// d W = xᵀ × u
		mustAcc(tensor.MatMulTransAAcc(n.b.ensureGrad(), n.a.Value, u))
	}
	if n.c.requiresGrad {
		accColSums(n.c.ensureGrad(), u)
	}
}

// backwardLayerNorm applies the layer-norm VJPs (parents a=x, b=gain,
// c=bias; m1=xhat, m2=1×rows inverse std).
func (n *Node) backwardLayerNorm(g *tensor.Matrix) {
	xhat := n.m1
	rows, cols := xhat.Rows(), xhat.Cols()
	if n.c.requiresGrad {
		accColSums(n.c.ensureGrad(), g)
	}
	if n.b.requiresGrad {
		gg := n.b.ensureGrad().Data()
		for i := 0; i < rows; i++ {
			urow, hrow := g.Row(i), xhat.Row(i)
			for j, u := range urow {
				gg[j] += u * hrow[j]
			}
		}
	}
	if !n.a.requiresGrad {
		return
	}
	gx := n.a.ensureGrad()
	gd := n.b.Value.Data()
	isd := n.m2.Data()
	for i := 0; i < rows; i++ {
		ur, hr, gr := g.Row(i), xhat.Row(i), gx.Row(i)
		// gy = upstream ⊙ gain; dx = (gy - mean(gy) - xhat*mean(gy⊙xhat)) * invStd
		var m1, m2 float64
		for j := range ur {
			gy := ur[j] * gd[j]
			m1 += gy
			m2 += gy * hr[j]
		}
		m1 /= float64(cols)
		m2 /= float64(cols)
		for j := range ur {
			gy := ur[j] * gd[j]
			gr[j] += (gy - m1 - hr[j]*m2) * isd[i]
		}
	}
}

// accMulInto accumulates dst += a⊙b elementwise (all same shape).
func accMulInto(dst, a, b *tensor.Matrix) {
	dd, ad, bd := dst.Data(), a.Data(), b.Data()
	for i, av := range ad {
		dd[i] += av * bd[i]
	}
}

// accColSums accumulates the column sums of g into the 1×C buffer dst.
func accColSums(dst, g *tensor.Matrix) {
	dd := dst.Data()
	for i := 0; i < g.Rows(); i++ {
		for j, u := range g.Row(i) {
			dd[j] += u
		}
	}
}

// mustAcc wraps tensor shape errors that indicate internal bugs: shapes are
// constructed by the ops themselves, so a mismatch is a programming error
// inside this package, not a user error.
func mustAcc(err error) {
	if err != nil {
		panic(fmt.Sprintf("autograd: internal shape bug: %v", err))
	}
}
