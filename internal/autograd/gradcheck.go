package autograd

import (
	"fmt"
	"math"

	"clinfl/internal/tensor"
)

// GradCheck verifies analytic gradients by central finite differences.
//
// f must build a fresh graph from the given leaves each call and return the
// scalar loss node; leaves are the raw parameter matrices the caller
// perturbs. GradCheck returns the maximum relative error observed across
// all elements of all leaves.
//
// It is exported (rather than test-only) so that every layer package can
// gradient-check its composites in its own tests.
func GradCheck(leaves []*tensor.Matrix, f func(t *Tape, leafNodes []*Node) (*Node, error), eps float64) (float64, error) {
	// Analytic pass.
	tape := NewTape()
	nodes := make([]*Node, len(leaves))
	for i, m := range leaves {
		nodes[i] = tape.Leaf(m)
	}
	loss, err := f(tape, nodes)
	if err != nil {
		return 0, fmt.Errorf("autograd: gradcheck forward: %w", err)
	}
	if err := tape.Backward(loss); err != nil {
		return 0, fmt.Errorf("autograd: gradcheck backward: %w", err)
	}
	analytic := make([]*tensor.Matrix, len(leaves))
	for i, n := range nodes {
		if n.Grad != nil {
			analytic[i] = n.Grad.Clone()
		} else {
			analytic[i] = tensor.New(leaves[i].Rows(), leaves[i].Cols())
		}
	}

	eval := func() (float64, error) {
		t := NewTape()
		ns := make([]*Node, len(leaves))
		for i, m := range leaves {
			ns[i] = t.Leaf(m)
		}
		l, err := f(t, ns)
		if err != nil {
			return 0, err
		}
		return l.Value.At(0, 0), nil
	}

	var maxRel float64
	for li, m := range leaves {
		data := m.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + eps
			up, err := eval()
			if err != nil {
				return 0, fmt.Errorf("autograd: gradcheck +eps: %w", err)
			}
			data[i] = orig - eps
			down, err := eval()
			if err != nil {
				return 0, fmt.Errorf("autograd: gradcheck -eps: %w", err)
			}
			data[i] = orig
			numeric := (up - down) / (2 * eps)
			a := analytic[li].Data()[i]
			denom := math.Max(1, math.Max(math.Abs(numeric), math.Abs(a)))
			rel := math.Abs(numeric-a) / denom
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel, nil
}
