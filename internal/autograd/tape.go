// Package autograd implements tape-based reverse-mode automatic
// differentiation over tensor.Matrix values.
//
// A Tape records every differentiable operation in execution order; calling
// Backward on a scalar output node walks the tape in reverse, invoking each
// node's vector-Jacobian product to accumulate gradients into parameters.
// The design mirrors the define-by-run model of PyTorch's autograd, which
// the paper's reference implementation relies on.
package autograd

import (
	"errors"
	"fmt"

	"clinfl/internal/tensor"
)

// ErrNotScalar is returned by Backward when called on a non-1x1 node.
var ErrNotScalar = errors.New("autograd: Backward requires a scalar (1x1) node")

// Node is a value in the computation graph together with its gradient slot
// and the closure that propagates gradients to its parents.
type Node struct {
	// Value is the forward result held by this node.
	Value *tensor.Matrix
	// Grad accumulates dLoss/dValue during Backward. It is nil until first
	// needed.
	Grad *tensor.Matrix

	requiresGrad bool
	backward     func()
	tape         *Tape
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// ensureGrad allocates the gradient buffer on first use.
func (n *Node) ensureGrad() *tensor.Matrix {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows(), n.Value.Cols())
	}
	return n.Grad
}

// accumulate adds g into the node's gradient if the node participates in
// differentiation.
func (n *Node) accumulate(g *tensor.Matrix) {
	if n == nil || !n.requiresGrad {
		return
	}
	if err := n.ensureGrad().AddInPlace(g); err != nil {
		// Shapes are constructed by the ops themselves; a mismatch is a
		// programming error inside this package, not a user error.
		panic(fmt.Sprintf("autograd: gradient shape mismatch: %v", err))
	}
}

// Tape records operations for reverse-mode differentiation.
//
// Tapes are single-goroutine objects: one forward pass and its backward pass
// must happen on the same tape without concurrent use. Federated clients
// each own their tapes.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape {
	return &Tape{nodes: make([]*Node, 0, 256)}
}

// Reset clears the tape for reuse between training steps, retaining the
// backing array.
func (t *Tape) Reset() {
	for i := range t.nodes {
		t.nodes[i] = nil
	}
	t.nodes = t.nodes[:0]
}

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// record appends a node produced by an operation.
func (t *Tape) record(n *Node) *Node {
	t.nodes = append(t.nodes, n)
	return n
}

// Leaf wraps a parameter matrix as a differentiable graph input. The same
// matrix may be wrapped on many tapes across steps; gradients accumulate in
// the returned node, not the matrix.
func (t *Tape) Leaf(v *tensor.Matrix) *Node {
	return t.record(&Node{Value: v, requiresGrad: true, tape: t})
}

// Constant wraps a matrix that does not require gradients (inputs, masks).
func (t *Tape) Constant(v *tensor.Matrix) *Node {
	return t.record(&Node{Value: v, requiresGrad: false, tape: t})
}

// newOp records an op node whose parents' requiresGrad union decides its own.
func (t *Tape) newOp(v *tensor.Matrix, backward func(n *Node), parents ...*Node) *Node {
	req := false
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			req = true
			break
		}
	}
	n := &Node{Value: v, requiresGrad: req, tape: t}
	if req && backward != nil {
		n.backward = func() { backward(n) }
	}
	return t.record(n)
}

// Backward runs reverse-mode accumulation from the scalar node loss.
// After it returns, every Leaf that influenced loss holds dLoss/dLeaf in
// its Grad field.
func (t *Tape) Backward(loss *Node) error {
	if loss.Value.Rows() != 1 || loss.Value.Cols() != 1 {
		return fmt.Errorf("%w: got %dx%d", ErrNotScalar, loss.Value.Rows(), loss.Value.Cols())
	}
	if loss.tape != t {
		return errors.New("autograd: loss node belongs to a different tape")
	}
	seed := loss.ensureGrad()
	seed.Set(0, 0, seed.At(0, 0)+1)
	// Nodes were appended in execution order, so reverse order is a valid
	// topological order of the DAG.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
	return nil
}
