// Package autograd implements tape-based reverse-mode automatic
// differentiation over tensor.Matrix values.
//
// A Tape records every differentiable operation in execution order; calling
// Backward on a scalar output node walks the tape in reverse, applying each
// node's vector-Jacobian product to accumulate gradients into parameters.
// The design mirrors the define-by-run model of PyTorch's autograd, which
// the paper's reference implementation relies on.
//
// Allocation model: a Node carries an opcode plus parent pointers and small
// auxiliary fields instead of a backward closure, so recording an op
// allocates no closures; the backward pass is a switch over opcodes (see
// backward.go) that accumulates vector-Jacobian products in place into
// parent gradient buffers. Node objects, auxiliary int/pointer slices, and —
// when the tape is built with an arena — every value, gradient and scratch
// matrix are recycled by Reset, so a steady-state forward+backward pass
// allocates nothing.
package autograd

import (
	"errors"
	"fmt"

	"clinfl/internal/sched"
	"clinfl/internal/tensor"
)

// ErrNotScalar is returned by Backward when called on a non-1x1 node.
var ErrNotScalar = errors.New("autograd: Backward requires a scalar (1x1) node")

// opcode identifies the operation that produced a node; backward.go holds
// the vector-Jacobian product for each.
type opcode uint8

const (
	opLeaf opcode = iota
	opConst
	opAdd
	opSub
	opMul
	opScale
	opMatMul
	opMatMulTransB
	opAffine     // a×b + row vector c (fused Linear)
	opLinearGELU // GELU(a×b + row vector c); m1 = pre-activation
	opAddRowVector
	opTanh
	opSigmoid
	opReLU
	opGELU
	opSoftmaxRows
	opLayerNorm // a=x, b=gain, c=bias; m1 = xhat, m2 = 1×rows inverse std
	opEmbedding // a=table, ints=ids
	opConcatCols
	opConcatRows // parents
	opSliceCols  // iaux=lo, jaux=hi
	opSliceRows  // iaux=lo, jaux=hi
	opMeanRows
	opMean
	opSumScalars // parents
	opDropout    // m1 = mask
	opCrossEntropy
	opBlockMatMul       // iaux=block
	opBlockMatMulTransB // iaux=block, alpha = folded score scale
	opBlockSoftmaxRows  // iaux=block
	opGatherRows        // ints=row indices
)

// Node is a value in the computation graph together with its gradient slot
// and the opcode + operands that reproduce its vector-Jacobian product.
type Node struct {
	// Value is the forward result held by this node. On an arena-backed
	// tape it lives in the arena and is invalidated by Tape.Reset.
	Value *tensor.Matrix
	// Grad accumulates dLoss/dValue during Backward. It is nil until first
	// needed and is likewise recycled by Reset.
	Grad *tensor.Matrix

	op           opcode
	requiresGrad bool
	idx          int32          // position on the tape (backward scheduling)
	a, b, c      *Node          // fixed-arity parents
	parents      []*Node        // variadic parents (SumScalars, ConcatRows)
	alpha        float64        // scalar aux: Scale factor, folded block-matmul scale
	iaux, jaux   int            // int aux: slice bounds, block size, CE counted rows
	ints         []int          // index aux: embedding ids, gather rows, CE targets
	m1, m2       *tensor.Matrix // saved forward aux (pre-activation, probs, mask, xhat...)
	tape         *Tape
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// ensureGrad allocates the gradient buffer on first use.
func (n *Node) ensureGrad() *tensor.Matrix {
	if n.Grad == nil {
		n.Grad = n.tape.newMatrix(n.Value.Rows(), n.Value.Cols())
	}
	return n.Grad
}

// accumulate adds g into the node's gradient if the node participates in
// differentiation.
func (n *Node) accumulate(g *tensor.Matrix) {
	if n == nil || !n.requiresGrad {
		return
	}
	if err := n.ensureGrad().AddInPlace(g); err != nil {
		// Shapes are constructed by the ops themselves; a mismatch is a
		// programming error inside this package, not a user error.
		panic(fmt.Sprintf("autograd: gradient shape mismatch: %v", err))
	}
}

// slabPool hands out sub-slices of large reusable slabs; reset rewinds it
// without freeing. Returned slices have stale contents — callers overwrite
// every element. Mirrors tensor.Arena for non-matrix auxiliary data.
type slabPool[T any] struct {
	slabs     [][]T
	slab, off int
}

func (p *slabPool[T]) take(n int) []T {
	if n == 0 {
		return nil
	}
	for p.slab >= len(p.slabs) || p.off+n > len(p.slabs[p.slab]) {
		if p.slab < len(p.slabs) {
			p.slab++
			p.off = 0
			continue
		}
		size := 256
		if l := len(p.slabs); l > 0 {
			size = 2 * len(p.slabs[l-1])
		}
		if size < n {
			size = n
		}
		p.slabs = append(p.slabs, make([]T, size))
		p.off = 0
	}
	s := p.slabs[p.slab][p.off : p.off+n : p.off+n]
	p.off += n
	return s
}

func (p *slabPool[T]) reset() { p.slab, p.off = 0, 0 }

// Tape records operations for reverse-mode differentiation.
//
// Tapes are single-goroutine objects: one forward pass and its backward pass
// must happen on the same tape without concurrent use. Federated clients
// each own their tapes.
type Tape struct {
	nodes []*Node
	spare []*Node // recycled Node objects, reused by newNode after Reset

	arena   *tensor.Arena // nil = heap-allocate values/gradients
	intPool slabPool[int]
	ptrPool slabPool[*Node]

	// bw holds the parallel-backward scheduler's recycled state (dependency
	// arrays, ready queue); see parallel.go.
	bw bwSched

	// evalPrec routes weight matmuls (MatMul, Affine, LinearGELU) through
	// reduced-precision kernels. Only meaningful for inference tapes: the
	// backward rules differentiate the full-precision product, so owners
	// (nn.Ctx) must reset this to PrecF64 whenever the tape trains.
	evalPrec tensor.Precision
}

// NewTape returns an empty tape whose values and gradients live on the heap.
func NewTape() *Tape {
	return &Tape{nodes: make([]*Node, 0, 256)}
}

// NewTapeArena returns an empty tape that draws every node value, gradient
// and backward scratch matrix from arena. Reset recycles the arena along
// with the op list, so repeated forward+backward passes reuse all memory;
// see tensor.Arena for the lifetime rule.
func NewTapeArena(arena *tensor.Arena) *Tape {
	t := NewTape()
	t.arena = arena
	return t
}

// Arena returns the tape's arena (nil for a heap tape).
func (t *Tape) Arena() *tensor.Arena { return t.arena }

// SetEvalPrecision routes subsequent weight matmuls through the given
// storage precision (see tensor.EvalMatMul). Callers must keep this at
// PrecF64 for any tape that will run Backward: quantized forwards would
// otherwise be differentiated as if they were exact.
func (t *Tape) SetEvalPrecision(p tensor.Precision) { t.evalPrec = p }

// EvalPrecision reports the precision weight matmuls currently run in.
func (t *Tape) EvalPrecision() tensor.Precision { return t.evalPrec }

// newMatrix allocates a zeroed matrix from the arena, or the heap when the
// tape has none.
func (t *Tape) newMatrix(rows, cols int) *tensor.Matrix {
	if t.arena != nil {
		return t.arena.Get(rows, cols)
	}
	return tensor.New(rows, cols)
}

// newMatrixUninit allocates without zeroing, for values every element of
// which is written before being read (assign-mode matmuls, elementwise
// maps). Heap-backed tapes still hand out zeroed memory (make does), but
// arena-backed steady-state steps skip the clearing pass entirely.
func (t *Tape) newMatrixUninit(rows, cols int) *tensor.Matrix {
	if t.arena != nil {
		return t.arena.GetUninit(rows, cols)
	}
	return tensor.New(rows, cols)
}

// Reset clears the tape for reuse between training steps: node objects move
// to the spare pool, auxiliary slab pools rewind, and the arena (if any) is
// reset, invalidating every matrix produced since the previous Reset.
func (t *Tape) Reset() {
	t.spare = append(t.spare, t.nodes...)
	t.nodes = t.nodes[:0]
	t.intPool.reset()
	t.ptrPool.reset()
	if t.arena != nil {
		t.arena.Reset()
	}
}

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// newNode returns a zeroed Node, recycling one retired by Reset when
// available.
func (t *Tape) newNode() *Node {
	if k := len(t.spare); k > 0 {
		n := t.spare[k-1]
		t.spare = t.spare[:k-1]
		*n = Node{}
		return n
	}
	return &Node{}
}

// record appends a node produced by an operation.
func (t *Tape) record(n *Node) *Node {
	n.idx = int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	return n
}

// Leaf wraps a parameter matrix as a differentiable graph input. The same
// matrix may be wrapped on many tapes across steps; gradients accumulate in
// the returned node, not the matrix.
func (t *Tape) Leaf(v *tensor.Matrix) *Node {
	n := t.newNode()
	n.op = opLeaf
	n.Value = v
	n.requiresGrad = true
	n.tape = t
	return t.record(n)
}

// Constant wraps a matrix that does not require gradients (inputs, masks).
func (t *Tape) Constant(v *tensor.Matrix) *Node {
	n := t.newNode()
	n.op = opConst
	n.Value = v
	n.tape = t
	return t.record(n)
}

// newOp records an op node with up to three fixed parents; requiresGrad is
// the union of the parents'.
func (t *Tape) newOp(op opcode, v *tensor.Matrix, a, b, c *Node) *Node {
	n := t.newNode()
	n.op = op
	n.Value = v
	n.a, n.b, n.c = a, b, c
	n.requiresGrad = (a != nil && a.requiresGrad) ||
		(b != nil && b.requiresGrad) || (c != nil && c.requiresGrad)
	n.tape = t
	return t.record(n)
}

// newOpN records an op node with a variadic parent list, which is copied
// into the tape's recycled pointer pool.
func (t *Tape) newOpN(op opcode, v *tensor.Matrix, parents []*Node) *Node {
	n := t.newNode()
	n.op = op
	n.Value = v
	n.parents = t.ptrPool.take(len(parents))
	copy(n.parents, parents)
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			n.requiresGrad = true
			break
		}
	}
	n.tape = t
	return t.record(n)
}

// takeInts copies ids into the tape's recycled int pool (callers may mutate
// their slice after the op records it).
func (t *Tape) takeInts(ids []int) []int {
	s := t.intPool.take(len(ids))
	copy(s, ids)
	return s
}

// Backward runs reverse-mode accumulation from the scalar node loss.
// After it returns, every Leaf that influenced loss holds dLoss/dLeaf in
// its Grad field.
//
// Large tapes replay as a parallel topological wave on the shared
// fork-join pool: independent branches (per-head attention blocks,
// residual forks) execute concurrently, while consumers of a shared
// parent are chained in reverse tape order so every gradient buffer sees
// its accumulations in exactly the serial order — results are
// bit-identical at every pool width (see parallel.go). Small tapes, and
// any tape when the pool has no workers, replay serially.
func (t *Tape) Backward(loss *Node) error {
	if loss.Value.Rows() != 1 || loss.Value.Cols() != 1 {
		return fmt.Errorf("%w: got %dx%d", ErrNotScalar, loss.Value.Rows(), loss.Value.Cols())
	}
	if loss.tape != t {
		return errors.New("autograd: loss node belongs to a different tape")
	}
	seed := loss.ensureGrad()
	seed.Set(0, 0, seed.At(0, 0)+1)
	if pool := sched.Default(); pool.Size() > 1 && len(t.nodes) >= parallelBackwardMinNodes {
		t.backwardParallel(pool)
		return nil
	}
	// Nodes were appended in execution order, so reverse order is a valid
	// topological order of the DAG.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.op != opLeaf && n.op != opConst && n.requiresGrad && n.Grad != nil {
			n.backward()
		}
	}
	return nil
}
