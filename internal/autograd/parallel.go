package autograd

import (
	"fmt"
	"sync"

	"clinfl/internal/sched"
)

// Parallel tape backward: the tape VM records enough structure (node
// indices and parent pointers) to replay the backward pass as a
// topological wave over the op DAG instead of a strict reverse scan.
// Independent branches — the per-head attention blocks, the residual
// forks, the MLM/classifier heads — execute concurrently on the shared
// fork-join pool.
//
// Determinism: backward node i accumulates vector-Jacobian products into
// its parents' gradient buffers, so two consumers of the same parent must
// not run concurrently (a data race) nor in a run-dependent order
// (floating-point accumulation is not associative). Instead of per-worker
// gradient staging buffers merged afterwards — which would reintroduce
// the allocations and extra passes the arena work removed — the scheduler
// threads an ordering chain through each parent's consumers: the
// highest-index consumer runs first, each consumer waits for the previous
// one, and the parent itself waits for the chain's tail. Accumulation
// into every gradient buffer therefore happens in exactly the reverse
// tape order the serial replay uses, making gradients bit-identical at
// every pool width, while disjoint branches still overlap freely.
//
// Edge construction (one ascending scan): for node i with grad-requiring
// parent p, add edge i -> (p's previously seen consumer, or p itself if i
// is p's first). An edge a -> b means b waits for a.
//
// Execution is wave-synchronous: the current ready set replays as one
// pool ParallelFor with single-node chunks (so stealing balances the
// heterogeneous node costs), completions release the next wave, and the
// loop repeats until the DAG drains. Forking a fresh ParallelFor per wave
// is what keeps pool workers honest: they are re-invited exactly when a
// wave has work, never parked on (or ticket-churned by) a momentarily
// empty queue, and between waves they are free to help other jobs —
// including the kernels inside this wave's own nodes. All scheduler state
// lives in recycled tape-owned slices, so a steady-state parallel
// backward allocates nothing.

// parallelBackwardMinNodes gates the parallel replay: tapes below this
// size (unit-test probes, tiny eval graphs) stay on the serial scan whose
// whole cost is smaller than one pool handoff.
const parallelBackwardMinNodes = 64

// nodeFlopsEstimate is the per-node work estimate handed to ParallelFor.
// Backward nodes run matmul-class kernels (tens of µs to ms), far above
// the pool's fan-out gate, so the estimate only needs to be large enough
// that a multi-node wave always forks with one node per steal chunk.
const nodeFlopsEstimate = 1 << 18

// bwSched is the recycled scheduler state embedded in each Tape.
type bwSched struct {
	tape *Tape

	indeg    []int32 // unmet dependencies per node
	lastCons []int32 // per-node last-seen consumer while building chains
	succOff  []int32 // flattened successor-list offsets (len nodes+1)
	succ     []int32 // successor indices; -1 = duplicate-parent sentinel

	live []bool // grad-liveness per node, set by the pre-allocation pass

	wave []int32 // the ready set currently replaying

	mu       sync.Mutex
	next     []int32 // nodes released by the current wave
	panicked any     // first panic from a node replay, re-raised by owner
}

// scheduled reports whether node n participates in the wave (leaves and
// constants have no backward rule; they only terminate chains).
func scheduled(n *Node) bool {
	return n.op != opLeaf && n.op != opConst && n.requiresGrad
}

// backwardParallel replays the tape as a dependency wave on pool. The
// loss gradient must already be seeded.
func (t *Tape) backwardParallel(pool *sched.Pool) {
	s := &t.bw
	s.tape = t
	s.build()
	for len(s.wave) > 0 {
		if n := len(s.wave); n == 1 {
			s.Run(0, 1)
		} else {
			pool.ParallelFor(n, nodeFlopsEstimate, s)
		}
		if s.panicked != nil {
			p := s.panicked
			s.panicked = nil
			panic(p)
		}
		// The completed wave's releases become the next wave. Swapping the
		// recycled slices keeps this allocation-free.
		s.wave, s.next = s.next, s.wave[:0]
	}
}

// Run implements sched.Body over the current wave: replay nodes
// wave[lo:hi] and collect the successors they release.
func (s *bwSched) Run(lo, hi int) {
	for _, i := range s.wave[lo:hi] {
		s.exec(i)
	}
}

// exec replays one node and releases its successors into the next wave.
// Dependency counters are updated under the scheduler lock (edge counts
// are tiny next to the kernel work inside backward()).
func (s *bwSched) exec(i int32) {
	nd := s.tape.nodes[i]
	if nd.Grad != nil {
		func() {
			defer func() {
				if r := recover(); r != nil {
					s.mu.Lock()
					if s.panicked == nil {
						s.panicked = fmt.Errorf("autograd: parallel backward node %d: %v", i, r)
					}
					s.mu.Unlock()
				}
			}()
			nd.backward()
		}()
	}
	s.mu.Lock()
	for _, e := range s.succ[s.succOff[i]:s.succOff[i+1]] {
		if e < 0 {
			continue
		}
		s.indeg[e]--
		if s.indeg[e] == 0 && scheduled(s.tape.nodes[e]) {
			s.next = append(s.next, e)
		}
	}
	s.mu.Unlock()
}

// grow returns buf resized to n valid elements without shrinking capacity.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// build computes in-degrees and successor lists for the current tape and
// seeds the first wave.
func (s *bwSched) build() {
	nodes := s.tape.nodes
	n := len(nodes)
	s.indeg = grow(s.indeg, n)
	s.lastCons = grow(s.lastCons, n)
	s.succOff = grow(s.succOff, n+1)
	for i := 0; i < n; i++ {
		s.indeg[i] = 0
		s.lastCons[i] = -1
	}

	// Pass 1: successor-list offsets (one slot per grad-requiring parent
	// reference, duplicates included so offsets stay aligned).
	off := int32(0)
	for i, nd := range nodes {
		s.succOff[i] = off
		if nd.requiresGrad {
			off += int32(gradParentCount(nd))
		}
	}
	s.succOff[n] = off
	s.succ = grow(s.succ, int(off))

	// Pass 2: fill edges and count in-degrees, threading each parent's
	// consumer chain through lastCons.
	for i, nd := range nodes {
		if !nd.requiresGrad {
			continue
		}
		fill := s.succOff[i]
		fill = s.edge(int32(i), nd.a, fill)
		fill = s.edge(int32(i), nd.b, fill)
		fill = s.edge(int32(i), nd.c, fill)
		for _, p := range nd.parents {
			fill = s.edge(int32(i), p, fill)
		}
	}

	// Pass 3: liveness and deterministic gradient pre-allocation. Backward
	// rules allocate a parent's gradient buffer at its first accumulation,
	// which under the wave replay happens on whichever pool worker gets
	// there — arena slabs then fill in a run- and GOMAXPROCS-dependent
	// order, fragmenting them differently on every round and forcing slab
	// churn (the bytes/op regression BENCH_parallel.json showed at -cpu
	// 2/4). Instead, replay the serial scan's allocation decisions here, on
	// the owner goroutine, before any wave runs: walking the tape in
	// descending order, a node will execute iff it is scheduled and either
	// has a seeded gradient (the loss) or was marked live by an executing
	// consumer (all consumers have higher indices, so they are already
	// decided). Executing nodes allocate their backward scratch and their
	// grad-requiring parents' buffers in fixed tape order, so the arena
	// layout is identical at every pool width and the waves themselves
	// allocate nothing.
	s.live = grow(s.live, n)
	clear(s.live)
	for i := n - 1; i >= 0; i-- {
		nd := nodes[i]
		if !scheduled(nd) || (nd.Grad == nil && !s.live[i]) {
			continue
		}
		if nd.op == opLinearGELU && nd.m2 == nil {
			// dh scratch for the GELU chain rule; see backward().
			nd.m2 = s.tape.newMatrixUninit(nd.m1.Rows(), nd.m1.Cols())
		}
		s.prealloc(nd.a)
		s.prealloc(nd.b)
		s.prealloc(nd.c)
		for _, p := range nd.parents {
			s.prealloc(p)
		}
	}

	// Seed: scheduled nodes with no unmet dependencies (the loss node and
	// any dead-end branches).
	s.wave = s.wave[:0]
	if s.next == nil {
		s.next = make([]int32, 0, 16)
	}
	s.next = s.next[:0]
	for i, nd := range nodes {
		if s.indeg[i] == 0 && scheduled(nd) {
			s.wave = append(s.wave, int32(i))
		}
	}
	s.panicked = nil
}

// prealloc marks parent p live and allocates its gradient buffer. Safe to
// call repeatedly (ensureGrad is idempotent); skips parents that take no
// gradient, matching the requiresGrad guards inside the backward rules.
func (s *bwSched) prealloc(p *Node) {
	if p == nil || !p.requiresGrad {
		return
	}
	s.live[p.idx] = true
	p.ensureGrad()
}

// gradParentCount returns how many of nd's parents receive gradients.
func gradParentCount(nd *Node) int {
	c := 0
	if nd.a != nil && nd.a.requiresGrad {
		c++
	}
	if nd.b != nil && nd.b.requiresGrad {
		c++
	}
	if nd.c != nil && nd.c.requiresGrad {
		c++
	}
	for _, p := range nd.parents {
		if p != nil && p.requiresGrad {
			c++
		}
	}
	return c
}

// edge links consumer i into parent p's ordering chain, writing the
// successor slot at fill and returning the next slot. A parent repeated
// within one node (Mul(x, x)) would chain to itself; the slot gets a -1
// sentinel instead (the node's own replay already handles both operands).
func (s *bwSched) edge(i int32, p *Node, fill int32) int32 {
	if p == nil || !p.requiresGrad {
		return fill
	}
	target := s.lastCons[p.idx]
	if target == -1 {
		target = p.idx
	}
	s.lastCons[p.idx] = i
	if target == i {
		s.succ[fill] = -1
		return fill + 1
	}
	s.succ[fill] = target
	s.indeg[target]++
	return fill + 1
}
