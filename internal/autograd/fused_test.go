package autograd

import (
	"math"
	"testing"

	"clinfl/internal/tensor"
)

// Gradient checks and fused-vs-unfused equivalence for the fused tape
// kernels (Affine, LinearGELU, the scaled block score matmul) and for the
// in-place softmax backward.

func TestAffineGrad(t *testing.T) {
	rng := tensor.NewRNG(20)
	x, w, b := rng.Normal(5, 3, 0, 1), rng.Normal(3, 4, 0, 1), rng.Normal(1, 4, 0, 1)
	checkGrad(t, []*tensor.Matrix{x, w, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		h, err := tp.Affine(ns[0], ns[1], ns[2])
		if err != nil {
			return nil, err
		}
		return tp.Mean(h), nil
	})
}

func TestLinearGELUGrad(t *testing.T) {
	rng := tensor.NewRNG(21)
	x, w, b := rng.Normal(4, 3, 0, 1), rng.Normal(3, 5, 0, 1), rng.Normal(1, 5, 0, 0.5)
	checkGrad(t, []*tensor.Matrix{x, w, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		h, err := tp.LinearGELU(ns[0], ns[1], ns[2])
		if err != nil {
			return nil, err
		}
		return tp.Mean(h), nil
	})
}

func TestBlockMatMulTransBScaledGrad(t *testing.T) {
	rng := tensor.NewRNG(22)
	a, b := rng.Normal(6, 4, 0, 1), rng.Normal(6, 4, 0, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.BlockMatMulTransBScaled(ns[0], ns[1], 3, 1/math.Sqrt(4))
		if err != nil {
			return nil, err
		}
		return tp.Mean(s), nil
	})
}

// TestSoftmaxRowsInPlaceBackwardGrad pins the in-place softmax VJP (which
// accumulates directly into the parent gradient buffer) against finite
// differences, including the accumulate-into-nonzero-gradient case via a
// second use of the same leaf.
func TestSoftmaxRowsInPlaceBackwardGrad(t *testing.T) {
	rng := tensor.NewRNG(23)
	a := rng.Normal(4, 6, 0, 1)
	checkGrad(t, []*tensor.Matrix{a}, func(tp *Tape, ns []*Node) (*Node, error) {
		s := tp.SoftmaxRows(ns[0])
		// Reuse the leaf so its gradient buffer receives both the softmax
		// VJP and a direct contribution, exercising the += path.
		sum, err := tp.Add(s, ns[0])
		if err != nil {
			return nil, err
		}
		return tp.Mean(sum), nil
	})
}

// runBackward builds loss = mean(f(leaves)) on a fresh tape and returns the
// leaf gradients.
func runBackward(t *testing.T, leaves []*tensor.Matrix, f func(tp *Tape, ns []*Node) (*Node, error)) []*tensor.Matrix {
	t.Helper()
	tp := NewTape()
	ns := make([]*Node, len(leaves))
	for i, m := range leaves {
		ns[i] = tp.Leaf(m)
	}
	out, err := f(tp, ns)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Backward(tp.Mean(out)); err != nil {
		t.Fatal(err)
	}
	grads := make([]*tensor.Matrix, len(ns))
	for i, n := range ns {
		grads[i] = n.Grad
	}
	return grads
}

func assertClose(t *testing.T, name string, got, want *tensor.Matrix) {
	t.Helper()
	if !got.AllClose(want, 1e-9, 1e-9) {
		t.Fatalf("%s: fused and unfused diverge beyond 1e-9", name)
	}
}

// TestLinearGELUMatchesUnfused pins the fused kernel against the three-node
// chain (MatMul + AddRowVector + GELU) it replaced: values and all three
// gradients must agree to 1e-9.
func TestLinearGELUMatchesUnfused(t *testing.T) {
	rng := tensor.NewRNG(24)
	x, w, b := rng.Normal(6, 4, 0, 1), rng.Normal(4, 7, 0, 1), rng.Normal(1, 7, 0, 0.5)

	var fusedVal, unfusedVal *tensor.Matrix
	fused := runBackward(t, []*tensor.Matrix{x, w, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		h, err := tp.LinearGELU(ns[0], ns[1], ns[2])
		if err != nil {
			return nil, err
		}
		fusedVal = h.Value
		return h, nil
	})
	unfused := runBackward(t, []*tensor.Matrix{x, w, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		h, err := tp.MatMul(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		h, err = tp.AddRowVector(h, ns[2])
		if err != nil {
			return nil, err
		}
		h = tp.GELU(h)
		unfusedVal = h.Value
		return h, nil
	})

	assertClose(t, "LinearGELU value", fusedVal, unfusedVal)
	for i, name := range []string{"x grad", "w grad", "b grad"} {
		assertClose(t, "LinearGELU "+name, fused[i], unfused[i])
	}
}

// TestAffineMatchesUnfused pins Affine against MatMul + AddRowVector.
func TestAffineMatchesUnfused(t *testing.T) {
	rng := tensor.NewRNG(25)
	x, w, b := rng.Normal(5, 3, 0, 1), rng.Normal(3, 6, 0, 1), rng.Normal(1, 6, 0, 1)

	var fusedVal, unfusedVal *tensor.Matrix
	fused := runBackward(t, []*tensor.Matrix{x, w, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		h, err := tp.Affine(ns[0], ns[1], ns[2])
		if err != nil {
			return nil, err
		}
		fusedVal = h.Value
		return h, nil
	})
	unfused := runBackward(t, []*tensor.Matrix{x, w, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		h, err := tp.MatMul(ns[0], ns[1])
		if err != nil {
			return nil, err
		}
		h, err = tp.AddRowVector(h, ns[2])
		if err != nil {
			return nil, err
		}
		unfusedVal = h.Value
		return h, nil
	})

	assertClose(t, "Affine value", fusedVal, unfusedVal)
	for i, name := range []string{"x grad", "w grad", "b grad"} {
		assertClose(t, "Affine "+name, fused[i], unfused[i])
	}
}

// TestScaledBlockMatMulMatchesUnfused pins the folded score scale against
// the BlockMatMulTransB + Scale chain it replaced.
func TestScaledBlockMatMulMatchesUnfused(t *testing.T) {
	rng := tensor.NewRNG(26)
	a, b := rng.Normal(8, 5, 0, 1), rng.Normal(8, 5, 0, 1)
	const block = 4
	alpha := 1 / math.Sqrt(5)

	var fusedVal, unfusedVal *tensor.Matrix
	fused := runBackward(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.BlockMatMulTransBScaled(ns[0], ns[1], block, alpha)
		if err != nil {
			return nil, err
		}
		fusedVal = s.Value
		return s, nil
	})
	unfused := runBackward(t, []*tensor.Matrix{a, b}, func(tp *Tape, ns []*Node) (*Node, error) {
		s, err := tp.BlockMatMulTransB(ns[0], ns[1], block)
		if err != nil {
			return nil, err
		}
		s = tp.Scale(alpha, s)
		unfusedVal = s.Value
		return s, nil
	})

	assertClose(t, "scaled block score value", fusedVal, unfusedVal)
	assertClose(t, "scaled block score a grad", fused[0], unfused[0])
	assertClose(t, "scaled block score b grad", fused[1], unfused[1])
}

// TestArenaTapeMatchesHeapTape runs the same composite graph on a heap tape
// and an arena tape across several Reset cycles: losses and gradients must
// be bit-identical, and the arena must stop growing after the first cycle.
func TestArenaTapeMatchesHeapTape(t *testing.T) {
	rng := tensor.NewRNG(27)
	x := rng.Normal(6, 4, 0, 1)
	w := rng.Normal(4, 4, 0, 1)
	b := rng.Normal(1, 4, 0, 0.5)

	build := func(tp *Tape) (loss float64, wGrad *tensor.Matrix) {
		xn, wn, bn := tp.Constant(x), tp.Leaf(w), tp.Leaf(b)
		h, err := tp.LinearGELU(xn, wn, bn)
		if err != nil {
			t.Fatal(err)
		}
		s := tp.SoftmaxRows(h)
		l := tp.Mean(s)
		if err := tp.Backward(l); err != nil {
			t.Fatal(err)
		}
		return l.Value.At(0, 0), wn.Grad
	}

	heapLoss, heapGrad := build(NewTape())

	arena := tensor.NewArena()
	tp := NewTapeArena(arena)
	var footAfterFirst int
	for cycle := 0; cycle < 3; cycle++ {
		tp.Reset()
		loss, grad := build(tp)
		if loss != heapLoss {
			t.Fatalf("cycle %d: arena loss %v != heap loss %v", cycle, loss, heapLoss)
		}
		if !grad.Equal(heapGrad) {
			t.Fatalf("cycle %d: arena gradient differs from heap gradient", cycle)
		}
		if cycle == 0 {
			footAfterFirst = arena.Footprint()
		} else if arena.Footprint() != footAfterFirst {
			t.Fatalf("cycle %d: arena footprint grew %d -> %d after warmup",
				cycle, footAfterFirst, arena.Footprint())
		}
	}
}
