package hier

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuoFastPathMatchesExact pins the float64 fast-path division
// against the expPrec-bit exact path bit-for-bit: random expansions in
// the first half, and adversarial quotients built to land near rounding
// boundaries in the second (f·w plus a tiny perturbation divided by w,
// where the fast path must either prove f's side or fall back).
func TestQuoFastPathMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5000; trial++ {
		w := int64(1 + r.Intn(1<<20))
		var e expansion
		if trial%2 == 0 {
			n := 1 + r.Intn(6)
			for i := 0; i < n; i++ {
				v := r.NormFloat64() * math.Pow(2, float64(r.Intn(120)-60))
				e = e.growProduct(float64(1+r.Intn(1000)), v)
			}
		} else {
			f := r.NormFloat64()
			e = e.growProduct(f, float64(w))
			e = e.grow(math.Abs(f) * math.Pow(2, float64(-50-r.Intn(60))) * float64(1-2*r.Intn(2)))
		}
		d := newDivider(w)
		got := d.quo(e)
		want := d.exactQuo(e)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (w=%d, e=%v): quo %x, exact %x",
				trial, w, e, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestGrowProductMatchesTwoPass pins the pipelined growProduct against
// the reference two-pass form (grow the roundoff, then grow the high
// product) component-for-component: the fusion must not change the
// emitted sequence, because ResidentBytes — and through it the sim
// digests — depend on component counts, not just represented values.
func TestGrowProductMatchesTwoPass(t *testing.T) {
	twoPass := func(e expansion, a, b float64) expansion {
		hi := a * b
		lo := math.FMA(a, b, -hi)
		if lo != 0 {
			e = e.grow(lo)
		}
		return e.grow(hi)
	}
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 3000; trial++ {
		var got, want expansion
		for step := 0; step < 1+r.Intn(8); step++ {
			a := float64(1 + r.Intn(1000))
			b := r.NormFloat64() * math.Pow(2, float64(r.Intn(100)-50))
			got = got.growProduct(a, b)
			want = twoPass(want, a, b)
			if len(got) != len(want) {
				t.Fatalf("trial %d step %d: %d components, want %d", trial, step, len(got), len(want))
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("trial %d step %d comp %d: %x want %x",
						trial, step, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestQuoExactMidpointRoundsToEven: (2 + 2^-52) / 2 = 1 + 2^-53 sits
// exactly halfway between 1 and the next float64, so round-half-even
// must give exactly 1 — the fast path cannot prove a side of a true
// midpoint, making this the exactQuo-fallback regression.
func TestQuoExactMidpointRoundsToEven(t *testing.T) {
	e := expansion(nil).grow(2).grow(0x1p-52)
	if got := e.quo(2); got != 1 {
		t.Fatalf("midpoint quotient = %g (%x), want 1", got, math.Float64bits(got))
	}
}
