package hier

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"clinfl/internal/tensor"
)

func testPartial(t *testing.T) *Partial {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	p := NewPartial()
	for i := 0; i < 5; i++ {
		w := tensor.New(2, 3)
		for j := range w.Data() {
			w.Data()[j] = r.NormFloat64() * math.Pow(2, float64(r.Intn(40)-20))
		}
		b := tensor.New(1, 3)
		for j := range b.Data() {
			b.Data()[j] = r.NormFloat64()
		}
		err := p.Fold(Update{
			ClientName: string(rune('a' + i)),
			Weights:    map[string]*tensor.Matrix{"w": w, "b": b},
			NumSamples: 1 + r.Intn(100),
			TrainLoss:  r.Float64(),
			UpBytes:    64 + i,
			DownBytes:  32,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Fail("z: conn: reset")
	p.AddTierBytes(123)
	return p
}

func TestPartialCodecRoundTrip(t *testing.T) {
	p := testPartial(t)
	blob, err := EncodePartial(p)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPartial(blob) {
		t.Fatal("encoded partial missing magic")
	}
	q, err := DecodePartial(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.Weight() != p.Weight() || q.Updates() != p.Updates() || q.Merged() != p.Merged() {
		t.Fatalf("counters differ: %d/%d/%d vs %d/%d/%d",
			q.Weight(), q.Updates(), q.Merged(), p.Weight(), p.Updates(), p.Merged())
	}
	if q.BytesUp() != p.BytesUp() || q.BytesDown() != p.BytesDown() || q.TierBytes() != p.TierBytes() {
		t.Fatal("byte accounting differs")
	}
	wantP, wantF := p.Participants(), p.Failures()
	gotP, gotF := q.Participants(), q.Failures()
	if len(gotP) != len(wantP) || len(gotF) != len(wantF) {
		t.Fatalf("accounting lists differ: %v/%v vs %v/%v", gotP, gotF, wantP, wantF)
	}
	if q.MeanLoss() != p.MeanLoss() {
		t.Fatalf("mean loss %v vs %v", q.MeanLoss(), p.MeanLoss())
	}
	want, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for name, wm := range want {
		gm := got[name]
		if gm == nil {
			t.Fatalf("missing %q after round trip", name)
		}
		for i, v := range wm.Data() {
			if math.Float64bits(v) != math.Float64bits(gm.Data()[i]) {
				t.Fatalf("%s[%d] differs after round trip", name, i)
			}
		}
	}
	// Deterministic: re-encoding yields identical bytes.
	blob2, err := EncodePartial(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodePartialRejectsCorruption(t *testing.T) {
	blob, err := EncodePartial(testPartial(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("CFXX1\nrest"),
		"truncated":   blob[:len(blob)/2],
		"trailing":    append(append([]byte(nil), blob...), 0xFF),
		"weight only": []byte(PartialMagic),
	}
	// Absurd param count.
	huge := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(huge[len(PartialMagic):], 1<<30)
	cases["param count"] = huge
	for name, b := range cases {
		if _, err := DecodePartial(b); !errors.Is(err, ErrBadPartial) {
			t.Errorf("%s: err = %v, want ErrBadPartial", name, err)
		}
	}
	// Every prefix must fail cleanly, never panic.
	for i := 0; i < len(blob); i++ {
		if _, err := DecodePartial(blob[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", i)
		}
	}
}

func FuzzDecodePartial(f *testing.F) {
	p := NewPartial()
	w := tensor.New(1, 2)
	w.Data()[0], w.Data()[1] = 0.5, -1.25
	if err := p.Fold(Update{ClientName: "seed", Weights: map[string]*tensor.Matrix{"w": w}, NumSamples: 4, TrainLoss: 0.5}); err != nil {
		f.Fatal(err)
	}
	seed, err := EncodePartial(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(PartialMagic))
	f.Add([]byte("CFHP1\n\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodePartial(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and survive a merge.
		if _, err := EncodePartial(q); err != nil {
			t.Fatalf("decoded partial failed to re-encode: %v", err)
		}
		root := NewPartial()
		if err := root.Merge(q); err == nil && root.Updates() > 0 && root.Weight() > 0 {
			if _, err := root.Finalize(); err != nil {
				t.Fatalf("merged fuzz partial failed finalize: %v", err)
			}
		}
	})
}

func TestEncodedSizeMatchesEncodePartial(t *testing.T) {
	cases := map[string]*Partial{
		"empty":  NewPartial(),
		"folded": testPartial(t),
	}
	merged := NewPartial()
	if err := merged.Merge(testPartial(t)); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(testPartial(t)); err != nil {
		t.Fatal(err)
	}
	cases["merged"] = merged
	for name, p := range cases {
		blob, err := EncodePartial(p)
		if err != nil {
			t.Fatal(err)
		}
		size, err := p.EncodedSize()
		if err != nil {
			t.Fatal(err)
		}
		if size != int64(len(blob)) {
			t.Fatalf("%s: EncodedSize %d, EncodePartial produced %d bytes", name, size, len(blob))
		}
	}
	// The validation failures must agree too: an oversized participant
	// name fails both the same way.
	bad := testPartial(t)
	bad.participants[0] = string(make([]byte, maxNameLen+1))
	if _, err := EncodePartial(bad); err == nil {
		t.Fatal("EncodePartial accepted an oversized participant name")
	}
	if _, err := bad.EncodedSize(); err == nil {
		t.Fatal("EncodedSize accepted an oversized participant name")
	}
}
