package hier

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"

	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// EdgeConfig configures an edge aggregator: a tier node that fronts a
// shard of clients over the ordinary FL wire protocol and forwards one
// merged partial per round to its parent (the root server or another
// edge). Leaves talk to an edge exactly as they would to the root — the
// standard fl.Client needs no changes — and the parent sees the edge as
// one client whose MsgUpdate payload is an encoded Partial.
type EdgeConfig struct {
	// Name identifies the edge to its parent.
	Name string
	// Token is the admission token presented to the parent.
	Token string
	// DialParent opens the upstream connection.
	DialParent func() (transport.MessageConn, error)
	// Listener accepts the downstream shard's connections.
	Listener transport.MessageListener
	// ExpectedClients is the shard size; registration blocks until all
	// have joined.
	ExpectedClients int
	// RegisterTimeout bounds the whole registration phase (0 = forever).
	RegisterTimeout time.Duration
	// VerifyToken admits downstream clients.
	VerifyToken func(name, token string) bool
	// RoundDeadline cuts the downstream gather; stragglers are recorded
	// as failures in the partial's accounting (0 = wait for all).
	RoundDeadline time.Duration
	// MinUpdates is the quorum below which the edge reports the round as
	// failed to its parent instead of sending a thin partial (0 = 1).
	MinUpdates int
	// DecodeWeights parses leaf weight payloads (any negotiated codec).
	// Injected so hier does not depend on the fl package; callers pass
	// fl.DecodeWeights.
	DecodeWeights func([]byte) (map[string]*tensor.Matrix, error)
	// Logf, when set, receives progress logging.
	Logf func(string, ...any)
}

// EdgeResult summarizes a completed edge run.
type EdgeResult struct {
	// FinalWeights is the converged global model broadcast by the root.
	FinalWeights map[string]*tensor.Matrix
	// Rounds is how many rounds the edge aggregated.
	Rounds int
	// TierBytesUp is the total encoded-partial bytes this edge sent to
	// its parent.
	TierBytesUp int64
}

// Edge is a running edge aggregator. Its per-round resident aggregation
// state is one Partial — O(model), independent of shard size.
type Edge struct {
	cfg     EdgeConfig
	clients map[string]transport.MessageConn
	inbox   chan downMsg
}

type downMsg struct {
	name string
	msg  *transport.Message
	err  error
}

// NewEdge validates the configuration.
func NewEdge(cfg EdgeConfig) (*Edge, error) {
	switch {
	case cfg.Name == "":
		return nil, errors.New("hier: edge needs a Name")
	case cfg.DialParent == nil:
		return nil, errors.New("hier: edge needs DialParent")
	case cfg.Listener == nil:
		return nil, errors.New("hier: edge needs a Listener")
	case cfg.ExpectedClients <= 0:
		return nil, errors.New("hier: edge needs ExpectedClients > 0")
	case cfg.VerifyToken == nil:
		return nil, errors.New("hier: edge needs VerifyToken")
	case cfg.DecodeWeights == nil:
		return nil, errors.New("hier: edge needs DecodeWeights")
	}
	if cfg.MinUpdates <= 0 {
		cfg.MinUpdates = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Edge{cfg: cfg, clients: make(map[string]transport.MessageConn)}, nil
}

// Run registers the shard, joins the parent, and relays rounds until the
// parent broadcasts MsgFinish. The caller owns listener/conn cleanup on
// error paths; Run closes what it opened on success.
func (e *Edge) Run() (*EdgeResult, error) {
	if err := e.acceptClients(); err != nil {
		return nil, err
	}
	parent, err := e.joinParent()
	if err != nil {
		e.closeClients()
		return nil, err
	}
	defer parent.Close()
	defer e.closeClients()

	e.inbox = make(chan downMsg, 4*len(e.clients))
	for name, conn := range e.clients {
		go func(name string, conn transport.MessageConn) {
			for {
				msg, err := conn.Read()
				if err != nil {
					e.inbox <- downMsg{name: name, err: err}
					return
				}
				e.inbox <- downMsg{name: name, msg: msg}
			}
		}(name, conn)
	}

	res := &EdgeResult{}
	for {
		msg, err := parent.Read()
		if err != nil {
			return nil, fmt.Errorf("hier: edge %s: parent read: %w", e.cfg.Name, err)
		}
		switch msg.Type {
		case transport.MsgTask:
			blob, meanLoss, weight, err := e.runRound(msg)
			if err != nil {
				werr := parent.Write(&transport.Message{
					Type: transport.MsgError, Sender: e.cfg.Name, Round: msg.Round,
					Meta: map[string]string{"error": err.Error()},
				})
				if werr != nil {
					return nil, fmt.Errorf("hier: edge %s: report round error: %w", e.cfg.Name, werr)
				}
				continue
			}
			up := &transport.Message{
				Type: transport.MsgUpdate, Sender: e.cfg.Name, Round: msg.Round,
				Payload:    blob,
				NumSamples: clampInt(weight),
				Meta:       map[string]string{"train_loss": strconv.FormatFloat(meanLoss, 'g', -1, 64)},
			}
			if err := parent.Write(up); err != nil {
				return nil, fmt.Errorf("hier: edge %s: send partial: %w", e.cfg.Name, err)
			}
			res.Rounds++
			res.TierBytesUp += int64(len(blob))
		case transport.MsgPing:
			if err := parent.Write(&transport.Message{Type: transport.MsgPong, Sender: e.cfg.Name}); err != nil {
				return nil, fmt.Errorf("hier: edge %s: pong: %w", e.cfg.Name, err)
			}
		case transport.MsgFinish:
			for name, conn := range e.clients {
				fin := &transport.Message{Type: transport.MsgFinish, Sender: e.cfg.Name, Payload: msg.Payload}
				if err := conn.Write(fin); err != nil {
					e.cfg.Logf("edge %s: finish to %s: %v", e.cfg.Name, name, err)
				}
			}
			if len(msg.Payload) > 0 {
				final, err := e.cfg.DecodeWeights(msg.Payload)
				if err != nil {
					return nil, fmt.Errorf("hier: edge %s: decode final model: %w", e.cfg.Name, err)
				}
				res.FinalWeights = final
			}
			return res, nil
		default:
			return nil, fmt.Errorf("hier: edge %s: unexpected parent message %v", e.cfg.Name, msg.Type)
		}
	}
}

// runRound fans the task out to the shard, folds replies into a fresh
// Partial as they arrive, and returns the encoded partial. A child that
// is itself an edge (payload carries PartialMagic) is merged rather than
// folded, so edges stack into deeper trees.
func (e *Edge) runRound(task *transport.Message) (blob []byte, meanLoss float64, weight int64, err error) {
	partial := NewPartial()
	tasked := make(map[string]bool, len(e.clients))
	for name, conn := range e.clients {
		out := &transport.Message{
			Type: transport.MsgTask, Sender: e.cfg.Name, Round: task.Round,
			Payload: task.Payload, Meta: task.Meta,
		}
		if err := conn.Write(out); err != nil {
			partial.Fail(name + ": task send: " + err.Error())
			delete(e.clients, name)
			continue
		}
		tasked[name] = true
	}

	var deadline <-chan time.Time
	if e.cfg.RoundDeadline > 0 {
		timer := time.NewTimer(e.cfg.RoundDeadline)
		defer timer.Stop()
		deadline = timer.C
	}
	pending := len(tasked)
	for pending > 0 {
		select {
		case dm := <-e.inbox:
			if !tasked[dm.name] {
				continue
			}
			switch {
			case dm.err != nil:
				partial.Fail(dm.name + ": conn: " + dm.err.Error())
				delete(e.clients, dm.name)
				delete(tasked, dm.name)
				pending--
			case dm.msg.Type == transport.MsgError:
				partial.Fail(dm.name + ": " + dm.msg.Meta["error"])
				delete(tasked, dm.name)
				pending--
			case dm.msg.Type == transport.MsgUpdate && dm.msg.Round == task.Round:
				e.absorb(partial, dm.name, dm.msg, len(task.Payload))
				delete(tasked, dm.name)
				pending--
			default:
				// Stale round or unexpected type: drop.
			}
		case <-deadline:
			for name := range tasked {
				partial.Fail(name + ": straggler past round deadline")
			}
			pending = 0
		}
	}

	if partial.Updates() < e.cfg.MinUpdates {
		return nil, 0, 0, fmt.Errorf("round %d: %d updates below quorum %d",
			task.Round, partial.Updates(), e.cfg.MinUpdates)
	}
	b, err := EncodePartial(partial)
	if err != nil {
		return nil, 0, 0, err
	}
	return b, partial.MeanLoss(), partial.Weight(), nil
}

// absorb folds one downstream reply into the round partial.
func (e *Edge) absorb(p *Partial, name string, msg *transport.Message, downBytes int) {
	if IsPartial(msg.Payload) {
		child, err := DecodePartial(msg.Payload)
		if err != nil {
			p.Fail(name + ": " + err.Error())
			return
		}
		if err := p.Merge(child); err != nil {
			p.Fail(name + ": " + err.Error())
			return
		}
		p.AddTierBytes(int64(len(msg.Payload)))
		return
	}
	weights, err := e.cfg.DecodeWeights(msg.Payload)
	if err != nil {
		p.Fail(name + ": " + err.Error())
		return
	}
	loss, _ := strconv.ParseFloat(msg.Meta["train_loss"], 64)
	err = p.Fold(Update{
		ClientName: name,
		Weights:    weights,
		NumSamples: msg.NumSamples,
		TrainLoss:  loss,
		UpBytes:    len(msg.Payload),
		DownBytes:  downBytes,
	})
	if err != nil {
		p.Fail(name + ": " + err.Error())
	}
}

// acceptClients admits the downstream shard.
func (e *Edge) acceptClients() error {
	if e.cfg.RegisterTimeout > 0 {
		if err := e.cfg.Listener.SetDeadline(time.Now().Add(e.cfg.RegisterTimeout)); err != nil {
			return fmt.Errorf("hier: edge %s: listener deadline: %w", e.cfg.Name, err)
		}
		defer e.cfg.Listener.SetDeadline(time.Time{}) //nolint:errcheck
	}
	for len(e.clients) < e.cfg.ExpectedClients {
		conn, err := e.cfg.Listener.AcceptConn()
		if err != nil {
			e.closeClients()
			return fmt.Errorf("hier: edge %s: accept: %w", e.cfg.Name, err)
		}
		msg, err := conn.Read()
		if err != nil || msg.Type != transport.MsgRegister {
			conn.Close()
			continue
		}
		reject := func(reason string) {
			conn.Write(&transport.Message{ //nolint:errcheck
				Type: transport.MsgRegisterAck, Sender: e.cfg.Name,
				Meta: map[string]string{"accepted": "false", "error": reason},
			})
			conn.Close()
		}
		if _, dup := e.clients[msg.Sender]; dup {
			reject("duplicate client name")
			continue
		}
		if !e.cfg.VerifyToken(msg.Sender, msg.Token) {
			reject("invalid token")
			continue
		}
		// Echo the requested uplink codec: the edge decodes by payload
		// magic, so any registered codec name is acceptable.
		codec := msg.Meta[transport.MetaCodec]
		if codec == "" {
			codec = "raw"
		}
		ack := &transport.Message{
			Type: transport.MsgRegisterAck, Sender: e.cfg.Name,
			Meta: map[string]string{"accepted": "true", transport.MetaCodec: codec},
		}
		if err := conn.Write(ack); err != nil {
			conn.Close()
			continue
		}
		e.clients[msg.Sender] = conn
		e.cfg.Logf("edge %s: registered %s (%d/%d)", e.cfg.Name, msg.Sender, len(e.clients), e.cfg.ExpectedClients)
	}
	return nil
}

// joinParent registers this edge with its parent.
func (e *Edge) joinParent() (transport.MessageConn, error) {
	parent, err := e.cfg.DialParent()
	if err != nil {
		return nil, fmt.Errorf("hier: edge %s: dial parent: %w", e.cfg.Name, err)
	}
	reg := &transport.Message{
		Type: transport.MsgRegister, Sender: e.cfg.Name, Token: e.cfg.Token,
		Meta: map[string]string{transport.MetaCodec: "raw"},
	}
	if err := parent.Write(reg); err != nil {
		parent.Close()
		return nil, fmt.Errorf("hier: edge %s: register with parent: %w", e.cfg.Name, err)
	}
	ack, err := parent.Read()
	if err != nil {
		parent.Close()
		return nil, fmt.Errorf("hier: edge %s: parent ack: %w", e.cfg.Name, err)
	}
	if ack.Type != transport.MsgRegisterAck || ack.Meta["accepted"] != "true" {
		parent.Close()
		return nil, fmt.Errorf("hier: edge %s: parent rejected registration: %s", e.cfg.Name, ack.Meta["error"])
	}
	return parent, nil
}

func (e *Edge) closeClients() {
	for _, conn := range e.clients {
		conn.Close()
	}
}

func clampInt(v int64) int {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}
