package hier_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"clinfl/internal/fl"
	"clinfl/internal/fl/hier"
	"clinfl/internal/tensor"
)

func randomUpdate(r *rand.Rand, name string, shapes map[string][2]int) hier.Update {
	weights := make(map[string]*tensor.Matrix, len(shapes))
	for pname, sh := range shapes {
		m := tensor.New(sh[0], sh[1])
		data := m.Data()
		for i := range data {
			// Arbitrary finite floats across ~24 decades of magnitude:
			// exactness must not depend on benign value ranges.
			data[i] = (r.Float64()*2 - 1) * math.Pow(2, float64(r.Intn(80)-40))
		}
		weights[pname] = m
	}
	return hier.Update{
		ClientName: name,
		Weights:    weights,
		NumSamples: 1 + r.Intn(5000),
		TrainLoss:  r.Float64() * 10,
	}
}

var testShapes = map[string][2]int{"layer.w": {3, 4}, "layer.b": {1, 4}}

// foldTree aggregates updates[lo:hi) through a random tree shape and
// returns the finalized weights.
func foldTree(t *testing.T, r *rand.Rand, updates []hier.Update) *hier.Partial {
	t.Helper()
	var build func(us []hier.Update) *hier.Partial
	build = func(us []hier.Update) *hier.Partial {
		p := hier.NewPartial()
		if len(us) <= 2 || r.Intn(3) == 0 {
			// Leaf aggregator: fold directly, in shuffled order.
			order := r.Perm(len(us))
			for _, i := range order {
				if err := p.Fold(us[i]); err != nil {
					t.Fatalf("fold %s: %v", us[i].ClientName, err)
				}
			}
			return p
		}
		// Split into 2-4 child aggregators and merge their partials.
		k := 2 + r.Intn(3)
		if k > len(us) {
			k = len(us)
		}
		bounds := map[int]bool{0: true, len(us): true}
		for len(bounds) < k+1 {
			bounds[1+r.Intn(len(us)-1)] = true
		}
		cuts := make([]int, 0, k+1)
		for b := range bounds {
			cuts = append(cuts, b)
		}
		for i := range cuts {
			for j := i + 1; j < len(cuts); j++ {
				if cuts[j] < cuts[i] {
					cuts[i], cuts[j] = cuts[j], cuts[i]
				}
			}
		}
		children := make([]*hier.Partial, 0, k)
		for i := 0; i+1 < len(cuts); i++ {
			children = append(children, build(us[cuts[i]:cuts[i+1]]))
		}
		for _, i := range r.Perm(len(children)) {
			if err := p.Merge(children[i]); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
		return p
	}
	return build(updates)
}

func assertBitIdentical(t *testing.T, a, b map[string]*tensor.Matrix, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: param count %d vs %d", label, len(a), len(b))
	}
	for name, ma := range a {
		mb, ok := b[name]
		if !ok {
			t.Fatalf("%s: missing param %q", label, name)
		}
		da, db := ma.Data(), mb.Data()
		for i := range da {
			if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
				t.Fatalf("%s: %s[%d] differs: %x (%v) vs %x (%v)",
					label, name, i, math.Float64bits(da[i]), da[i], math.Float64bits(db[i]), db[i])
			}
		}
	}
}

// TestTreeShapeBitIdentical is the core hierarchical invariant: FedAvg
// through any aggregation tree — any shard split, any merge order, any
// fold order — finalizes to exactly the same bits, on arbitrary finite
// floats, because partial sums are exact and finalization rounds once.
func TestTreeShapeBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(40)
		updates := make([]hier.Update, n)
		for i := range updates {
			updates[i] = randomUpdate(r, fmt.Sprintf("site-%03d", i), testShapes)
		}
		flat := hier.NewPartial()
		for _, u := range updates {
			if err := flat.Fold(u); err != nil {
				t.Fatal(err)
			}
		}
		want, err := flat.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		for shape := 0; shape < 5; shape++ {
			tree := foldTree(t, r, updates)
			if tree.Updates() != n {
				t.Fatalf("tree folded %d updates, want %d", tree.Updates(), n)
			}
			got, err := tree.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, want, got, fmt.Sprintf("trial %d shape %d", trial, shape))
		}
	}
}

// TestMatchesFlatFedAvgOnDyadicInputs pins streaming-vs-flat bit
// identity against the production flat aggregator: when client weights
// divide the total exactly in binary (total = power of two) and values
// have few significand bits, flat weightedAverage is itself exact, so
// the hierarchical result must equal it bit for bit.
func TestMatchesFlatFedAvgOnDyadicInputs(t *testing.T) {
	vals := []float64{1.5, -2.25, 0.125, 3, -0.5, 7.75, 42, -18.5}
	samples := []int{8, 16, 24, 16} // total 64 = 2^6
	flat := make([]*fl.ClientUpdate, len(samples))
	stream := hier.NewPartial()
	for i, s := range samples {
		weights := make(map[string]*tensor.Matrix)
		for pname, sh := range testShapes {
			m := tensor.New(sh[0], sh[1])
			data := m.Data()
			for j := range data {
				data[j] = vals[(i+j)%len(vals)] * float64(i+1)
			}
			weights[pname] = m
		}
		name := fmt.Sprintf("site-%d", i)
		flat[i] = &fl.ClientUpdate{ClientName: name, Weights: weights, NumSamples: s}
		if err := stream.Fold(hier.Update{ClientName: name, Weights: weights, NumSamples: s}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := (fl.FedAvg{}).Aggregate(flat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, got, "dyadic flat-vs-stream")
}

func TestFoldValidation(t *testing.T) {
	base := randomUpdate(rand.New(rand.NewSource(1)), "ok", testShapes)
	cases := []struct {
		name string
		mut  func(u *hier.Update)
		want string
	}{
		{"non-positive weight", func(u *hier.Update) { u.NumSamples = 0 }, "non-positive weight"},
		{"nan loss", func(u *hier.Update) { u.TrainLoss = math.NaN() }, "non-finite train loss"},
		{"extra param", func(u *hier.Update) { u.Weights["rogue"] = tensor.New(1, 1) }, "params, want"},
		{"missing param", func(u *hier.Update) { delete(u.Weights, "layer.b"); u.Weights["other"] = tensor.New(1, 4) }, "missing param"},
		{"shape mismatch", func(u *hier.Update) { u.Weights["layer.b"] = tensor.New(2, 4) }, "want 1x4"},
		{"non-finite value", func(u *hier.Update) { u.Weights["layer.b"].Data()[0] = math.Inf(1) }, "non-finite value"},
	}
	for _, tc := range cases {
		p := hier.NewPartial()
		if err := p.Fold(base); err != nil {
			t.Fatal(err)
		}
		u := randomUpdate(rand.New(rand.NewSource(2)), "bad", testShapes)
		tc.mut(&u)
		err := p.Fold(u)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
		if p.Updates() != 1 {
			t.Errorf("%s: rejected fold changed update count to %d", tc.name, p.Updates())
		}
	}
	if _, err := hier.NewPartial().Finalize(); err == nil {
		t.Error("empty partial must not finalize")
	}
}

func TestAccountingAndMeanLoss(t *testing.T) {
	p := hier.NewPartial()
	mk := func(v float64) map[string]*tensor.Matrix {
		m := tensor.New(1, 1)
		m.Data()[0] = v
		return map[string]*tensor.Matrix{"w": m}
	}
	if err := p.Fold(hier.Update{ClientName: "b", Weights: mk(1), NumSamples: 3, TrainLoss: 2, UpBytes: 100, DownBytes: 50}); err != nil {
		t.Fatal(err)
	}
	q := hier.NewPartial()
	if err := q.Fold(hier.Update{ClientName: "a", Weights: mk(5), NumSamples: 1, TrainLoss: 6, UpBytes: 10, DownBytes: 5}); err != nil {
		t.Fatal(err)
	}
	q.Fail("c: exec: boom")
	q.AddTierBytes(77)
	if err := p.Merge(q); err != nil {
		t.Fatal(err)
	}
	if got := p.Participants(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("participants = %v", got)
	}
	if got := p.Failures(); len(got) != 1 || got[0] != "c: exec: boom" {
		t.Fatalf("failures = %v", got)
	}
	if p.Weight() != 4 || p.Updates() != 2 || p.Merged() != 1 {
		t.Fatalf("weight/updates/merged = %d/%d/%d", p.Weight(), p.Updates(), p.Merged())
	}
	if p.BytesUp() != 110 || p.BytesDown() != 55 || p.TierBytes() != 77 {
		t.Fatalf("bytes = %d/%d/%d", p.BytesUp(), p.BytesDown(), p.TierBytes())
	}
	// mean loss = (3*2 + 1*6)/4 = 3; mean weight = (3*1 + 1*5)/4 = 2.
	if got := p.MeanLoss(); got != 3 {
		t.Fatalf("mean loss = %v", got)
	}
	final, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if got := final["w"].Data()[0]; got != 2 {
		t.Fatalf("final = %v", got)
	}
}

// TestResidentBytesIndependentOfClientCount is the O(model) property:
// folding 10x the updates must not grow the partial's resident state
// meaningfully (expansion lengths are bounded by the float64 exponent
// range, not by client count).
func TestResidentBytesIndependentOfClientCount(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := hier.NewPartial()
	var at1k int64
	for i := 0; i < 10000; i++ {
		if err := p.Fold(randomUpdate(r, fmt.Sprintf("c%d", i), testShapes)); err != nil {
			t.Fatal(err)
		}
		if i == 999 {
			at1k = p.ResidentBytes()
		}
	}
	at10k := p.ResidentBytes()
	if at10k > at1k*3/2 {
		t.Fatalf("resident bytes grew with client count: %d at 1k folds vs %d at 10k", at1k, at10k)
	}
	// And it is nowhere near buffering 10k updates (16 params x 8 bytes
	// each x 10k clients would be ~1.3 MB).
	if at10k > 64<<10 {
		t.Fatalf("resident bytes %d not O(model)", at10k)
	}
}

func BenchmarkPartialFold(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	updates := make([]hier.Update, 64)
	for i := range updates {
		updates[i] = randomUpdate(r, fmt.Sprintf("c%d", i), testShapes)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := hier.NewPartial()
		for _, u := range updates {
			if err := p.Fold(u); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Finalize(); err != nil {
			b.Fatal(err)
		}
	}
}
