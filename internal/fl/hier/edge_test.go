package hier_test

import (
	"strconv"
	"testing"
	"time"

	"clinfl/internal/fl"
	"clinfl/internal/fl/hier"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

func leafWeights(scale float64) map[string]*tensor.Matrix {
	m := tensor.New(1, 2)
	m.Data()[0], m.Data()[1] = 1.5*scale, -0.25*scale
	return map[string]*tensor.Matrix{"w": m}
}

// runLeaf drives one hand-rolled downstream client through register /
// task / update / finish against the edge.
func runLeaf(t *testing.T, net *transport.MemNetwork, name string, reply func(task *transport.Message) *transport.Message) {
	t.Helper()
	conn, err := net.Dial(name, transport.LinkProfile{}, transport.LinkProfile{})
	if err != nil {
		t.Errorf("%s: dial: %v", name, err)
		return
	}
	defer conn.Close()
	if err := conn.Write(&transport.Message{
		Type: transport.MsgRegister, Sender: name, Token: "tok-" + name,
		Meta: map[string]string{transport.MetaCodec: "raw"},
	}); err != nil {
		t.Errorf("%s: register: %v", name, err)
		return
	}
	ack, err := conn.Read()
	if err != nil || ack.Meta["accepted"] != "true" {
		t.Errorf("%s: ack = %v, %v", name, ack, err)
		return
	}
	for {
		msg, err := conn.Read()
		if err != nil {
			return
		}
		switch msg.Type {
		case transport.MsgTask:
			if err := conn.Write(reply(msg)); err != nil {
				t.Errorf("%s: reply: %v", name, err)
				return
			}
		case transport.MsgFinish:
			return
		}
	}
}

// TestEdgeAggregatesShard wires a full edge hop over in-memory links:
// two weight-sending leaves, one child that uplinks an already-merged
// partial (a stacked lower edge), and one failing leaf. The parent must
// receive exactly one partial carrying the merged model, the combined
// accounting, and the recorded failure.
func TestEdgeAggregatesShard(t *testing.T) {
	rootNet := transport.NewMemNetwork()
	edgeNet := transport.NewMemNetwork()
	defer rootNet.Close()
	defer edgeNet.Close()

	edge, err := hier.NewEdge(hier.EdgeConfig{
		Name:  "edge-0",
		Token: "tok-edge-0",
		DialParent: func() (transport.MessageConn, error) {
			return rootNet.Dial("edge-0", transport.LinkProfile{}, transport.LinkProfile{})
		},
		Listener:        edgeNet,
		ExpectedClients: 4,
		RegisterTimeout: 5 * time.Second,
		VerifyToken:     func(name, token string) bool { return token == "tok-"+name },
		RoundDeadline:   5 * time.Second,
		DecodeWeights:   fl.DecodeWeights,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeDone := make(chan error, 1)
	var edgeRes *hier.EdgeResult
	go func() {
		res, err := edge.Run()
		edgeRes = res
		edgeDone <- err
	}()

	// Two plain leaves.
	for i, scale := range []float64{1, 2} {
		name, samples := "leaf-"+strconv.Itoa(i), 4*(i+1)
		sc := scale
		go runLeaf(t, edgeNet, name, func(task *transport.Message) *transport.Message {
			blob, err := fl.EncodeWeights(leafWeights(sc))
			if err != nil {
				t.Errorf("%s: encode: %v", name, err)
			}
			return &transport.Message{
				Type: transport.MsgUpdate, Sender: name, Round: task.Round,
				Payload: blob, NumSamples: samples,
				Meta: map[string]string{"train_loss": "0.5"},
			}
		})
	}
	// A stacked child edge: its uplink is already a partial.
	childPartial := hier.NewPartial()
	for i, scale := range []float64{3, 4} {
		err := childPartial.Fold(hier.Update{
			ClientName: "deep-" + strconv.Itoa(i),
			Weights:    leafWeights(scale),
			NumSamples: 8,
			TrainLoss:  0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	childBlob, err := hier.EncodePartial(childPartial)
	if err != nil {
		t.Fatal(err)
	}
	go runLeaf(t, edgeNet, "sub-edge", func(task *transport.Message) *transport.Message {
		return &transport.Message{
			Type: transport.MsgUpdate, Sender: "sub-edge", Round: task.Round,
			Payload: childBlob, NumSamples: int(childPartial.Weight()),
		}
	})
	// A leaf whose local training fails.
	go runLeaf(t, edgeNet, "leaf-bad", func(task *transport.Message) *transport.Message {
		return &transport.Message{
			Type: transport.MsgError, Sender: "leaf-bad", Round: task.Round,
			Meta: map[string]string{"error": "exec: out of memory"},
		}
	})

	// The test plays the parent.
	parent, err := rootNet.AcceptConn()
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	reg, err := parent.Read()
	if err != nil || reg.Type != transport.MsgRegister || reg.Sender != "edge-0" {
		t.Fatalf("parent registration = %v, %v", reg, err)
	}
	if err := parent.Write(&transport.Message{
		Type: transport.MsgRegisterAck, Sender: "root",
		Meta: map[string]string{"accepted": "true", transport.MetaCodec: "raw"},
	}); err != nil {
		t.Fatal(err)
	}
	globalBlob, err := fl.EncodeWeights(leafWeights(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(&transport.Message{Type: transport.MsgTask, Sender: "root", Round: 0, Payload: globalBlob}); err != nil {
		t.Fatal(err)
	}
	up, err := parent.Read()
	if err != nil {
		t.Fatal(err)
	}
	if up.Type != transport.MsgUpdate || !hier.IsPartial(up.Payload) {
		t.Fatalf("parent got %v (partial=%v), want partial MsgUpdate", up.Type, hier.IsPartial(up.Payload))
	}
	got, err := hier.DecodePartial(up.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Updates() != 4 || got.Weight() != 4+8+16 {
		t.Fatalf("partial updates/weight = %d/%d, want 4/28", got.Updates(), got.Weight())
	}
	parts := got.Participants()
	if len(parts) != 4 || parts[0] != "deep-0" || parts[3] != "leaf-1" {
		t.Fatalf("participants = %v", parts)
	}
	fails := got.Failures()
	if len(fails) != 1 || fails[0] != "leaf-bad: exec: out of memory" {
		t.Fatalf("failures = %v", fails)
	}
	if got.TierBytes() != int64(len(childBlob)) {
		t.Fatalf("tier bytes = %d, want %d (the stacked child's encoded partial)", got.TierBytes(), len(childBlob))
	}
	if up.NumSamples != 28 {
		t.Fatalf("uplink NumSamples = %d, want 28", up.NumSamples)
	}

	// The merged model must match folding the same updates flat.
	want := hier.NewPartial()
	for i, scale := range []float64{1, 2} {
		if err := want.Fold(hier.Update{ClientName: "leaf-" + strconv.Itoa(i), Weights: leafWeights(scale), NumSamples: 4 * (i + 1), TrainLoss: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	for i, scale := range []float64{3, 4} {
		if err := want.Fold(hier.Update{ClientName: "deep-" + strconv.Itoa(i), Weights: leafWeights(scale), NumSamples: 8, TrainLoss: 0.25}); err != nil {
			t.Fatal(err)
		}
	}
	wantW, err := want.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	gotW, err := got.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, wantW, gotW, "edge shard")

	finalBlob, err := fl.EncodeWeights(leafWeights(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(&transport.Message{Type: transport.MsgFinish, Sender: "root", Payload: finalBlob}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-edgeDone:
		if err != nil {
			t.Fatalf("edge run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("edge did not finish")
	}
	if edgeRes.Rounds != 1 || edgeRes.TierBytesUp != int64(len(up.Payload)) {
		t.Fatalf("edge result rounds/bytes = %d/%d", edgeRes.Rounds, edgeRes.TierBytesUp)
	}
	if edgeRes.FinalWeights["w"].Data()[0] != 1.5*99 {
		t.Fatalf("edge final weights = %v", edgeRes.FinalWeights["w"].Data())
	}
}

// TestEdgeQuorumFailure: an edge whose whole shard errors must report
// the round to its parent as a failure, not send an empty partial.
func TestEdgeQuorumFailure(t *testing.T) {
	rootNet := transport.NewMemNetwork()
	edgeNet := transport.NewMemNetwork()
	defer rootNet.Close()
	defer edgeNet.Close()
	edge, err := hier.NewEdge(hier.EdgeConfig{
		Name:  "edge-0",
		Token: "t",
		DialParent: func() (transport.MessageConn, error) {
			return rootNet.Dial("edge-0", transport.LinkProfile{}, transport.LinkProfile{})
		},
		Listener:        edgeNet,
		ExpectedClients: 1,
		RegisterTimeout: 5 * time.Second,
		VerifyToken:     func(string, string) bool { return true },
		RoundDeadline:   5 * time.Second,
		DecodeWeights:   fl.DecodeWeights,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeDone := make(chan error, 1)
	go func() { _, err := edge.Run(); edgeDone <- err }()
	go runLeaf(t, edgeNet, "leaf-0", func(task *transport.Message) *transport.Message {
		return &transport.Message{Type: transport.MsgError, Sender: "leaf-0", Round: task.Round,
			Meta: map[string]string{"error": "boom"}}
	})
	parent, err := rootNet.AcceptConn()
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	if _, err := parent.Read(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(&transport.Message{Type: transport.MsgRegisterAck, Meta: map[string]string{"accepted": "true"}}); err != nil {
		t.Fatal(err)
	}
	blob, _ := fl.EncodeWeights(leafWeights(1))
	if err := parent.Write(&transport.Message{Type: transport.MsgTask, Round: 0, Payload: blob}); err != nil {
		t.Fatal(err)
	}
	up, err := parent.Read()
	if err != nil {
		t.Fatal(err)
	}
	if up.Type != transport.MsgError || up.Meta["error"] == "" {
		t.Fatalf("parent got %v %v, want MsgError with reason", up.Type, up.Meta)
	}
	if err := parent.Write(&transport.Message{Type: transport.MsgFinish}); err != nil {
		t.Fatal(err)
	}
	if err := <-edgeDone; err != nil {
		t.Fatalf("edge run: %v", err)
	}
}
