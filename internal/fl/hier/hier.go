// Package hier implements streaming hierarchical FedAvg: a Partial
// accumulates client updates one at a time into an exact running
// weighted sum (per parameter element) plus an exact total weight, and
// Partials merge associatively, so an aggregation tree of any shape —
// flat, two-tier, lopsided — finalizes to bit-identical global weights.
// The resident state of any node is O(model), independent of how many
// clients fed into it, which is what lets an edge-aggregator tier front
// tens of thousands of clients without the root buffering every update.
//
// Exactness is the whole trick. Floating-point addition is not
// associative, so a naive running float64 sum would make the result
// depend on arrival order and tree shape. Instead each element's sum is
// kept as a Shewchuk floating-point expansion (a nonoverlapping sequence
// of float64 components whose exact sum is the represented value): folds
// add the exact product weight·value via an FMA-derived two-product, and
// merges add the components of one expansion into the other. Finalize
// converts the exact sum to the correctly-rounded float64 quotient
// sum/weight via math/big, which depends only on the represented value —
// never on the component representation a particular fold order produced.
package hier

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"clinfl/internal/tensor"
)

// expansion is a Shewchuk floating-point expansion: components in
// increasing-magnitude order, mutually nonoverlapping, whose exact sum
// is the represented value. A nil/empty expansion represents zero.
// Nonoverlap bounds the length by the float64 exponent range (~40
// components worst case), which is what keeps Partial state O(model).
type expansion []float64

// twoSum returns s = fl(a+b) and the exact roundoff err with
// a + b = s + err (Knuth's branch-free TWO-SUM).
func twoSum(a, b float64) (s, err float64) {
	s = a + b
	bv := s - a
	av := s - bv
	err = (a - av) + (b - bv)
	return s, err
}

// grow adds q into the expansion in place (Shewchuk GROW-EXPANSION with
// zero elimination) and returns the possibly-reallocated slice.
func (e expansion) grow(q float64) expansion {
	n := 0
	for i := 0; i < len(e); i++ {
		s, err := twoSum(q, e[i])
		q = s
		if err != 0 {
			e[n] = err // n <= i, safe in place
			n++
		}
	}
	e = e[:n]
	if q != 0 {
		e = append(e, q)
	}
	return e
}

// growProduct adds the exact product a·b into the expansion. The product
// splits into hi = fl(a·b) and the FMA-recovered roundoff lo with
// a·b = hi + lo exactly; grow(lo) then grow(hi) would add both, but as
// two full passes over the components. This runs the identical pair of
// cascades pipelined in one pass — the hi cascade consumes the lo
// cascade's roundoff stream as it is produced, in the same order the
// second grow would read it, so the arithmetic (and the resulting
// component sequence) is bit-for-bit the two-pass one's. Folding is
// memory-bound at model scale, making the saved pass the whole point.
func (e expansion) growProduct(a, b float64) expansion {
	hi := a * b
	lo := math.FMA(a, b, -hi)
	if lo == 0 {
		return e.grow(hi)
	}
	// out aliases e's backing array; the write index trails the read index
	// (each component read appends at most one roundoff), so in-place is
	// safe, and the tail appends past the loop may grow the slice normally.
	out := e[:0]
	emit := func(c float64) {
		s, err := twoSum(hi, c)
		hi = s
		if err != 0 {
			out = append(out, err)
		}
	}
	for i := 0; i < len(e); i++ {
		s, err := twoSum(lo, e[i])
		lo = s
		if err != 0 {
			emit(err)
		}
	}
	if lo != 0 {
		emit(lo)
	}
	if hi != 0 {
		out = append(out, hi)
	}
	return out
}

// merge adds o's components into e.
func (e expansion) merge(o expansion) expansion {
	for _, c := range o {
		e = e.grow(c)
	}
	return e
}

// finite reports whether every component is a finite float64. Overflow
// mid-sum (inputs are validated finite) poisons components with ±Inf/NaN;
// callers fall back to naive summation to propagate the non-finite value
// the way a plain float64 sum would.
func (e expansion) finite() bool {
	for _, c := range e {
		if math.IsInf(c, 0) || math.IsNaN(c) {
			return false
		}
	}
	return true
}

// expPrec is the big.Float precision used when converting an expansion
// to its exact value: finite float64s span binary exponents -1074..971,
// so any sum of them fits in well under 2100 significand bits.
const expPrec = 2200

// bigVal returns the exact value of the expansion as a big.Float.
func (e expansion) bigVal() *big.Float {
	acc := new(big.Float).SetPrec(expPrec)
	var t big.Float
	for _, c := range e {
		acc.Add(acc, t.SetFloat64(c))
	}
	return acc
}

// round converts the exact sum to the nearest float64. The result
// depends only on the represented value, not on the component layout, so
// any fold/merge order yields identical bits.
func (e expansion) round() float64 {
	switch len(e) {
	case 0:
		return 0
	case 1:
		return e[0]
	}
	if !e.finite() {
		var s float64
		for _, c := range e {
			s += c
		}
		return s
	}
	f, _ := e.bigVal().Float64()
	return f
}

// divider carries reusable big.Float scratch for many exact divisions by
// the same weight, so a model-sized Finalize pays per-element arithmetic,
// not per-element 2200-bit allocations.
type divider struct {
	w           int64
	num, den, q big.Float
	t           big.Float
	scr         expansion
}

func newDivider(w int64) *divider {
	d := &divider{w: w}
	d.num.SetPrec(expPrec)
	d.den.SetInt64(w)
	// The quotient is rounded once, straight to float64 precision: Quo of
	// the two exact operands correctly rounds to q's 53-bit significand,
	// and Float64 is then exact. (Dividing at expPrec and converting after
	// gives the same bits — the intermediate precision is far beyond
	// harmful-double-rounding range — but costs a 2200-bit division per
	// element.)
	d.q.SetPrec(53)
	return d
}

// quo returns the correctly-rounded float64 of (exact sum of e) / w. The
// float64 fast path settles almost every element; exactQuo is the
// arbiter for the rare near-tie it cannot prove. Both paths compute the
// same pure function of the represented value, so which one runs never
// shows in the result.
func (d *divider) quo(e expansion) float64 {
	if !e.finite() {
		var s float64
		for _, c := range e {
			s += c
		}
		return s / float64(d.w)
	}
	if q, ok := d.fastQuo(e); ok {
		return q
	}
	return d.exactQuo(e)
}

// exactQuo divides through expPrec-bit arithmetic: the numerator sum is
// exact, and Quo's single rounding to 53 bits is the correctly-rounded
// quotient.
func (d *divider) exactQuo(e expansion) float64 {
	d.num.SetInt64(0)
	for _, c := range e {
		d.num.Add(&d.num, d.t.SetFloat64(c))
	}
	q, _ := d.q.Quo(&d.num, &d.den).Float64()
	return q
}

// fastQuo attempts the division in plain float64: estimate the quotient,
// recover the exact residual with an error-free product, correct, and
// accept only when the corrected value provably cannot sit within the
// correction's error bound of a rounding boundary. On accept the result
// IS the correctly-rounded quotient — acceptance means every value the
// true quotient could be rounds to the same float64 — so the fast path
// never changes a single bit relative to exactQuo, it only skips it.
func (d *divider) fastQuo(e expansion) (float64, bool) {
	if len(e) == 0 {
		return 0, true
	}
	if d.w >= 1<<53 {
		return 0, false // float64(w) would round; let the exact path handle it
	}
	fw := float64(d.w)
	// Components are nonoverlapping in increasing magnitude order, so the
	// ascending naive sum is a faithful estimate (relative error well
	// under 2^-47 for <= ~40 components).
	var s float64
	for _, c := range e {
		s += c
	}
	q0 := s / fw
	if math.IsInf(q0, 0) || q0 == 0 {
		return 0, false // overflow or underflow-to-zero scale: exact path decides
	}
	// Exact residual r = e - q0·w via an error-free product; the true
	// quotient is exactly q0 + r/w.
	ph := q0 * fw
	pl := math.FMA(q0, fw, -ph)
	if math.IsInf(ph, 0) {
		return 0, false
	}
	r := append(d.scr[:0], e...)
	r = r.grow(-ph)
	if pl != 0 {
		r = r.grow(-pl)
	}
	d.scr = r
	// Track whether rs is the exact sum of the residual: every twoSum
	// roundoff must vanish. Exact rs plus an exact division means the
	// true quotient is exactly h + l — then even a dead-on rounding tie
	// is decidable here, which matters because FedAvg with power-of-two
	// total weight lands on exact midpoints constantly.
	var rs float64
	rsExact := true
	for _, c := range r {
		var roundoff float64
		rs, roundoff = twoSum(rs, c)
		if roundoff != 0 {
			rsExact = false
		}
	}
	q1 := rs / fw
	h, l := twoSum(q0, q1)
	if math.IsInf(h, 0) || h == 0 {
		return 0, false
	}
	// The rounding interval is asymmetric at power-of-two boundaries;
	// measure the half-ulp on the side l points to.
	ah := math.Abs(h)
	bound := (math.Nextafter(ah, math.Inf(1)) - ah) / 2
	if l < 0 {
		bound = (ah - math.Nextafter(ah, 0)) / 2
	}
	al := math.Abs(l)
	if rsExact && math.FMA(q1, fw, -rs) == 0 {
		// q == h + l exactly.
		switch {
		case al < bound:
			return h, true
		case al == bound:
			// True midpoint: round half to even.
			if math.Float64bits(h)&1 == 0 {
				return h, true
			}
			if l > 0 {
				return math.Nextafter(h, math.Inf(1)), true
			}
			return math.Nextafter(h, math.Inf(-1)), true
		}
		return 0, false
	}
	// Inexact correction: true quotient = h + l + eta with |eta| <=
	// |q1|·2^-40 (a generous cover of q1's ~2^-46 relative error). Accept
	// only when h+l±eta stays strictly inside h's rounding interval.
	eta := math.Abs(q1) * 0x1p-40
	if al+eta < bound && eta < al+bound {
		return h, true
	}
	return 0, false
}

// quo returns the correctly-rounded float64 of (exact sum of e) / w.
func (e expansion) quo(w int64) float64 { return newDivider(w).quo(e) }

// residentBytes is the component storage the expansion occupies.
func (e expansion) residentBytes() int64 { return int64(len(e)) * 8 }

// Update is one leaf client's contribution as seen by an aggregator.
type Update struct {
	ClientName string
	Weights    map[string]*tensor.Matrix
	// NumSamples weights the update, exactly as flat FedAvg does.
	NumSamples int
	// TrainLoss is the client's mean local training loss; partials carry
	// the exact loss·samples sum so tier-aggregated mean loss matches
	// what the root would have computed from the raw updates.
	TrainLoss float64
	// UpBytes / DownBytes are the leaf's encoded transfer sizes, summed
	// into the partial's accounting.
	UpBytes   int
	DownBytes int
}

// paramSum is the running exact weighted sum for one parameter tensor.
type paramSum struct {
	rows, cols int
	sums       []expansion // rows*cols element sums
}

// newSums carves n empty expansions with perElem capacity each out of one
// backing slab, so the first perElem components an element accumulates
// never hit the allocator (a model-sized Fold would otherwise pay a
// handful of slice growths per element). An expansion that outgrows its
// window falls back to ordinary append reallocation.
func newSums(n, perElem int) []expansion {
	slab := make([]float64, n*perElem)
	sums := make([]expansion, n)
	for i := range sums {
		sums[i] = slab[i*perElem : i*perElem : (i+1)*perElem]
	}
	return sums
}

// Partial is a streaming partial FedAvg aggregate: fold updates in as
// they arrive, merge sibling partials in any order, finalize once at the
// root. The zero value is not usable; call NewPartial.
type Partial struct {
	params  map[string]*paramSum
	weight  int64 // Σ NumSamples, exact
	updates int   // leaf updates folded in (transitively)
	merged  int   // child partials merged in (transitively)
	lossSum expansion

	participants []string
	failures     []string
	bytesUp      int64
	bytesDown    int64
	tierBytes    int64
}

// NewPartial returns an empty partial aggregate.
func NewPartial() *Partial {
	return &Partial{params: make(map[string]*paramSum)}
}

// Fold accumulates one client update. Validation mirrors the flat
// weightedAverage: non-positive weight, param-count mismatch, missing
// params, and shape mismatches are errors (recorded by callers as
// per-client failures); additionally non-finite values are rejected so
// one poisoned client cannot silently NaN the exact accumulators.
func (p *Partial) Fold(u Update) error {
	if u.NumSamples <= 0 {
		return fmt.Errorf("hier: client %q has non-positive weight %d", u.ClientName, u.NumSamples)
	}
	if math.IsInf(u.TrainLoss, 0) || math.IsNaN(u.TrainLoss) {
		return fmt.Errorf("hier: client %q reported non-finite train loss", u.ClientName)
	}
	if len(p.params) > 0 && len(u.Weights) != len(p.params) {
		return fmt.Errorf("hier: client %q sent %d params, want %d", u.ClientName, len(u.Weights), len(p.params))
	}
	w := float64(u.NumSamples)
	if len(p.params) == 0 {
		for name, m := range u.Weights {
			p.params[name] = &paramSum{rows: m.Rows(), cols: m.Cols(), sums: newSums(m.Size(), 4)}
		}
	}
	for name, ps := range p.params {
		m, ok := u.Weights[name]
		if !ok {
			return fmt.Errorf("hier: client %q missing param %q", u.ClientName, name)
		}
		if m.Rows() != ps.rows || m.Cols() != ps.cols {
			return fmt.Errorf("hier: client %q param %q is %dx%d, want %dx%d",
				u.ClientName, name, m.Rows(), m.Cols(), ps.rows, ps.cols)
		}
		for _, v := range m.Data() {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return fmt.Errorf("hier: client %q param %q has non-finite value", u.ClientName, name)
			}
		}
	}
	for name, ps := range p.params {
		data := u.Weights[name].Data()
		for i, v := range data {
			ps.sums[i] = ps.sums[i].growProduct(w, v)
		}
	}
	p.weight += int64(u.NumSamples)
	p.updates++
	p.lossSum = p.lossSum.growProduct(w, u.TrainLoss)
	p.participants = append(p.participants, u.ClientName)
	p.bytesUp += int64(u.UpBytes)
	p.bytesDown += int64(u.DownBytes)
	return nil
}

// Reset returns the partial to the empty state while retaining its
// parameter schema and component storage, so a caller aggregating the
// same model round after round (the controller's tier shards) reuses the
// slabs instead of reallocating and zeroing O(model) memory every round.
// A reset partial folds and merges exactly like a fresh NewPartial —
// expansions truncate to empty, and grow never reads past an expansion's
// length — it just skips the schema adoption on first fold.
func (p *Partial) Reset() {
	for _, ps := range p.params {
		for i := range ps.sums {
			ps.sums[i] = ps.sums[i][:0]
		}
	}
	p.weight, p.updates, p.merged = 0, 0, 0
	p.lossSum = p.lossSum[:0]
	p.participants = p.participants[:0]
	p.failures = p.failures[:0]
	p.bytesUp, p.bytesDown, p.tierBytes = 0, 0, 0
}

// Fail records a leaf failure ("name: reason" by convention) so the
// accounting a partial carries upward includes what went wrong below it.
func (p *Partial) Fail(entry string) { p.failures = append(p.failures, entry) }

// Merge folds another partial into this one. Merging is associative and
// commutative on the represented values, so any tree shape finalizes
// identically. An empty side adopts the other's parameter schema.
func (p *Partial) Merge(o *Partial) error {
	if o == nil || o.updates == 0 && o.weight == 0 {
		// Nothing aggregated below; still take its accounting.
		if o != nil {
			p.absorbAccounting(o)
		}
		return nil
	}
	if len(p.params) == 0 {
		p.params = make(map[string]*paramSum, len(o.params))
		for name, ps := range o.params {
			// Slab the copy too, with headroom beyond each element's
			// current length so the merges that follow adoption stay off
			// the allocator as well.
			total := 0
			for _, e := range ps.sums {
				total += max(len(e), 2) + 2
			}
			slab := make([]float64, total)
			cp := &paramSum{rows: ps.rows, cols: ps.cols, sums: make([]expansion, len(ps.sums))}
			off := 0
			for i, e := range ps.sums {
				c := max(len(e), 2) + 2
				cp.sums[i] = append(slab[off:off:off+c], e...)
				off += c
			}
			p.params[name] = cp
		}
	} else {
		if len(o.params) != len(p.params) {
			return fmt.Errorf("hier: merge: partial has %d params, want %d", len(o.params), len(p.params))
		}
		for name, ops := range o.params {
			ps, ok := p.params[name]
			if !ok {
				return fmt.Errorf("hier: merge: partial missing param %q", name)
			}
			if ops.rows != ps.rows || ops.cols != ps.cols {
				return fmt.Errorf("hier: merge: param %q is %dx%d, want %dx%d",
					name, ops.rows, ops.cols, ps.rows, ps.cols)
			}
			for i := range ps.sums {
				ps.sums[i] = ps.sums[i].merge(ops.sums[i])
			}
		}
	}
	p.weight += o.weight
	p.updates += o.updates
	p.lossSum = p.lossSum.merge(o.lossSum)
	p.absorbAccounting(o)
	p.merged += o.merged + 1
	return nil
}

func (p *Partial) absorbAccounting(o *Partial) {
	p.participants = append(p.participants, o.participants...)
	p.failures = append(p.failures, o.failures...)
	p.bytesUp += o.bytesUp
	p.bytesDown += o.bytesDown
	p.tierBytes += o.tierBytes
}

// Finalize computes the FedAvg result: for each element the correctly
// rounded float64 of exact_weighted_sum / total_weight.
func (p *Partial) Finalize() (map[string]*tensor.Matrix, error) {
	if p.updates == 0 {
		return nil, fmt.Errorf("hier: no updates to aggregate")
	}
	// Folds guarantee weight > 0 when updates > 0, but a decoded wire
	// partial can claim otherwise; never divide by a non-positive weight.
	if p.weight <= 0 {
		return nil, fmt.Errorf("hier: partial claims %d updates but non-positive weight %d", p.updates, p.weight)
	}
	div := newDivider(p.weight)
	out := make(map[string]*tensor.Matrix, len(p.params))
	for name, ps := range p.params {
		m := tensor.New(ps.rows, ps.cols)
		data := m.Data()
		for i, e := range ps.sums {
			data[i] = div.quo(e)
		}
		out[name] = m
	}
	return out, nil
}

// Weight is the exact total sample weight folded in.
func (p *Partial) Weight() int64 { return p.weight }

// Updates is the number of leaf updates folded in (transitively).
func (p *Partial) Updates() int { return p.updates }

// Merged is the number of child partials merged in (transitively).
func (p *Partial) Merged() int { return p.merged }

// MeanLoss is the sample-weighted mean training loss across every folded
// update (0 when empty).
func (p *Partial) MeanLoss() float64 {
	if p.weight == 0 {
		return 0
	}
	return p.lossSum.quo(p.weight)
}

// Participants returns the sorted names of every client folded in.
func (p *Partial) Participants() []string {
	out := append([]string(nil), p.participants...)
	sort.Strings(out)
	return out
}

// Failures returns the sorted failure entries recorded below this node.
func (p *Partial) Failures() []string {
	out := append([]string(nil), p.failures...)
	sort.Strings(out)
	return out
}

// BytesUp is the total leaf uplink payload bytes folded in.
func (p *Partial) BytesUp() int64 { return p.bytesUp }

// BytesDown is the total leaf downlink payload bytes folded in.
func (p *Partial) BytesDown() int64 { return p.bytesDown }

// TierBytes is the total encoded-partial bytes that crossed aggregator
// hops below this node (see AddTierBytes).
func (p *Partial) TierBytes() int64 { return p.tierBytes }

// AddTierBytes records n encoded-partial wire bytes against this node's
// tier accounting (called when a partial is encoded for, or received
// from, a tier hop).
func (p *Partial) AddTierBytes(n int64) { p.tierBytes += n }

// ResidentBytes reports the aggregation state this partial holds:
// expansion component storage plus fixed per-param overhead. It is the
// O(model) quantity the tier exists to bound — it grows with model size
// and (slowly) with accumulated precision demand, never with the number
// of clients folded in. Participant/failure name lists (O(16 B) per
// client, needed for the round record either way) are accounting, not
// aggregation state, and are excluded.
func (p *Partial) ResidentBytes() int64 {
	var n int64 = 64 // struct + counters
	for _, ps := range p.params {
		n += 48 // paramSum header
		for _, e := range ps.sums {
			n += 24 + e.residentBytes() // slice header + components
		}
	}
	n += 24 + p.lossSum.residentBytes()
	return n
}
