package hier

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// PartialMagic prefixes the encoded-partial wire format, following the
// weight-codec magics (CFLQ1/CFLS1/CFLI1): a tier node sends its merged
// partial upward as a MsgUpdate whose payload carries this header, which
// is how a tier-aware root tells a partial from a plain weight map.
const PartialMagic = "CFHP1\n"

// Decoder hardening caps: fail fast on corrupt or hostile headers
// instead of allocating unbounded buffers.
const (
	maxParams       = 1 << 14 // distinct parameter tensors
	maxElems        = 1 << 26 // total elements across all params
	maxComponents   = 64      // expansion components per element (nonoverlap bounds ~40)
	maxNameLen      = 256
	maxEntryLen     = 1 << 10 // participant / failure strings
	maxParticipants = 1 << 21
)

// ErrBadPartial is wrapped by every decode failure.
var ErrBadPartial = errors.New("hier: malformed partial")

// IsPartial reports whether blob is an encoded partial.
func IsPartial(blob []byte) bool {
	return bytes.HasPrefix(blob, []byte(PartialMagic))
}

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeString(buf *bytes.Buffer, s string) {
	writeU16(buf, uint16(len(s)))
	buf.WriteString(s)
}

func writeExpansion(buf *bytes.Buffer, e expansion) {
	writeU16(buf, uint16(len(e)))
	for _, c := range e {
		writeU64(buf, math.Float64bits(c))
	}
}

// EncodePartial serializes p deterministically: parameters sorted by
// name and accounting lists sorted, so a given fold sequence always
// encodes to identical bytes. (Different fold orders of the same updates
// represent the same exact value but may lay it out across different
// expansion components; Finalize — not the wire image — is the
// order-independent quantity.)
func EncodePartial(p *Partial) ([]byte, error) {
	for _, s := range p.participants {
		if len(s) > maxNameLen {
			return nil, fmt.Errorf("hier: encode: participant name %d bytes exceeds %d", len(s), maxNameLen)
		}
	}
	for _, s := range p.failures {
		if len(s) > maxEntryLen {
			return nil, fmt.Errorf("hier: encode: failure entry %d bytes exceeds %d", len(s), maxEntryLen)
		}
	}
	names := make([]string, 0, len(p.params))
	for name := range p.params {
		if len(name) > maxNameLen {
			return nil, fmt.Errorf("hier: encode: param name %d bytes exceeds %d", len(name), maxNameLen)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	buf.WriteString(PartialMagic)
	writeU32(&buf, uint32(len(names)))
	writeU64(&buf, uint64(p.weight))
	writeU32(&buf, uint32(p.updates))
	writeU32(&buf, uint32(p.merged))
	writeExpansion(&buf, p.lossSum)
	parts, fails := p.Participants(), p.Failures()
	writeU32(&buf, uint32(len(parts)))
	for _, s := range parts {
		writeString(&buf, s)
	}
	writeU32(&buf, uint32(len(fails)))
	for _, s := range fails {
		writeString(&buf, s)
	}
	writeU64(&buf, uint64(p.bytesUp))
	writeU64(&buf, uint64(p.bytesDown))
	writeU64(&buf, uint64(p.tierBytes))
	for _, name := range names {
		ps := p.params[name]
		writeString(&buf, name)
		writeU32(&buf, uint32(ps.rows))
		writeU32(&buf, uint32(ps.cols))
		for _, e := range ps.sums {
			if len(e) > maxComponents {
				return nil, fmt.Errorf("hier: encode: %q expansion has %d components, cap %d", name, len(e), maxComponents)
			}
			writeExpansion(&buf, e)
		}
	}
	return buf.Bytes(), nil
}

// EncodedSize returns len(EncodePartial(p)) without serializing, with
// the same validation failures, so a node that only needs byte
// accounting (the in-process controller's tier climb) skips building a
// model-sized buffer per hop. codec_test pins the two against each other.
func (p *Partial) EncodedSize() (int64, error) {
	for _, s := range p.participants {
		if len(s) > maxNameLen {
			return 0, fmt.Errorf("hier: encode: participant name %d bytes exceeds %d", len(s), maxNameLen)
		}
	}
	for _, s := range p.failures {
		if len(s) > maxEntryLen {
			return 0, fmt.Errorf("hier: encode: failure entry %d bytes exceeds %d", len(s), maxEntryLen)
		}
	}
	size := int64(len(PartialMagic)) + 4 + 8 + 4 + 4 // magic, nparams, weight, updates, merged
	size += 2 + 8*int64(len(p.lossSum))
	size += 4
	for _, s := range p.participants {
		size += 2 + int64(len(s))
	}
	size += 4
	for _, s := range p.failures {
		size += 2 + int64(len(s))
	}
	size += 8 + 8 + 8 // bytesUp, bytesDown, tierBytes
	for name, ps := range p.params {
		if len(name) > maxNameLen {
			return 0, fmt.Errorf("hier: encode: param name %d bytes exceeds %d", len(name), maxNameLen)
		}
		size += 2 + int64(len(name)) + 4 + 4
		for _, e := range ps.sums {
			if len(e) > maxComponents {
				return 0, fmt.Errorf("hier: encode: %q expansion has %d components, cap %d", name, len(e), maxComponents)
			}
			size += 2 + 8*int64(len(e))
		}
	}
	return size, nil
}

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) fail(format string, args ...any) error {
	return fmt.Errorf("%w: %s at offset %d", ErrBadPartial, fmt.Sprintf(format, args...), d.off)
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > len(d.b) {
		return 0, d.fail("truncated u16")
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, d.fail("truncated u32")
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, d.fail("truncated u64")
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str(maxLen int) (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxLen {
		return "", d.fail("string length %d exceeds %d", n, maxLen)
	}
	if d.off+int(n) > len(d.b) {
		return "", d.fail("truncated string")
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) expansion() (expansion, error) {
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(n) > maxComponents {
		return nil, d.fail("expansion has %d components, cap %d", n, maxComponents)
	}
	if d.off+8*int(n) > len(d.b) {
		return nil, d.fail("truncated expansion")
	}
	if n == 0 {
		return nil, nil
	}
	e := make(expansion, n)
	for i := range e {
		bits := binary.LittleEndian.Uint64(d.b[d.off:])
		d.off += 8
		e[i] = math.Float64frombits(bits)
	}
	return e, nil
}

func (d *decoder) strList(count uint32, maxLen int) ([]string, error) {
	if count == 0 {
		return nil, nil
	}
	// Each entry costs at least 2 header bytes; bound allocation by the
	// bytes actually present.
	if int64(count)*2 > int64(len(d.b)-d.off) {
		return nil, d.fail("list count %d exceeds remaining payload", count)
	}
	out := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		s, err := d.str(maxLen)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// DecodePartial parses an encoded partial, validating every length and
// cap before allocating.
func DecodePartial(blob []byte) (*Partial, error) {
	if !IsPartial(blob) {
		return nil, fmt.Errorf("%w: missing %q magic", ErrBadPartial, PartialMagic)
	}
	d := &decoder{b: blob, off: len(PartialMagic)}
	nParams, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nParams > maxParams {
		return nil, d.fail("param count %d exceeds %d", nParams, maxParams)
	}
	weight, err := d.u64()
	if err != nil {
		return nil, err
	}
	if weight > math.MaxInt64 {
		return nil, d.fail("weight overflows int64")
	}
	updates, err := d.u32()
	if err != nil {
		return nil, err
	}
	merged, err := d.u32()
	if err != nil {
		return nil, err
	}
	lossSum, err := d.expansion()
	if err != nil {
		return nil, err
	}
	nParts, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nParts > maxParticipants {
		return nil, d.fail("participant count %d exceeds %d", nParts, maxParticipants)
	}
	participants, err := d.strList(nParts, maxNameLen)
	if err != nil {
		return nil, err
	}
	nFails, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nFails > maxParticipants {
		return nil, d.fail("failure count %d exceeds %d", nFails, maxParticipants)
	}
	failures, err := d.strList(nFails, maxEntryLen)
	if err != nil {
		return nil, err
	}
	bytesUp, err := d.u64()
	if err != nil {
		return nil, err
	}
	bytesDown, err := d.u64()
	if err != nil {
		return nil, err
	}
	tierBytes, err := d.u64()
	if err != nil {
		return nil, err
	}
	if bytesUp > math.MaxInt64 || bytesDown > math.MaxInt64 || tierBytes > math.MaxInt64 {
		return nil, d.fail("byte counter overflows int64")
	}

	p := NewPartial()
	p.weight = int64(weight)
	p.updates = int(updates)
	p.merged = int(merged)
	p.lossSum = lossSum
	p.participants = participants
	p.failures = failures
	p.bytesUp = int64(bytesUp)
	p.bytesDown = int64(bytesDown)
	p.tierBytes = int64(tierBytes)

	var totalElems int64
	for i := uint32(0); i < nParams; i++ {
		name, err := d.str(maxNameLen)
		if err != nil {
			return nil, err
		}
		if _, dup := p.params[name]; dup {
			return nil, d.fail("duplicate param %q", name)
		}
		rows, err := d.u32()
		if err != nil {
			return nil, err
		}
		cols, err := d.u32()
		if err != nil {
			return nil, err
		}
		// Cap each dimension before multiplying: the int64 product of two
		// arbitrary u32s can wrap negative and slip past the elems cap.
		if rows == 0 || cols == 0 || int64(rows) > maxElems || int64(cols) > maxElems {
			return nil, d.fail("param %q shape %dx%d out of range", name, rows, cols)
		}
		elems := int64(rows) * int64(cols)
		if elems > maxElems {
			return nil, d.fail("param %q shape %dx%d out of range", name, rows, cols)
		}
		totalElems += elems
		if totalElems > maxElems {
			return nil, d.fail("total elements exceed %d", maxElems)
		}
		// Each element costs at least its 2-byte component header.
		if elems*2 > int64(len(d.b)-d.off) {
			return nil, d.fail("param %q elements exceed remaining payload", name)
		}
		ps := &paramSum{rows: int(rows), cols: int(cols), sums: make([]expansion, elems)}
		for j := range ps.sums {
			e, err := d.expansion()
			if err != nil {
				return nil, err
			}
			ps.sums[j] = e
		}
		p.params[name] = ps
	}
	if d.off != len(d.b) {
		return nil, d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	return p, nil
}
