package fl

import "time"

// Clock abstracts every use of wall-clock time in the federation stack —
// round timestamps, gather deadlines, injected client delays, and the
// goroutines that carry client work — so a whole federated run can execute
// under a simulated clock. The contract is shared with sim.Clock (the
// canonical name; internal/sim aliases this interface): production code
// uses the real clock returned by RealClock, and internal/sim provides a
// deterministic discrete-event VirtualClock that advances virtual time
// only when every tracked activity is blocked.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Since is Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep blocks the caller for d. Under a virtual clock, Sleep must be
	// called from a goroutine started via Go — it yields to the event loop
	// and resumes when virtual time reaches the wake point.
	Sleep(d time.Duration)
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Go runs fn concurrently as an activity tracked by the clock. The
	// real clock spawns a plain goroutine; a virtual clock registers fn as
	// a simulated actor so its sleeps drive — and are driven by — the
	// event loop.
	Go(fn func())
}

// Waiter is the optional deterministic-wait capability of a virtual clock.
// Wait evaluates poll between simulated events: it returns true as soon as
// poll succeeds, advancing virtual time event by event in between, and
// false once virtual time reaches deadline (a zero deadline never fires).
// The gather loops in Controller and Server use it, when available, instead
// of a select over real timer channels — that is what makes "which updates
// beat the round deadline" a pure function of the scenario rather than of
// goroutine scheduling.
type Waiter interface {
	Wait(poll func() bool, deadline time.Time) bool
}

// realClock is the production Clock: thin wrappers over package time.
type realClock struct{}

// RealClock returns the wall-clock Clock used by default everywhere a
// config leaves Clock nil.
func RealClock() Clock { return realClock{} }

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Go(fn func())                           { go fn() }

// waitStatus reports how a gather wait ended.
type waitStatus int

const (
	waitOK waitStatus = iota
	waitDeadline
	waitCancelled
)

// gatherDeadline prepares one round's gather deadline for waitRecv: the
// absolute virtual instant (for a Waiter clock) and, for every other
// clock, a single timer channel shared by all of the round's receives —
// one timer per round, not one per message. Zero d means no deadline.
func gatherDeadline(clk Clock, d time.Duration) (time.Time, <-chan time.Time) {
	if d <= 0 {
		return time.Time{}, nil
	}
	at := clk.Now().Add(d)
	if _, ok := clk.(Waiter); ok {
		return at, nil
	}
	return at, clk.After(d)
}

// wakeChan prepares one wait's wake-up for waitRecv from an absolute
// instant: a Waiter clock takes the time directly; any other clock gets
// a fresh timer channel. Unlike gatherDeadline (one fixed timer per
// round), this suits the reconciliation loop, whose nearest wake-up — a
// requeued task's ready time, the next probe, the park budget — moves
// between iterations. A zero at means no wake-up.
func wakeChan(clk Clock, at time.Time) (time.Time, <-chan time.Time) {
	if at.IsZero() {
		return time.Time{}, nil
	}
	if _, ok := clk.(Waiter); ok {
		return at, nil
	}
	d := at.Sub(clk.Now())
	if d < 0 {
		d = 0
	}
	return at, clk.After(d)
}

// waitRecv waits for the next value on ch until the gatherDeadline pair
// fires (zero/nil = no deadline), optionally aborting when done (a
// context's Done channel; nil = never) is closed. Under a Waiter clock the
// wait is mediated by the event loop, so delivery order and deadline
// outcomes are deterministic; under any other clock it is a plain select
// on the round's shared timer channel.
func waitRecv[T any](clk Clock, ch <-chan T, done <-chan struct{}, deadlineAt time.Time, deadlineCh <-chan time.Time) (T, waitStatus) {
	var zero T
	if w, ok := clk.(Waiter); ok {
		var got T
		status := waitOK
		if w.Wait(func() bool {
			select {
			case <-done:
				status = waitCancelled
				return true
			default:
			}
			select {
			case v := <-ch:
				got = v
				return true
			default:
				return false
			}
		}, deadlineAt) {
			return got, status
		}
		return zero, waitDeadline
	}
	select {
	case v := <-ch:
		return v, waitOK
	case <-deadlineCh:
		return zero, waitDeadline
	case <-done:
		return zero, waitCancelled
	}
}
