package fl

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"clinfl/internal/provision"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// ServerConfig parameterizes the networked FL server. As with
// ControllerConfig, the zero value (plus Rounds/ExpectedClients) is the
// paper's synchronous scatter-gather; SampleFraction, MinUpdates and
// RoundDeadline make rounds straggler-tolerant, and Codec compresses the
// downlink weight payloads.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. ":8443" or "127.0.0.1:0").
	Addr string
	// ExpectedClients is how many registrations to wait for before
	// starting round 0.
	ExpectedClients int
	// RegisterTimeout bounds the registration phase.
	RegisterTimeout time.Duration
	// Rounds is E, the communication-round count.
	Rounds int
	// RoundDeadline bounds one round's gather; on expiry the round
	// aggregates whatever arrived and stragglers are handled by the
	// staleness policy. 0 falls back to RoundTimeout.
	RoundDeadline time.Duration
	// RoundTimeout is the legacy name for RoundDeadline (0 = no limit).
	RoundTimeout time.Duration
	// SampleFraction tasks a random subset of idle clients each round;
	// 0 or >= 1 tasks them all.
	SampleFraction float64
	// MinUpdates, when > 0, aggregates as soon as this many updates have
	// arrived instead of waiting for every tasked client.
	MinUpdates int
	// MinClients is the per-round quorum: a round that gathers fewer
	// successful updates fails the run. 0 keeps the legacy floor of one
	// update, so deadline rounds aggregate whatever arrived.
	MinClients int
	// Seed drives the client-sampling stream.
	Seed int64
	// Codec names the downlink weight codec for task/finish payloads
	// ("raw", "f32", "topk[:fraction]"); default raw. Each client's
	// uplink codec is its own choice, negotiated at registration.
	Codec string
	// AllowTopKUplink permits clients to negotiate the top-k sparsifying
	// uplink codec. Top-k transmits full weight maps, not deltas, so
	// ~(1-fraction) of every parameter decodes as zero and averages into
	// the global model; off by default, registration falls back to raw.
	AllowTopKUplink bool
	// Aggregator combines updates (default FedAvg).
	Aggregator Aggregator
	// AsyncAggregator, when non-nil, folds stragglers' late updates into
	// the global model with staleness weighting; nil drops them.
	AsyncAggregator AsyncAggregator
	// Filters run over every client update before aggregation.
	Filters []Filter
	// Validate, if non-nil, scores each aggregated model for selection.
	Validate func(weights map[string]*tensor.Matrix) (float64, error)
	// VerifyToken authenticates a client's admission token (required).
	// Use (*provision.Project).VerifyToken in-process or
	// provision.TokenVerifier over a tokens file for disk-based kits.
	VerifyToken func(name, token string) bool
	// Logf receives progress lines (default log.Printf).
	Logf func(format string, args ...any)
	// Listener, when non-nil, overrides Addr and the startup kit's TLS
	// stack with a caller-supplied transport — the simulator and the
	// fltest conformance kit pass a transport.MemNetwork here so the same
	// server logic runs over in-memory links with scripted faults.
	Listener transport.MessageListener
	// Clock supplies round timestamps and gather deadlines (default: real
	// wall clock).
	Clock Clock
}

// serverClient is one registered client's connection state. Reads happen
// on a dedicated reader goroutine feeding the server inbox; writes happen
// only from the Run goroutine, so the Conn's one-reader/one-writer
// contract holds.
type serverClient struct {
	name string
	conn transport.MessageConn
	// taskedRound is the round the client is currently working on
	// (-1 when idle). A straggler stays tasked — and excluded from
	// sampling — until its reply or its connection error drains in.
	taskedRound int
	// dead marks a failed connection; dead clients are skipped.
	dead bool
}

// inboxMsg is one reader goroutine's delivery: a message or a terminal
// connection error.
type inboxMsg struct {
	name string
	msg  *transport.Message
	err  error
}

// Server is the networked federation server: it terminates mutual-TLS
// connections from provisioned clients, verifies admission tokens, and
// drives the same straggler-tolerant scatter-and-gather workflow as the
// in-process Controller over the wire.
type Server struct {
	cfg       ServerConfig
	kit       *provision.StartupKit
	ln        transport.MessageListener
	downCodec WeightCodec
	rng       *tensor.RNG
	inbox     chan inboxMsg

	mu      sync.Mutex
	clients map[string]*serverClient
}

// NewServer builds a server from its startup kit.
func NewServer(cfg ServerConfig, kit *provision.StartupKit) (*Server, error) {
	if cfg.ExpectedClients <= 0 {
		return nil, errors.New("fl: server needs ExpectedClients > 0")
	}
	if cfg.VerifyToken == nil {
		return nil, errors.New("fl: server needs a VerifyToken function")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = cfg.RoundTimeout
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = FedAvg{}
	}
	if cfg.RegisterTimeout <= 0 {
		cfg.RegisterTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	downCodec, err := CodecByName(cfg.Codec)
	if err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		tlsCfg, err := kit.ServerTLS()
		if err != nil {
			return nil, err
		}
		ln, err = transport.ListenMessages(cfg.Addr, tlsCfg)
		if err != nil {
			return nil, err
		}
	}
	return &Server{
		cfg:       cfg,
		kit:       kit,
		ln:        ln,
		downCodec: downCodec,
		rng:       tensor.NewRNG(cfg.Seed + 7919),
		// Buffered so reader goroutines never block on a drained server:
		// a cooperative client has at most one reply outstanding (it is
		// not re-tasked until that reply drains) plus one terminal error.
		inbox:   make(chan inboxMsg, 2*cfg.ExpectedClients),
		clients: make(map[string]*serverClient),
	}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener and all client connections.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		_ = c.conn.Close()
	}
	return err
}

// acceptClients runs the registration phase until ExpectedClients have
// presented valid tokens.
func (s *Server) acceptClients() error {
	// Registration is pure socket I/O, so its timeout is wall time even
	// when a simulated Clock drives the rounds: a virtual clock only
	// advances inside round gathers, and a registration deadline measured
	// against it would never fire.
	deadline := time.Now().Add(s.cfg.RegisterTimeout)
	for {
		s.mu.Lock()
		n := len(s.clients)
		s.mu.Unlock()
		if n >= s.cfg.ExpectedClients {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fl: registration timed out with %d/%d clients", n, s.cfg.ExpectedClients)
		}
		// The per-accept deadline is wall time: it bounds socket waits so
		// the registration loop can re-check its own (clock-driven)
		// timeout, not a simulated quantity.
		_ = s.ln.SetDeadline(time.Now().Add(time.Second))
		conn, err := s.ln.AcceptConn()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return fmt.Errorf("fl: accept: %w", err)
		}
		if err := s.register(conn); err != nil {
			s.cfg.Logf("fl server: rejected registration from %s: %v", conn.RemoteAddr(), err)
			_ = conn.Close()
		}
	}
}

// register handles one client's MsgRegister handshake, including uplink
// codec negotiation: the client's requested codec is accepted if known,
// with a fallback to raw, and the decision is echoed in the ack.
func (s *Server) register(conn transport.MessageConn) error {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	msg, err := conn.Read()
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	if msg.Type != transport.MsgRegister {
		return fmt.Errorf("fl: expected register, got %s", msg.Type)
	}
	if !s.cfg.VerifyToken(msg.Sender, msg.Token) {
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "bad token"},
		})
		return fmt.Errorf("fl: bad token from %q", msg.Sender)
	}
	codecName := msg.Meta[transport.MetaCodec]
	if _, err := CodecByName(codecName); err != nil {
		s.cfg.Logf("fl server: client %q requested unknown codec %q, falling back to raw", msg.Sender, codecName)
		codecName = "raw"
	} else if codecName == "" {
		codecName = "raw"
	}
	if strings.HasPrefix(codecName, "topk") && !s.cfg.AllowTopKUplink {
		s.cfg.Logf("fl server: client %q requested top-k uplink codec %q: rejected (top-k zeroes most of a full weight map; set AllowTopKUplink to accept), falling back to raw", msg.Sender, codecName)
		codecName = "raw"
	}
	s.mu.Lock()
	if _, dup := s.clients[msg.Sender]; dup {
		s.mu.Unlock()
		return fmt.Errorf("fl: duplicate client %q", msg.Sender)
	}
	s.clients[msg.Sender] = &serverClient{name: msg.Sender, conn: conn, taskedRound: -1}
	s.mu.Unlock()
	s.cfg.Logf("fl server: client %q registered (token ok, uplink codec %s)", msg.Sender, codecName)
	return conn.Write(&transport.Message{
		Type: transport.MsgRegisterAck, Sender: s.kit.Name,
		Meta: map[string]string{"accepted": "true", transport.MetaCodec: codecName},
	})
}

// startReaders launches one reader goroutine per registered client. Each
// forwards every inbound message (and finally the terminal read error)
// into the server inbox, so a straggler's late reply is never stranded in
// a socket buffer and a dead connection is reported, not silently absent.
func (s *Server) startReaders() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		go func(c *serverClient) {
			for {
				msg, err := c.conn.Read()
				if err != nil {
					s.inbox <- inboxMsg{name: c.name, err: err}
					return
				}
				s.inbox <- inboxMsg{name: c.name, msg: msg}
			}
		}(c)
	}
}

// Run performs registration then E federated rounds, returning the result.
// Meta round parameters (epochs etc.) are the clients' concern: each client
// was provisioned with its own local config.
func (s *Server) Run(initialWeights map[string]*tensor.Matrix) (*Result, error) {
	if err := s.acceptClients(); err != nil {
		return nil, err
	}
	s.startReaders()
	global := cloneWeights(initialWeights)
	res := &Result{History: History{BestRound: -1}}

	for round := 0; round < s.cfg.Rounds; round++ {
		start := s.cfg.Clock.Now()
		rec := RoundRecord{Round: round}
		updates, late, err := s.runRound(round, global, &rec)
		if err != nil {
			return nil, err
		}
		global, err = finalizeRound(s.cfg.Filters, s.cfg.Aggregator, s.cfg.AsyncAggregator,
			updates, late, round, global, &rec)
		if err != nil {
			return nil, err
		}
		rec.Duration = s.cfg.Clock.Since(start)
		var lossSum, weightSum float64
		for _, u := range updates {
			rec.Participants = append(rec.Participants, u.ClientName)
			lossSum += u.TrainLoss * float64(u.NumSamples)
			weightSum += float64(u.NumSamples)
		}
		if weightSum > 0 {
			rec.MeanTrainLoss = lossSum / weightSum
		}
		if s.cfg.Validate != nil {
			score, err := s.cfg.Validate(global)
			if err != nil {
				return nil, fmt.Errorf("fl: round %d validate: %w", round, err)
			}
			rec.ValScore = score
			if res.History.BestRound < 0 || score > res.History.BestScore {
				res.History.BestRound = round
				res.History.BestScore = score
				res.BestWeights = cloneWeights(global)
			}
		}
		res.History.Rounds = append(res.History.Rounds, rec)
		s.cfg.Logf("fl server: round %d/%d done in %v (mean loss %.4f, %d/%d participants, %d up / %d down bytes)",
			round+1, s.cfg.Rounds, rec.Duration.Round(time.Millisecond), rec.MeanTrainLoss,
			len(rec.Participants), len(rec.Sampled), rec.BytesUp, rec.BytesDown)
	}

	// Distribute the final model and release the clients.
	blob, err := s.downCodec.Encode(global)
	if err != nil {
		return nil, err
	}
	res.History.FinishFailures = s.broadcast(&transport.Message{
		Type: transport.MsgFinish, Sender: s.kit.Name, Payload: blob,
	})
	// Framed wire totals (headers + metadata + gob overhead included),
	// complementing the per-round payload counters.
	s.mu.Lock()
	for _, c := range s.clients {
		res.History.WireBytesRead += c.conn.BytesRead()
		res.History.WireBytesWritten += c.conn.BytesWritten()
	}
	s.mu.Unlock()
	res.FinalWeights = global
	if res.BestWeights == nil {
		res.BestWeights = cloneWeights(global)
	}
	return res, nil
}

// sampleLive picks this round's task recipients among clients that are
// alive and not still chewing on an earlier round's task.
func (s *Server) sampleLive() []*serverClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	idle := make([]*serverClient, 0, len(s.clients))
	total := 0
	for _, c := range s.clients {
		if c.dead {
			continue
		}
		total++
		if c.taskedRound < 0 {
			idle = append(idle, c)
		}
	}
	// Deterministic shuffle order needs a stable starting order.
	for i := 1; i < len(idle); i++ {
		for j := i; j > 0 && idle[j].name < idle[j-1].name; j-- {
			idle[j], idle[j-1] = idle[j-1], idle[j]
		}
	}
	if s.cfg.SampleFraction <= 0 || s.cfg.SampleFraction >= 1 {
		return idle
	}
	k := int(math.Ceil(float64(total) * s.cfg.SampleFraction))
	if k < 1 {
		k = 1
	}
	if k > len(idle) {
		k = len(idle)
	}
	s.rng.Shuffle(len(idle), func(i, j int) { idle[i], idle[j] = idle[j], idle[i] })
	return idle[:k]
}

// runRound scatters the global model to this round's sampled clients and
// gathers their updates until everyone tasked replies, MinUpdates arrive,
// or the round deadline fires. Per-client send/receive errors land in
// rec.Failures — a failed client is recorded, never silently absent.
func (s *Server) runRound(round int, global map[string]*tensor.Matrix, rec *RoundRecord) ([]*ClientUpdate, []*ClientUpdate, error) {
	blob, err := s.downCodec.Encode(global)
	if err != nil {
		return nil, nil, err
	}
	// Drain stragglers' replies that landed between rounds so they become
	// idle (sample-able) again and enter this round's staleness handling.
	var late []*ClientUpdate
drain:
	for {
		select {
		case in := <-s.inbox:
			wasTasked := s.setTasked(in.name, -1)
			switch {
			case in.err != nil:
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, in.err))
				s.markDead(in.name)
			default:
				u, uerr := s.handleReply(in.name, in.msg)
				switch {
				case uerr != nil:
					rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, uerr))
				case wasTasked < 0:
					rec.Failures = append(rec.Failures, fmt.Sprintf("%s: unsolicited update (not tasked)", in.name))
				case s.cfg.AsyncAggregator != nil:
					// Staleness comes from the server-side task record,
					// never the client-supplied msg.Round. Payload bytes
					// are counted at merge time in finalizeRound.
					u.Round = wasTasked
					late = append(late, u)
				default:
					rec.LateDropped = append(rec.LateDropped, in.name)
				}
			}
		default:
			break drain
		}
	}

	sampled := s.sampleLive()
	if len(sampled) == 0 {
		return nil, nil, fmt.Errorf("fl: round %d: no live idle clients to task", round)
	}
	pending := 0
	for _, c := range sampled {
		rec.Sampled = append(rec.Sampled, c.name)
		task := &transport.Message{
			Type: transport.MsgTask, Sender: s.kit.Name, Round: round, Payload: blob,
			Meta: map[string]string{"round": strconv.Itoa(round)},
		}
		if err := c.conn.Write(task); err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: send task: %v", c.name, err))
			s.markDead(c.name)
			continue
		}
		s.setTasked(c.name, round)
		rec.BytesDown += int64(len(blob))
		pending++
	}

	deadlineAt, deadlineCh := gatherDeadline(s.cfg.Clock, s.cfg.RoundDeadline)
	// The quorum is clamped to the sampled count, not to the clients whose
	// task send succeeded: send failures must count against an explicitly
	// configured floor, never silently lower it.
	quorum := s.cfg.MinClients
	if quorum > len(sampled) {
		quorum = len(sampled)
	}
	if quorum < 1 {
		quorum = 1
	}
	minUpdates := s.cfg.MinUpdates
	if minUpdates <= 0 || minUpdates > pending {
		minUpdates = pending
	}
	if minUpdates < quorum {
		// An early aggregate below the quorum would always fail it; wait
		// for the quorum before cutting the round short.
		minUpdates = quorum
	}

	var updates []*ClientUpdate
gather:
	for pending > 0 && len(updates) < minUpdates {
		in, status := waitRecv(s.cfg.Clock, s.inbox, nil, deadlineAt, deadlineCh)
		if status == waitDeadline {
			// Stragglers stay tasked; their replies drain as late
			// messages in a future round's gather.
			break gather
		}
		wasTasked := s.setTasked(in.name, -1)
		if in.err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, in.err))
			s.markDead(in.name)
			if wasTasked == round {
				pending--
			}
			continue
		}
		u, uerr := s.handleReply(in.name, in.msg)
		// Classify by the server-side task record, never the
		// client-supplied msg.Round: a tasked client sending a
		// malformed round must still release its pending slot, and an
		// untasked one must not be able to claim participation.
		switch {
		case uerr != nil:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, uerr))
			if wasTasked == round {
				pending--
			}
		case wasTasked == round:
			pending--
			u.Round = round
			rec.BytesUp += int64(u.PayloadBytes)
			updates = append(updates, u)
		case wasTasked < 0:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: unsolicited update (not tasked)", in.name))
		case s.cfg.AsyncAggregator != nil:
			u.Round = wasTasked
			late = append(late, u)
		default:
			rec.LateDropped = append(rec.LateDropped, in.name)
		}
	}
	if len(updates) < quorum {
		return nil, nil, fmt.Errorf("fl: round %d quorum not met: %d/%d updates (failures: %v)",
			round, len(updates), quorum, rec.Failures)
	}
	if len(rec.Failures) > 0 || len(updates) < len(rec.Sampled) {
		s.cfg.Logf("fl server: round %d proceeded with %d/%d clients (failures: %v)",
			round, len(updates), len(rec.Sampled), rec.Failures)
	}
	return updates, late, nil
}

// handleReply turns one inbound message into a ClientUpdate.
func (s *Server) handleReply(name string, msg *transport.Message) (*ClientUpdate, error) {
	if msg.Type != transport.MsgUpdate {
		return nil, fmt.Errorf("expected update, got %s: %s", msg.Type, msg.Meta["error"])
	}
	// Enforce the top-k gate on the payload itself, not just at
	// negotiation: DecodeWeights sniffs any magic, so a client ignoring
	// the registration ack could otherwise push sparsified weights (most
	// of every parameter zeroed) straight into the average.
	if !s.cfg.AllowTopKUplink && bytes.HasPrefix(msg.Payload, []byte(topKMagic)) {
		return nil, errors.New("top-k update payload rejected (not negotiated; set AllowTopKUplink)")
	}
	weights, err := DecodeWeights(msg.Payload)
	if err != nil {
		return nil, err
	}
	loss, _ := strconv.ParseFloat(msg.Meta["train_loss"], 64)
	return &ClientUpdate{
		ClientName: name, Round: msg.Round, Weights: weights,
		NumSamples: msg.NumSamples, TrainLoss: loss,
		PayloadBytes: len(msg.Payload),
	}, nil
}

// setTasked updates a client's tasked round, returning the previous value.
func (s *Server) setTasked(name string, round int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[name]
	if !ok {
		return -1
	}
	prev := c.taskedRound
	c.taskedRound = round
	return prev
}

// markDead flags a client's connection as failed.
func (s *Server) markDead(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[name]; ok {
		c.dead = true
	}
}

// broadcast best-effort sends msg to every live client, returning
// "client: error" strings for the ones it could not reach so the caller
// can record them in the Result.
func (s *Server) broadcast(msg *transport.Message) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var failures []string
	for name, c := range s.clients {
		if c.dead {
			failures = append(failures, fmt.Sprintf("%s: connection already failed", name))
			continue
		}
		if err := c.conn.Write(msg); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			s.cfg.Logf("fl server: broadcast to %q: %v", name, err)
		}
	}
	return failures
}
