package fl

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"clinfl/internal/fl/durable"
	"clinfl/internal/metrics"
	"clinfl/internal/provision"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// ServerConfig parameterizes the networked FL server. As with
// ControllerConfig, the zero value (plus Rounds/ExpectedClients) is the
// paper's synchronous scatter-gather; SampleFraction, MinUpdates and
// RoundDeadline make rounds straggler-tolerant, and Codec compresses the
// downlink weight payloads.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. ":8443" or "127.0.0.1:0").
	Addr string
	// ExpectedClients is how many registrations to wait for before
	// starting round 0.
	ExpectedClients int
	// RegisterTimeout bounds the registration phase.
	RegisterTimeout time.Duration
	// Rounds is E, the communication-round count.
	Rounds int
	// RoundDeadline bounds one round's gather; on expiry the round
	// aggregates whatever arrived and stragglers are handled by the
	// staleness policy. 0 falls back to RoundTimeout.
	RoundDeadline time.Duration
	// RoundTimeout is the legacy name for RoundDeadline (0 = no limit).
	RoundTimeout time.Duration
	// SampleFraction tasks a random subset of idle clients each round;
	// 0 or >= 1 tasks them all.
	SampleFraction float64
	// MinUpdates, when > 0, aggregates as soon as this many updates have
	// arrived instead of waiting for every tasked client.
	MinUpdates int
	// MinClients is the per-round quorum: a round that gathers fewer
	// successful updates fails the run. 0 keeps the legacy floor of one
	// update, so deadline rounds aggregate whatever arrived.
	MinClients int
	// Seed drives the client-sampling stream.
	Seed int64
	// Codec names the downlink weight codec for task/finish payloads
	// ("raw", "f32", "topk[:fraction]"); default raw. Each client's
	// uplink codec is its own choice, negotiated at registration.
	Codec string
	// AllowTopKUplink permits clients to negotiate the top-k sparsifying
	// uplink codec. Top-k transmits full weight maps, not deltas, so
	// ~(1-fraction) of every parameter decodes as zero and averages into
	// the global model; off by default, registration falls back to raw.
	AllowTopKUplink bool
	// Aggregator combines updates (default FedAvg).
	Aggregator Aggregator
	// AsyncAggregator, when non-nil, folds stragglers' late updates into
	// the global model with staleness weighting; nil drops them.
	AsyncAggregator AsyncAggregator
	// Filters run over every client update before aggregation.
	Filters []Filter
	// Validate, if non-nil, scores each aggregated model for selection.
	Validate func(weights map[string]*tensor.Matrix) (float64, error)
	// VerifyToken authenticates a client's admission token (required).
	// Use (*provision.Project).VerifyToken in-process or
	// provision.TokenVerifier over a tokens file for disk-based kits.
	VerifyToken func(name, token string) bool
	// Logf receives progress lines (default log.Printf).
	Logf func(format string, args ...any)
	// Listener, when non-nil, overrides Addr and the startup kit's TLS
	// stack with a caller-supplied transport — the simulator and the
	// fltest conformance kit pass a transport.MemNetwork here so the same
	// server logic runs over in-memory links with scripted faults.
	Listener transport.MessageListener
	// Clock supplies round timestamps and gather deadlines (default: real
	// wall clock).
	Clock Clock
	// WAL, when non-nil, makes the run durable: round lifecycle events are
	// appended and fsync'd before the run proceeds, client sessions are
	// recorded so reconnects can re-attach after a server restart, and Run
	// resumes from the WAL's recovered state — the last committed model
	// plus any open round's already-received updates.
	WAL *durable.WAL
	// Metrics, when non-nil, receives round/byte/failure/straggler/resume
	// counters, the round-duration histogram, and the connected-clients
	// gauge. Nil disables metrics at zero cost.
	Metrics *metrics.Registry
}

// serverClient is one registered client's connection state. Reads happen
// on a dedicated reader goroutine feeding the server inbox; writes happen
// only from the Run goroutine, so the Conn's one-reader/one-writer
// contract holds.
type serverClient struct {
	name string
	conn transport.MessageConn
	// token is the session token issued at registration; a reconnecting
	// client presents it to re-attach (transport.MetaSession).
	token string
	// gen counts connection generations. Each re-attach bumps it, and
	// inbox messages carry the generation their reader was started with,
	// so messages from a superseded connection are recognized as stale.
	gen int
	// taskedRound is the round the client is currently working on
	// (-1 when idle). A straggler stays tasked — and excluded from
	// sampling — until its reply or its connection error drains in.
	taskedRound int
	// dead marks a failed connection; dead clients are skipped.
	dead bool
}

// inboxMsg is one reader goroutine's delivery: a message or a terminal
// connection error, or (from the accept loop) a vetted reconnect to
// re-attach on the Run goroutine.
type inboxMsg struct {
	name string
	gen  int
	msg  *transport.Message
	err  error
	// resume, when non-nil, is a vetted mid-run reconnect; the other
	// fields are unused.
	resume *resumeConn
}

// resumeConn is a reconnecting client that passed admission and session
// checks in the accept loop; the Run goroutine completes the re-attach.
type resumeConn struct {
	name  string
	token string
	codec string
	conn  transport.MessageConn
}

// Server is the networked federation server: it terminates mutual-TLS
// connections from provisioned clients, verifies admission tokens, and
// drives the same straggler-tolerant scatter-and-gather workflow as the
// in-process Controller over the wire.
type Server struct {
	cfg       ServerConfig
	kit       *provision.StartupKit
	ln        transport.MessageListener
	downCodec WeightCodec
	rng       *tensor.RNG
	tokenRNG  *tensor.RNG
	inbox     chan inboxMsg
	met       flMetrics

	mu      sync.Mutex
	clients map[string]*serverClient
	// sessions maps client name to issued session token; recovered from
	// the WAL on restart so pre-crash clients can re-attach.
	sessions map[string]string
}

// NewServer builds a server from its startup kit.
func NewServer(cfg ServerConfig, kit *provision.StartupKit) (*Server, error) {
	if cfg.ExpectedClients <= 0 {
		return nil, errors.New("fl: server needs ExpectedClients > 0")
	}
	if cfg.VerifyToken == nil {
		return nil, errors.New("fl: server needs a VerifyToken function")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = cfg.RoundTimeout
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = FedAvg{}
	}
	if cfg.RegisterTimeout <= 0 {
		cfg.RegisterTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	downCodec, err := CodecByName(cfg.Codec)
	if err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		tlsCfg, err := kit.ServerTLS()
		if err != nil {
			return nil, err
		}
		ln, err = transport.ListenMessages(cfg.Addr, tlsCfg)
		if err != nil {
			return nil, err
		}
	}
	sessions := make(map[string]string)
	if cfg.WAL != nil {
		for name, token := range cfg.WAL.Recovered().Sessions {
			sessions[name] = token
		}
	}
	return &Server{
		cfg:       cfg,
		kit:       kit,
		ln:        ln,
		downCodec: downCodec,
		rng:       tensor.NewRNG(cfg.Seed + 7919),
		// The token stream is independent of the sampling stream so adding
		// session tokens never perturbs which clients a seeded run samples.
		tokenRNG: tensor.NewRNG(cfg.Seed + 2654435761),
		met:      newFLMetrics(cfg.Metrics),
		// Buffered so reader goroutines never block on a drained server:
		// a cooperative client has at most one reply outstanding (it is
		// not re-tasked until that reply drains) plus one terminal error,
		// with headroom for reconnect deliveries.
		inbox:    make(chan inboxMsg, 4*cfg.ExpectedClients),
		clients:  make(map[string]*serverClient),
		sessions: sessions,
	}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener and all client connections.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		_ = c.conn.Close()
	}
	return err
}

// acceptClients runs the registration phase until ExpectedClients have
// presented valid tokens.
func (s *Server) acceptClients() error {
	// Registration is pure socket I/O, so its timeout is wall time even
	// when a simulated Clock drives the rounds: a virtual clock only
	// advances inside round gathers, and a registration deadline measured
	// against it would never fire.
	deadline := time.Now().Add(s.cfg.RegisterTimeout)
	for {
		s.mu.Lock()
		n := len(s.clients)
		s.mu.Unlock()
		if n >= s.cfg.ExpectedClients {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fl: registration timed out with %d/%d clients", n, s.cfg.ExpectedClients)
		}
		// The per-accept deadline is wall time: it bounds socket waits so
		// the registration loop can re-check its own (clock-driven)
		// timeout, not a simulated quantity.
		_ = s.ln.SetDeadline(time.Now().Add(time.Second))
		conn, err := s.ln.AcceptConn()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return fmt.Errorf("fl: accept: %w", err)
		}
		if err := s.register(conn); err != nil {
			s.cfg.Logf("fl server: rejected registration from %s: %v", conn.RemoteAddr(), err)
			_ = conn.Close()
		}
	}
}

// negotiateCodec resolves a registration's requested uplink codec: the
// client's choice is accepted if known (and, for top-k, explicitly
// allowed), with a fallback to raw.
func (s *Server) negotiateCodec(msg *transport.Message) string {
	codecName := msg.Meta[transport.MetaCodec]
	if _, err := CodecByName(codecName); err != nil {
		s.cfg.Logf("fl server: client %q requested unknown codec %q, falling back to raw", msg.Sender, codecName)
		codecName = "raw"
	} else if codecName == "" {
		codecName = "raw"
	}
	if strings.HasPrefix(codecName, "topk") && !s.cfg.AllowTopKUplink {
		s.cfg.Logf("fl server: client %q requested top-k uplink codec %q: rejected (top-k zeroes most of a full weight map; set AllowTopKUplink to accept), falling back to raw", msg.Sender, codecName)
		codecName = "raw"
	}
	return codecName
}

// register handles one client's MsgRegister handshake: admission-token
// verification, uplink codec negotiation, and session issuance. A new
// client is issued a session token (durably recorded before the ack when
// a WAL is configured); a returning client presenting its token — after a
// server restart, or redialing during the registration window — re-attaches
// to its session instead of being rejected as a duplicate.
func (s *Server) register(conn transport.MessageConn) error {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	msg, err := conn.Read()
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	if msg.Type != transport.MsgRegister {
		return fmt.Errorf("fl: expected register, got %s", msg.Type)
	}
	if !s.cfg.VerifyToken(msg.Sender, msg.Token) {
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "bad token"},
		})
		return fmt.Errorf("fl: bad token from %q", msg.Sender)
	}
	codecName := s.negotiateCodec(msg)
	sess := msg.Meta[transport.MetaSession]
	resumed := sess != ""
	s.mu.Lock()
	if resumed && sess != s.sessions[msg.Sender] {
		s.mu.Unlock()
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "unknown session"},
		})
		return fmt.Errorf("fl: unknown session from %q", msg.Sender)
	}
	if !resumed {
		sess = fmt.Sprintf("%016x", s.tokenRNG.Rand().Int63())
		s.sessions[msg.Sender] = sess
	}
	c, exists := s.clients[msg.Sender]
	if exists && !resumed {
		s.mu.Unlock()
		return fmt.Errorf("fl: duplicate client %q", msg.Sender)
	}
	if exists {
		if c.conn != nil {
			_ = c.conn.Close()
		}
		c.conn = conn
		c.gen++
		c.dead = false
	} else {
		s.clients[msg.Sender] = &serverClient{name: msg.Sender, conn: conn, token: sess, taskedRound: -1}
	}
	s.mu.Unlock()
	if !resumed && s.cfg.WAL != nil {
		if err := s.cfg.WAL.AppendSession(msg.Sender, sess); err != nil {
			return err
		}
	}
	if resumed {
		s.met.resumes.Inc()
		s.cfg.Logf("fl server: client %q session resumed (uplink codec %s)", msg.Sender, codecName)
	} else {
		s.cfg.Logf("fl server: client %q registered (token ok, uplink codec %s)", msg.Sender, codecName)
	}
	return conn.Write(&transport.Message{
		Type: transport.MsgRegisterAck, Sender: s.kit.Name,
		Meta: map[string]string{
			"accepted": "true", transport.MetaCodec: codecName, transport.MetaSession: sess,
		},
	})
}

// readLoop forwards conn's inbound messages (and finally its terminal
// read error) into the server inbox, tagged with the connection generation
// the reader was started under, so the Run goroutine can discard
// deliveries from a superseded connection after a session re-attach. conn
// is a parameter, never read from the shared client entry: the entry's
// conn is swapped on resume, and this reader must keep draining the
// connection it was born with.
func (s *Server) readLoop(name string, conn transport.MessageConn, gen int) {
	for {
		msg, err := conn.Read()
		if err != nil {
			s.inbox <- inboxMsg{name: name, gen: gen, err: err}
			return
		}
		s.inbox <- inboxMsg{name: name, gen: gen, msg: msg}
	}
}

// startReaders launches one reader goroutine per registered client, so a
// straggler's late reply is never stranded in a socket buffer and a dead
// connection is reported, not silently absent.
func (s *Server) startReaders() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		go s.readLoop(c.name, c.conn, c.gen)
	}
}

// acceptLoop keeps accepting connections after the registration window so
// clients that lost their connection mid-run can re-attach. Admission and
// session validation happen here, off the round loop; the actual
// re-attach — swapping the connection, restarting the reader, re-sending
// an in-flight task — is posted to the inbox and performed by the Run
// goroutine, which owns all connection writes. The loop ends when the
// listener closes.
func (s *Server) acceptLoop() {
	_ = s.ln.SetDeadline(time.Time{})
	for {
		conn, err := s.ln.AcceptConn()
		if err != nil {
			return
		}
		go func(conn transport.MessageConn) {
			r, err := s.vetReconnect(conn)
			if err != nil {
				s.cfg.Logf("fl server: rejected reconnect from %s: %v", conn.RemoteAddr(), err)
				_ = conn.Close()
				return
			}
			s.inbox <- inboxMsg{name: r.name, resume: r}
		}(conn)
	}
}

// vetReconnect reads and validates a mid-run registration: the admission
// token must verify and the presented session token must match the one
// issued (or recovered from the WAL). New clients cannot join mid-run.
func (s *Server) vetReconnect(conn transport.MessageConn) (*resumeConn, error) {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	msg, err := conn.Read()
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	if msg.Type != transport.MsgRegister {
		return nil, fmt.Errorf("fl: expected register, got %s", msg.Type)
	}
	if !s.cfg.VerifyToken(msg.Sender, msg.Token) {
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "bad token"},
		})
		return nil, fmt.Errorf("fl: bad token from %q", msg.Sender)
	}
	sess := msg.Meta[transport.MetaSession]
	s.mu.Lock()
	known := s.sessions[msg.Sender]
	s.mu.Unlock()
	if sess == "" || sess != known {
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "unknown session"},
		})
		return nil, fmt.Errorf("fl: reconnect from %q without a valid session", msg.Sender)
	}
	return &resumeConn{name: msg.Sender, token: sess, codec: s.negotiateCodec(msg), conn: conn}, nil
}

// handleResume completes a vetted reconnect on the Run goroutine: the
// client's connection is swapped, its reader restarted under a bumped
// generation (messages from the dead connection become stale), and — when
// the client was tasked this round and its update has not arrived — the
// current task is re-sent so the round can still complete. The return
// value is the delta to the gather's pending count: +1 when a client whose
// pending slot was already released (its failure drained) is re-tasked,
// -1 when a still-pending client's re-attach fails.
func (s *Server) handleResume(r *resumeConn, round int, blob []byte, rec *RoundRecord, tasked, replied map[string]bool) int {
	s.mu.Lock()
	c, ok := s.clients[r.name]
	if !ok {
		c = &serverClient{name: r.name, token: r.token, taskedRound: -1}
		s.clients[r.name] = c
	}
	old := c.conn
	wasDead := c.dead
	slotHeld := c.taskedRound == round
	c.conn = r.conn
	c.gen++
	gen := c.gen
	c.dead = false
	c.taskedRound = -1
	s.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	release := 0
	if slotHeld {
		release = -1 // the slot stays held only if the re-attach fully succeeds
	}
	ack := &transport.Message{
		Type: transport.MsgRegisterAck, Sender: s.kit.Name,
		Meta: map[string]string{
			"accepted": "true", transport.MetaCodec: r.codec, transport.MetaSession: r.token,
		},
	}
	if err := r.conn.Write(ack); err != nil {
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: resume ack: %v", r.name, err))
		s.met.failure("conn")
		s.markDead(r.name)
		return release
	}
	go s.readLoop(r.name, r.conn, gen)
	s.met.resumes.Inc()
	if wasDead {
		s.met.connected.Add(1)
	}
	s.cfg.Logf("fl server: client %q session resumed mid-run", r.name)
	if !tasked[r.name] || replied[r.name] || blob == nil {
		return release // idle (or already heard from): nothing to re-send
	}
	task := &transport.Message{
		Type: transport.MsgTask, Sender: s.kit.Name, Round: round, Payload: blob,
		Meta: map[string]string{"round": strconv.Itoa(round)},
	}
	if err := r.conn.Write(task); err != nil {
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: resend task: %v", r.name, err))
		s.met.failure("send")
		s.markDead(r.name)
		return release
	}
	s.setTasked(r.name, round)
	rec.BytesDown += int64(len(blob))
	if slotHeld {
		return 0
	}
	return 1
}

// clientGen returns a client's current connection generation (-1 when
// unknown).
func (s *Server) clientGen(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[name]; ok {
		return c.gen
	}
	return -1
}

// Run performs registration then E federated rounds, returning the result.
// Meta round parameters (epochs etc.) are the clients' concern: each client
// was provisioned with its own local config.
func (s *Server) Run(initialWeights map[string]*tensor.Matrix) (*Result, error) {
	if err := s.acceptClients(); err != nil {
		return nil, err
	}
	s.startReaders()
	go s.acceptLoop()
	s.mu.Lock()
	s.met.connected.Set(float64(len(s.clients)))
	s.mu.Unlock()
	global := cloneWeights(initialWeights)
	res := &Result{History: History{BestRound: -1}}

	// A durable run picks up where the WAL left off: the last committed
	// model replaces initialWeights, and a round open at the crash is
	// resumed with its recorded updates re-seeded.
	startRound := 0
	var resume *durable.OpenRound
	if s.cfg.WAL != nil {
		st := s.cfg.WAL.Recovered()
		if st.Records > 0 {
			s.met.reg.Counter("fl_recoveries_total", "runs resumed from a non-empty WAL").Inc()
		}
		if st.Weights != nil {
			global = cloneWeights(st.Weights)
		}
		startRound = st.LastRound + 1
		if st.Open != nil {
			startRound = st.Open.Round
			resume = st.Open
			s.cfg.Logf("fl server: resuming open round %d from WAL (%d tasked, %d updates recovered)",
				resume.Round, len(resume.Tasked), len(resume.Updates))
		} else if st.Records > 0 {
			s.cfg.Logf("fl server: resuming from WAL at round %d (last committed %d)", startRound, st.LastRound)
		}
	}

	for round := startRound; round < s.cfg.Rounds; round++ {
		start := s.cfg.Clock.Now()
		rec := RoundRecord{Round: round}
		updates, late, err := s.runRound(round, global, &rec, resume)
		resume = nil
		if err != nil {
			return nil, err
		}
		global, err = finalizeRound(s.cfg.Filters, s.cfg.Aggregator, s.cfg.AsyncAggregator,
			updates, late, round, global, &rec)
		if err != nil {
			return nil, err
		}
		rec.Duration = s.cfg.Clock.Since(start)
		var lossSum, weightSum float64
		for _, u := range updates {
			rec.Participants = append(rec.Participants, u.ClientName)
			lossSum += u.TrainLoss * float64(u.NumSamples)
			weightSum += float64(u.NumSamples)
		}
		if weightSum > 0 {
			rec.MeanTrainLoss = lossSum / weightSum
		}
		if s.cfg.WAL != nil {
			// The commit point: once RecModelCommit is durable (group
			// committed by the syncer, settled by Close) a restart starts
			// at round+1 and never re-runs this round. An unsynced commit
			// lost to a crash just re-runs the round from its durable
			// updates to the byte-identical model.
			if err := s.cfg.WAL.AppendRoundFinal(round, rec.Participants); err != nil {
				return nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
			if err := s.cfg.WAL.AppendModelCommit(round, global); err != nil {
				return nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
		}
		s.met.roundDone(&rec)
		if s.cfg.Validate != nil {
			score, err := s.cfg.Validate(global)
			if err != nil {
				return nil, fmt.Errorf("fl: round %d validate: %w", round, err)
			}
			rec.ValScore = score
			if res.History.BestRound < 0 || score > res.History.BestScore {
				res.History.BestRound = round
				res.History.BestScore = score
				res.BestWeights = cloneWeights(global)
			}
		}
		res.History.Rounds = append(res.History.Rounds, rec)
		s.cfg.Logf("fl server: round %d/%d done in %v (mean loss %.4f, %d/%d participants, %d up / %d down bytes)",
			round+1, s.cfg.Rounds, rec.Duration.Round(time.Millisecond), rec.MeanTrainLoss,
			len(rec.Participants), len(rec.Sampled), rec.BytesUp, rec.BytesDown)
	}

	// Distribute the final model and release the clients.
	blob, err := s.downCodec.Encode(global)
	if err != nil {
		return nil, err
	}
	res.History.FinishFailures = s.broadcast(&transport.Message{
		Type: transport.MsgFinish, Sender: s.kit.Name, Payload: blob,
	})
	// Framed wire totals (headers + metadata + gob overhead included),
	// complementing the per-round payload counters.
	s.mu.Lock()
	for _, c := range s.clients {
		res.History.WireBytesRead += c.conn.BytesRead()
		res.History.WireBytesWritten += c.conn.BytesWritten()
	}
	s.mu.Unlock()
	res.FinalWeights = global
	if res.BestWeights == nil {
		res.BestWeights = cloneWeights(global)
	}
	return res, nil
}

// sampleLive picks this round's task recipients among clients that are
// alive and not still chewing on an earlier round's task.
func (s *Server) sampleLive() []*serverClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	idle := make([]*serverClient, 0, len(s.clients))
	total := 0
	for _, c := range s.clients {
		if c.dead {
			continue
		}
		total++
		if c.taskedRound < 0 {
			idle = append(idle, c)
		}
	}
	// Deterministic shuffle order needs a stable starting order.
	for i := 1; i < len(idle); i++ {
		for j := i; j > 0 && idle[j].name < idle[j-1].name; j-- {
			idle[j], idle[j-1] = idle[j-1], idle[j]
		}
	}
	if s.cfg.SampleFraction <= 0 || s.cfg.SampleFraction >= 1 {
		return idle
	}
	k := int(math.Ceil(float64(total) * s.cfg.SampleFraction))
	if k < 1 {
		k = 1
	}
	if k > len(idle) {
		k = len(idle)
	}
	s.rng.Shuffle(len(idle), func(i, j int) { idle[i], idle[j] = idle[j], idle[i] })
	return idle[:k]
}

// runRound scatters the global model to this round's sampled clients and
// gathers their updates until everyone tasked replies, MinUpdates arrive,
// or the round deadline fires. Per-client send/receive errors land in
// rec.Failures — a failed client is recorded, never silently absent.
// When resume is non-nil (WAL recovery after a restart), the round's
// recorded updates are re-seeded and only the tasked-but-unheard clients
// are re-tasked.
func (s *Server) runRound(round int, global map[string]*tensor.Matrix, rec *RoundRecord, resume *durable.OpenRound) ([]*ClientUpdate, []*ClientUpdate, error) {
	blob, err := s.downCodec.Encode(global)
	if err != nil {
		return nil, nil, err
	}
	// Drain stragglers' replies that landed between rounds so they become
	// idle (sample-able) again and enter this round's staleness handling.
	var late []*ClientUpdate
drain:
	for {
		select {
		case in := <-s.inbox:
			if in.resume != nil {
				// No task is in flight yet this round: the re-attach just
				// revives the connection.
				s.handleResume(in.resume, round, nil, rec, nil, nil)
				continue
			}
			if s.clientGen(in.name) != in.gen {
				continue // stale delivery from a superseded connection
			}
			wasTasked := s.setTasked(in.name, -1)
			switch {
			case in.err != nil:
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, in.err))
				s.met.failure("conn")
				s.markDead(in.name)
			default:
				u, uerr := s.handleReply(in.name, in.msg)
				switch {
				case uerr != nil:
					rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, uerr))
					s.met.failure("reject")
				case wasTasked < 0:
					rec.Failures = append(rec.Failures, fmt.Sprintf("%s: unsolicited update (not tasked)", in.name))
					s.met.failure("reject")
				case s.cfg.AsyncAggregator != nil:
					// Staleness comes from the server-side task record,
					// never the client-supplied msg.Round. Payload bytes
					// are counted at merge time in finalizeRound.
					u.Round = wasTasked
					late = append(late, u)
				default:
					rec.LateDropped = append(rec.LateDropped, in.name)
				}
			}
		default:
			break drain
		}
	}

	// tasked / replied track this round's scatter so a mid-gather
	// re-attach knows whether to re-send the task; preSeeded carries a
	// resumed round's WAL-recovered updates straight into the aggregate.
	tasked := make(map[string]bool)
	replied := make(map[string]bool)
	var preSeeded []*ClientUpdate
	var sampled []*serverClient
	if resume != nil {
		for _, u := range resume.Updates {
			preSeeded = append(preSeeded, &ClientUpdate{
				ClientName: u.Client, Round: round, Weights: u.Weights,
				NumSamples: u.NumSamples, TrainLoss: u.TrainLoss,
				PayloadBytes: u.PayloadBytes,
			})
			replied[u.Client] = true
			rec.BytesUp += int64(u.PayloadBytes)
		}
		s.mu.Lock()
		for _, name := range resume.Tasked {
			rec.Sampled = append(rec.Sampled, name)
			tasked[name] = true
			if resume.HasUpdate(name) {
				continue
			}
			c, ok := s.clients[name]
			if !ok || c.dead {
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: tasked before crash, not reconnected", name))
				s.met.failure("conn")
				continue
			}
			sampled = append(sampled, c)
		}
		s.mu.Unlock()
	} else {
		sampled = s.sampleLive()
		if len(sampled) == 0 {
			return nil, nil, fmt.Errorf("fl: round %d: no live idle clients to task", round)
		}
		if s.cfg.WAL != nil {
			if err := s.cfg.WAL.AppendRoundOpen(round); err != nil {
				return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
			for _, c := range sampled {
				if err := s.cfg.WAL.AppendTaskAssigned(round, c.name); err != nil {
					return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
				}
			}
		}
	}
	// No fsync barrier before dispatch: the WAL's durable prefix is the
	// invariant. File order means an fsync that covers this round's open
	// also covers the previous round's commit, so replay can never pair a
	// new round with stale weights; a crash that loses the whole suffix
	// just re-opens the round and re-tasks it, and recomputation is
	// byte-identical. The background syncer flushes the scatter while the
	// clients train, keeping ~40MB/round of durability off the hot path.
	pending := 0
	for _, c := range sampled {
		if resume == nil {
			rec.Sampled = append(rec.Sampled, c.name)
			tasked[c.name] = true
		}
		task := &transport.Message{
			Type: transport.MsgTask, Sender: s.kit.Name, Round: round, Payload: blob,
			Meta: map[string]string{"round": strconv.Itoa(round)},
		}
		if err := c.conn.Write(task); err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: send task: %v", c.name, err))
			s.met.failure("send")
			s.markDead(c.name)
			continue
		}
		s.setTasked(c.name, round)
		rec.BytesDown += int64(len(blob))
		pending++
	}

	deadlineAt, deadlineCh := gatherDeadline(s.cfg.Clock, s.cfg.RoundDeadline)
	// The quorum is clamped to the sampled count, not to the clients whose
	// task send succeeded: send failures must count against an explicitly
	// configured floor, never silently lower it.
	sampleCount := len(sampled)
	if resume != nil {
		sampleCount = len(resume.Tasked)
	}
	quorum := s.cfg.MinClients
	if quorum > sampleCount {
		quorum = sampleCount
	}
	if quorum < 1 {
		quorum = 1
	}
	minUpdates := s.cfg.MinUpdates
	if avail := pending + len(preSeeded); minUpdates <= 0 || minUpdates > avail {
		minUpdates = avail
	}
	if minUpdates < quorum {
		// An early aggregate below the quorum would always fail it; wait
		// for the quorum before cutting the round short.
		minUpdates = quorum
	}

	updates := preSeeded
gather:
	for pending > 0 && len(updates) < minUpdates {
		in, status := waitRecv(s.cfg.Clock, s.inbox, nil, deadlineAt, deadlineCh)
		if status == waitDeadline {
			// Stragglers stay tasked; their replies drain as late
			// messages in a future round's gather.
			s.met.stragglers.Add(int64(pending))
			break gather
		}
		if in.resume != nil {
			pending += s.handleResume(in.resume, round, blob, rec, tasked, replied)
			continue
		}
		if s.clientGen(in.name) != in.gen {
			continue // stale delivery from a superseded connection
		}
		wasTasked := s.setTasked(in.name, -1)
		if in.err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, in.err))
			s.met.failure("conn")
			s.markDead(in.name)
			if wasTasked == round {
				pending--
			}
			continue
		}
		u, uerr := s.handleReply(in.name, in.msg)
		// Classify by the server-side task record, never the
		// client-supplied msg.Round: a tasked client sending a
		// malformed round must still release its pending slot, and an
		// untasked one must not be able to claim participation.
		switch {
		case uerr != nil:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, uerr))
			s.met.failure("reject")
			if wasTasked == round {
				pending--
			}
		case wasTasked == round:
			pending--
			u.Round = round
			replied[in.name] = true
			if s.cfg.WAL != nil {
				// Lazy append, group-committed by the WAL's syncer. A
				// crash that loses it re-tasks the client on resume, and
				// the recomputation is byte-identical.
				if err := s.cfg.WAL.AppendUpdate(round, u.ClientName, u.NumSamples,
					u.TrainLoss, u.PayloadBytes, u.Weights); err != nil {
					return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
				}
			}
			rec.BytesUp += int64(u.PayloadBytes)
			updates = append(updates, u)
		case wasTasked < 0:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: unsolicited update (not tasked)", in.name))
			s.met.failure("reject")
		case s.cfg.AsyncAggregator != nil:
			u.Round = wasTasked
			late = append(late, u)
		default:
			rec.LateDropped = append(rec.LateDropped, in.name)
		}
	}
	if len(updates) < quorum {
		return nil, nil, fmt.Errorf("fl: round %d quorum not met: %d/%d updates (failures: %v)",
			round, len(updates), quorum, rec.Failures)
	}
	if len(rec.Failures) > 0 || len(updates) < len(rec.Sampled) {
		s.cfg.Logf("fl server: round %d proceeded with %d/%d clients (failures: %v)",
			round, len(updates), len(rec.Sampled), rec.Failures)
	}
	return updates, late, nil
}

// handleReply turns one inbound message into a ClientUpdate.
func (s *Server) handleReply(name string, msg *transport.Message) (*ClientUpdate, error) {
	if msg.Type != transport.MsgUpdate {
		return nil, fmt.Errorf("expected update, got %s: %s", msg.Type, msg.Meta["error"])
	}
	// Enforce the top-k gate on the payload itself, not just at
	// negotiation: DecodeWeights sniffs any magic, so a client ignoring
	// the registration ack could otherwise push sparsified weights (most
	// of every parameter zeroed) straight into the average.
	if !s.cfg.AllowTopKUplink && bytes.HasPrefix(msg.Payload, []byte(topKMagic)) {
		return nil, errors.New("top-k update payload rejected (not negotiated; set AllowTopKUplink)")
	}
	weights, err := DecodeWeights(msg.Payload)
	if err != nil {
		return nil, err
	}
	loss, _ := strconv.ParseFloat(msg.Meta["train_loss"], 64)
	return &ClientUpdate{
		ClientName: name, Round: msg.Round, Weights: weights,
		NumSamples: msg.NumSamples, TrainLoss: loss,
		PayloadBytes: len(msg.Payload),
	}, nil
}

// setTasked updates a client's tasked round, returning the previous value.
func (s *Server) setTasked(name string, round int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[name]
	if !ok {
		return -1
	}
	prev := c.taskedRound
	c.taskedRound = round
	return prev
}

// markDead flags a client's connection as failed.
func (s *Server) markDead(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[name]; ok && !c.dead {
		c.dead = true
		s.met.connected.Add(-1)
	}
}

// broadcast best-effort sends msg to every live client, returning
// "client: error" strings for the ones it could not reach so the caller
// can record them in the Result.
func (s *Server) broadcast(msg *transport.Message) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var failures []string
	for name, c := range s.clients {
		if c.dead {
			failures = append(failures, fmt.Sprintf("%s: connection already failed", name))
			continue
		}
		if err := c.conn.Write(msg); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			s.cfg.Logf("fl server: broadcast to %q: %v", name, err)
		}
	}
	return failures
}
