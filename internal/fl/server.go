package fl

import (
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"sync"
	"time"

	"clinfl/internal/provision"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// ServerConfig parameterizes the networked FL server.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. ":8443" or "127.0.0.1:0").
	Addr string
	// ExpectedClients is how many registrations to wait for before
	// starting round 0.
	ExpectedClients int
	// RegisterTimeout bounds the registration phase.
	RegisterTimeout time.Duration
	// Controller settings reused round-by-round.
	Rounds       int
	RoundTimeout time.Duration
	Aggregator   Aggregator
	// Filters run over every client update before aggregation.
	Filters []Filter
	// Validate, if non-nil, scores each aggregated model for selection.
	Validate func(weights map[string]*tensor.Matrix) (float64, error)
	// VerifyToken authenticates a client's admission token (required).
	// Use (*provision.Project).VerifyToken in-process or
	// provision.TokenVerifier over a tokens file for disk-based kits.
	VerifyToken func(name, token string) bool
	// Logf receives progress lines (default log.Printf).
	Logf func(format string, args ...any)
}

// Server is the networked federation server: it terminates mutual-TLS
// connections from provisioned clients, verifies admission tokens, and
// drives the same scatter-and-gather workflow as the in-process Controller
// over the wire.
type Server struct {
	cfg ServerConfig
	kit *provision.StartupKit
	ln  net.Listener

	mu      sync.Mutex
	clients map[string]*transport.Conn
}

// NewServer builds a server from its startup kit.
func NewServer(cfg ServerConfig, kit *provision.StartupKit) (*Server, error) {
	if cfg.ExpectedClients <= 0 {
		return nil, errors.New("fl: server needs ExpectedClients > 0")
	}
	if cfg.VerifyToken == nil {
		return nil, errors.New("fl: server needs a VerifyToken function")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = FedAvg{}
	}
	if cfg.RegisterTimeout <= 0 {
		cfg.RegisterTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	tlsCfg, err := kit.ServerTLS()
	if err != nil {
		return nil, err
	}
	ln, err := transport.Listen(cfg.Addr, tlsCfg)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		kit:     kit,
		ln:      ln,
		clients: make(map[string]*transport.Conn),
	}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener and all client connections.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		_ = c.Close()
	}
	return err
}

// acceptClients runs the registration phase until ExpectedClients have
// presented valid tokens.
func (s *Server) acceptClients() error {
	deadline := time.Now().Add(s.cfg.RegisterTimeout)
	for {
		s.mu.Lock()
		n := len(s.clients)
		s.mu.Unlock()
		if n >= s.cfg.ExpectedClients {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fl: registration timed out with %d/%d clients", n, s.cfg.ExpectedClients)
		}
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := s.ln.(deadliner); ok {
			_ = d.SetDeadline(time.Now().Add(time.Second))
		}
		nc, err := s.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return fmt.Errorf("fl: accept: %w", err)
		}
		conn := transport.NewConn(nc)
		if err := s.register(conn); err != nil {
			s.cfg.Logf("fl server: rejected registration from %s: %v", conn.RemoteAddr(), err)
			_ = conn.Close()
		}
	}
}

// register handles one client's MsgRegister handshake.
func (s *Server) register(conn *transport.Conn) error {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	msg, err := conn.Read()
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	if msg.Type != transport.MsgRegister {
		return fmt.Errorf("fl: expected register, got %s", msg.Type)
	}
	if !s.cfg.VerifyToken(msg.Sender, msg.Token) {
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "bad token"},
		})
		return fmt.Errorf("fl: bad token from %q", msg.Sender)
	}
	s.mu.Lock()
	if _, dup := s.clients[msg.Sender]; dup {
		s.mu.Unlock()
		return fmt.Errorf("fl: duplicate client %q", msg.Sender)
	}
	s.clients[msg.Sender] = conn
	s.mu.Unlock()
	s.cfg.Logf("fl server: client %q registered (token ok)", msg.Sender)
	return conn.Write(&transport.Message{
		Type: transport.MsgRegisterAck, Sender: s.kit.Name,
		Meta: map[string]string{"accepted": "true"},
	})
}

// Run performs registration then E federated rounds, returning the result.
// Meta round parameters (epochs etc.) are the clients' concern: each client
// was provisioned with its own local config.
func (s *Server) Run(initialWeights map[string]*tensor.Matrix) (*Result, error) {
	if err := s.acceptClients(); err != nil {
		return nil, err
	}
	global := cloneWeights(initialWeights)
	res := &Result{History: History{BestRound: -1}}

	for round := 0; round < s.cfg.Rounds; round++ {
		start := time.Now()
		updates, err := s.runRound(round, global)
		if err != nil {
			return nil, err
		}
		if err := applyFilters(s.cfg.Filters, updates, global); err != nil {
			return nil, fmt.Errorf("fl: round %d: %w", round, err)
		}
		global, err = s.cfg.Aggregator.Aggregate(updates)
		if err != nil {
			return nil, fmt.Errorf("fl: round %d aggregate: %w", round, err)
		}
		rec := RoundRecord{Round: round, Duration: time.Since(start)}
		var lossSum, weightSum float64
		for _, u := range updates {
			rec.Participants = append(rec.Participants, u.ClientName)
			lossSum += u.TrainLoss * float64(u.NumSamples)
			weightSum += float64(u.NumSamples)
		}
		if weightSum > 0 {
			rec.MeanTrainLoss = lossSum / weightSum
		}
		if s.cfg.Validate != nil {
			score, err := s.cfg.Validate(global)
			if err != nil {
				return nil, fmt.Errorf("fl: round %d validate: %w", round, err)
			}
			rec.ValScore = score
			if res.History.BestRound < 0 || score > res.History.BestScore {
				res.History.BestRound = round
				res.History.BestScore = score
				res.BestWeights = cloneWeights(global)
			}
		}
		res.History.Rounds = append(res.History.Rounds, rec)
		s.cfg.Logf("fl server: round %d/%d done in %v (mean loss %.4f)",
			round+1, s.cfg.Rounds, rec.Duration.Round(time.Millisecond), rec.MeanTrainLoss)
	}

	// Distribute the final model and release the clients.
	blob, err := EncodeWeights(global)
	if err != nil {
		return nil, err
	}
	s.broadcast(&transport.Message{Type: transport.MsgFinish, Sender: s.kit.Name, Payload: blob})
	res.FinalWeights = global
	if res.BestWeights == nil {
		res.BestWeights = cloneWeights(global)
	}
	return res, nil
}

// runRound scatters the global model to every registered client and
// gathers their updates.
func (s *Server) runRound(round int, global map[string]*tensor.Matrix) ([]*ClientUpdate, error) {
	blob, err := EncodeWeights(global)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	conns := make(map[string]*transport.Conn, len(s.clients))
	for name, c := range s.clients {
		conns[name] = c
	}
	s.mu.Unlock()

	type outcome struct {
		update *ClientUpdate
		err    error
		name   string
	}
	results := make(chan outcome, len(conns))
	for name, conn := range conns {
		go func(name string, conn *transport.Conn) {
			task := &transport.Message{
				Type: transport.MsgTask, Sender: s.kit.Name, Round: round, Payload: blob,
				Meta: map[string]string{"round": strconv.Itoa(round)},
			}
			if err := conn.Write(task); err != nil {
				results <- outcome{err: err, name: name}
				return
			}
			if s.cfg.RoundTimeout > 0 {
				_ = conn.SetDeadline(time.Now().Add(s.cfg.RoundTimeout))
			}
			reply, err := conn.Read()
			_ = conn.SetDeadline(time.Time{})
			if err != nil {
				results <- outcome{err: err, name: name}
				return
			}
			if reply.Type != transport.MsgUpdate {
				results <- outcome{err: fmt.Errorf("expected update, got %s: %s", reply.Type, reply.Meta["error"]), name: name}
				return
			}
			weights, err := DecodeWeights(reply.Payload)
			if err != nil {
				results <- outcome{err: err, name: name}
				return
			}
			loss, _ := strconv.ParseFloat(reply.Meta["train_loss"], 64)
			results <- outcome{name: name, update: &ClientUpdate{
				ClientName: name, Round: round, Weights: weights,
				NumSamples: reply.NumSamples, TrainLoss: loss,
			}}
		}(name, conn)
	}

	var updates []*ClientUpdate
	var failures []string
	for i := 0; i < len(conns); i++ {
		o := <-results
		if o.err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", o.name, o.err))
			continue
		}
		updates = append(updates, o.update)
	}
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: round %d: no updates (failures: %v)", round, failures)
	}
	if len(failures) > 0 {
		s.cfg.Logf("fl server: round %d proceeded with %d/%d clients (failures: %v)",
			round, len(updates), len(conns), failures)
	}
	return updates, nil
}

// broadcast best-effort sends msg to every client.
func (s *Server) broadcast(msg *transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, conn := range s.clients {
		if err := conn.Write(msg); err != nil {
			s.cfg.Logf("fl server: broadcast to %q: %v", name, err)
		}
	}
}
