package fl

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clinfl/internal/fl/durable"
	"clinfl/internal/fl/hier"
	"clinfl/internal/fl/reconcile"
	"clinfl/internal/metrics"
	"clinfl/internal/provision"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// ServerConfig parameterizes the networked FL server. As with
// ControllerConfig, the zero value (plus Rounds/ExpectedClients) is the
// paper's synchronous scatter-gather; SampleFraction, MinUpdates and
// RoundDeadline make rounds straggler-tolerant, and Codec compresses the
// downlink weight payloads.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. ":8443" or "127.0.0.1:0").
	Addr string
	// ExpectedClients is how many registrations to wait for before
	// starting round 0.
	ExpectedClients int
	// RegisterTimeout bounds the registration phase.
	RegisterTimeout time.Duration
	// Rounds is E, the communication-round count.
	Rounds int
	// RoundDeadline bounds one round's gather; on expiry the round
	// aggregates whatever arrived and stragglers are handled by the
	// staleness policy. 0 falls back to RoundTimeout.
	RoundDeadline time.Duration
	// RoundTimeout is the legacy name for RoundDeadline (0 = no limit).
	RoundTimeout time.Duration
	// SampleFraction tasks a random subset of idle clients each round;
	// 0 or >= 1 tasks them all.
	SampleFraction float64
	// MinUpdates, when > 0, aggregates as soon as this many updates have
	// arrived instead of waiting for every tasked client.
	MinUpdates int
	// MinClients is the per-round quorum: a round that gathers fewer
	// successful updates fails the run. 0 keeps the legacy floor of one
	// update, so deadline rounds aggregate whatever arrived.
	MinClients int
	// Seed drives the client-sampling stream.
	Seed int64
	// Codec names the downlink weight codec for task/finish payloads
	// ("raw", "f32", "topk[:fraction]"); default raw. Each client's
	// uplink codec is its own choice, negotiated at registration.
	Codec string
	// AllowTopKUplink permits clients to negotiate the top-k sparsifying
	// uplink codec. Top-k transmits full weight maps, not deltas, so
	// ~(1-fraction) of every parameter decodes as zero and averages into
	// the global model; off by default, registration falls back to raw.
	AllowTopKUplink bool
	// Aggregator combines updates (default FedAvg).
	Aggregator Aggregator
	// AsyncAggregator, when non-nil, folds stragglers' late updates into
	// the global model with staleness weighting; nil drops them.
	AsyncAggregator AsyncAggregator
	// Filters run over every client update before aggregation.
	Filters []Filter
	// Validate, if non-nil, scores each aggregated model for selection.
	Validate func(weights map[string]*tensor.Matrix) (float64, error)
	// VerifyToken authenticates a client's admission token (required).
	// Use (*provision.Project).VerifyToken in-process or
	// provision.TokenVerifier over a tokens file for disk-based kits.
	VerifyToken func(name, token string) bool
	// Logf receives progress lines (default log.Printf).
	Logf func(format string, args ...any)
	// Listener, when non-nil, overrides Addr and the startup kit's TLS
	// stack with a caller-supplied transport — the simulator and the
	// fltest conformance kit pass a transport.MemNetwork here so the same
	// server logic runs over in-memory links with scripted faults.
	Listener transport.MessageListener
	// Clock supplies round timestamps and gather deadlines (default: real
	// wall clock).
	Clock Clock
	// WAL, when non-nil, makes the run durable: round lifecycle events are
	// appended and fsync'd before the run proceeds, client sessions are
	// recorded so reconnects can re-attach after a server restart, and Run
	// resumes from the WAL's recovered state — the last committed model
	// plus any open round's already-received updates.
	WAL *durable.WAL
	// Metrics, when non-nil, receives round/byte/failure/straggler/resume
	// counters, the round-duration histogram, and the connected-clients
	// gauge. Nil disables metrics at zero cost.
	Metrics *metrics.Registry
	// Reconcile, when non-nil, turns on the reconciliation control plane:
	// per-client health tracking with MsgPing/MsgPong recovery probes,
	// requeue-with-backoff of failed task assignments (send errors,
	// execution errors, dropped connections), and degradation modes for
	// mass failure. Nil keeps the legacy single-shot round behavior.
	Reconcile *ReconcilePolicy
	// Tier, when non-nil, accepts partial-aggregate uplinks from hier.Edge
	// nodes and aggregates through a TierAggregator: each registered
	// "client" may be an edge fronting a shard of real clients, so the
	// root holds O(edges * model) state instead of O(clients * model), and
	// Participants in the round record are the edge names. A mixed fleet
	// (edges plus plain clients) is supported. Nil keeps the legacy flat
	// path bit-for-bit unchanged and rejects partial payloads.
	Tier *TierConfig
}

// serverClient is one registered client's connection state. Reads happen
// on a dedicated reader goroutine feeding the server inbox; writes happen
// only from the Run goroutine, so the Conn's one-reader/one-writer
// contract holds.
type serverClient struct {
	name string
	conn transport.MessageConn
	// token is the session token issued at registration; a reconnecting
	// client presents it to re-attach (transport.MetaSession).
	token string
	// gen counts connection generations. Each re-attach bumps it, and
	// inbox messages carry the generation their reader was started with,
	// so messages from a superseded connection are recognized as stale.
	gen int
	// taskedRound is the round the client is currently working on
	// (-1 when idle). A straggler stays tasked — and excluded from
	// sampling — until its reply or its connection error drains in.
	taskedRound int
	// dead marks a failed connection; dead clients are skipped.
	dead bool
}

// inboxMsg is one reader goroutine's delivery: a message or a terminal
// connection error, or (from the accept loop) a vetted reconnect to
// re-attach on the Run goroutine.
type inboxMsg struct {
	name string
	gen  int
	msg  *transport.Message
	err  error
	// resume, when non-nil, is a vetted mid-run reconnect; the other
	// fields are unused.
	resume *resumeConn
}

// resumeConn is a reconnecting client that passed admission and session
// checks in the accept loop; the Run goroutine completes the re-attach.
type resumeConn struct {
	name  string
	token string
	codec string
	conn  transport.MessageConn
}

// Server is the networked federation server: it terminates mutual-TLS
// connections from provisioned clients, verifies admission tokens, and
// drives the same straggler-tolerant scatter-and-gather workflow as the
// in-process Controller over the wire.
type Server struct {
	cfg       ServerConfig
	kit       *provision.StartupKit
	ln        transport.MessageListener
	downCodec WeightCodec
	rng       *tensor.RNG
	tokenRNG  *tensor.RNG
	inbox     chan inboxMsg
	met       flMetrics
	// mon / pol are the reconciliation state machine and its policy, nil /
	// zero without cfg.Reconcile. The monitor is only touched from the Run
	// goroutine, like the rest of the round state.
	mon *reconcile.Monitor
	pol ReconcilePolicy

	mu      sync.Mutex
	clients map[string]*serverClient
	// sessions maps client name to issued session token; recovered from
	// the WAL on restart so pre-crash clients can re-attach.
	sessions map[string]string
}

// NewServer builds a server from its startup kit.
func NewServer(cfg ServerConfig, kit *provision.StartupKit) (*Server, error) {
	if cfg.ExpectedClients <= 0 {
		return nil, errors.New("fl: server needs ExpectedClients > 0")
	}
	if cfg.VerifyToken == nil {
		return nil, errors.New("fl: server needs a VerifyToken function")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = cfg.RoundTimeout
	}
	if err := validateTier(cfg.Tier, cfg.Aggregator, cfg.AsyncAggregator,
		cfg.Filters, cfg.WAL, cfg.Reconcile); err != nil {
		return nil, err
	}
	if cfg.Tier != nil {
		// The tier root merges edge partials and folds plain updates in one
		// streaming pass; exactness makes the result identical to flat
		// FedAvg over every leaf.
		cfg.Aggregator = &TierAggregator{}
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = FedAvg{}
	}
	if cfg.RegisterTimeout <= 0 {
		cfg.RegisterTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	downCodec, err := CodecByName(cfg.Codec)
	if err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		tlsCfg, err := kit.ServerTLS()
		if err != nil {
			return nil, err
		}
		ln, err = transport.ListenMessages(cfg.Addr, tlsCfg)
		if err != nil {
			return nil, err
		}
	}
	sessions := make(map[string]string)
	if cfg.WAL != nil {
		for name, token := range cfg.WAL.Recovered().Sessions {
			sessions[name] = token
		}
	}
	var mon *reconcile.Monitor
	var pol ReconcilePolicy
	if cfg.Reconcile != nil {
		pol = cfg.Reconcile.withDefaults()
		mon = pol.monitor()
	}
	return &Server{
		cfg:       cfg,
		kit:       kit,
		ln:        ln,
		downCodec: downCodec,
		rng:       tensor.NewRNG(cfg.Seed + 7919),
		// The token stream is independent of the sampling stream so adding
		// session tokens never perturbs which clients a seeded run samples.
		tokenRNG: tensor.NewRNG(cfg.Seed + 2654435761),
		met:      newFLMetrics(cfg.Metrics),
		mon:      mon,
		pol:      pol,
		// Buffered so reader goroutines never block on a drained server:
		// a cooperative client has at most one reply outstanding (it is
		// not re-tasked until that reply drains) plus one terminal error,
		// with headroom for reconnect deliveries.
		inbox:    make(chan inboxMsg, 4*cfg.ExpectedClients),
		clients:  make(map[string]*serverClient),
		sessions: sessions,
	}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener and all client connections.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		_ = c.conn.Close()
	}
	return err
}

// acceptClients runs the registration phase until ExpectedClients have
// presented valid tokens.
func (s *Server) acceptClients() error {
	// Registration is pure socket I/O, so its timeout is wall time even
	// when a simulated Clock drives the rounds: a virtual clock only
	// advances inside round gathers, and a registration deadline measured
	// against it would never fire.
	deadline := time.Now().Add(s.cfg.RegisterTimeout)
	for {
		s.mu.Lock()
		n := len(s.clients)
		s.mu.Unlock()
		if n >= s.cfg.ExpectedClients {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fl: registration timed out with %d/%d clients", n, s.cfg.ExpectedClients)
		}
		// The per-accept deadline is wall time: it bounds socket waits so
		// the registration loop can re-check its own (clock-driven)
		// timeout, not a simulated quantity.
		_ = s.ln.SetDeadline(time.Now().Add(time.Second))
		conn, err := s.ln.AcceptConn()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return fmt.Errorf("fl: accept: %w", err)
		}
		if err := s.register(conn); err != nil {
			s.cfg.Logf("fl server: rejected registration from %s: %v", conn.RemoteAddr(), err)
			_ = conn.Close()
		}
	}
}

// negotiateCodec resolves a registration's requested uplink codec: the
// client's choice is accepted if known (and, for top-k, explicitly
// allowed), with a fallback to raw.
func (s *Server) negotiateCodec(msg *transport.Message) string {
	codecName := msg.Meta[transport.MetaCodec]
	if _, err := CodecByName(codecName); err != nil {
		s.cfg.Logf("fl server: client %q requested unknown codec %q, falling back to raw", msg.Sender, codecName)
		codecName = "raw"
	} else if codecName == "" {
		codecName = "raw"
	}
	if strings.HasPrefix(codecName, "topk") && !s.cfg.AllowTopKUplink {
		s.cfg.Logf("fl server: client %q requested top-k uplink codec %q: rejected (top-k zeroes most of a full weight map; set AllowTopKUplink to accept), falling back to raw", msg.Sender, codecName)
		codecName = "raw"
	}
	return codecName
}

// register handles one client's MsgRegister handshake: admission-token
// verification, uplink codec negotiation, and session issuance. A new
// client is issued a session token (durably recorded before the ack when
// a WAL is configured); a returning client presenting its token — after a
// server restart, or redialing during the registration window — re-attaches
// to its session instead of being rejected as a duplicate.
func (s *Server) register(conn transport.MessageConn) error {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	msg, err := conn.Read()
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	if msg.Type != transport.MsgRegister {
		return fmt.Errorf("fl: expected register, got %s", msg.Type)
	}
	if !s.cfg.VerifyToken(msg.Sender, msg.Token) {
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "bad token"},
		})
		return fmt.Errorf("fl: bad token from %q", msg.Sender)
	}
	codecName := s.negotiateCodec(msg)
	sess := msg.Meta[transport.MetaSession]
	resumed := sess != ""
	s.mu.Lock()
	if resumed && sess != s.sessions[msg.Sender] {
		s.mu.Unlock()
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "unknown session"},
		})
		return fmt.Errorf("fl: unknown session from %q", msg.Sender)
	}
	if !resumed {
		sess = fmt.Sprintf("%016x", s.tokenRNG.Rand().Int63())
		s.sessions[msg.Sender] = sess
	}
	c, exists := s.clients[msg.Sender]
	if exists && !resumed {
		s.mu.Unlock()
		return fmt.Errorf("fl: duplicate client %q", msg.Sender)
	}
	if exists {
		if c.conn != nil {
			_ = c.conn.Close()
		}
		c.conn = conn
		c.gen++
		c.dead = false
	} else {
		s.clients[msg.Sender] = &serverClient{name: msg.Sender, conn: conn, token: sess, taskedRound: -1}
	}
	s.mu.Unlock()
	if !resumed && s.cfg.WAL != nil {
		if err := s.cfg.WAL.AppendSession(msg.Sender, sess); err != nil {
			return err
		}
	}
	if resumed {
		s.met.resumes.Inc()
		s.cfg.Logf("fl server: client %q session resumed (uplink codec %s)", msg.Sender, codecName)
	} else {
		s.cfg.Logf("fl server: client %q registered (token ok, uplink codec %s)", msg.Sender, codecName)
	}
	return conn.Write(&transport.Message{
		Type: transport.MsgRegisterAck, Sender: s.kit.Name,
		Meta: map[string]string{
			"accepted": "true", transport.MetaCodec: codecName, transport.MetaSession: sess,
		},
	})
}

// readLoop forwards conn's inbound messages (and finally its terminal
// read error) into the server inbox, tagged with the connection generation
// the reader was started under, so the Run goroutine can discard
// deliveries from a superseded connection after a session re-attach. conn
// is a parameter, never read from the shared client entry: the entry's
// conn is swapped on resume, and this reader must keep draining the
// connection it was born with.
func (s *Server) readLoop(name string, conn transport.MessageConn, gen int) {
	for {
		msg, err := conn.Read()
		if err != nil {
			s.inbox <- inboxMsg{name: name, gen: gen, err: err}
			return
		}
		s.inbox <- inboxMsg{name: name, gen: gen, msg: msg}
	}
}

// startReaders launches one reader goroutine per registered client, so a
// straggler's late reply is never stranded in a socket buffer and a dead
// connection is reported, not silently absent.
func (s *Server) startReaders() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		go s.readLoop(c.name, c.conn, c.gen)
	}
}

// acceptLoop keeps accepting connections after the registration window so
// clients that lost their connection mid-run can re-attach. Admission and
// session validation happen here, off the round loop; the actual
// re-attach — swapping the connection, restarting the reader, re-sending
// an in-flight task — is posted to the inbox and performed by the Run
// goroutine, which owns all connection writes. The loop ends when the
// listener closes.
func (s *Server) acceptLoop() {
	_ = s.ln.SetDeadline(time.Time{})
	for {
		conn, err := s.ln.AcceptConn()
		if err != nil {
			return
		}
		go func(conn transport.MessageConn) {
			r, err := s.vetReconnect(conn)
			if err != nil {
				s.cfg.Logf("fl server: rejected reconnect from %s: %v", conn.RemoteAddr(), err)
				_ = conn.Close()
				return
			}
			s.inbox <- inboxMsg{name: r.name, resume: r}
		}(conn)
	}
}

// vetReconnect reads and validates a mid-run registration: the admission
// token must verify and the presented session token must match the one
// issued (or recovered from the WAL). New clients cannot join mid-run.
func (s *Server) vetReconnect(conn transport.MessageConn) (*resumeConn, error) {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	msg, err := conn.Read()
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	if msg.Type != transport.MsgRegister {
		return nil, fmt.Errorf("fl: expected register, got %s", msg.Type)
	}
	if !s.cfg.VerifyToken(msg.Sender, msg.Token) {
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "bad token"},
		})
		return nil, fmt.Errorf("fl: bad token from %q", msg.Sender)
	}
	sess := msg.Meta[transport.MetaSession]
	s.mu.Lock()
	known := s.sessions[msg.Sender]
	s.mu.Unlock()
	if sess == "" || sess != known {
		_ = conn.Write(&transport.Message{
			Type: transport.MsgRegisterAck, Sender: s.kit.Name,
			Meta: map[string]string{"accepted": "false", "reason": "unknown session"},
		})
		return nil, fmt.Errorf("fl: reconnect from %q without a valid session", msg.Sender)
	}
	return &resumeConn{name: msg.Sender, token: sess, codec: s.negotiateCodec(msg), conn: conn}, nil
}

// handleResume completes a vetted reconnect on the Run goroutine: the
// client's connection is swapped, its reader restarted under a bumped
// generation (messages from the dead connection become stale), and — when
// the client was tasked this round and its update has not arrived — the
// current task is re-sent so the round can still complete. The return
// value is the delta to the gather's pending count: +1 when a client whose
// pending slot was already released (its failure drained) is re-tasked,
// -1 when a still-pending client's re-attach fails.
func (s *Server) handleResume(r *resumeConn, round int, blob []byte, rec *RoundRecord, tasked, replied map[string]bool) int {
	slotHeld, ok := s.reattach(r, round, rec)
	release := 0
	if slotHeld {
		release = -1 // the slot stays held only if the re-attach fully succeeds
	}
	if !ok {
		return release
	}
	if !tasked[r.name] || replied[r.name] || blob == nil {
		return release // idle (or already heard from): nothing to re-send
	}
	task := &transport.Message{
		Type: transport.MsgTask, Sender: s.kit.Name, Round: round, Payload: blob,
		Meta: map[string]string{"round": strconv.Itoa(round)},
	}
	if err := r.conn.Write(task); err != nil {
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: resend task: %v", r.name, err))
		s.met.failure("send")
		s.markDead(r.name)
		return release
	}
	s.setTasked(r.name, round)
	rec.BytesDown += int64(len(blob))
	if slotHeld {
		return 0
	}
	return 1
}

// reattach performs the connection-swap half of a vetted reconnect: the
// client's connection is replaced, its reader restarted under a bumped
// generation (messages from the dead connection become stale), and the
// registration ack written. It reports whether the client's task slot for
// round was held before the swap and whether the re-attach succeeded.
func (s *Server) reattach(r *resumeConn, round int, rec *RoundRecord) (slotHeld, ok bool) {
	s.mu.Lock()
	c, known := s.clients[r.name]
	if !known {
		c = &serverClient{name: r.name, token: r.token, taskedRound: -1}
		s.clients[r.name] = c
	}
	old := c.conn
	wasDead := c.dead
	slotHeld = c.taskedRound == round
	c.conn = r.conn
	c.gen++
	gen := c.gen
	c.dead = false
	c.taskedRound = -1
	s.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	ack := &transport.Message{
		Type: transport.MsgRegisterAck, Sender: s.kit.Name,
		Meta: map[string]string{
			"accepted": "true", transport.MetaCodec: r.codec, transport.MetaSession: r.token,
		},
	}
	if err := r.conn.Write(ack); err != nil {
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: resume ack: %v", r.name, err))
		s.met.failure("conn")
		s.markDead(r.name)
		return slotHeld, false
	}
	go s.readLoop(r.name, r.conn, gen)
	s.met.resumes.Inc()
	if wasDead {
		s.met.connected.Add(1)
	}
	s.cfg.Logf("fl server: client %q session resumed mid-run", r.name)
	return slotHeld, true
}

// clientGen returns a client's current connection generation (-1 when
// unknown).
func (s *Server) clientGen(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[name]; ok {
		return c.gen
	}
	return -1
}

// Run performs registration then E federated rounds, returning the result.
// Meta round parameters (epochs etc.) are the clients' concern: each client
// was provisioned with its own local config.
func (s *Server) Run(initialWeights map[string]*tensor.Matrix) (*Result, error) {
	if err := s.acceptClients(); err != nil {
		return nil, err
	}
	s.startReaders()
	go s.acceptLoop()
	s.mu.Lock()
	s.met.connected.Set(float64(len(s.clients)))
	s.mu.Unlock()
	global := cloneWeights(initialWeights)
	res := &Result{History: History{BestRound: -1}}

	// A durable run picks up where the WAL left off: the last committed
	// model replaces initialWeights, and a round open at the crash is
	// resumed with its recorded updates re-seeded.
	startRound := 0
	var resume *durable.OpenRound
	if s.cfg.WAL != nil {
		st := s.cfg.WAL.Recovered()
		if st.Records > 0 {
			s.met.reg.Counter("fl_recoveries_total", "runs resumed from a non-empty WAL").Inc()
		}
		if st.Weights != nil {
			global = cloneWeights(st.Weights)
		}
		startRound = st.LastRound + 1
		if st.Open != nil {
			startRound = st.Open.Round
			resume = st.Open
			s.cfg.Logf("fl server: resuming open round %d from WAL (%d tasked, %d updates recovered)",
				resume.Round, len(resume.Tasked), len(resume.Updates))
		} else if st.Records > 0 {
			s.cfg.Logf("fl server: resuming from WAL at round %d (last committed %d)", startRound, st.LastRound)
		}
		// Replayed quarantine decisions take effect before any sampling: a
		// crash must not resurrect a quarantined client into the pool.
		if s.mon != nil {
			for name, state := range st.Health {
				if state == reconcile.Quarantined.String() {
					s.mon.SetQuarantined(name)
				}
			}
			s.met.syncHealthGauges(s.mon)
		}
	}

	for round := startRound; round < s.cfg.Rounds; round++ {
		start := s.cfg.Clock.Now()
		rec := RoundRecord{Round: round}
		updates, late, err := s.runRound(round, global, &rec, resume)
		resume = nil
		if err != nil {
			return nil, err
		}
		global, err = finalizeRound(s.cfg.Filters, s.cfg.Aggregator, s.cfg.AsyncAggregator,
			updates, late, round, global, &rec)
		if err != nil {
			return nil, err
		}
		if ta, ok := s.cfg.Aggregator.(*TierAggregator); ok {
			rec.TierPartials = ta.Partials
			rec.TierBytesUp = ta.TierBytes
			rec.TierResidentBytes = ta.ResidentBytes
		}
		rec.Duration = s.cfg.Clock.Since(start)
		var lossSum, weightSum float64
		for _, u := range updates {
			rec.Participants = append(rec.Participants, u.ClientName)
			lossSum += u.TrainLoss * float64(u.NumSamples)
			weightSum += float64(u.NumSamples)
		}
		if weightSum > 0 {
			rec.MeanTrainLoss = lossSum / weightSum
		}
		if s.cfg.WAL != nil {
			// The commit point: once RecModelCommit is durable (group
			// committed by the syncer, settled by Close) a restart starts
			// at round+1 and never re-runs this round. An unsynced commit
			// lost to a crash just re-runs the round from its durable
			// updates to the byte-identical model.
			if err := s.cfg.WAL.AppendRoundFinal(round, rec.Participants); err != nil {
				return nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
			if err := s.cfg.WAL.AppendModelCommit(round, global); err != nil {
				return nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
		}
		s.met.roundDone(&rec)
		if s.cfg.Validate != nil {
			score, err := s.cfg.Validate(global)
			if err != nil {
				return nil, fmt.Errorf("fl: round %d validate: %w", round, err)
			}
			rec.ValScore = score
			if res.History.BestRound < 0 || score > res.History.BestScore {
				res.History.BestRound = round
				res.History.BestScore = score
				res.BestWeights = cloneWeights(global)
			}
		}
		res.History.Rounds = append(res.History.Rounds, rec)
		s.cfg.Logf("fl server: round %d/%d done in %v (mean loss %.4f, %d/%d participants, %d up / %d down bytes)",
			round+1, s.cfg.Rounds, rec.Duration.Round(time.Millisecond), rec.MeanTrainLoss,
			len(rec.Participants), len(rec.Sampled), rec.BytesUp, rec.BytesDown)
	}

	// Distribute the final model and release the clients.
	blob, err := s.downCodec.Encode(global)
	if err != nil {
		return nil, err
	}
	res.History.FinishFailures = s.broadcast(&transport.Message{
		Type: transport.MsgFinish, Sender: s.kit.Name, Payload: blob,
	})
	// Framed wire totals (headers + metadata + gob overhead included),
	// complementing the per-round payload counters.
	s.mu.Lock()
	for _, c := range s.clients {
		res.History.WireBytesRead += c.conn.BytesRead()
		res.History.WireBytesWritten += c.conn.BytesWritten()
	}
	s.mu.Unlock()
	res.FinalWeights = global
	if res.BestWeights == nil {
		res.BestWeights = cloneWeights(global)
	}
	if s.mon != nil {
		res.Health = s.mon.Snapshot()
	}
	return res, nil
}

// sampleLive picks this round's task recipients among clients that are
// alive, not still chewing on an earlier round's task and — under a
// ReconcilePolicy — health-eligible: Unreachable/Quarantined clients stay
// out of the pool until a recovery probe succeeds.
func (s *Server) sampleLive() []*serverClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	idle := make([]*serverClient, 0, len(s.clients))
	total := 0
	for _, c := range s.clients {
		if c.dead {
			continue
		}
		total++
		if s.mon != nil && !s.mon.Eligible(c.name) {
			continue
		}
		if c.taskedRound < 0 {
			idle = append(idle, c)
		}
	}
	// Deterministic shuffle order needs a stable starting order.
	for i := 1; i < len(idle); i++ {
		for j := i; j > 0 && idle[j].name < idle[j-1].name; j-- {
			idle[j], idle[j-1] = idle[j-1], idle[j]
		}
	}
	if s.cfg.SampleFraction <= 0 || s.cfg.SampleFraction >= 1 {
		return idle
	}
	k := int(math.Ceil(float64(total) * s.cfg.SampleFraction))
	if k < 1 {
		k = 1
	}
	if k > len(idle) {
		k = len(idle)
	}
	s.rng.Shuffle(len(idle), func(i, j int) { idle[i], idle[j] = idle[j], idle[i] })
	return idle[:k]
}

// runRound scatters the global model to this round's sampled clients and
// gathers their updates until everyone tasked replies, MinUpdates arrive,
// or the round deadline fires. Per-client send/receive errors land in
// rec.Failures — a failed client is recorded, never silently absent.
// When resume is non-nil (WAL recovery after a restart), the round's
// recorded updates are re-seeded and only the tasked-but-unheard clients
// are re-tasked.
func (s *Server) runRound(round int, global map[string]*tensor.Matrix, rec *RoundRecord, resume *durable.OpenRound) ([]*ClientUpdate, []*ClientUpdate, error) {
	blob, err := s.downCodec.Encode(global)
	if err != nil {
		return nil, nil, err
	}
	// Drain stragglers' replies that landed between rounds so they become
	// idle (sample-able) again and enter this round's staleness handling.
	var late []*ClientUpdate
drain:
	for {
		select {
		case in := <-s.inbox:
			if s.mon != nil {
				if err := s.absorbStale(in, round, rec, &late); err != nil {
					return nil, nil, err
				}
				continue
			}
			if in.resume != nil {
				// No task is in flight yet this round: the re-attach just
				// revives the connection.
				s.handleResume(in.resume, round, nil, rec, nil, nil)
				continue
			}
			if s.clientGen(in.name) != in.gen {
				continue // stale delivery from a superseded connection
			}
			wasTasked := s.setTasked(in.name, -1)
			switch {
			case in.err != nil:
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, in.err))
				s.met.failure("conn")
				s.markDead(in.name)
			default:
				u, uerr := s.handleReply(in.name, in.msg)
				switch {
				case uerr != nil:
					rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, uerr))
					s.met.failure("reject")
				case wasTasked < 0:
					rec.Failures = append(rec.Failures, fmt.Sprintf("%s: unsolicited update (not tasked)", in.name))
					s.met.failure("reject")
				case s.cfg.AsyncAggregator != nil:
					// Staleness comes from the server-side task record,
					// never the client-supplied msg.Round. Payload bytes
					// are counted at merge time in finalizeRound.
					u.Round = wasTasked
					late = append(late, u)
				default:
					rec.LateDropped = append(rec.LateDropped, in.name)
				}
			}
		default:
			break drain
		}
	}

	// tasked / replied track this round's scatter so a mid-gather
	// re-attach knows whether to re-send the task; preSeeded carries a
	// resumed round's WAL-recovered updates straight into the aggregate.
	tasked := make(map[string]bool)
	replied := make(map[string]bool)
	var preSeeded []*ClientUpdate
	var sampled []*serverClient
	if resume != nil {
		for _, u := range resume.Updates {
			preSeeded = append(preSeeded, &ClientUpdate{
				ClientName: u.Client, Round: round, Weights: u.Weights,
				NumSamples: u.NumSamples, TrainLoss: u.TrainLoss,
				PayloadBytes: u.PayloadBytes,
			})
			replied[u.Client] = true
			rec.BytesUp += int64(u.PayloadBytes)
		}
		s.mu.Lock()
		for _, name := range resume.Tasked {
			rec.Sampled = append(rec.Sampled, name)
			tasked[name] = true
			if resume.HasUpdate(name) {
				continue
			}
			c, ok := s.clients[name]
			if !ok || c.dead {
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: tasked before crash, not reconnected", name))
				s.met.failure("conn")
				continue
			}
			if s.mon != nil && !s.mon.Eligible(name) {
				// Quarantined by a replayed health record: the pre-crash
				// task assignment does not override the quarantine.
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: quarantined, not re-tasked on resume", name))
				s.met.failure("exec")
				continue
			}
			sampled = append(sampled, c)
		}
		s.mu.Unlock()
	} else {
		sampled = s.sampleLive()
		if s.mon != nil && len(sampled) == 0 {
			// Mass failure: every client is demoted (or dead). Park the
			// round until recovery probes readmit someone instead of
			// failing.
			if err := s.parkUntilEligible(round, rec, &late); err != nil {
				return nil, nil, err
			}
			sampled = s.sampleLive()
		}
		if len(sampled) == 0 {
			return nil, nil, fmt.Errorf("fl: round %d: no live idle clients to task", round)
		}
		if s.cfg.WAL != nil {
			if err := s.cfg.WAL.AppendRoundOpen(round); err != nil {
				return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
			for _, c := range sampled {
				if err := s.cfg.WAL.AppendTaskAssigned(round, c.name); err != nil {
					return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
				}
			}
		}
	}
	// No fsync barrier before dispatch: the WAL's durable prefix is the
	// invariant. File order means an fsync that covers this round's open
	// also covers the previous round's commit, so replay can never pair a
	// new round with stale weights; a crash that loses the whole suffix
	// just re-opens the round and re-tasks it, and recomputation is
	// byte-identical. The background syncer flushes the scatter while the
	// clients train, keeping ~40MB/round of durability off the hot path.
	pending := 0
	var failedSends []string
	for _, c := range sampled {
		if resume == nil {
			rec.Sampled = append(rec.Sampled, c.name)
			tasked[c.name] = true
		}
		task := &transport.Message{
			Type: transport.MsgTask, Sender: s.kit.Name, Round: round, Payload: blob,
			Meta: map[string]string{"round": strconv.Itoa(round)},
		}
		if err := c.conn.Write(task); err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: send task: %v", c.name, err))
			s.met.failure("send")
			s.markDead(c.name)
			if s.mon != nil {
				if err := s.healthEdge(round, s.mon.Observe(c.name, false, s.cfg.Clock.Now())); err != nil {
					return nil, nil, err
				}
				failedSends = append(failedSends, c.name)
			}
			continue
		}
		s.setTasked(c.name, round)
		rec.BytesDown += int64(len(blob))
		pending++
	}
	// The quorum is clamped to the sampled count, not to the clients whose
	// task send succeeded: send failures must count against an explicitly
	// configured floor, never silently lower it.
	sampleCount := len(sampled)
	if resume != nil {
		sampleCount = len(resume.Tasked)
	}
	quorum := s.cfg.MinClients
	if quorum > sampleCount {
		quorum = sampleCount
	}
	if quorum < 1 {
		quorum = 1
	}
	minUpdates := s.cfg.MinUpdates
	if avail := pending + len(preSeeded); minUpdates <= 0 || minUpdates > avail {
		minUpdates = avail
	}
	if minUpdates < quorum {
		// An early aggregate below the quorum would always fail it; wait
		// for the quorum before cutting the round short.
		minUpdates = quorum
	}

	updates := preSeeded
	if s.mon != nil {
		return s.reconcileGather(round, blob, rec, updates, late, failedSends, pending, quorum, minUpdates)
	}
	deadlineAt, deadlineCh := gatherDeadline(s.cfg.Clock, s.cfg.RoundDeadline)
gather:
	for pending > 0 && len(updates) < minUpdates {
		in, status := waitRecv(s.cfg.Clock, s.inbox, nil, deadlineAt, deadlineCh)
		if status == waitDeadline {
			// Stragglers stay tasked; their replies drain as late
			// messages in a future round's gather.
			s.met.stragglers.Add(int64(pending))
			break gather
		}
		if in.resume != nil {
			pending += s.handleResume(in.resume, round, blob, rec, tasked, replied)
			continue
		}
		if s.clientGen(in.name) != in.gen {
			continue // stale delivery from a superseded connection
		}
		wasTasked := s.setTasked(in.name, -1)
		if in.err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, in.err))
			s.met.failure("conn")
			s.markDead(in.name)
			if wasTasked == round {
				pending--
			}
			continue
		}
		u, uerr := s.handleReply(in.name, in.msg)
		// Classify by the server-side task record, never the
		// client-supplied msg.Round: a tasked client sending a
		// malformed round must still release its pending slot, and an
		// untasked one must not be able to claim participation.
		switch {
		case uerr != nil:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, uerr))
			s.met.failure("reject")
			if wasTasked == round {
				pending--
			}
		case wasTasked == round:
			pending--
			u.Round = round
			replied[in.name] = true
			if s.cfg.WAL != nil {
				// Lazy append, group-committed by the WAL's syncer. A
				// crash that loses it re-tasks the client on resume, and
				// the recomputation is byte-identical.
				if err := s.cfg.WAL.AppendUpdate(round, u.ClientName, u.NumSamples,
					u.TrainLoss, u.PayloadBytes, u.Weights); err != nil {
					return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
				}
			}
			rec.BytesUp += int64(u.PayloadBytes)
			updates = append(updates, u)
		case wasTasked < 0:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: unsolicited update (not tasked)", in.name))
			s.met.failure("reject")
		case s.cfg.AsyncAggregator != nil:
			u.Round = wasTasked
			late = append(late, u)
		default:
			rec.LateDropped = append(rec.LateDropped, in.name)
		}
	}
	if len(updates) < quorum {
		return nil, nil, fmt.Errorf("fl: round %d quorum not met: %d/%d updates (failures: %v)",
			round, len(updates), quorum, rec.Failures)
	}
	if len(rec.Failures) > 0 || len(updates) < len(rec.Sampled) {
		s.cfg.Logf("fl server: round %d proceeded with %d/%d clients (failures: %v)",
			round, len(updates), len(rec.Sampled), rec.Failures)
	}
	return updates, late, nil
}

// healthEdge records a health transition in metrics and — for the durable
// pool-membership edges, quarantine entry and the rejoin clearing it — in
// the WAL.
func (s *Server) healthEdge(round int, tr reconcile.Transition) error {
	if !tr.Changed() {
		return nil
	}
	s.met.healthTransition(s.mon, tr)
	if s.cfg.WAL != nil && (tr.To == reconcile.Quarantined || tr.From == reconcile.Quarantined) {
		if err := s.cfg.WAL.AppendHealth(round, tr.Client, tr.To.String()); err != nil {
			return fmt.Errorf("fl: round %d: %w", round, err)
		}
	}
	return nil
}

// sendPing fires a recovery probe at a demoted client: a MsgPing whose
// MsgPong answer resolves the probe in the gather (or park) loop. A dead
// or unwritable connection fails the probe immediately, backing off the
// next one — the client rejoins by reconnecting and answering a later
// ping.
func (s *Server) sendPing(round int, name string) error {
	s.mu.Lock()
	c, ok := s.clients[name]
	var conn transport.MessageConn
	dead := true
	if ok {
		conn, dead = c.conn, c.dead
	}
	s.mu.Unlock()
	if ok && !dead && conn != nil {
		ping := &transport.Message{Type: transport.MsgPing, Sender: s.kit.Name, Round: round}
		if err := conn.Write(ping); err == nil {
			return nil // in flight; the pong (or the conn error) resolves it
		}
		s.markDead(name)
	}
	s.met.probe("fail")
	return s.healthEdge(round, s.mon.ProbeResult(name, false, s.cfg.Clock.Now()))
}

// idleEligible returns, in name order, the live idle clients the health
// monitor still admits, minus any in skip. Reconcile mode only.
func (s *Server) idleEligible(skip map[string]bool) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, c := range s.clients {
		if c.dead || c.taskedRound >= 0 || skip[name] || !s.mon.Eligible(name) {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// absorbStale handles an inbox delivery that is not part of the current
// round's gather: reconnects, probe answers, and previous rounds'
// stragglers (conn errors, late updates). Shared by the between-rounds
// drain and the parked-round wait; reconcile mode only.
func (s *Server) absorbStale(in inboxMsg, round int, rec *RoundRecord, late *[]*ClientUpdate) error {
	if in.resume != nil {
		// No task is in flight this round: the re-attach just revives the
		// connection; a demoted client rejoins via the next probe.
		s.handleResume(in.resume, round, nil, rec, nil, nil)
		return nil
	}
	if s.clientGen(in.name) != in.gen {
		return nil // stale delivery from a superseded connection
	}
	now := s.cfg.Clock.Now()
	if in.msg != nil && in.msg.Type == transport.MsgPong {
		if s.mon.IsProbing(in.name) {
			s.met.probe("ok")
			return s.healthEdge(round, s.mon.ProbeResult(in.name, true, now))
		}
		return nil
	}
	wasTasked := s.setTasked(in.name, -1)
	if in.err != nil {
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, in.err))
		s.met.failure("conn")
		s.markDead(in.name)
		if s.mon.IsProbing(in.name) {
			// The connection died between the ping and its pong.
			s.met.probe("fail")
			return s.healthEdge(round, s.mon.ProbeResult(in.name, false, now))
		}
		return s.healthEdge(round, s.mon.Observe(in.name, false, now))
	}
	u, uerr := s.handleReply(in.name, in.msg)
	switch {
	case uerr != nil:
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, uerr))
		s.met.failure("reject")
	case wasTasked < 0:
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: unsolicited update (not tasked)", in.name))
		s.met.failure("reject")
	case s.cfg.AsyncAggregator != nil:
		u.Round = wasTasked
		*late = append(*late, u)
		return s.healthEdge(round, s.mon.Observe(in.name, true, now))
	default:
		rec.LateDropped = append(rec.LateDropped, in.name)
		return s.healthEdge(round, s.mon.Observe(in.name, true, now))
	}
	return nil
}

// parkUntilEligible blocks a round whose sample pool is empty (every
// client demoted or dead — mass failure) until a recovery probe readmits
// someone, bounded by MaxPark. Inbox traffic arriving meanwhile — above
// all the reconnects that make recovery possible — is absorbed like the
// between-rounds drain.
func (s *Server) parkUntilEligible(round int, rec *RoundRecord, late *[]*ClientUpdate) error {
	s.met.parked.Inc()
	parkDeadline := s.cfg.Clock.Now().Add(s.pol.MaxPark)
	for {
		now := s.cfg.Clock.Now()
		if len(s.idleEligible(nil)) > 0 {
			return nil
		}
		if !now.Before(parkDeadline) {
			return fmt.Errorf("fl: round %d: no eligible clients after parking %v (every client demoted or dead; failures so far: %v)",
				round, s.pol.MaxPark, rec.Failures)
		}
		for _, name := range s.mon.DueProbes(now) {
			if err := s.sendPing(round, name); err != nil {
				return err
			}
		}
		wake := parkDeadline
		if at := s.mon.NextProbeAt(); !at.IsZero() && at.Before(wake) {
			wake = at
		}
		at, ch := wakeChan(s.cfg.Clock, wake)
		in, status := waitRecv(s.cfg.Clock, s.inbox, nil, at, ch)
		if status == waitDeadline {
			continue
		}
		if err := s.absorbStale(in, round, rec, late); err != nil {
			return err
		}
	}
}

// reconcileGather is the reconciliation-aware replacement for the legacy
// gather loop: failed assignments — send errors, execution errors
// (MsgError replies), dropped connections — are requeued with backoff and
// re-dispatched (to the same client, or — with Substitute — an idle
// eligible one) until the round deadline; demoted clients are pinged and
// may be re-tasked on recovery; and a round that can no longer reach its
// aggregate trigger degrades (FedAsync partial finalize) or parks
// awaiting probes, bounded by MaxPark, instead of deadlocking.
func (s *Server) reconcileGather(round int, blob []byte, rec *RoundRecord,
	updates, late []*ClientUpdate, failedSends []string, pending, quorum, minUpdates int) ([]*ClientUpdate, []*ClientUpdate, error) {
	now := s.cfg.Clock.Now()
	var roundDeadlineAt time.Time
	if s.cfg.RoundDeadline > 0 {
		roundDeadlineAt = now.Add(s.cfg.RoundDeadline)
	}
	rq := reconcile.NewQueue()
	deadlineFired := false
	// assignment maps each in-flight client to its current task so an
	// outcome knows the slot's attempt count and original owner. The
	// scatter already ran: every client it tasked holds this round's slot.
	assignment := make(map[string]reconcile.Task, pending)
	s.mu.Lock()
	for name, c := range s.clients {
		if c.taskedRound == round && !c.dead {
			assignment[name] = reconcile.Task{Client: name, Round: round, Attempt: 1, Origin: name}
		}
	}
	s.mu.Unlock()
	participated := make(map[string]bool, len(updates))
	for _, u := range updates {
		participated[u.ClientName] = true
	}
	inSampled := make(map[string]bool, len(rec.Sampled))
	for _, n := range rec.Sampled {
		inSampled[n] = true
	}
	// requeue schedules retry attempt t.Attempt+1 of a failed slot, unless
	// the slot is out of attempts or the retry could not run before the
	// round deadline. The triggering failure is already recorded, so a
	// task that dies here is abandoned, never silently lost.
	requeue := func(t reconcile.Task, now time.Time) {
		if deadlineFired || t.Attempt >= s.pol.MaxAssignAttempts {
			return
		}
		readyAt := now.Add(s.pol.RequeueBackoff.Delay(t.Attempt - 1))
		if !roundDeadlineAt.IsZero() && !readyAt.Before(roundDeadlineAt) {
			return
		}
		rq.Add(reconcile.Task{Client: t.Client, Round: round, Attempt: t.Attempt + 1, Origin: t.Origin}, readyAt)
		s.met.requeues.Inc()
	}
	for _, name := range failedSends {
		requeue(reconcile.Task{Client: name, Round: round, Attempt: 1, Origin: name}, now)
	}

	// redispatch hands a ready task to its client — or, when that client is
	// dead, busy, demoted, or already counted, to the first idle eligible
	// substitute in name order (deterministic). A task with no viable
	// target is abandoned; its triggering failure is already recorded.
	redispatch := func(t reconcile.Task, now time.Time) error {
		target := ""
		for _, name := range s.idleEligible(participated) {
			if name == t.Client {
				target = name
				break
			}
			if target == "" && s.pol.Substitute {
				target = name
			}
		}
		if target == "" {
			return nil
		}
		s.mu.Lock()
		conn := s.clients[target].conn
		s.mu.Unlock()
		task := &transport.Message{
			Type: transport.MsgTask, Sender: s.kit.Name, Round: round, Payload: blob,
			Meta: map[string]string{"round": strconv.Itoa(round)},
		}
		if err := conn.Write(task); err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: send task: %v", target, err))
			s.met.failure("send")
			s.markDead(target)
			if err := s.healthEdge(round, s.mon.Observe(target, false, now)); err != nil {
				return err
			}
			requeue(t, now)
			return nil
		}
		s.setTasked(target, round)
		assignment[target] = reconcile.Task{Client: target, Round: round, Attempt: t.Attempt, Origin: t.Origin}
		rec.Reassigned = append(rec.Reassigned, t.Origin+">"+target)
		if !inSampled[target] {
			inSampled[target] = true
			rec.Sampled = append(rec.Sampled, target)
		}
		if s.cfg.WAL != nil {
			if err := s.cfg.WAL.AppendTaskAssigned(round, target); err != nil {
				return fmt.Errorf("fl: round %d: %w", round, err)
			}
		}
		rec.BytesDown += int64(len(blob))
		pending++
		return nil
	}

	parked := false
	var parkDeadline time.Time
	for {
		now = s.cfg.Clock.Now()
		if !deadlineFired && !roundDeadlineAt.IsZero() && !now.Before(roundDeadlineAt) {
			deadlineFired = true
			s.met.stragglers.Add(int64(pending))
			// Queued retries die with the deadline; the failures that
			// queued them are already in rec.Failures, so nothing is
			// silently lost.
			rq.Drain()
		}
		if len(updates) >= minUpdates {
			break
		}
		if deadlineFired && len(updates) >= quorum {
			break
		}
		if parked && !now.Before(parkDeadline) {
			// Parking budget exhausted: degrade if the async path can
			// finalize a partial round, else fall through to the quorum
			// check below.
			break
		}
		if !deadlineFired {
			for _, t := range rq.Due(now) {
				if err := redispatch(t, now); err != nil {
					return nil, nil, err
				}
			}
		}
		for _, name := range s.mon.DueProbes(now) {
			if err := s.sendPing(round, name); err != nil {
				return nil, nil, err
			}
		}
		if pending == 0 && rq.Len() == 0 {
			// Starved: nothing in flight, nothing queued, below the
			// trigger. Recoverable only if probes are running or
			// scheduled; otherwise give up now.
			if !s.mon.Probing() && s.mon.NextProbeAt().IsZero() {
				break
			}
			if !parked {
				parked = true
				parkDeadline = now.Add(s.pol.MaxPark)
				s.met.parked.Inc()
			}
		}
		var wake time.Time
		earliest := func(t time.Time) {
			if !t.IsZero() && (wake.IsZero() || t.Before(wake)) {
				wake = t
			}
		}
		if !deadlineFired {
			earliest(roundDeadlineAt)
			earliest(rq.NextAt())
		}
		earliest(s.mon.NextProbeAt())
		if parked {
			earliest(parkDeadline)
		}
		at, ch := wakeChan(s.cfg.Clock, wake)
		in, status := waitRecv(s.cfg.Clock, s.inbox, nil, at, ch)
		if status == waitDeadline {
			continue
		}
		now = s.cfg.Clock.Now()
		if in.resume != nil {
			slotHeld, _ := s.reattach(in.resume, round, rec)
			name := in.resume.name
			if slotHeld {
				// The re-attach implies the old connection is gone, and
				// with it the in-flight assignment; requeue it rather than
				// racing a blind re-send against the retry machinery.
				t, assigned := assignment[name]
				delete(assignment, name)
				pending--
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: connection replaced mid-task", name))
				s.met.failure("conn")
				if err := s.healthEdge(round, s.mon.Observe(name, false, now)); err != nil {
					return nil, nil, err
				}
				if assigned {
					requeue(t, now)
				}
			}
			continue
		}
		if s.clientGen(in.name) != in.gen {
			continue // stale delivery from a superseded connection
		}
		if in.msg != nil && in.msg.Type == transport.MsgPong {
			// Before the tasked-slot bookkeeping: a pong must never release
			// a pending task.
			if !s.mon.IsProbing(in.name) {
				continue
			}
			s.met.probe("ok")
			if err := s.healthEdge(round, s.mon.ProbeResult(in.name, true, now)); err != nil {
				return nil, nil, err
			}
			// Revived mid-round: if the round still cannot reach its
			// trigger with what is in flight and queued, task the recovered
			// client (the parked-round resume path).
			need := minUpdates
			if deadlineFired {
				need = quorum
			}
			if len(updates)+pending+rq.Len() < need && !participated[in.name] {
				if err := redispatch(reconcile.Task{Client: in.name, Round: round, Attempt: 1, Origin: "probe"}, now); err != nil {
					return nil, nil, err
				}
			}
			continue
		}
		wasTasked := s.setTasked(in.name, -1)
		t, assigned := assignment[in.name]
		if assigned {
			delete(assignment, in.name)
		}
		if in.err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, in.err))
			s.met.failure("conn")
			s.markDead(in.name)
			if s.mon.IsProbing(in.name) {
				// The connection died between the ping and its pong.
				s.met.probe("fail")
				if err := s.healthEdge(round, s.mon.ProbeResult(in.name, false, now)); err != nil {
					return nil, nil, err
				}
				continue
			}
			if err := s.healthEdge(round, s.mon.Observe(in.name, false, now)); err != nil {
				return nil, nil, err
			}
			if wasTasked == round {
				pending--
				if assigned {
					requeue(t, now)
				}
			}
			continue
		}
		u, uerr := s.handleReply(in.name, in.msg)
		switch {
		case uerr != nil:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", in.name, uerr))
			s.met.failure("reject")
			if wasTasked == round {
				// An execution failure (MsgError reply) or a garbled
				// payload: the slot retries like any other failure.
				pending--
				if err := s.healthEdge(round, s.mon.Observe(in.name, false, now)); err != nil {
					return nil, nil, err
				}
				if assigned {
					requeue(t, now)
				}
			}
		case wasTasked == round:
			pending--
			if err := s.healthEdge(round, s.mon.Observe(in.name, true, now)); err != nil {
				return nil, nil, err
			}
			u.Round = round
			if s.cfg.WAL != nil {
				if err := s.cfg.WAL.AppendUpdate(round, u.ClientName, u.NumSamples,
					u.TrainLoss, u.PayloadBytes, u.Weights); err != nil {
					return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
				}
			}
			rec.BytesUp += int64(u.PayloadBytes)
			updates = append(updates, u)
			participated[in.name] = true
		case wasTasked < 0:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: unsolicited update (not tasked)", in.name))
			s.met.failure("reject")
		case s.cfg.AsyncAggregator != nil:
			if err := s.healthEdge(round, s.mon.Observe(in.name, true, now)); err != nil {
				return nil, nil, err
			}
			u.Round = wasTasked
			late = append(late, u)
		default:
			if err := s.healthEdge(round, s.mon.Observe(in.name, true, now)); err != nil {
				return nil, nil, err
			}
			rec.LateDropped = append(rec.LateDropped, in.name)
		}
	}
	if len(updates) < quorum {
		// Mass failure left the round short. The async path finalizes what
		// it has as a degraded partial round — FedAsync already tolerates
		// weight drift from missing participants — provided at least one
		// update arrived; the synchronous path must fail.
		if s.cfg.AsyncAggregator != nil && len(updates) > 0 {
			rec.Degraded = true
			s.met.degraded.Inc()
			return updates, late, nil
		}
		return nil, nil, fmt.Errorf("fl: round %d quorum not met after reconciliation: %d/%d updates (failures: %v)",
			round, len(updates), quorum, rec.Failures)
	}
	if len(updates) < minUpdates {
		// At or above quorum but short of the trigger: the deadline or
		// the parking budget cut a mass-failure round short.
		rec.Degraded = true
		s.met.degraded.Inc()
	}
	return updates, late, nil
}

// handleReply turns one inbound message into a ClientUpdate.
func (s *Server) handleReply(name string, msg *transport.Message) (*ClientUpdate, error) {
	if msg.Type != transport.MsgUpdate {
		return nil, fmt.Errorf("expected update, got %s: %s", msg.Type, msg.Meta["error"])
	}
	// Enforce the top-k gate on the payload itself, not just at
	// negotiation: DecodeWeights sniffs any magic, so a client ignoring
	// the registration ack could otherwise push sparsified weights (most
	// of every parameter zeroed) straight into the average.
	if !s.cfg.AllowTopKUplink && bytes.HasPrefix(msg.Payload, []byte(topKMagic)) {
		return nil, errors.New("top-k update payload rejected (not negotiated; set AllowTopKUplink)")
	}
	if hier.IsPartial(msg.Payload) {
		// A partial-aggregate uplink from an edge node. The same payload
		// gate applies as for top-k: a flat server must reject it rather
		// than let an unexpected codec reach the average.
		if s.cfg.Tier == nil {
			return nil, errors.New("partial-aggregate payload rejected (server is not tier-enabled; set Tier)")
		}
		p, err := hier.DecodePartial(msg.Payload)
		if err != nil {
			return nil, err
		}
		// Weight and mean loss come from the partial itself — the exact
		// fold accounting — not from what the message header claims.
		return &ClientUpdate{
			ClientName: name, Round: msg.Round,
			NumSamples: clampSamples(p.Weight()), TrainLoss: p.MeanLoss(),
			PayloadBytes: len(msg.Payload),
			hierPartial:  p,
		}, nil
	}
	weights, err := DecodeWeights(msg.Payload)
	if err != nil {
		return nil, err
	}
	loss, _ := strconv.ParseFloat(msg.Meta["train_loss"], 64)
	return &ClientUpdate{
		ClientName: name, Round: msg.Round, Weights: weights,
		NumSamples: msg.NumSamples, TrainLoss: loss,
		PayloadBytes: len(msg.Payload),
	}, nil
}

// setTasked updates a client's tasked round, returning the previous value.
func (s *Server) setTasked(name string, round int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[name]
	if !ok {
		return -1
	}
	prev := c.taskedRound
	c.taskedRound = round
	return prev
}

// markDead flags a client's connection as failed.
func (s *Server) markDead(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[name]; ok && !c.dead {
		c.dead = true
		s.met.connected.Add(-1)
	}
}

// broadcast best-effort sends msg to every live client, returning
// "client: error" strings for the ones it could not reach so the caller
// can record them in the Result.
func (s *Server) broadcast(msg *transport.Message) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var failures []string
	for name, c := range s.clients {
		if c.dead {
			failures = append(failures, fmt.Sprintf("%s: connection already failed", name))
			continue
		}
		if err := c.conn.Write(msg); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			s.cfg.Logf("fl server: broadcast to %q: %v", name, err)
		}
	}
	return failures
}
