package fl

import (
	"errors"
	"fmt"
	"math"

	"clinfl/internal/tensor"
)

// Filter transforms a client update before aggregation, mirroring
// NVFlare's privacy filters (the framework feature the paper cites as
// "privacy preservation"). Filters run server-side in update order.
type Filter interface {
	// Apply mutates or replaces the update. global is the model the round
	// started from, letting delta-based filters reconstruct update
	// differences.
	Apply(update *ClientUpdate, global map[string]*tensor.Matrix) error
	// Name identifies the filter in logs.
	Name() string
}

// NormCapFilter rescales each client's *delta* from the global model so
// its global L2 norm is at most Cap — the clipping half of differentially
// private FedAvg, and a defense against poisoned or divergent updates.
type NormCapFilter struct {
	// Cap is the maximum allowed delta norm (must be positive).
	Cap float64
}

// Name implements Filter.
func (f NormCapFilter) Name() string { return "norm-cap" }

// Apply implements Filter.
func (f NormCapFilter) Apply(update *ClientUpdate, global map[string]*tensor.Matrix) error {
	if f.Cap <= 0 {
		return errors.New("fl: norm cap must be positive")
	}
	var sq float64
	deltas := make(map[string]*tensor.Matrix, len(update.Weights))
	for name, w := range update.Weights {
		g, ok := global[name]
		if !ok {
			return fmt.Errorf("fl: norm-cap: param %q missing from global", name)
		}
		d, err := tensor.Sub(w, g)
		if err != nil {
			return fmt.Errorf("fl: norm-cap %q: %w", name, err)
		}
		n := d.Norm()
		sq += n * n
		deltas[name] = d
	}
	norm := math.Sqrt(sq)
	if norm <= f.Cap || norm == 0 {
		return nil
	}
	scale := f.Cap / norm
	for name, d := range deltas {
		d.ScaleInPlace(scale)
		w := global[name].Clone()
		if err := w.AddInPlace(d); err != nil {
			return fmt.Errorf("fl: norm-cap %q: %w", name, err)
		}
		update.Weights[name] = w
	}
	return nil
}

// GaussianNoiseFilter adds N(0, Sigma²) noise to every parameter of the
// update — the noise half of DP-FedAvg. Combined with NormCapFilter it
// yields per-round (ε, δ) guarantees under the Gaussian mechanism; the
// calibration of Sigma to a privacy budget is the operator's choice.
type GaussianNoiseFilter struct {
	// Sigma is the noise standard deviation (must be non-negative).
	Sigma float64
	// RNG drives the noise stream (required when Sigma > 0).
	RNG *tensor.RNG
}

// Name implements Filter.
func (f GaussianNoiseFilter) Name() string { return "gaussian-noise" }

// Apply implements Filter.
func (f GaussianNoiseFilter) Apply(update *ClientUpdate, _ map[string]*tensor.Matrix) error {
	if f.Sigma < 0 {
		return errors.New("fl: noise sigma must be non-negative")
	}
	if f.Sigma == 0 {
		return nil
	}
	if f.RNG == nil {
		return errors.New("fl: gaussian noise filter needs an RNG")
	}
	for name, w := range update.Weights {
		noisy := w.Clone()
		d := noisy.Data()
		for i := range d {
			d[i] += f.RNG.Rand().NormFloat64() * f.Sigma
		}
		update.Weights[name] = noisy
	}
	return nil
}

// applyFilters runs the configured filter chain over every update.
func applyFilters(filters []Filter, updates []*ClientUpdate, global map[string]*tensor.Matrix) error {
	for _, flt := range filters {
		for _, u := range updates {
			if err := flt.Apply(u, global); err != nil {
				return fmt.Errorf("fl: filter %s on %q: %w", flt.Name(), u.ClientName, err)
			}
		}
	}
	return nil
}
