package fl

import (
	"strings"
	"sync"
	"testing"
	"time"

	"clinfl/internal/provision"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// testProject provisions a tiny federation for networked tests.
func testProject(t *testing.T, clients ...string) *provision.Project {
	t.Helper()
	proj, err := provision.Provision(provision.Config{
		ProjectName: "fl-test",
		ServerName:  "localhost",
		ClientNames: clients,
	})
	if err != nil {
		t.Fatal(err)
	}
	return proj
}

func quietLogf(format string, args ...any) {}

func TestNetworkedFederationEndToEnd(t *testing.T) {
	proj := testProject(t, "c1", "c2")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 2,
		Rounds:          3,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	execs := map[string]*fakeExecutor{
		"c1": {name: "c1", samples: 10, value: 1},
		"c2": {name: "c2", samples: 30, value: 2},
	}
	var wg sync.WaitGroup
	finals := make(map[string]map[string]*tensor.Matrix)
	var mu sync.Mutex
	for name, exec := range execs {
		cl, err := NewClient(ClientConfig{ServerAddr: srv.Addr(), Logf: quietLogf}, proj.ClientKits[name], exec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			final, err := cl.Run()
			if err != nil {
				t.Errorf("client %s: %v", name, err)
				return
			}
			mu.Lock()
			finals[name] = final
			mu.Unlock()
		}(name)
	}

	res, err := srv.Run(initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(res.History.Rounds) != 3 {
		t.Fatalf("rounds %d", len(res.History.Rounds))
	}
	// FedAvg of 1 (n=10) and 2 (n=30) = 1.75.
	want := 1.75
	if got := res.FinalWeights["layer.w"].At(0, 0); got != want {
		t.Fatalf("server final weight %v, want %v", got, want)
	}
	// Every client received the identical final model.
	for name, final := range finals {
		if got := final["layer.w"].At(0, 0); got != want {
			t.Fatalf("client %s final weight %v, want %v", name, got, want)
		}
	}
	for _, exec := range execs {
		if exec.calls != 3 {
			t.Fatalf("executor ran %d rounds, want 3", exec.calls)
		}
	}
}

func TestServerRejectsBadToken(t *testing.T) {
	proj := testProject(t, "c1")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 1,
		Rounds:          1,
		RegisterTimeout: 2 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	kit := *proj.ClientKits["c1"]
	kit.Token = "forged-token"
	cl, err := NewClient(ClientConfig{ServerAddr: srv.Addr(), Logf: quietLogf}, &kit, &fakeExecutor{name: "c1", samples: 1})
	if err != nil {
		t.Fatal(err)
	}

	clientDone := make(chan error, 1)
	go func() {
		_, err := cl.Run()
		clientDone <- err
	}()

	// Registration never completes, so the server times out.
	if _, err := srv.Run(initialWeights()); err == nil || !strings.Contains(err.Error(), "registration timed out") {
		t.Fatalf("want registration timeout, got %v", err)
	}
	if cerr := <-clientDone; cerr == nil || !strings.Contains(cerr.Error(), "rejected") {
		t.Fatalf("client should see rejection, got %v", cerr)
	}
}

func TestServerRejectsUnprovisionedTLSPeer(t *testing.T) {
	proj := testProject(t, "c1")
	// A second, unrelated project's client has a cert from a different CA;
	// the mutual-TLS handshake must fail before any protocol exchange.
	other := testProject(t, "c1")

	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 1,
		Rounds:          1,
		RegisterTimeout: 1500 * time.Millisecond,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := NewClient(ClientConfig{
		ServerAddr: srv.Addr(), DialTimeout: time.Second, Logf: quietLogf,
	}, other.ClientKits["c1"], &fakeExecutor{name: "c1", samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() {
		_, err := cl.Run()
		clientDone <- err
	}()
	if _, err := srv.Run(initialWeights()); err == nil {
		t.Fatal("server should time out waiting for a valid client")
	}
	if cerr := <-clientDone; cerr == nil {
		t.Fatal("cross-CA client should fail")
	}
}

// TestServerPropagatesKilledClientIntoResult kills a client mid-round (its
// TCP connection dies after it receives the round-0 task) and checks the
// server records the failure in the Result instead of silently treating
// the client as absent, then finishes the remaining rounds without it.
func TestServerPropagatesKilledClientIntoResult(t *testing.T) {
	proj := testProject(t, "c1", "c2")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 2,
		Rounds:          2,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Healthy client.
	cl, err := NewClient(ClientConfig{ServerAddr: srv.Addr(), Logf: quietLogf},
		proj.ClientKits["c1"], &fakeExecutor{name: "c1", samples: 10, value: 1})
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() {
		_, err := cl.Run()
		clientDone <- err
	}()

	// Doomed client: speaks the protocol by hand, then dies mid-round.
	killed := make(chan error, 1)
	go func() {
		killed <- func() error {
			tlsCfg, err := proj.ClientKits["c2"].ClientTLS()
			if err != nil {
				return err
			}
			conn, err := transport.Dial(srv.Addr(), tlsCfg, 5*time.Second)
			if err != nil {
				return err
			}
			kit := proj.ClientKits["c2"]
			if err := conn.Write(&transport.Message{
				Type: transport.MsgRegister, Sender: kit.Name, Token: kit.Token,
			}); err != nil {
				return err
			}
			if _, err := conn.Read(); err != nil { // ack
				return err
			}
			if _, err := conn.Read(); err != nil { // round-0 task
				return err
			}
			return conn.Close() // die mid-round, update never sent
		}()
	}()

	res, err := srv.Run(initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if cerr := <-clientDone; cerr != nil {
		t.Fatalf("healthy client: %v", cerr)
	}
	if kerr := <-killed; kerr != nil {
		t.Fatalf("killed client setup: %v", kerr)
	}

	if len(res.History.Rounds) != 2 {
		t.Fatalf("server completed %d rounds, want 2", len(res.History.Rounds))
	}
	r0 := res.History.Rounds[0]
	if len(r0.Participants) != 1 || r0.Participants[0] != "c1" {
		t.Fatalf("round 0 participants %v, want [c1]", r0.Participants)
	}
	found := false
	for _, f := range r0.Failures {
		if strings.HasPrefix(f, "c2:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("killed client missing from round-0 failures: %v", r0.Failures)
	}
	r1 := res.History.Rounds[1]
	if len(r1.Sampled) != 1 || r1.Sampled[0] != "c1" {
		t.Fatalf("round 1 should task only the survivor, got %v", r1.Sampled)
	}
	// The final-model broadcast cannot reach the dead client either; that
	// lands in the Result too instead of vanishing into a log line.
	found = false
	for _, f := range res.History.FinishFailures {
		if strings.HasPrefix(f, "c2:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead client missing from finish failures: %v", res.History.FinishFailures)
	}
}

// runAsyncFederation drives the acceptance federation: 4 networked
// clients, one delayed beyond any useful round budget, MinUpdates=3, and
// the given uplink codec on every client. Returns the server result.
func runAsyncFederation(t *testing.T, codec string) *Result {
	t.Helper()
	names := []string{"c1", "c2", "c3", "c4"}
	proj := testProject(t, names...)
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 4,
		Rounds:          3,
		RegisterTimeout: 10 * time.Second,
		MinUpdates:      3,
		RoundDeadline:   20 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	clientErrs := make(chan error, len(names))
	for i, name := range names {
		exec := &fakeExecutor{name: name, samples: 10, value: float64(i + 1)}
		if name == "c4" {
			exec.delay = 1200 * time.Millisecond // straggler: last every round
		}
		cl, err := NewClient(ClientConfig{
			ServerAddr: srv.Addr(), Codec: codec, Logf: quietLogf,
		}, proj.ClientKits[name], exec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Run()
			clientErrs <- err
		}()
	}

	start := time.Now()
	res, err := srv.Run(initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("federation blocked on the straggler: %v", elapsed)
	}
	wg.Wait()
	close(clientErrs)
	for cerr := range clientErrs {
		if cerr != nil {
			t.Fatalf("client: %v", cerr)
		}
	}
	return res
}

// TestNetworkedAsyncFederationCodecCutsBytes pins the acceptance criteria:
// a 4-client federation with one straggler completes all rounds without
// blocking, reports per-round participation, the f32-quantized uplink cuts
// measured bytes-on-wire per round by >= 40% against raw, and the int8
// uplink undercuts f32.
func TestNetworkedAsyncFederationCodecCutsBytes(t *testing.T) {
	byCodec := map[string]int64{}
	for _, codec := range []string{"raw", "f32", "int8"} {
		res := runAsyncFederation(t, codec)
		if len(res.History.Rounds) != 3 {
			t.Fatalf("[%s] completed %d rounds, want 3", codec, len(res.History.Rounds))
		}
		var total int64
		for i, rec := range res.History.Rounds {
			if len(rec.Participants) != 3 {
				t.Fatalf("[%s] round %d participants %v, want 3 (straggler dropped)",
					codec, i, rec.Participants)
			}
			for _, p := range rec.Participants {
				if p == "c4" {
					t.Fatalf("[%s] round %d straggler aggregated", codec, i)
				}
			}
			if rec.BytesUp <= 0 || rec.BytesDown <= 0 {
				t.Fatalf("[%s] round %d bytes unrecorded: up=%d down=%d",
					codec, i, rec.BytesUp, rec.BytesDown)
			}
			total += rec.BytesUp
		}
		byCodec[codec] = total
	}
	if f32, raw := byCodec["f32"], byCodec["raw"]; float64(f32) > 0.6*float64(raw) {
		t.Fatalf("f32 uplink %d bytes, want >= 40%% below raw %d", f32, raw)
	}
	// The test model is tiny, so fixed per-parameter headers blunt the
	// ratio on the wire; int8 must still beat f32. The >= 60% payload
	// reduction bar is pinned on realistic shapes in codec_test.go.
	if i8, f32 := byCodec["int8"], byCodec["f32"]; i8 >= f32 {
		t.Fatalf("int8 uplink %d bytes, want below f32 %d", i8, f32)
	}
}

func TestServerRecordsFramedWireTotals(t *testing.T) {
	res := runAsyncFederation(t, "f32")
	var payloadUp int64
	for _, rec := range res.History.Rounds {
		payloadUp += rec.BytesUp
	}
	// Framed totals include headers/metadata/gob overhead on top of the
	// payloads (and the straggler's late uploads), so they must exceed
	// the payload sum.
	if res.History.WireBytesRead <= payloadUp {
		t.Fatalf("framed wire bytes read %d should exceed payload bytes %d",
			res.History.WireBytesRead, payloadUp)
	}
	if res.History.WireBytesWritten <= 0 {
		t.Fatal("framed wire bytes written unrecorded")
	}
}

// TestServerRejectsTopKUplinkByDefault: top-k sparsifies full weight maps
// (not deltas), so unless the operator opts in the server must negotiate
// the client back to raw — the exact FedAvg result proves no parameter was
// zeroed on the uplink.
func TestServerRejectsTopKUplinkByDefault(t *testing.T) {
	proj := testProject(t, "c1", "c2")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 2,
		Rounds:          1,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for name, exec := range map[string]*fakeExecutor{
		"c1": {name: "c1", samples: 10, value: 1},
		"c2": {name: "c2", samples: 30, value: 2},
	} {
		cl, err := NewClient(ClientConfig{
			ServerAddr: srv.Addr(), Codec: "topk:0.1", Logf: quietLogf,
		}, proj.ClientKits[name], exec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := cl.Run(); err != nil {
				t.Errorf("client %s: %v", name, err)
			}
		}(name)
	}
	res, err := srv.Run(initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// FedAvg of 1 (n=10) and 2 (n=30) = 1.75, exactly — a top-k uplink
	// would have zeroed 90% of every parameter before averaging.
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 1.75 {
		t.Fatalf("final weight %v, want exact 1.75 (raw fallback)", got)
	}
}

// TestServerTrustsTaskRecordOverWireRound: a tasked client replying with a
// bogus wire round number must still release its pending slot and count as
// an in-round participant; with no RoundDeadline the old msg.Round-based
// accounting would block the round forever.
func TestServerTrustsTaskRecordOverWireRound(t *testing.T) {
	proj := testProject(t, "c1", "c2")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 2,
		Rounds:          1,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := NewClient(ClientConfig{ServerAddr: srv.Addr(), Logf: quietLogf},
		proj.ClientKits["c1"], &fakeExecutor{name: "c1", samples: 10, value: 1})
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() {
		_, err := cl.Run()
		clientDone <- err
	}()

	// Hand-rolled client: valid update payload, garbage round number.
	rogueDone := make(chan error, 1)
	go func() {
		rogueDone <- func() error {
			kit := proj.ClientKits["c2"]
			tlsCfg, err := kit.ClientTLS()
			if err != nil {
				return err
			}
			conn, err := transport.Dial(srv.Addr(), tlsCfg, 5*time.Second)
			if err != nil {
				return err
			}
			defer conn.Close()
			if err := conn.Write(&transport.Message{
				Type: transport.MsgRegister, Sender: kit.Name, Token: kit.Token,
			}); err != nil {
				return err
			}
			if _, err := conn.Read(); err != nil { // ack
				return err
			}
			task, err := conn.Read() // round-0 task
			if err != nil {
				return err
			}
			weights, err := DecodeWeights(task.Payload)
			if err != nil {
				return err
			}
			blob, err := EncodeWeights(weights)
			if err != nil {
				return err
			}
			if err := conn.Write(&transport.Message{
				Type: transport.MsgUpdate, Sender: kit.Name, Round: 97, // bogus
				Payload: blob, NumSamples: 10,
			}); err != nil {
				return err
			}
			_, err = conn.Read() // finish
			return err
		}()
	}()

	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		res, runErr = srv.Run(initialWeights())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("round blocked on a tasked client's bogus wire round")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if cerr := <-clientDone; cerr != nil {
		t.Fatalf("healthy client: %v", cerr)
	}
	if rerr := <-rogueDone; rerr != nil {
		t.Fatalf("rogue client: %v", rerr)
	}
	if got := len(res.History.Rounds[0].Participants); got != 2 {
		t.Fatalf("participants %v, want both clients counted in-round",
			res.History.Rounds[0].Participants)
	}
}

// TestServerRejectsTopKPayloadOnWire: the top-k gate must hold at
// ingestion, not just negotiation — a client that registered raw but sends
// a top-k payload anyway is recorded as a failure, never aggregated.
func TestServerRejectsTopKPayloadOnWire(t *testing.T) {
	proj := testProject(t, "c1", "c2")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 2,
		Rounds:          1,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := NewClient(ClientConfig{ServerAddr: srv.Addr(), Logf: quietLogf},
		proj.ClientKits["c1"], &fakeExecutor{name: "c1", samples: 10, value: 1})
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() {
		_, err := cl.Run()
		clientDone <- err
	}()

	// Rogue client: negotiates raw (no codec meta) but uploads top-k.
	rogueDone := make(chan error, 1)
	go func() {
		rogueDone <- func() error {
			kit := proj.ClientKits["c2"]
			tlsCfg, err := kit.ClientTLS()
			if err != nil {
				return err
			}
			conn, err := transport.Dial(srv.Addr(), tlsCfg, 5*time.Second)
			if err != nil {
				return err
			}
			defer conn.Close()
			if err := conn.Write(&transport.Message{
				Type: transport.MsgRegister, Sender: kit.Name, Token: kit.Token,
			}); err != nil {
				return err
			}
			if _, err := conn.Read(); err != nil { // ack
				return err
			}
			task, err := conn.Read() // round-0 task
			if err != nil {
				return err
			}
			weights, err := DecodeWeights(task.Payload)
			if err != nil {
				return err
			}
			blob, err := TopKCodec{Fraction: 0.1}.Encode(weights)
			if err != nil {
				return err
			}
			if err := conn.Write(&transport.Message{
				Type: transport.MsgUpdate, Sender: kit.Name, Round: 0,
				Payload: blob, NumSamples: 10,
			}); err != nil {
				return err
			}
			_, err = conn.Read() // finish
			return err
		}()
	}()

	res, err := srv.Run(initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if cerr := <-clientDone; cerr != nil {
		t.Fatalf("healthy client: %v", cerr)
	}
	if rerr := <-rogueDone; rerr != nil {
		t.Fatalf("rogue client: %v", rerr)
	}
	r0 := res.History.Rounds[0]
	if len(r0.Participants) != 1 || r0.Participants[0] != "c1" {
		t.Fatalf("participants %v, want only the honest client", r0.Participants)
	}
	found := false
	for _, f := range r0.Failures {
		if strings.HasPrefix(f, "c2:") && strings.Contains(f, "top-k") {
			found = true
		}
	}
	if !found {
		t.Fatalf("rejected top-k payload missing from failures: %v", r0.Failures)
	}
}

// TestServerQuorumNotMet: with MinClients set, a round that gathers fewer
// successful updates fails the run instead of publishing one site's raw
// weights as the global model.
func TestServerQuorumNotMet(t *testing.T) {
	proj := testProject(t, "c1", "c2")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 2,
		Rounds:          1,
		MinClients:      2,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := NewClient(ClientConfig{ServerAddr: srv.Addr(), Logf: quietLogf},
		proj.ClientKits["c1"], &fakeExecutor{name: "c1", samples: 10, value: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = cl.Run() }() // dies with the server; error irrelevant

	// Doomed client: registers, receives the task, dies mid-round.
	killed := make(chan error, 1)
	go func() {
		killed <- func() error {
			kit := proj.ClientKits["c2"]
			tlsCfg, err := kit.ClientTLS()
			if err != nil {
				return err
			}
			conn, err := transport.Dial(srv.Addr(), tlsCfg, 5*time.Second)
			if err != nil {
				return err
			}
			if err := conn.Write(&transport.Message{
				Type: transport.MsgRegister, Sender: kit.Name, Token: kit.Token,
			}); err != nil {
				return err
			}
			if _, err := conn.Read(); err != nil { // ack
				return err
			}
			if _, err := conn.Read(); err != nil { // round-0 task
				return err
			}
			return conn.Close()
		}()
	}()

	if _, err := srv.Run(initialWeights()); err == nil ||
		!strings.Contains(err.Error(), "quorum") {
		t.Fatalf("want quorum error with MinClients=2, got %v", err)
	}
	if kerr := <-killed; kerr != nil {
		t.Fatalf("killed client setup: %v", kerr)
	}
}

func TestNewClientValidation(t *testing.T) {
	proj := testProject(t, "c1")
	if _, err := NewClient(ClientConfig{}, proj.ServerKit, &fakeExecutor{name: "x"}); err == nil {
		t.Fatal("want error for server kit used as client")
	}
	if _, err := NewClient(ClientConfig{}, proj.ClientKits["c1"], nil); err == nil {
		t.Fatal("want error for nil executor")
	}
}

func TestNewServerValidation(t *testing.T) {
	proj := testProject(t, "c1")
	if _, err := NewServer(ServerConfig{ExpectedClients: 0, VerifyToken: proj.VerifyToken}, proj.ServerKit); err == nil {
		t.Fatal("want error for zero clients")
	}
	if _, err := NewServer(ServerConfig{ExpectedClients: 1, Addr: "127.0.0.1:0"}, proj.ServerKit); err == nil {
		t.Fatal("want error for missing VerifyToken")
	}
}
