package fl

import (
	"strings"
	"sync"
	"testing"
	"time"

	"clinfl/internal/provision"
	"clinfl/internal/tensor"
)

// testProject provisions a tiny federation for networked tests.
func testProject(t *testing.T, clients ...string) *provision.Project {
	t.Helper()
	proj, err := provision.Provision(provision.Config{
		ProjectName: "fl-test",
		ServerName:  "localhost",
		ClientNames: clients,
	})
	if err != nil {
		t.Fatal(err)
	}
	return proj
}

func quietLogf(format string, args ...any) {}

func TestNetworkedFederationEndToEnd(t *testing.T) {
	proj := testProject(t, "c1", "c2")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 2,
		Rounds:          3,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	execs := map[string]*fakeExecutor{
		"c1": {name: "c1", samples: 10, value: 1},
		"c2": {name: "c2", samples: 30, value: 2},
	}
	var wg sync.WaitGroup
	finals := make(map[string]map[string]*tensor.Matrix)
	var mu sync.Mutex
	for name, exec := range execs {
		cl, err := NewClient(ClientConfig{ServerAddr: srv.Addr(), Logf: quietLogf}, proj.ClientKits[name], exec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			final, err := cl.Run()
			if err != nil {
				t.Errorf("client %s: %v", name, err)
				return
			}
			mu.Lock()
			finals[name] = final
			mu.Unlock()
		}(name)
	}

	res, err := srv.Run(initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(res.History.Rounds) != 3 {
		t.Fatalf("rounds %d", len(res.History.Rounds))
	}
	// FedAvg of 1 (n=10) and 2 (n=30) = 1.75.
	want := 1.75
	if got := res.FinalWeights["layer.w"].At(0, 0); got != want {
		t.Fatalf("server final weight %v, want %v", got, want)
	}
	// Every client received the identical final model.
	for name, final := range finals {
		if got := final["layer.w"].At(0, 0); got != want {
			t.Fatalf("client %s final weight %v, want %v", name, got, want)
		}
	}
	for _, exec := range execs {
		if exec.calls != 3 {
			t.Fatalf("executor ran %d rounds, want 3", exec.calls)
		}
	}
}

func TestServerRejectsBadToken(t *testing.T) {
	proj := testProject(t, "c1")
	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 1,
		Rounds:          1,
		RegisterTimeout: 2 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	kit := *proj.ClientKits["c1"]
	kit.Token = "forged-token"
	cl, err := NewClient(ClientConfig{ServerAddr: srv.Addr(), Logf: quietLogf}, &kit, &fakeExecutor{name: "c1", samples: 1})
	if err != nil {
		t.Fatal(err)
	}

	clientDone := make(chan error, 1)
	go func() {
		_, err := cl.Run()
		clientDone <- err
	}()

	// Registration never completes, so the server times out.
	if _, err := srv.Run(initialWeights()); err == nil || !strings.Contains(err.Error(), "registration timed out") {
		t.Fatalf("want registration timeout, got %v", err)
	}
	if cerr := <-clientDone; cerr == nil || !strings.Contains(cerr.Error(), "rejected") {
		t.Fatalf("client should see rejection, got %v", cerr)
	}
}

func TestServerRejectsUnprovisionedTLSPeer(t *testing.T) {
	proj := testProject(t, "c1")
	// A second, unrelated project's client has a cert from a different CA;
	// the mutual-TLS handshake must fail before any protocol exchange.
	other := testProject(t, "c1")

	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		ExpectedClients: 1,
		Rounds:          1,
		RegisterTimeout: 1500 * time.Millisecond,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := NewClient(ClientConfig{
		ServerAddr: srv.Addr(), DialTimeout: time.Second, Logf: quietLogf,
	}, other.ClientKits["c1"], &fakeExecutor{name: "c1", samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() {
		_, err := cl.Run()
		clientDone <- err
	}()
	if _, err := srv.Run(initialWeights()); err == nil {
		t.Fatal("server should time out waiting for a valid client")
	}
	if cerr := <-clientDone; cerr == nil {
		t.Fatal("cross-CA client should fail")
	}
}

func TestNewClientValidation(t *testing.T) {
	proj := testProject(t, "c1")
	if _, err := NewClient(ClientConfig{}, proj.ServerKit, &fakeExecutor{name: "x"}); err == nil {
		t.Fatal("want error for server kit used as client")
	}
	if _, err := NewClient(ClientConfig{}, proj.ClientKits["c1"], nil); err == nil {
		t.Fatal("want error for nil executor")
	}
}

func TestNewServerValidation(t *testing.T) {
	proj := testProject(t, "c1")
	if _, err := NewServer(ServerConfig{ExpectedClients: 0, VerifyToken: proj.VerifyToken}, proj.ServerKit); err == nil {
		t.Fatal("want error for zero clients")
	}
	if _, err := NewServer(ServerConfig{ExpectedClients: 1, Addr: "127.0.0.1:0"}, proj.ServerKit); err == nil {
		t.Fatal("want error for missing VerifyToken")
	}
}
