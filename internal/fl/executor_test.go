package fl

import (
	"testing"

	"clinfl/internal/data"
	"clinfl/internal/mlm"
	"clinfl/internal/model"
	"clinfl/internal/nn"
	"clinfl/internal/sched"
	"clinfl/internal/tensor"
	"clinfl/internal/token"
)

// tinyClassifier builds a minimal LSTM classifier for executor tests.
func tinyClassifier(t *testing.T, seed int64) model.Classifier {
	t.Helper()
	m, err := model.NewLSTMClassifier(model.LSTMConfig{
		Name: "tiny", VocabSize: 32, Dim: 8, Hidden: 8, Layers: 1, NumClasses: 2,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// tinyDataset builds n labeled examples over the tiny vocab.
func tinyDataset(n int, seed int64) data.Dataset {
	rng := tensor.NewRNG(seed)
	ds := make(data.Dataset, n)
	for i := range ds {
		ids := []int{token.CLS, 0, 0, token.SEP}
		label := rng.Intn(2)
		// Signal token at position 1 encodes the label.
		ids[1] = 10 + label
		ids[2] = token.NumSpecial + rng.Intn(20)
		ds[i] = data.Example{IDs: ids, PadMask: make([]bool, 4), Label: label}
	}
	return ds
}

func TestClassifierExecutorRound(t *testing.T) {
	mdl := tinyClassifier(t, 1)
	ds := tinyDataset(32, 2)
	exec, err := NewClassifierExecutor("site", mdl, ds, ds[:8], LocalConfig{
		Epochs: 2, LR: 1e-2, BatchSize: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Name() != "site" || exec.NumSamples() != 32 {
		t.Fatalf("identity wrong: %s/%d", exec.Name(), exec.NumSamples())
	}
	global := nn.SnapshotWeights(mdl.Params())
	update, err := exec.ExecuteRound(0, global)
	if err != nil {
		t.Fatal(err)
	}
	if update.NumSamples != 32 || update.ClientName != "site" {
		t.Fatalf("update metadata wrong: %+v", update.ClientName)
	}
	// Training must have moved the weights away from the global.
	moved := false
	for name, m := range update.Weights {
		if !m.Equal(global[name]) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("local training produced identical weights")
	}
	// The returned update is a snapshot: mutating the model afterwards
	// must not change it.
	snapshot := update.Weights["tiny.out.weight"].Clone()
	if _, err := exec.ExecuteRound(1, global); err != nil {
		t.Fatal(err)
	}
	if !update.Weights["tiny.out.weight"].Equal(snapshot) {
		t.Fatal("update weights aliased into live model")
	}
}

func TestClassifierExecutorLoadsGlobal(t *testing.T) {
	mdl := tinyClassifier(t, 1)
	ds := tinyDataset(16, 3)
	// LR below any meaningful step (LocalConfig treats <=0 as "default",
	// so use a tiny positive value): the update must stay within epsilon
	// of the incoming global, proving the load happened.
	exec, err := NewClassifierExecutor("site", mdl, ds, nil, LocalConfig{Epochs: 1, LR: 1e-12, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	other := tinyClassifier(t, 99)
	global := nn.SnapshotWeights(other.Params())
	update, err := exec.ExecuteRound(0, global)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range update.Weights {
		if !m.AllClose(global[name], 1e-6, 1e-6) {
			t.Fatalf("param %q not loaded from global", name)
		}
	}
}

func TestClassifierExecutorValidate(t *testing.T) {
	mdl := tinyClassifier(t, 1)
	ds := tinyDataset(64, 4)
	exec, err := NewClassifierExecutor("site", mdl, ds[:48], ds[48:], LocalConfig{
		Epochs: 6, LR: 2e-2, BatchSize: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	global := nn.SnapshotWeights(mdl.Params())
	var update *ClientUpdate
	for round := 0; round < 3; round++ {
		update, err = exec.ExecuteRound(round, global)
		if err != nil {
			t.Fatal(err)
		}
		global = update.Weights
	}
	acc, err := exec.Validate(global)
	if err != nil {
		t.Fatal(err)
	}
	// The signal token determines the label exactly; a trained model must
	// beat chance comfortably.
	if acc < 0.8 {
		t.Fatalf("validation accuracy %.3f after training on a trivial rule", acc)
	}
}

func TestClassifierExecutorEvalPrecision(t *testing.T) {
	ds := tinyDataset(64, 4)
	train, valid := ds[:48], ds[48:]

	// Train once at full precision to get non-trivial weights.
	ref := tinyClassifier(t, 1)
	refExec, err := NewClassifierExecutor("site", ref, train, valid, LocalConfig{
		Epochs: 6, LR: 2e-2, BatchSize: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	global := nn.SnapshotWeights(ref.Params())
	for round := 0; round < 3; round++ {
		update, err := refExec.ExecuteRound(round, global)
		if err != nil {
			t.Fatal(err)
		}
		global = update.Weights
	}
	refAcc, err := refExec.Validate(global)
	if err != nil {
		t.Fatal(err)
	}

	// Reduced-precision validation of the same weights must stay close:
	// the signal is decisive, so quantized logits keep the argmax.
	for _, prec := range []string{"f16", "int8"} {
		mdl := tinyClassifier(t, 1)
		exec, err := NewClassifierExecutor("site", mdl, train, valid, LocalConfig{
			Epochs: 1, LR: 2e-2, BatchSize: 16, Seed: 1, EvalPrecision: prec,
		})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := exec.Validate(global)
		if err != nil {
			t.Fatal(err)
		}
		if diff := acc - refAcc; diff > 0.1 || diff < -0.1 {
			t.Fatalf("[%s] accuracy %.3f drifts > 0.1 from f64 %.3f", prec, acc, refAcc)
		}
	}

	if _, err := NewClassifierExecutor("site", tinyClassifier(t, 1), train, valid,
		LocalConfig{EvalPrecision: "fp4"}); err == nil {
		t.Fatal("want error for unknown eval precision")
	}
}

func TestClassifierExecutorValidateWithoutData(t *testing.T) {
	mdl := tinyClassifier(t, 1)
	exec, err := NewClassifierExecutor("site", mdl, tinyDataset(8, 5), nil, LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Validate(nn.SnapshotWeights(mdl.Params())); err == nil {
		t.Fatal("want error for missing validation data")
	}
}

func TestExecutorConstructionErrors(t *testing.T) {
	mdl := tinyClassifier(t, 1)
	if _, err := NewClassifierExecutor("", mdl, tinyDataset(4, 6), nil, LocalConfig{}); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := NewClassifierExecutor("site", mdl, nil, nil, LocalConfig{}); err == nil {
		t.Fatal("want error for empty data")
	}
}

func TestMLMExecutorRound(t *testing.T) {
	bc, err := model.NewBERT(model.BERTConfig{
		Name: "tinybert", VocabSize: 32, MaxLen: 8, Dim: 8, Layers: 1, Heads: 1, NumClasses: 2,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]int, 12)
	rng := tensor.NewRNG(7)
	for i := range seqs {
		ids := make([]int, 8)
		ids[0] = token.CLS
		for j := 1; j < 7; j++ {
			ids[j] = token.NumSpecial + rng.Intn(20)
		}
		ids[7] = token.SEP
		seqs[i] = ids
	}
	exec, err := NewMLMExecutor("site", bc, bc.Params(), seqs, mlm.DefaultConfig(32), LocalConfig{
		Epochs: 1, LR: 1e-3, BatchSize: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	global := nn.SnapshotWeights(bc.Params())
	update, err := exec.ExecuteRound(0, global)
	if err != nil {
		t.Fatal(err)
	}
	if update.NumSamples != 12 {
		t.Fatalf("num samples %d", update.NumSamples)
	}
	if update.TrainLoss <= 0 {
		t.Fatalf("train loss %v", update.TrainLoss)
	}
	loss, err := exec.EvalMLMLoss(update.Weights, seqs[:4], 9)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("eval loss %v", loss)
	}
}

func TestMLMExecutorConstructionErrors(t *testing.T) {
	bc, err := model.NewBERT(model.BERTConfig{
		Name: "tinybert2", VocabSize: 32, MaxLen: 8, Dim: 8, Layers: 1, Heads: 1, NumClasses: 2,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mlm.DefaultConfig(32)
	if _, err := NewMLMExecutor("", bc, bc.Params(), [][]int{{token.CLS}}, cfg, LocalConfig{}); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := NewMLMExecutor("site", bc, bc.Params(), nil, cfg, LocalConfig{}); err == nil {
		t.Fatal("want error for empty corpus")
	}
	bad := cfg
	bad.MaskProb = 0
	if _, err := NewMLMExecutor("site", bc, bc.Params(), [][]int{{token.CLS}}, bad, LocalConfig{}); err == nil {
		t.Fatal("want error for bad mask config")
	}
}

// TestClassifierExecutorValidateParallelMatchesSerial pins the parallel
// chunked validation: the accuracy computed with the eval chunks fanned
// across a multi-worker pool must equal the single-worker result exactly
// (hit counting is integer arithmetic, so any divergence means a chunk
// was dropped or double-counted).
func TestClassifierExecutorValidateParallelMatchesSerial(t *testing.T) {
	mdl := tinyClassifier(t, 1)
	ds := tinyDataset(130, 6) // odd size: exercises the ragged final chunk
	exec, err := NewClassifierExecutor("site", mdl, ds[:16], ds[16:], LocalConfig{
		Epochs: 1, LR: 1e-2, BatchSize: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	global := nn.SnapshotWeights(mdl.Params())

	run := func(width int) float64 {
		pool := sched.New(width)
		defer pool.Close()
		defer sched.SetDefault(sched.SetDefault(pool))
		acc, err := exec.Validate(global)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}

	serial := run(1)
	for _, width := range []int{2, 4} {
		if got := run(width); got != serial {
			t.Fatalf("width %d: accuracy %v, serial %v", width, got, serial)
		}
	}
}
