package fl

import (
	"fmt"
	"sync"
	"time"

	"clinfl/internal/tensor"
)

// FaultConfig describes the failures a FaultyExecutor injects: fixed or
// jittered delays (stragglers) and deterministic or probabilistic round
// failures (dropouts). All randomness is seeded, so a scenario replays
// identically.
type FaultConfig struct {
	// Delay is added before every round's local execution.
	Delay time.Duration
	// DelayJitter adds a uniform [0, DelayJitter) extra delay per round.
	DelayJitter time.Duration
	// DelayRounds, when non-empty, restricts Delay/DelayJitter to the
	// listed rounds (others run at full speed).
	DelayRounds []int
	// DropRounds lists rounds on which ExecuteRound fails outright
	// (a crashed or unreachable site).
	DropRounds []int
	// DropProb fails any round with this probability (0 disables).
	DropProb float64
	// Seed drives the jitter/drop streams.
	Seed int64
	// Clock injects the delays (default: real wall clock). A scenario
	// running under sim's virtual clock passes it here so injected
	// straggling consumes virtual, not real, time.
	Clock Clock
}

// FaultyExecutor wraps an Executor with injected delays and dropouts —
// the scenario harness for straggler/partial-participation experiments
// and tests. It is safe for the concurrent use the controller makes of
// executors (one in-flight round at a time).
type FaultyExecutor struct {
	inner Executor
	cfg   FaultConfig

	mu  sync.Mutex
	rng *tensor.RNG
}

var _ Executor = (*FaultyExecutor)(nil)

// WrapFaulty decorates an executor with fault injection.
func WrapFaulty(inner Executor, cfg FaultConfig) *FaultyExecutor {
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	return &FaultyExecutor{inner: inner, cfg: cfg, rng: tensor.NewRNG(cfg.Seed + 5381)}
}

// Name implements Executor.
func (f *FaultyExecutor) Name() string { return f.inner.Name() }

// NumSamples implements Executor.
func (f *FaultyExecutor) NumSamples() int { return f.inner.NumSamples() }

// Validate passes through to the inner executor when it can score models,
// so wrapping does not hide a Validator.
func (f *FaultyExecutor) Validate(global map[string]*tensor.Matrix) (float64, error) {
	if v, ok := f.inner.(Validator); ok {
		return v.Validate(global)
	}
	return 0, fmt.Errorf("fl: %s cannot validate", f.Name())
}

// ExecuteRound implements Executor: sleep, maybe fail, then run the real
// round.
func (f *FaultyExecutor) ExecuteRound(round int, global map[string]*tensor.Matrix) (*ClientUpdate, error) {
	if d := f.delayFor(round); d > 0 {
		f.cfg.Clock.Sleep(d)
	}
	if f.dropsRound(round) {
		return nil, fmt.Errorf("fl: %s injected dropout on round %d", f.Name(), round)
	}
	return f.inner.ExecuteRound(round, global)
}

// delayFor computes the injected delay for a round.
func (f *FaultyExecutor) delayFor(round int) time.Duration {
	if len(f.cfg.DelayRounds) > 0 && !containsRound(f.cfg.DelayRounds, round) {
		return 0
	}
	d := f.cfg.Delay
	if f.cfg.DelayJitter > 0 {
		f.mu.Lock()
		d += time.Duration(f.rng.Float64() * float64(f.cfg.DelayJitter))
		f.mu.Unlock()
	}
	return d
}

// dropsRound decides whether the round fails.
func (f *FaultyExecutor) dropsRound(round int) bool {
	if containsRound(f.cfg.DropRounds, round) {
		return true
	}
	if f.cfg.DropProb > 0 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.rng.Float64() < f.cfg.DropProb
	}
	return false
}

func containsRound(rounds []int, round int) bool {
	for _, r := range rounds {
		if r == round {
			return true
		}
	}
	return false
}
