package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"clinfl/internal/metrics"
	"clinfl/internal/tensor"
)

// File framing: a magic header, then records as
//
//	u32 little-endian body length (capped at maxRecordSize)
//	u32 CRC-32C of the body
//	body (see encodeRecord)
//
// Durability is group-committed: appends write immediately and a
// background syncer batches the fsyncs, so the round's record burst
// flushes while the next round's clients train instead of stalling the
// server once per record. What survives a crash is always a *prefix* of
// the append order — an fsync that covers a round's open record covers
// every earlier record too — and the round protocol is arranged so any
// durable prefix resumes correctly: replay can never pair a round with
// stale weights, and a lost suffix only re-runs work whose recomputation
// is byte-identical. Session grants are the one record an external
// promise rides on (the token handed to the client must outlive the
// process), so those sync before returning. A torn tail — the crash
// landed mid-write or mid-sync — fails the length or CRC check on reopen
// and is truncated away; every record before it replays exactly.

// walMagic opens every WAL file.
const walMagic = "CFWAL1\n"

// castagnoli is the CRC-32C table (same polynomial as iSCSI/ext4 —
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a WAL.
type Options struct {
	// NoSync skips every fsync. Only for tests and benchmarks that
	// measure the encoding path; production records must reach disk
	// before the actions they back become externally visible.
	NoSync bool
	// Metrics, when non-nil, receives wal_appends_total /
	// wal_fsyncs_total / wal_replayed_records_total counters.
	Metrics *metrics.Registry
	// OnAppend, when non-nil, observes every append with the cumulative
	// append count, synchronously on the appending goroutine, after the
	// record is written to the file. The record is not necessarily
	// durable yet — it becomes so at the next Sync, durable append, or
	// Close. The crash-restart soak harness uses the hook to kill the
	// run at an exact, reproducible point in the record stream.
	OnAppend func(total int64, rec *Record)
}

// Update is one client update recovered from the WAL.
type Update struct {
	Client       string
	NumSamples   int
	TrainLoss    float64
	PayloadBytes int
	Weights      map[string]*tensor.Matrix
}

// OpenRound is a round that was opened but never committed: the crash
// happened mid-gather. Tasked is the recorded task-assignment set
// (sorted, deduplicated); Updates are the updates that reached the WAL,
// in arrival order, at most one per client.
type OpenRound struct {
	Round   int
	Tasked  []string
	Updates []*Update
}

// HasUpdate reports whether client's update is already in the WAL.
func (o *OpenRound) HasUpdate(client string) bool {
	for _, u := range o.Updates {
		if u.Client == client {
			return true
		}
	}
	return false
}

// State is the replayed view of a WAL: everything a restarted server
// needs to resume.
type State struct {
	// LastRound is the last committed round (-1 when none committed).
	LastRound int
	// Weights is the last committed global model (nil when none).
	Weights map[string]*tensor.Matrix
	// Sessions maps client name to issued session token.
	Sessions map[string]string
	// Health maps client name to its last recorded reconciliation state
	// ("quarantined" or, after a rejoin, "healthy"); last-wins on
	// replay. A restart seeds its health monitor from this so a
	// quarantined client stays out of the sample pool across the crash.
	Health map[string]string
	// Open is the in-flight round, if the crash happened mid-round.
	Open *OpenRound
	// Records counts replayed records.
	Records int64
	// Torn reports that a corrupt/torn tail was truncated on open.
	Torn bool
}

// apply folds one replayed record into the state.
func (s *State) apply(rec *Record) {
	switch rec.Type {
	case RecSession:
		s.Sessions[rec.Client] = rec.Token
	case RecRoundOpen:
		if rec.Round <= s.LastRound {
			return // stale: already committed
		}
		if s.Open == nil || s.Open.Round != rec.Round {
			s.Open = &OpenRound{Round: rec.Round}
		}
	case RecTaskAssigned:
		if s.Open == nil || s.Open.Round != rec.Round {
			return
		}
		for _, t := range s.Open.Tasked {
			if t == rec.Client {
				return
			}
		}
		s.Open.Tasked = append(s.Open.Tasked, rec.Client)
		sort.Strings(s.Open.Tasked)
	case RecUpdate:
		if s.Open == nil || s.Open.Round != rec.Round || s.Open.HasUpdate(rec.Client) {
			return
		}
		s.Open.Updates = append(s.Open.Updates, &Update{
			Client:       rec.Client,
			NumSamples:   rec.NumSamples,
			TrainLoss:    rec.TrainLoss,
			PayloadBytes: rec.PayloadBytes,
			Weights:      rec.Weights,
		})
	case RecRoundFinal:
		// Informational; RecModelCommit is the durable commit point. A
		// crash between the two leaves the round open, and the resumed
		// round re-finalizes from the recorded updates — byte-identical,
		// since aggregation order is canonicalized.
	case RecModelCommit:
		if rec.Round > s.LastRound {
			s.LastRound = rec.Round
			s.Weights = rec.Weights
		}
		if s.Open != nil && s.Open.Round <= rec.Round {
			s.Open = nil
		}
	case RecHealth:
		if s.Health == nil {
			s.Health = make(map[string]string)
		}
		s.Health[rec.Client] = rec.Token
	}
}

// WAL is an open write-ahead log positioned for appends. Appends are
// safe from multiple goroutines (the server writes sessions from reader
// goroutines and round records from the run loop); Recovered state is a
// snapshot taken at Open.
type WAL struct {
	opts Options
	st   *State

	// mu guards file writes and the append/synced counters; it is never
	// held across an fsync, so group syncs overlap with fresh appends.
	mu      sync.Mutex
	f       *os.File
	scratch []byte // reused encode buffer: one ~update-sized allocation per log, not per append
	appends int64  // records written through this handle
	fsyncs  int64
	synced  int64 // records covered by a completed fsync
	syncErr error // sticky: first write/fsync failure poisons the log

	// syncMu serializes fsyncs between barrier callers and the syncer.
	syncMu    sync.Mutex
	wake      chan struct{} // nudges the background syncer, capacity 1
	quit      chan struct{}
	syncerEnd chan struct{}
	closeOnce sync.Once

	cAppends *metrics.Counter
	cFsyncs  *metrics.Counter
}

// Open opens (or creates) the WAL at path, replays every intact record
// into a State snapshot, truncates any torn tail, and positions the file
// for appends.
func Open(path string, opts Options) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", path, err)
	}
	w := &WAL{
		f:         f,
		opts:      opts,
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		syncerEnd: make(chan struct{}),
		cAppends:  opts.Metrics.Counter("wal_appends_total", "WAL records appended"),
		cFsyncs:   opts.Metrics.Counter("wal_fsyncs_total", "WAL fsync calls"),
	}
	st, good, err := replayFile(f)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("durable: seek %s: %w", path, err)
	}
	if size == 0 {
		// Fresh log: write the magic header.
		if _, err := f.Write([]byte(walMagic)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("durable: write header: %w", err)
		}
		if err := w.fsync(); err != nil {
			_ = f.Close()
			return nil, err
		}
	} else if good < size {
		// Torn or corrupt tail: truncate back to the last intact record.
		st.Torn = true
		if err := f.Truncate(good); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("durable: reposition: %w", err)
		}
		if err := w.fsync(); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	opts.Metrics.Counter("wal_replayed_records_total", "WAL records replayed at open").Add(st.Records)
	w.st = st
	go w.syncer()
	return w, nil
}

// replayFile reads records from the start of f, returning the replayed
// state and the offset of the end of the last intact record. Any decode
// failure — short header, implausible length, CRC mismatch, body decode
// error — ends the replay at the previous good offset; it is reported as
// a torn tail, never an open error, because a crash mid-append is
// exactly the failure the WAL exists to absorb.
func replayFile(f *os.File) (*State, int64, error) {
	st := &State{LastRound: -1, Sessions: make(map[string]string), Health: make(map[string]string)}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("durable: seek: %w", err)
	}
	hdr := make([]byte, len(walMagic))
	n, err := io.ReadFull(f, hdr)
	if err != nil {
		return st, 0, nil // empty or shorter than the magic: fresh/torn
	}
	if string(hdr) != walMagic {
		return nil, 0, fmt.Errorf("durable: bad WAL magic %q", hdr)
	}
	good := int64(n)
	frame := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			return st, good, nil
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length > maxRecordSize {
			return st, good, nil
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(f, body); err != nil {
			return st, good, nil
		}
		if crc32.Checksum(body, castagnoli) != sum {
			return st, good, nil
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return st, good, nil
		}
		st.apply(rec)
		st.Records++
		good += int64(8 + len(body))
	}
}

// Recovered returns the state replayed at Open (never nil).
func (w *WAL) Recovered() *State { return w.st }

// append encodes rec, frames it with length+CRC, and writes it, firing
// the OnAppend hook on the caller. It returns the record's position in
// the append sequence; the record is written but not yet durable.
func (w *WAL) append(rec *Record) (int64, error) {
	w.mu.Lock()
	if err := w.syncErr; err != nil {
		w.mu.Unlock()
		return 0, err
	}
	// Encode into the reused scratch buffer (mu serializes its use): a
	// round writes tens of MB of update records, and allocating each
	// body fresh would hand the GC that much garbage per round.
	body, err := encodeRecordInto(w.scratch[:0], rec)
	if err != nil {
		w.mu.Unlock()
		return 0, err
	}
	w.scratch = body
	// Header and body go out as two writes rather than one concatenated
	// frame: copying the body just to save a syscall would cost more
	// than the syscall. A crash between the writes is an ordinary torn
	// tail.
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	if _, err := w.f.Write(hdr[:]); err != nil {
		err = fmt.Errorf("durable: append %s: %w", rec.Type, err)
		w.syncErr = err
		w.mu.Unlock()
		return 0, err
	}
	if _, err := w.f.Write(body); err != nil {
		err = fmt.Errorf("durable: append %s: %w", rec.Type, err)
		w.syncErr = err
		w.mu.Unlock()
		return 0, err
	}
	w.appends++
	n := w.appends
	w.mu.Unlock()
	w.cAppends.Inc()
	if w.opts.OnAppend != nil {
		w.opts.OnAppend(n, rec)
	}
	return n, nil
}

// Append writes rec and blocks until it is durable. When Append returns
// nil the record (and, by file order, every record appended before it)
// survives power loss. The round-lifecycle appenders below are mostly
// lazy instead; use Append directly when the caller is about to act on
// the record externally.
func (w *WAL) Append(rec *Record) error {
	n, err := w.append(rec)
	if err != nil {
		return err
	}
	return w.syncTo(n)
}

// appendLazy writes rec and returns without waiting for durability; the
// background syncer group-commits it, or the next Sync/durable
// append/Close does. A write error is returned here; a later fsync
// failure is sticky and surfaces on the next append, Sync, or Close.
func (w *WAL) appendLazy(rec *Record) error {
	if _, err := w.append(rec); err != nil {
		return err
	}
	select {
	case w.wake <- struct{}{}:
	default: // syncer already has a pending nudge
	}
	return nil
}

// Sync blocks until every record appended before the call is durable —
// the explicit group-commit barrier. Close uses it to settle the tail;
// the round hot path deliberately does not (see the package durability
// comment above).
func (w *WAL) Sync() error {
	w.mu.Lock()
	target, err := w.appends, w.syncErr
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.syncTo(target)
}

// syncTo blocks until the first target appended records are durable.
// Syncs are serialized by syncMu, but mu is released across the fsync so
// appends keep flowing while a group commit is in flight.
func (w *WAL) syncTo(target int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if err := w.syncErr; err != nil {
		w.mu.Unlock()
		return err
	}
	if w.synced >= target {
		w.mu.Unlock()
		return nil
	}
	// Every write that completed before this point is in the file and
	// will be covered by the fsync; later racing writes wait their turn.
	covered := w.appends
	w.mu.Unlock()
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			err = fmt.Errorf("durable: fsync: %w", err)
			w.mu.Lock()
			if w.syncErr == nil {
				w.syncErr = err
			}
			w.mu.Unlock()
			return err
		}
	}
	w.mu.Lock()
	if !w.opts.NoSync {
		w.fsyncs++
	}
	if covered > w.synced {
		w.synced = covered
	}
	w.mu.Unlock()
	if !w.opts.NoSync {
		w.cFsyncs.Inc()
	}
	return nil
}

// coalesceDelay is how long the syncer waits for the append stream to go
// quiet before group-committing. A round's records arrive as a burst
// (task scatter, then the update gather); fsyncing eagerly inside the
// burst makes every multi-MB write stall behind the in-flight flush of
// the previous record, so instead the whole burst settles in one fsync
// once the writer pauses — off-thread, under the next round's training.
const coalesceDelay = 5 * time.Millisecond

// syncer is the background group-commit loop: a nudge from a lazy append
// arms it, it waits out the burst, then flushes everything written so
// far in one fsync. Errors are sticky in syncTo and surface on the next
// append, Sync, or Close.
func (w *WAL) syncer() {
	defer close(w.syncerEnd)
	for {
		select {
		case <-w.quit:
			return
		case <-w.wake:
		}
		last := w.Appends()
		for {
			select {
			case <-w.quit:
				return // Close settles the tail
			case <-time.After(coalesceDelay):
			}
			cur := w.Appends()
			if cur == last {
				break
			}
			last = cur
		}
		_ = w.Sync()
	}
}

// fsync flushes the file unless Options.NoSync (used by Open, outside
// the record-counting group-commit machinery).
func (w *WAL) fsync() error {
	if w.opts.NoSync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	w.mu.Lock()
	w.fsyncs++
	w.mu.Unlock()
	w.cFsyncs.Inc()
	return nil
}

// Appends returns the records appended through this handle.
func (w *WAL) Appends() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Fsyncs returns the fsync calls made through this handle.
func (w *WAL) Fsyncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fsyncs
}

// Close stops the syncer, flushes any records still awaiting their
// group commit, and closes the file. Safe to call more than once.
func (w *WAL) Close() error {
	w.closeOnce.Do(func() {
		close(w.quit)
		<-w.syncerEnd
	})
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Convenience appenders for the round lifecycle. Their durability
// follows the protocol's commitment points: session grants are durable
// before the ack (the token outlives the process); every round record is
// lazy, group-committed by the background syncer and settled by Close —
// a suffix lost from an unsynced tail just re-runs its rounds to the
// byte-identical result.

// AppendSession records a client registration, durably: the token is
// about to be handed to the client, and a restart must recognize it.
func (w *WAL) AppendSession(client, token string) error {
	return w.Append(&Record{Type: RecSession, Client: client, Token: token})
}

// AppendRoundOpen marks the start of a round (lazy).
func (w *WAL) AppendRoundOpen(round int) error {
	return w.appendLazy(&Record{Type: RecRoundOpen, Round: round})
}

// AppendTaskAssigned records one client receiving the round's task
// (lazy).
func (w *WAL) AppendTaskAssigned(round int, client string) error {
	return w.appendLazy(&Record{Type: RecTaskAssigned, Round: round, Client: client})
}

// AppendUpdate records one received client update, weights included
// (lazy; an update lost with an unsynced tail re-tasks the client on
// resume, whose recomputation is byte-identical).
func (w *WAL) AppendUpdate(round int, client string, numSamples int, trainLoss float64, payloadBytes int, weights map[string]*tensor.Matrix) error {
	return w.appendLazy(&Record{
		Type: RecUpdate, Round: round, Client: client,
		NumSamples: numSamples, TrainLoss: trainLoss,
		PayloadBytes: payloadBytes, Weights: weights,
	})
}

// AppendRoundFinal records a round's aggregation (lazy; informational).
func (w *WAL) AppendRoundFinal(round int, participants []string) error {
	return w.appendLazy(&Record{Type: RecRoundFinal, Round: round, Participants: participants})
}

// AppendModelCommit commits a round's global model. Lazy: by file order
// the commit is never durable before the updates it aggregates nor after
// the next round's open, so replay always resumes a round against the
// model it actually started from.
func (w *WAL) AppendModelCommit(round int, weights map[string]*tensor.Matrix) error {
	return w.appendLazy(&Record{Type: RecModelCommit, Round: round, Weights: weights})
}

// AppendHealth records a reconciliation pool-membership decision for a
// client — quarantine entry or the rejoin clearing it — durably: the
// decision takes effect in the sample pool immediately, so it must
// survive a crash (a restart that forgot a quarantine would resurrect a
// misbehaving client into the pool).
func (w *WAL) AppendHealth(round int, client, state string) error {
	return w.Append(&Record{Type: RecHealth, Round: round, Client: client, Token: state})
}
