// Package durable is the federation server's write-ahead log: an
// append-only, fsync'd, CRC-checked record stream of round lifecycle
// events (client sessions, round open, task assignment, update receipt,
// round finalization, model commit) that lets a crashed Server or
// Controller reconstruct its in-flight round state — pending clients,
// already-received updates, the last committed global model — and resume
// mid-round instead of losing the run.
//
// The on-disk format follows the decoder discipline established for the
// weight codecs and the transport framing (PR 3/PR 5): every length is
// capped before allocation, every record body carries a CRC-32C, and the
// decoder is fuzzed. A torn tail (the crash happened mid-append) is
// detected by CRC/length mismatch and truncated on reopen; anything
// before it replays exactly.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"clinfl/internal/tensor"
)

// RecordType enumerates WAL record kinds.
type RecordType uint8

// WAL record kinds, in round-lifecycle order.
const (
	// RecSession records a client registration: name plus the session
	// token the server issued, so reconnects after a server restart can
	// re-attach to their session.
	RecSession RecordType = iota + 1
	// RecRoundOpen marks the start of a round's scatter.
	RecRoundOpen
	// RecTaskAssigned records one client receiving the round's task.
	RecTaskAssigned
	// RecUpdate records one client's update — weights included, at full
	// f64 precision, so a resumed round aggregates bit-identical values.
	RecUpdate
	// RecRoundFinal marks a round's aggregation (participants listed);
	// informational — RecModelCommit is the durable commit point.
	RecRoundFinal
	// RecModelCommit stores the committed global model for a round. On
	// replay it closes any open round at or before it.
	RecModelCommit
	// RecHealth records a reconciliation health decision for a client
	// (the state name rides in Token — the layout's existing string
	// slot). Only pool-membership edges are logged: quarantine entry,
	// and the rejoin that clears it. Replay applies them last-wins, so a
	// restart never resurrects a quarantined client into the sample
	// pool.
	RecHealth
)

// String names the record kind.
func (t RecordType) String() string {
	switch t {
	case RecSession:
		return "session"
	case RecRoundOpen:
		return "round-open"
	case RecTaskAssigned:
		return "task-assigned"
	case RecUpdate:
		return "update"
	case RecRoundFinal:
		return "round-final"
	case RecModelCommit:
		return "model-commit"
	case RecHealth:
		return "health"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one WAL entry. Fields beyond Type/Round are used by the
// kinds that need them and zero elsewhere.
type Record struct {
	Type   RecordType
	Round  int
	Client string
	// Token is the session token (RecSession).
	Token string
	// NumSamples / TrainLoss / PayloadBytes describe an update
	// (RecUpdate); PayloadBytes is the update's original wire size so
	// byte accounting survives a restart.
	NumSamples   int
	TrainLoss    float64
	PayloadBytes int
	// Participants lists the clients aggregated in a round
	// (RecRoundFinal).
	Participants []string
	// Weights carries a full-precision weight map (RecUpdate,
	// RecModelCommit).
	Weights map[string]*tensor.Matrix
}

// Decoder hardening caps. A record that exceeds any of them fails decode
// instead of allocating.
const (
	// maxRecordSize bounds one encoded record body (64 MiB, matching the
	// transport frame cap: a record never carries more than one message's
	// worth of weights).
	maxRecordSize = 64 << 20
	// maxNameLen bounds client names and session tokens.
	maxNameLen = 4096
	// maxListLen bounds participant lists and weight-map entry counts
	// (they are encoded as u16).
	maxListLen = math.MaxUint16
)

// ErrRecordTooLarge is returned for records exceeding maxRecordSize.
var ErrRecordTooLarge = errors.New("durable: record exceeds size limit")

// encodeRecord renders rec as one record body (no length/CRC framing).
// Layout, all little-endian:
//
//	u8   type
//	u32  round
//	str  client        (u16 len + bytes)
//	str  token
//	u32  numSamples
//	u64  trainLoss bits
//	u32  payloadBytes
//	u16  nParticipants, then that many str
//	u16  nWeights, then per entry: str name + tensor wire format
//
// Weight entries are name-sorted so the same logical record always
// encodes to the same bytes.
func encodeRecord(rec *Record) ([]byte, error) {
	return encodeRecordInto(nil, rec)
}

// encodeRecordInto appends rec's body to b (typically a reused scratch
// buffer) and returns the extended slice. The buffer is pre-sized for
// the weight payload — an update record is tens of MB, and letting
// append discover that by doubling would copy the whole body several
// times over on the round's hot path — and the weight data is packed
// directly, without an intermediate per-matrix buffer.
func encodeRecordInto(b []byte, rec *Record) ([]byte, error) {
	if rec.Round < 0 || rec.Round > math.MaxInt32 {
		return nil, fmt.Errorf("durable: round %d out of range", rec.Round)
	}
	capHint := len(b) + 64 + len(rec.Client) + len(rec.Token)
	for _, p := range rec.Participants {
		capHint += 2 + len(p)
	}
	for name, m := range rec.Weights {
		capHint += 2 + len(name) + 16 + 8*m.Rows()*m.Cols()
	}
	// Reject obviously oversized payloads before allocating for them; the
	// exact cap check on the encoded length below still governs records
	// near the limit.
	if capHint-len(b) > maxRecordSize+64 {
		return nil, fmt.Errorf("%w: ~%d bytes", ErrRecordTooLarge, capHint-len(b))
	}
	if cap(b) < capHint {
		nb := make([]byte, len(b), capHint)
		copy(nb, b)
		b = nb
	}
	start := len(b)
	b = append(b, byte(rec.Type))
	b = binary.LittleEndian.AppendUint32(b, uint32(rec.Round))
	var err error
	if b, err = appendString(b, rec.Client); err != nil {
		return nil, err
	}
	if b, err = appendString(b, rec.Token); err != nil {
		return nil, err
	}
	if rec.NumSamples < 0 || rec.NumSamples > math.MaxInt32 ||
		rec.PayloadBytes < 0 || rec.PayloadBytes > math.MaxInt32 {
		return nil, fmt.Errorf("durable: update counters out of range")
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(rec.NumSamples))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rec.TrainLoss))
	b = binary.LittleEndian.AppendUint32(b, uint32(rec.PayloadBytes))
	if len(rec.Participants) > maxListLen {
		return nil, fmt.Errorf("durable: %d participants exceeds cap", len(rec.Participants))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(rec.Participants)))
	for _, p := range rec.Participants {
		if b, err = appendString(b, p); err != nil {
			return nil, err
		}
	}
	if len(rec.Weights) > maxListLen {
		return nil, fmt.Errorf("durable: %d weight entries exceeds cap", len(rec.Weights))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(rec.Weights)))
	names := make([]string, 0, len(rec.Weights))
	for name := range rec.Weights {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if b, err = appendString(b, name); err != nil {
			return nil, err
		}
		// The matrix wire format from tensor.Matrix.WriteTo (u64 rows,
		// u64 cols, f64 data, all little-endian), packed in place: the
		// capacity is already reserved, so the data lands in the buffer
		// with no per-matrix temporary.
		m := rec.Weights[name]
		b = binary.LittleEndian.AppendUint64(b, uint64(m.Rows()))
		b = binary.LittleEndian.AppendUint64(b, uint64(m.Cols()))
		data := m.Data()
		off := len(b)
		if cap(b)-off < 8*len(data) {
			nb := make([]byte, off, off+8*len(data))
			copy(nb, b)
			b = nb
		}
		b = b[:off+8*len(data)]
		for i, v := range data {
			binary.LittleEndian.PutUint64(b[off+i*8:], math.Float64bits(v))
		}
	}
	if len(b)-start > maxRecordSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(b)-start)
	}
	return b, nil
}

// decodeRecord parses one record body produced by encodeRecord. It never
// panics on corrupt input: every read is bounds-checked and every count
// capped before allocation (the fuzz target drives this directly).
func decodeRecord(body []byte) (*Record, error) {
	if len(body) > maxRecordSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(body))
	}
	r := &byteReader{b: body}
	t, err := r.u8()
	if err != nil {
		return nil, err
	}
	rec := &Record{Type: RecordType(t)}
	if rec.Type < RecSession || rec.Type > RecHealth {
		return nil, fmt.Errorf("durable: unknown record type %d", t)
	}
	round, err := r.u32()
	if err != nil {
		return nil, err
	}
	if round > math.MaxInt32 {
		return nil, fmt.Errorf("durable: round %d out of range", round)
	}
	rec.Round = int(round)
	if rec.Client, err = r.str(); err != nil {
		return nil, err
	}
	if rec.Token, err = r.str(); err != nil {
		return nil, err
	}
	ns, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ns > math.MaxInt32 {
		return nil, fmt.Errorf("durable: sample count %d out of range", ns)
	}
	rec.NumSamples = int(ns)
	lossBits, err := r.u64()
	if err != nil {
		return nil, err
	}
	rec.TrainLoss = math.Float64frombits(lossBits)
	pb, err := r.u32()
	if err != nil {
		return nil, err
	}
	if pb > math.MaxInt32 {
		return nil, fmt.Errorf("durable: payload bytes %d out of range", pb)
	}
	rec.PayloadBytes = int(pb)
	np, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(np); i++ {
		p, err := r.str()
		if err != nil {
			return nil, err
		}
		rec.Participants = append(rec.Participants, p)
	}
	nw, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nw > 0 {
		rec.Weights = make(map[string]*tensor.Matrix, nw)
	}
	for i := 0; i < int(nw); i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		if _, dup := rec.Weights[name]; dup {
			return nil, fmt.Errorf("durable: duplicate weight %q", name)
		}
		var m tensor.Matrix
		if _, err := m.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("durable: decode weight %q: %w", name, err)
		}
		rec.Weights[name] = &m
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("durable: %d trailing bytes after record", len(r.b)-r.off)
	}
	return rec, nil
}

// appendString appends a u16-length-prefixed string, enforcing the cap.
func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > maxNameLen {
		return nil, fmt.Errorf("durable: string length %d exceeds cap", len(s))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

// byteReader reads primitives with bounds checks; tensor.ReadFrom uses
// it as a plain io.Reader for the weight payloads.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, errTruncated
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

var errTruncated = errors.New("durable: truncated record")

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, errTruncated
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *byteReader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *byteReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxNameLen {
		return "", fmt.Errorf("durable: string length %d exceeds cap", n)
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
