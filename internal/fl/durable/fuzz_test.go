package durable

import (
	"testing"

	"clinfl/internal/tensor"
)

// FuzzDecodeRecord drives the WAL record decoder with arbitrary bytes.
// The decoder must never panic and never allocate beyond its caps; on
// valid input, a decode→encode→decode round trip must be stable.
func FuzzDecodeRecord(f *testing.F) {
	seedRecords := []*Record{
		{Type: RecSession, Client: "clinic", Token: "tok-1"},
		{Type: RecRoundOpen, Round: 12},
		{Type: RecTaskAssigned, Round: 12, Client: "clinic"},
		{Type: RecUpdate, Round: 12, Client: "clinic", NumSamples: 64, TrainLoss: 0.25,
			PayloadBytes: 512, Weights: map[string]*tensor.Matrix{
				"w": tensor.MustFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6}),
			}},
		{Type: RecRoundFinal, Round: 12, Participants: []string{"clinic", "lab"}},
		{Type: RecModelCommit, Round: 12, Weights: map[string]*tensor.Matrix{
			"b": tensor.MustFromSlice(1, 1, []float64{-0.5}),
		}},
	}
	for _, rec := range seedRecords {
		body, err := encodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, body []byte) {
		rec, err := decodeRecord(body)
		if err != nil {
			return
		}
		re, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record failed: %v", err)
		}
		rec2, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rec2.Type != rec.Type || rec2.Round != rec.Round || rec2.Client != rec.Client {
			t.Fatalf("round trip not stable: %+v vs %+v", rec2, rec)
		}
	})
}
