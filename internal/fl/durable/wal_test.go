package durable

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"clinfl/internal/metrics"
	"clinfl/internal/tensor"
)

func testWeights(seed float64) map[string]*tensor.Matrix {
	return map[string]*tensor.Matrix{
		"w": tensor.MustFromSlice(2, 2, []float64{seed, seed + 0.5, -seed, math.Pi * seed}),
		"b": tensor.MustFromSlice(1, 2, []float64{seed * 10, 0}),
	}
}

func weightsEqual(a, b map[string]*tensor.Matrix) bool {
	if len(a) != len(b) {
		return false
	}
	for k, m := range a {
		o, ok := b[k]
		if !ok || !m.Equal(o) {
			return false
		}
	}
	return true
}

func TestRecordRoundTripAllTypes(t *testing.T) {
	recs := []*Record{
		{Type: RecSession, Client: "hospital-a", Token: "tok-123"},
		{Type: RecRoundOpen, Round: 7},
		{Type: RecTaskAssigned, Round: 7, Client: "hospital-a"},
		{Type: RecUpdate, Round: 7, Client: "hospital-a", NumSamples: 128,
			TrainLoss: 0.731, PayloadBytes: 4096, Weights: testWeights(1)},
		{Type: RecRoundFinal, Round: 7, Participants: []string{"hospital-a", "hospital-b"}},
		{Type: RecModelCommit, Round: 7, Weights: testWeights(2)},
		{Type: RecHealth, Round: 8, Client: "hospital-b", Token: "quarantined"},
	}
	for _, rec := range recs {
		body, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("encode %s: %v", rec.Type, err)
		}
		got, err := decodeRecord(body)
		if err != nil {
			t.Fatalf("decode %s: %v", rec.Type, err)
		}
		if got.Type != rec.Type || got.Round != rec.Round || got.Client != rec.Client ||
			got.Token != rec.Token || got.NumSamples != rec.NumSamples ||
			got.TrainLoss != rec.TrainLoss || got.PayloadBytes != rec.PayloadBytes {
			t.Fatalf("%s: scalar fields mismatch: %+v vs %+v", rec.Type, got, rec)
		}
		if len(got.Participants) != len(rec.Participants) {
			t.Fatalf("%s: participants %v vs %v", rec.Type, got.Participants, rec.Participants)
		}
		for i := range rec.Participants {
			if got.Participants[i] != rec.Participants[i] {
				t.Fatalf("%s: participant %d mismatch", rec.Type, i)
			}
		}
		if rec.Weights != nil && !weightsEqual(got.Weights, rec.Weights) {
			t.Fatalf("%s: weights mismatch", rec.Type)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rec := &Record{Type: RecModelCommit, Round: 3, Weights: testWeights(4)}
	a, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same record encoded to different bytes")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid, err := encodeRecord(&Record{Type: RecUpdate, Round: 1, Client: "c",
		NumSamples: 1, Weights: testWeights(1)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"unknown type":   {0xFF, 0, 0, 0, 0},
		"truncated":      valid[:len(valid)-3],
		"trailing bytes": append(append([]byte(nil), valid...), 0xAB),
	}
	for name, body := range cases {
		if _, err := decodeRecord(body); err == nil {
			t.Errorf("%s: decode accepted malformed body", name)
		}
	}
}

func TestWALAppendReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Recovered()
	if st.LastRound != -1 || st.Open != nil || len(st.Sessions) != 0 || st.Torn {
		t.Fatalf("fresh WAL state: %+v", st)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AppendSession("a", "tok-a"))
	must(w.AppendSession("b", "tok-b"))
	must(w.AppendRoundOpen(0))
	must(w.AppendTaskAssigned(0, "a"))
	must(w.AppendTaskAssigned(0, "b"))
	must(w.AppendUpdate(0, "a", 10, 0.5, 100, testWeights(1)))
	must(w.AppendUpdate(0, "b", 20, 0.4, 200, testWeights(2)))
	must(w.AppendRoundFinal(0, []string{"a", "b"}))
	committed := testWeights(3)
	must(w.AppendModelCommit(0, committed))
	// Round 1 crashes mid-gather: open, both tasked, only one update in.
	must(w.AppendRoundOpen(1))
	must(w.AppendTaskAssigned(1, "b"))
	must(w.AppendTaskAssigned(1, "a"))
	must(w.AppendUpdate(1, "a", 10, 0.45, 100, testWeights(4)))
	if w.Appends() != 13 {
		t.Fatalf("appends = %d, want 13", w.Appends())
	}
	// Group commit: the round records are lazy, so the fsync count stays
	// far below the append count — only the durable session appends (and
	// the header) are guaranteed synchronous. Sync is the barrier.
	must(w.Sync())
	if got := w.Fsyncs(); got < 3 {
		t.Fatalf("fsyncs = %d, want >= 3 (header, sessions, barrier)", got)
	}
	must(w.Close())

	reg := metrics.NewRegistry()
	w2, err := Open(path, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st = w2.Recovered()
	if st.Torn {
		t.Fatal("clean log reported torn")
	}
	if st.Records != 13 {
		t.Fatalf("replayed %d records, want 13", st.Records)
	}
	if got := reg.Counter("wal_replayed_records_total", "").Value(); got != 13 {
		t.Fatalf("replay counter = %d, want 13", got)
	}
	if st.LastRound != 0 || !weightsEqual(st.Weights, committed) {
		t.Fatalf("committed model not recovered: round %d", st.LastRound)
	}
	if st.Sessions["a"] != "tok-a" || st.Sessions["b"] != "tok-b" {
		t.Fatalf("sessions not recovered: %v", st.Sessions)
	}
	if st.Open == nil || st.Open.Round != 1 {
		t.Fatalf("open round not recovered: %+v", st.Open)
	}
	if len(st.Open.Tasked) != 2 || st.Open.Tasked[0] != "a" || st.Open.Tasked[1] != "b" {
		t.Fatalf("tasked set %v, want sorted [a b]", st.Open.Tasked)
	}
	if len(st.Open.Updates) != 1 || st.Open.Updates[0].Client != "a" ||
		st.Open.Updates[0].NumSamples != 10 || !st.Open.HasUpdate("a") || st.Open.HasUpdate("b") {
		t.Fatalf("open updates %+v", st.Open.Updates)
	}
	// Appending after reopen continues the log.
	must(w2.AppendUpdate(1, "b", 20, 0.35, 200, testWeights(5)))
	must(w2.AppendModelCommit(1, testWeights(6)))
	must(w2.Close())

	w3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	st = w3.Recovered()
	if st.LastRound != 1 || st.Open != nil {
		t.Fatalf("after commit: LastRound=%d Open=%+v", st.LastRound, st.Open)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSession("a", "tok"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRoundOpen(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	goodSize := fileSize(t, path)
	// Simulate a crash mid-append: half a frame of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := w2.Recovered()
	if !st.Torn {
		t.Fatal("torn tail not reported")
	}
	if st.Records != 2 || st.Sessions["a"] != "tok" || st.Open == nil || st.Open.Round != 0 {
		t.Fatalf("intact prefix lost: %+v", st)
	}
	// The tail was truncated and the log accepts fresh appends cleanly.
	if err := w2.AppendTaskAssigned(0, "a"); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if got := fileSize(t, path); got <= goodSize {
		t.Fatalf("file size %d after truncate+append, want > %d", got, goodSize)
	}
	w3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if st := w3.Recovered(); st.Torn || st.Records != 3 {
		t.Fatalf("post-truncate log not clean: %+v", st)
	}
}

func TestWALCorruptMiddleStopsReplayAtCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSession("a", "tok"); err != nil {
		t.Fatal(err)
	}
	firstEnd := fileSize(t, path)
	if err := w.AppendSession("b", "tok2"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSession("c", "tok3"); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Flip a byte inside the second record's body: CRC must catch it, and
	// replay keeps only the records before it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[firstEnd+12] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st := w2.Recovered()
	if !st.Torn || st.Records != 1 || st.Sessions["a"] != "tok" || st.Sessions["b"] != "" {
		t.Fatalf("corrupt-middle replay: %+v", st)
	}
}

func TestWALBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a.wal")
	if err := os.WriteFile(path, []byte("GARBAGE\nmore"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a non-WAL file")
	}
}

func TestWALNoSyncSkipsFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.wal")
	w, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendRoundOpen(0); err != nil {
		t.Fatal(err)
	}
	if w.Fsyncs() != 0 {
		t.Fatalf("fsyncs = %d with NoSync", w.Fsyncs())
	}
}

func TestWALOnAppendHook(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.wal")
	var seen []int64
	var types []RecordType
	w, err := Open(path, Options{NoSync: true, OnAppend: func(n int64, rec *Record) {
		seen = append(seen, n)
		types = append(types, rec.Type)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendRoundOpen(0); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendTaskAssigned(0, "a"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 ||
		types[0] != RecRoundOpen || types[1] != RecTaskAssigned {
		t.Fatalf("hook saw %v %v", seen, types)
	}
}

func TestWALGroupCommitFlushOnClose(t *testing.T) {
	// Lazy round records with no explicit Sync must still be on disk
	// after Close: Close drains the syncer and flushes the tail.
	path := filepath.Join(t.TempDir(), "fl.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRoundOpen(0); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendTaskAssigned(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendUpdate(0, "a", 10, 0.5, 100, testWeights(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		// Second Close reports the already-closed file; it must not
		// panic or deadlock. (Error content is os-specific.)
		t.Log("second Close returned nil")
	}
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st := w2.Recovered()
	if st.Torn || st.Records != 3 || st.Open == nil || st.Open.Round != 0 ||
		len(st.Open.Updates) != 1 {
		t.Fatalf("group-commit tail lost: %+v", st)
	}
}

func TestWALSyncBarrierCoversLazyAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	base := w.Fsyncs()
	for i := 0; i < 5; i++ {
		if err := w.AppendTaskAssigned(0, string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Fsyncs(); got <= base {
		t.Fatalf("barrier did not fsync (fsyncs %d -> %d)", base, got)
	}
	// A second barrier with nothing new appended is a no-op.
	after := w.Fsyncs()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Fsyncs(); got != after {
		t.Fatalf("idle barrier fsynced (fsyncs %d -> %d)", after, got)
	}
}

func TestReplayIdempotentMerge(t *testing.T) {
	// A resumed round re-logs RoundOpen/TaskAssigned/Update records for
	// state it already replayed; the merge must dedupe, first update wins.
	st := &State{LastRound: -1, Sessions: make(map[string]string)}
	st.apply(&Record{Type: RecRoundOpen, Round: 2})
	st.apply(&Record{Type: RecTaskAssigned, Round: 2, Client: "a"})
	st.apply(&Record{Type: RecTaskAssigned, Round: 2, Client: "a"})
	st.apply(&Record{Type: RecUpdate, Round: 2, Client: "a", NumSamples: 5})
	st.apply(&Record{Type: RecRoundOpen, Round: 2}) // resume re-opens same round
	st.apply(&Record{Type: RecUpdate, Round: 2, Client: "a", NumSamples: 99})
	if st.Open == nil || len(st.Open.Tasked) != 1 || len(st.Open.Updates) != 1 {
		t.Fatalf("merge failed: %+v", st.Open)
	}
	if st.Open.Updates[0].NumSamples != 5 {
		t.Fatal("duplicate update overwrote the first durable copy")
	}
	// Stale records for already-committed rounds are ignored.
	st.apply(&Record{Type: RecModelCommit, Round: 2})
	st.apply(&Record{Type: RecRoundOpen, Round: 1})
	st.apply(&Record{Type: RecUpdate, Round: 1, Client: "a"})
	if st.Open != nil || st.LastRound != 2 {
		t.Fatalf("stale round resurrected: %+v", st)
	}
}

func TestWALHealthReplayLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendHealth(2, "c1", "quarantined"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendHealth(3, "c2", "quarantined"); err != nil {
		t.Fatal(err)
	}
	// c2 rejoined two rounds later; the replayed view must not keep it
	// quarantined.
	if err := w.AppendHealth(5, "c2", "healthy"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Recovered()
	if st.Health["c1"] != "quarantined" {
		t.Fatalf("c1 health %q, want quarantined", st.Health["c1"])
	}
	if st.Health["c2"] != "healthy" {
		t.Fatalf("c2 health %q, want healthy (last record wins)", st.Health["c2"])
	}
}

func TestEncodeCapsEnforced(t *testing.T) {
	long := make([]byte, maxNameLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := encodeRecord(&Record{Type: RecSession, Client: string(long)}); err == nil {
		t.Fatal("oversized client name accepted")
	}
	if _, err := encodeRecord(&Record{Type: RecRoundOpen, Round: -1}); err == nil {
		t.Fatal("negative round accepted")
	}
	if _, err := encodeRecord(&Record{Type: RecUpdate, NumSamples: -1}); err == nil {
		t.Fatal("negative sample count accepted")
	}
	// A weight map larger than the record cap must fail encode, not OOM.
	big := map[string]*tensor.Matrix{"w": tensor.New(3000, 3000)} // 72 MB > 64 MiB
	if _, err := encodeRecord(&Record{Type: RecModelCommit, Weights: big}); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
