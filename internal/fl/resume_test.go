package fl

import (
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clinfl/internal/fl/durable"
	"clinfl/internal/metrics"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// fastBackoff keeps reconnect loops snappy in tests.
func fastBackoff() Backoff {
	return Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2}
}

// TestClientSessionResumeAfterCorruptTask corrupts one client's round-0
// task frame in transit. The client's read fails, it redials presenting
// its session token, the server re-attaches the session mid-gather and
// re-sends the in-flight task, and the round still aggregates every
// tasked client — the corruption costs a retry, not a participant.
func TestClientSessionResumeAfterCorruptTask(t *testing.T) {
	network := transport.NewMemNetwork()
	defer network.Close()
	proj := testProject(t, "flaky", "steady")
	reg := metrics.NewRegistry()
	srv, err := NewServer(ServerConfig{
		ExpectedClients: 2,
		Rounds:          2,
		MinClients:      2,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
		Listener:        network,
		Metrics:         reg,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	execs := map[string]*fakeExecutor{
		"flaky": {name: "flaky", samples: 10, value: 1},
		// steady's training delay holds the gather open while flaky's
		// reconnect lands, making the re-attach ordering deterministic.
		"steady": {name: "steady", samples: 30, value: 2, delay: 750 * time.Millisecond},
	}
	var flakyDials atomic.Int32
	dialers := map[string]func() (transport.MessageConn, error){
		"flaky": func() (transport.MessageConn, error) {
			down := transport.LinkProfile{}
			if flakyDials.Add(1) == 1 {
				// Down-direction message 0 is the register ack; message 1
				// is the round-0 task, which arrives bit-flipped.
				down.Faults = transport.FaultSchedule{CorruptMsgs: []int{1}}
			}
			return network.Dial("flaky", transport.LinkProfile{}, down)
		},
		"steady": func() (transport.MessageConn, error) {
			return network.Dial("steady", transport.LinkProfile{}, transport.LinkProfile{})
		},
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	finals := make(map[string]map[string]*tensor.Matrix)
	for name, exec := range execs {
		cl, err := NewClient(ClientConfig{
			Logf:          quietLogf,
			Dialer:        dialers[name],
			Reconnect:     true,
			MaxReconnects: 10,
			Backoff:       fastBackoff(),
		}, proj.ClientKits[name], exec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			final, err := cl.Run()
			if err != nil {
				t.Errorf("client %s: %v", name, err)
				return
			}
			mu.Lock()
			finals[name] = final
			mu.Unlock()
		}(name)
	}

	res, err := srv.Run(initialWeights())
	if err != nil {
		t.Fatalf("server run: %v", err)
	}
	wg.Wait()

	want := 1.75 // FedAvg of 1 (n=10) and 2 (n=30)
	if got := res.FinalWeights["layer.w"].At(0, 0); got != want {
		t.Errorf("final weight %v, want %v", got, want)
	}
	for name, final := range finals {
		if got := final["layer.w"].At(0, 0); got != want {
			t.Errorf("client %s final weight %v, want %v", name, got, want)
		}
	}
	for _, rec := range res.History.Rounds {
		if len(rec.Participants) != 2 {
			t.Errorf("round %d participants %v, want both clients", rec.Round, rec.Participants)
		}
	}
	// The corrupted task never reached an executor: flaky ran each round
	// exactly once, off the re-sent task in round 0.
	if calls := execs["flaky"].calls; calls != 2 {
		t.Errorf("flaky executed %d rounds, want 2", calls)
	}
	if got := flakyDials.Load(); got < 2 {
		t.Errorf("flaky dialed %d times, want a reconnect after the corrupt frame", got)
	}
	if got := reg.Counter("fl_session_resumes_total", "").Value(); got < 1 {
		t.Errorf("fl_session_resumes_total = %d, want >= 1", got)
	}
}

// TestServerRestartResumesFromWAL kills a WAL-backed server mid-gather —
// after one client's round-1 update is already durable — then starts a
// fresh server process over the same WAL. The clients ride out the outage
// via session resume, the replacement server re-seeds the recovered update
// without re-training that client, re-tasks only the unheard one, and the
// federation finishes with the exact model an uninterrupted run produces.
func TestServerRestartResumesFromWAL(t *testing.T) {
	proj := testProject(t, "c1", "c2")
	walPath := filepath.Join(t.TempDir(), "run.wal")
	reg := metrics.NewRegistry()

	net1 := transport.NewMemNetwork()
	var network atomic.Pointer[transport.MemNetwork]
	network.Store(net1)

	mkServer := func(wal *durable.WAL, ln transport.MessageListener) *Server {
		srv, err := NewServer(ServerConfig{
			ExpectedClients: 2,
			Rounds:          3,
			MinClients:      2,
			RegisterTimeout: 20 * time.Second,
			VerifyToken:     proj.VerifyToken,
			Logf:            quietLogf,
			Listener:        ln,
			WAL:             wal,
			Metrics:         reg,
		}, proj.ServerKit)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	// c1 replies instantly; c2's training delay guarantees the crash —
	// triggered by the first durable round-1 update — fires while c2's
	// update is still outstanding, so the WAL is left with an open round.
	execs := map[string]*fakeExecutor{
		"c1": {name: "c1", samples: 10, value: 1},
		"c2": {name: "c2", samples: 30, value: 2, delay: 400 * time.Millisecond},
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	finals := make(map[string]map[string]*tensor.Matrix)
	for name, exec := range execs {
		name := name
		cl, err := NewClient(ClientConfig{
			Logf:          quietLogf,
			Reconnect:     true,
			MaxReconnects: 50,
			Backoff:       fastBackoff(),
			Dialer: func() (transport.MessageConn, error) {
				return network.Load().Dial(name, transport.LinkProfile{}, transport.LinkProfile{})
			},
		}, proj.ClientKits[name], exec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			final, err := cl.Run()
			if err != nil {
				t.Errorf("client %s: %v", name, err)
				return
			}
			mu.Lock()
			finals[name] = final
			mu.Unlock()
		}(name)
	}

	// Server 1: dies the instant round 1's first client update is durable.
	var srv1 *Server
	var crash sync.Once
	wal1, err := durable.Open(walPath, durable.Options{Metrics: reg, OnAppend: func(_ int64, rec *durable.Record) {
		if rec.Type == durable.RecUpdate && rec.Round == 1 {
			crash.Do(func() { _ = srv1.Close() })
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv1 = mkServer(wal1, net1)
	if _, err := srv1.Run(initialWeights()); err == nil {
		t.Fatal("server 1 survived its scripted crash")
	}
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}

	// Server 2: a fresh process over the same WAL and a fresh network the
	// clients' dialer picks up on their next reconnect attempt.
	net2 := transport.NewMemNetwork()
	defer net2.Close()
	network.Store(net2)
	wal2, err := durable.Open(walPath, durable.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	st := wal2.Recovered()
	if st.Open == nil || st.Open.Round != 1 {
		t.Fatalf("recovered state has no open round 1: %+v", st.Open)
	}
	if len(st.Open.Updates) < 1 {
		t.Fatal("crash left no pending update in the WAL")
	}
	srv2 := mkServer(wal2, net2)
	defer srv2.Close()
	res, err := srv2.Run(initialWeights())
	if err != nil {
		t.Fatalf("server 2 run: %v", err)
	}
	srv2.Close() // release any client still blocked on a read
	wg.Wait()

	want := 1.75 // FedAvg of 1 (n=10) and 2 (n=30)
	if got := res.FinalWeights["layer.w"].At(0, 0); got != want {
		t.Errorf("final weight %v, want %v", got, want)
	}
	for name, final := range finals {
		if got := final["layer.w"].At(0, 0); got != want {
			t.Errorf("client %s final weight %v, want %v", name, got, want)
		}
	}
	// Server 2's history starts at the resumed round, and the resumed
	// round still aggregated both clients: the durable update plus the
	// re-tasked one.
	if len(res.History.Rounds) != 2 {
		t.Fatalf("server 2 ran %d rounds, want 2 (resume at round 1 of 3)", len(res.History.Rounds))
	}
	if got := res.History.Rounds[0].Round; got != 1 {
		t.Errorf("server 2 first round %d, want the open round 1", got)
	}
	if got := len(res.History.Rounds[0].Participants); got != 2 {
		t.Errorf("resumed round had %d participants, want 2: %v", got, res.History.Rounds[0].Participants)
	}
	// c1's durable update was re-seeded, never re-trained: one execution
	// per round. c2 re-trained round 1 after the re-sent task.
	if calls := execs["c1"].calls; calls != 3 {
		t.Errorf("c1 executed %d rounds, want 3 (recovered update must not re-train)", calls)
	}
	if calls := execs["c2"].calls; calls < 3 {
		t.Errorf("c2 executed %d rounds, want >= 3", calls)
	}
	if got := reg.Counter("fl_recoveries_total", "").Value(); got < 1 {
		t.Errorf("fl_recoveries_total = %d, want >= 1", got)
	}
}

// TestRoundToleratesCorruptAndDroppedClients scripts one client whose
// update frame corrupts in transit and one whose executor drops the round
// outright: both must land as per-client failure records while the round
// aggregates the healthy clients — a damaged participant never aborts the
// server.
func TestRoundToleratesCorruptAndDroppedClients(t *testing.T) {
	network := transport.NewMemNetwork()
	defer network.Close()
	proj := testProject(t, "good", "extra", "corrupt", "dropper")
	srv, err := NewServer(ServerConfig{
		ExpectedClients: 4,
		Rounds:          1,
		RegisterTimeout: 10 * time.Second,
		VerifyToken:     proj.VerifyToken,
		Logf:            quietLogf,
		Listener:        network,
	}, proj.ServerKit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	execs := map[string]Executor{
		"good":    &fakeExecutor{name: "good", samples: 10, value: 1},
		"extra":   &fakeExecutor{name: "extra", samples: 30, value: 2},
		"corrupt": &fakeExecutor{name: "corrupt", samples: 50, value: 9},
		"dropper": WrapFaulty(&fakeExecutor{name: "dropper", samples: 50, value: 9},
			FaultConfig{DropRounds: []int{0}}),
	}
	// Up-direction message 0 is the registration; message 1 — the round-0
	// update — arrives bit-flipped, so the server's read of it fails.
	faults := map[string]transport.FaultSchedule{
		"corrupt": {CorruptMsgs: []int{1}},
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	finals := make(map[string]map[string]*tensor.Matrix)
	for name, exec := range execs {
		name := name
		cl, err := NewClient(ClientConfig{
			Logf: quietLogf,
			Dialer: func() (transport.MessageConn, error) {
				return network.Dial(name, transport.LinkProfile{Faults: faults[name]}, transport.LinkProfile{})
			},
		}, proj.ClientKits[name], exec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			// The damaged clients' own runs fail; the server-side records
			// are what this test asserts on.
			final, err := cl.Run()
			if err == nil {
				mu.Lock()
				finals[name] = final
				mu.Unlock()
			}
		}(name)
	}

	res, err := srv.Run(initialWeights())
	if err != nil {
		t.Fatalf("server run must survive damaged clients, got: %v", err)
	}
	srv.Close() // unblock the corrupt client still waiting on a read
	wg.Wait()

	want := 1.75 // FedAvg of the two healthy clients: 1 (n=10), 2 (n=30)
	if got := res.FinalWeights["layer.w"].At(0, 0); got != want {
		t.Errorf("final weight %v, want %v (damaged updates must not aggregate)", got, want)
	}
	rec := res.History.Rounds[0]
	if len(rec.Participants) != 2 {
		t.Errorf("participants %v, want exactly the healthy pair", rec.Participants)
	}
	for _, name := range []string{"corrupt", "dropper"} {
		found := false
		for _, f := range rec.Failures {
			if strings.HasPrefix(f, name+":") {
				found = true
			}
		}
		if !found {
			t.Errorf("failures %v missing a record for %q", rec.Failures, name)
		}
	}
	for _, name := range []string{"good", "extra"} {
		if got := finals[name]["layer.w"].At(0, 0); got != want {
			t.Errorf("client %s final weight %v, want %v", name, got, want)
		}
	}
}
