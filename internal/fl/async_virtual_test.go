package fl_test

// Virtual-clock rewrites of the controller's straggler/deadline tests.
// The originals in async_test.go drove real goroutine sleeps against real
// timers — hundreds of milliseconds per test and flaky the moment CI
// stalls at the wrong instant. Here the same scenarios run on
// sim.NewVirtualClock: delays are virtual (the suite finishes in
// microseconds), deadline outcomes are deterministic, and the assertions
// can therefore be exact instead of margin-padded. This file lives in
// package fl_test because sim imports fl.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"clinfl/internal/fl"
	"clinfl/internal/sim"
	"clinfl/internal/tensor"
)

// vexec is the canned virtual-delay executor.
type vexec struct {
	name    string
	samples int
	value   float64
	delay   time.Duration
	fail    bool
	clock   fl.Clock
}

func (e *vexec) Name() string    { return e.name }
func (e *vexec) NumSamples() int { return e.samples }

func (e *vexec) ExecuteRound(round int, global map[string]*tensor.Matrix) (*fl.ClientUpdate, error) {
	if e.delay > 0 {
		e.clock.Sleep(e.delay)
	}
	if e.fail {
		return nil, errors.New("injected failure")
	}
	weights := make(map[string]*tensor.Matrix, len(global))
	for name, m := range global {
		w := tensor.New(m.Rows(), m.Cols())
		w.Fill(e.value)
		weights[name] = w
	}
	return &fl.ClientUpdate{
		ClientName: e.name, Round: round, Weights: weights,
		NumSamples: e.samples, TrainLoss: 1,
	}, nil
}

func vinitial() map[string]*tensor.Matrix {
	return map[string]*tensor.Matrix{
		"layer.w": tensor.New(2, 3),
		"layer.b": tensor.New(1, 3),
	}
}

// runVirtual builds a controller over the executors (wiring the clock into
// each vexec), runs it, and drains straggler actors.
func runVirtual(t *testing.T, cfg fl.ControllerConfig, execs []*vexec) (*fl.Result, error) {
	t.Helper()
	clock := sim.NewVirtualClock()
	cfg.Clock = clock
	els := make([]fl.Executor, len(execs))
	for i, e := range execs {
		e.clock = clock
		els[i] = e
	}
	ctrl, err := fl.NewController(cfg, els)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), vinitial())
	clock.Drain()
	return res, err
}

// vfour is the canonical roster: 3 fast clients plus one straggler.
func vfour(delay time.Duration) []*vexec {
	return []*vexec{
		{name: "a", samples: 10, value: 1},
		{name: "b", samples: 10, value: 1},
		{name: "c", samples: 10, value: 1},
		{name: "slow", samples: 10, value: 9, delay: delay},
	}
}

// The acceptance scenario, deterministic: 1 of 4 clients delayed 5s
// (virtual) beyond a 300ms round deadline; every round completes without
// it, instantly in real time.
func TestVirtualAsyncRoundsDoNotBlockOnStraggler(t *testing.T) {
	start := time.Now()
	res, err := runVirtual(t, fl.ControllerConfig{
		Rounds:        3,
		MinClients:    1,
		MinUpdates:    3,
		RoundDeadline: 300 * time.Millisecond,
	}, vfour(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("virtual run consumed %v real time", elapsed)
	}
	if len(res.History.Rounds) != 3 {
		t.Fatalf("completed %d rounds, want 3", len(res.History.Rounds))
	}
	for i, rec := range res.History.Rounds {
		if len(rec.Participants) != 3 {
			t.Fatalf("round %d aggregated %v, want the 3 fast clients", i, rec.Participants)
		}
		for _, p := range rec.Participants {
			if p == "slow" {
				t.Fatalf("round %d straggler recorded as participant", i)
			}
		}
	}
	if len(res.History.Rounds[0].Sampled) != 4 {
		t.Fatalf("round 0 sampled %v, want all 4", res.History.Rounds[0].Sampled)
	}
	if len(res.History.Rounds[1].Sampled) != 3 {
		t.Fatalf("round 1 sampled %v, want 3 (straggler in flight)", res.History.Rounds[1].Sampled)
	}
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 1 {
		t.Fatalf("final weight %v, want 1", got)
	}
	// Virtual round durations are exact: each round ends at MinUpdates (no
	// fast-client delay) except none run past the deadline.
	for i, rec := range res.History.Rounds {
		if rec.Duration > 300*time.Millisecond {
			t.Fatalf("round %d virtual duration %v exceeded the deadline", i, rec.Duration)
		}
	}
}

// lateVirtualScenario: the straggler's round-0 update arrives during round
// 1's gather — exactly, every run.
func lateVirtualScenario(t *testing.T, async fl.AsyncAggregator, filters []fl.Filter) (*fl.Result, error) {
	execs := []*vexec{
		{name: "a", samples: 10, value: 1, delay: 400 * time.Millisecond},
		{name: "b", samples: 10, value: 1, delay: 400 * time.Millisecond},
		{name: "c", samples: 10, value: 1, delay: 400 * time.Millisecond},
		{name: "slow", samples: 10, value: 9, delay: 600 * time.Millisecond},
	}
	return runVirtual(t, fl.ControllerConfig{
		Rounds:          2,
		MinClients:      1,
		MinUpdates:      3,
		RoundDeadline:   5 * time.Second,
		AsyncAggregator: async,
		Filters:         filters,
	}, execs)
}

func TestVirtualLateUpdatesDroppedByDefault(t *testing.T) {
	res, err := lateVirtualScenario(t, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dropped []string
	for _, rec := range res.History.Rounds {
		dropped = append(dropped, rec.LateDropped...)
		if len(rec.LateApplied) != 0 {
			t.Fatalf("no async aggregator, yet late update applied: %+v", rec)
		}
	}
	if len(dropped) != 1 || dropped[0] != "slow" {
		t.Fatalf("late drops %v, want [slow]", dropped)
	}
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 1 {
		t.Fatalf("dropped straggler leaked into the model: %v", got)
	}
}

func TestVirtualFedAsyncFoldsLateUpdates(t *testing.T) {
	res, err := lateVirtualScenario(t, fl.FedAsync{Alpha: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var applied []string
	for _, rec := range res.History.Rounds {
		applied = append(applied, rec.LateApplied...)
	}
	if len(applied) != 1 || applied[0] != "slow" {
		t.Fatalf("late applies %v, want [slow]", applied)
	}
	// Round 1 aggregate of fast clients = 1; staleness-1 merge:
	// a = 0.5/(1+1) = 0.25 -> 0.75*1 + 0.25*9 = 3. Exact, every run.
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 3 {
		t.Fatalf("fedasync final weight %v, want exactly 3", got)
	}
}

// recordingFilter logs every update the filter chain sees.
type recordingFilter struct{ seen []string }

func (f *recordingFilter) Name() string { return "recording" }
func (f *recordingFilter) Apply(u *fl.ClientUpdate, _ map[string]*tensor.Matrix) error {
	f.seen = append(f.seen, u.ClientName)
	return nil
}

func TestVirtualFiltersRunOnLateUpdates(t *testing.T) {
	flt := &recordingFilter{}
	res, err := lateVirtualScenario(t, fl.FedAsync{Alpha: 0.5}, []fl.Filter{flt})
	if err != nil {
		t.Fatal(err)
	}
	var applied []string
	for _, rec := range res.History.Rounds {
		applied = append(applied, rec.LateApplied...)
	}
	if len(applied) != 1 || applied[0] != "slow" {
		t.Fatalf("late applies %v, want [slow]", applied)
	}
	slowSeen := 0
	for _, name := range flt.seen {
		if name == "slow" {
			slowSeen++
		}
	}
	if slowSeen != 1 {
		t.Fatalf("filter chain saw the late update %d times (chain: %v), want 1", slowSeen, flt.seen)
	}
}

// vetoFilter rejects one client's updates.
type vetoFilter struct{ client string }

func (f vetoFilter) Name() string { return "veto" }
func (f vetoFilter) Apply(u *fl.ClientUpdate, _ map[string]*tensor.Matrix) error {
	if u.ClientName == f.client {
		return errors.New("vetoed")
	}
	return nil
}

func TestVirtualBadLateUpdateDoesNotAbortRun(t *testing.T) {
	res, err := lateVirtualScenario(t, fl.FedAsync{Alpha: 0.5}, []fl.Filter{vetoFilter{client: "slow"}})
	if err != nil {
		t.Fatalf("one bad late update aborted the run: %v", err)
	}
	var failures, applied []string
	for _, rec := range res.History.Rounds {
		failures = append(failures, rec.Failures...)
		applied = append(applied, rec.LateApplied...)
	}
	if len(applied) != 0 {
		t.Fatalf("vetoed late update still applied: %v", applied)
	}
	found := false
	for _, f := range failures {
		if strings.HasPrefix(f, "slow:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("vetoed late update missing from failures: %v", failures)
	}
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 1 {
		t.Fatalf("vetoed straggler leaked into the model: %v", got)
	}
}

func TestVirtualDeadlinePartialAggregationQuorum(t *testing.T) {
	// Quorum above what the deadline leaves standing: the run must error.
	_, err := runVirtual(t, fl.ControllerConfig{
		Rounds: 1, MinClients: 4, RoundDeadline: 200 * time.Millisecond,
	}, vfour(2*time.Second))
	if err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("want quorum error with MinClients=4, got %v", err)
	}

	// Quorum the deadline can satisfy: partial aggregation proceeds.
	res, err := runVirtual(t, fl.ControllerConfig{
		Rounds: 1, MinClients: 3, RoundDeadline: 200 * time.Millisecond,
	}, vfour(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History.Rounds[0].Participants) != 3 {
		t.Fatalf("participants %v, want 3", res.History.Rounds[0].Participants)
	}
}

func TestVirtualStragglerLegacyTimeout(t *testing.T) {
	// RoundTimeout is the legacy alias of RoundDeadline; under the virtual
	// clock a 2s straggler against a 200ms timeout costs no real time.
	res, err := runVirtual(t, fl.ControllerConfig{
		Rounds: 1, MinClients: 1, RoundTimeout: 200 * time.Millisecond,
	}, []*vexec{
		{name: "fast", samples: 1, value: 1},
		{name: "slow", samples: 1, value: 9, delay: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 1 {
		t.Fatalf("straggler's update should be dropped, got %v", got)
	}
}

// TestVirtualFaultyExecutorUsesInjectedClock: WrapFaulty's injected delays
// consume virtual time when the scenario's clock is wired in.
func TestVirtualFaultyExecutorUsesInjectedClock(t *testing.T) {
	clock := sim.NewVirtualClock()
	inner := &vexec{name: "x", samples: 5, value: 2, clock: clock}
	faulty := fl.WrapFaulty(inner, fl.FaultConfig{
		Delay:       10 * time.Minute, // virtual: free
		DelayRounds: []int{0},
		Clock:       clock,
	})
	ctrl, err := fl.NewController(fl.ControllerConfig{Rounds: 1, Clock: clock}, []fl.Executor{faulty})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := ctrl.Run(context.Background(), vinitial())
	if err != nil {
		t.Fatal(err)
	}
	if real := time.Since(start); real > 2*time.Second {
		t.Fatalf("10 virtual minutes cost %v real time", real)
	}
	if got := res.History.Rounds[0].Duration; got != 10*time.Minute {
		t.Fatalf("round duration %v, want exactly the injected 10m", got)
	}
}

// TestVirtualHistoryReplaysBitIdentical: the full async scenario replays
// byte-for-byte — the determinism contract async_test.go could never pin.
func TestVirtualHistoryReplaysBitIdentical(t *testing.T) {
	run := func() []byte {
		res, err := lateVirtualScenario(t, fl.FedAsync{Alpha: 0.5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(res.History)
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("History not reproducible:\n%s\n%s", a, b)
	}
}
