package fl

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"clinfl/internal/tensor"
)

// codecTestWeights builds a weight map with a spread of magnitudes.
func codecTestWeights(seed int64) map[string]*tensor.Matrix {
	rng := tensor.NewRNG(seed)
	w := map[string]*tensor.Matrix{
		"enc.w": rng.Normal(16, 32, 0, 1),
		"enc.b": rng.Normal(1, 32, 0, 0.01),
		"out.w": rng.Normal(32, 2, 0, 3),
	}
	return w
}

func TestRawCodecRoundTripExact(t *testing.T) {
	weights := codecTestWeights(1)
	blob, err := RawCodec{}.Encode(weights)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RawCodec{}.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range weights {
		if !got[name].Equal(m) {
			t.Fatalf("raw codec changed %q", name)
		}
	}
}

func TestFloat32CodecBoundedErrorAndSize(t *testing.T) {
	weights := codecTestWeights(2)
	raw, err := RawCodec{}.Encode(weights)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Float32Codec{}.Encode(weights)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: quantized transport cuts bytes-on-wire by >=40%.
	if float64(len(blob)) > 0.6*float64(len(raw)) {
		t.Fatalf("f32 payload %d bytes, want <= 60%% of raw %d", len(blob), len(raw))
	}
	got, err := Float32Codec{}.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range weights {
		g := got[name]
		if !g.SameShape(m) {
			t.Fatalf("f32 codec changed shape of %q", name)
		}
		for i, v := range m.Data() {
			q := g.Data()[i]
			if math.Abs(q-v) > 1e-6*math.Max(1, math.Abs(v)) {
				t.Fatalf("f32 %q[%d]: %v -> %v exceeds float32 error bound", name, i, v, q)
			}
		}
	}
}

func TestInt8CodecBoundedErrorAndSize(t *testing.T) {
	weights := codecTestWeights(6)
	// Add an all-zero parameter to exercise the scale-0 row path.
	weights["zero.w"] = tensor.New(4, 8)
	raw, err := RawCodec{}.Encode(weights)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Int8Codec{}.Encode(weights)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: int8 transport cuts bytes-on-wire by >= 60%.
	if float64(len(blob)) > 0.4*float64(len(raw)) {
		t.Fatalf("int8 payload %d bytes, want <= 40%% of raw %d", len(blob), len(raw))
	}
	got, err := Int8Codec{}.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range weights {
		g := got[name]
		if !g.SameShape(m) {
			t.Fatalf("int8 codec changed shape of %q", name)
		}
		d, gd := m.Data(), g.Data()
		cols := m.Cols()
		for r := 0; r < m.Rows(); r++ {
			maxAbs := 0.0
			for _, v := range d[r*cols : (r+1)*cols] {
				maxAbs = math.Max(maxAbs, math.Abs(v))
			}
			// Symmetric int8 grid: half a step per element, plus the
			// float32 rounding of the scale itself.
			bound := maxAbs/254*(1+1e-6) + 1e-15
			for j := r * cols; j < (r+1)*cols; j++ {
				if math.Abs(gd[j]-d[j]) > bound {
					t.Fatalf("int8 %q[%d]: %v -> %v exceeds bound %v", name, j, d[j], gd[j], bound)
				}
			}
		}
	}
	if !got["zero.w"].Equal(weights["zero.w"]) {
		t.Fatal("int8 codec perturbed all-zero parameter")
	}
}

func TestInt8CodecRejectsTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(int8Magic)
	writeUint32(&buf, 1)
	writeName(&buf, "w")
	writeUint32(&buf, 4096)
	writeUint32(&buf, 4096)
	if _, err := (Int8Codec{}).Decode(buf.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncated-payload error, got %v", err)
	}
}

func TestInt8CodecRejectsBadScale(t *testing.T) {
	for _, scale := range []float32{float32(math.NaN()), float32(math.Inf(1)), -1} {
		var buf bytes.Buffer
		buf.WriteString(int8Magic)
		writeUint32(&buf, 1)
		writeName(&buf, "w")
		writeUint32(&buf, 1)
		writeUint32(&buf, 2)
		writeUint32(&buf, math.Float32bits(scale))
		buf.Write([]byte{1, 2})
		if _, err := (Int8Codec{}).Decode(buf.Bytes()); err == nil ||
			!strings.Contains(err.Error(), "bad row scale") {
			t.Fatalf("scale %v: want bad-scale error, got %v", scale, err)
		}
	}
}

func TestTopKCodecKeepsLargestAndShrinks(t *testing.T) {
	weights := codecTestWeights(3)
	raw, err := RawCodec{}.Encode(weights)
	if err != nil {
		t.Fatal(err)
	}
	c := TopKCodec{Fraction: 0.25}
	blob, err := c.Encode(weights)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(blob)) > 0.4*float64(len(raw)) {
		t.Fatalf("top-k 25%% payload %d bytes, want well under raw %d", len(blob), len(raw))
	}
	got, err := c.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range weights {
		g := got[name]
		d, gd := m.Data(), g.Data()
		k := int(math.Ceil(0.25 * float64(len(d))))
		// Threshold = magnitude of the k-th largest element; everything
		// strictly above it must survive, everything kept must round-trip
		// at float32 precision, everything dropped must read zero.
		mags := make([]float64, len(d))
		for i, v := range d {
			mags[i] = math.Abs(v)
		}
		thresh := kthLargest(mags, k)
		kept := 0
		for i, v := range d {
			switch {
			case gd[i] == 0 && math.Abs(v) > thresh:
				t.Fatalf("top-k %q[%d]: dropped element |%v| above threshold %v", name, i, v, thresh)
			case gd[i] != 0:
				kept++
				if math.Abs(gd[i]-v) > 1e-6*math.Max(1, math.Abs(v)) {
					t.Fatalf("top-k %q[%d]: kept value %v -> %v beyond float32 error", name, i, v, gd[i])
				}
			}
		}
		if kept > k {
			t.Fatalf("top-k %q kept %d > k=%d elements", name, kept, k)
		}
	}
}

// kthLargest returns the k-th largest value of vals (1-based).
func kthLargest(vals []float64, k int) float64 {
	cp := append([]float64(nil), vals...)
	for i := 0; i < k; i++ { // tiny n; selection sort is fine
		maxJ := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] > cp[maxJ] {
				maxJ = j
			}
		}
		cp[i], cp[maxJ] = cp[maxJ], cp[i]
	}
	return cp[k-1]
}

func TestDecodeWeightsSniffsEveryCodec(t *testing.T) {
	weights := codecTestWeights(4)
	for _, codec := range []WeightCodec{RawCodec{}, Float32Codec{}, Int8Codec{}, TopKCodec{Fraction: 0.5}} {
		blob, err := codec.Encode(weights)
		if err != nil {
			t.Fatalf("%s encode: %v", codec.Name(), err)
		}
		got, err := DecodeWeights(blob)
		if err != nil {
			t.Fatalf("%s sniffed decode: %v", codec.Name(), err)
		}
		if len(got) != len(weights) {
			t.Fatalf("%s sniffed decode returned %d params, want %d", codec.Name(), len(got), len(weights))
		}
		for name, m := range weights {
			if !got[name].SameShape(m) {
				t.Fatalf("%s sniffed decode changed shape of %q", codec.Name(), name)
			}
		}
	}
	if _, err := DecodeWeights([]byte("junk")); err == nil {
		t.Fatal("want error decoding junk")
	}
}

func TestCodecByName(t *testing.T) {
	for name, want := range map[string]string{
		"":          "raw",
		"raw":       "raw",
		"f32":       "f32",
		"int8":      "int8",
		"topk":      "topk:0.1",
		"topk:0.25": "topk:0.25",
	} {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatalf("CodecByName(%q): %v", name, err)
		}
		if c.Name() != want {
			t.Fatalf("CodecByName(%q).Name() = %q, want %q", name, c.Name(), want)
		}
	}
	for _, bad := range []string{"gzip", "topk:0", "topk:2", "topk:x", "topk:NaN"} {
		if _, err := CodecByName(bad); err == nil {
			t.Fatalf("CodecByName(%q) should fail", bad)
		}
	}
}

func TestTopKCodecRejectsBadFraction(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		if _, err := (TopKCodec{Fraction: f}).Encode(codecTestWeights(5)); err == nil {
			t.Fatalf("fraction %v should fail", f)
		}
	}
}

func TestFedAsyncApply(t *testing.T) {
	g := tensor.New(1, 2)
	g.Fill(1)
	global := map[string]*tensor.Matrix{"w": g}
	w := tensor.New(1, 2)
	w.Fill(5)
	u := &ClientUpdate{ClientName: "late", Weights: map[string]*tensor.Matrix{"w": w}}

	// staleness 1 with alpha 0.5 -> a = 0.25: 0.75*1 + 0.25*5 = 2.
	if err := (FedAsync{Alpha: 0.5}).Apply(global, u, 1); err != nil {
		t.Fatal(err)
	}
	if got := global["w"].At(0, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("fedasync result %v, want 2", got)
	}

	// Same param count but a different name: the per-param lookup fails.
	if err := (FedAsync{}).Apply(global, &ClientUpdate{ClientName: "x", Weights: map[string]*tensor.Matrix{"v": w}}, 0); err == nil ||
		!strings.Contains(err.Error(), "missing param") {
		t.Fatalf("want missing-param error, got %v", err)
	}
	// A short or oversized param set must be rejected outright: extra
	// params were silently dropped before the count cross-check (the
	// loop walks global only), so a client could smuggle params past the
	// late-merge path that weightedAverage would have refused.
	before := global["w"].At(0, 1)
	for _, bad := range []map[string]*tensor.Matrix{
		{},
		{"w": w, "rogue": w},
	} {
		err := (FedAsync{}).Apply(global, &ClientUpdate{ClientName: "x", Weights: bad}, 0)
		if err == nil || !strings.Contains(err.Error(), "params, want") {
			t.Fatalf("want param-count error for %d params, got %v", len(bad), err)
		}
	}
	if got := global["w"].At(0, 1); got != before {
		t.Fatalf("rejected update mutated global: %v -> %v", before, got)
	}
	if err := (FedAsync{Alpha: 2}).Apply(global, u, 0); err == nil {
		t.Fatal("want alpha range error")
	}
	if err := (FedAsync{}).Apply(global, u, -1); err == nil {
		t.Fatal("want staleness error")
	}
}

func TestCodecRejectsOverflowingShape(t *testing.T) {
	// rows*cols here overflows int64 (each ~3.2e9, product ~1e19), so a
	// naive product check would wrap negative and wave the header through.
	var buf bytes.Buffer
	buf.WriteString(f32Magic)
	writeUint32(&buf, 1)
	writeName(&buf, "w")
	writeUint32(&buf, 3<<30)
	writeUint32(&buf, 3<<30)
	if _, err := (Float32Codec{}).Decode(buf.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "implausible shape") {
		t.Fatalf("want implausible-shape error, got %v", err)
	}
}

func TestFloat32CodecRejectsTruncatedPayload(t *testing.T) {
	// A dense shape declaring 16M elements backed by zero data bytes must
	// be rejected before the decoder allocates for it.
	var buf bytes.Buffer
	buf.WriteString(f32Magic)
	writeUint32(&buf, 1)
	writeName(&buf, "w")
	writeUint32(&buf, 4096)
	writeUint32(&buf, 4096)
	if _, err := (Float32Codec{}).Decode(buf.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncated-payload error, got %v", err)
	}
}

func TestTopKCodecRejectsZeroK(t *testing.T) {
	// The encoder always keeps at least one element per parameter, so k=0
	// only appears in corrupt payloads.
	var buf bytes.Buffer
	buf.WriteString(topKMagic)
	writeUint32(&buf, 1)
	writeName(&buf, "w")
	writeUint32(&buf, 2)
	writeUint32(&buf, 2)
	writeUint32(&buf, 0)
	if _, err := (TopKCodec{}).Decode(buf.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "out of [1") {
		t.Fatalf("want k-out-of-range error, got %v", err)
	}
}
