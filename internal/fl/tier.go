package fl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"clinfl/internal/fl/durable"
	"clinfl/internal/fl/hier"
	"clinfl/internal/tensor"
)

// TierConfig enables hierarchical streaming aggregation (ROADMAP item 1):
// client updates fold into O(model) partial aggregates at tier nodes as
// they arrive, and only merged partials flow upward, so the root never
// buffers per-client weight maps. Aggregation stays exact — hier.Partial
// accumulates in floating-point expansions and rounds once at finalize —
// so any tier shape produces bit-identical global weights (pinned in
// fltest). Nil TierConfig keeps the legacy flat path bit-for-bit
// unchanged.
type TierConfig struct {
	// Aggregators lists the fan-in widths of the aggregation tiers
	// between the sampled clients and the root, leaf-most first, for the
	// in-process Controller: {64, 8} folds the sampled clients into 64
	// edge partials, merges those into 8 regional partials, and merges
	// the regionals at the root — each hop's encoded-partial bytes are
	// accounted in RoundRecord.TierBytesUp. The networked Server ignores
	// it (its tier shape is the deployed hier.Edge topology). Nil or
	// empty defaults to a single 8-wide edge tier.
	Aggregators []int
}

// widths resolves the configured tier fan-ins.
func (t *TierConfig) widths() []int {
	if t == nil || len(t.Aggregators) == 0 {
		return []int{8}
	}
	return t.Aggregators
}

// validateTier rejects configuration combinations the tier path does not
// compose with. These are config errors, not silent downgrades: each of
// these features assumes the root sees raw per-client updates.
func validateTier(t *TierConfig, agg Aggregator, async AsyncAggregator,
	filters []Filter, wal *durable.WAL, rp *ReconcilePolicy) error {
	if t == nil {
		return nil
	}
	for _, w := range t.Aggregators {
		if w <= 0 {
			return fmt.Errorf("fl: tier aggregator width %d must be positive", w)
		}
	}
	switch {
	case async != nil:
		return errors.New("fl: tier aggregation is incompatible with AsyncAggregator (stragglers are dropped at tier nodes, not merged late)")
	case len(filters) > 0:
		return errors.New("fl: tier aggregation is incompatible with Filters (per-client filters need raw updates at the root)")
	case wal != nil:
		return errors.New("fl: tier aggregation is incompatible with WAL durability (update records log raw weights)")
	case rp != nil:
		return errors.New("fl: tier aggregation is incompatible with Reconcile (per-client requeue needs root-visible clients)")
	}
	if agg != nil {
		if _, ok := agg.(FedAvg); !ok {
			return errors.New("fl: tier aggregation implies exact streaming FedAvg; custom Aggregator not supported")
		}
	}
	return nil
}

// TierAggregator is the root-side Aggregator a tier-enabled Server
// installs: updates from hier.Edge nodes carry decoded partials and are
// merged; plain client updates (a mixed fleet is fine) are folded
// directly. The result is exact FedAvg over every leaf, identical to
// what a flat server would produce. The exported fields snapshot the
// last Aggregate call's tier accounting for the round record.
type TierAggregator struct {
	// Partials counts the lower-tier partials merged.
	Partials int
	// TierBytes is the encoded bytes those partials arrived as.
	TierBytes int64
	// ResidentBytes is the root's merged aggregation state at finalize —
	// the O(model) quantity, independent of leaf count.
	ResidentBytes int64
}

// Name implements Aggregator.
func (a *TierAggregator) Name() string { return "hier-fedavg" }

// Aggregate implements Aggregator.
func (a *TierAggregator) Aggregate(updates []*ClientUpdate) (map[string]*tensor.Matrix, error) {
	root := hier.NewPartial()
	a.Partials, a.TierBytes = 0, 0
	for _, u := range updates {
		if u.hierPartial != nil {
			if err := root.Merge(u.hierPartial); err != nil {
				return nil, fmt.Errorf("fl: merge partial from %q: %w", u.ClientName, err)
			}
			a.Partials++
			a.TierBytes += int64(u.PayloadBytes)
			continue
		}
		err := root.Fold(hier.Update{
			ClientName: u.ClientName, Weights: u.Weights, NumSamples: u.NumSamples,
			TrainLoss: u.TrainLoss, UpBytes: u.PayloadBytes, DownBytes: u.DownBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("fl: fold update from %q: %w", u.ClientName, err)
		}
	}
	a.ResidentBytes = root.ResidentBytes()
	return root.Finalize()
}

// tierRound runs one round of the in-process controller through the
// aggregation tiers: sampled executors train concurrently, each arriving
// update is folded immediately into its edge shard's partial (and the
// raw weights dropped — the streaming O(model) property), shard partials
// merge up the configured tier widths with per-hop byte accounting, and
// the root finalizes the exact FedAvg. Stragglers past the deadline are
// dropped (recorded in LateDropped when they surface), mirroring the
// legacy no-AsyncAggregator path.
func (c *Controller) tierRound(ctx context.Context, round int, global map[string]*tensor.Matrix, rec *RoundRecord) (map[string]*tensor.Matrix, error) {
	// Drain stragglers that finished between rounds so they become
	// sample-able again (their updates land in LateDropped).
	var late []*ClientUpdate
drain:
	for {
		select {
		case o := <-c.results:
			if err := c.absorbStale(o, round, rec, &late); err != nil {
				return nil, err
			}
		default:
			break drain
		}
	}

	sampled, err := c.sampleClients()
	if err != nil {
		return nil, fmt.Errorf("fl: round %d: %w", round, err)
	}
	for _, ex := range sampled {
		rec.Sampled = append(rec.Sampled, ex.Name())
	}
	// Deterministic shard map: contiguous blocks of the name-sorted
	// sample, so the tier shape is a pure function of the sampled set.
	names := append([]string(nil), rec.Sampled...)
	sort.Strings(names)
	widths := c.cfg.Tier.widths()
	edges := widths[0]
	if edges > len(names) {
		edges = len(names)
	}
	shardOf := make(map[string]int, len(names))
	for i, n := range names {
		shardOf[n] = i * edges / len(names)
	}
	// Shard partials are recycled from round to round: a nil slot still
	// means "no update reached this shard", and a slot is taken from the
	// run-long scratch (Reset keeps its slabs) the first time a shard
	// folds. A reset partial accumulates bit-identically to a fresh one.
	for len(c.tierShards) < edges {
		c.tierShards = append(c.tierShards, hier.NewPartial())
	}
	shards := make([]*hier.Partial, edges)

	for _, ex := range sampled {
		c.dispatch(ex, round, global)
	}
	tasked := len(sampled)
	quorum := c.cfg.MinClients
	if quorum > tasked {
		quorum = tasked
	}
	minUpdates := c.cfg.MinUpdates
	if minUpdates <= 0 || minUpdates > tasked {
		minUpdates = tasked
	}
	if minUpdates < quorum {
		minUpdates = quorum
	}

	folded := 0
	pending := tasked
	deadlineAt, deadlineCh := gatherDeadline(c.cfg.Clock, c.cfg.RoundDeadline)
gather:
	for pending > 0 && folded < minUpdates {
		o, status := waitRecv(c.cfg.Clock, c.results, ctx.Done(), deadlineAt, deadlineCh)
		switch status {
		case waitDeadline:
			c.met.stragglers.Add(int64(pending))
			break gather
		case waitCancelled:
			return nil, fmt.Errorf("fl: round %d cancelled: %w", round, ctx.Err())
		}
		delete(c.inFlight, o.name)
		switch {
		case o.err != nil:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", o.name, o.err))
			c.met.failure("exec")
			if o.round == round {
				pending--
			}
		case o.round == round:
			pending--
			s := shardOf[o.name]
			if shards[s] == nil {
				shards[s] = c.tierShards[s]
				shards[s].Reset()
			}
			u := o.update
			err := shards[s].Fold(hier.Update{
				ClientName: u.ClientName, Weights: u.Weights, NumSamples: u.NumSamples,
				TrainLoss: u.TrainLoss, UpBytes: u.PayloadBytes, DownBytes: u.DownBytes,
			})
			if err != nil {
				// A malformed update is a per-client failure at its edge,
				// not a federation abort: the shard rejects it and the
				// round proceeds with everyone else.
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", o.name, err))
				c.met.failure("reject")
				continue
			}
			folded++
		default:
			rec.LateDropped = append(rec.LateDropped, o.name)
		}
	}
	if folded < quorum {
		return nil, fmt.Errorf("fl: round %d quorum not met: %d/%d updates (failures: %v)",
			round, folded, quorum, rec.Failures)
	}

	// Merge up the tiers. Each hop accounts the exact wire size the
	// level's partials would encode to — what an edge would have sent —
	// without serializing them (EncodedSize is pinned against
	// EncodePartial); merge order is index order, and exactness makes it
	// irrelevant to the result anyway.
	level := make([]*hier.Partial, 0, edges)
	for _, p := range shards {
		if p != nil {
			level = append(level, p)
		}
	}
	climb := func(into []*hier.Partial, groupOf func(i int) int) error {
		for i, p := range level {
			size, err := p.EncodedSize()
			if err != nil {
				return fmt.Errorf("fl: round %d: encode partial: %w", round, err)
			}
			rec.TierPartials++
			rec.TierBytesUp += size
			g := groupOf(i)
			if into[g] == nil {
				// The group's first partial is adopted, not copied: the lower
				// level is dead after the climb, and merging is exact, so
				// "merge into an adopted sibling" and "merge into a fresh
				// empty partial" finalize bit-identically.
				into[g] = p
				into[g].AddTierBytes(size)
				continue
			}
			into[g].AddTierBytes(size)
			if err := into[g].Merge(p); err != nil {
				return fmt.Errorf("fl: round %d: merge partial: %w", round, err)
			}
		}
		return nil
	}
	for _, width := range widths[1:] {
		if width > len(level) {
			width = len(level)
		}
		next := make([]*hier.Partial, width)
		n := len(level)
		if err := climb(next, func(i int) int { return i * width / n }); err != nil {
			return nil, err
		}
		level = next
	}
	rootLevel := make([]*hier.Partial, 1)
	if err := climb(rootLevel, func(int) int { return 0 }); err != nil {
		return nil, err
	}
	root := rootLevel[0]
	if root == nil {
		return nil, fmt.Errorf("fl: round %d: no partials reached the root", round)
	}

	next, err := root.Finalize()
	if err != nil {
		return nil, fmt.Errorf("fl: round %d aggregate: %w", round, err)
	}
	rec.Participants = root.Participants()
	rec.MeanTrainLoss = root.MeanLoss()
	rec.BytesUp = root.BytesUp()
	rec.BytesDown = root.BytesDown()
	rec.TierResidentBytes = root.ResidentBytes()
	return next, nil
}

// clampSamples converts an exact partial weight to the int NumSamples
// field without overflow.
func clampSamples(v int64) int {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}
