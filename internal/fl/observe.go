package fl

import (
	"context"
	"fmt"
	"log/slog"

	"clinfl/internal/metrics"
)

// flMetrics bundles the federation instruments shared by the in-process
// Controller and the networked Server. Built from a nil registry, every
// instrument handle is a nil no-op, so the round loops never branch on
// "is metrics enabled".
type flMetrics struct {
	reg          *metrics.Registry
	rounds       *metrics.Counter
	updates      *metrics.Counter
	bytesUp      *metrics.Counter
	bytesDown    *metrics.Counter
	lateApplied  *metrics.Counter
	lateDropped  *metrics.Counter
	stragglers   *metrics.Counter
	resumes      *metrics.Counter
	requeues     *metrics.Counter
	degraded     *metrics.Counter
	parked       *metrics.Counter
	roundSeconds *metrics.Histogram
	connected    *metrics.Gauge
	tierPartials *metrics.Counter
	tierBytesUp  *metrics.Counter
	tierResident *metrics.Gauge
}

// newFLMetrics registers (or re-looks-up) the federation instruments.
func newFLMetrics(reg *metrics.Registry) flMetrics {
	return flMetrics{
		reg:          reg,
		rounds:       reg.Counter("fl_rounds_total", "federated rounds completed"),
		updates:      reg.Counter("fl_updates_total", "client updates aggregated in-round"),
		bytesUp:      reg.Counter("fl_bytes_up_total", "uplink weight-payload bytes received"),
		bytesDown:    reg.Counter("fl_bytes_down_total", "downlink weight-payload bytes sent"),
		lateApplied:  reg.Counter("fl_late_applied_total", "stale straggler updates merged via the async aggregator"),
		lateDropped:  reg.Counter("fl_late_dropped_total", "stale straggler updates dropped"),
		stragglers:   reg.Counter("fl_stragglers_total", "clients still pending when a round deadline fired"),
		resumes:      reg.Counter("fl_session_resumes_total", "client sessions re-attached after reconnect"),
		requeues:     reg.Counter("fl_requeue_total", "task assignments requeued for retry after a failure"),
		degraded:     reg.Counter("fl_degraded_rounds_total", "rounds finalized partial under mass failure (below min-updates, at or above quorum)"),
		parked:       reg.Counter("fl_parked_rounds_total", "starved rounds parked awaiting client recovery probes"),
		roundSeconds: reg.Histogram("fl_round_seconds", "round duration", metrics.DurationBuckets),
		connected:    reg.Gauge("fl_connected_clients", "currently registered live clients"),
		tierPartials: reg.Counter("fl_tier_partials_total", "partial aggregates merged across tier hops"),
		tierBytesUp:  reg.Counter("fl_tier_bytes_up", "encoded partial-aggregate bytes carried across tier hops"),
		tierResident: reg.Gauge("fl_tier_resident_bytes", "root resident aggregation state at last finalize (O(model))"),
	}
}

// failure counts one client failure under its cause label ("exec" for
// local-training errors, "conn" for connection failures, "reject" for
// protocol/payload rejections, "send" for task-dispatch failures,
// "late" for late-update handling errors).
func (m flMetrics) failure(cause string) {
	m.reg.Counter("fl_failures_total", "client failures by cause", "cause", cause).Inc()
}

// probe counts one recovery probe of a demoted client under its result
// label ("ok" or "fail").
func (m flMetrics) probe(result string) {
	m.reg.Counter("fl_probes_total", "recovery probes of demoted clients by result", "result", result).Inc()
}

// roundDone records one completed round's aggregate counters.
func (m flMetrics) roundDone(rec *RoundRecord) {
	m.rounds.Inc()
	m.updates.Add(int64(len(rec.Participants)))
	m.bytesUp.Add(rec.BytesUp)
	m.bytesDown.Add(rec.BytesDown)
	m.lateApplied.Add(int64(len(rec.LateApplied)))
	m.lateDropped.Add(int64(len(rec.LateDropped)))
	m.roundSeconds.Observe(rec.Duration.Seconds())
	if rec.TierPartials > 0 {
		m.tierPartials.Add(int64(rec.TierPartials))
		m.tierBytesUp.Add(rec.TierBytesUp)
		m.tierResident.Set(float64(rec.TierResidentBytes))
	}
}

// SlogLogf adapts a structured logger to the Logf hooks used throughout
// the federation configs: each Logf line becomes one record at the given
// level. Callers that want fully structured attributes log through l
// directly; this adapter keeps the existing printf call sites flowing
// into the same sink.
func SlogLogf(l *slog.Logger, level slog.Level) func(format string, args ...any) {
	if l == nil {
		return func(string, ...any) {}
	}
	return func(format string, args ...any) {
		ctx := context.Background()
		if !l.Enabled(ctx, level) {
			return
		}
		l.Log(ctx, level, fmt.Sprintf(format, args...))
	}
}
