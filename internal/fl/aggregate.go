// Package fl implements the federated-learning stack modeled on NVFlare's
// scatter-and-gather workflow (Fig. 1): a server-side controller that
// dispatches the global model each round, client-side executors that train
// locally, weighted FedAvg aggregation, model selection, and both an
// in-process simulator (NVFlare's simulator mode) and a networked
// deployment over the provision/transport substrate.
package fl

import (
	"bytes"
	"errors"
	"fmt"

	"clinfl/internal/fl/hier"
	"clinfl/internal/nn"
	"clinfl/internal/tensor"
)

// ClientUpdate is one client's contribution for a round.
type ClientUpdate struct {
	ClientName string
	Round      int
	// Weights are the client's post-training parameters.
	Weights map[string]*tensor.Matrix
	// NumSamples weights this update during aggregation.
	NumSamples int
	// TrainLoss is the client's mean local training loss for the round.
	TrainLoss float64
	// PayloadBytes is the encoded update's size on the wire (0 for
	// in-process executors); experiments report bytes-on-wire from it.
	PayloadBytes int
	// DownBytes is the encoded task (global model) payload the client paid
	// to download before training this round — the downlink counterpart of
	// PayloadBytes, stamped by executors that model or measure their own
	// transfers (the simulator's clients, cost-replaying surrogates). The
	// networked server accounts downlink at send time instead and leaves
	// this zero; it is advisory accounting and is not persisted in WAL
	// update records.
	DownBytes int
	// hierPartial carries a decoded tier partial when this "update" is an
	// edge aggregator's merged uplink rather than a single client's
	// weights; only a tier-enabled server's TierAggregator consumes it.
	hierPartial *hier.Partial
}

// Aggregator combines client updates into a new global model.
type Aggregator interface {
	// Aggregate merges updates; the result maps parameter names to new
	// global values.
	Aggregate(updates []*ClientUpdate) (map[string]*tensor.Matrix, error)
	// Name identifies the strategy in logs and experiment records.
	Name() string
}

// FedAvg is the sample-count-weighted parameter average of McMahan et al.,
// NVFlare's default aggregator and the one the paper's pipeline uses.
type FedAvg struct{}

// Name implements Aggregator.
func (FedAvg) Name() string { return "fedavg" }

// Aggregate implements Aggregator.
func (FedAvg) Aggregate(updates []*ClientUpdate) (map[string]*tensor.Matrix, error) {
	return weightedAverage(updates, func(u *ClientUpdate) float64 {
		return float64(u.NumSamples)
	})
}

// MeanAggregator averages updates uniformly regardless of client data
// volume; included as the ablation baseline DESIGN.md calls out.
type MeanAggregator struct{}

// Name implements Aggregator.
func (MeanAggregator) Name() string { return "mean" }

// Aggregate implements Aggregator.
func (MeanAggregator) Aggregate(updates []*ClientUpdate) (map[string]*tensor.Matrix, error) {
	return weightedAverage(updates, func(*ClientUpdate) float64 { return 1 })
}

// weightedAverage merges updates with the given weight function.
func weightedAverage(updates []*ClientUpdate, weightOf func(*ClientUpdate) float64) (map[string]*tensor.Matrix, error) {
	if len(updates) == 0 {
		return nil, errors.New("fl: no updates to aggregate")
	}
	var total float64
	for _, u := range updates {
		w := weightOf(u)
		if w <= 0 {
			return nil, fmt.Errorf("fl: client %q has non-positive weight %v", u.ClientName, w)
		}
		total += w
	}
	ref := updates[0].Weights
	out := make(map[string]*tensor.Matrix, len(ref))
	for name, m := range ref {
		out[name] = tensor.New(m.Rows(), m.Cols())
	}
	for _, u := range updates {
		if len(u.Weights) != len(ref) {
			return nil, fmt.Errorf("fl: client %q sent %d params, want %d", u.ClientName, len(u.Weights), len(ref))
		}
		w := weightOf(u) / total
		for name, acc := range out {
			m, ok := u.Weights[name]
			if !ok {
				return nil, fmt.Errorf("fl: client %q missing param %q", u.ClientName, name)
			}
			if err := acc.AddScaledInPlace(w, m); err != nil {
				return nil, fmt.Errorf("fl: aggregate %q from %q: %w", name, u.ClientName, err)
			}
		}
	}
	return out, nil
}

// AsyncAggregator folds a single (possibly stale) update into the current
// global model, FedAsync-style: unlike Aggregator it does not wait for a
// batch of updates, so the controller can apply stragglers' contributions
// from earlier rounds as they trickle in.
type AsyncAggregator interface {
	// Apply mutates global in place with u's contribution. staleness is
	// how many rounds old the update is (0 = current round).
	Apply(global map[string]*tensor.Matrix, u *ClientUpdate, staleness int) error
	// Name identifies the strategy in logs and experiment records.
	Name() string
}

// FedAsync is the staleness-damped asynchronous merge of Xie et al.
// (FedAsync): global ← (1-α_s)·global + α_s·update with α_s =
// Alpha/(1+staleness), so fresher updates move the model more and ancient
// ones fade toward no-ops instead of dragging it backward.
type FedAsync struct {
	// Alpha is the mixing rate for a fresh (staleness-0) update; values in
	// (0, 1]. Zero defaults to 0.5.
	Alpha float64
}

// Name implements AsyncAggregator.
func (FedAsync) Name() string { return "fedasync" }

// Apply implements AsyncAggregator.
func (f FedAsync) Apply(global map[string]*tensor.Matrix, u *ClientUpdate, staleness int) error {
	alpha := f.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	if alpha < 0 || alpha > 1 {
		return fmt.Errorf("fl: fedasync alpha %v out of (0,1]", alpha)
	}
	if staleness < 0 {
		return fmt.Errorf("fl: fedasync negative staleness %d", staleness)
	}
	if len(u.Weights) != len(global) {
		return fmt.Errorf("fl: fedasync: client %q sent %d params, want %d", u.ClientName, len(u.Weights), len(global))
	}
	a := alpha / float64(1+staleness)
	for name, g := range global {
		w, ok := u.Weights[name]
		if !ok {
			return fmt.Errorf("fl: fedasync: client %q missing param %q", u.ClientName, name)
		}
		g.ScaleInPlace(1 - a)
		if err := g.AddScaledInPlace(a, w); err != nil {
			return fmt.Errorf("fl: fedasync %q from %q: %w", name, u.ClientName, err)
		}
	}
	return nil
}

// EncodeWeights serializes a weight map in the raw (exact float64)
// transport format; senders with a negotiated codec call its Encode
// instead.
func EncodeWeights(weights map[string]*tensor.Matrix) ([]byte, error) {
	var buf bytes.Buffer
	if err := nn.WriteWeightMap(&buf, weights); err != nil {
		return nil, fmt.Errorf("fl: encode weights: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeWeights parses a transported weight map produced by any registered
// codec (raw, f32-quantized, top-k sparse), sniffing the format from the
// payload's magic.
func DecodeWeights(blob []byte) (map[string]*tensor.Matrix, error) {
	weights, err := decoderFor(blob).Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("fl: decode weights: %w", err)
	}
	return weights, nil
}
