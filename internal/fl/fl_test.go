package fl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"clinfl/internal/tensor"
)

// fakeExecutor returns canned weights for controller tests.
type fakeExecutor struct {
	name      string
	samples   int
	value     float64 // every weight element is set to this after "training"
	fail      bool
	delay     time.Duration
	calls     int
	upBytes   int // stamped as PayloadBytes when non-zero
	downBytes int // stamped as DownBytes when non-zero
}

func (f *fakeExecutor) Name() string    { return f.name }
func (f *fakeExecutor) NumSamples() int { return f.samples }

func (f *fakeExecutor) ExecuteRound(round int, global map[string]*tensor.Matrix) (*ClientUpdate, error) {
	f.calls++
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.fail {
		return nil, errors.New("injected failure")
	}
	weights := make(map[string]*tensor.Matrix, len(global))
	for name, m := range global {
		w := tensor.New(m.Rows(), m.Cols())
		w.Fill(f.value)
		weights[name] = w
	}
	return &ClientUpdate{
		ClientName: f.name, Round: round, Weights: weights,
		NumSamples: f.samples, TrainLoss: 1.0 / float64(round+1),
		PayloadBytes: f.upBytes, DownBytes: f.downBytes,
	}, nil
}

func initialWeights() map[string]*tensor.Matrix {
	return map[string]*tensor.Matrix{
		"layer.w": tensor.New(2, 3),
		"layer.b": tensor.New(1, 3),
	}
}

func TestFedAvgWeightsBySampleCount(t *testing.T) {
	mk := func(v float64, n int) *ClientUpdate {
		w := tensor.New(1, 2)
		w.Fill(v)
		return &ClientUpdate{ClientName: fmt.Sprint(v), Weights: map[string]*tensor.Matrix{"w": w}, NumSamples: n}
	}
	out, err := FedAvg{}.Aggregate([]*ClientUpdate{mk(1, 30), mk(5, 10)})
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0*30 + 5.0*10) / 40
	if got := out["w"].At(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("fedavg %v, want %v", got, want)
	}
}

func TestMeanAggregatorIgnoresSampleCount(t *testing.T) {
	mk := func(v float64, n int) *ClientUpdate {
		w := tensor.New(1, 1)
		w.Fill(v)
		return &ClientUpdate{ClientName: fmt.Sprint(v), Weights: map[string]*tensor.Matrix{"w": w}, NumSamples: n}
	}
	out, err := MeanAggregator{}.Aggregate([]*ClientUpdate{mk(1, 1000), mk(5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := out["w"].At(0, 0); math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean %v, want 3", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := (FedAvg{}).Aggregate(nil); err == nil {
		t.Fatal("want error for no updates")
	}
	w := tensor.New(1, 1)
	bad := []*ClientUpdate{
		{ClientName: "a", Weights: map[string]*tensor.Matrix{"w": w}, NumSamples: 0},
	}
	if _, err := (FedAvg{}).Aggregate(bad); err == nil {
		t.Fatal("want error for zero samples")
	}
	mismatch := []*ClientUpdate{
		{ClientName: "a", Weights: map[string]*tensor.Matrix{"w": w}, NumSamples: 1},
		{ClientName: "b", Weights: map[string]*tensor.Matrix{"v": w}, NumSamples: 1},
	}
	if _, err := (FedAvg{}).Aggregate(mismatch); err == nil {
		t.Fatal("want error for missing param")
	}
}

// Property: FedAvg of identical updates is identity, regardless of weights.
func TestFedAvgIdentityProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		clients := int(n%7) + 1
		rng := tensor.NewRNG(seed)
		base := rng.Normal(3, 4, 0, 1)
		updates := make([]*ClientUpdate, clients)
		for i := range updates {
			updates[i] = &ClientUpdate{
				ClientName: fmt.Sprint(i),
				Weights:    map[string]*tensor.Matrix{"w": base.Clone()},
				NumSamples: 1 + rng.Intn(100),
			}
		}
		out, err := FedAvg{}.Aggregate(updates)
		if err != nil {
			return false
		}
		return out["w"].AllClose(base, 1e-9, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: aggregation output is bounded by the min/max of client values.
func TestFedAvgConvexityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		clients := 2 + rng.Intn(5)
		updates := make([]*ClientUpdate, clients)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range updates {
			v := rng.Float64()*10 - 5
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			w := tensor.New(1, 1)
			w.Fill(v)
			updates[i] = &ClientUpdate{
				ClientName: fmt.Sprint(i),
				Weights:    map[string]*tensor.Matrix{"w": w},
				NumSamples: 1 + rng.Intn(50),
			}
		}
		out, err := FedAvg{}.Aggregate(updates)
		if err != nil {
			return false
		}
		got := out["w"].At(0, 0)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControllerRunsAllRounds(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "a", samples: 10, value: 1},
		&fakeExecutor{name: "b", samples: 30, value: 2},
	}
	ctrl, err := NewController(ControllerConfig{Rounds: 3}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History.Rounds) != 3 {
		t.Fatalf("rounds %d", len(res.History.Rounds))
	}
	// FedAvg: (1*10 + 2*30)/40 = 1.75 everywhere.
	if got := res.FinalWeights["layer.w"].At(0, 0); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("final weight %v, want 1.75", got)
	}
	for _, e := range execs {
		if e.(*fakeExecutor).calls != 3 {
			t.Fatalf("executor called %d times", e.(*fakeExecutor).calls)
		}
	}
}

// Executors that model their own transfers (the simulator's clients,
// cost-replaying surrogates) stamp PayloadBytes/DownBytes on the update;
// the controller must fold both into the round record's byte counters.
func TestControllerAccountsExecutorStampedBytes(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "a", samples: 10, value: 1, upBytes: 100, downBytes: 40},
		&fakeExecutor{name: "b", samples: 30, value: 2, upBytes: 250, downBytes: 40},
	}
	ctrl, err := NewController(ControllerConfig{Rounds: 2}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.History.Rounds {
		if rec.BytesUp != 350 {
			t.Fatalf("round %d BytesUp %d, want 350", rec.Round, rec.BytesUp)
		}
		if rec.BytesDown != 80 {
			t.Fatalf("round %d BytesDown %d, want 80", rec.Round, rec.BytesDown)
		}
	}
}

func TestControllerModelSelectionKeepsBest(t *testing.T) {
	execs := []Executor{&fakeExecutor{name: "a", samples: 1, value: 1}}
	scores := []float64{0.5, 0.9, 0.7}
	i := 0
	ctrl, err := NewController(ControllerConfig{
		Rounds: 3,
		Validate: func(map[string]*tensor.Matrix) (float64, error) {
			s := scores[i]
			i++
			return s, nil
		},
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if res.History.BestRound != 1 || res.History.BestScore != 0.9 {
		t.Fatalf("best round %d score %v", res.History.BestRound, res.History.BestScore)
	}
}

func TestControllerEarlyStopsOnPatience(t *testing.T) {
	execs := []Executor{&fakeExecutor{name: "a", samples: 1, value: 1}}
	scores := []float64{0.9, 0.5, 0.5, 0.5, 0.5}
	i := 0
	ctrl, err := NewController(ControllerConfig{
		Rounds:   5,
		Patience: 2,
		Validate: func(map[string]*tensor.Matrix) (float64, error) {
			s := scores[i]
			i++
			return s, nil
		},
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	// Best at round 0, then 2 stale rounds → stop after round 2.
	if len(res.History.Rounds) != 3 {
		t.Fatalf("ran %d rounds, want early stop at 3", len(res.History.Rounds))
	}
	if res.History.BestRound != 0 || res.History.BestScore != 0.9 {
		t.Fatalf("best %d/%v", res.History.BestRound, res.History.BestScore)
	}
}

func TestControllerQuorumFailure(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "a", samples: 1, value: 1, fail: true},
		&fakeExecutor{name: "b", samples: 1, value: 2},
	}
	ctrl, err := NewController(ControllerConfig{Rounds: 1}, execs) // MinClients defaults to all
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(context.Background(), initialWeights()); err == nil {
		t.Fatal("want quorum error")
	}
}

func TestControllerToleratesFailureWithQuorum(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "a", samples: 1, value: 1, fail: true},
		&fakeExecutor{name: "b", samples: 1, value: 2},
	}
	ctrl, err := NewController(ControllerConfig{Rounds: 2, MinClients: 1}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 2 {
		t.Fatalf("surviving client's weights not used: %v", got)
	}
	if len(res.History.Rounds[0].Participants) != 1 {
		t.Fatal("failed client recorded as participant")
	}
}

func TestControllerCancellation(t *testing.T) {
	execs := []Executor{&fakeExecutor{name: "a", samples: 1, value: 1}}
	ctrl, err := NewController(ControllerConfig{Rounds: 100}, execs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ctrl.Run(ctx, initialWeights()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestControllerRejectsDuplicateNames(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "a", samples: 1},
		&fakeExecutor{name: "a", samples: 1},
	}
	if _, err := NewController(ControllerConfig{}, execs); err == nil {
		t.Fatal("want duplicate-name error")
	}
	if _, err := NewController(ControllerConfig{}, nil); err == nil {
		t.Fatal("want empty-executors error")
	}
}

// The straggler-timeout scenario now runs deterministically on the
// virtual clock: see TestVirtualStragglerLegacyTimeout in
// async_virtual_test.go.

func TestEncodeDecodeWeightsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	weights := map[string]*tensor.Matrix{
		"a": rng.Normal(3, 4, 0, 1),
		"b": rng.Normal(1, 7, 0, 1),
	}
	blob, err := EncodeWeights(weights)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWeights(blob)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range weights {
		if !got[name].Equal(m) {
			t.Fatalf("weight %q changed in transit", name)
		}
	}
	if _, err := DecodeWeights([]byte("junk")); err == nil {
		t.Fatal("want decode error")
	}
}
