package fl

// Fuzz targets for the attacker-facing decode surfaces: weight payloads
// (any registered codec, sniffed by magic) arrive from remote clients and
// must never panic, over-allocate, or accept an inconsistent shape. The
// seed corpus includes the PR 3 regression payloads: shape headers whose
// per-dimension values pass a naive product check only via integer
// overflow, which once bypassed the element cap.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"clinfl/internal/tensor"
)

// buildCodecBlob hand-assembles a codec payload with arbitrary header
// fields, so corpus entries can lie about shapes in ways the encoders
// never would.
func buildCodecBlob(magic string, params []fuzzParam) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	writeUint32(&buf, uint32(len(params)))
	for _, p := range params {
		writeName(&buf, p.name)
		writeUint32(&buf, p.rows)
		writeUint32(&buf, p.cols)
		buf.Write(p.body)
	}
	return buf.Bytes()
}

type fuzzParam struct {
	name       string
	rows, cols uint32
	body       []byte
}

// fuzzSeeds returns valid blobs from every codec plus the regression
// corpus of malicious shape headers.
func fuzzSeeds(t testing.TB) [][]byte {
	rng := tensor.NewRNG(1)
	weights := map[string]*tensor.Matrix{
		"layer.w": rng.Normal(3, 5, 0, 1),
		"layer.b": rng.Normal(1, 5, 0, 1),
	}
	var seeds [][]byte
	for _, c := range []WeightCodec{RawCodec{}, Float32Codec{}, Int8Codec{}, TopKCodec{Fraction: 0.4}} {
		blob, err := c.Encode(weights)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, blob)
	}
	// Raw (nn checkpoint) format regression: 8-byte dims so huge their
	// int product wraps — this exact class panicked tensor.ReadFrom with
	// "makeslice: len out of range" before the int64-capped, chunked
	// reader landed.
	rawEvil := func(rows, cols uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString("CFLW1\n")
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], 1) // param count
		buf.Write(b8[:])
		writeName(&buf, "w")
		binary.LittleEndian.PutUint64(b8[:], rows)
		buf.Write(b8[:])
		binary.LittleEndian.PutUint64(b8[:], cols)
		buf.Write(b8[:])
		return buf.Bytes()
	}
	k1 := make([]byte, 4)
	binary.LittleEndian.PutUint32(k1, 1)
	seeds = append(seeds,
		rawEvil(0x3030303030303030, 0x3130303030303030), // the fuzzer's find
		rawEvil(1<<32, 1<<32),
		rawEvil(1<<20, 1<<20),
		// PR 3 overflow bypass: 2^16 × 2^16 wraps a 32-bit product to 0;
		// per-dimension caps and the int64 product must both reject it.
		buildCodecBlob(f32Magic, []fuzzParam{{name: "w", rows: 1 << 16, cols: 1 << 16}}),
		buildCodecBlob(topKMagic, []fuzzParam{{name: "w", rows: 1 << 16, cols: 1 << 16, body: k1}}),
		// 2^31 × 2 wraps negative on 32-bit int.
		buildCodecBlob(f32Magic, []fuzzParam{{name: "w", rows: 1 << 31, cols: 2}}),
		// Huge-but-unbacked dense shape: payload-length cross-check must
		// reject before allocating.
		buildCodecBlob(f32Magic, []fuzzParam{{name: "w", rows: 1 << 20, cols: 64}}),
		// Top-k sparse blob demanding a big dense allocation with k=1.
		buildCodecBlob(topKMagic, []fuzzParam{{name: "w", rows: 1 << 20, cols: 128, body: k1}}),
		// Int8 blobs: overflow-wrapping shape, huge unbacked dense shape,
		// and a NaN row scale ahead of otherwise-valid codes.
		buildCodecBlob(int8Magic, []fuzzParam{{name: "w", rows: 1 << 16, cols: 1 << 16}}),
		buildCodecBlob(int8Magic, []fuzzParam{{name: "w", rows: 1 << 20, cols: 64}}),
		buildCodecBlob(int8Magic, []fuzzParam{{name: "w", rows: 1, cols: 2,
			body: []byte{0, 0, 0xc0, 0x7f, 1, 2}}}),
		// Implausible name length.
		append([]byte(f32Magic), bytes.Repeat([]byte{0xFF}, 16)...),
		[]byte("junk"),
		[]byte(f32Magic),
		[]byte(topKMagic),
	)
	return seeds
}

func FuzzDecodeWeights(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	// Tighten the decoder's allocation caps for fuzzing: a top-k blob may
	// legitimately demand rows*cols dense floats from a tiny sparse
	// payload, and the fuzzer would otherwise thrash allocating gigabytes
	// of *valid* output. The overflow/consistency logic under test is
	// identical at any cap value.
	oldParam, oldTotal := maxParamElems, maxTotalElems
	maxParamElems, maxTotalElems = 1<<16, 1<<18
	f.Cleanup(func() { maxParamElems, maxTotalElems = oldParam, oldTotal })

	f.Fuzz(func(t *testing.T, data []byte) {
		weights, err := DecodeWeights(data)
		if err != nil {
			return
		}
		// Decoded successfully: every invariant of a healthy weight map
		// must hold, and the map must survive a re-encode round trip.
		var total int64
		for name, m := range weights {
			if m == nil {
				t.Fatalf("param %q decoded nil", name)
			}
			if m.Rows() < 0 || m.Cols() < 0 {
				t.Fatalf("param %q has negative shape %dx%d", name, m.Rows(), m.Cols())
			}
			n := int64(m.Rows()) * int64(m.Cols())
			if n > int64(maxParamElems) {
				t.Fatalf("param %q with %d elems escaped the cap", name, n)
			}
			total += n
			if int64(len(m.Data())) != n {
				t.Fatalf("param %q backing slice %d != shape %d", name, len(m.Data()), n)
			}
		}
		if total > int64(maxTotalElems) {
			t.Fatalf("blob with %d total elems escaped the cumulative cap", total)
		}
		if _, err := EncodeWeights(weights); err != nil {
			t.Fatalf("decoded weights do not re-encode: %v", err)
		}
	})
}

func FuzzCodecByName(f *testing.F) {
	for _, s := range []string{"", "raw", "f32", "int8", "topk", "topk:0.1", "topk:1", "topk:NaN", "topk:-1", "topk:1e309", "zstd"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		c, err := CodecByName(name)
		if err != nil {
			return
		}
		// Accepted codecs must be usable end to end.
		rng := tensor.NewRNG(7)
		weights := map[string]*tensor.Matrix{"w": rng.Normal(2, 3, 0, 1)}
		blob, err := c.Encode(weights)
		if err != nil {
			t.Fatalf("codec %q accepted by name but cannot encode: %v", name, err)
		}
		if _, err := DecodeWeights(blob); err != nil {
			t.Fatalf("codec %q round trip failed: %v", name, err)
		}
	})
}
