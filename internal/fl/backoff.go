package fl

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"clinfl/internal/tensor"
)

// Backoff computes jittered exponential retry delays. The zero value is
// usable: 100ms base, 30s cap, doubling, no jitter. Delay is a pure
// function of (config, attempt) — jitter for attempt i is drawn from a
// stream seeded by Seed+i, not from shared mutable state — so retry
// schedules are reproducible and a simulated run replays identically.
type Backoff struct {
	// Base is the first delay (default 100ms).
	Base time.Duration
	// Max caps every delay (default 30s).
	Max time.Duration
	// Factor is the per-attempt growth (default 2).
	Factor float64
	// Jitter, in [0, 1], scales each delay by a uniform draw from
	// [1-Jitter, 1]: retries desynchronize without ever exceeding the
	// deterministic envelope. 0 disables jitter.
	Jitter float64
	// Seed drives the jitter stream.
	Seed int64
	// Clock supplies the sleeps (default: real wall clock).
	Clock Clock
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 30 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Clock == nil {
		b.Clock = RealClock()
	}
	return b
}

// Delay returns the wait before retry attempt (0-based): Base×Factor^attempt,
// capped at Max, scaled down by up to Jitter.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt))
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		rng := tensor.NewRNG(b.Seed + int64(attempt))
		d *= 1 - j*rng.Float64()
	}
	return time.Duration(d)
}

// Retrier wraps a Backoff with observable state: how many attempts have
// failed and what the next delay will be, so operators can see a
// client's reconnect storm in /metrics instead of guessing from log
// lines. The counters are atomic — a metrics scrape may read them while
// the owning goroutine sleeps between attempts.
type Retrier struct {
	// Backoff supplies the delay schedule.
	Backoff Backoff
	// OnDelay, when non-nil, observes each computed delay just before
	// the sleep (attempt is 0-based) — the hook the client uses to feed
	// fl_reconnect_backoff_seconds.
	OnDelay func(attempt int, d time.Duration)

	attempt atomic.Int64
}

// Attempt returns how many consecutive failures the current retry cycle
// has seen (0 after a success or Reset).
func (r *Retrier) Attempt() int { return int(r.attempt.Load()) }

// NextDelay returns the delay the next failure would sleep.
func (r *Retrier) NextDelay() time.Duration {
	return r.Backoff.Delay(int(r.attempt.Load()))
}

// Reset clears the failure streak (a success outside Retry, e.g. a
// server-initiated resume, starts the schedule over).
func (r *Retrier) Reset() { r.attempt.Store(0) }

// Retry runs fn up to attempts times like Backoff.Retry, but the attempt
// counter and per-attempt delays are visible through the Retrier while
// it runs. A success resets the streak.
func (r *Retrier) Retry(ctx context.Context, attempts int, fn func() error) error {
	b := r.Backoff.withDefaults()
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			r.attempt.Store(0)
			return nil
		}
		r.attempt.Add(1)
		if i == attempts-1 {
			break
		}
		d := b.Delay(i)
		if r.OnDelay != nil {
			r.OnDelay(i, d)
		}
		select {
		case <-b.Clock.After(d):
		case <-ctx.Done():
			return fmt.Errorf("fl: retry cancelled after attempt %d: %w (last error: %v)", i+1, ctx.Err(), err)
		}
	}
	return err
}

// Retry runs fn up to attempts times, sleeping Delay(i) between failures
// and aborting early when ctx is cancelled. It returns nil on the first
// success, ctx's error on cancellation, and otherwise the last failure.
func (b Backoff) Retry(ctx context.Context, attempts int, fn func() error) error {
	b = b.withDefaults()
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		select {
		case <-b.Clock.After(b.Delay(i)):
		case <-ctx.Done():
			return fmt.Errorf("fl: retry cancelled after attempt %d: %w (last error: %v)", i+1, ctx.Err(), err)
		}
	}
	return err
}
