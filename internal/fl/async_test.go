package fl

// Timing-free controller tests for sampling, quorum interplay, failure
// records and codec simulation. The straggler/deadline scenarios that used
// to live here on real goroutine sleeps — flaky whenever CI stalled — now
// run deterministically on the simulator's virtual clock in
// async_virtual_test.go, and as conformance invariants for every
// deployment shape in internal/fl/fltest.

import (
	"context"
	"strings"
	"testing"
	"time"
)

// fourClients builds 3 fast fakes plus one straggler delayed by delay.
func fourClients(delay time.Duration) []Executor {
	return []Executor{
		&fakeExecutor{name: "a", samples: 10, value: 1},
		&fakeExecutor{name: "b", samples: 10, value: 1},
		&fakeExecutor{name: "c", samples: 10, value: 1},
		&fakeExecutor{name: "slow", samples: 10, value: 9, delay: delay},
	}
}

func TestControllerSamplingSubsetPerRound(t *testing.T) {
	execs := fourClients(0)
	ctrl, err := NewController(ControllerConfig{
		Rounds: 4, MinClients: 1, SampleFraction: 0.5, Seed: 3,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i, rec := range res.History.Rounds {
		if len(rec.Sampled) != 2 {
			t.Fatalf("round %d sampled %v, want 2 clients", i, rec.Sampled)
		}
		if len(rec.Participants) != 2 {
			t.Fatalf("round %d participants %v, want the 2 sampled", i, rec.Participants)
		}
		for _, name := range rec.Sampled {
			seen[name]++
		}
	}
	if len(seen) < 3 {
		t.Fatalf("sampling never rotated: only %v tasked over 4 rounds", seen)
	}
}

func TestControllerExplicitQuorumAboveMinUpdates(t *testing.T) {
	// MinClients > MinUpdates: the gather must wait for the quorum rather
	// than cutting the round at MinUpdates and then failing the check.
	execs := fourClients(0)
	ctrl, err := NewController(ControllerConfig{
		Rounds: 2, MinUpdates: 1, MinClients: 3,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.History.Rounds {
		if len(rec.Participants) < 3 {
			t.Fatalf("round %d aggregated %d < MinClients participants", i, len(rec.Participants))
		}
	}
}

func TestControllerRecordsFailuresInResult(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "ok", samples: 1, value: 2},
		&fakeExecutor{name: "broken", samples: 1, value: 1, fail: true},
	}
	ctrl, err := NewController(ControllerConfig{Rounds: 1, MinClients: 1}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	failures := res.History.Rounds[0].Failures
	if len(failures) != 1 || !strings.Contains(failures[0], "broken") {
		t.Fatalf("failures %v, want broken client recorded", failures)
	}
}

// TestControllerAggregationOrderIsCanonical pins the determinism contract
// finalizeRound provides: participants (and so the FedAvg accumulation
// order) are sorted by client name regardless of arrival order.
func TestControllerAggregationOrderIsCanonical(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "zeta", samples: 10, value: 1},
		&fakeExecutor{name: "alpha", samples: 20, value: 2, delay: 30 * time.Millisecond},
		&fakeExecutor{name: "mid", samples: 30, value: 3, delay: 10 * time.Millisecond},
	}
	ctrl, err := NewController(ControllerConfig{Rounds: 1}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	got := res.History.Rounds[0].Participants
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("participants %v, want canonical order %v", got, want)
		}
	}
}

func TestCodecSimFilterSetsPayloadBytes(t *testing.T) {
	execs := fourClients(0)
	ctrl, err := NewController(ControllerConfig{
		Rounds:  2,
		Filters: []Filter{CodecSimFilter{Codec: Float32Codec{}}},
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeWeights(initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.History.Rounds {
		if rec.BytesUp == 0 {
			t.Fatalf("round %d recorded no uplink bytes", i)
		}
		if float64(rec.BytesUp) > 0.6*float64(4*len(raw)) {
			t.Fatalf("round %d f32 uplink %d bytes, want <= 60%% of raw %d", i, rec.BytesUp, 4*len(raw))
		}
	}
}

func TestFaultyExecutorInjectsDropsAndDelays(t *testing.T) {
	inner := &fakeExecutor{name: "x", samples: 5, value: 2}
	f := WrapFaulty(inner, FaultConfig{
		Delay:       50 * time.Millisecond,
		DelayRounds: []int{1},
		DropRounds:  []int{2},
	})
	if f.Name() != "x" || f.NumSamples() != 5 {
		t.Fatal("wrapper must be transparent for identity")
	}
	start := time.Now()
	if _, err := f.ExecuteRound(0, initialWeights()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatal("round 0 should not be delayed")
	}
	start = time.Now()
	if _, err := f.ExecuteRound(1, initialWeights()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("round 1 delay not injected")
	}
	if _, err := f.ExecuteRound(2, initialWeights()); err == nil ||
		!strings.Contains(err.Error(), "injected dropout") {
		t.Fatalf("round 2 should drop, got %v", err)
	}
	if inner.calls != 2 {
		t.Fatalf("inner executed %d rounds, want 2 (drop short-circuits)", inner.calls)
	}

	always := WrapFaulty(&fakeExecutor{name: "y"}, FaultConfig{DropProb: 1, Seed: 9})
	if _, err := always.ExecuteRound(0, initialWeights()); err == nil {
		t.Fatal("DropProb=1 must always fail")
	}
}
