package fl

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"clinfl/internal/tensor"
)

// fourClients builds 3 fast fakes plus one straggler delayed by delay.
func fourClients(delay time.Duration) []Executor {
	return []Executor{
		&fakeExecutor{name: "a", samples: 10, value: 1},
		&fakeExecutor{name: "b", samples: 10, value: 1},
		&fakeExecutor{name: "c", samples: 10, value: 1},
		&fakeExecutor{name: "slow", samples: 10, value: 9, delay: delay},
	}
}

// The acceptance scenario: 1 of 4 clients delayed beyond RoundDeadline;
// the federation must complete every round without blocking on it and
// record per-round participation in the Result.
func TestControllerAsyncRoundsDoNotBlockOnStraggler(t *testing.T) {
	execs := fourClients(5 * time.Second)
	ctrl, err := NewController(ControllerConfig{
		Rounds:        3,
		MinClients:    1,
		MinUpdates:    3,
		RoundDeadline: 300 * time.Millisecond,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("async run blocked on straggler: took %v", elapsed)
	}
	if len(res.History.Rounds) != 3 {
		t.Fatalf("completed %d rounds, want 3", len(res.History.Rounds))
	}
	for i, rec := range res.History.Rounds {
		if len(rec.Participants) != 3 {
			t.Fatalf("round %d aggregated %d participants (%v), want 3",
				i, len(rec.Participants), rec.Participants)
		}
		for _, p := range rec.Participants {
			if p == "slow" {
				t.Fatalf("round %d straggler recorded as participant", i)
			}
		}
	}
	// Round 0 sampled everyone; later rounds exclude the in-flight straggler.
	if len(res.History.Rounds[0].Sampled) != 4 {
		t.Fatalf("round 0 sampled %v, want all 4", res.History.Rounds[0].Sampled)
	}
	if len(res.History.Rounds[1].Sampled) != 3 {
		t.Fatalf("round 1 sampled %v, want 3 (straggler in flight)", res.History.Rounds[1].Sampled)
	}
	// The straggler never aggregated, so the global stays at the fast value.
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 1 {
		t.Fatalf("final weight %v, want 1", got)
	}
}

func TestControllerSamplingSubsetPerRound(t *testing.T) {
	execs := fourClients(0)
	ctrl, err := NewController(ControllerConfig{
		Rounds: 4, MinClients: 1, SampleFraction: 0.5, Seed: 3,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i, rec := range res.History.Rounds {
		if len(rec.Sampled) != 2 {
			t.Fatalf("round %d sampled %v, want 2 clients", i, rec.Sampled)
		}
		if len(rec.Participants) != 2 {
			t.Fatalf("round %d participants %v, want the 2 sampled", i, rec.Participants)
		}
		for _, name := range rec.Sampled {
			seen[name]++
		}
	}
	if len(seen) < 3 {
		t.Fatalf("sampling never rotated: only %v tasked over 4 rounds", seen)
	}
}

// lateUpdateScenario runs 2 rounds where the straggler's round-0 update
// arrives while round 1 is gathering.
func lateUpdateScenario(t *testing.T, async AsyncAggregator) *Result {
	t.Helper()
	execs := []Executor{
		&fakeExecutor{name: "a", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "b", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "c", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "slow", samples: 10, value: 9, delay: 600 * time.Millisecond},
	}
	ctrl, err := NewController(ControllerConfig{
		Rounds:          2,
		MinClients:      1,
		MinUpdates:      3,
		RoundDeadline:   5 * time.Second,
		AsyncAggregator: async,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestControllerDropsLateUpdatesByDefault(t *testing.T) {
	// Round 0 aggregates the three 400ms clients at ~400ms (MinUpdates=3);
	// the straggler's round-0 update lands at ~600ms, mid round 1.
	res := lateUpdateScenario(t, nil)
	var dropped []string
	for _, rec := range res.History.Rounds {
		dropped = append(dropped, rec.LateDropped...)
		if len(rec.LateApplied) != 0 {
			t.Fatalf("no async aggregator, yet late update applied: %+v", rec)
		}
	}
	if len(dropped) != 1 || dropped[0] != "slow" {
		t.Fatalf("late drops %v, want [slow]", dropped)
	}
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 1 {
		t.Fatalf("dropped straggler leaked into the model: %v", got)
	}
}

func TestControllerFedAsyncFoldsLateUpdates(t *testing.T) {
	res := lateUpdateScenario(t, FedAsync{Alpha: 0.5})
	var applied []string
	for _, rec := range res.History.Rounds {
		applied = append(applied, rec.LateApplied...)
	}
	if len(applied) != 1 || applied[0] != "slow" {
		t.Fatalf("late applies %v, want [slow]", applied)
	}
	// Round 1 aggregate of fast clients = 1; then the staleness-1 merge:
	// a = 0.5/(1+1) = 0.25 -> 0.75*1 + 0.25*9 = 3.
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 3 {
		t.Fatalf("fedasync final weight %v, want 3", got)
	}
}

// recordingFilter logs every update the filter chain sees.
type recordingFilter struct{ seen []string }

func (f *recordingFilter) Name() string { return "recording" }
func (f *recordingFilter) Apply(u *ClientUpdate, _ map[string]*tensor.Matrix) error {
	f.seen = append(f.seen, u.ClientName)
	return nil
}

// Privacy filters must see every update that reaches the global model —
// including stragglers' late updates merged via the AsyncAggregator, which
// would otherwise carry raw unclipped/unnoised weights past the chain.
func TestControllerFiltersRunOnLateUpdates(t *testing.T) {
	flt := &recordingFilter{}
	execs := []Executor{
		&fakeExecutor{name: "a", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "b", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "c", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "slow", samples: 10, value: 9, delay: 600 * time.Millisecond},
	}
	ctrl, err := NewController(ControllerConfig{
		Rounds:          2,
		MinClients:      1,
		MinUpdates:      3,
		RoundDeadline:   5 * time.Second,
		AsyncAggregator: FedAsync{Alpha: 0.5},
		Filters:         []Filter{flt},
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	var applied []string
	for _, rec := range res.History.Rounds {
		applied = append(applied, rec.LateApplied...)
	}
	if len(applied) != 1 || applied[0] != "slow" {
		t.Fatalf("late applies %v, want [slow]", applied)
	}
	slowSeen := 0
	for _, name := range flt.seen {
		if name == "slow" {
			slowSeen++
		}
	}
	if slowSeen != 1 {
		t.Fatalf("filter chain saw the straggler's late update %d times (chain: %v), want 1",
			slowSeen, flt.seen)
	}
}

// vetoFilter rejects one client's updates.
type vetoFilter struct{ client string }

func (f vetoFilter) Name() string { return "veto" }
func (f vetoFilter) Apply(u *ClientUpdate, _ map[string]*tensor.Matrix) error {
	if u.ClientName == f.client {
		return errors.New("vetoed")
	}
	return nil
}

// A late update that fails the filter chain must be recorded as that
// client's failure and skipped — not abort the whole federation run.
func TestControllerBadLateUpdateDoesNotAbortRun(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "a", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "b", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "c", samples: 10, value: 1, delay: 400 * time.Millisecond},
		&fakeExecutor{name: "slow", samples: 10, value: 9, delay: 600 * time.Millisecond},
	}
	ctrl, err := NewController(ControllerConfig{
		Rounds:          2,
		MinClients:      1,
		MinUpdates:      3,
		RoundDeadline:   5 * time.Second,
		AsyncAggregator: FedAsync{Alpha: 0.5},
		Filters:         []Filter{vetoFilter{client: "slow"}},
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatalf("one bad late update aborted the run: %v", err)
	}
	var failures, applied []string
	for _, rec := range res.History.Rounds {
		failures = append(failures, rec.Failures...)
		applied = append(applied, rec.LateApplied...)
	}
	if len(applied) != 0 {
		t.Fatalf("vetoed late update still applied: %v", applied)
	}
	found := false
	for _, f := range failures {
		if strings.HasPrefix(f, "slow:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("vetoed late update missing from failures: %v", failures)
	}
	if got := res.FinalWeights["layer.w"].At(0, 0); got != 1 {
		t.Fatalf("vetoed straggler leaked into the model: %v", got)
	}
}

func TestControllerDeadlinePartialAggregationQuorum(t *testing.T) {
	// Without MinUpdates the deadline alone triggers partial aggregation,
	// and MinClients still guards against aggregating too few.
	execs := fourClients(2 * time.Second)
	ctrl, err := NewController(ControllerConfig{
		Rounds: 1, MinClients: 4, RoundDeadline: 200 * time.Millisecond,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(context.Background(), initialWeights()); err == nil ||
		!strings.Contains(err.Error(), "quorum") {
		t.Fatalf("want quorum error with MinClients=4, got %v", err)
	}

	execs = fourClients(2 * time.Second)
	ctrl, err = NewController(ControllerConfig{
		Rounds: 1, MinClients: 3, RoundDeadline: 200 * time.Millisecond,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History.Rounds[0].Participants) != 3 {
		t.Fatalf("participants %v, want 3", res.History.Rounds[0].Participants)
	}
}

func TestControllerExplicitQuorumAboveMinUpdates(t *testing.T) {
	// MinClients > MinUpdates: the gather must wait for the quorum rather
	// than cutting the round at MinUpdates and then failing the check.
	execs := fourClients(0)
	ctrl, err := NewController(ControllerConfig{
		Rounds: 2, MinUpdates: 1, MinClients: 3,
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.History.Rounds {
		if len(rec.Participants) < 3 {
			t.Fatalf("round %d aggregated %d < MinClients participants", i, len(rec.Participants))
		}
	}
}

func TestControllerRecordsFailuresInResult(t *testing.T) {
	execs := []Executor{
		&fakeExecutor{name: "ok", samples: 1, value: 2},
		&fakeExecutor{name: "broken", samples: 1, value: 1, fail: true},
	}
	ctrl, err := NewController(ControllerConfig{Rounds: 1, MinClients: 1}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	failures := res.History.Rounds[0].Failures
	if len(failures) != 1 || !strings.Contains(failures[0], "broken") {
		t.Fatalf("failures %v, want broken client recorded", failures)
	}
}

func TestCodecSimFilterSetsPayloadBytes(t *testing.T) {
	execs := fourClients(0)
	ctrl, err := NewController(ControllerConfig{
		Rounds:  2,
		Filters: []Filter{CodecSimFilter{Codec: Float32Codec{}}},
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeWeights(initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.History.Rounds {
		if rec.BytesUp == 0 {
			t.Fatalf("round %d recorded no uplink bytes", i)
		}
		if float64(rec.BytesUp) > 0.6*float64(4*len(raw)) {
			t.Fatalf("round %d f32 uplink %d bytes, want <= 60%% of raw %d", i, rec.BytesUp, 4*len(raw))
		}
	}
}

func TestFaultyExecutorInjectsDropsAndDelays(t *testing.T) {
	inner := &fakeExecutor{name: "x", samples: 5, value: 2}
	f := WrapFaulty(inner, FaultConfig{
		Delay:       50 * time.Millisecond,
		DelayRounds: []int{1},
		DropRounds:  []int{2},
	})
	if f.Name() != "x" || f.NumSamples() != 5 {
		t.Fatal("wrapper must be transparent for identity")
	}
	start := time.Now()
	if _, err := f.ExecuteRound(0, initialWeights()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatal("round 0 should not be delayed")
	}
	start = time.Now()
	if _, err := f.ExecuteRound(1, initialWeights()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("round 1 delay not injected")
	}
	if _, err := f.ExecuteRound(2, initialWeights()); err == nil ||
		!strings.Contains(err.Error(), "injected dropout") {
		t.Fatalf("round 2 should drop, got %v", err)
	}
	if inner.calls != 2 {
		t.Fatalf("inner executed %d rounds, want 2 (drop short-circuits)", inner.calls)
	}

	always := WrapFaulty(&fakeExecutor{name: "y"}, FaultConfig{DropProb: 1, Seed: 9})
	if _, err := always.ExecuteRound(0, initialWeights()); err == nil {
		t.Fatal("DropProb=1 must always fail")
	}
}
