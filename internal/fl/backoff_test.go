package fl

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recordingClock is a Clock whose After fires immediately and records the
// requested durations, so retry pacing is asserted without real sleeps.
type recordingClock struct {
	realClock
	waits []time.Duration
}

func (c *recordingClock) After(d time.Duration) <-chan time.Time {
	c.waits = append(c.waits, d)
	ch := make(chan time.Time, 1)
	ch <- time.Now()
	return ch
}

func TestBackoffDelayDefaults(t *testing.T) {
	var b Backoff // zero value: 100ms base, 30s cap, doubling, no jitter
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
	} {
		if got := b.Delay(i); got != want {
			t.Errorf("Delay(%d) = %v, want %v", i, got, want)
		}
	}
	if got := b.Delay(30); got != 30*time.Second {
		t.Errorf("Delay(30) = %v, want the 30s cap", got)
	}
	if got := b.Delay(-1); got != b.Delay(0) {
		t.Errorf("Delay(-1) = %v, want Delay(0) = %v", got, b.Delay(0))
	}
}

func TestBackoffDelayJitterEnvelope(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5, Seed: 3}
	for attempt := 0; attempt < 12; attempt++ {
		nominal := 50 * time.Millisecond << uint(attempt)
		if nominal > time.Second {
			nominal = time.Second
		}
		got := b.Delay(attempt)
		if got > nominal {
			t.Errorf("Delay(%d) = %v exceeds the deterministic envelope %v", attempt, got, nominal)
		}
		if min := time.Duration(float64(nominal) * (1 - b.Jitter)); got < min {
			t.Errorf("Delay(%d) = %v below the jitter floor %v", attempt, got, min)
		}
		// Jitter is a pure function of (config, attempt): repeated calls
		// must agree, so simulated runs replay identically.
		if again := b.Delay(attempt); again != got {
			t.Errorf("Delay(%d) not deterministic: %v then %v", attempt, got, again)
		}
	}
}

func TestBackoffRetrySucceedsAfterFailures(t *testing.T) {
	clock := &recordingClock{}
	b := Backoff{Base: 10 * time.Millisecond, Factor: 2, Clock: clock}
	calls := 0
	err := b.Retry(context.Background(), 5, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Errorf("fn called %d times, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(clock.waits) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(clock.waits), clock.waits, len(want))
	}
	for i, w := range want {
		if clock.waits[i] != w {
			t.Errorf("sleep %d = %v, want %v", i, clock.waits[i], w)
		}
	}
}

func TestBackoffRetryExhaustsAttempts(t *testing.T) {
	clock := &recordingClock{}
	b := Backoff{Base: time.Millisecond, Clock: clock}
	calls := 0
	last := errors.New("still down")
	err := b.Retry(context.Background(), 3, func() error {
		calls++
		return last
	})
	if !errors.Is(err, last) {
		t.Errorf("Retry error = %v, want the last failure", err)
	}
	if calls != 3 {
		t.Errorf("fn called %d times, want 3", calls)
	}
	// No sleep after the final attempt.
	if len(clock.waits) != 2 {
		t.Errorf("slept %d times, want 2", len(clock.waits))
	}
}

func TestBackoffRetryHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A huge base delay: if cancellation were ignored the test would hang.
	b := Backoff{Base: time.Hour}
	calls := 0
	err := b.Retry(ctx, 5, func() error {
		calls++
		return errors.New("down")
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("Retry error = %v, want a context.Canceled wrap", err)
	}
	if calls != 1 {
		t.Errorf("fn called %d times, want 1 (cancelled before the first sleep)", calls)
	}
}
