package fl

import (
	"context"
	"math"
	"testing"

	"clinfl/internal/tensor"
)

// deltaNorm computes the global L2 norm of (update - global).
func deltaNorm(t *testing.T, update *ClientUpdate, global map[string]*tensor.Matrix) float64 {
	t.Helper()
	var sq float64
	for name, w := range update.Weights {
		d, err := tensor.Sub(w, global[name])
		if err != nil {
			t.Fatal(err)
		}
		n := d.Norm()
		sq += n * n
	}
	return math.Sqrt(sq)
}

func bigUpdate(v float64) (*ClientUpdate, map[string]*tensor.Matrix) {
	global := map[string]*tensor.Matrix{
		"a": tensor.New(2, 2),
		"b": tensor.New(1, 4),
	}
	w := make(map[string]*tensor.Matrix, len(global))
	for name, g := range global {
		m := tensor.New(g.Rows(), g.Cols())
		m.Fill(v)
		w[name] = m
	}
	return &ClientUpdate{ClientName: "c", Weights: w, NumSamples: 1}, global
}

func TestNormCapFilterCapsLargeDelta(t *testing.T) {
	update, global := bigUpdate(10) // delta norm = 10*sqrt(8) ≈ 28.3
	before := deltaNorm(t, update, global)
	f := NormCapFilter{Cap: 1}
	if err := f.Apply(update, global); err != nil {
		t.Fatal(err)
	}
	after := deltaNorm(t, update, global)
	if before <= 1 {
		t.Fatal("test setup: delta should start above the cap")
	}
	if math.Abs(after-1) > 1e-9 {
		t.Fatalf("capped delta norm %v, want 1", after)
	}
	// Direction must be preserved: all elements equal and positive.
	v0 := update.Weights["a"].At(0, 0)
	if v0 <= 0 {
		t.Fatalf("cap flipped the delta direction: %v", v0)
	}
}

func TestNormCapFilterLeavesSmallDelta(t *testing.T) {
	update, global := bigUpdate(0.01)
	want := update.Weights["a"].Clone()
	f := NormCapFilter{Cap: 10}
	if err := f.Apply(update, global); err != nil {
		t.Fatal(err)
	}
	if !update.Weights["a"].Equal(want) {
		t.Fatal("under-cap update was modified")
	}
}

func TestNormCapFilterErrors(t *testing.T) {
	update, global := bigUpdate(1)
	if err := (NormCapFilter{Cap: 0}).Apply(update, global); err == nil {
		t.Fatal("want error for zero cap")
	}
	delete(global, "a")
	if err := (NormCapFilter{Cap: 1}).Apply(update, global); err == nil {
		t.Fatal("want error for missing global param")
	}
}

func TestGaussianNoiseFilterPerturbsWeights(t *testing.T) {
	update, global := bigUpdate(1)
	orig := update.Weights["a"].Clone()
	f := GaussianNoiseFilter{Sigma: 0.5, RNG: tensor.NewRNG(1)}
	if err := f.Apply(update, global); err != nil {
		t.Fatal(err)
	}
	if update.Weights["a"].Equal(orig) {
		t.Fatal("noise filter left weights unchanged")
	}
	// Perturbation magnitude should be on the order of sigma.
	d, _ := tensor.Sub(update.Weights["a"], orig)
	if d.MaxAbs() > 0.5*6 {
		t.Fatalf("noise far beyond 6 sigma: %v", d.MaxAbs())
	}
}

func TestGaussianNoiseFilterZeroSigmaIsIdentity(t *testing.T) {
	update, global := bigUpdate(1)
	orig := update.Weights["a"].Clone()
	if err := (GaussianNoiseFilter{Sigma: 0}).Apply(update, global); err != nil {
		t.Fatal(err)
	}
	if !update.Weights["a"].Equal(orig) {
		t.Fatal("zero-sigma filter modified weights")
	}
}

func TestGaussianNoiseFilterErrors(t *testing.T) {
	update, global := bigUpdate(1)
	if err := (GaussianNoiseFilter{Sigma: -1}).Apply(update, global); err == nil {
		t.Fatal("want error for negative sigma")
	}
	if err := (GaussianNoiseFilter{Sigma: 1}).Apply(update, global); err == nil {
		t.Fatal("want error for missing RNG")
	}
}

func TestControllerAppliesFilterChain(t *testing.T) {
	// A divergent client (value 100) is reined in by the norm cap, so the
	// aggregate stays near the well-behaved client.
	execs := []Executor{
		&fakeExecutor{name: "good", samples: 1, value: 0.1},
		&fakeExecutor{name: "bad", samples: 1, value: 100},
	}
	ctrl, err := NewController(ControllerConfig{
		Rounds:  1,
		Filters: []Filter{NormCapFilter{Cap: 0.5}},
	}, execs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run(context.Background(), initialWeights())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FinalWeights["layer.w"].At(0, 0); got > 1 {
		t.Fatalf("filter chain did not cap the divergent client: aggregate %v", got)
	}
}

func TestFilterNames(t *testing.T) {
	if (NormCapFilter{}).Name() != "norm-cap" || (GaussianNoiseFilter{}).Name() != "gaussian-noise" {
		t.Fatal("filter names wrong")
	}
}
