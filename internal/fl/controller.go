package fl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"clinfl/internal/fl/durable"
	"clinfl/internal/fl/hier"
	"clinfl/internal/fl/reconcile"
	"clinfl/internal/metrics"
	"clinfl/internal/tensor"
)

// ControllerConfig parameterizes the server-side scatter-and-gather
// workflow. The zero value (plus Rounds) reproduces the paper's fully
// synchronous federation; SampleFraction, MinUpdates and RoundDeadline
// progressively relax it toward a production asynchronous one.
type ControllerConfig struct {
	// Rounds is E, the number of communication rounds (Fig. 1).
	Rounds int
	// MinClients is the quorum required per round; fewer successful
	// updates fail the round. 0 means all sampled clients must respond
	// (or, when MinUpdates is set, that many).
	MinClients int
	// SampleFraction selects a random subset of clients each round
	// (production FL's partial participation). Values in (0, 1) sample
	// ceil(fraction * N) of the idle clients; 0 or >= 1 uses them all.
	SampleFraction float64
	// MinUpdates, when > 0, aggregates as soon as this many updates have
	// arrived instead of waiting for every sampled client — the fast path
	// of NVFlare's wait_time_after_min_received. 0 waits for all sampled.
	MinUpdates int
	// RoundDeadline bounds one round's gather: when it fires, whatever
	// has arrived (subject to MinClients) is aggregated and the
	// stragglers' eventual updates are handled by the staleness policy
	// below. 0 falls back to RoundTimeout.
	RoundDeadline time.Duration
	// RoundTimeout is the legacy name for RoundDeadline (0 = no limit).
	RoundTimeout time.Duration
	// AsyncAggregator, when non-nil, folds late updates (stragglers from
	// round r arriving during round r' > r) into the global model with
	// staleness weighting (FedAsync). Nil drops late updates.
	AsyncAggregator AsyncAggregator
	// Seed drives the per-round client sampling stream.
	Seed int64
	// Aggregator combines updates (default FedAvg).
	Aggregator Aggregator
	// Filters run over every client update before aggregation (NVFlare's
	// privacy-filter chain); nil means no filtering.
	Filters []Filter
	// Validate, if non-nil, scores each round's aggregated model; the
	// controller keeps the best-scoring weights as the selected model
	// (NVFlare's IntimeModelSelector).
	Validate func(weights map[string]*tensor.Matrix) (float64, error)
	// Patience, when > 0 and Validate is set, stops the run early after
	// this many consecutive rounds without a new best validation score.
	Patience int
	// Clock supplies round timestamps, gather deadlines, and the
	// goroutines carrying client work. Nil means the real wall clock;
	// internal/sim injects a deterministic virtual clock here so scenarios
	// with hours of simulated straggling replay identically in
	// milliseconds of real time.
	Clock Clock
	// WAL, when non-nil, makes the run durable: every round lifecycle
	// event (round open, task assignment, update receipt, model commit)
	// is appended and fsync'd before the run proceeds, and Run resumes
	// from the WAL's recovered state — the last committed model, plus any
	// open round's already-received updates — instead of initialWeights.
	// A crashed run restarted over the same WAL (with the same executors
	// and config) converges to the same final model as an uninterrupted
	// one, because updates are stored at full precision and aggregation
	// order is canonical.
	WAL *durable.WAL
	// Metrics, when non-nil, receives round/byte/failure/straggler
	// counters and the round-duration histogram. Nil disables metrics at
	// zero cost.
	Metrics *metrics.Registry
	// Reconcile, when non-nil, turns on the reconciliation control
	// plane: failed task assignments are requeued with backoff and
	// re-dispatched (same client or a substitute) within the round
	// deadline, repeated failures demote clients out of the sample pool
	// until a recovery probe succeeds, and a round starved below quorum
	// degrades (FedAsync partial finalize) or parks awaiting probes
	// instead of failing. Nil preserves the legacy single-shot behavior.
	Reconcile *ReconcilePolicy
	// Tier, when non-nil, routes rounds through hierarchical streaming
	// aggregation (see TierConfig): updates fold into O(model) partials
	// at edge shards as they arrive instead of buffering per-client
	// weight maps at the root. Nil keeps the legacy flat path
	// bit-for-bit unchanged.
	Tier *TierConfig
}

// withDefaults fills zero fields.
func (c ControllerConfig) withDefaults(numClients int) ControllerConfig {
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.MinClients <= 0 || c.MinClients > numClients {
		c.MinClients = numClients
		if c.MinUpdates > 0 && c.MinUpdates < numClients {
			// Partial aggregation on: the quorum floor follows the early
			// trigger, not the full roster.
			c.MinClients = c.MinUpdates
		}
	}
	if c.RoundDeadline <= 0 {
		c.RoundDeadline = c.RoundTimeout
	}
	if c.Aggregator == nil {
		c.Aggregator = FedAvg{}
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	return c
}

// RoundRecord captures one communication round for the run history.
type RoundRecord struct {
	Round int
	// MeanTrainLoss averages the participating clients' local losses,
	// weighted by sample count.
	MeanTrainLoss float64
	// ValScore is the post-aggregation validation score (NaN if no
	// validator configured).
	ValScore float64
	// Sampled lists the clients tasked this round (all clients when
	// sampling is off).
	Sampled []string
	// Participants lists clients whose updates were aggregated in-round.
	Participants []string
	// LateApplied lists stale updates from earlier rounds folded into the
	// global model this round via the AsyncAggregator.
	LateApplied []string
	// LateDropped lists stale updates discarded this round (no
	// AsyncAggregator configured).
	LateDropped []string
	// Failures records per-client send/receive/training errors as
	// "client: error" strings; a failed client is never silently absent.
	Failures []string
	// Reassigned records every reconciliation re-dispatch this round as
	// "origin>target" — origin is the client originally sampled for the
	// slot ("probe" for a parked round re-tasking a revived client),
	// target the client that received the retry. A retry to the same
	// client reads "a>a".
	Reassigned []string
	// Degraded marks a round finalized below MinUpdates under mass
	// failure (FedAsync partial finalize, at or above quorum — or below
	// it when parking could not revive enough clients).
	Degraded bool
	// BytesUp / BytesDown are the round's weight-payload bytes: encoded
	// update payloads received / task payloads sent. Populated by the
	// networked server from real payload sizes; in-process, BytesUp comes
	// from PayloadBytes (stamped by a CodecSimFilter or the executor) and
	// BytesDown from executors that stamp ClientUpdate.DownBytes (the
	// simulator's cost-accounting clients).
	BytesUp, BytesDown int64
	// Duration is the wall-clock round time.
	Duration time.Duration
	// TierPartials counts the partial aggregates that crossed tier hops
	// this round (hierarchical aggregation only; omitted when zero so
	// legacy histories stay byte-identical).
	TierPartials int `json:",omitempty"`
	// TierBytesUp is the encoded-partial bytes those hops carried.
	TierBytesUp int64 `json:",omitempty"`
	// TierResidentBytes is the root's resident aggregation state at
	// finalize — the O(model) quantity, independent of client count.
	TierResidentBytes int64 `json:",omitempty"`
}

// History is the full federated run record.
type History struct {
	Rounds []RoundRecord
	// BestRound holds the round index whose validation score was highest
	// (-1 when no validation was configured).
	BestRound int
	// BestScore is the corresponding score.
	BestScore float64
	// FinishFailures records clients the final-model broadcast could not
	// reach (networked server only).
	FinishFailures []string
	// WireBytesRead / WireBytesWritten are the run's total framed bytes
	// on the wire across all client connections — headers, metadata and
	// gob overhead included, unlike the per-round payload counters
	// (networked server only).
	WireBytesRead, WireBytesWritten int64
}

// Result is the controller's output: the final and selected models plus
// the run history.
type Result struct {
	// FinalWeights is the last round's aggregated model.
	FinalWeights map[string]*tensor.Matrix
	// BestWeights is the highest-validation-score model (== FinalWeights
	// when no validator is configured).
	BestWeights map[string]*tensor.Matrix
	History     History
	// Health snapshots every tracked client's final reconciliation state
	// (nil when no ReconcilePolicy was configured).
	Health map[string]string
}

// execOutcome carries one executor's result, tagged with the round it was
// tasked for so stragglers finishing after their round's deadline are
// recognized as late.
type execOutcome struct {
	update *ClientUpdate
	err    error
	name   string
	round  int
	// probe marks a recovery-probe result (err nil = the demoted client
	// answered) rather than a round execution.
	probe bool
}

// Controller drives the federated run over a set of executors in-process
// (NVFlare simulator mode: every client is a goroutine rather than a
// remote site; the networked deployment in server.go shares this logic).
type Controller struct {
	cfg       ControllerConfig
	executors []Executor

	// results is the run-long gather channel: buffered so a straggler
	// finishing rounds later never blocks, even after Run returns.
	results chan execOutcome
	// inFlight marks executors still working on a previous round's task;
	// they are excluded from sampling until their outcome arrives.
	inFlight map[string]bool
	rng      *tensor.RNG
	met      flMetrics
	// mon / pol are the reconciliation state machine and its resolved
	// policy; nil mon means the legacy single-shot round loop.
	mon    *reconcile.Monitor
	pol    ReconcilePolicy
	byName map[string]Executor
	// tierShards recycles the tier path's edge-shard partials across
	// rounds (Reset keeps each one's O(model) slabs warm), so a round's
	// aggregation state is allocated once per run, not once per round.
	tierShards []*hier.Partial
}

// NewController builds a controller over executors.
func NewController(cfg ControllerConfig, executors []Executor) (*Controller, error) {
	if len(executors) == 0 {
		return nil, errors.New("fl: controller needs at least one executor")
	}
	if err := validateTier(cfg.Tier, cfg.Aggregator, cfg.AsyncAggregator,
		cfg.Filters, cfg.WAL, cfg.Reconcile); err != nil {
		return nil, err
	}
	names := make(map[string]bool, len(executors))
	byName := make(map[string]Executor, len(executors))
	for _, e := range executors {
		if names[e.Name()] {
			return nil, fmt.Errorf("fl: duplicate executor name %q", e.Name())
		}
		names[e.Name()] = true
		byName[e.Name()] = e
	}
	c := &Controller{
		cfg:       cfg.withDefaults(len(executors)),
		executors: executors,
		// Each executor has at most one task outcome and one probe
		// outcome outstanding (it is never re-tasked until its previous
		// outcome drains, and an in-flight probe never re-fires), so two
		// slots per executor guarantee senders never block, even for
		// stragglers finishing after Run returns.
		results:  make(chan execOutcome, 2*len(executors)),
		inFlight: make(map[string]bool, len(executors)),
		rng:      tensor.NewRNG(cfg.Seed + 7919),
		met:      newFLMetrics(cfg.Metrics),
		byName:   byName,
	}
	if cfg.Reconcile != nil {
		c.pol = cfg.Reconcile.withDefaults()
		c.mon = c.pol.monitor()
	}
	return c, nil
}

// Run executes the scatter-and-gather workflow for E rounds starting from
// initialWeights, honoring ctx cancellation between rounds.
func (c *Controller) Run(ctx context.Context, initialWeights map[string]*tensor.Matrix) (*Result, error) {
	global := cloneWeights(initialWeights)
	res := &Result{History: History{BestRound: -1}}
	sinceBest := 0

	// A durable run picks up where the WAL left off: the last committed
	// model replaces initialWeights, and a round that was open at the
	// crash is resumed — its recorded updates re-seeded, only the pending
	// clients re-executed.
	startRound := 0
	var resume *durable.OpenRound
	if c.cfg.WAL != nil {
		st := c.cfg.WAL.Recovered()
		if st.Records > 0 {
			c.met.reg.Counter("fl_recoveries_total", "runs resumed from a non-empty WAL").Inc()
		}
		if st.Weights != nil {
			global = cloneWeights(st.Weights)
		}
		startRound = st.LastRound + 1
		if st.Open != nil {
			startRound = st.Open.Round
			resume = st.Open
		}
		// Replayed quarantine decisions take effect before any sampling:
		// a crash must not resurrect a quarantined client into the pool.
		if c.mon != nil {
			for name, state := range st.Health {
				if state == reconcile.Quarantined.String() {
					c.mon.SetQuarantined(name)
				}
			}
			c.met.syncHealthGauges(c.mon)
		}
	}

	for round := startRound; round < c.cfg.Rounds; round++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("fl: cancelled before round %d: %w", round, ctx.Err())
		default:
		}
		start := c.cfg.Clock.Now()
		rec := RoundRecord{Round: round}
		if c.cfg.Tier != nil {
			// Hierarchical path: updates stream into edge-shard partials as
			// they arrive and merge up the tiers; the root never holds
			// per-client weight maps.
			var err error
			global, err = c.tierRound(ctx, round, global, &rec)
			if err != nil {
				return nil, err
			}
			rec.Duration = c.cfg.Clock.Since(start)
		} else {
			updates, late, err := c.scatterGather(ctx, round, global, &rec, resume)
			resume = nil
			if err != nil {
				return nil, err
			}
			global, err = finalizeRound(c.cfg.Filters, c.cfg.Aggregator, c.cfg.AsyncAggregator,
				updates, late, round, global, &rec)
			if err != nil {
				return nil, err
			}

			rec.Duration = c.cfg.Clock.Since(start)
			var lossSum, weightSum float64
			for _, u := range updates {
				rec.Participants = append(rec.Participants, u.ClientName)
				rec.BytesUp += int64(u.PayloadBytes)
				rec.BytesDown += int64(u.DownBytes)
				lossSum += u.TrainLoss * float64(u.NumSamples)
				weightSum += float64(u.NumSamples)
			}
			if weightSum > 0 {
				rec.MeanTrainLoss = lossSum / weightSum
			}
		}
		if c.cfg.WAL != nil {
			// The commit point: once RecModelCommit is durable (group
			// committed by the syncer, settled by Close) a restart starts
			// at round+1 and never re-runs this round.
			if err := c.cfg.WAL.AppendRoundFinal(round, rec.Participants); err != nil {
				return nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
			if err := c.cfg.WAL.AppendModelCommit(round, global); err != nil {
				return nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
		}
		c.met.roundDone(&rec)
		if c.cfg.Validate != nil {
			score, err := c.cfg.Validate(global)
			if err != nil {
				return nil, fmt.Errorf("fl: round %d validate: %w", round, err)
			}
			rec.ValScore = score
			if res.History.BestRound < 0 || score > res.History.BestScore {
				res.History.BestRound = round
				res.History.BestScore = score
				res.BestWeights = cloneWeights(global)
				sinceBest = 0
			} else {
				sinceBest++
			}
		}
		res.History.Rounds = append(res.History.Rounds, rec)
		if c.cfg.Patience > 0 && c.cfg.Validate != nil && sinceBest >= c.cfg.Patience {
			break // early stop: no validation improvement for Patience rounds
		}
	}
	res.FinalWeights = global
	if res.BestWeights == nil {
		res.BestWeights = cloneWeights(global)
	}
	if c.mon != nil {
		res.Health = c.mon.Snapshot()
	}
	return res, nil
}

// sampleClients picks this round's participants among executors that are
// not still busy with an earlier round's task (and, under a
// ReconcilePolicy, are health-eligible — Unreachable/Quarantined clients
// stay out of the pool until a probe succeeds; with every executor
// demoted the sample is empty and the caller parks the round).
func (c *Controller) sampleClients() ([]Executor, error) {
	idle := make([]Executor, 0, len(c.executors))
	allDemoted := c.mon != nil
	for _, ex := range c.executors {
		if c.inFlight[ex.Name()] {
			continue
		}
		if c.mon != nil && !c.mon.Eligible(ex.Name()) {
			continue
		}
		allDemoted = false
		idle = append(idle, ex)
	}
	if allDemoted {
		return nil, nil // mass failure: park rather than error
	}
	if len(idle) == 0 {
		return nil, errors.New("fl: no idle clients to sample (every executor is a straggler)")
	}
	if c.cfg.SampleFraction <= 0 || c.cfg.SampleFraction >= 1 {
		return idle, nil
	}
	k := int(math.Ceil(float64(len(c.executors)) * c.cfg.SampleFraction))
	if k < 1 {
		k = 1
	}
	if k > len(idle) {
		k = len(idle)
	}
	c.rng.Shuffle(len(idle), func(i, j int) { idle[i], idle[j] = idle[j], idle[i] })
	return idle[:k], nil
}

// finalizeRound runs the shared end-of-round aggregation for both the
// in-process controller and the networked server: the filter chain over the
// in-round updates, the batch aggregate, then the filter chain and the
// staleness-weighted merge for each late update. Late updates pass through
// the same filters before they can reach the global model — privacy filters
// (clipping, DP noise) must see every merged update, stale or not — against
// this round's starting weights, the closest surviving reference. A late
// update that fails filtering, shape-checking, or merging lands in
// rec.Failures and is skipped: one straggler's bad payload must not abort
// the federation.
//
// Both update batches are sorted into a canonical order (in-round by client
// name, late by round then name) before any floating-point accumulation, so
// the aggregated model is a pure function of the participating set: the
// order updates happened to arrive — a race under the real clock — can
// never change the global weights, and fixed-seed simulator runs reproduce
// bit-identically at any GOMAXPROCS.
func finalizeRound(filters []Filter, agg Aggregator, async AsyncAggregator,
	updates, late []*ClientUpdate, round int, global map[string]*tensor.Matrix, rec *RoundRecord) (map[string]*tensor.Matrix, error) {
	sort.Slice(updates, func(i, j int) bool { return updates[i].ClientName < updates[j].ClientName })
	sort.Slice(late, func(i, j int) bool {
		if late[i].Round != late[j].Round {
			return late[i].Round < late[j].Round
		}
		return late[i].ClientName < late[j].ClientName
	})
	if err := applyFilters(filters, updates, global); err != nil {
		return nil, fmt.Errorf("fl: round %d: %w", round, err)
	}
	var merged []*ClientUpdate
	for _, lu := range late {
		if err := applyFilters(filters, []*ClientUpdate{lu}, global); err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: late update: %v", lu.ClientName, err))
			continue
		}
		merged = append(merged, lu)
	}
	next, err := agg.Aggregate(updates)
	if err != nil {
		return nil, fmt.Errorf("fl: round %d aggregate: %w", round, err)
	}
	// Stragglers' updates merge after the in-round aggregate so the fresh
	// average is never clobbered. The shape pre-check keeps a mismatched
	// update from partially mutating the model inside Apply; LateApplied
	// records a merge only once it actually reached the global model.
	for _, lu := range merged {
		if err := checkShapes(next, lu); err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: late update: %v", lu.ClientName, err))
			continue
		}
		if err := async.Apply(next, lu, round-lu.Round); err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: late merge: %v", lu.ClientName, err))
			continue
		}
		rec.LateApplied = append(rec.LateApplied, lu.ClientName)
		rec.BytesUp += int64(lu.PayloadBytes)
		rec.BytesDown += int64(lu.DownBytes)
	}
	return next, nil
}

// checkShapes verifies an update covers every global parameter with
// matching dimensions.
func checkShapes(global map[string]*tensor.Matrix, u *ClientUpdate) error {
	for name, g := range global {
		w, ok := u.Weights[name]
		if !ok {
			return fmt.Errorf("missing param %q", name)
		}
		if w.Rows() != g.Rows() || w.Cols() != g.Cols() {
			return fmt.Errorf("param %q shape %dx%d, want %dx%d",
				name, w.Rows(), w.Cols(), g.Rows(), g.Cols())
		}
	}
	return nil
}

// scatterGather runs one round: the sampled executors train concurrently
// on the current global model; updates are gathered until all sampled
// clients respond, MinUpdates arrive, or the round deadline fires.
// Outcomes from earlier rounds' stragglers drain through the same channel
// and are returned as late updates (to merge via the AsyncAggregator) or
// recorded as dropped.
// When resume is non-nil (WAL recovery), the round's recorded updates are
// re-seeded instead of re-trained and only the tasked-but-unheard clients
// execute; executors are pure functions of (round, global), so the resumed
// round aggregates exactly what the uninterrupted one would have.
func (c *Controller) scatterGather(ctx context.Context, round int, global map[string]*tensor.Matrix, rec *RoundRecord, resume *durable.OpenRound) ([]*ClientUpdate, []*ClientUpdate, error) {
	// Drain stragglers that finished between rounds first, so they become
	// idle (sample-able) again and their updates enter this round's
	// staleness handling instead of rotting in the channel.
	var late []*ClientUpdate
drain:
	for {
		select {
		case o := <-c.results:
			if err := c.absorbStale(o, round, rec, &late); err != nil {
				return nil, nil, err
			}
		default:
			break drain
		}
	}

	var sampled []Executor
	var preSeeded []*ClientUpdate
	if resume != nil {
		for _, u := range resume.Updates {
			preSeeded = append(preSeeded, &ClientUpdate{
				ClientName: u.Client, Round: round, Weights: u.Weights,
				NumSamples: u.NumSamples, TrainLoss: u.TrainLoss,
				PayloadBytes: u.PayloadBytes,
			})
		}
		for _, name := range resume.Tasked {
			rec.Sampled = append(rec.Sampled, name)
			if resume.HasUpdate(name) {
				continue
			}
			ex, ok := c.byName[name]
			if !ok {
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: tasked before crash, absent after restart", name))
				c.met.failure("conn")
				continue
			}
			if c.mon != nil && !c.mon.Eligible(name) {
				// Quarantined by a replayed health record: the pre-crash
				// task assignment does not override the quarantine.
				rec.Failures = append(rec.Failures, fmt.Sprintf("%s: quarantined, not re-tasked on resume", name))
				c.met.failure("exec")
				continue
			}
			sampled = append(sampled, ex)
		}
	} else {
		var err error
		sampled, err = c.sampleClients()
		if err != nil {
			return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
		}
		if c.mon != nil && len(sampled) == 0 {
			// Mass failure: every executor is demoted. Park the round
			// until recovery probes readmit someone instead of failing.
			if err := c.parkUntilEligible(ctx, round, rec, &late); err != nil {
				return nil, nil, err
			}
			if sampled, err = c.sampleClients(); err != nil {
				return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
		}
		for _, ex := range sampled {
			rec.Sampled = append(rec.Sampled, ex.Name())
		}
		if c.cfg.WAL != nil {
			if err := c.cfg.WAL.AppendRoundOpen(round); err != nil {
				return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
			// Task assignments from a resumed round are already on disk.
			for _, ex := range sampled {
				if err := c.cfg.WAL.AppendTaskAssigned(round, ex.Name()); err != nil {
					return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
				}
			}
		}
	}
	// No fsync barrier before the executors start: file order gives the
	// WAL a durable prefix (an fsync covering this round's open covers
	// the previous commit too), and a lost suffix re-executes the round
	// deterministically. The background syncer flushes the scatter while
	// the executors train.
	for _, ex := range sampled {
		c.dispatch(ex, round, global)
	}

	tasked := len(sampled) + len(preSeeded)
	quorum := c.cfg.MinClients
	if quorum > tasked {
		quorum = tasked
	}
	minUpdates := c.cfg.MinUpdates
	if minUpdates <= 0 || minUpdates > tasked {
		minUpdates = tasked
	}
	if minUpdates < quorum {
		// An early aggregate below the quorum would always fail it; wait
		// for the quorum before cutting the round short.
		minUpdates = quorum
	}

	updates := preSeeded
	pending := len(sampled)
	if c.mon != nil {
		return c.reconcileGather(ctx, round, global, rec, sampled, updates, late, pending, quorum, minUpdates)
	}
	deadlineAt, deadlineCh := gatherDeadline(c.cfg.Clock, c.cfg.RoundDeadline)
gather:
	for pending > 0 && len(updates) < minUpdates {
		o, status := waitRecv(c.cfg.Clock, c.results, ctx.Done(), deadlineAt, deadlineCh)
		switch status {
		case waitDeadline:
			// Stragglers stay in flight; their updates surface as late
			// outcomes in a future round's gather (NVFlare's
			// wait_time_after_min_received semantics, made durable).
			c.met.stragglers.Add(int64(pending))
			break gather
		case waitCancelled:
			return nil, nil, fmt.Errorf("fl: round %d cancelled: %w", round, ctx.Err())
		}
		delete(c.inFlight, o.name)
		switch {
		case o.err != nil:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", o.name, o.err))
			c.met.failure("exec")
			if o.round == round {
				pending--
			}
		case o.round == round:
			pending--
			if c.cfg.WAL != nil {
				// Lazy append, group-committed by the WAL's syncer. A
				// crash that loses it re-executes the client on resume —
				// either way the round's participant set is consistent on
				// disk and in memory.
				if err := c.cfg.WAL.AppendUpdate(round, o.name, o.update.NumSamples,
					o.update.TrainLoss, o.update.PayloadBytes, o.update.Weights); err != nil {
					return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
				}
			}
			updates = append(updates, o.update)
		case c.cfg.AsyncAggregator != nil:
			late = append(late, o.update)
		default:
			rec.LateDropped = append(rec.LateDropped, o.name)
		}
	}
	if len(updates) < quorum {
		return nil, nil, fmt.Errorf("fl: round %d quorum not met: %d/%d updates (failures: %v)",
			round, len(updates), quorum, rec.Failures)
	}
	return updates, late, nil
}

// dispatch starts one executor on the round's task.
func (c *Controller) dispatch(ex Executor, round int, global map[string]*tensor.Matrix) {
	c.inFlight[ex.Name()] = true
	c.cfg.Clock.Go(func() {
		u, err := ex.ExecuteRound(round, global)
		c.results <- execOutcome{update: u, err: err, name: ex.Name(), round: round}
	})
}

// dispatchProbe starts a recovery probe of a demoted client. Executors
// implementing Prober are actually probed; the rest trivially succeed —
// for an in-process executor there is nothing to check beyond waiting
// out the probe backoff.
func (c *Controller) dispatchProbe(name string) {
	ex := c.byName[name]
	c.cfg.Clock.Go(func() {
		var err error
		if p, ok := ex.(Prober); ok {
			err = p.Probe()
		}
		c.results <- execOutcome{name: name, err: err, probe: true}
	})
}

// healthEdge records a health transition in metrics and — for the
// durable pool-membership edges, quarantine entry and the rejoin
// clearing it — in the WAL.
func (c *Controller) healthEdge(round int, tr reconcile.Transition) error {
	if !tr.Changed() {
		return nil
	}
	c.met.healthTransition(c.mon, tr)
	if c.cfg.WAL != nil && (tr.To == reconcile.Quarantined || tr.From == reconcile.Quarantined) {
		if err := c.cfg.WAL.AppendHealth(round, tr.Client, tr.To.String()); err != nil {
			return fmt.Errorf("fl: round %d: %w", round, err)
		}
	}
	return nil
}

// absorbStale handles an outcome that is not part of the current round's
// gather: recovery-probe results and previous rounds' stragglers
// (failures, late updates). Shared by the between-rounds drain and the
// parked-round wait.
func (c *Controller) absorbStale(o execOutcome, round int, rec *RoundRecord, late *[]*ClientUpdate) error {
	if o.probe {
		res := "ok"
		if o.err != nil {
			res = "fail"
		}
		c.met.probe(res)
		tr := c.mon.ProbeResult(o.name, o.err == nil, c.cfg.Clock.Now())
		return c.healthEdge(round, tr)
	}
	delete(c.inFlight, o.name)
	var tr reconcile.Transition
	switch {
	case o.err != nil:
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", o.name, o.err))
		c.met.failure("exec")
		if c.mon != nil {
			tr = c.mon.Observe(o.name, false, c.cfg.Clock.Now())
		}
	case c.cfg.AsyncAggregator != nil:
		*late = append(*late, o.update)
		if c.mon != nil {
			tr = c.mon.Observe(o.name, true, c.cfg.Clock.Now())
		}
	default:
		rec.LateDropped = append(rec.LateDropped, o.name)
		if c.mon != nil {
			tr = c.mon.Observe(o.name, true, c.cfg.Clock.Now())
		}
	}
	if c.mon != nil {
		return c.healthEdge(round, tr)
	}
	return nil
}

// parkUntilEligible blocks a round whose sample pool is empty (every
// executor demoted — mass failure) until a recovery probe readmits
// someone, bounded by MaxPark. Straggler outcomes arriving meanwhile are
// absorbed like the between-rounds drain.
func (c *Controller) parkUntilEligible(ctx context.Context, round int, rec *RoundRecord, late *[]*ClientUpdate) error {
	c.met.parked.Inc()
	parkDeadline := c.cfg.Clock.Now().Add(c.pol.MaxPark)
	for {
		now := c.cfg.Clock.Now()
		for _, ex := range c.executors {
			if !c.inFlight[ex.Name()] && c.mon.Eligible(ex.Name()) {
				return nil
			}
		}
		if !now.Before(parkDeadline) {
			return fmt.Errorf("fl: round %d: no eligible clients after parking %v (every executor demoted; failures so far: %v)",
				round, c.pol.MaxPark, rec.Failures)
		}
		for _, name := range c.mon.DueProbes(now) {
			c.dispatchProbe(name)
		}
		wake := parkDeadline
		if at := c.mon.NextProbeAt(); !at.IsZero() && at.Before(wake) {
			wake = at
		}
		at, ch := wakeChan(c.cfg.Clock, wake)
		o, status := waitRecv(c.cfg.Clock, c.results, ctx.Done(), at, ch)
		switch status {
		case waitCancelled:
			return fmt.Errorf("fl: round %d cancelled: %w", round, ctx.Err())
		case waitDeadline:
			continue
		}
		if err := c.absorbStale(o, round, rec, late); err != nil {
			return err
		}
	}
}

// reconcileGather is the reconciliation-aware replacement for the legacy
// gather loop: failed assignments are requeued with backoff and
// re-dispatched (to the same client, or — with Substitute — an idle
// eligible one) until the round deadline; demoted clients are probed and
// may be re-tasked on recovery; and a round that can no longer reach its
// aggregate trigger degrades (FedAsync partial finalize) or parks
// awaiting probes, bounded by MaxPark, instead of deadlocking.
func (c *Controller) reconcileGather(ctx context.Context, round int, global map[string]*tensor.Matrix, rec *RoundRecord,
	sampled []Executor, updates, late []*ClientUpdate, pending, quorum, minUpdates int) ([]*ClientUpdate, []*ClientUpdate, error) {
	var roundDeadlineAt time.Time
	if c.cfg.RoundDeadline > 0 {
		roundDeadlineAt = c.cfg.Clock.Now().Add(c.cfg.RoundDeadline)
	}
	rq := reconcile.NewQueue()
	// assignment maps each in-flight executor to its current task so a
	// failure knows the slot's attempt count and original owner.
	assignment := make(map[string]reconcile.Task, len(sampled))
	for _, ex := range sampled {
		assignment[ex.Name()] = reconcile.Task{Client: ex.Name(), Round: round, Attempt: 1, Origin: ex.Name()}
	}
	participated := make(map[string]bool, len(updates))
	for _, u := range updates {
		participated[u.ClientName] = true
	}
	inSampled := make(map[string]bool, len(rec.Sampled))
	for _, n := range rec.Sampled {
		inSampled[n] = true
	}

	// redispatch hands a ready task to its client — or, when that client
	// is busy, demoted, or already counted, to the first idle eligible
	// substitute in roster order (deterministic). A task with no viable
	// target is abandoned; its triggering failure is already recorded.
	redispatch := func(t reconcile.Task) error {
		target := t.Client
		if c.inFlight[target] || participated[target] || !c.mon.Eligible(target) {
			target = ""
			if c.pol.Substitute {
				for _, ex := range c.executors {
					n := ex.Name()
					if !c.inFlight[n] && !participated[n] && c.mon.Eligible(n) {
						target = n
						break
					}
				}
			}
		}
		if target == "" {
			return nil
		}
		assignment[target] = reconcile.Task{Client: target, Round: round, Attempt: t.Attempt, Origin: t.Origin}
		rec.Reassigned = append(rec.Reassigned, t.Origin+">"+target)
		if !inSampled[target] {
			inSampled[target] = true
			rec.Sampled = append(rec.Sampled, target)
		}
		if c.cfg.WAL != nil {
			if err := c.cfg.WAL.AppendTaskAssigned(round, target); err != nil {
				return fmt.Errorf("fl: round %d: %w", round, err)
			}
		}
		c.dispatch(c.byName[target], round, global)
		pending++
		return nil
	}

	deadlineFired := false
	parked := false
	var parkDeadline time.Time
	for {
		now := c.cfg.Clock.Now()
		if !deadlineFired && !roundDeadlineAt.IsZero() && !now.Before(roundDeadlineAt) {
			deadlineFired = true
			c.met.stragglers.Add(int64(pending))
			// Queued retries die with the deadline; the failures that
			// queued them are already in rec.Failures, so nothing is
			// silently lost.
			rq.Drain()
		}
		if len(updates) >= minUpdates {
			break
		}
		if deadlineFired && len(updates) >= quorum {
			break
		}
		if parked && !now.Before(parkDeadline) {
			// Parking budget exhausted: degrade if the async path can
			// finalize a partial round, else fall through to the quorum
			// check below.
			break
		}
		if !deadlineFired {
			for _, t := range rq.Due(now) {
				if err := redispatch(t); err != nil {
					return nil, nil, err
				}
			}
		}
		for _, name := range c.mon.DueProbes(now) {
			c.dispatchProbe(name)
		}
		if pending == 0 && rq.Len() == 0 {
			// Starved: nothing in flight, nothing queued, below the
			// trigger. Recoverable only if probes are running or
			// scheduled; otherwise give up now.
			if !c.mon.Probing() && c.mon.NextProbeAt().IsZero() {
				break
			}
			if !parked {
				parked = true
				parkDeadline = now.Add(c.pol.MaxPark)
				c.met.parked.Inc()
			}
		}
		var wake time.Time
		earliest := func(t time.Time) {
			if !t.IsZero() && (wake.IsZero() || t.Before(wake)) {
				wake = t
			}
		}
		if !deadlineFired {
			earliest(roundDeadlineAt)
			earliest(rq.NextAt())
		}
		earliest(c.mon.NextProbeAt())
		if parked {
			earliest(parkDeadline)
		}
		at, ch := wakeChan(c.cfg.Clock, wake)
		o, status := waitRecv(c.cfg.Clock, c.results, ctx.Done(), at, ch)
		switch status {
		case waitDeadline:
			continue
		case waitCancelled:
			return nil, nil, fmt.Errorf("fl: round %d cancelled: %w", round, ctx.Err())
		}
		now = c.cfg.Clock.Now()
		if o.probe {
			res := "ok"
			if o.err != nil {
				res = "fail"
			}
			c.met.probe(res)
			tr := c.mon.ProbeResult(o.name, o.err == nil, now)
			if err := c.healthEdge(round, tr); err != nil {
				return nil, nil, err
			}
			if o.err == nil {
				// Revived mid-round: if the round still cannot reach its
				// trigger with what is in flight and queued, task the
				// recovered client (the parked-round resume path).
				need := minUpdates
				if deadlineFired {
					need = quorum
				}
				if len(updates)+pending+rq.Len() < need && !participated[o.name] && !c.inFlight[o.name] {
					if err := redispatch(reconcile.Task{Client: o.name, Round: round, Attempt: 1, Origin: "probe"}); err != nil {
						return nil, nil, err
					}
				}
			}
			continue
		}
		delete(c.inFlight, o.name)
		t, assigned := assignment[o.name]
		if assigned {
			delete(assignment, o.name)
		}
		switch {
		case o.err != nil:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", o.name, o.err))
			c.met.failure("exec")
			tr := c.mon.Observe(o.name, false, now)
			if err := c.healthEdge(round, tr); err != nil {
				return nil, nil, err
			}
			if o.round == round {
				pending--
				if assigned && !deadlineFired && t.Attempt < c.pol.MaxAssignAttempts {
					readyAt := now.Add(c.pol.RequeueBackoff.Delay(t.Attempt - 1))
					if roundDeadlineAt.IsZero() || readyAt.Before(roundDeadlineAt) {
						rq.Add(reconcile.Task{Client: t.Client, Round: round, Attempt: t.Attempt + 1, Origin: t.Origin}, readyAt)
						c.met.requeues.Inc()
					}
				}
			}
		case o.round == round:
			pending--
			tr := c.mon.Observe(o.name, true, now)
			if err := c.healthEdge(round, tr); err != nil {
				return nil, nil, err
			}
			if c.cfg.WAL != nil {
				if err := c.cfg.WAL.AppendUpdate(round, o.name, o.update.NumSamples,
					o.update.TrainLoss, o.update.PayloadBytes, o.update.Weights); err != nil {
					return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
				}
			}
			updates = append(updates, o.update)
			participated[o.name] = true
		case c.cfg.AsyncAggregator != nil:
			tr := c.mon.Observe(o.name, true, now)
			if err := c.healthEdge(round, tr); err != nil {
				return nil, nil, err
			}
			late = append(late, o.update)
		default:
			tr := c.mon.Observe(o.name, true, now)
			if err := c.healthEdge(round, tr); err != nil {
				return nil, nil, err
			}
			rec.LateDropped = append(rec.LateDropped, o.name)
		}
	}
	if len(updates) < quorum {
		// Mass failure left the round short. The async path finalizes
		// what it has as a degraded partial round — FedAsync already
		// tolerates weight drift from missing participants — provided at
		// least one update arrived; the synchronous path must fail.
		if c.cfg.AsyncAggregator != nil && len(updates) > 0 {
			rec.Degraded = true
			c.met.degraded.Inc()
			return updates, late, nil
		}
		return nil, nil, fmt.Errorf("fl: round %d quorum not met after reconciliation: %d/%d updates (failures: %v)",
			round, len(updates), quorum, rec.Failures)
	}
	if len(updates) < minUpdates {
		// At or above quorum but short of the trigger: the deadline or
		// the parking budget cut a mass-failure round short.
		rec.Degraded = true
		c.met.degraded.Inc()
	}
	return updates, late, nil
}

// cloneWeights deep-copies a weight map.
func cloneWeights(w map[string]*tensor.Matrix) map[string]*tensor.Matrix {
	out := make(map[string]*tensor.Matrix, len(w))
	for name, m := range w {
		out[name] = m.Clone()
	}
	return out
}
