package fl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"clinfl/internal/tensor"
)

// ControllerConfig parameterizes the server-side scatter-and-gather
// workflow.
type ControllerConfig struct {
	// Rounds is E, the number of communication rounds (Fig. 1).
	Rounds int
	// MinClients is the quorum required per round; fewer successful
	// updates fail the round. 0 means all clients must respond.
	MinClients int
	// RoundTimeout bounds one round's local training (0 = no limit).
	RoundTimeout time.Duration
	// Aggregator combines updates (default FedAvg).
	Aggregator Aggregator
	// Filters run over every client update before aggregation (NVFlare's
	// privacy-filter chain); nil means no filtering.
	Filters []Filter
	// Validate, if non-nil, scores each round's aggregated model; the
	// controller keeps the best-scoring weights as the selected model
	// (NVFlare's IntimeModelSelector).
	Validate func(weights map[string]*tensor.Matrix) (float64, error)
	// Patience, when > 0 and Validate is set, stops the run early after
	// this many consecutive rounds without a new best validation score.
	Patience int
}

// withDefaults fills zero fields.
func (c ControllerConfig) withDefaults(numClients int) ControllerConfig {
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.MinClients <= 0 || c.MinClients > numClients {
		c.MinClients = numClients
	}
	if c.Aggregator == nil {
		c.Aggregator = FedAvg{}
	}
	return c
}

// RoundRecord captures one communication round for the run history.
type RoundRecord struct {
	Round int
	// MeanTrainLoss averages the participating clients' local losses,
	// weighted by sample count.
	MeanTrainLoss float64
	// ValScore is the post-aggregation validation score (NaN if no
	// validator configured).
	ValScore float64
	// Participants lists clients whose updates were aggregated.
	Participants []string
	// Duration is the wall-clock round time.
	Duration time.Duration
}

// History is the full federated run record.
type History struct {
	Rounds []RoundRecord
	// BestRound holds the round index whose validation score was highest
	// (-1 when no validation was configured).
	BestRound int
	// BestScore is the corresponding score.
	BestScore float64
}

// Result is the controller's output: the final and selected models plus
// the run history.
type Result struct {
	// FinalWeights is the last round's aggregated model.
	FinalWeights map[string]*tensor.Matrix
	// BestWeights is the highest-validation-score model (== FinalWeights
	// when no validator is configured).
	BestWeights map[string]*tensor.Matrix
	History     History
}

// Controller drives the federated run over a set of executors in-process
// (NVFlare simulator mode: every client is a goroutine rather than a
// remote site; the networked deployment in server.go shares this logic).
type Controller struct {
	cfg       ControllerConfig
	executors []Executor
}

// NewController builds a controller over executors.
func NewController(cfg ControllerConfig, executors []Executor) (*Controller, error) {
	if len(executors) == 0 {
		return nil, errors.New("fl: controller needs at least one executor")
	}
	names := make(map[string]bool, len(executors))
	for _, e := range executors {
		if names[e.Name()] {
			return nil, fmt.Errorf("fl: duplicate executor name %q", e.Name())
		}
		names[e.Name()] = true
	}
	return &Controller{cfg: cfg.withDefaults(len(executors)), executors: executors}, nil
}

// Run executes the scatter-and-gather workflow for E rounds starting from
// initialWeights, honoring ctx cancellation between rounds.
func (c *Controller) Run(ctx context.Context, initialWeights map[string]*tensor.Matrix) (*Result, error) {
	global := cloneWeights(initialWeights)
	res := &Result{History: History{BestRound: -1}}
	sinceBest := 0

	for round := 0; round < c.cfg.Rounds; round++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("fl: cancelled before round %d: %w", round, ctx.Err())
		default:
		}
		start := time.Now()
		updates, err := c.scatterGather(ctx, round, global)
		if err != nil {
			return nil, err
		}
		if err := applyFilters(c.cfg.Filters, updates, global); err != nil {
			return nil, fmt.Errorf("fl: round %d: %w", round, err)
		}
		aggregated, err := c.cfg.Aggregator.Aggregate(updates)
		if err != nil {
			return nil, fmt.Errorf("fl: round %d: %w", round, err)
		}
		global = aggregated

		rec := RoundRecord{Round: round, Duration: time.Since(start)}
		var lossSum, weightSum float64
		for _, u := range updates {
			rec.Participants = append(rec.Participants, u.ClientName)
			lossSum += u.TrainLoss * float64(u.NumSamples)
			weightSum += float64(u.NumSamples)
		}
		if weightSum > 0 {
			rec.MeanTrainLoss = lossSum / weightSum
		}
		if c.cfg.Validate != nil {
			score, err := c.cfg.Validate(global)
			if err != nil {
				return nil, fmt.Errorf("fl: round %d validate: %w", round, err)
			}
			rec.ValScore = score
			if res.History.BestRound < 0 || score > res.History.BestScore {
				res.History.BestRound = round
				res.History.BestScore = score
				res.BestWeights = cloneWeights(global)
				sinceBest = 0
			} else {
				sinceBest++
			}
		}
		res.History.Rounds = append(res.History.Rounds, rec)
		if c.cfg.Patience > 0 && c.cfg.Validate != nil && sinceBest >= c.cfg.Patience {
			break // early stop: no validation improvement for Patience rounds
		}
	}
	res.FinalWeights = global
	if res.BestWeights == nil {
		res.BestWeights = cloneWeights(global)
	}
	return res, nil
}

// scatterGather runs one round: every executor trains concurrently on the
// current global model; updates are gathered with quorum/timeout handling.
func (c *Controller) scatterGather(ctx context.Context, round int, global map[string]*tensor.Matrix) ([]*ClientUpdate, error) {
	type outcome struct {
		update *ClientUpdate
		err    error
		name   string
	}
	results := make(chan outcome, len(c.executors))
	var wg sync.WaitGroup
	for _, ex := range c.executors {
		wg.Add(1)
		go func(ex Executor) {
			defer wg.Done()
			u, err := ex.ExecuteRound(round, global)
			results <- outcome{update: u, err: err, name: ex.Name()}
		}(ex)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	var timeout <-chan time.Time
	if c.cfg.RoundTimeout > 0 {
		timer := time.NewTimer(c.cfg.RoundTimeout)
		defer timer.Stop()
		timeout = timer.C
	}

	var updates []*ClientUpdate
	var failures []string
	remaining := len(c.executors)
gather:
	for remaining > 0 {
		select {
		case o := <-results:
			remaining--
			if o.err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", o.name, o.err))
				continue
			}
			updates = append(updates, o.update)
		case <-timeout:
			// Stragglers are dropped for this round (NVFlare's
			// wait_time_after_min_received semantics, simplified).
			break gather
		case <-ctx.Done():
			<-done
			return nil, fmt.Errorf("fl: round %d cancelled: %w", round, ctx.Err())
		}
	}
	if len(updates) < c.cfg.MinClients {
		<-done
		return nil, fmt.Errorf("fl: round %d quorum not met: %d/%d updates (failures: %v)",
			round, len(updates), c.cfg.MinClients, failures)
	}
	return updates, nil
}

// cloneWeights deep-copies a weight map.
func cloneWeights(w map[string]*tensor.Matrix) map[string]*tensor.Matrix {
	out := make(map[string]*tensor.Matrix, len(w))
	for name, m := range w {
		out[name] = m.Clone()
	}
	return out
}
