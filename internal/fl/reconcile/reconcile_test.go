package reconcile

import (
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestDemotionLadder(t *testing.T) {
	m := NewMonitor(Config{SuspectAfter: 1, UnreachableAfter: 2, QuarantineAfter: 4})
	want := []Health{Suspect, Unreachable, Unreachable, Quarantined}
	for i, w := range want {
		tr := m.Observe("c", false, t0)
		if tr.To != w {
			t.Fatalf("failure %d: health %v, want %v", i+1, tr.To, w)
		}
	}
	if m.Eligible("c") {
		t.Fatal("quarantined client still eligible")
	}
	if tr := m.Observe("c", true, t0); tr.To != Healthy || tr.From != Quarantined {
		t.Fatalf("success transition %+v, want Quarantined->Healthy", tr)
	}
	if !m.Eligible("c") {
		t.Fatal("recovered client not eligible")
	}
}

func TestSuccessResetsStreak(t *testing.T) {
	m := NewMonitor(Config{})
	m.Observe("c", false, t0)
	m.Observe("c", true, t0)
	// After a reset the next failure starts a fresh streak: Suspect, not
	// deeper.
	if tr := m.Observe("c", false, t0); tr.To != Suspect {
		t.Fatalf("post-reset failure: %v, want Suspect", tr.To)
	}
}

func TestProbeScheduling(t *testing.T) {
	delay := func(attempt int) time.Duration { return time.Duration(attempt+1) * time.Second }
	m := NewMonitor(Config{UnreachableAfter: 2, ProbeDelay: delay})
	m.Observe("c", false, t0)
	if got := m.DueProbes(t0.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("suspect client probed: %v", got)
	}
	m.Observe("c", false, t0) // -> Unreachable, probe due at t0+1s
	if got := m.DueProbes(t0); len(got) != 0 {
		t.Fatalf("probe fired before its delay: %v", got)
	}
	if at := m.NextProbeAt(); !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("NextProbeAt %v, want %v", at, t0.Add(time.Second))
	}
	got := m.DueProbes(t0.Add(time.Second))
	if !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("due probes %v, want [c]", got)
	}
	// In-flight probe never double-fires.
	if got := m.DueProbes(t0.Add(time.Minute)); len(got) != 0 {
		t.Fatalf("probing client re-fired: %v", got)
	}
	// Failed probe backs off: attempt 1 -> next due 2s later.
	at := t0.Add(2 * time.Second)
	m.ProbeResult("c", false, at)
	if next := m.NextProbeAt(); !next.Equal(at.Add(2 * time.Second)) {
		t.Fatalf("after failed probe NextProbeAt %v, want %v", next, at.Add(2*time.Second))
	}
	// Successful probe rejoins.
	m.DueProbes(at.Add(2 * time.Second))
	if tr := m.ProbeResult("c", true, at.Add(2*time.Second)); tr.To != Healthy {
		t.Fatalf("probe success -> %v, want Healthy", tr.To)
	}
	if m.Demoted() || m.Probing() {
		t.Fatal("monitor still demoted/probing after rejoin")
	}
}

func TestObservationOrderIndependence(t *testing.T) {
	// The same multiset of per-client observations yields the same final
	// states regardless of interleaving across clients.
	run := func(order []string) map[string]string {
		m := NewMonitor(Config{})
		for _, name := range order {
			m.Observe(name, false, t0)
		}
		return m.Snapshot()
	}
	a := run([]string{"x", "x", "y", "x", "y", "x"})
	b := run([]string{"y", "x", "y", "x", "x", "x"})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ: %v vs %v", a, b)
	}
}

func TestSetQuarantinedSeedsDurableState(t *testing.T) {
	m := NewMonitor(Config{})
	m.SetQuarantined("c")
	if m.Eligible("c") {
		t.Fatal("seeded quarantined client eligible")
	}
	if got := m.DueProbes(t0); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("seeded quarantine not immediately probeable: %v", got)
	}
	if got := m.Counts()[Quarantined]; got != 1 {
		t.Fatalf("Counts()[Quarantined] = %d, want 1", got)
	}
}

func TestParseHealthRoundTrip(t *testing.T) {
	for _, h := range States() {
		if got := ParseHealth(h.String()); got != h {
			t.Fatalf("ParseHealth(%q) = %v, want %v", h.String(), got, h)
		}
	}
	if got := ParseHealth("garbage"); got != Unknown {
		t.Fatalf("ParseHealth(garbage) = %v, want Unknown", got)
	}
}

func TestQueueOrderAndDrain(t *testing.T) {
	q := NewQueue()
	q.Add(Task{Client: "late", Round: 1}, t0.Add(3*time.Second))
	q.Add(Task{Client: "b", Round: 1}, t0.Add(time.Second))
	q.Add(Task{Client: "a", Round: 1}, t0.Add(time.Second))
	if got := q.Due(t0); len(got) != 0 {
		t.Fatalf("nothing should be due at t0: %v", got)
	}
	if at := q.NextAt(); !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("NextAt %v, want %v", at, t0.Add(time.Second))
	}
	due := q.Due(t0.Add(time.Second))
	if len(due) != 2 || due[0].Client != "b" || due[1].Client != "a" {
		t.Fatalf("due order %v, want [b a] (insertion order at equal readyAt)", due)
	}
	if q.Len() != 1 {
		t.Fatalf("Len %d, want 1", q.Len())
	}
	rest := q.Drain()
	if len(rest) != 1 || rest[0].Client != "late" {
		t.Fatalf("Drain %v, want [late]", rest)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after Drain: %d", q.Len())
	}
	if !q.NextAt().IsZero() {
		t.Fatal("NextAt nonzero on empty queue")
	}
}

func TestQueueMixedReadyTimesPopEarliestFirst(t *testing.T) {
	q := NewQueue()
	q.Add(Task{Client: "second"}, t0.Add(2*time.Second))
	q.Add(Task{Client: "first"}, t0.Add(time.Second))
	due := q.Due(t0.Add(5 * time.Second))
	if len(due) != 2 || due[0].Client != "first" || due[1].Client != "second" {
		t.Fatalf("due order %v, want [first second]", due)
	}
}
