package reconcile

import "time"

// Task is one unit of requeued round work: re-assign the round's task to
// Client. Attempt counts prior assignments of this work item (the first
// retry carries Attempt 1); Origin names the client originally sampled
// for the slot, so a substitute dispatch can be recorded as
// "origin>substitute" in the round history.
type Task struct {
	Client  string
	Round   int
	Attempt int
	Origin  string
}

// item pairs a task with its ready time and an insertion sequence that
// breaks ties, making pop order a pure function of Add order.
type item struct {
	task    Task
	readyAt time.Time
	seq     int
}

// Queue is a deterministic delayed work queue: tasks added with a ready
// time are released by Due in (readyAt, insertion) order. Like Monitor
// it never reads a clock — the round loop passes its own now — and it is
// not goroutine-safe by design (the loop owns it).
type Queue struct {
	items []item
	seq   int
}

// NewQueue builds an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Add enqueues t to become ready at readyAt.
func (q *Queue) Add(t Task, readyAt time.Time) {
	q.items = append(q.items, item{task: t, readyAt: readyAt, seq: q.seq})
	q.seq++
}

// Due pops every task ready at now, ordered by (readyAt, insertion).
func (q *Queue) Due(now time.Time) []Task {
	var ready, rest []item
	for _, it := range q.items {
		if it.readyAt.After(now) {
			rest = append(rest, it)
		} else {
			ready = append(ready, it)
		}
	}
	q.items = rest
	// Insertion scan preserves relative order for equal readyAt; sort by
	// readyAt first so an earlier-ready task added later still pops first.
	for i := 1; i < len(ready); i++ {
		for j := i; j > 0; j-- {
			a, b := ready[j-1], ready[j]
			if a.readyAt.Before(b.readyAt) || (a.readyAt.Equal(b.readyAt) && a.seq < b.seq) {
				break
			}
			ready[j-1], ready[j] = ready[j], ready[j-1]
		}
	}
	out := make([]Task, len(ready))
	for i, it := range ready {
		out[i] = it.task
	}
	return out
}

// NextAt returns the earliest ready time of a queued task (zero when the
// queue is empty).
func (q *Queue) NextAt() time.Time {
	var at time.Time
	for _, it := range q.items {
		if at.IsZero() || it.readyAt.Before(at) {
			at = it.readyAt
		}
	}
	return at
}

// Drain empties the queue, returning the abandoned tasks in (readyAt,
// insertion) order — the round deadline fired with retries still
// waiting, and each must be recorded as a failure, never silently
// dropped.
func (q *Queue) Drain() []Task {
	if len(q.items) == 0 {
		return nil
	}
	latest := q.items[0].readyAt
	for _, it := range q.items[1:] {
		if it.readyAt.After(latest) {
			latest = it.readyAt
		}
	}
	return q.Due(latest)
}

// Len reports the queued task count.
func (q *Queue) Len() int { return len(q.items) }
