// Package reconcile implements the control-plane primitives behind the
// federation's peer-failure tolerance: a per-client health state machine
// and a deterministic delayed work queue, in the style of a Kubernetes
// controller's node monitor + rate-limited workqueue.
//
// The package is deliberately passive and dependency-free: it never reads
// a clock, starts a goroutine, or sleeps. Callers (fl.Controller,
// fl.Server) feed it observations stamped with their own injected clock's
// now and ask "who is due". That keeps every transition a pure function
// of the observation sequence, so a simulated federation replays its
// health history bit-identically at any GOMAXPROCS.
package reconcile

import (
	"sort"
	"time"
)

// Health is a client's position in the reconciliation state machine:
//
//	Unknown → Healthy → Suspect → Unreachable → Quarantined
//	              ↑________↑___________|________________|
//	                (rejoin: successful update or probe)
//
// Demotions are driven by consecutive failures (task execution, send, or
// probe); any success resets the client to Healthy. Suspect clients are
// still sampled (one failure is routine); Unreachable and Quarantined
// clients are excluded from sampling until a probe succeeds. Quarantine
// is the durable tier: the fl layer WAL-records entry and exit so a
// crash-restart does not resurrect a quarantined client into the pool.
type Health int

const (
	Unknown Health = iota
	Healthy
	Suspect
	Unreachable
	Quarantined
)

// String names the state for metrics labels and history snapshots.
func (h Health) String() string {
	switch h {
	case Unknown:
		return "unknown"
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Unreachable:
		return "unreachable"
	case Quarantined:
		return "quarantined"
	}
	return "invalid"
}

// States lists every health state in demotion order, for iterating gauge
// families deterministically.
func States() []Health {
	return []Health{Unknown, Healthy, Suspect, Unreachable, Quarantined}
}

// ParseHealth inverts String; unrecognized names map to Unknown (the
// safe default when replaying a WAL written by a newer build).
func ParseHealth(s string) Health {
	for _, h := range States() {
		if h.String() == s {
			return h
		}
	}
	return Unknown
}

// DelayFunc computes the delay before retry attempt (0-based) — the
// shape of fl.Backoff.Delay, accepted as a plain func so this package
// does not import the fl layer it serves.
type DelayFunc func(attempt int) time.Duration

// Config sets the demotion thresholds: a client reaches each tier after
// that many consecutive failures.
type Config struct {
	// SuspectAfter demotes Healthy → Suspect (default 1).
	SuspectAfter int
	// UnreachableAfter demotes → Unreachable, leaving the sample pool
	// (default 2).
	UnreachableAfter int
	// QuarantineAfter demotes → Quarantined, the durable tier
	// (default 4).
	QuarantineAfter int
	// ProbeDelay paces recovery probes of demoted clients: the n-th
	// consecutive failed probe schedules the next one ProbeDelay(n)
	// later. Nil means probes are due immediately.
	ProbeDelay DelayFunc
}

func (c Config) withDefaults() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.UnreachableAfter <= c.SuspectAfter {
		c.UnreachableAfter = c.SuspectAfter + 1
	}
	if c.QuarantineAfter <= c.UnreachableAfter {
		c.QuarantineAfter = c.UnreachableAfter + 2
	}
	return c
}

// Transition reports one state-machine edge. The zero value (From == To
// == Unknown with an empty Client) means "no change".
type Transition struct {
	Client   string
	From, To Health
}

// Changed reports whether the transition is a real edge.
func (t Transition) Changed() bool { return t.From != t.To }

// entry is one client's mutable reconciliation state.
type entry struct {
	health Health
	// streak counts consecutive failures since the last success.
	streak int
	// probeAttempt counts consecutive failed probes since demotion.
	probeAttempt int
	// nextProbe is when the next recovery probe is due (zero = never:
	// the client is eligible and needs no probe).
	nextProbe time.Time
	// probing marks an in-flight probe so DueProbes never double-fires.
	probing bool
}

// Monitor tracks per-client health. It is not goroutine-safe: the round
// loop owns it and feeds it observations single-threaded, exactly like
// the rest of the gather state.
type Monitor struct {
	cfg     Config
	clients map[string]*entry
}

// NewMonitor builds an empty monitor.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), clients: make(map[string]*entry)}
}

func (m *Monitor) entryFor(name string) *entry {
	e, ok := m.clients[name]
	if !ok {
		e = &entry{}
		m.clients[name] = e
	}
	return e
}

// healthFor maps a failure streak to its tier.
func (m *Monitor) healthFor(streak int) Health {
	switch {
	case streak >= m.cfg.QuarantineAfter:
		return Quarantined
	case streak >= m.cfg.UnreachableAfter:
		return Unreachable
	case streak >= m.cfg.SuspectAfter:
		return Suspect
	}
	return Healthy
}

// Observe records the outcome of a task assignment (execution result,
// send failure, or timed-out reassignment) at time now. Success resets
// the client to Healthy; failure extends the streak and may demote. A
// demotion out of the sample pool schedules the first recovery probe.
func (m *Monitor) Observe(name string, ok bool, now time.Time) Transition {
	e := m.entryFor(name)
	from := e.health
	if ok {
		e.streak = 0
		e.probeAttempt = 0
		e.nextProbe = time.Time{}
		e.probing = false
		e.health = Healthy
		return Transition{Client: name, From: from, To: e.health}
	}
	e.streak++
	next := m.healthFor(e.streak)
	if next > e.health {
		e.health = next
	}
	if !Eligible(e.health) && e.nextProbe.IsZero() && !e.probing {
		// First probe after leaving the pool: due after one probe delay,
		// not immediately — the failure that demoted the client just
		// happened, so an instant probe would only re-observe it.
		e.probeAttempt = 0
		e.nextProbe = now.Add(m.delay(0))
	}
	return Transition{Client: name, From: from, To: e.health}
}

// ProbeResult records the outcome of a recovery probe fired by
// DueProbes. Success rejoins the client (Healthy, back in the pool);
// failure backs off the next probe by ProbeDelay(attempt).
func (m *Monitor) ProbeResult(name string, ok bool, now time.Time) Transition {
	e := m.entryFor(name)
	from := e.health
	e.probing = false
	if ok {
		e.streak = 0
		e.probeAttempt = 0
		e.nextProbe = time.Time{}
		e.health = Healthy
		return Transition{Client: name, From: from, To: e.health}
	}
	e.probeAttempt++
	e.nextProbe = now.Add(m.delay(e.probeAttempt))
	return Transition{Client: name, From: from, To: e.health}
}

func (m *Monitor) delay(attempt int) time.Duration {
	if m.cfg.ProbeDelay == nil {
		return 0
	}
	d := m.cfg.ProbeDelay(attempt)
	if d < 0 {
		d = 0
	}
	return d
}

// Eligible reports whether a state keeps the client in the sample pool.
func Eligible(h Health) bool { return h <= Suspect }

// Eligible reports whether the named client may be sampled. Never-seen
// clients are eligible (Unknown).
func (m *Monitor) Eligible(name string) bool {
	e, ok := m.clients[name]
	if !ok {
		return true
	}
	return Eligible(e.health)
}

// Health returns the client's current state (Unknown when never seen).
func (m *Monitor) Health(name string) Health {
	e, ok := m.clients[name]
	if !ok {
		return Unknown
	}
	return e.health
}

// SetQuarantined seeds a client straight into Quarantined — WAL replay
// on restart, so a recorded quarantine survives the crash. The first
// recovery probe is due immediately.
func (m *Monitor) SetQuarantined(name string) {
	e := m.entryFor(name)
	e.health = Quarantined
	e.streak = m.cfg.QuarantineAfter
	e.probeAttempt = 0
	e.probing = false
	// Zero nextProbe means "no probe scheduled"; a quarantined client
	// must be probed, so mark it due at the epoch (always ripe).
	e.nextProbe = time.Unix(0, 0)
}

// DueProbes returns, in sorted name order, the demoted clients whose
// recovery probe is due at now, marking each as probing so it is not
// returned again until ProbeResult lands.
func (m *Monitor) DueProbes(now time.Time) []string {
	var due []string
	for name, e := range m.clients {
		if Eligible(e.health) || e.probing || e.nextProbe.IsZero() {
			continue
		}
		if e.nextProbe.After(now) {
			continue
		}
		due = append(due, name)
	}
	sort.Strings(due)
	for _, name := range due {
		m.clients[name].probing = true
	}
	return due
}

// NextProbeAt returns the earliest scheduled probe among demoted,
// not-currently-probing clients (zero time when none is scheduled).
func (m *Monitor) NextProbeAt() time.Time {
	var at time.Time
	for _, e := range m.clients {
		if Eligible(e.health) || e.probing || e.nextProbe.IsZero() {
			continue
		}
		if at.IsZero() || e.nextProbe.Before(at) {
			at = e.nextProbe
		}
	}
	return at
}

// IsProbing reports whether the named client has a recovery probe in
// flight (fired by DueProbes, not yet resolved by ProbeResult).
func (m *Monitor) IsProbing(name string) bool {
	e, ok := m.clients[name]
	return ok && e.probing
}

// Probing reports whether any recovery probe is currently in flight.
func (m *Monitor) Probing() bool {
	for _, e := range m.clients {
		if e.probing {
			return true
		}
	}
	return false
}

// Demoted reports whether any tracked client is out of the sample pool.
func (m *Monitor) Demoted() bool {
	for _, e := range m.clients {
		if !Eligible(e.health) {
			return true
		}
	}
	return false
}

// Counts tallies clients per state (Unknown counts only clients that
// have been observed and reset — never-seen clients aren't tracked).
func (m *Monitor) Counts() map[Health]int {
	out := make(map[Health]int, len(States()))
	for _, e := range m.clients {
		out[e.health]++
	}
	return out
}

// Snapshot returns every tracked client's state name, sorted-key-stable
// for history records (callers marshal it as a map; iteration order is
// irrelevant there).
func (m *Monitor) Snapshot() map[string]string {
	out := make(map[string]string, len(m.clients))
	for name, e := range m.clients {
		out[name] = e.health.String()
	}
	return out
}
