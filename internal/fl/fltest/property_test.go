package fltest

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"clinfl/internal/fl"
	"clinfl/internal/tensor"
)

// Property: for sync FedAvg, any permutation of client arrival order
// yields the bit-identical aggregated model. Random rosters (sizes,
// values, sample counts) run under the virtual-clock harness with random
// delays — only the *set* of participants may matter, never the order.
func TestPropertyPermutedArrivalOrderSameModel(t *testing.T) {
	h := ControllerHarness{Virtual: true}
	f := func(seed int64, nRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		n := int(nRaw%5) + 2
		clients := make([]ClientSpec, n)
		for i := range clients {
			clients[i] = ClientSpec{
				Name:    fmt.Sprintf("c%d", i),
				Samples: 1 + rng.Intn(50),
				Value:   rng.Float64()*10 - 5,
				Delay:   time.Duration(rng.Intn(400)) * time.Millisecond,
			}
		}
		run := func(cs []ClientSpec) map[string]*tensor.Matrix {
			res, err := h.Run(RunSpec{Rounds: 1, MinClients: 1, Clients: cs})
			if err != nil {
				t.Fatal(err)
			}
			return res.FinalWeights
		}
		base := run(clients)
		permuted := make([]ClientSpec, n)
		copy(permuted, clients)
		rng.Shuffle(n, func(i, j int) { permuted[i], permuted[j] = permuted[j], permuted[i] })
		// Re-randomize delays too: arrival order changes, membership not.
		for i := range permuted {
			permuted[i].Delay = time.Duration(rng.Intn(400)) * time.Millisecond
		}
		perm := run(permuted)
		for name, m := range base {
			pm := perm[name]
			for i, v := range m.Data() {
				if pm.Data()[i] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: whenever stragglers push the on-time update count below the
// configured quorum, the run errors — it never silently publishes a
// sub-quorum model.
func TestPropertyBelowQuorumAlwaysErrors(t *testing.T) {
	h := ControllerHarness{Virtual: true}
	f := func(seed int64, nRaw, qRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		n := int(nRaw%5) + 2 // 2..6 clients
		q := int(qRaw)%n + 1 // quorum 1..n
		late := n - q + 1    // enough stragglers to leave q-1 on time
		clients := make([]ClientSpec, n)
		for i := range clients {
			clients[i] = ClientSpec{Name: fmt.Sprintf("c%d", i), Samples: 1 + rng.Intn(9), Value: 1}
			if i < late {
				clients[i].Delay = time.Second
			}
		}
		_, err := h.Run(RunSpec{
			Rounds: 1, MinClients: q,
			RoundDeadline: 100 * time.Millisecond,
			Clients:       clients,
		})
		return err != nil && strings.Contains(err.Error(), "quorum")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the raw codec is bit-lossless and the f32 codec is lossless
// within float32 rounding, for arbitrary weight maps.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		rows, cols := int(rRaw%7)+1, int(cRaw%7)+1
		weights := map[string]*tensor.Matrix{
			"w": rng.Normal(rows, cols, 0, 3),
			"b": rng.Uniform(1, cols, -100, 100),
		}
		rawBlob, err := (fl.RawCodec{}).Encode(weights)
		if err != nil {
			return false
		}
		rawBack, err := fl.DecodeWeights(rawBlob)
		if err != nil {
			return false
		}
		f32Blob, err := (fl.Float32Codec{}).Encode(weights)
		if err != nil {
			return false
		}
		f32Back, err := fl.DecodeWeights(f32Blob)
		if err != nil {
			return false
		}
		for name, m := range weights {
			for i, v := range m.Data() {
				if rawBack[name].Data()[i] != v {
					return false // raw must be exact
				}
				if f32Back[name].Data()[i] != float64(float32(v)) {
					return false // f32 must be exactly float32 rounding
				}
				if math.Abs(f32Back[name].Data()[i]-v) > 1e-5*math.Max(1, math.Abs(v)) {
					return false // and within tolerance of the original
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
