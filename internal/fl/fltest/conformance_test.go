package fltest

import "testing"

// TestConformance runs the shared invariant suite against every harness:
// the in-process Controller under the deterministic virtual clock, the
// same Controller under the real clock, and the networked Server speaking
// the full wire protocol over in-memory transport. One suite, three
// deployment shapes — the acceptance gate for every federation change.
func TestConformance(t *testing.T) {
	for _, h := range Harnesses() {
		h := h
		t.Run(h.Name(), func(t *testing.T) {
			t.Parallel()
			RunConformance(t, h)
		})
	}
}
