package fltest

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"clinfl/internal/fl"
	"clinfl/internal/sim"
)

// RunConformance asserts the shared federation invariants against one
// harness. Every invariant holds on every deployment shape; assertions
// that depend on exact timing run only when the harness is deterministic.
func RunConformance(t *testing.T, h Harness) {
	t.Run("FedAvgExact", func(t *testing.T) { conformFedAvgExact(t, h) })
	t.Run("ArrivalOrderIrrelevant", func(t *testing.T) { conformArrivalOrder(t, h) })
	t.Run("StragglerNeverAggregatedInRound", func(t *testing.T) { conformStraggler(t, h) })
	t.Run("QuorumBelowErrors", func(t *testing.T) { conformQuorum(t, h) })
	t.Run("FailedClientRecorded", func(t *testing.T) { conformFailureRecorded(t, h) })
	t.Run("ReassignedTaskSingleUpdate", func(t *testing.T) { conformReassignedSingleUpdate(t, h) })
	t.Run("FlapNeverBlocksFinalize", func(t *testing.T) { conformFlapNeverBlocks(t, h) })
	t.Run("HealthDemotionOrderIndependent", func(t *testing.T) { conformHealthOrderIndependent(t, h) })
	t.Run("CodecBytesAccounted", func(t *testing.T) { conformCodecBytes(t, h) })
	t.Run("TierMatchesFlatFedAvg", func(t *testing.T) { conformTierMatchesFlat(t, h) })
	t.Run("LinearConvergence", func(t *testing.T) { conformConvergence(t, h) })
	if h.Deterministic() {
		t.Run("BitIdenticalReplay", func(t *testing.T) { conformBitIdentical(t, h) })
	}
}

// checkRecords asserts structural History invariants every run must keep:
// participants are a sorted subset of the sampled set, never duplicated,
// and never double-counted as late; failures carry the client name.
func checkRecords(t *testing.T, res *fl.Result) {
	t.Helper()
	for _, rec := range res.History.Rounds {
		sampled := map[string]bool{}
		for _, s := range rec.Sampled {
			sampled[s] = true
		}
		seen := map[string]bool{}
		for _, p := range rec.Participants {
			if seen[p] {
				t.Fatalf("round %d: participant %s duplicated", rec.Round, p)
			}
			seen[p] = true
			if !sampled[p] {
				t.Fatalf("round %d: participant %s was never sampled", rec.Round, p)
			}
		}
		if !sort.StringsAreSorted(rec.Participants) {
			t.Fatalf("round %d: participants %v not in canonical order", rec.Round, rec.Participants)
		}
		for _, l := range append(append([]string{}, rec.LateApplied...), rec.LateDropped...) {
			if seen[l] {
				t.Fatalf("round %d: client %s is both participant and late", rec.Round, l)
			}
		}
		for _, f := range rec.Failures {
			if !strings.Contains(f, ":") {
				t.Fatalf("round %d: failure %q carries no client name", rec.Round, f)
			}
		}
		if rec.BytesUp < 0 || rec.BytesDown < 0 {
			t.Fatalf("round %d: negative byte counters: up=%d down=%d", rec.Round, rec.BytesUp, rec.BytesDown)
		}
	}
}

// conformFedAvgExact: full participation, canned values — the final model
// is the exact sample-weighted average, every round.
func conformFedAvgExact(t *testing.T, h Harness) {
	spec := RunSpec{
		Rounds: 2, MinClients: 1,
		Clients: []ClientSpec{
			{Name: "a", Samples: 10, Value: 1},
			{Name: "b", Samples: 30, Value: 2},
			{Name: "c", Samples: 20, Value: 7},
		},
	}
	res, err := h.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, res)
	want := ExpectedFedAvg(spec.Clients) // (10 + 60 + 140) / 60 = 3.5
	for name, m := range res.FinalWeights {
		for _, v := range m.Data() {
			if v != want {
				t.Fatalf("final %s = %v, want exact %v", name, v, want)
			}
		}
	}
	for _, rec := range res.History.Rounds {
		if len(rec.Participants) != 3 {
			t.Fatalf("round %d participants %v, want all 3", rec.Round, rec.Participants)
		}
	}
}

// conformArrivalOrder: permuting the client roster (and with it arrival
// order) never changes the aggregated model — aggregation is canonically
// ordered before any floating-point accumulation.
func conformArrivalOrder(t *testing.T, h Harness) {
	clients := []ClientSpec{
		{Name: "a", Samples: 7, Value: 0.3, Delay: 30 * time.Millisecond},
		{Name: "b", Samples: 13, Value: -1.7},
		{Name: "c", Samples: 29, Value: 2.9, Delay: 10 * time.Millisecond},
		{Name: "d", Samples: 5, Value: 0.01, Delay: 20 * time.Millisecond},
	}
	permuted := []ClientSpec{clients[2], clients[0], clients[3], clients[1]}
	permuted[0].Delay, permuted[1].Delay, permuted[2].Delay, permuted[3].Delay =
		40*time.Millisecond, 0, 5*time.Millisecond, 25*time.Millisecond

	run := func(cs []ClientSpec) map[string]float64 {
		res, err := h.Run(RunSpec{Rounds: 2, MinClients: 1, Clients: cs})
		if err != nil {
			t.Fatal(err)
		}
		checkRecords(t, res)
		out := map[string]float64{}
		for name, m := range res.FinalWeights {
			out[name] = m.Data()[0]
		}
		return out
	}
	base, perm := run(clients), run(permuted)
	for name, v := range base {
		if perm[name] != v {
			t.Fatalf("param %s: %v (roster order) != %v (permuted order)", name, v, perm[name])
		}
	}
}

// conformStraggler: one client delayed past the round deadline never
// aggregates in-round, and the federation never blocks on it.
func conformStraggler(t *testing.T, h Harness) {
	spec := RunSpec{
		Rounds: 4, MinClients: 1, MinUpdates: 3,
		RoundDeadline: 250 * time.Millisecond,
		Clients: []ClientSpec{
			{Name: "a", Samples: 10, Value: 1, Delay: 150 * time.Millisecond},
			{Name: "b", Samples: 10, Value: 1, Delay: 150 * time.Millisecond},
			{Name: "c", Samples: 10, Value: 1, Delay: 150 * time.Millisecond},
			{Name: "slow", Samples: 10, Value: 9, Delay: 500 * time.Millisecond},
		},
	}
	start := time.Now()
	res, err := h.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if real := time.Since(start); real > 10*time.Second {
		t.Fatalf("federation blocked on straggler: %v", real)
	}
	checkRecords(t, res)
	if len(res.History.Rounds) != 4 {
		t.Fatalf("completed %d rounds, want 4", len(res.History.Rounds))
	}
	for _, rec := range res.History.Rounds {
		for _, p := range rec.Participants {
			if p == "slow" {
				t.Fatalf("round %d aggregated the straggler in-round", rec.Round)
			}
		}
	}
	if got := res.FinalWeights["layer.w"].Data()[0]; got != 1 {
		t.Fatalf("straggler's value leaked into the model: %v", got)
	}
	if h.Deterministic() {
		// Exact timing: the straggler finishes its round-0 task at 500ms,
		// inside round 3's gather window, and with no async aggregator its
		// late update must be recorded as dropped there.
		var dropped []string
		for _, rec := range res.History.Rounds {
			dropped = append(dropped, rec.LateDropped...)
		}
		if len(dropped) != 1 || dropped[0] != "slow" {
			t.Fatalf("late drops %v, want exactly [slow]", dropped)
		}
	}
}

// conformQuorum: losing stragglers below the configured quorum always
// fails the run — a deadline round must never publish a sub-quorum model.
func conformQuorum(t *testing.T, h Harness) {
	_, err := h.Run(RunSpec{
		Rounds: 1, MinClients: 2,
		RoundDeadline: 200 * time.Millisecond,
		Clients: []ClientSpec{
			{Name: "a", Samples: 10, Value: 1},
			{Name: "slow1", Samples: 10, Value: 2, Delay: 700 * time.Millisecond},
			{Name: "slow2", Samples: 10, Value: 3, Delay: 700 * time.Millisecond},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("want quorum error with 1/2 updates, got %v", err)
	}
}

// conformFailureRecorded: a failing client is a named failure in the round
// record, never a silent absence, and never a participant.
func conformFailureRecorded(t *testing.T, h Harness) {
	res, err := h.Run(RunSpec{
		Rounds: 1, MinClients: 1,
		Clients: []ClientSpec{
			{Name: "ok", Samples: 10, Value: 2},
			{Name: "broken", Samples: 10, Value: 5, FailRounds: []int{0}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, res)
	rec := res.History.Rounds[0]
	if len(rec.Participants) != 1 || rec.Participants[0] != "ok" {
		t.Fatalf("participants %v, want [ok]", rec.Participants)
	}
	found := false
	for _, f := range rec.Failures {
		if strings.HasPrefix(f, "broken:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("broken client missing from failures: %v", rec.Failures)
	}
	if got := res.FinalWeights["layer.w"].Data()[0]; got != 2 {
		t.Fatalf("failed client leaked into the model: %v", got)
	}
}

// conformReassignedSingleUpdate: under a ReconcilePolicy, a client whose
// first execution attempt fails is re-tasked and contributes exactly one
// applied update — the round's aggregate is the same exact FedAvg a clean
// run produces, with the flake recorded as a failure and a reassignment.
func conformReassignedSingleUpdate(t *testing.T, h Harness) {
	spec := RunSpec{
		Rounds: 1, MinClients: 1,
		RoundDeadline: 2 * time.Second,
		Reconcile: &fl.ReconcilePolicy{
			RequeueBackoff: fl.Backoff{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond},
			ProbeBackoff:   fl.Backoff{Base: time.Hour, Max: time.Hour},
		},
		Clients: []ClientSpec{
			{Name: "a", Samples: 10, Value: 1, FlakyRounds: []int{0}},
			{Name: "b", Samples: 30, Value: 2},
			{Name: "c", Samples: 20, Value: 7},
		},
	}
	res, err := h.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, res)
	rec := res.History.Rounds[0]
	if got := strings.Join(rec.Participants, ","); got != "a,b,c" {
		t.Fatalf("participants %v, want exactly [a b c]", rec.Participants)
	}
	var aFailures int
	for _, f := range rec.Failures {
		if strings.HasPrefix(f, "a:") {
			aFailures++
		}
	}
	if aFailures != 1 {
		t.Fatalf("failures %v, want exactly one for the flaky first attempt", rec.Failures)
	}
	if len(rec.Reassigned) != 1 || rec.Reassigned[0] != "a>a" {
		t.Fatalf("reassignments %v, want exactly [a>a]", rec.Reassigned)
	}
	want := ExpectedFedAvg(spec.Clients)
	for name, m := range res.FinalWeights {
		for _, v := range m.Data() {
			if v != want {
				t.Fatalf("final %s = %v, want exact %v (retry double-counted?)", name, v, want)
			}
		}
	}
}

// conformFlapNeverBlocks: a client that flaps (fails every attempt for
// two rounds, then recovers) is demoted out of the pool and probed back
// in — every round finalizes, nothing deadlocks, and the flapping client
// participates again after its probes succeed.
func conformFlapNeverBlocks(t *testing.T, h Harness) {
	spec := RunSpec{
		Rounds: 6, MinClients: 1,
		RoundDeadline: 400 * time.Millisecond,
		Reconcile: &fl.ReconcilePolicy{
			RequeueBackoff: fl.Backoff{Base: 25 * time.Millisecond, Max: 100 * time.Millisecond},
			ProbeBackoff:   fl.Backoff{Base: 20 * time.Millisecond, Max: 50 * time.Millisecond},
			Substitute:     true,
			MaxPark:        2 * time.Second,
		},
		Clients: []ClientSpec{
			{Name: "a", Samples: 10, Value: 1, Delay: 10 * time.Millisecond},
			{Name: "b", Samples: 10, Value: 1, Delay: 15 * time.Millisecond},
			{Name: "c", Samples: 10, Value: 1, Delay: 20 * time.Millisecond},
			{Name: "flappy", Samples: 10, Value: 1, Delay: 10 * time.Millisecond, FailRounds: []int{1, 2}},
		},
	}
	start := time.Now()
	res, err := h.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if real := time.Since(start); real > 20*time.Second {
		t.Fatalf("federation blocked on the flapping client: %v", real)
	}
	checkRecords(t, res)
	if len(res.History.Rounds) != 6 {
		t.Fatalf("completed %d rounds, want 6", len(res.History.Rounds))
	}
	rejoined := false
	for _, rec := range res.History.Rounds[3:] {
		for _, p := range rec.Participants {
			if p == "flappy" {
				rejoined = true
			}
		}
	}
	if !rejoined {
		t.Fatalf("flappy never rejoined after recovery (health %v, rounds %+v)", res.Health, res.History.Rounds)
	}
}

// conformHealthOrderIndependent: final health states are a function of
// each client's observation sequence, not of roster order or arrival
// timing — permuting both leaves Result.Health unchanged.
func conformHealthOrderIndependent(t *testing.T, h Harness) {
	policy := func() *fl.ReconcilePolicy {
		return &fl.ReconcilePolicy{
			RequeueBackoff: fl.Backoff{Base: 20 * time.Millisecond, Max: 50 * time.Millisecond},
			// Probes far beyond the run: demotions must stick so the final
			// states are timing-free.
			ProbeBackoff: fl.Backoff{Base: time.Hour, Max: time.Hour},
			MaxPark:      300 * time.Millisecond,
		}
	}
	clients := []ClientSpec{
		{Name: "dead", Samples: 10, Value: 1, FailRounds: []int{0, 1}},
		{Name: "ok", Samples: 20, Value: 2},
		{Name: "flaky", Samples: 30, Value: 3, FlakyRounds: []int{0}, Delay: 10 * time.Millisecond},
	}
	permuted := []ClientSpec{clients[2], clients[0], clients[1]}
	permuted[0].Delay, permuted[1].Delay, permuted[2].Delay =
		0, 25*time.Millisecond, 15*time.Millisecond

	want := map[string]string{"dead": "unreachable", "ok": "healthy", "flaky": "healthy"}
	for i, cs := range [][]ClientSpec{clients, permuted} {
		res, err := h.Run(RunSpec{
			Rounds: 2, MinClients: 1,
			RoundDeadline: 2 * time.Second,
			Reconcile:     policy(),
			Clients:       cs,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkRecords(t, res)
		if len(res.Health) != len(want) {
			t.Fatalf("roster %d: health %v, want %v", i, res.Health, want)
		}
		for name, state := range want {
			if res.Health[name] != state {
				t.Fatalf("roster %d: health[%s] = %q, want %q (full: %v)", i, name, res.Health[name], state, res.Health)
			}
		}
	}
}

// conformCodecBytes: with a lossy-free compressed uplink codec, every
// round's record carries byte counters and f32 cuts payloads well below
// raw.
func conformCodecBytes(t *testing.T, h Harness) {
	run := func(codec string) int64 {
		clients := []ClientSpec{
			{Name: "a", Samples: 10, Value: 1, Codec: codec},
			{Name: "b", Samples: 10, Value: 2, Codec: codec},
		}
		res, err := h.Run(RunSpec{Rounds: 2, MinClients: 1, Clients: clients})
		if err != nil {
			t.Fatal(err)
		}
		checkRecords(t, res)
		var total int64
		for _, rec := range res.History.Rounds {
			if rec.BytesUp <= 0 {
				t.Fatalf("[%s] round %d BytesUp unrecorded", codec, rec.Round)
			}
			total += rec.BytesUp
		}
		return total
	}
	raw, f32 := run("raw"), run("f32")
	if float64(f32) > 0.7*float64(raw) {
		t.Fatalf("f32 uplink %d bytes, want well below raw %d", f32, raw)
	}
}

// conformTierMatchesFlat: hierarchical streaming aggregation produces the
// same global model as the flat deployment, bit for bit, for any tier
// shape. The spec is dyadic (sample counts summing to a power of two,
// small-significand values) so the flat float path is itself exact and
// the comparison is against a well-defined value; the hier package pins
// the stronger arbitrary-input tree-shape identity separately.
func conformTierMatchesFlat(t *testing.T, h Harness) {
	clients := []ClientSpec{
		{Name: "a", Samples: 8, Value: 1.5},
		{Name: "b", Samples: 16, Value: -2.25},
		{Name: "c", Samples: 24, Value: 0.125},
		{Name: "d", Samples: 16, Value: 3},
	}
	base := RunSpec{Rounds: 2, MinClients: 1, Clients: clients}
	flat, err := h.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, flat)
	for _, tier := range [][]int{{2}, {3, 2}} {
		spec := base
		spec.Tier = tier
		res, err := h.Run(spec)
		if err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		checkRecords(t, res)
		for name, fm := range flat.FinalWeights {
			tm := res.FinalWeights[name]
			if tm == nil {
				t.Fatalf("tier %v: param %q missing", tier, name)
			}
			for i, fv := range fm.Data() {
				if math.Float64bits(fv) != math.Float64bits(tm.Data()[i]) {
					t.Fatalf("tier %v: %s[%d] = %v, flat = %v (not bit-identical)",
						tier, name, i, tm.Data()[i], fv)
				}
			}
		}
		for _, rec := range res.History.Rounds {
			if rec.TierResidentBytes <= 0 || rec.TierPartials <= 0 {
				t.Fatalf("tier %v round %d: tier accounting missing (partials=%d resident=%d)",
					tier, rec.Round, rec.TierPartials, rec.TierResidentBytes)
			}
		}
	}
	for _, rec := range flat.History.Rounds {
		if rec.TierPartials != 0 || rec.TierBytesUp != 0 || rec.TierResidentBytes != 0 {
			t.Fatalf("flat round %d unexpectedly carries tier accounting", rec.Round)
		}
	}
}

// conformConvergence: FedAvg (and FedAsync when late merging is on) on
// sharded linear regression converges to near the ground truth.
func conformConvergence(t *testing.T, h Harness) {
	for _, mode := range []struct {
		name  string
		alpha float64
	}{{"fedavg", 0}, {"fedasync", 0.5}} {
		t.Run(mode.name, func(t *testing.T) {
			lin := &LinearSpec{Seed: 11}
			spec := RunSpec{
				Rounds: 14, MinClients: 1, FedAsyncAlpha: mode.alpha,
				Linear: lin,
				Clients: []ClientSpec{
					{Name: "a"}, {Name: "b"}, {Name: "c"},
					{Name: "d"}, {Name: "e"}, {Name: "f"},
				},
			}
			res, err := h.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			checkRecords(t, res)
			// Same task seed → same population; score the trained model on
			// its noise-free holdout.
			pop := lin.Task.NewPopulation(lin.Seed, len(spec.Clients))
			initialMSE, err := pop.Eval(sim.InitialLinearWeights(pop.Task.Dim))
			if err != nil {
				t.Fatal(err)
			}
			finalMSE, err := pop.Eval(res.FinalWeights)
			if err != nil {
				t.Fatal(err)
			}
			if finalMSE >= initialMSE/10 {
				t.Fatalf("%s did not converge: MSE %v -> %v", mode.name, initialMSE, finalMSE)
			}
		})
	}
}

// conformBitIdentical: a deterministic harness reproduces History JSON
// byte-for-byte for a fixed spec — stragglers, deadline, async merging,
// sampling and codecs all included.
func conformBitIdentical(t *testing.T, h Harness) {
	spec := RunSpec{
		Rounds: 5, MinClients: 1, MinUpdates: 3,
		RoundDeadline:  300 * time.Millisecond,
		SampleFraction: 0.8,
		FedAsyncAlpha:  0.5,
		Seed:           17,
		Clients: []ClientSpec{
			{Name: "a", Samples: 10, Value: 1, Delay: 100 * time.Millisecond, Codec: "raw"},
			{Name: "b", Samples: 20, Value: 2, Delay: 150 * time.Millisecond, Codec: "f32"},
			{Name: "c", Samples: 30, Value: 3, Delay: 200 * time.Millisecond, Codec: "raw"},
			{Name: "d", Samples: 15, Value: 4, Delay: 120 * time.Millisecond, Codec: "f32"},
			{Name: "slow", Samples: 25, Value: 9, Delay: 800 * time.Millisecond, Codec: "raw"},
		},
	}
	js := func() []byte {
		res, err := h.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.History)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := js(), js()
	if !bytes.Equal(a, b) {
		t.Fatalf("histories differ across identical runs:\n%s\n%s", a, b)
	}
}
