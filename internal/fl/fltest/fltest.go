// Package fltest is the shared federation conformance kit: one declarative
// run spec, several interchangeable harnesses (the in-process Controller
// under the real or the simulator's virtual clock, and the networked
// Server over in-memory transport), and one suite of invariants that every
// harness must satisfy — quorum enforcement, straggler exclusion, late
// update handling, record consistency, FedAvg exactness, convergence on a
// linear task, and (for deterministic harnesses) bit-identical replay.
// Every future federation feature should land with its invariant expressed
// here once and enforced against all deployment shapes at once.
package fltest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"clinfl/internal/fl"
	"clinfl/internal/fl/hier"
	"clinfl/internal/provision"
	"clinfl/internal/sim"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// ClientSpec describes one simulated client.
type ClientSpec struct {
	// Name is the client identity; Samples its aggregation weight.
	Name    string
	Samples int
	// Value is the canned model value: after "training" every weight
	// element equals Value, so aggregation results are exact rationals
	// the invariants can check precisely. Ignored for linear-task runs.
	Value float64
	// Delay postpones each round's update (virtual time under a virtual
	// harness, real time otherwise — keep it small).
	Delay time.Duration
	// FailRounds lists rounds on which the client's executor errors.
	FailRounds []int
	// FlakyRounds lists rounds on which only the FIRST execution attempt
	// errors; a re-dispatched retry succeeds. Meaningful with a
	// RunSpec.Reconcile policy — without one there is no second attempt.
	FlakyRounds []int
	// Codec round-trips the client's updates through an uplink codec
	// ("raw", "f32", "topk:f"); empty means raw without byte stamping for
	// in-process harnesses and raw on the wire for the server harness.
	Codec string
}

// RunSpec is one declarative federation run.
type RunSpec struct {
	Rounds         int
	MinUpdates     int
	MinClients     int
	RoundDeadline  time.Duration
	SampleFraction float64
	// FedAsyncAlpha > 0 merges late updates FedAsync-style; 0 drops them.
	FedAsyncAlpha float64
	Seed          int64
	Clients       []ClientSpec
	// Reconcile, when non-nil, turns on the reconciliation control plane
	// (health state machine, requeue-with-backoff, probes) on whichever
	// harness runs the spec.
	Reconcile *fl.ReconcilePolicy
	// Linear, when non-nil, replaces canned values with real local
	// training on sharded linear regression (one shard per client, in
	// spec order), so convergence invariants have a learning signal.
	Linear *LinearSpec
	// Tier, when non-empty, routes the run through hierarchical streaming
	// aggregation with these fan-in widths (fl.TierConfig.Aggregators).
	// The controller harnesses shard in-process; the server harness
	// deploys Tier[0] real hier.Edge nodes over their own in-memory
	// networks, each fronting a contiguous shard of the roster.
	Tier []int
}

// LinearSpec configures a linear-task run.
type LinearSpec struct {
	Task sim.LinearTask
	Seed int64
}

// Harness runs a RunSpec on one deployment shape of the fl stack.
type Harness interface {
	// Name labels the harness in subtests.
	Name() string
	// Deterministic reports whether a fixed spec+seed reproduces History
	// bit-for-bit (true only under the virtual clock).
	Deterministic() bool
	// Run executes the federation and returns the controller/server
	// result.
	Run(spec RunSpec) (*fl.Result, error)
}

// Harnesses returns the full conformance matrix: the in-process
// Controller under the virtual and the real clock, and the networked
// Server over in-memory transport.
func Harnesses() []Harness {
	return []Harness{
		ControllerHarness{Virtual: true},
		ControllerHarness{},
		ServerHarness{},
	}
}

// InitialWeights is the starting model canned-value runs use.
func InitialWeights() map[string]*tensor.Matrix {
	return map[string]*tensor.Matrix{
		"layer.w": tensor.New(2, 3),
		"layer.b": tensor.New(1, 3),
	}
}

// ExpectedFedAvg is the exact sample-weighted average of the spec's canned
// values — what every harness's final model must equal after one or more
// full-participation FedAvg rounds.
func ExpectedFedAvg(clients []ClientSpec) float64 {
	var num, den float64
	for _, c := range clients {
		num += c.Value * float64(c.Samples)
		den += float64(c.Samples)
	}
	return num / den
}

// cannedExecutor is the canned-value client: sleep, maybe fail, return a
// model filled with Value, optionally round-tripped through its codec.
type cannedExecutor struct {
	spec  ClientSpec
	clock fl.Clock
	codec fl.WeightCodec
	shard *sim.LinearShard // non-nil for linear-task runs

	// attempts counts ExecuteRound calls per round, so FlakyRounds can
	// fail only the first one. Guarded for the server harness, where the
	// executor runs on a client goroutine while the spec may be inspected.
	mu       sync.Mutex
	attempts map[int]int
}

func newExecutor(spec ClientSpec, clock fl.Clock, shard *sim.LinearShard) (*cannedExecutor, error) {
	codec, err := fl.CodecByName(spec.Codec)
	if err != nil {
		return nil, err
	}
	if spec.Codec == "" {
		codec = nil
	}
	return &cannedExecutor{spec: spec, clock: clock, codec: codec, shard: shard, attempts: make(map[int]int)}, nil
}

// Probe implements fl.Prober: the canned client is always reachable, so
// recovery probes succeed once the probe backoff admits them.
func (e *cannedExecutor) Probe() error { return nil }

// Name implements fl.Executor.
func (e *cannedExecutor) Name() string { return e.spec.Name }

// NumSamples implements fl.Executor.
func (e *cannedExecutor) NumSamples() int {
	if e.shard != nil {
		return e.shard.Samples()
	}
	return e.spec.Samples
}

// ExecuteRound implements fl.Executor.
func (e *cannedExecutor) ExecuteRound(round int, global map[string]*tensor.Matrix) (*fl.ClientUpdate, error) {
	if e.spec.Delay > 0 {
		e.clock.Sleep(e.spec.Delay)
	}
	for _, r := range e.spec.FailRounds {
		if r == round {
			return nil, fmt.Errorf("fltest: %s scripted failure on round %d", e.spec.Name, round)
		}
	}
	e.mu.Lock()
	e.attempts[round]++
	attempt := e.attempts[round]
	e.mu.Unlock()
	for _, r := range e.spec.FlakyRounds {
		if r == round && attempt == 1 {
			return nil, fmt.Errorf("fltest: %s scripted flake on round %d attempt 1", e.spec.Name, round)
		}
	}
	var weights map[string]*tensor.Matrix
	loss := 1.0 / float64(round+1)
	if e.shard != nil {
		var err error
		weights, loss, err = e.shard.Train(global)
		if err != nil {
			return nil, err
		}
	} else {
		weights = make(map[string]*tensor.Matrix, len(global))
		for name, m := range global {
			w := tensor.New(m.Rows(), m.Cols())
			w.Fill(e.spec.Value)
			weights[name] = w
		}
	}
	u := &fl.ClientUpdate{
		ClientName: e.spec.Name, Round: round, Weights: weights,
		NumSamples: e.NumSamples(), TrainLoss: loss,
	}
	if e.codec != nil {
		blob, err := e.codec.Encode(weights)
		if err != nil {
			return nil, err
		}
		decoded, err := fl.DecodeWeights(blob)
		if err != nil {
			return nil, err
		}
		u.Weights = decoded
		u.PayloadBytes = len(blob)
	}
	return u, nil
}

// initialFor picks the starting model and shards for a spec.
func initialFor(spec RunSpec) (map[string]*tensor.Matrix, []*sim.LinearShard) {
	if spec.Linear == nil {
		return InitialWeights(), nil
	}
	pop := spec.Linear.Task.NewPopulation(spec.Linear.Seed, len(spec.Clients))
	return sim.InitialLinearWeights(pop.Task.Dim), pop.Shards
}

// ControllerHarness runs specs on the in-process fl.Controller, under the
// simulator's virtual clock when Virtual is set (deterministic, instant)
// or the real wall clock otherwise.
type ControllerHarness struct {
	Virtual bool
}

// Name implements Harness.
func (h ControllerHarness) Name() string {
	if h.Virtual {
		return "controller-virtual"
	}
	return "controller-real"
}

// Deterministic implements Harness.
func (h ControllerHarness) Deterministic() bool { return h.Virtual }

// Run implements Harness.
func (h ControllerHarness) Run(spec RunSpec) (*fl.Result, error) {
	var clock fl.Clock = fl.RealClock()
	var vc *sim.VirtualClock
	if h.Virtual {
		vc = sim.NewVirtualClock()
		clock = vc
	}
	initial, shards := initialFor(spec)
	execs := make([]fl.Executor, len(spec.Clients))
	for i, cs := range spec.Clients {
		var shard *sim.LinearShard
		if shards != nil {
			shard = shards[i]
		}
		e, err := newExecutor(cs, clock, shard)
		if err != nil {
			return nil, err
		}
		execs[i] = e
	}
	cfg := fl.ControllerConfig{
		Rounds:         spec.Rounds,
		MinUpdates:     spec.MinUpdates,
		MinClients:     spec.MinClients,
		RoundDeadline:  spec.RoundDeadline,
		SampleFraction: spec.SampleFraction,
		Seed:           spec.Seed,
		Clock:          clock,
		Reconcile:      spec.Reconcile,
	}
	if len(spec.Tier) > 0 {
		cfg.Tier = &fl.TierConfig{Aggregators: spec.Tier}
	}
	if spec.FedAsyncAlpha > 0 {
		cfg.AsyncAggregator = fl.FedAsync{Alpha: spec.FedAsyncAlpha}
	}
	ctrl, err := fl.NewController(cfg, execs)
	if err != nil {
		return nil, err
	}
	res, err := ctrl.Run(context.Background(), initial)
	if vc != nil {
		vc.Drain() // finish straggler actors in virtual time
	}
	return res, err
}

// ServerHarness runs specs on the networked fl.Server: every client is a
// real fl.Client speaking the full registration/task/update protocol over
// an in-memory transport.MemNetwork link. It exercises codec negotiation,
// payload byte accounting, reader-goroutine delivery and the server-side
// task bookkeeping that in-process runs cannot.
type ServerHarness struct{}

// Name implements Harness.
func (ServerHarness) Name() string { return "server-memnet" }

// Deterministic implements Harness.
func (ServerHarness) Deterministic() bool { return false }

// Run implements Harness.
func (h ServerHarness) Run(spec RunSpec) (*fl.Result, error) {
	if len(spec.Tier) > 0 {
		return h.runTier(spec)
	}
	network := transport.NewMemNetwork()
	defer network.Close()
	allowTopK := false
	for _, c := range spec.Clients {
		if strings.HasPrefix(c.Codec, "topk") {
			allowTopK = true
		}
	}
	srv, err := fl.NewServer(fl.ServerConfig{
		ExpectedClients: len(spec.Clients),
		RegisterTimeout: 30 * time.Second,
		Rounds:          spec.Rounds,
		MinUpdates:      spec.MinUpdates,
		MinClients:      spec.MinClients,
		RoundDeadline:   spec.RoundDeadline,
		SampleFraction:  spec.SampleFraction,
		Seed:            spec.Seed,
		AllowTopKUplink: allowTopK,
		AsyncAggregator: asyncFor(spec),
		Reconcile:       spec.Reconcile,
		VerifyToken:     func(name, token string) bool { return token == "tok-"+name },
		Logf:            func(string, ...any) {},
		Listener:        network,
	}, &provision.StartupKit{Role: provision.RoleServer, Name: "server"})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	initial, shards := initialFor(spec)
	var wg sync.WaitGroup
	for i, cs := range spec.Clients {
		var shard *sim.LinearShard
		if shards != nil {
			shard = shards[i]
		}
		exec, err := newExecutor(cs, fl.RealClock(), shard)
		if err != nil {
			return nil, err
		}
		// The wire handles codec framing; the executor must not
		// double-encode.
		exec.codec = nil
		name := cs.Name
		cl, err := fl.NewClient(fl.ClientConfig{
			Codec: cs.Codec,
			Logf:  func(string, ...any) {},
			Dialer: func() (transport.MessageConn, error) {
				return network.Dial(name, transport.LinkProfile{}, transport.LinkProfile{})
			},
		}, &provision.StartupKit{Role: provision.RoleClient, Name: name, Token: "tok-" + name}, exec)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Client errors are the server's to report: a scripted
			// executor failure or an aborted run surfaces in the Result's
			// failure records, which is what the suite asserts on.
			_, _ = cl.Run()
		}()
	}
	res, err := srv.Run(initial)
	srv.Close() // release clients still blocked on a dead run
	wg.Wait()
	return res, err
}

// runTier deploys the spec behind real hier.Edge nodes: Tier[0] edges
// register with the root server, each fronting a contiguous shard of the
// name-sorted roster over its own in-memory network. The server sees only
// the edges; exactness makes the final model bit-identical to the flat
// deployment of the same roster.
func (ServerHarness) runTier(spec RunSpec) (*fl.Result, error) {
	rootNet := transport.NewMemNetwork()
	defer rootNet.Close()
	edges := spec.Tier[0]
	if edges > len(spec.Clients) {
		edges = len(spec.Clients)
	}
	deadline := spec.RoundDeadline
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	minClients := spec.MinClients
	if minClients > edges {
		minClients = edges
	}
	srv, err := fl.NewServer(fl.ServerConfig{
		ExpectedClients: edges,
		RegisterTimeout: 30 * time.Second,
		Rounds:          spec.Rounds,
		MinClients:      minClients,
		RoundDeadline:   spec.RoundDeadline,
		Seed:            spec.Seed,
		Tier:            &fl.TierConfig{Aggregators: spec.Tier},
		VerifyToken:     func(name, token string) bool { return token == "tok-"+name },
		Logf:            func(string, ...any) {},
		Listener:        rootNet,
	}, &provision.StartupKit{Role: provision.RoleServer, Name: "server"})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	initial, shards := initialFor(spec)
	// Contiguous shards of the name-sorted roster, mirroring the
	// controller harness's in-process shard map.
	order := make([]int, len(spec.Clients))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return spec.Clients[order[a]].Name < spec.Clients[order[b]].Name })

	var wg sync.WaitGroup
	for e := 0; e < edges; e++ {
		var shard []int
		for pos, idx := range order {
			if pos*edges/len(order) == e {
				shard = append(shard, idx)
			}
		}
		edgeNet := transport.NewMemNetwork()
		defer edgeNet.Close()
		edgeName := fmt.Sprintf("edge-%d", e)
		ed, err := hier.NewEdge(hier.EdgeConfig{
			Name:  edgeName,
			Token: "tok-" + edgeName,
			DialParent: func() (transport.MessageConn, error) {
				return rootNet.Dial(edgeName, transport.LinkProfile{}, transport.LinkProfile{})
			},
			Listener:        edgeNet,
			ExpectedClients: len(shard),
			RegisterTimeout: 30 * time.Second,
			VerifyToken:     func(name, token string) bool { return token == "tok-"+name },
			RoundDeadline:   deadline,
			DecodeWeights:   fl.DecodeWeights,
		})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Edge failures surface as root-side round errors, which the
			// suite asserts on through the server Result.
			_, _ = ed.Run()
		}()
		for _, idx := range shard {
			cs := spec.Clients[idx]
			var lshard *sim.LinearShard
			if shards != nil {
				lshard = shards[idx]
			}
			exec, err := newExecutor(cs, fl.RealClock(), lshard)
			if err != nil {
				return nil, err
			}
			exec.codec = nil
			name := cs.Name
			cl, err := fl.NewClient(fl.ClientConfig{
				Codec: cs.Codec,
				Logf:  func(string, ...any) {},
				Dialer: func() (transport.MessageConn, error) {
					return edgeNet.Dial(name, transport.LinkProfile{}, transport.LinkProfile{})
				},
			}, &provision.StartupKit{Role: provision.RoleClient, Name: name, Token: "tok-" + name}, exec)
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = cl.Run()
			}()
		}
	}
	res, err := srv.Run(initial)
	srv.Close() // release edges and clients still blocked on a dead run
	wg.Wait()
	return res, err
}

// asyncFor builds the spec's async aggregator.
func asyncFor(spec RunSpec) fl.AsyncAggregator {
	if spec.FedAsyncAlpha > 0 {
		return fl.FedAsync{Alpha: spec.FedAsyncAlpha}
	}
	return nil
}
