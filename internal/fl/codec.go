package fl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"clinfl/internal/nn"
	"clinfl/internal/tensor"
)

// WeightCodec serializes a weight map for transport. Codecs trade payload
// bytes for precision: the raw codec is exact float64, the f32 codec
// quantizes to float32 (~50% of raw), the int8 codec quantizes each row to
// symmetric int8 with a float32 scale (~12.5% of raw), and the top-k codec
// keeps only the largest-magnitude fraction of each parameter (sparse
// index+float32 pairs). Every codec's output is self-describing (distinct
// magic), so
// DecodeWeights can decode any of them without out-of-band negotiation;
// negotiation only decides what the *sender* emits.
type WeightCodec interface {
	// Name identifies the codec in negotiation metadata and flags.
	Name() string
	// Encode serializes a weight map.
	Encode(weights map[string]*tensor.Matrix) ([]byte, error)
	// Decode parses a blob this codec produced.
	Decode(blob []byte) (map[string]*tensor.Matrix, error)
}

// Codec magics. The raw codec reuses the nn checkpoint magic ("CFLW1\n").
const (
	f32Magic  = "CFLQ1\n"
	topKMagic = "CFLS1\n"
	int8Magic = "CFLI1\n"
)

// RawCodec is the exact float64 wire format (nn checkpoint format); the
// pre-codec default and the reference every lossy codec is compared to.
type RawCodec struct{}

// Name implements WeightCodec.
func (RawCodec) Name() string { return "raw" }

// Encode implements WeightCodec.
func (RawCodec) Encode(weights map[string]*tensor.Matrix) ([]byte, error) {
	return EncodeWeights(weights)
}

// Decode implements WeightCodec.
func (RawCodec) Decode(blob []byte) (map[string]*tensor.Matrix, error) {
	w, err := nn.ReadWeights(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("fl: raw decode: %w", err)
	}
	return w, nil
}

// Float32Codec quantizes every element to float32, halving bytes on the
// wire at ~1e-7 relative error — far below the noise floor of a federated
// round.
type Float32Codec struct{}

// Name implements WeightCodec.
func (Float32Codec) Name() string { return "f32" }

// Encode implements WeightCodec.
func (Float32Codec) Encode(weights map[string]*tensor.Matrix) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(f32Magic)
	names := sortedNames(weights)
	writeUint32(&buf, uint32(len(names)))
	for _, name := range names {
		m := weights[name]
		writeName(&buf, name)
		writeUint32(&buf, uint32(m.Rows()))
		writeUint32(&buf, uint32(m.Cols()))
		var w [4]byte
		for _, v := range m.Data() {
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(float32(v)))
			buf.Write(w[:])
		}
	}
	return buf.Bytes(), nil
}

// Decode implements WeightCodec.
func (Float32Codec) Decode(blob []byte) (map[string]*tensor.Matrix, error) {
	r, n, err := codecHeader(blob, f32Magic, "f32")
	if err != nil {
		return nil, err
	}
	out := make(map[string]*tensor.Matrix, n)
	for i := 0; i < n; i++ {
		name, rows, cols, err := readParamHeader(r, "f32")
		if err != nil {
			return nil, err
		}
		// Dense payload: the remaining bytes must cover the declared
		// shape, so allocation is bounded by the blob size.
		if int64(rows)*int64(cols)*4 > int64(r.Len()) {
			return nil, fmt.Errorf("fl: f32 decode %q: payload truncated for shape %dx%d", name, rows, cols)
		}
		m := tensor.New(rows, cols)
		d := m.Data()
		var w [4]byte
		for j := range d {
			if _, err := io.ReadFull(r, w[:]); err != nil {
				return nil, fmt.Errorf("fl: f32 decode %q: %w", name, err)
			}
			d[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(w[:])))
		}
		out[name] = m
	}
	return out, nil
}

// Int8Codec quantizes each parameter row to symmetric int8: one float32
// scale (max|row|/127) followed by one signed byte per element. That is
// ~1/8 of the raw float64 payload (the per-row scale adds 4 bytes per
// `cols` elements) at a worst-case per-element error of scale/2 =
// max|row|/254 — comparable to the noise a single local epoch injects, and
// the same error model the client-side int8 eval kernels use. Rows that
// are all zero carry scale 0 and decode exactly.
type Int8Codec struct{}

// Name implements WeightCodec.
func (Int8Codec) Name() string { return "int8" }

// Encode implements WeightCodec.
func (Int8Codec) Encode(weights map[string]*tensor.Matrix) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(int8Magic)
	names := sortedNames(weights)
	writeUint32(&buf, uint32(len(names)))
	var w [4]byte
	for _, name := range names {
		m := weights[name]
		writeName(&buf, name)
		writeUint32(&buf, uint32(m.Rows()))
		writeUint32(&buf, uint32(m.Cols()))
		d := m.Data()
		cols := m.Cols()
		for r := 0; r < m.Rows(); r++ {
			row := d[r*cols : (r+1)*cols]
			maxAbs := 0.0
			for _, v := range row {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			scale := maxAbs / 127
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(float32(scale)))
			buf.Write(w[:])
			if scale == 0 {
				for range row {
					buf.WriteByte(0)
				}
				continue
			}
			// Quantize against the float32-rounded scale the decoder will
			// use, so encode/decode agree on the grid.
			s := float64(float32(scale))
			for _, v := range row {
				q := math.Round(v / s)
				if q > 127 {
					q = 127
				} else if q < -127 {
					q = -127
				}
				buf.WriteByte(byte(int8(q)))
			}
		}
	}
	return buf.Bytes(), nil
}

// Decode implements WeightCodec.
func (Int8Codec) Decode(blob []byte) (map[string]*tensor.Matrix, error) {
	r, n, err := codecHeader(blob, int8Magic, "int8")
	if err != nil {
		return nil, err
	}
	out := make(map[string]*tensor.Matrix, n)
	for i := 0; i < n; i++ {
		name, rows, cols, err := readParamHeader(r, "int8")
		if err != nil {
			return nil, err
		}
		// Dense payload: 4 scale bytes + cols code bytes per row must fit
		// in what remains, so allocation is bounded by the blob size.
		if int64(rows)*(4+int64(cols)) > int64(r.Len()) {
			return nil, fmt.Errorf("fl: int8 decode %q: payload truncated for shape %dx%d", name, rows, cols)
		}
		m := tensor.New(rows, cols)
		d := m.Data()
		var sb [4]byte
		codes := make([]byte, cols)
		for row := 0; row < rows; row++ {
			if _, err := io.ReadFull(r, sb[:]); err != nil {
				return nil, fmt.Errorf("fl: int8 decode %q: %w", name, err)
			}
			scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(sb[:])))
			if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
				return nil, fmt.Errorf("fl: int8 decode %q: bad row scale %v", name, scale)
			}
			if _, err := io.ReadFull(r, codes); err != nil {
				return nil, fmt.Errorf("fl: int8 decode %q: %w", name, err)
			}
			dr := d[row*cols : (row+1)*cols]
			for j, c := range codes {
				dr[j] = float64(int8(c)) * scale
			}
		}
		out[name] = m
	}
	return out, nil
}

// TopKCodec keeps only the Fraction largest-magnitude elements of each
// parameter (as uint32-index + float32-value pairs); the rest decode as
// zero. Intended for sparse *delta* transport; applied to full weights it
// is aggressively lossy, so experiments pair it with small fractions only
// when the accuracy budget allows.
type TopKCodec struct {
	// Fraction of elements kept per parameter, in (0, 1]. At least one
	// element per parameter is always kept.
	Fraction float64
}

// Name implements WeightCodec.
func (c TopKCodec) Name() string { return "topk:" + strconv.FormatFloat(c.Fraction, 'g', -1, 64) }

// Encode implements WeightCodec.
func (c TopKCodec) Encode(weights map[string]*tensor.Matrix) ([]byte, error) {
	// Negated form so a NaN fraction is rejected rather than slipping
	// through and silently keeping one element per parameter.
	if !(c.Fraction > 0 && c.Fraction <= 1) {
		return nil, fmt.Errorf("fl: top-k fraction %v out of (0,1]", c.Fraction)
	}
	var buf bytes.Buffer
	buf.WriteString(topKMagic)
	names := sortedNames(weights)
	writeUint32(&buf, uint32(len(names)))
	for _, name := range names {
		m := weights[name]
		d := m.Data()
		k := int(math.Ceil(c.Fraction * float64(len(d))))
		if k < 1 {
			k = 1
		}
		idx := topKIndices(d, k)
		writeName(&buf, name)
		writeUint32(&buf, uint32(m.Rows()))
		writeUint32(&buf, uint32(m.Cols()))
		writeUint32(&buf, uint32(len(idx)))
		var w [4]byte
		for _, i := range idx {
			binary.LittleEndian.PutUint32(w[:], uint32(i))
			buf.Write(w[:])
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(float32(d[i])))
			buf.Write(w[:])
		}
	}
	return buf.Bytes(), nil
}

// Decode implements WeightCodec.
func (TopKCodec) Decode(blob []byte) (map[string]*tensor.Matrix, error) {
	r, n, err := codecHeader(blob, topKMagic, "top-k")
	if err != nil {
		return nil, err
	}
	out := make(map[string]*tensor.Matrix, n)
	var totalElems int64
	for i := 0; i < n; i++ {
		name, rows, cols, err := readParamHeader(r, "top-k")
		if err != nil {
			return nil, err
		}
		// Sparse payload bytes don't bound the dense allocation the shape
		// demands, so cap the blob's cumulative element count instead.
		totalElems += int64(rows) * int64(cols)
		if totalElems > maxTotalElems {
			return nil, fmt.Errorf("fl: top-k decode %q: cumulative shape exceeds %d elements", name, int64(maxTotalElems))
		}
		var kb [4]byte
		if _, err := io.ReadFull(r, kb[:]); err != nil {
			return nil, fmt.Errorf("fl: top-k decode %q: %w", name, err)
		}
		k := int(binary.LittleEndian.Uint32(kb[:]))
		m := tensor.New(rows, cols)
		d := m.Data()
		// The encoder always keeps at least one element per parameter.
		if k < 1 || k > len(d) {
			return nil, fmt.Errorf("fl: top-k decode %q: k %d out of [1, %d]", name, k, len(d))
		}
		var w [8]byte
		for j := 0; j < k; j++ {
			if _, err := io.ReadFull(r, w[:]); err != nil {
				return nil, fmt.Errorf("fl: top-k decode %q: %w", name, err)
			}
			idx := int(binary.LittleEndian.Uint32(w[:4]))
			if idx >= len(d) {
				return nil, fmt.Errorf("fl: top-k decode %q: index %d out of range", name, idx)
			}
			d[idx] = float64(math.Float32frombits(binary.LittleEndian.Uint32(w[4:])))
		}
		out[name] = m
	}
	return out, nil
}

// topKIndices returns the indices of the k largest-magnitude elements.
func topKIndices(d []float64, k int) []int {
	idx := make([]int, len(d))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := math.Abs(d[idx[a]]), math.Abs(d[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b] // deterministic tie-break
	})
	out := idx[:k]
	sort.Ints(out) // ascending index order compresses/streams better
	return out
}

// CodecByName resolves a codec from its negotiation/flag name: "raw",
// "f32", or "topk:<fraction>" ("topk" alone keeps 10%).
func CodecByName(name string) (WeightCodec, error) {
	switch {
	case name == "" || name == "raw":
		return RawCodec{}, nil
	case name == "f32":
		return Float32Codec{}, nil
	case name == "int8":
		return Int8Codec{}, nil
	case name == "topk":
		return TopKCodec{Fraction: 0.1}, nil
	case strings.HasPrefix(name, "topk:"):
		f, err := strconv.ParseFloat(strings.TrimPrefix(name, "topk:"), 64)
		if err != nil || !(f > 0 && f <= 1) {
			return nil, fmt.Errorf("fl: bad top-k fraction in codec %q", name)
		}
		return TopKCodec{Fraction: f}, nil
	default:
		return nil, fmt.Errorf("fl: unknown codec %q (have raw, f32, int8, topk[:fraction])", name)
	}
}

// decoderFor sniffs a payload's magic and returns the codec that wrote it.
func decoderFor(blob []byte) WeightCodec {
	switch {
	case bytes.HasPrefix(blob, []byte(f32Magic)):
		return Float32Codec{}
	case bytes.HasPrefix(blob, []byte(topKMagic)):
		return TopKCodec{Fraction: 1}
	case bytes.HasPrefix(blob, []byte(int8Magic)):
		return Int8Codec{}
	default:
		// Raw (nn magic) or junk; RawCodec reports precise errors for junk.
		return RawCodec{}
	}
}

// CodecSimFilter round-trips every update through a codec before
// aggregation, simulating compressed uplink transport for in-process
// (simulator-mode) federations: updates pick up the codec's quantization
// loss and their PayloadBytes, so experiments report bytes-on-wire per
// round without sockets.
type CodecSimFilter struct {
	Codec WeightCodec
}

// Name implements Filter.
func (f CodecSimFilter) Name() string { return "codec-sim(" + f.Codec.Name() + ")" }

// Apply implements Filter.
func (f CodecSimFilter) Apply(update *ClientUpdate, _ map[string]*tensor.Matrix) error {
	blob, err := f.Codec.Encode(update.Weights)
	if err != nil {
		return err
	}
	weights, err := f.Codec.Decode(blob)
	if err != nil {
		return err
	}
	update.Weights = weights
	update.PayloadBytes = len(blob)
	return nil
}

// ---- shared little helpers ----

func sortedNames(weights map[string]*tensor.Matrix) []string {
	names := make([]string, 0, len(weights))
	for name := range weights {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func writeUint32(buf *bytes.Buffer, v uint32) {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	buf.Write(w[:])
}

func writeName(buf *bytes.Buffer, name string) {
	writeUint32(buf, uint32(len(name)))
	buf.WriteString(name)
}

// codecHeader validates magic and reads the parameter count.
func codecHeader(blob []byte, magic, codec string) (*bytes.Reader, int, error) {
	if !bytes.HasPrefix(blob, []byte(magic)) {
		return nil, 0, fmt.Errorf("fl: %s decode: bad magic", codec)
	}
	r := bytes.NewReader(blob[len(magic):])
	var cb [4]byte
	if _, err := io.ReadFull(r, cb[:]); err != nil {
		return nil, 0, fmt.Errorf("fl: %s decode count: %w", codec, err)
	}
	n := int(binary.LittleEndian.Uint32(cb[:]))
	if n > 1<<20 {
		return nil, 0, fmt.Errorf("fl: %s decode: implausible parameter count %d", codec, n)
	}
	return r, n, nil
}

// readParamHeader reads one parameter's name and shape.
func readParamHeader(r *bytes.Reader, codec string) (string, int, int, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return "", 0, 0, fmt.Errorf("fl: %s decode name length: %w", codec, err)
	}
	ln := binary.LittleEndian.Uint32(lb[:])
	if ln > 1<<16 {
		return "", 0, 0, fmt.Errorf("fl: %s decode: implausible name length %d", codec, ln)
	}
	nb := make([]byte, ln)
	if _, err := io.ReadFull(r, nb); err != nil {
		return "", 0, 0, fmt.Errorf("fl: %s decode name: %w", codec, err)
	}
	var sb [8]byte
	if _, err := io.ReadFull(r, sb[:]); err != nil {
		return "", 0, 0, fmt.Errorf("fl: %s decode shape: %w", codec, err)
	}
	rows := int(binary.LittleEndian.Uint32(sb[:4]))
	cols := int(binary.LittleEndian.Uint32(sb[4:]))
	// Each dimension is capped before the product is taken (in int64), so
	// a corrupt shape cannot wrap past the element cap on any GOARCH; 2^27
	// elements (1 GiB of float64) per parameter is far above any real
	// model and far below an OOM.
	if rows < 0 || cols < 0 || int64(rows) > maxParamElems || int64(cols) > maxParamElems ||
		int64(rows)*int64(cols) > maxParamElems {
		return "", 0, 0, fmt.Errorf("fl: %s decode %q: implausible shape %dx%d", codec, nb, rows, cols)
	}
	return string(nb), rows, cols, nil
}

// Decode-time allocation bounds: per-parameter and whole-blob element caps
// keep a tiny corrupt payload from demanding gigabytes before any data
// bytes are read (transport frames are capped at 64 MiB). Variables, not
// constants, so the fuzz harness can shrink them and explore the rejection
// logic without thrashing on legitimately-huge allocations.
var (
	maxParamElems int64 = 1 << 27
	maxTotalElems int64 = 1 << 28
)
