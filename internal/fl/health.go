package fl

import (
	"time"

	"clinfl/internal/fl/reconcile"
)

// ReconcilePolicy switches the round loop from "a failure is terminal"
// to reconciliation: failed or timed-out task assignments are requeued
// with jittered-exponential backoff and re-dispatched (to the same
// client, or a substitute) within the round deadline; repeated failures
// demote a client through the reconcile.Health ladder and exclude it
// from sampling until a recovery probe succeeds; and a round starved
// below quorum parks until probes revive clients instead of failing or
// deadlocking. Nil (the default on ControllerConfig/ServerConfig)
// preserves the legacy single-shot behavior exactly.
type ReconcilePolicy struct {
	// SuspectAfter / UnreachableAfter / QuarantineAfter are the
	// consecutive-failure demotion thresholds (defaults 1 / 2 / 4).
	// Quarantine entry and exit are WAL-recorded on durable runs.
	SuspectAfter, UnreachableAfter, QuarantineAfter int
	// RequeueBackoff paces task re-assignment: retry attempt n of a
	// round slot becomes ready Delay(n-1) after the failure (zero value:
	// 100ms doubling to 30s — set Base/Max well under RoundDeadline).
	RequeueBackoff Backoff
	// ProbeBackoff paces recovery probes of demoted clients.
	ProbeBackoff Backoff
	// MaxAssignAttempts bounds total assignments of one round slot,
	// original dispatch included (default 3).
	MaxAssignAttempts int
	// Substitute re-dispatches a failed slot to an idle eligible client
	// when the original is no longer eligible (or on any retry where the
	// original is demoted). Off, retries always target the original.
	Substitute bool
	// MaxPark bounds how long a starved round waits for probes to revive
	// demoted clients before giving up with a quorum error (default 30s;
	// keep it above ProbeBackoff.Base or parking can never help).
	MaxPark time.Duration
}

// withDefaults fills zero fields.
func (p ReconcilePolicy) withDefaults() ReconcilePolicy {
	if p.MaxAssignAttempts <= 0 {
		p.MaxAssignAttempts = 3
	}
	if p.MaxPark <= 0 {
		p.MaxPark = 30 * time.Second
	}
	return p
}

// monitor builds the policy's health state machine.
func (p ReconcilePolicy) monitor() *reconcile.Monitor {
	return reconcile.NewMonitor(reconcile.Config{
		SuspectAfter:     p.SuspectAfter,
		UnreachableAfter: p.UnreachableAfter,
		QuarantineAfter:  p.QuarantineAfter,
		ProbeDelay:       p.ProbeBackoff.Delay,
	})
}

// Prober is the optional probe capability of an Executor: a cheap
// liveness check of a demoted client, distinct from running a round.
// Executors that do not implement it are assumed recoverable once the
// probe backoff has elapsed (the probe trivially succeeds) — for
// in-process executors there is nothing to check. The networked server
// probes real clients with a MsgPing/MsgPong round-trip instead.
type Prober interface {
	Probe() error
}

// healthTransition records a state-machine edge in the metrics registry
// and refreshes the fl_client_health gauge family.
func (m flMetrics) healthTransition(mon *reconcile.Monitor, tr reconcile.Transition) {
	if !tr.Changed() {
		return
	}
	m.reg.Counter("fl_health_transitions_total", "client health state-machine edges",
		"from", tr.From.String(), "to", tr.To.String()).Inc()
	m.syncHealthGauges(mon)
}

// syncHealthGauges sets fl_client_health{state} to the monitor's current
// per-state population.
func (m flMetrics) syncHealthGauges(mon *reconcile.Monitor) {
	if m.reg == nil {
		return
	}
	counts := mon.Counts()
	for _, h := range reconcile.States() {
		m.reg.Gauge("fl_client_health", "clients per health state",
			"state", h.String()).Set(float64(counts[h]))
	}
}
