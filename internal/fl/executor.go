package fl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clinfl/internal/data"
	"clinfl/internal/mlm"
	"clinfl/internal/model"
	"clinfl/internal/nn"
	"clinfl/internal/opt"
	"clinfl/internal/sched"
	"clinfl/internal/tensor"
	"clinfl/internal/train"
)

// Executor is the client-side workload NVFlare calls an "executor": it
// receives the global model, performs local work, and returns an update.
type Executor interface {
	// Name is the client/site identity.
	Name() string
	// NumSamples is the client's local data volume (aggregation weight).
	NumSamples() int
	// ExecuteRound trains locally starting from the global weights.
	ExecuteRound(round int, global map[string]*tensor.Matrix) (*ClientUpdate, error)
}

// Validator is optionally implemented by executors that can score a global
// model on local validation data (used for server-side model selection).
type Validator interface {
	Validate(global map[string]*tensor.Matrix) (float64, error)
}

// LocalConfig controls a client's local optimization.
type LocalConfig struct {
	// Epochs per federated round (paper Fig. 3 times one local epoch).
	Epochs int
	// LR is the Adam learning rate (paper Table I: 1e-2; the experiment
	// configs use smaller stable values, see DESIGN.md).
	LR float64
	// BatchSize / Workers / SubBatch / ClipNorm feed train.Config. SubBatch
	// bounds the contiguous slice each worker's batched forward processes
	// per tape. <=0 pins SubBatch = BatchSize (one sub-batch per step), so
	// a client's gradient bits and trainer memory are independent of
	// GOMAXPROCS; set Workers and SubBatch explicitly to enable the
	// intra-client data-parallel fan.
	BatchSize int
	Workers   int
	SubBatch  int
	ClipNorm  float64
	// ProxMu adds a FedProx proximal term anchored at each round's global
	// model, taming client drift under partial participation and
	// heterogeneous shards. 0 keeps plain local SGD (FedAvg semantics).
	ProxMu float64
	// EvalPrecision selects the storage precision for eval-mode weight
	// matmuls on this client ("f64"/"" exact, "f16" half storage, "int8"
	// symmetric per-row×per-column quantization). It affects only
	// Validate/Predict; local training always runs full precision. Requires
	// a model implementing model.EvalPrecisioner for non-f64 values.
	EvalPrecision string
	// Seed derives per-round shuffling and dropout streams.
	Seed int64
	// EpochHook, if non-nil, observes each completed local epoch (used by
	// the Fig. 3 demonstration to report per-epoch wall-clock times).
	EpochHook func(client string, round, epoch int, d time.Duration)
}

// withDefaults fills zero fields.
func (c LocalConfig) withDefaults() LocalConfig {
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.SubBatch <= 0 {
		// Pin the sub-batch geometry instead of inheriting train's
		// Workers-derived default. Federated clients already run
		// concurrently, so an intra-client data-parallel fan adds no
		// throughput — but its Workers=GOMAXPROCS default made each
		// client's trainer footprint (worker contexts plus full
		// parameter-sized gradient staging sets, one per sub-batch) scale
		// with the machine, and made gradient bitstreams depend on
		// GOMAXPROCS through the dropout-stream partition. One sub-batch
		// per step keeps both invariant: the same buffers, and the same
		// bits, on every box. Callers that do want the fan set Workers and
		// SubBatch explicitly.
		c.SubBatch = c.BatchSize
	}
	return c
}

// ClassifierExecutor fine-tunes a classification model on a local shard
// (the paper's ADR fine-tuning task). It holds one train.Trainer for the
// life of the client, so every round of every epoch reuses the same tapes,
// arenas and gradient buffers instead of rebuilding them per batch.
type ClassifierExecutor struct {
	name      string
	mdl       model.Classifier
	trainSet  data.Dataset
	validSet  data.Dataset
	cfg       LocalConfig
	optimizer opt.Optimizer
	trainer   *train.Trainer[data.Example]
}

var (
	_ Executor  = (*ClassifierExecutor)(nil)
	_ Validator = (*ClassifierExecutor)(nil)
)

// NewClassifierExecutor builds a client for classification fine-tuning.
// validSet may be empty (no local validation).
func NewClassifierExecutor(name string, mdl model.Classifier, trainSet, validSet data.Dataset, cfg LocalConfig) (*ClassifierExecutor, error) {
	if name == "" {
		return nil, errors.New("fl: executor needs a name")
	}
	if len(trainSet) == 0 {
		return nil, fmt.Errorf("fl: executor %q has no training data", name)
	}
	cfg = cfg.withDefaults()
	prec, err := tensor.ParsePrecision(cfg.EvalPrecision)
	if err != nil {
		return nil, fmt.Errorf("fl: executor %q: %w", name, err)
	}
	if ep, ok := mdl.(model.EvalPrecisioner); ok {
		ep.SetEvalPrecision(prec)
	} else if prec != tensor.PrecF64 {
		return nil, fmt.Errorf("fl: executor %q: model %q does not support eval precision %q", name, mdl.Name(), cfg.EvalPrecision)
	}
	e := &ClassifierExecutor{
		name:      name,
		mdl:       mdl,
		trainSet:  trainSet,
		validSet:  validSet,
		cfg:       cfg,
		optimizer: opt.NewAdam(cfg.LR),
	}
	e.trainer = train.NewTrainer(mdl.Params(), mdl.LossBatch, e.optimizer, train.Config{
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		SubBatch:  cfg.SubBatch,
		ClipNorm:  cfg.ClipNorm,
		ProxMu:    cfg.ProxMu,
	})
	return e, nil
}

// Name implements Executor.
func (e *ClassifierExecutor) Name() string { return e.name }

// NumSamples implements Executor.
func (e *ClassifierExecutor) NumSamples() int { return len(e.trainSet) }

// ExecuteRound implements Executor: load global weights, train Epochs
// local epochs, return the new local weights.
func (e *ClassifierExecutor) ExecuteRound(round int, global map[string]*tensor.Matrix) (*ClientUpdate, error) {
	if err := nn.LoadWeights(e.mdl.Params(), global); err != nil {
		return nil, fmt.Errorf("fl: %s load global: %w", e.name, err)
	}
	if e.cfg.ProxMu > 0 {
		if err := e.trainer.SetProxRef(global); err != nil {
			return nil, fmt.Errorf("fl: %s prox ref: %w", e.name, err)
		}
	}
	var lastLoss float64
	for ep := 0; ep < e.cfg.Epochs; ep++ {
		seed := e.cfg.Seed + int64(round)*1000 + int64(ep)
		start := time.Now()
		loss, err := e.trainer.Epoch([]data.Example(e.trainSet), seed)
		if err != nil {
			return nil, fmt.Errorf("fl: %s round %d epoch %d: %w", e.name, round, ep, err)
		}
		if e.cfg.EpochHook != nil {
			e.cfg.EpochHook(e.name, round, ep, time.Since(start))
		}
		lastLoss = loss
	}
	return &ClientUpdate{
		ClientName: e.name,
		Round:      round,
		Weights:    nn.SnapshotWeights(e.mdl.Params()),
		NumSamples: len(e.trainSet),
		TrainLoss:  lastLoss,
	}, nil
}

// validateFan scores validation chunks from Fan slots: each participant
// claims BatchSize chunks off a shared queue and runs eval-mode batched
// forwards through the model's recycled eval-context pool (Predict pulls a
// private arena-backed context per concurrent call, and parameters are
// read-only during eval), accumulating hits atomically — integer sums, so
// the score is identical at any participant count.
type validateFan struct {
	e      *ClassifierExecutor
	next   atomic.Int64
	hits   atomic.Int64
	failed atomic.Bool

	errMu sync.Mutex
	err   error
}

// RunSlot implements sched.SlotRunner.
func (v *validateFan) RunSlot(int) {
	e := v.e
	nChunks := (len(e.validSet) + e.cfg.BatchSize - 1) / e.cfg.BatchSize
	for !v.failed.Load() {
		c := int(v.next.Add(1)) - 1
		if c >= nChunks {
			return
		}
		lo := c * e.cfg.BatchSize
		hi := lo + e.cfg.BatchSize
		if hi > len(e.validSet) {
			hi = len(e.validSet)
		}
		preds, err := e.mdl.Predict(e.validSet[lo:hi])
		if err != nil {
			v.errMu.Lock()
			if v.err == nil {
				v.err = err
			}
			v.errMu.Unlock()
			v.failed.Store(true)
			return
		}
		hit := int64(0)
		for i, p := range preds {
			if p == e.validSet[lo+i].Label {
				hit++
			}
		}
		v.hits.Add(hit)
	}
}

// Validate implements Validator: top-1 accuracy of the global model on the
// client's validation shard. Prediction runs in BatchSize chunks so memory
// stays bounded as the shard grows (each chunk is one batched forward, not
// one giant whole-shard tape), and the chunks fan out across the shared
// sched pool so validation is no longer a serial tail on every round.
func (e *ClassifierExecutor) Validate(global map[string]*tensor.Matrix) (float64, error) {
	if len(e.validSet) == 0 {
		return 0, errors.New("fl: no validation data")
	}
	if err := nn.LoadWeights(e.mdl.Params(), global); err != nil {
		return 0, fmt.Errorf("fl: %s load global: %w", e.name, err)
	}
	v := validateFan{e: e}
	nChunks := (len(e.validSet) + e.cfg.BatchSize - 1) / e.cfg.BatchSize
	pool := sched.Default()
	slots := pool.Size()
	if slots > nChunks {
		slots = nChunks
	}
	pool.Fan(slots, &v)
	if v.err != nil {
		return 0, v.err
	}
	return float64(v.hits.Load()) / float64(len(e.validSet)), nil
}

// MLMExecutor pretrains a BERT-family model with the masked-language-model
// objective on a local corpus shard (the paper's federated pretraining
// feasibility study, Fig. 2). Like ClassifierExecutor it holds one
// train.Trainer (and a recycled masked-example buffer) for its lifetime.
type MLMExecutor struct {
	name      string
	mdl       model.Pretrainer
	params    []*nn.Param
	sequences [][]int // encoded, unmasked id sequences
	maskCfg   mlm.Config
	cfg       LocalConfig
	optimizer opt.Optimizer
	trainer   *train.Trainer[mlm.MaskedExample]
	masked    []mlm.MaskedExample // reused epoch masking buffer
}

var _ Executor = (*MLMExecutor)(nil)

// NewMLMExecutor builds a pretraining client. sequences are full (unmasked)
// id sequences; masking is re-randomized every epoch as mlm-pytorch does.
func NewMLMExecutor(name string, mdl model.Pretrainer, params []*nn.Param, sequences [][]int, maskCfg mlm.Config, cfg LocalConfig) (*MLMExecutor, error) {
	if name == "" {
		return nil, errors.New("fl: executor needs a name")
	}
	if len(sequences) == 0 {
		return nil, fmt.Errorf("fl: executor %q has no corpus", name)
	}
	if err := maskCfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	e := &MLMExecutor{
		name:      name,
		mdl:       mdl,
		params:    params,
		sequences: sequences,
		maskCfg:   maskCfg,
		cfg:       cfg,
		optimizer: opt.NewAdam(cfg.LR),
	}
	e.trainer = train.NewTrainer(params, mdl.MLMLossBatch, e.optimizer, train.Config{
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		SubBatch:  cfg.SubBatch,
		ClipNorm:  cfg.ClipNorm,
		ProxMu:    cfg.ProxMu,
	})
	return e, nil
}

// Name implements Executor.
func (e *MLMExecutor) Name() string { return e.name }

// NumSamples implements Executor.
func (e *MLMExecutor) NumSamples() int { return len(e.sequences) }

// maskAll corrupts every sequence with a round/epoch-specific RNG into the
// executor's recycled masking buffer.
func (e *MLMExecutor) maskAll(seed int64) ([]mlm.MaskedExample, error) {
	rng := tensor.NewRNG(seed)
	if cap(e.masked) < len(e.sequences) {
		e.masked = make([]mlm.MaskedExample, len(e.sequences))
	}
	e.masked = e.masked[:len(e.sequences)]
	for i, ids := range e.sequences {
		me, err := mlm.Mask(e.maskCfg, ids, rng)
		if err != nil {
			return nil, err
		}
		e.masked[i] = me
	}
	return e.masked, nil
}

// ExecuteRound implements Executor.
func (e *MLMExecutor) ExecuteRound(round int, global map[string]*tensor.Matrix) (*ClientUpdate, error) {
	if err := nn.LoadWeights(e.params, global); err != nil {
		return nil, fmt.Errorf("fl: %s load global: %w", e.name, err)
	}
	if e.cfg.ProxMu > 0 {
		if err := e.trainer.SetProxRef(global); err != nil {
			return nil, fmt.Errorf("fl: %s prox ref: %w", e.name, err)
		}
	}
	var lastLoss float64
	for ep := 0; ep < e.cfg.Epochs; ep++ {
		seed := e.cfg.Seed + int64(round)*1000 + int64(ep)
		masked, err := e.maskAll(seed)
		if err != nil {
			return nil, fmt.Errorf("fl: %s mask: %w", e.name, err)
		}
		start := time.Now()
		loss, err := e.trainer.Epoch(masked, seed)
		if err != nil {
			return nil, fmt.Errorf("fl: %s round %d epoch %d: %w", e.name, round, ep, err)
		}
		if e.cfg.EpochHook != nil {
			e.cfg.EpochHook(e.name, round, ep, time.Since(start))
		}
		lastLoss = loss
	}
	return &ClientUpdate{
		ClientName: e.name,
		Round:      round,
		Weights:    nn.SnapshotWeights(e.params),
		NumSamples: len(e.sequences),
		TrainLoss:  lastLoss,
	}, nil
}

// EvalMLMLoss scores the global weights' MLM loss on held-out sequences
// with deterministic masking, for Fig. 2 curves.
func (e *MLMExecutor) EvalMLMLoss(global map[string]*tensor.Matrix, heldOut [][]int, seed int64) (float64, error) {
	if err := nn.LoadWeights(e.params, global); err != nil {
		return 0, err
	}
	rng := tensor.NewRNG(seed)
	masked := make([]mlm.MaskedExample, len(heldOut))
	for i, ids := range heldOut {
		me, err := mlm.Mask(e.maskCfg, ids, rng)
		if err != nil {
			return 0, err
		}
		masked[i] = me
	}
	return train.EvalLoss(masked, e.mdl.MLMLossBatch, e.cfg.BatchSize, seed)
}
