package fl

import (
	"errors"
	"fmt"
	"log"
	"strconv"
	"time"

	"clinfl/internal/provision"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// ClientConfig parameterizes the networked FL client.
type ClientConfig struct {
	// ServerAddr is the host:port to dial.
	ServerAddr string
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// Codec names the uplink weight codec this client requests at
	// registration ("raw", "f32", "topk[:fraction]"); default raw. The
	// server may fall back to raw, echoed in the registration ack.
	Codec string
	// Logf receives progress lines (default log.Printf).
	Logf func(format string, args ...any)
	// Dialer, when non-nil, replaces the TLS dial entirely — the
	// simulator and fltest pass a transport.MemNetwork Dial closure so
	// the client runs over an in-memory link with scripted faults.
	Dialer func() (transport.MessageConn, error)
}

// Client is the networked federation participant: it dials the server with
// its startup-kit credentials, registers with its admission token (and its
// uplink codec preference), then serves task messages by running its
// executor until MsgFinish.
type Client struct {
	cfg   ClientConfig
	kit   *provision.StartupKit
	exec  Executor
	codec WeightCodec // requested uplink codec; re-resolved after the ack
}

// NewClient builds a networked client around an executor.
func NewClient(cfg ClientConfig, kit *provision.StartupKit, exec Executor) (*Client, error) {
	if kit.Role != provision.RoleClient {
		return nil, fmt.Errorf("fl: client needs a client kit, got %s", kit.Role)
	}
	if exec == nil {
		return nil, errors.New("fl: client needs an executor")
	}
	codec, err := CodecByName(cfg.Codec)
	if err != nil {
		return nil, err
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Client{cfg: cfg, kit: kit, exec: exec, codec: codec}, nil
}

// Run connects, registers, and participates until the server finishes.
// It returns the final global weights distributed by the server.
func (c *Client) Run() (map[string]*tensor.Matrix, error) {
	var conn transport.MessageConn
	if c.cfg.Dialer != nil {
		mc, err := c.cfg.Dialer()
		if err != nil {
			return nil, err
		}
		conn = mc
	} else {
		tlsCfg, err := c.kit.ClientTLS()
		if err != nil {
			return nil, err
		}
		tc, err := transport.Dial(c.cfg.ServerAddr, tlsCfg, c.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		conn = tc
	}
	defer conn.Close()

	if err := conn.Write(&transport.Message{
		Type: transport.MsgRegister, Sender: c.kit.Name, Token: c.kit.Token,
		Meta: map[string]string{transport.MetaCodec: c.codec.Name()},
	}); err != nil {
		return nil, fmt.Errorf("fl: %s register: %w", c.kit.Name, err)
	}
	ack, err := conn.Read()
	if err != nil {
		return nil, fmt.Errorf("fl: %s register ack: %w", c.kit.Name, err)
	}
	if ack.Type != transport.MsgRegisterAck || ack.Meta["accepted"] != "true" {
		return nil, fmt.Errorf("fl: %s registration rejected: %s", c.kit.Name, ack.Meta["reason"])
	}
	// Honor the server's codec decision (it may have fallen back to raw).
	if accepted := ack.Meta[transport.MetaCodec]; accepted != "" && accepted != c.codec.Name() {
		codec, err := CodecByName(accepted)
		if err != nil {
			return nil, fmt.Errorf("fl: %s server chose unusable codec: %w", c.kit.Name, err)
		}
		c.codec = codec
	}
	c.cfg.Logf("fl client %s: registered with server (uplink codec %s)", c.kit.Name, c.codec.Name())

	for {
		msg, err := conn.Read()
		if err != nil {
			return nil, fmt.Errorf("fl: %s read: %w", c.kit.Name, err)
		}
		switch msg.Type {
		case transport.MsgTask:
			global, err := DecodeWeights(msg.Payload)
			if err != nil {
				return nil, fmt.Errorf("fl: %s decode global: %w", c.kit.Name, err)
			}
			update, err := c.exec.ExecuteRound(msg.Round, global)
			if err != nil {
				// Report the failure so the server can drop us from the
				// round instead of timing out.
				_ = conn.Write(&transport.Message{
					Type: transport.MsgError, Sender: c.kit.Name, Round: msg.Round,
					Meta: map[string]string{"error": err.Error()},
				})
				return nil, fmt.Errorf("fl: %s round %d: %w", c.kit.Name, msg.Round, err)
			}
			blob, err := c.codec.Encode(update.Weights)
			if err != nil {
				return nil, fmt.Errorf("fl: %s encode update: %w", c.kit.Name, err)
			}
			if err := conn.Write(&transport.Message{
				Type: transport.MsgUpdate, Sender: c.kit.Name, Round: msg.Round,
				Payload: blob, NumSamples: update.NumSamples,
				Meta: map[string]string{"train_loss": strconv.FormatFloat(update.TrainLoss, 'g', -1, 64)},
			}); err != nil {
				return nil, fmt.Errorf("fl: %s send update: %w", c.kit.Name, err)
			}
		case transport.MsgFinish:
			final, err := DecodeWeights(msg.Payload)
			if err != nil {
				return nil, fmt.Errorf("fl: %s decode final: %w", c.kit.Name, err)
			}
			c.cfg.Logf("fl client %s: training complete", c.kit.Name)
			return final, nil
		case transport.MsgError:
			return nil, fmt.Errorf("fl: %s server error: %s", c.kit.Name, msg.Meta["error"])
		default:
			return nil, fmt.Errorf("fl: %s unexpected message %s", c.kit.Name, msg.Type)
		}
	}
}
