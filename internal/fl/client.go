package fl

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"
	"time"

	"clinfl/internal/metrics"
	"clinfl/internal/provision"
	"clinfl/internal/tensor"
	"clinfl/internal/transport"
)

// ClientConfig parameterizes the networked FL client.
type ClientConfig struct {
	// ServerAddr is the host:port to dial.
	ServerAddr string
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// Codec names the uplink weight codec this client requests at
	// registration ("raw", "f32", "topk[:fraction]"); default raw. The
	// server may fall back to raw, echoed in the registration ack.
	Codec string
	// Logf receives progress lines (default log.Printf).
	Logf func(format string, args ...any)
	// Dialer, when non-nil, replaces the TLS dial entirely — the
	// simulator and fltest pass a transport.MemNetwork Dial closure so
	// the client runs over an in-memory link with scripted faults.
	Dialer func() (transport.MessageConn, error)
	// Reconnect enables session resume: on a connection failure the
	// client redials (paced by Backoff) and re-registers presenting its
	// session token, re-attaching to its pending task instead of
	// aborting the run. This is what lets a client ride out a server
	// crash-restart.
	Reconnect bool
	// MaxReconnects bounds consecutive redial attempts per failure
	// (default 5).
	MaxReconnects int
	// Backoff paces reconnect attempts (zero value: 100ms doubling to
	// 30s).
	Backoff Backoff
	// Metrics, when non-nil, receives the client's reconnect
	// observability: fl_reconnects_total and the
	// fl_reconnect_backoff_seconds histogram of the delays actually
	// slept, so a reconnect storm is visible in /metrics while it
	// happens.
	Metrics *metrics.Registry
}

// Client is the networked federation participant: it dials the server with
// its startup-kit credentials, registers with its admission token (and its
// uplink codec preference), then serves task messages by running its
// executor until MsgFinish.
type Client struct {
	cfg   ClientConfig
	kit   *provision.StartupKit
	exec  Executor
	codec WeightCodec // requested uplink codec; re-resolved after the ack
	// session is the server-issued session token, presented on
	// re-registration to resume.
	session string
	// retrier paces reconnects; its attempt counter and delay schedule
	// are observable through cfg.Metrics.
	retrier *Retrier
}

// NewClient builds a networked client around an executor.
func NewClient(cfg ClientConfig, kit *provision.StartupKit, exec Executor) (*Client, error) {
	if kit.Role != provision.RoleClient {
		return nil, fmt.Errorf("fl: client needs a client kit, got %s", kit.Role)
	}
	if exec == nil {
		return nil, errors.New("fl: client needs an executor")
	}
	codec, err := CodecByName(cfg.Codec)
	if err != nil {
		return nil, err
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.MaxReconnects <= 0 {
		cfg.MaxReconnects = 5
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	backoffHist := cfg.Metrics.Histogram("fl_reconnect_backoff_seconds",
		"reconnect backoff delays actually slept", metrics.DurationBuckets)
	return &Client{cfg: cfg, kit: kit, exec: exec, codec: codec,
		retrier: &Retrier{
			Backoff: cfg.Backoff,
			OnDelay: func(_ int, d time.Duration) { backoffHist.Observe(d.Seconds()) },
		}}, nil
}

// connect dials the server and performs the MsgRegister handshake,
// presenting the stored session token (if any) so a redial re-attaches to
// the existing session. On success the negotiated codec and the issued
// session token are stored on the client.
func (c *Client) connect() (transport.MessageConn, error) {
	var conn transport.MessageConn
	if c.cfg.Dialer != nil {
		mc, err := c.cfg.Dialer()
		if err != nil {
			return nil, err
		}
		conn = mc
	} else {
		tlsCfg, err := c.kit.ClientTLS()
		if err != nil {
			return nil, err
		}
		tc, err := transport.Dial(c.cfg.ServerAddr, tlsCfg, c.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		conn = tc
	}
	meta := map[string]string{transport.MetaCodec: c.codec.Name()}
	if c.session != "" {
		meta[transport.MetaSession] = c.session
	}
	if err := conn.Write(&transport.Message{
		Type: transport.MsgRegister, Sender: c.kit.Name, Token: c.kit.Token, Meta: meta,
	}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("fl: %s register: %w", c.kit.Name, err)
	}
	ack, err := conn.Read()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("fl: %s register ack: %w", c.kit.Name, err)
	}
	if ack.Type != transport.MsgRegisterAck || ack.Meta["accepted"] != "true" {
		_ = conn.Close()
		return nil, fmt.Errorf("fl: %s registration rejected: %s", c.kit.Name, ack.Meta["reason"])
	}
	// Honor the server's codec decision (it may have fallen back to raw).
	if accepted := ack.Meta[transport.MetaCodec]; accepted != "" && accepted != c.codec.Name() {
		codec, err := CodecByName(accepted)
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("fl: %s server chose unusable codec: %w", c.kit.Name, err)
		}
		c.codec = codec
	}
	if sess := ack.Meta[transport.MetaSession]; sess != "" {
		c.session = sess
	}
	return conn, nil
}

// reconnect closes the failed connection and redials with backoff,
// re-registering under the stored session token. It returns the original
// cause when reconnection is disabled, no session was ever issued, or
// every attempt fails.
func (c *Client) reconnect(old transport.MessageConn, cause error) (transport.MessageConn, error) {
	if old != nil {
		_ = old.Close()
	}
	if !c.cfg.Reconnect || c.session == "" {
		return nil, cause
	}
	c.cfg.Logf("fl client %s: connection lost (%v), reconnecting", c.kit.Name, cause)
	var conn transport.MessageConn
	err := c.retrier.Retry(context.Background(), c.cfg.MaxReconnects, func() error {
		c.cfg.Metrics.Counter("fl_reconnects_total", "client redial attempts after a lost connection").Inc()
		var err error
		conn, err = c.connect()
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("fl: %s reconnect failed: %w (cause: %v)", c.kit.Name, err, cause)
	}
	c.cfg.Logf("fl client %s: session resumed", c.kit.Name)
	return conn, nil
}

// Run connects, registers, and participates until the server finishes.
// It returns the final global weights distributed by the server.
func (c *Client) Run() (map[string]*tensor.Matrix, error) {
	conn, err := c.connect()
	if err != nil {
		return nil, err
	}
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	c.cfg.Logf("fl client %s: registered with server (uplink codec %s)", c.kit.Name, c.codec.Name())

	for {
		msg, err := conn.Read()
		if err != nil {
			if conn, err = c.reconnect(conn, err); err != nil {
				return nil, fmt.Errorf("fl: %s read: %w", c.kit.Name, err)
			}
			continue
		}
		switch msg.Type {
		case transport.MsgTask:
			global, err := DecodeWeights(msg.Payload)
			if err != nil {
				// Corruption inside the payload passes framing but fails
				// here; it is the same damaged-in-transit failure as a bad
				// frame, so reconnect and let the server re-send the task.
				if conn, err = c.reconnect(conn, err); err != nil {
					return nil, fmt.Errorf("fl: %s decode global: %w", c.kit.Name, err)
				}
				continue
			}
			update, err := c.exec.ExecuteRound(msg.Round, global)
			if err != nil {
				// Report the failure so the server can requeue or
				// substitute the task instead of timing out — then keep
				// serving. One bad round (a transient data/compute fault)
				// must not take the client out of the federation; the
				// server's health monitor decides when a failure streak
				// warrants quarantine.
				c.cfg.Logf("fl client %s: round %d failed locally: %v", c.kit.Name, msg.Round, err)
				if werr := conn.Write(&transport.Message{
					Type: transport.MsgError, Sender: c.kit.Name, Round: msg.Round,
					Meta: map[string]string{"error": err.Error()},
				}); werr != nil {
					if conn, err = c.reconnect(conn, werr); err != nil {
						return nil, fmt.Errorf("fl: %s report failure: %w", c.kit.Name, err)
					}
				}
				continue
			}
			blob, err := c.codec.Encode(update.Weights)
			if err != nil {
				return nil, fmt.Errorf("fl: %s encode update: %w", c.kit.Name, err)
			}
			if err := conn.Write(&transport.Message{
				Type: transport.MsgUpdate, Sender: c.kit.Name, Round: msg.Round,
				Payload: blob, NumSamples: update.NumSamples,
				Meta: map[string]string{"train_loss": strconv.FormatFloat(update.TrainLoss, 'g', -1, 64)},
			}); err != nil {
				// The update is lost with the connection; on resume the
				// server re-sends the round's task and the client
				// recomputes.
				if conn, err = c.reconnect(conn, err); err != nil {
					return nil, fmt.Errorf("fl: %s send update: %w", c.kit.Name, err)
				}
			}
		case transport.MsgPing:
			// Liveness probe: the server demoted us after a failure streak
			// and is checking whether we are worth sampling again.
			if err := conn.Write(&transport.Message{
				Type: transport.MsgPong, Sender: c.kit.Name, Round: msg.Round,
			}); err != nil {
				if conn, err = c.reconnect(conn, err); err != nil {
					return nil, fmt.Errorf("fl: %s pong: %w", c.kit.Name, err)
				}
			}
		case transport.MsgFinish:
			final, err := DecodeWeights(msg.Payload)
			if err != nil {
				return nil, fmt.Errorf("fl: %s decode final: %w", c.kit.Name, err)
			}
			c.cfg.Logf("fl client %s: training complete", c.kit.Name)
			return final, nil
		case transport.MsgError:
			return nil, fmt.Errorf("fl: %s server error: %s", c.kit.Name, msg.Meta["error"])
		default:
			return nil, fmt.Errorf("fl: %s unexpected message %s", c.kit.Name, msg.Type)
		}
	}
}
