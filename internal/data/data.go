// Package data provides dataset abstractions, train/validation splitting
// and the federated client partitioners the paper's experiments use:
// balanced equal-size splits, the imbalanced split with ratios
// {0.29, 0.22, 0.17, 0.14, 0.09, 0.04, 0.03, 0.02}, and small single-site
// subsets.
package data

import (
	"errors"
	"fmt"
	"math"

	"clinfl/internal/tensor"
)

// Example is one encoded training instance: a fixed-length token id
// sequence with its padding mask and (for classification) a label.
type Example struct {
	IDs     []int
	PadMask []bool
	Label   int
}

// Len returns the number of non-padding positions.
func (e Example) Len() int {
	n := 0
	for _, pad := range e.PadMask {
		if !pad {
			n++
		}
	}
	return n
}

// Dataset is an ordered collection of examples.
type Dataset []Example

// Labels returns the label column.
func (d Dataset) Labels() []int {
	out := make([]int, len(d))
	for i, e := range d {
		out[i] = e.Label
	}
	return out
}

// PositiveRate returns the fraction of label-1 examples.
func (d Dataset) PositiveRate() float64 {
	if len(d) == 0 {
		return 0
	}
	n := 0
	for _, e := range d {
		n += e.Label
	}
	return float64(n) / float64(len(d))
}

// Shuffled returns a copy of d in a seeded random order.
func (d Dataset) Shuffled(rng *tensor.RNG) Dataset {
	out := append(Dataset(nil), d...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Split divides d into a train set of trainFrac and the remaining
// validation set, preserving order (shuffle first for a random split).
func (d Dataset) Split(trainFrac float64) (train, valid Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("data: trainFrac %v out of (0,1)", trainFrac)
	}
	n := int(math.Round(float64(len(d)) * trainFrac))
	if n == 0 || n == len(d) {
		return nil, nil, errors.New("data: split produced an empty side")
	}
	return d[:n], d[n:], nil
}

// Batches cuts d into contiguous batches of at most size examples.
func (d Dataset) Batches(size int) []Dataset {
	if size <= 0 {
		size = 1
	}
	var out []Dataset
	for lo := 0; lo < len(d); lo += size {
		hi := lo + size
		if hi > len(d) {
			hi = len(d)
		}
		out = append(out, d[lo:hi])
	}
	return out
}

// PaperImbalancedRatios is the client data-share vector from the paper's
// feasibility study (Sec. IV-B1), summing to 1 across 8 clients.
var PaperImbalancedRatios = []float64{0.29, 0.22, 0.17, 0.14, 0.09, 0.04, 0.03, 0.02}

// PartitionBalanced splits d into n near-equal shards (the paper's
// "balanced data" scheme: identical data volume per client).
func PartitionBalanced(d Dataset, n int) ([]Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("data: PartitionBalanced n=%d", n)
	}
	if len(d) < n {
		return nil, fmt.Errorf("data: %d examples cannot cover %d clients", len(d), n)
	}
	out := make([]Dataset, n)
	for i := range out {
		lo := i * len(d) / n
		hi := (i + 1) * len(d) / n
		out[i] = d[lo:hi]
	}
	return out, nil
}

// PartitionRatios splits d by the given share ratios (the paper's
// "imbalanced data" scheme). Ratios must be positive and sum to ~1.
func PartitionRatios(d Dataset, ratios []float64) ([]Dataset, error) {
	if len(ratios) == 0 {
		return nil, errors.New("data: empty ratios")
	}
	var sum float64
	for _, r := range ratios {
		if r <= 0 {
			return nil, fmt.Errorf("data: non-positive ratio %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("data: ratios sum to %v, want 1", sum)
	}
	out := make([]Dataset, len(ratios))
	lo := 0
	var acc float64
	for i, r := range ratios {
		acc += r
		hi := int(math.Round(acc * float64(len(d))))
		if i == len(ratios)-1 {
			hi = len(d)
		}
		if hi <= lo {
			return nil, fmt.Errorf("data: ratio %d produced empty shard", i)
		}
		out[i] = d[lo:hi]
		lo = hi
	}
	return out, nil
}

// SmallSubset returns the first frac of d (the paper's "small dataset"
// lower-bound scheme: a single site training alone on its own shard).
func SmallSubset(d Dataset, frac float64) (Dataset, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("data: SmallSubset frac %v out of (0,1]", frac)
	}
	n := int(math.Round(frac * float64(len(d))))
	if n == 0 {
		return nil, errors.New("data: SmallSubset is empty")
	}
	return d[:n], nil
}
