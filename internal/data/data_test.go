package data

import (
	"math"
	"testing"
	"testing/quick"

	"clinfl/internal/tensor"
)

func makeDataset(n int) Dataset {
	ds := make(Dataset, n)
	for i := range ds {
		ds[i] = Example{
			IDs:     []int{2, 10 + i, 3, 0},
			PadMask: []bool{false, false, false, true},
			Label:   i % 2,
		}
	}
	return ds
}

func TestExampleLen(t *testing.T) {
	e := Example{PadMask: []bool{false, false, true, true}}
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
}

func TestLabelsAndPositiveRate(t *testing.T) {
	ds := makeDataset(10)
	labels := ds.Labels()
	if len(labels) != 10 || labels[1] != 1 {
		t.Fatalf("labels %v", labels)
	}
	if r := ds.PositiveRate(); r != 0.5 {
		t.Fatalf("positive rate %v", r)
	}
	if r := (Dataset{}).PositiveRate(); r != 0 {
		t.Fatalf("empty positive rate %v", r)
	}
}

func TestShuffledIsPermutationAndDeterministic(t *testing.T) {
	ds := makeDataset(50)
	a := ds.Shuffled(tensor.NewRNG(7))
	b := ds.Shuffled(tensor.NewRNG(7))
	if len(a) != 50 {
		t.Fatal("length changed")
	}
	seen := make(map[int]bool)
	for i := range a {
		seen[a[i].IDs[1]] = true
		if a[i].IDs[1] != b[i].IDs[1] {
			t.Fatal("same seed shuffles differ")
		}
	}
	if len(seen) != 50 {
		t.Fatal("shuffle dropped or duplicated examples")
	}
}

func TestSplit(t *testing.T) {
	ds := makeDataset(10)
	tr, va, err := ds.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 8 || len(va) != 2 {
		t.Fatalf("split %d/%d", len(tr), len(va))
	}
	if _, _, err := ds.Split(0); err == nil {
		t.Fatal("want error for frac 0")
	}
	if _, _, err := ds.Split(1); err == nil {
		t.Fatal("want error for frac 1")
	}
}

func TestBatches(t *testing.T) {
	ds := makeDataset(10)
	bs := ds.Batches(4)
	if len(bs) != 3 || len(bs[0]) != 4 || len(bs[2]) != 2 {
		t.Fatalf("batches %v", len(bs))
	}
	total := 0
	for _, b := range bs {
		total += len(b)
	}
	if total != 10 {
		t.Fatal("batches lost examples")
	}
}

func TestPartitionBalanced(t *testing.T) {
	ds := makeDataset(17)
	parts, err := PartitionBalanced(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		if len(p) < 4 || len(p) > 5 {
			t.Fatalf("unbalanced shard size %d", len(p))
		}
		total += len(p)
	}
	if total != 17 {
		t.Fatalf("partition covers %d of 17", total)
	}
	if _, err := PartitionBalanced(ds, 0); err == nil {
		t.Fatal("want error for 0 clients")
	}
	if _, err := PartitionBalanced(makeDataset(2), 4); err == nil {
		t.Fatal("want error for too few examples")
	}
}

func TestPaperRatiosSumToOne(t *testing.T) {
	var sum float64
	for _, r := range PaperImbalancedRatios {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("paper ratios sum to %v", sum)
	}
	if len(PaperImbalancedRatios) != 8 {
		t.Fatalf("paper has 8 clients, ratios have %d", len(PaperImbalancedRatios))
	}
}

func TestPartitionRatios(t *testing.T) {
	ds := makeDataset(100)
	parts, err := PartitionRatios(ds, PaperImbalancedRatios)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 8 {
		t.Fatalf("%d shards", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 100 {
		t.Fatalf("ratio partition covers %d of 100", total)
	}
	// Largest shard ~29, smallest ~2.
	if len(parts[0]) < 25 || len(parts[0]) > 33 {
		t.Fatalf("first shard %d, want ~29", len(parts[0]))
	}
	if len(parts[7]) < 1 || len(parts[7]) > 4 {
		t.Fatalf("last shard %d, want ~2", len(parts[7]))
	}
}

func TestPartitionRatiosErrors(t *testing.T) {
	ds := makeDataset(100)
	if _, err := PartitionRatios(ds, nil); err == nil {
		t.Fatal("want error for empty ratios")
	}
	if _, err := PartitionRatios(ds, []float64{0.5, 0.4}); err == nil {
		t.Fatal("want error for ratios not summing to 1")
	}
	if _, err := PartitionRatios(ds, []float64{1.2, -0.2}); err == nil {
		t.Fatal("want error for negative ratio")
	}
	if _, err := PartitionRatios(makeDataset(4), PaperImbalancedRatios); err == nil {
		t.Fatal("want error when a shard is empty")
	}
}

func TestSmallSubset(t *testing.T) {
	ds := makeDataset(80)
	sub, err := SmallSubset(ds, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 10 {
		t.Fatalf("subset %d, want 10", len(sub))
	}
	if _, err := SmallSubset(ds, 0); err == nil {
		t.Fatal("want error for frac 0")
	}
	if _, err := SmallSubset(ds, 1.5); err == nil {
		t.Fatal("want error for frac > 1")
	}
}

// Property: any valid ratio partition covers the dataset exactly, in order,
// without overlap.
func TestPartitionCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 40 + rng.Intn(100)
		ds := makeDataset(n)
		parts, err := PartitionRatios(ds, PaperImbalancedRatios)
		if err != nil {
			return n < 40 // only tiny datasets may fail
		}
		idx := 0
		for _, p := range parts {
			for _, e := range p {
				if e.IDs[1] != ds[idx].IDs[1] {
					return false
				}
				idx++
			}
		}
		return idx == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
