package tensor

import (
	"fmt"
	"math"
	"sync"

	"clinfl/internal/sched"
)

// Quantized storage formats for client-side inference and uplink transport.
//
// Two formats, chosen for where each actually pays on commodity federated
// clients (see DESIGN.md "Quantization error model"):
//
//   - f16 (IEEE 754 binary16): a storage format. Weights round-trip through
//     half precision (~3 decimal digits, unit roundoff 2^-11) and compute
//     upcasts to f64 — scalar CPUs have no half-precision ALU, so the win
//     is halved weight bytes, not flops.
//   - int8 symmetric: per-row (activations) and per-column (weights)
//     scales, int32 accumulation. 8× smaller than f64 on the wire, which
//     is what the federated uplink codec cares about; on scalar CPUs the
//     int8 ALU is no faster than f64 FMA, so compute again values memory
//     traffic over arithmetic.
//
// Both formats are exercised by the eval-precision path (EvalMatMul) so the
// accuracy cost is measurable end to end (`flsim -exp kernels`).

// Precision selects the numeric format eval-mode dense compute runs in.
// The zero value is full f64.
type Precision uint8

const (
	// PrecF64 is the full-precision default.
	PrecF64 Precision = iota
	// PrecF16 rounds weights through IEEE half precision.
	PrecF16
	// PrecInt8 quantizes weights per-column and activations per-row to
	// symmetric int8 with int32 accumulation.
	PrecInt8
)

// String returns the flag-friendly name ("f64", "f16", "int8").
func (p Precision) String() string {
	switch p {
	case PrecF16:
		return "f16"
	case PrecInt8:
		return "int8"
	default:
		return "f64"
	}
}

// ParsePrecision parses a precision name as accepted by config flags.
// The empty string means f64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64":
		return PrecF64, nil
	case "f16":
		return PrecF16, nil
	case "int8":
		return PrecInt8, nil
	}
	return PrecF64, fmt.Errorf("tensor: unknown precision %q (want f64, f16 or int8)", s)
}

// --- IEEE 754 binary16 conversions ---

// F16FromF32 converts f to IEEE 754 binary16 with round-to-nearest-even,
// saturating overflow to ±Inf and flushing sub-2^-24 magnitudes to ±0.
func F16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b >> 16 & 0x8000)
	exp := int32(b>>23&0xff) - 127
	man := b & 0x7fffff
	switch {
	case exp == 128: // Inf or NaN
		if man != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp > 15: // too large for binary16: ±Inf
		return sign | 0x7c00
	case exp >= -14: // normal range: 10-bit mantissa, RNE on 13 dropped bits
		m := man >> 13
		if rem := man & 0x1fff; rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++ // a mantissa carry overflows into the exponent correctly
		}
		return sign | uint16(uint32(exp+15)<<10+m)
	case exp >= -24: // subnormal: value becomes man16 × 2^-24
		// Restore the implicit bit: |f| = (man|1<<23) × 2^(exp-23), so the
		// binary16 mantissa is that integer shifted right by -(exp+1)+13
		// bits, rounded to nearest even.
		full := man | 1<<23
		shift := uint32(13 - (exp + 1))
		m := full >> shift
		rem := full & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return sign | uint16(m)
	default: // underflow to signed zero
		return sign
	}
}

// F16ToF32 converts an IEEE 754 binary16 value to float32 (exact).
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf or NaN
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	case man != 0: // subnormal: man × 2^-24
		f := float32(man) * (1.0 / (1 << 24))
		if sign != 0 {
			return -f
		}
		return f
	default:
		return math.Float32frombits(sign) // signed zero
	}
}

// F16FromF64 rounds x through float32 and then binary16. The double
// rounding can differ from a direct f64→f16 RNE by one ulp in rare
// mid-point cases; the uplink and storage paths all quantize from f32
// payloads, so this matches what a wire round-trip produces.
func F16FromF64(x float64) uint16 { return F16FromF32(float32(x)) }

// F16ToF64 converts a binary16 value to float64 (exact).
func F16ToF64(h uint16) float64 { return float64(F16ToF32(h)) }

// F16Matrix is a matrix stored in IEEE 754 binary16, halving weight bytes.
type F16Matrix struct {
	rows, cols int
	data       []uint16
}

// QuantizeF16 converts m to binary16 storage.
func QuantizeF16(m *Matrix) *F16Matrix {
	q := &F16Matrix{rows: m.rows, cols: m.cols, data: make([]uint16, len(m.data))}
	for i, x := range m.data {
		q.data[i] = F16FromF64(x)
	}
	return q
}

// Rows returns the row count.
func (q *F16Matrix) Rows() int { return q.rows }

// Cols returns the column count.
func (q *F16Matrix) Cols() int { return q.cols }

// Dequantize expands the matrix back to float64.
func (q *F16Matrix) Dequantize() *Matrix {
	m := New(q.rows, q.cols)
	for i, h := range q.data {
		m.data[i] = F16ToF64(h)
	}
	return m
}

// --- symmetric int8 quantization ---

// int8AccMaxK bounds the inner dimension of int8 matmuls: int8×int8
// products reach 127² = 16129, so int32 accumulation is exact while
// k ≤ (2³¹−1)/16129 ≈ 133k. Shapes in this codebase top out at a few
// thousand; the bound exists so the kernel can promise exactness.
const int8AccMaxK = (1<<31 - 1) / (127 * 127)

// Int8ColMatrix stores a k×n weight matrix quantized per column to
// symmetric int8, laid out column-major so a matmul's inner loop streams
// one contiguous column per output element. scales[j] dequantizes column
// j: w[i][j] ≈ float64(data[j*k+i]) * scales[j].
type Int8ColMatrix struct {
	k, n   int
	data   []int8
	scales []float64
}

// QuantizeInt8Cols quantizes w per column: scale = maxabs/127, values
// round to nearest. An all-zero column gets scale 0 and zero codes.
func QuantizeInt8Cols(w *Matrix) *Int8ColMatrix {
	k, n := w.rows, w.cols
	q := &Int8ColMatrix{k: k, n: n, data: make([]int8, k*n), scales: make([]float64, n)}
	for j := 0; j < n; j++ {
		maxAbs := 0.0
		for i := 0; i < k; i++ {
			if v := math.Abs(w.data[i*n+j]); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			continue
		}
		scale := maxAbs / 127
		q.scales[j] = scale
		inv := 1 / scale
		col := q.data[j*k : (j+1)*k]
		for i := 0; i < k; i++ {
			col[i] = int8(math.Round(w.data[i*n+j] * inv))
		}
	}
	return q
}

// Rows returns the inner (k) dimension.
func (q *Int8ColMatrix) Rows() int { return q.k }

// Cols returns the column count.
func (q *Int8ColMatrix) Cols() int { return q.n }

// Dequantize expands the matrix back to float64.
func (q *Int8ColMatrix) Dequantize() *Matrix {
	m := New(q.k, q.n)
	for j := 0; j < q.n; j++ {
		col := q.data[j*q.k : (j+1)*q.k]
		for i, c := range col {
			m.data[i*q.n+j] = float64(c) * q.scales[j]
		}
	}
	return m
}

// quantizeRowInt8 quantizes one activation row symmetrically, returning
// the dequantization scale (maxabs/127; 0 for an all-zero row).
func quantizeRowInt8(dst []int8, row []float64) float64 {
	maxAbs := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		clear(dst)
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range row {
		dst[i] = int8(math.Round(v * inv))
	}
	return scale
}

// quantScratch recycles the int8 / float64 scratch EvalMatMul needs, so
// steady-state quantized eval allocates nothing. A plain mutex-guarded
// free list (like the kernel-job pool) survives GC cycles.
var quantScratch struct {
	mu  sync.Mutex
	i8  [][]int8
	f64 [][]float64
}

func getI8(n int) []int8 {
	quantScratch.mu.Lock()
	defer quantScratch.mu.Unlock()
	if k := len(quantScratch.i8); k > 0 {
		s := quantScratch.i8[k-1]
		quantScratch.i8 = quantScratch.i8[:k-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int8, n)
}

func putI8(s []int8) {
	quantScratch.mu.Lock()
	quantScratch.i8 = append(quantScratch.i8, s)
	quantScratch.mu.Unlock()
}

func getF64(n int) []float64 {
	quantScratch.mu.Lock()
	defer quantScratch.mu.Unlock()
	if k := len(quantScratch.f64); k > 0 {
		s := quantScratch.f64[k-1]
		quantScratch.f64 = quantScratch.f64[:k-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func putF64(s []float64) {
	quantScratch.mu.Lock()
	quantScratch.f64 = append(quantScratch.f64, s)
	quantScratch.mu.Unlock()
}

// MatMulInt8Into computes dst = x·dequant(w) with x quantized per row to
// symmetric int8 and exact int32 accumulation: dst[i][j] =
// (Σ_k qx[i][k]·qw[k][j]) · sx[i] · sw[j]. dst must be x.rows×w.n and may
// be uninitialized memory. Output rows fan out on the shared pool; each
// element is one int32 dot, so results are bit-identical at every width.
func MatMulInt8Into(dst, x *Matrix, w *Int8ColMatrix) error {
	if x.cols != w.k {
		return fmt.Errorf("%w: MatMulInt8Into %dx%d × %dx%d",
			ErrShape, x.rows, x.cols, w.k, w.n)
	}
	if dst.rows != x.rows || dst.cols != w.n {
		return fmt.Errorf("%w: MatMulInt8Into dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, x.rows, w.n)
	}
	if x.cols > int8AccMaxK {
		return fmt.Errorf("%w: MatMulInt8Into inner dim %d exceeds exact int32 accumulation bound %d",
			ErrShape, x.cols, int8AccMaxK)
	}
	m, k := x.rows, x.cols
	qx := getI8(m * k)
	sx := getF64(m)
	for i := 0; i < m; i++ {
		sx[i] = quantizeRowInt8(qx[i*k:(i+1)*k], x.data[i*k:(i+1)*k])
	}
	j := int8MatMulJob{dst: dst, w: w, qx: qx, sx: sx}
	pool := sched.Default()
	if pool.WouldFork(m, 2*k*w.n) {
		pool.ParallelFor(m, 2*k*w.n, &j)
	} else {
		j.Run(0, m)
	}
	putI8(qx)
	putF64(sx)
	return nil
}

// int8MatMulJob is the sched.Body fanning int8 matmul output rows.
type int8MatMulJob struct {
	dst *Matrix
	w   *Int8ColMatrix
	qx  []int8
	sx  []float64
}

// Run computes output rows [lo, hi).
func (j *int8MatMulJob) Run(lo, hi int) {
	k, n := j.w.k, j.w.n
	for i := lo; i < hi; i++ {
		orow := j.dst.data[i*n : (i+1)*n]
		if j.sx[i] == 0 {
			clear(orow)
			continue
		}
		xrow := j.qx[i*k : (i+1)*k]
		for col := 0; col < n; col++ {
			wcol := j.w.data[col*k : (col+1)*k]
			var acc int32
			for p, xv := range xrow {
				acc += int32(xv) * int32(wcol[p])
			}
			orow[col] = float64(acc) * j.sx[i] * j.w.scales[col]
		}
	}
}

// MatMulF16Into computes dst = x·dequant(w) for binary16-stored weights.
// Scalar CPUs have no half ALU, so the kernel dequantizes w into pooled
// f64 scratch once (O(k·n), amortized against the O(m·k·n) matmul) and
// runs the full-precision kernels. dst may be uninitialized memory.
func MatMulF16Into(dst, x *Matrix, w *F16Matrix) error {
	if x.cols != w.rows {
		return fmt.Errorf("%w: MatMulF16Into %dx%d × %dx%d",
			ErrShape, x.rows, x.cols, w.rows, w.cols)
	}
	if dst.rows != x.rows || dst.cols != w.cols {
		return fmt.Errorf("%w: MatMulF16Into dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, x.rows, w.cols)
	}
	buf := getF64(len(w.data))
	for i, h := range w.data {
		buf[i] = F16ToF64(h)
	}
	bm := Matrix{rows: w.rows, cols: w.cols, data: buf}
	matmulInto(dst, x, &bm, true)
	putF64(buf)
	return nil
}

// EvalMatMul computes dst = x·w with w passed through storage precision p:
// PrecF64 runs the plain kernels, PrecF16 rounds w through binary16, and
// PrecInt8 quantizes w per column and x per row to symmetric int8. The
// quantized paths use pooled scratch, so steady-state eval stays
// allocation-light; dst may be uninitialized memory in every mode.
func EvalMatMul(dst, x, w *Matrix, p Precision) error {
	switch p {
	case PrecF16:
		q := F16Matrix{rows: w.rows, cols: w.cols, data: quantizeF16Pooled(w)}
		err := MatMulF16Into(dst, x, &q)
		putU16(q.data)
		return err
	case PrecInt8:
		q := quantizeInt8ColsPooled(w)
		err := MatMulInt8Into(dst, x, q)
		putI8(q.data)
		putF64(q.scales)
		return err
	default:
		return MatMulInto(dst, x, w)
	}
}

// u16 scratch pool for the pooled f16 quantizer.
var u16Scratch struct {
	mu   sync.Mutex
	free [][]uint16
}

func getU16(n int) []uint16 {
	u16Scratch.mu.Lock()
	defer u16Scratch.mu.Unlock()
	if k := len(u16Scratch.free); k > 0 {
		s := u16Scratch.free[k-1]
		u16Scratch.free = u16Scratch.free[:k-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]uint16, n)
}

func putU16(s []uint16) {
	u16Scratch.mu.Lock()
	u16Scratch.free = append(u16Scratch.free, s)
	u16Scratch.mu.Unlock()
}

// quantizeF16Pooled converts w to binary16 codes in pooled scratch.
func quantizeF16Pooled(w *Matrix) []uint16 {
	data := getU16(len(w.data))
	for i, x := range w.data {
		data[i] = F16FromF64(x)
	}
	return data
}

// quantizeInt8ColsPooled is QuantizeInt8Cols backed by pooled scratch.
func quantizeInt8ColsPooled(w *Matrix) *Int8ColMatrix {
	k, n := w.rows, w.cols
	q := &Int8ColMatrix{k: k, n: n, data: getI8(k * n), scales: getF64(n)}
	for j := 0; j < n; j++ {
		maxAbs := 0.0
		for i := 0; i < k; i++ {
			if v := math.Abs(w.data[i*n+j]); v > maxAbs {
				maxAbs = v
			}
		}
		col := q.data[j*k : (j+1)*k]
		if maxAbs == 0 {
			q.scales[j] = 0
			clear(col)
			continue
		}
		scale := maxAbs / 127
		q.scales[j] = scale
		inv := 1 / scale
		for i := 0; i < k; i++ {
			col[i] = int8(math.Round(w.data[i*n+j] * inv))
		}
	}
	return q
}
