//go:build !amd64.v3

package tensor

// Portable scalar kernel variant: streaming k-quad kernels that sit at the
// two-FP-ops-per-cycle port bound. See gemm.go for the calibration story
// and gemm_fma.go for the GOAMD64=v3 fused variant.

const kernelVariant = "scalar"

// matmulRowsKernel computes output rows [lo, hi) of a×b, assigning when
// assign (callers may pass uninitialized output memory) and accumulating
// otherwise. Each row's element order is fixed (ascending k), so results
// are bit-identical at every pool width.
func matmulRowsKernel(out, a, b *Matrix, lo, hi int, assign bool) {
	k, n := a.cols, b.cols
	for i := lo; i < hi; i++ {
		orow := out.data[i*n : (i+1)*n]
		arow := a.data[i*k : (i+1)*k]
		if assign {
			matmulRowAssign(orow, arow, b, k, n)
		} else {
			matmulRow(orow, arow, b, k, n)
		}
	}
}
