package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"clinfl/internal/sched"
)

// TestF16KnownCodes pins the binary16 encoding against hand-checked values.
func TestF16KnownCodes(t *testing.T) {
	cases := []struct {
		x    float64
		code uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff}, // largest finite binary16
		{65536, 0x7c00}, // overflow saturates to +Inf
		{math.Inf(1), 0x7c00},
		{math.Inf(-1), 0xfc00},
		{0x1p-14, 0x0400}, // smallest normal
		{0x1p-24, 0x0001}, // smallest subnormal
		{0x1p-26, 0x0000}, // underflows to zero (RNE: below half ulp)
		{0.5, 0x3800},
		{0.099975586, 0x2e66}, // nearest binary16 to 0.1
	}
	for _, c := range cases {
		if got := F16FromF64(c.x); got != c.code {
			t.Errorf("F16FromF64(%g) = %#04x, want %#04x", c.x, got, c.code)
		}
	}
	if !math.IsNaN(F16ToF64(F16FromF64(math.NaN()))) {
		t.Error("NaN did not survive the f16 round trip")
	}
	if got := F16FromF64(math.Copysign(0, -1)); got != 0x8000 {
		t.Errorf("-0 encoded as %#04x, want 0x8000", got)
	}
}

// TestF16RoundTripBounds checks the property the quantization error model
// relies on: for finite inputs inside the binary16 range, one round trip
// is within half an ulp (relative 2^-11 for normals, absolute 2^-25 for
// subnormals), and a second round trip is exact (idempotence).
func TestF16RoundTripBounds(t *testing.T) {
	check := func(x float64) bool {
		// Map arbitrary float64s into the representable range.
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		for math.Abs(x) > 65504 {
			x /= 1 << 16
		}
		h := F16FromF64(x)
		rt := F16ToF64(h)
		var ok bool
		if math.Abs(x) < 0x1p-14 {
			ok = math.Abs(rt-x) <= 0x1p-25
		} else {
			ok = math.Abs(rt-x) <= math.Abs(x)*0x1p-11
		}
		if !ok {
			t.Logf("x=%g rt=%g err=%g", x, rt, math.Abs(rt-x))
			return false
		}
		// Idempotence: re-encoding a representable value changes nothing.
		return F16FromF64(rt) == h
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestF16MatrixRoundTrip checks QuantizeF16/Dequantize respect the same
// bound elementwise on a random matrix.
func TestF16MatrixRoundTrip(t *testing.T) {
	rng := NewRNG(21)
	m := rng.Normal(17, 23, 0, 1)
	rt := QuantizeF16(m).Dequantize()
	for i, x := range m.Data() {
		if math.Abs(rt.Data()[i]-x) > math.Abs(x)*0x1p-11+0x1p-25 {
			t.Fatalf("element %d: %g -> %g", i, x, rt.Data()[i])
		}
	}
}

// TestInt8RoundTripBound checks symmetric per-column int8 quantization:
// every element is within half a quantization step (scale/2 = maxabs/254)
// of its original, per column.
func TestInt8RoundTripBound(t *testing.T) {
	check := func(seed int64) bool {
		rng := NewRNG(seed)
		w := rng.Normal(13, 7, 0, 3)
		rt := QuantizeInt8Cols(w).Dequantize()
		for j := 0; j < w.Cols(); j++ {
			maxAbs := 0.0
			for i := 0; i < w.Rows(); i++ {
				if a := math.Abs(w.At(i, j)); a > maxAbs {
					maxAbs = a
				}
			}
			bound := maxAbs/254 + 1e-15
			for i := 0; i < w.Rows(); i++ {
				if math.Abs(rt.At(i, j)-w.At(i, j)) > bound {
					t.Logf("col %d: %g -> %g, bound %g", j, w.At(i, j), rt.At(i, j), bound)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// int8Ref recomputes the quantized matmul definition directly: per-row
// activation codes, per-column weight codes, integer dot, two dequant
// multiplies. MatMulInt8Into must match it bit for bit.
func int8Ref(x *Matrix, w *Int8ColMatrix) *Matrix {
	m, k, n := x.Rows(), w.Rows(), w.Cols()
	out := New(m, n)
	q := make([]int8, k)
	for i := 0; i < m; i++ {
		sx := quantizeRowInt8(q, x.Data()[i*k:(i+1)*k])
		if sx == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			var acc int64
			for p := 0; p < k; p++ {
				acc += int64(q[p]) * int64(w.data[j*k+p])
			}
			out.Data()[i*n+j] = float64(int32(acc)) * sx * w.scales[j]
		}
	}
	return out
}

// TestMatMulInt8MatchesReference checks the pooled kernel against the
// direct reference, bit-exactly, at several pool widths (integer dots have
// one possible answer, so width can never change the bits).
func TestMatMulInt8MatchesReference(t *testing.T) {
	rng := NewRNG(31)
	x := rng.Normal(65, 48, 0, 1)
	w := rng.Normal(48, 33, 0, 2)
	qw := QuantizeInt8Cols(w)
	want := int8Ref(x, qw)
	for _, width := range []int{1, 2, 4} {
		pool := sched.New(width)
		got := New(x.Rows(), w.Cols())
		func() {
			defer pool.Close()
			defer sched.SetDefault(sched.SetDefault(pool))
			if err := MatMulInt8Into(got, x, qw); err != nil {
				t.Fatal(err)
			}
		}()
		if !got.Equal(want) {
			t.Fatalf("width %d: int8 matmul differs from reference", width)
		}
	}
}

// TestMatMulInt8ApproximatesDense sanity-checks the end-to-end error
// against the full-precision product on well-conditioned inputs.
func TestMatMulInt8ApproximatesDense(t *testing.T) {
	rng := NewRNG(32)
	x := rng.Normal(20, 64, 0, 1)
	w := rng.Normal(64, 30, 0, 1)
	want, err := MatMul(x, w)
	if err != nil {
		t.Fatal(err)
	}
	got := New(20, 30)
	if err := MatMulInt8Into(got, x, QuantizeInt8Cols(w)); err != nil {
		t.Fatal(err)
	}
	// Quantization noise per product is ~maxabs/254 per factor; over k=64
	// N(0,1) terms the dot error stays well under 0.5 in practice. This is
	// a sanity rail, not a tight bound — the bit-exact contract lives in
	// TestMatMulInt8MatchesReference.
	for i, v := range want.Data() {
		if math.Abs(got.Data()[i]-v) > 0.5 {
			t.Fatalf("element %d: int8 %g vs dense %g", i, got.Data()[i], v)
		}
	}
}

// TestMatMulF16MatchesDequantized checks the f16 kernel equals running the
// plain kernel on the dequantized weights — the kernel is dequantize +
// dense, so this must be bit-exact.
func TestMatMulF16MatchesDequantized(t *testing.T) {
	rng := NewRNG(33)
	x := rng.Normal(9, 32, 0, 1)
	w := rng.Normal(32, 21, 0, 1)
	q := QuantizeF16(w)
	want, err := MatMul(x, q.Dequantize())
	if err != nil {
		t.Fatal(err)
	}
	got := New(9, 21)
	if err := MatMulF16Into(got, x, q); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("f16 matmul differs from dense on dequantized weights")
	}
}

// TestEvalMatMulModes checks EvalMatMul dispatches to the same results as
// the explicit quantized kernels, and that f64 mode is the plain product.
func TestEvalMatMulModes(t *testing.T) {
	rng := NewRNG(34)
	x := rng.Normal(12, 40, 0, 1)
	w := rng.Normal(40, 15, 0, 1)

	dense := New(12, 15)
	if err := MatMulInto(dense, x, w); err != nil {
		t.Fatal(err)
	}
	got := New(12, 15)
	if err := EvalMatMul(got, x, w, PrecF64); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(dense) {
		t.Fatal("EvalMatMul f64 differs from MatMulInto")
	}

	f16Want := New(12, 15)
	if err := MatMulF16Into(f16Want, x, QuantizeF16(w)); err != nil {
		t.Fatal(err)
	}
	if err := EvalMatMul(got, x, w, PrecF16); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f16Want) {
		t.Fatal("EvalMatMul f16 differs from MatMulF16Into")
	}

	i8Want := New(12, 15)
	if err := MatMulInt8Into(i8Want, x, QuantizeInt8Cols(w)); err != nil {
		t.Fatal(err)
	}
	if err := EvalMatMul(got, x, w, PrecInt8); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(i8Want) {
		t.Fatal("EvalMatMul int8 differs from MatMulInt8Into")
	}
}

// TestQuantShapeErrors checks every quantized entry point rejects
// mismatched shapes with ErrShape.
func TestQuantShapeErrors(t *testing.T) {
	x := New(3, 4)
	w := New(5, 2) // inner dim mismatch
	dst := New(3, 2)
	if err := MatMulInt8Into(dst, x, QuantizeInt8Cols(w)); err == nil {
		t.Error("int8 inner mismatch not rejected")
	}
	if err := MatMulF16Into(dst, x, QuantizeF16(w)); err == nil {
		t.Error("f16 inner mismatch not rejected")
	}
	wOK := New(4, 2)
	bad := New(2, 2) // wrong dst
	if err := MatMulInt8Into(bad, x, QuantizeInt8Cols(wOK)); err == nil {
		t.Error("int8 dst mismatch not rejected")
	}
	if err := MatMulF16Into(bad, x, QuantizeF16(wOK)); err == nil {
		t.Error("f16 dst mismatch not rejected")
	}
}

// TestParsePrecision covers the flag round trip.
func TestParsePrecision(t *testing.T) {
	for _, p := range []Precision{PrecF64, PrecF16, PrecInt8} {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePrecision(""); err != nil || p != PrecF64 {
		t.Errorf("empty precision = %v, %v; want f64", p, err)
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Error("unknown precision accepted")
	}
}
