package tensor

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of matrix initializations. All randomness in the
// library flows through explicitly seeded RNGs so experiments are
// reproducible bit-for-bit.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Rand exposes the underlying *rand.Rand for callers that need scalar draws.
func (g *RNG) Rand() *rand.Rand { return g.r }

// Reseed resets the RNG to the exact stream NewRNG(seed) would produce,
// without allocating; recycled training contexts reseed their dropout
// streams per sub-batch this way.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// Uniform returns a rows×cols matrix with entries drawn from U[lo, hi).
func (g *RNG) Uniform(rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	span := hi - lo
	for i := range m.data {
		m.data[i] = lo + span*g.r.Float64()
	}
	return m
}

// Normal returns a rows×cols matrix with entries drawn from N(mean, std²).
func (g *RNG) Normal(rows, cols int, mean, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = mean + std*g.r.NormFloat64()
	}
	return m
}

// Xavier returns a rows×cols matrix with Glorot/Xavier-uniform init, the
// default for linear projections: U[-a, a], a = sqrt(6/(fanIn+fanOut)).
func (g *RNG) Xavier(rows, cols int) *Matrix {
	a := math.Sqrt(6 / float64(rows+cols))
	return g.Uniform(rows, cols, -a, a)
}

// Kaiming returns He-normal init for ReLU-family activations:
// N(0, sqrt(2/fanIn)).
func (g *RNG) Kaiming(rows, cols int) *Matrix {
	std := math.Sqrt(2 / float64(rows))
	return g.Normal(rows, cols, 0, std)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Shuffle shuffles n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Split derives a child RNG from the parent stream; useful for giving each
// federated client an independent but reproducible stream.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}
