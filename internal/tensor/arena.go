package tensor

import "sync"

// Arena is a bump allocator for step-scoped Matrix values.
//
// Training builds thousands of short-lived matrices per step (activation
// values, gradients, backward scratch) whose lifetimes all end together when
// the tape that recorded them is reset. An Arena carves them out of large
// reusable slabs instead of the heap: Get bumps an offset, Reset rewinds it.
// After the first step every slab and Matrix header already exists, so a
// steady-state step performs zero allocations through the arena.
//
// Lifetime rule: a Matrix returned by Get (and anything aliasing its Data)
// is valid only until the next Reset. Callers that need a value to survive
// Reset must Clone it into the heap first. Get is safe for concurrent use
// (the parallel tape backward allocates gradient buffers from pool
// workers); Reset still requires the owning tape to be quiescent, the same
// discipline as Tape.Reset itself.
type Arena struct {
	mu    sync.Mutex
	slabs [][]float64
	slab  int // index of the slab currently being bumped
	off   int // offset into slabs[slab]

	headers []*Matrix // recycled Matrix headers, reused in order
	hdr     int       // next header index
}

// arenaMinSlabFloats is the size of the first slab (512 KiB of float64s).
// Subsequent slabs double, so an arena reaches any working-set size in a
// logarithmic number of allocations and then never allocates again.
const arenaMinSlabFloats = 1 << 16

// NewArena returns an empty arena. Slabs are allocated on demand.
func NewArena() *Arena { return &Arena{} }

// Get returns a zeroed rows×cols matrix backed by arena memory. The matrix
// (header and data) is recycled on Reset; see the type comment for the
// lifetime rule.
func (a *Arena) Get(rows, cols int) *Matrix {
	m := a.GetUninit(rows, cols)
	clear(m.data)
	return m
}

// GetUninit is Get without the zeroing pass: the returned matrix holds
// whatever the recycled slab last held. For outputs that are fully
// overwritten (assign-mode matmuls, elementwise maps) the clear is pure
// memory traffic — it cost ~12% of a BERT forward before this split.
// Callers that accumulate into the matrix must use Get.
func (a *Arena) GetUninit(rows, cols int) *Matrix {
	n := rows * cols
	if rows < 0 || cols < 0 {
		panic("tensor: arena Get with negative dimensions")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var data []float64
	if n > 0 {
		for a.slab >= len(a.slabs) || a.off+n > len(a.slabs[a.slab]) {
			if a.slab < len(a.slabs) {
				// Current slab can't fit the request; move on. The tail is
				// wasted until Reset, but doubling keeps waste bounded.
				a.slab++
				a.off = 0
				continue
			}
			size := arenaMinSlabFloats
			if last := len(a.slabs); last > 0 {
				size = 2 * len(a.slabs[last-1])
			}
			if size < n {
				size = n
			}
			a.slabs = append(a.slabs, make([]float64, size))
			a.off = 0
		}
		data = a.slabs[a.slab][a.off : a.off+n : a.off+n]
		a.off += n
	}
	var m *Matrix
	if a.hdr < len(a.headers) {
		m = a.headers[a.hdr]
	} else {
		m = new(Matrix)
		a.headers = append(a.headers, m)
	}
	a.hdr++
	*m = Matrix{rows: rows, cols: cols, data: data}
	return m
}

// Reset rewinds the arena, invalidating every matrix handed out since the
// previous Reset while retaining all slabs and headers for reuse.
func (a *Arena) Reset() {
	a.slab = 0
	a.off = 0
	a.hdr = 0
}

// Footprint returns the total float64 capacity held across all slabs,
// for memory accounting and tests.
func (a *Arena) Footprint() int {
	total := 0
	for _, s := range a.slabs {
		total += len(s)
	}
	return total
}

// Live returns the number of matrices handed out since the last Reset.
func (a *Arena) Live() int { return a.hdr }
