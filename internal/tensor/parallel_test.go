package tensor

import (
	"testing"

	"clinfl/internal/sched"
)

// TestMatMulBitIdenticalAcrossPoolWidths pins the pooled kernel contract:
// results (including the panel-packed path, whose parallel items are row
// quads) must be byte-for-byte identical at every pool width, on shapes
// both below and above the panel threshold.
func TestMatMulBitIdenticalAcrossPoolWidths(t *testing.T) {
	rng := NewRNG(11)
	shapes := [][3]int{
		{37, 64, 50},    // small: row-item dispatch, row kernel
		{67, 512, 1024}, // k*n = 512K floats: panel threshold, quad dispatch
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := rng.Normal(m, k, 0, 1)
		b := rng.Normal(k, n, 0, 1)

		run := func(width int) *Matrix {
			pool := sched.New(width)
			defer pool.Close()
			defer sched.SetDefault(sched.SetDefault(pool))
			out := New(m, n)
			if err := MatMulInto(out, a, b); err != nil {
				t.Fatal(err)
			}
			return out
		}

		ref := run(1)
		for _, width := range []int{2, 4} {
			got := run(width)
			rd, gd := ref.Data(), got.Data()
			for i := range rd {
				if rd[i] != gd[i] {
					t.Fatalf("shape %v width %d: out[%d] = %x, serial %x",
						sh, width, i, gd[i], rd[i])
				}
			}
		}
	}
}
