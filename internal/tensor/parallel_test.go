package tensor

import (
	"testing"

	"clinfl/internal/sched"
)

// TestMatMulBitIdenticalAcrossPoolWidths pins the pooled kernel contract:
// parallel items are whole output rows with a fixed per-row accumulation
// order, so results must be byte-for-byte identical at every pool width —
// in assign mode (MatMulInto), accumulate mode (MatMulAcc), and the
// transposed-B assign kernel (MatMulTransBInto), on shapes below and above
// the fork threshold. Within one build variant ("scalar" or "fma") this
// holds exactly; see gemm.go for the cross-variant caveat.
func TestMatMulBitIdenticalAcrossPoolWidths(t *testing.T) {
	rng := NewRNG(11)
	shapes := [][3]int{
		{37, 64, 50},    // small: stays inline at width 1
		{67, 512, 1024}, // large: forks with row-chunk stealing
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := rng.Normal(m, k, 0, 1)
		b := rng.Normal(k, n, 0, 1)
		bt := b.Transpose()

		run := func(width int) (assign, acc, transB *Matrix) {
			pool := sched.New(width)
			defer pool.Close()
			defer sched.SetDefault(sched.SetDefault(pool))
			assign = New(m, n)
			if err := MatMulInto(assign, a, b); err != nil {
				t.Fatal(err)
			}
			acc = New(m, n)
			if err := MatMulAcc(acc, a, b); err != nil {
				t.Fatal(err)
			}
			transB = New(m, n)
			if err := MatMulTransBInto(transB, a, bt); err != nil {
				t.Fatal(err)
			}
			return assign, acc, transB
		}

		refAssign, refAcc, refTransB := run(1)
		for _, width := range []int{2, 4} {
			gotAssign, gotAcc, gotTransB := run(width)
			for _, c := range []struct {
				name     string
				ref, got *Matrix
			}{
				{"assign", refAssign, gotAssign},
				{"acc", refAcc, gotAcc},
				{"transB", refTransB, gotTransB},
			} {
				if !c.got.Equal(c.ref) {
					t.Fatalf("shape %v width %d: %s kernel not bit-identical to width 1",
						sh, width, c.name)
				}
			}
		}
	}
}

// naiveMatMul is the textbook triple loop, the semantic reference for every
// dense kernel variant. Its summation order differs from the k-quad
// kernels', so comparisons are tolerance-based, not bit-based.
func naiveMatMul(a, b *Matrix) *Matrix {
	m, k, n := a.Rows(), b.Rows(), b.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data()[i*k+p]
			for j := 0; j < n; j++ {
				out.Data()[i*n+j] += av * b.Data()[p*n+j]
			}
		}
	}
	return out
}

// TestMatMulMatchesNaiveReference checks the streaming kernels (assign
// first-quad, zero-skip accumulation quads, scalar tail) against the
// naive triple loop across k values that exercise every code path: k<4
// (clear+row fallback), exact quads, and quad+tail shapes.
func TestMatMulMatchesNaiveReference(t *testing.T) {
	rng := NewRNG(12)
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31} {
		a := rng.Normal(6, k, 0, 1)
		b := rng.Normal(k, 11, 0, 1)
		got, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveMatMul(a, b); !got.AllClose(want, 1e-12, 1e-12) {
			t.Fatalf("k=%d: kernel differs from naive reference", k)
		}
	}
	// Zero-heavy A rows exercise the zero-skip quads without changing the
	// result (skipped terms contribute exactly zero in both orders).
	a := rng.Normal(5, 16, 0, 1)
	for i := 0; i < 5; i++ {
		for p := 4; p < 12; p++ {
			a.Set(i, p, 0)
		}
	}
	b := rng.Normal(16, 9, 0, 1)
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := naiveMatMul(a, b); !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatal("zero-skip path differs from naive reference")
	}
}
