package tensor

import "testing"

func TestArenaGetZeroesRecycledMemory(t *testing.T) {
	a := NewArena()
	m := a.Get(4, 4)
	m.Fill(7)
	a.Reset()
	m2 := a.Get(4, 4)
	for _, v := range m2.Data() {
		if v != 0 {
			t.Fatal("arena handed out dirty memory after Reset")
		}
	}
}

func TestArenaReusesSlabsAndHeaders(t *testing.T) {
	a := NewArena()
	shapes := [][2]int{{3, 5}, {1, 1}, {8, 2}, {0, 4}}
	for _, s := range shapes {
		a.Get(s[0], s[1])
	}
	foot, live := a.Footprint(), a.Live()
	if live != len(shapes) {
		t.Fatalf("live = %d, want %d", live, len(shapes))
	}
	for cycle := 0; cycle < 3; cycle++ {
		a.Reset()
		if a.Live() != 0 {
			t.Fatal("Live not reset")
		}
		for _, s := range shapes {
			m := a.Get(s[0], s[1])
			if m.Rows() != s[0] || m.Cols() != s[1] {
				t.Fatalf("cycle %d: got %dx%d, want %dx%d", cycle, m.Rows(), m.Cols(), s[0], s[1])
			}
		}
		if a.Footprint() != foot {
			t.Fatalf("cycle %d: footprint grew %d -> %d", cycle, foot, a.Footprint())
		}
	}
}

func TestArenaDistinctBackingWithinCycle(t *testing.T) {
	a := NewArena()
	m1 := a.Get(2, 2)
	m2 := a.Get(2, 2)
	m1.Fill(1)
	m2.Fill(2)
	if m1.At(0, 0) != 1 || m2.At(0, 0) != 2 {
		t.Fatal("arena matrices share backing memory within a cycle")
	}
}

func TestArenaSpillsToNewSlabs(t *testing.T) {
	a := NewArena()
	// Larger than the first slab (arenaMinSlabFloats) forces a spill; a
	// request larger than any doubling step forces a dedicated slab.
	small := a.Get(1, arenaMinSlabFloats/2)
	big := a.Get(2, arenaMinSlabFloats)
	huge := a.Get(8, arenaMinSlabFloats)
	for _, m := range []*Matrix{small, big, huge} {
		if len(m.Data()) != m.Rows()*m.Cols() {
			t.Fatal("spilled matrix has wrong backing length")
		}
	}
	big.Fill(3)
	if huge.At(0, 0) != 0 {
		t.Fatal("spilled slabs overlap")
	}
	foot := a.Footprint()
	a.Reset()
	a.Get(1, arenaMinSlabFloats/2)
	a.Get(2, arenaMinSlabFloats)
	a.Get(8, arenaMinSlabFloats)
	if a.Footprint() != foot {
		t.Fatalf("same request sequence grew footprint %d -> %d", foot, a.Footprint())
	}
}
