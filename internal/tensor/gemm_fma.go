//go:build amd64.v3

package tensor

import "math"

// Fused kernel variant for GOAMD64=v3 builds, where math.FMA compiles to a
// bare VFMADD (no per-call feature guard, which at v1 costs more than the
// fusion saves — see gemm.go). Fusing halves FP port pressure, so streaming
// each k-quad's four b rows against a PAIR of output rows overtakes the
// scalar port bound (measured 9.2 vs 6.6 GFLOP/s on the reference Xeon).
//
// Determinism: the per-row FMA chain is identical in the pair loop and the
// odd-row tail, so a row's bits do not depend on how chunk boundaries pair
// the rows — results stay bit-identical at every pool width. They differ
// from the scalar variant's (FMA skips one rounding per multiply), which is
// why KernelVariant gates exact-golden comparisons.

const kernelVariant = "fma"

// matmulRowsKernel computes output rows [lo, hi) of a×b, assigning when
// assign and accumulating otherwise.
func matmulRowsKernel(out, a, b *Matrix, lo, hi int, assign bool) {
	k, n := a.cols, b.cols
	i := lo
	for ; i+2 <= hi; i += 2 {
		fmaRowPair(out.data[i*n:(i+1)*n], out.data[(i+1)*n:(i+2)*n],
			a.data[i*k:(i+1)*k], a.data[(i+1)*k:(i+2)*k], b, k, n, assign)
	}
	if i < hi {
		fmaRow(out.data[i*n:(i+1)*n], a.data[i*k:(i+1)*k], b, k, n, assign)
	}
}

// fmaRowPair streams b's k-quads once against two output rows. Each row's
// arithmetic matches fmaRow exactly.
func fmaRowPair(o0, o1, a0, a1 []float64, b *Matrix, k, n int, assign bool) {
	if k < 4 {
		fmaRow(o0, a0, b, k, n, assign)
		fmaRow(o1, a1, b, k, n, assign)
		return
	}
	o1 = o1[:len(o0)]
	{
		x0, x1, x2, x3 := a0[0], a0[1], a0[2], a0[3]
		y0, y1, y2, y3 := a1[0], a1[1], a1[2], a1[3]
		b0 := b.data[0:n]
		b1 := b.data[n : 2*n]
		b2 := b.data[2*n : 3*n]
		b3 := b.data[3*n : 4*n]
		if assign {
			for j, bv := range b0 {
				bv1, bv2, bv3 := b1[j], b2[j], b3[j]
				o0[j] = math.FMA(x0, bv, math.FMA(x1, bv1, math.FMA(x2, bv2, x3*bv3)))
				o1[j] = math.FMA(y0, bv, math.FMA(y1, bv1, math.FMA(y2, bv2, y3*bv3)))
			}
		} else {
			for j, bv := range b0 {
				bv1, bv2, bv3 := b1[j], b2[j], b3[j]
				o0[j] = math.FMA(x0, bv, math.FMA(x1, bv1, math.FMA(x2, bv2, math.FMA(x3, bv3, o0[j]))))
				o1[j] = math.FMA(y0, bv, math.FMA(y1, bv1, math.FMA(y2, bv2, math.FMA(y3, bv3, o1[j]))))
			}
		}
	}
	p := 4
	for ; p+4 <= k; p += 4 {
		x0, x1, x2, x3 := a0[p], a0[p+1], a0[p+2], a0[p+3]
		y0, y1, y2, y3 := a1[p], a1[p+1], a1[p+2], a1[p+3]
		b0 := b.data[p*n : (p+1)*n]
		b1 := b.data[(p+1)*n : (p+2)*n]
		b2 := b.data[(p+2)*n : (p+3)*n]
		b3 := b.data[(p+3)*n : (p+4)*n]
		for j, bv := range b0 {
			bv1, bv2, bv3 := b1[j], b2[j], b3[j]
			o0[j] = math.FMA(x0, bv, math.FMA(x1, bv1, math.FMA(x2, bv2, math.FMA(x3, bv3, o0[j]))))
			o1[j] = math.FMA(y0, bv, math.FMA(y1, bv1, math.FMA(y2, bv2, math.FMA(y3, bv3, o1[j]))))
		}
	}
	for ; p < k; p++ {
		x, y := a0[p], a1[p]
		brow := b.data[p*n : (p+1)*n]
		for j, bv := range brow {
			o0[j] = math.FMA(x, bv, o0[j])
			o1[j] = math.FMA(y, bv, o1[j])
		}
	}
}

// fmaRow is the single-row form with the same per-row chain as fmaRowPair.
func fmaRow(orow, arow []float64, b *Matrix, k, n int, assign bool) {
	if k < 4 {
		if assign {
			clear(orow)
		}
		matmulRow(orow, arow, b, k, n)
		return
	}
	{
		x0, x1, x2, x3 := arow[0], arow[1], arow[2], arow[3]
		b0 := b.data[0:n]
		b1 := b.data[n : 2*n]
		b2 := b.data[2*n : 3*n]
		b3 := b.data[3*n : 4*n]
		if assign {
			for j, bv := range b0 {
				orow[j] = math.FMA(x0, bv, math.FMA(x1, b1[j], math.FMA(x2, b2[j], x3*b3[j])))
			}
		} else {
			for j, bv := range b0 {
				orow[j] = math.FMA(x0, bv, math.FMA(x1, b1[j], math.FMA(x2, b2[j], math.FMA(x3, b3[j], orow[j]))))
			}
		}
	}
	p := 4
	for ; p+4 <= k; p += 4 {
		x0, x1, x2, x3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		b0 := b.data[p*n : (p+1)*n]
		b1 := b.data[(p+1)*n : (p+2)*n]
		b2 := b.data[(p+2)*n : (p+3)*n]
		b3 := b.data[(p+3)*n : (p+4)*n]
		for j, bv := range b0 {
			orow[j] = math.FMA(x0, bv, math.FMA(x1, b1[j], math.FMA(x2, b2[j], math.FMA(x3, b3[j], orow[j]))))
		}
	}
	for ; p < k; p++ {
		x := arow[p]
		brow := b.data[p*n : (p+1)*n]
		for j, bv := range brow {
			orow[j] = math.FMA(x, bv, orow[j])
		}
	}
}
