package tensor

import (
	"errors"
	"testing"
)

// blockRef computes a block op by slicing blocks out and running the dense
// kernels, the reference the fused kernels must match.
func blockRef(t *testing.T, a, b *Matrix, block int, dense func(x, y *Matrix) (*Matrix, error)) *Matrix {
	t.Helper()
	nb := a.Rows() / block
	parts := make([]*Matrix, nb)
	for g := 0; g < nb; g++ {
		ag, err := a.SliceRows(g*block, (g+1)*block)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := b.SliceRows(g*block, (g+1)*block)
		if err != nil {
			t.Fatal(err)
		}
		parts[g], err = dense(ag, bg)
		if err != nil {
			t.Fatal(err)
		}
	}
	out, err := Concat(parts...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBlockMatMulMatchesPerBlockDense(t *testing.T) {
	rng := NewRNG(7)
	const block, nb, n = 5, 3, 4
	a := rng.Normal(nb*block, block, 0, 1)
	b := rng.Normal(nb*block, n, 0, 1)
	got, err := BlockMatMul(a, b, block)
	if err != nil {
		t.Fatal(err)
	}
	want := blockRef(t, a, b, block, MatMul)
	if !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatalf("BlockMatMul mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestBlockMatMulTransBMatchesPerBlockDense(t *testing.T) {
	rng := NewRNG(8)
	const block, nb, k = 4, 3, 6
	a := rng.Normal(nb*block, k, 0, 1)
	b := rng.Normal(nb*block, k, 0, 1)
	got, err := BlockMatMulTransB(a, b, block)
	if err != nil {
		t.Fatal(err)
	}
	want := blockRef(t, a, b, block, MatMulTransB)
	if !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatalf("BlockMatMulTransB mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestBlockMatMulTransAMatchesPerBlockDense(t *testing.T) {
	rng := NewRNG(9)
	const block, nb, m, n = 4, 3, 5, 6
	a := rng.Normal(nb*block, m, 0, 1)
	b := rng.Normal(nb*block, n, 0, 1)
	got, err := BlockMatMulTransA(a, b, block)
	if err != nil {
		t.Fatal(err)
	}
	want := blockRef(t, a, b, block, MatMulTransA)
	if !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatalf("BlockMatMulTransA mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestBlockMatMulSingleBlockEqualsDense(t *testing.T) {
	rng := NewRNG(10)
	a := rng.Normal(6, 6, 0, 1)
	b := rng.Normal(6, 3, 0, 1)
	got, err := BlockMatMul(a, b, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if KernelVariant() == "scalar" {
		// The scalar build's block and dense kernels share per-element
		// arithmetic, so single-block equality is bit-exact.
		if !got.Equal(want) {
			t.Fatal("single-block BlockMatMul differs from dense MatMul")
		}
	} else if !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatal("single-block BlockMatMul differs from dense MatMul beyond fused-kernel rounding")
	}
}

func TestBlockOpsLargeParallelPath(t *testing.T) {
	// Output exceeds matmulParallelThreshold to exercise the goroutine fan-out.
	rng := NewRNG(11)
	const block, nb, k = 32, 4, 24
	a := rng.Normal(nb*block, k, 0, 1)
	b := rng.Normal(nb*block, k, 0, 1)
	got, err := BlockMatMulTransB(a, b, block)
	if err != nil {
		t.Fatal(err)
	}
	want := blockRef(t, a, b, block, MatMulTransB)
	if !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatal("parallel BlockMatMulTransB mismatch")
	}
	got2, err := BlockMatMul(got, a, block)
	if err != nil {
		t.Fatal(err)
	}
	want2 := blockRef(t, want, a, block, MatMul)
	if !got2.AllClose(want2, 1e-12, 1e-12) {
		t.Fatal("parallel BlockMatMul mismatch")
	}
	got3, err := BlockMatMulTransA(a, b, block)
	if err != nil {
		t.Fatal(err)
	}
	want3 := blockRef(t, a, b, block, MatMulTransA)
	if !got3.AllClose(want3, 1e-12, 1e-12) {
		t.Fatal("parallel BlockMatMulTransA mismatch")
	}
}

func TestBlockOpsShapeErrors(t *testing.T) {
	a := New(6, 3)
	b := New(6, 3)
	cases := []error{}
	if _, err := BlockMatMul(a, b, 4); err != nil { // rows not divisible
		cases = append(cases, err)
	}
	if _, err := BlockMatMul(a, b, 2); err != nil { // cols != block
		cases = append(cases, err)
	}
	if _, err := BlockMatMulTransB(a, New(4, 3), 3); err != nil { // row mismatch
		cases = append(cases, err)
	}
	if _, err := BlockMatMulTransB(a, New(6, 2), 3); err != nil { // col mismatch
		cases = append(cases, err)
	}
	if _, err := BlockMatMulTransA(a, New(4, 2), 3); err != nil { // row mismatch
		cases = append(cases, err)
	}
	if _, err := BlockMatMul(a, b, 0); err != nil { // non-positive block
		cases = append(cases, err)
	}
	if len(cases) != 6 {
		t.Fatalf("expected 6 shape errors, got %d", len(cases))
	}
	for _, err := range cases {
		if !errors.Is(err, ErrShape) {
			t.Fatalf("error %v does not wrap ErrShape", err)
		}
	}
}
