// Package tensor provides dense float64 matrices and the numerical kernels
// (BLAS-like matmul, elementwise operations, reductions) that the autodiff
// engine and neural-network layers are built on.
//
// The package is deliberately small and allocation-conscious: a Matrix is a
// flat row-major []float64 plus dimensions, all hot loops are written over
// the flat slice, and matmul parallelizes across row blocks with goroutines.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) by operations whose operand shapes are
// incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Matrices are mutable; operations
// come in value-returning (allocating) and in-place flavours.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-filled rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice returns a rows x cols matrix that takes ownership of data.
// len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: FromSlice %dx%d needs %d values, got %d",
			ErrShape, rows, cols, rows*cols, len(data))
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// MustFromSlice is FromSlice that panics on error; intended for literals in
// tests and examples.
func MustFromSlice(rows, cols int, data []float64) *Matrix {
	m, err := FromSlice(rows, cols, data)
	if err != nil {
		panic(err)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: FromRows row %d has %d cols, want %d",
				ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Size returns the number of elements (rows*cols).
func (m *Matrix) Size() int { return len(m.data) }

// Data returns the underlying flat row-major slice. Mutating it mutates the
// matrix; callers that need isolation should Clone first.
func (m *Matrix) Data() []float64 { return m.data }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// SetRow copies v into row i. len(v) must equal Cols.
func (m *Matrix) SetRow(i int, v []float64) error {
	if len(v) != m.cols {
		return fmt.Errorf("%w: SetRow got %d values, want %d", ErrShape, len(v), m.cols)
	}
	copy(m.Row(i), v)
	return nil
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: CopyFrom %dx%d into %dx%d",
			ErrShape, src.rows, src.cols, m.rows, m.cols)
	}
	copy(m.data, src.data)
	return nil
}

// Zero resets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Reshape returns a view of the same data with new dimensions.
// rows*cols must equal the current size.
func (m *Matrix) Reshape(rows, cols int) (*Matrix, error) {
	if rows*cols != len(m.data) {
		return nil, fmt.Errorf("%w: Reshape %dx%d to %dx%d",
			ErrShape, m.rows, m.cols, rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: m.data}, nil
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool {
	return m.rows == o.rows && m.cols == o.cols
}

// Equal reports exact elementwise equality.
func (m *Matrix) Equal(o *Matrix) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports elementwise |a-b| <= atol + rtol*|b|.
func (m *Matrix) AllClose(o *Matrix, rtol, atol float64) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-o.data[i]) > atol+rtol*math.Abs(o.data[i]) {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or Inf.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String renders the matrix compactly for debugging.
func (m *Matrix) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
