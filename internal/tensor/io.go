package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// binary wire format: int64 rows, int64 cols, then rows*cols float64 bits,
// all little-endian. Used for model checkpoints and FL parameter transfer.

// WriteTo serializes m to w in the package's binary format.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(m.rows))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.cols))
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: write header: %w", err)
	}
	buf := make([]byte, 8*len(m.data))
	for i, v := range m.data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	k, err = w.Write(buf)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: write data: %w", err)
	}
	return n, nil
}

// maxReadElems caps a deserialized matrix at 2^27 elements (1 GiB of
// float64) — far above any model here, far below an OOM. Each dimension is
// capped before the product is taken in int64, so a corrupt header cannot
// wrap the check on any GOARCH (a fuzzed wire payload once slipped a
// makeslice panic through the old int-arithmetic bound).
const maxReadElems = 1 << 27

// ReadFrom deserializes a matrix from r, replacing m's contents. Data is
// read and decoded in bounded chunks, so a tiny corrupt blob declaring a
// huge shape fails with a read error after a small allocation instead of
// demanding the full declared size up front.
func (m *Matrix) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	hdr := make([]byte, 16)
	k, err := io.ReadFull(r, hdr)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: read header: %w", err)
	}
	rows := int64(binary.LittleEndian.Uint64(hdr[0:8]))
	cols := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	if rows < 0 || cols < 0 || rows > maxReadElems || cols > maxReadElems ||
		rows*cols > maxReadElems {
		return n, fmt.Errorf("tensor: implausible dimensions %dx%d", rows, cols)
	}
	elems := int(rows * cols)
	data := make([]float64, 0, min(elems, 64*1024/8))
	buf := make([]byte, 64*1024)
	for len(data) < elems {
		c := min(len(buf)/8, elems-len(data))
		k, err = io.ReadFull(r, buf[:c*8])
		n += int64(k)
		if err != nil {
			return n, fmt.Errorf("tensor: read data: %w", err)
		}
		for i := 0; i < c; i++ {
			data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	m.rows, m.cols = int(rows), int(cols)
	m.data = data[:elems:elems]
	return n, nil
}

var (
	_ io.WriterTo   = (*Matrix)(nil)
	_ io.ReaderFrom = (*Matrix)(nil)
)
