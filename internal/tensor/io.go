package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// binary wire format: int64 rows, int64 cols, then rows*cols float64 bits,
// all little-endian. Used for model checkpoints and FL parameter transfer.

// WriteTo serializes m to w in the package's binary format.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(m.rows))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.cols))
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: write header: %w", err)
	}
	buf := make([]byte, 8*len(m.data))
	for i, v := range m.data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	k, err = w.Write(buf)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: write data: %w", err)
	}
	return n, nil
}

// ReadFrom deserializes a matrix from r, replacing m's contents.
func (m *Matrix) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	hdr := make([]byte, 16)
	k, err := io.ReadFull(r, hdr)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: read header: %w", err)
	}
	rows := int(binary.LittleEndian.Uint64(hdr[0:8]))
	cols := int(binary.LittleEndian.Uint64(hdr[8:16]))
	if rows < 0 || cols < 0 || rows*cols > 1<<30 {
		return n, fmt.Errorf("tensor: implausible dimensions %dx%d", rows, cols)
	}
	buf := make([]byte, 8*rows*cols)
	k, err = io.ReadFull(r, buf)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("tensor: read data: %w", err)
	}
	m.rows, m.cols = rows, cols
	m.data = make([]float64, rows*cols)
	for i := range m.data {
		m.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return n, nil
}

var (
	_ io.WriterTo   = (*Matrix)(nil)
	_ io.ReaderFrom = (*Matrix)(nil)
)
