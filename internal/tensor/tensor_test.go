package tensor

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 || m.Size() != 6 {
		t.Fatalf("got %dx%d size %d", m.Rows(), m.Cols(), m.Size())
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.Row(1)[2]; got != 7.5 {
		t.Fatalf("Row view = %v, want 7.5", got)
	}
}

func TestFromSliceShapeError(t *testing.T) {
	if _, err := FromSlice(2, 2, []float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MustFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := MustFromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulShapeError(t *testing.T) {
	a, b := New(2, 3), New(2, 3)
	if _, err := MatMul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(1)
	// Big enough to trigger the parallel path.
	a := rng.Normal(128, 96, 0, 1)
	b := rng.Normal(96, 128, 0, 1)
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Naive serial reference.
	want := New(128, 128)
	for i := 0; i < 128; i++ {
		for j := 0; j < 128; j++ {
			var s float64
			for k := 0; k < 96; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatal("parallel matmul differs from serial reference")
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a := rng.Normal(7, 5, 0, 1)
	b := rng.Normal(9, 5, 0, 1)
	got, err := MatMulTransB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(a, b.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatal("MatMulTransB differs from a×bᵀ")
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(3)
	a := rng.Normal(5, 7, 0, 1)
	b := rng.Normal(5, 9, 0, 1)
	got, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(a.Transpose(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(want, 1e-12, 1e-12) {
		t.Fatal("MatMulTransA differs from aᵀ×b")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(4)
	m := rng.Normal(6, 11, 0, 1)
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("transpose twice should be identity")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice(1, 3, []float64{1, 2, 3})
	b := MustFromSlice(1, 3, []float64{4, 5, 6})
	sum, _ := Add(a, b)
	if !sum.Equal(MustFromSlice(1, 3, []float64{5, 7, 9})) {
		t.Fatalf("Add = %v", sum)
	}
	diff, _ := Sub(a, b)
	if !diff.Equal(MustFromSlice(1, 3, []float64{-3, -3, -3})) {
		t.Fatalf("Sub = %v", diff)
	}
	prod, _ := Mul(a, b)
	if !prod.Equal(MustFromSlice(1, 3, []float64{4, 10, 18})) {
		t.Fatalf("Mul = %v", prod)
	}
	if s := Scale(2, a); !s.Equal(MustFromSlice(1, 3, []float64{2, 4, 6})) {
		t.Fatalf("Scale = %v", s)
	}
}

func TestAddRowVector(t *testing.T) {
	m := MustFromSlice(2, 2, []float64{1, 2, 3, 4})
	v := MustFromSlice(1, 2, []float64{10, 20})
	got, err := AddRowVector(m, v)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice(2, 2, []float64{11, 22, 13, 24})
	if !got.Equal(want) {
		t.Fatalf("AddRowVector = %v", got)
	}
}

func TestSumRowsAndReductions(t *testing.T) {
	m := MustFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := SumRows(m); !got.Equal(MustFromSlice(1, 3, []float64{5, 7, 9})) {
		t.Fatalf("SumRows = %v", got)
	}
	if m.Sum() != 21 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Mean() != 3.5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if m.MaxAbs() != 6 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.Norm()-math.Sqrt(91)) > 1e-12 {
		t.Fatalf("Norm = %v", m.Norm())
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := MustFromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	s := SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Large inputs must not overflow (stabilized by max subtraction).
	if s.HasNaN() {
		t.Fatal("softmax produced NaN on large inputs")
	}
	if math.Abs(s.At(1, 0)-1.0/3) > 1e-12 {
		t.Fatalf("uniform row should be 1/3, got %v", s.At(1, 0))
	}
}

func TestArgmaxRows(t *testing.T) {
	m := MustFromSlice(2, 3, []float64{1, 5, 3, 9, 2, 9})
	got := ArgmaxRows(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestConcatAndSlices(t *testing.T) {
	a := MustFromSlice(1, 2, []float64{1, 2})
	b := MustFromSlice(2, 2, []float64{3, 4, 5, 6})
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 3 || c.At(2, 1) != 6 {
		t.Fatalf("Concat = %v", c)
	}
	rows, err := c.SliceRows(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Equal(b) {
		t.Fatalf("SliceRows = %v", rows)
	}
	cols, err := c.SliceCols(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Cols() != 1 || cols.At(0, 0) != 2 {
		t.Fatalf("SliceCols = %v", cols)
	}
}

func TestReshape(t *testing.T) {
	m := MustFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r, err := m.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(2, 1) != 6 {
		t.Fatalf("Reshape At(2,1) = %v", r.At(2, 1))
	}
	if _, err := m.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := NewRNG(5)
	m := rng.Normal(17, 9, 0, 3)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Matrix
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip changed matrix")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Normal(4, 4, 0, 1)
	b := NewRNG(42).Normal(4, 4, 0, 1)
	if !a.Equal(b) {
		t.Fatal("same seed should give identical matrices")
	}
	c := NewRNG(43).Normal(4, 4, 0, 1)
	if a.Equal(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestXavierRange(t *testing.T) {
	m := NewRNG(7).Xavier(64, 64)
	bound := math.Sqrt(6.0 / 128.0)
	for _, v := range m.Data() {
		if v < -bound || v >= bound {
			t.Fatalf("xavier value %v outside ±%v", v, bound)
		}
	}
}

// Property: (A+B)+C == A+(B+C) elementwise (exact for integer-valued data).
func TestAddAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		a := rng.Uniform(3, 4, -8, 8).Apply(math.Round)
		b := rng.Uniform(3, 4, -8, 8).Apply(math.Round)
		c := rng.Uniform(3, 4, -8, 8).Apply(math.Round)
		ab, _ := Add(a, b)
		left, _ := Add(ab, c)
		bc, _ := Add(b, c)
		right, _ := Add(a, bc)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A(B+C) == AB + AC.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		a := rng.Normal(4, 5, 0, 1)
		b := rng.Normal(5, 3, 0, 1)
		c := rng.Normal(5, 3, 0, 1)
		bc, _ := Add(b, c)
		left, _ := MatMul(a, bc)
		ab, _ := MatMul(a, b)
		ac, _ := MatMul(a, c)
		right, _ := Add(ab, ac)
		return left.AllClose(right, 1e-9, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is linear: (A+B)ᵀ == Aᵀ + Bᵀ.
func TestTransposeLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		a := rng.Normal(3, 6, 0, 1)
		b := rng.Normal(3, 6, 0, 1)
		ab, _ := Add(a, b)
		left := ab.Transpose()
		right, _ := Add(a.Transpose(), b.Transpose())
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary matrices bit-exactly.
func TestSerializationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		m := rng.Normal(rows, cols, 0, 100)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		var got Matrix
		if _, err := got.ReadFrom(&buf); err != nil {
			return false
		}
		return got.Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsolation(t *testing.T) {
	m := MustFromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares backing data")
	}
}

func TestHasNaN(t *testing.T) {
	m := New(1, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix flagged as NaN")
	}
	m.Set(0, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}
