package tensor

import "fmt"

// Block-aware matmul kernels for batched transformer execution. A matrix
// whose rows are grouped into B consecutive blocks of `block` rows (the
// flattened (B·T)×d layout of a minibatch of B sequences of length T) is
// multiplied block-by-block so attention scores never cross sequence
// boundaries. The kernels reuse the same ikj/dot loops as the dense ops and
// parallelize across output rows once the work amortizes the goroutines.
//
// Every kernel comes in three forms: an allocating wrapper (BlockMatMul*),
// an overwriting Into form, and an accumulating Acc form used by autograd
// backward rules to add vector-Jacobian products straight into gradient
// buffers. All forms fold an alpha scale into the product (attention uses
// alpha = 1/√d on the score kernel), which costs nothing here and deletes a
// whole Scale node per head from the tape.

// checkBlocked validates that m's rows split into whole blocks of size block
// and returns the block count.
func checkBlocked(op string, m *Matrix, block int) (int, error) {
	if block <= 0 {
		return 0, fmt.Errorf("%w: %s block size %d", ErrShape, op, block)
	}
	if m.rows%block != 0 {
		return 0, fmt.Errorf("%w: %s %d rows not divisible into blocks of %d",
			ErrShape, op, m.rows, block)
	}
	return m.rows / block, nil
}

// BlockMatMul multiplies B row blocks independently: a is (B·block)×block,
// b is (B·block)×n, and output block g is a_g×b_g, stacked into (B·block)×n.
// In attention this is attn×V with per-sequence attention weights.
func BlockMatMul(a, b *Matrix, block int) (*Matrix, error) {
	if err := checkBlockMatMul("BlockMatMul", a, b, block); err != nil {
		return nil, err
	}
	out := New(a.rows, b.cols)
	blockMatMul(out, a, b, block, 1)
	return out, nil
}

// BlockMatMulInto computes dst = alpha·(a×b per block) without allocating,
// overwriting dst.
func BlockMatMulInto(dst, a, b *Matrix, block int, alpha float64) error {
	if err := checkBlockMatMul("BlockMatMulInto", a, b, block); err != nil {
		return err
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("%w: BlockMatMulInto dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, b.cols)
	}
	dst.Zero()
	blockMatMul(dst, a, b, block, alpha)
	return nil
}

// BlockMatMulAcc accumulates dst += alpha·(a×b per block) without allocating.
func BlockMatMulAcc(dst, a, b *Matrix, block int, alpha float64) error {
	if err := checkBlockMatMul("BlockMatMulAcc", a, b, block); err != nil {
		return err
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("%w: BlockMatMulAcc dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, b.cols)
	}
	blockMatMul(dst, a, b, block, alpha)
	return nil
}

func checkBlockMatMul(op string, a, b *Matrix, block int) error {
	if _, err := checkBlocked(op, a, block); err != nil {
		return err
	}
	if a.cols != block {
		return fmt.Errorf("%w: %s needs %d cols (block), got %dx%d",
			ErrShape, op, block, a.rows, a.cols)
	}
	if b.rows != a.rows {
		return fmt.Errorf("%w: %s a %dx%d × b %dx%d",
			ErrShape, op, a.rows, a.cols, b.rows, b.cols)
	}
	return nil
}

// blockMatMul accumulates alpha·(a×b per block) into out. The real
// per-row cost (2·block·n flops) is threaded to the pool, so the small
// per-head score×V products of short sequences run inline instead of
// fanning out workers for microseconds of work.
func blockMatMul(out, a, b *Matrix, block int, alpha float64) {
	var j kernelJob
	j.kind, j.out, j.a, j.b = kBlockMatMul, out, a, b
	j.block, j.alpha = block, alpha
	runKernel(a.rows, 2*block*b.cols, &j)
}

// blockMatMulRange accumulates rows [lo, hi) of alpha·(a×b per block) into
// out. Same 4-wide unrolled ikj kernel as the dense matmul tail, with b
// rows offset to this row's block. The zero-quad skip matters here:
// attention weights at padded key positions are exactly zero.
func blockMatMulRange(out, a, b *Matrix, block int, alpha float64, lo, hi int) {
	n := b.cols
	{
		for i := lo; i < hi; i++ {
			base := (i / block) * block // first b-row of this row's block
			arow := a.data[i*block : (i+1)*block]
			orow := out.data[i*n : (i+1)*n]
			p := 0
			for ; p+4 <= block; p += 4 {
				av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
					continue
				}
				av0 *= alpha
				av1 *= alpha
				av2 *= alpha
				av3 *= alpha
				b0 := b.data[(base+p)*n : (base+p+1)*n]
				b1 := b.data[(base+p+1)*n : (base+p+2)*n]
				b2 := b.data[(base+p+2)*n : (base+p+3)*n]
				b3 := b.data[(base+p+3)*n : (base+p+4)*n]
				for j, bv := range b0 {
					orow[j] += av0*bv + av1*b1[j] + av2*b2[j] + av3*b3[j]
				}
			}
			for ; p < block; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				av *= alpha
				brow := b.data[(base+p)*n : (base+p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// BlockMatMulTransB computes per-block a_g×b_gᵀ: a is (B·block)×k, b is
// (B·block)×k, output block g is block×block, stacked into (B·block)×block.
// In attention this is Q×Kᵀ restricted to each sequence's own keys.
func BlockMatMulTransB(a, b *Matrix, block int) (*Matrix, error) {
	if err := checkBlockTransB("BlockMatMulTransB", a, b, block); err != nil {
		return nil, err
	}
	out := New(a.rows, block)
	blockMatMulTransB(out, a, b, block, 1, false)
	return out, nil
}

// BlockMatMulTransBInto computes dst = alpha·(a×bᵀ per block) without
// allocating, overwriting dst. The attention score kernel: alpha carries the
// 1/√d scale so no separate scaling pass over the scores is needed.
func BlockMatMulTransBInto(dst, a, b *Matrix, block int, alpha float64) error {
	if err := checkBlockTransB("BlockMatMulTransBInto", a, b, block); err != nil {
		return err
	}
	if dst.rows != a.rows || dst.cols != block {
		return fmt.Errorf("%w: BlockMatMulTransBInto dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, block)
	}
	blockMatMulTransB(dst, a, b, block, alpha, false)
	return nil
}

// BlockMatMulTransBAcc accumulates dst += alpha·(a×bᵀ per block).
func BlockMatMulTransBAcc(dst, a, b *Matrix, block int, alpha float64) error {
	if err := checkBlockTransB("BlockMatMulTransBAcc", a, b, block); err != nil {
		return err
	}
	if dst.rows != a.rows || dst.cols != block {
		return fmt.Errorf("%w: BlockMatMulTransBAcc dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, block)
	}
	blockMatMulTransB(dst, a, b, block, alpha, true)
	return nil
}

func checkBlockTransB(op string, a, b *Matrix, block int) error {
	if _, err := checkBlocked(op, a, block); err != nil {
		return err
	}
	if b.rows != a.rows || b.cols != a.cols {
		return fmt.Errorf("%w: %s a %dx%d × (b %dx%d)ᵀ",
			ErrShape, op, a.rows, a.cols, b.rows, b.cols)
	}
	return nil
}

func blockMatMulTransB(out, a, b *Matrix, block int, alpha float64, acc bool) {
	var j kernelJob
	j.kind, j.out, j.a, j.b = kBlockMatMulTransB, out, a, b
	j.block, j.alpha, j.flag = block, alpha, acc
	runKernel(a.rows, 2*block*a.cols, &j)
}

// blockMatMulTransBRange computes rows [lo, hi) of alpha·(a×bᵀ per block)
// into out (accumulating when acc).
func blockMatMulTransBRange(out, a, b *Matrix, block int, alpha float64, acc bool, lo, hi int) {
	k := a.cols
	for i := lo; i < hi; i++ {
		base := (i / block) * block
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*block : (i+1)*block]
		if acc {
			for j := 0; j < block; j++ {
				orow[j] += alpha * dot(arow, b.data[(base+j)*k:(base+j+1)*k])
			}
		} else {
			for j := 0; j < block; j++ {
				orow[j] = alpha * dot(arow, b.data[(base+j)*k:(base+j+1)*k])
			}
		}
	}
}

// BlockMatMulTransA computes per-block a_gᵀ×b_g: a is (B·block)×m, b is
// (B·block)×n, output block g is m×n, stacked into (B·m)×n. It is the
// remaining vector-Jacobian product needed by the two block ops above.
func BlockMatMulTransA(a, b *Matrix, block int) (*Matrix, error) {
	nb, err := checkBlockTransA("BlockMatMulTransA", a, b, block)
	if err != nil {
		return nil, err
	}
	out := New(nb*a.cols, b.cols)
	blockMatMulTransA(out, a, b, block, 1)
	return out, nil
}

// BlockMatMulTransAAcc accumulates dst += alpha·(aᵀ×b per block).
func BlockMatMulTransAAcc(dst, a, b *Matrix, block int, alpha float64) error {
	nb, err := checkBlockTransA("BlockMatMulTransAAcc", a, b, block)
	if err != nil {
		return err
	}
	if dst.rows != nb*a.cols || dst.cols != b.cols {
		return fmt.Errorf("%w: BlockMatMulTransAAcc dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, nb*a.cols, b.cols)
	}
	blockMatMulTransA(dst, a, b, block, alpha)
	return nil
}

func checkBlockTransA(op string, a, b *Matrix, block int) (int, error) {
	nb, err := checkBlocked(op, a, block)
	if err != nil {
		return 0, err
	}
	if b.rows != a.rows {
		return 0, fmt.Errorf("%w: %s (a %dx%d)ᵀ × b %dx%d",
			ErrShape, op, a.rows, a.cols, b.rows, b.cols)
	}
	return nb, nil
}

// blockMatMulTransA accumulates alpha·(aᵀ×b per block) into out,
// parallelized over whole blocks (rows within a block share accumulators),
// with the true per-block cost (2·block·m·n flops) threaded to the pool.
func blockMatMulTransA(out, a, b *Matrix, block int, alpha float64) {
	m, n := a.cols, b.cols
	var j kernelJob
	j.kind, j.out, j.a, j.b = kBlockMatMulTransA, out, a, b
	j.block, j.alpha = block, alpha
	runKernel(a.rows/block, 2*block*m*n, &j)
}

// blockMatMulTransARange accumulates blocks [lo, hi) of alpha·(aᵀ×b per
// block) into out. out row g*m+i += sum_p a[g*block+p][i] * b row
// g*block+p; stream over p.
func blockMatMulTransARange(out, a, b *Matrix, block int, alpha float64, lo, hi int) {
	m, n := a.cols, b.cols
	for g := lo; g < hi; g++ {
		for p := 0; p < block; p++ {
			arow := a.data[(g*block+p)*m : (g*block+p+1)*m]
			brow := b.data[(g*block+p)*n : (g*block+p+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				av *= alpha
				orow := out.data[(g*m+i)*n : (g*m+i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}
