package tensor

import "fmt"

// Block-aware matmul kernels for batched transformer execution. A matrix
// whose rows are grouped into B consecutive blocks of `block` rows (the
// flattened (B·T)×d layout of a minibatch of B sequences of length T) is
// multiplied block-by-block so attention scores never cross sequence
// boundaries. The kernels reuse the same ikj/dot loops as the dense ops and
// parallelize across output rows once the output is large enough.

// checkBlocked validates that m's rows split into whole blocks of size block
// and returns the block count.
func checkBlocked(op string, m *Matrix, block int) (int, error) {
	if block <= 0 {
		return 0, fmt.Errorf("%w: %s block size %d", ErrShape, op, block)
	}
	if m.rows%block != 0 {
		return 0, fmt.Errorf("%w: %s %d rows not divisible into blocks of %d",
			ErrShape, op, m.rows, block)
	}
	return m.rows / block, nil
}

// BlockMatMul multiplies B row blocks independently: a is (B·block)×block,
// b is (B·block)×n, and output block g is a_g×b_g, stacked into (B·block)×n.
// In attention this is attn×V with per-sequence attention weights.
func BlockMatMul(a, b *Matrix, block int) (*Matrix, error) {
	if _, err := checkBlocked("BlockMatMul", a, block); err != nil {
		return nil, err
	}
	if a.cols != block {
		return nil, fmt.Errorf("%w: BlockMatMul needs %d cols (block), got %dx%d",
			ErrShape, block, a.rows, a.cols)
	}
	if b.rows != a.rows {
		return nil, fmt.Errorf("%w: BlockMatMul a %dx%d × b %dx%d",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	n := b.cols
	out := New(a.rows, n)
	// Same 4-wide unrolled ikj kernel as matmulInto, with b rows offset to
	// this row's block.
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := (i / block) * block // first b-row of this row's block
			arow := a.data[i*block : (i+1)*block]
			orow := out.data[i*n : (i+1)*n]
			p := 0
			for ; p+4 <= block; p += 4 {
				av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
					continue
				}
				b0 := b.data[(base+p)*n : (base+p+1)*n]
				b1 := b.data[(base+p+1)*n : (base+p+2)*n]
				b2 := b.data[(base+p+2)*n : (base+p+3)*n]
				b3 := b.data[(base+p+3)*n : (base+p+4)*n]
				for j, bv := range b0 {
					orow[j] += av0*bv + av1*b1[j] + av2*b2[j] + av3*b3[j]
				}
			}
			for ; p < block; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.data[(base+p)*n : (base+p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if a.rows*n < matmulParallelThreshold {
		work(0, a.rows)
	} else {
		parallelRows(a.rows, work)
	}
	return out, nil
}

// BlockMatMulTransB computes per-block a_g×b_gᵀ: a is (B·block)×k, b is
// (B·block)×k, output block g is block×block, stacked into (B·block)×block.
// In attention this is Q×Kᵀ restricted to each sequence's own keys.
func BlockMatMulTransB(a, b *Matrix, block int) (*Matrix, error) {
	if _, err := checkBlocked("BlockMatMulTransB", a, block); err != nil {
		return nil, err
	}
	if b.rows != a.rows || b.cols != a.cols {
		return nil, fmt.Errorf("%w: BlockMatMulTransB a %dx%d × (b %dx%d)ᵀ",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	k := a.cols
	out := New(a.rows, block)
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := (i / block) * block
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*block : (i+1)*block]
			for j := 0; j < block; j++ {
				orow[j] = dot(arow, b.data[(base+j)*k:(base+j+1)*k])
			}
		}
	}
	if a.rows*block < matmulParallelThreshold {
		work(0, a.rows)
	} else {
		parallelRows(a.rows, work)
	}
	return out, nil
}

// BlockMatMulTransA computes per-block a_gᵀ×b_g: a is (B·block)×m, b is
// (B·block)×n, output block g is m×n, stacked into (B·m)×n. It is the
// remaining vector-Jacobian product needed by the two block ops above.
func BlockMatMulTransA(a, b *Matrix, block int) (*Matrix, error) {
	nb, err := checkBlocked("BlockMatMulTransA", a, block)
	if err != nil {
		return nil, err
	}
	if b.rows != a.rows {
		return nil, fmt.Errorf("%w: BlockMatMulTransA (a %dx%d)ᵀ × b %dx%d",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	m, n := a.cols, b.cols
	out := New(nb*m, n)
	// out row g*m+i = sum_p a[g*block+p][i] * b row g*block+p; stream over p.
	work := func(lo, hi int) {
		for g := lo; g < hi; g++ {
			for p := 0; p < block; p++ {
				arow := a.data[(g*block+p)*m : (g*block+p+1)*m]
				brow := b.data[(g*block+p)*n : (g*block+p+1)*n]
				for i, av := range arow {
					if av == 0 {
						continue
					}
					orow := out.data[(g*m+i)*n : (g*m+i+1)*n]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
	// Parallelize over whole blocks: rows within a block share accumulators.
	if nb*m*n < matmulParallelThreshold {
		work(0, nb)
	} else {
		parallelRows(nb, work)
	}
	return out, nil
}
