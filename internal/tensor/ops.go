package tensor

import (
	"fmt"
	"math"
	"sync"

	"clinfl/internal/sched"
)

// MatMul returns a×b. a is m×k, b is k×n, result is m×n.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: MatMul %dx%d × %dx%d",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	matmulInto(out, a, b, true)
	return out, nil
}

// MatMulInto computes dst = a×b without allocating. dst must be a.rows×b.cols
// and is overwritten (no pre-clearing pass: the kernels store in assign mode).
func MatMulInto(dst, a, b *Matrix) error {
	if err := checkMatMul("MatMulInto", dst, a, b); err != nil {
		return err
	}
	matmulInto(dst, a, b, true)
	return nil
}

// MatMulAcc accumulates dst += a×b without allocating; the in-place form the
// autograd backward rules use to add matmul vector-Jacobian products directly
// into existing gradient buffers.
func MatMulAcc(dst, a, b *Matrix) error {
	if err := checkMatMul("MatMulAcc", dst, a, b); err != nil {
		return err
	}
	matmulInto(dst, a, b, false)
	return nil
}

func checkMatMul(op string, dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: %s %dx%d × %dx%d",
			ErrShape, op, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("%w: %s dst %dx%d, want %dx%d",
			ErrShape, op, dst.rows, dst.cols, a.rows, b.cols)
	}
	return nil
}

// matmulInto computes a×b into out, assigning (assign: callers may pass
// uninitialized output memory) or accumulating into existing values (the
// Acc VJP forms). Parallel items are whole output rows with their true flop
// cost threaded to the pool gate; the per-row kernel is chosen at build
// time (gemm_scalar.go / gemm_fma.go).
func matmulInto(out, a, b *Matrix, assign bool) {
	var j kernelJob
	j.kind, j.out, j.a, j.b = kMatMul, out, a, b
	j.flag = assign
	runKernel(a.rows, 2*b.cols*a.cols, &j)
}

// matmulRow accumulates one output row, streaming four b rows per k-quad
// with `range` inner loops (bounds-check free under gc).
func matmulRow(orow, arow []float64, b *Matrix, k, n int) {
	p := 0
	for ; p+4 <= k; p += 4 {
		av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
			continue
		}
		b0 := b.data[p*n : (p+1)*n]
		b1 := b.data[(p+1)*n : (p+2)*n]
		b2 := b.data[(p+2)*n : (p+3)*n]
		b3 := b.data[(p+3)*n : (p+4)*n]
		for j, bv := range b0 {
			orow[j] += av0*bv + av1*b1[j] + av2*b2[j] + av3*b3[j]
		}
	}
	for ; p < k; p++ {
		av := arow[p]
		if av == 0 {
			continue
		}
		brow := b.data[p*n : (p+1)*n]
		for j, bv := range brow {
			orow[j] += av * bv
		}
	}
}

// MatMulTransB returns a×bᵀ. a is m×k, b is n×k, result is m×n. This avoids
// materializing the transpose in attention and backward passes.
func MatMulTransB(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.cols {
		return nil, fmt.Errorf("%w: MatMulTransB %dx%d × (%dx%d)ᵀ",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.rows)
	matmulTransB(out, a, b, false)
	return out, nil
}

// MatMulTransBInto computes dst = a×bᵀ without allocating. dst is
// overwritten in assign mode, so it may be uninitialized memory.
func MatMulTransBInto(dst, a, b *Matrix) error {
	if a.cols != b.cols {
		return fmt.Errorf("%w: MatMulTransBInto %dx%d × (%dx%d)ᵀ",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		return fmt.Errorf("%w: MatMulTransBInto dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, b.rows)
	}
	matmulTransB(dst, a, b, false)
	return nil
}

// MatMulTransBAcc accumulates dst += a×bᵀ without allocating.
func MatMulTransBAcc(dst, a, b *Matrix) error {
	if a.cols != b.cols {
		return fmt.Errorf("%w: MatMulTransBAcc %dx%d × (%dx%d)ᵀ",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		return fmt.Errorf("%w: MatMulTransBAcc dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, b.rows)
	}
	matmulTransB(dst, a, b, true)
	return nil
}

func matmulTransB(out, a, b *Matrix, acc bool) {
	var j kernelJob
	j.kind, j.out, j.a, j.b = kMatMulTransB, out, a, b
	j.flag = acc
	runKernel(a.rows, 2*b.rows*a.cols, &j)
}

// matmulTransBRange computes rows [lo, hi) of a×bᵀ into out (accumulating
// when acc).
func matmulTransBRange(out, a, b *Matrix, lo, hi int, acc bool) {
	k, n := a.cols, b.rows
	for i := lo; i < hi; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		if acc {
			for j := 0; j < n; j++ {
				orow[j] += dot(arow, b.data[j*k:(j+1)*k])
			}
		} else {
			for j := 0; j < n; j++ {
				orow[j] = dot(arow, b.data[j*k:(j+1)*k])
			}
		}
	}
}

// MatMulTransA returns aᵀ×b. a is k×m, b is k×n, result is m×n.
func MatMulTransA(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows {
		return nil, fmt.Errorf("%w: MatMulTransA (%dx%d)ᵀ × %dx%d",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.cols, b.cols)
	matmulTransA(out, a, b)
	return out, nil
}

// MatMulTransAAcc accumulates dst += aᵀ×b without allocating; the weight-
// gradient form (xᵀ×upstream) of the affine backward rules.
func MatMulTransAAcc(dst, a, b *Matrix) error {
	if a.rows != b.rows {
		return fmt.Errorf("%w: MatMulTransAAcc (%dx%d)ᵀ × %dx%d",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		return fmt.Errorf("%w: MatMulTransAAcc dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, a.cols, b.cols)
	}
	matmulTransA(dst, a, b)
	return nil
}

// matmulTransA accumulates aᵀ×b into out (out[i][j] += sum_p a[p][i]·b[p][j]).
func matmulTransA(out, a, b *Matrix) {
	var j kernelJob
	j.kind, j.out, j.a, j.b = kMatMulTransA, out, a, b
	runKernel(a.cols, 2*a.rows*b.cols, &j)
}

// matmulTransARange accumulates output rows [lo, hi) of aᵀ×b into out.
func matmulTransARange(out, a, b *Matrix, lo, hi int) {
	k, m, n := a.rows, a.cols, b.cols
	{
		p := 0
		for ; p+4 <= k; p += 4 {
			a0 := a.data[p*m : (p+1)*m]
			a1 := a.data[(p+1)*m : (p+2)*m]
			a2 := a.data[(p+2)*m : (p+3)*m]
			a3 := a.data[(p+3)*m : (p+4)*m]
			b0 := b.data[p*n : (p+1)*n]
			b1 := b.data[(p+1)*n : (p+2)*n]
			b2 := b.data[(p+2)*n : (p+3)*n]
			b3 := b.data[(p+3)*n : (p+4)*n]
			for i := lo; i < hi; i++ {
				av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
				if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
					continue
				}
				orow := out.data[i*n : (i+1)*n]
				for j, bv := range b0 {
					orow[j] += av0*bv + av1*b1[j] + av2*b2[j] + av3*b3[j]
				}
			}
		}
		for ; p < k; p++ {
			arow := a.data[p*m : (p+1)*m]
			brow := b.data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// dot returns the inner product of x and y (len(y) >= len(x)), accumulated
// in four independent lanes so the multiply-adds pipeline instead of
// serializing on one accumulator.
func dot(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	p := 0
	for ; p+4 <= len(x); p += 4 {
		s0 += x[p] * y[p]
		s1 += x[p+1] * y[p+1]
		s2 += x[p+2] * y[p+2]
		s3 += x[p+3] * y[p+3]
	}
	for ; p < len(x); p++ {
		s0 += x[p] * y[p]
	}
	return s0 + s1 + s2 + s3
}

// kernelKind selects a kernelJob's row-range routine.
type kernelKind uint8

const (
	kMatMul kernelKind = iota
	kMatMulTransB
	kMatMulTransA
	kBlockMatMul
	kBlockMatMulTransB
	kBlockMatMulTransA
	kSoftmaxRows
)

// kernelJob carries one kernel invocation's operands onto the shared
// fork-join pool. It implements sched.Body so pool workers can execute
// disjoint row ranges directly; job structs are recycled through a free
// list, keeping the pooled dispatch allocation-free (a closure per call
// would escape to the heap).
type kernelJob struct {
	kind   kernelKind
	out    *Matrix
	a, b   *Matrix
	block  int
	alpha  float64
	flag   bool // kMatMul: assign; kMatMulTransB/kBlockMatMulTransB: accumulate
	blocks [][]bool
}

// Run implements sched.Body over item range [lo, hi): output rows for the
// dense kernels, row blocks for kBlockMatMulTransA.
func (j *kernelJob) Run(lo, hi int) {
	switch j.kind {
	case kMatMul:
		matmulRowsKernel(j.out, j.a, j.b, lo, hi, j.flag)
	case kMatMulTransB:
		matmulTransBRange(j.out, j.a, j.b, lo, hi, j.flag)
	case kMatMulTransA:
		matmulTransARange(j.out, j.a, j.b, lo, hi)
	case kBlockMatMul:
		blockMatMulRange(j.out, j.a, j.b, j.block, j.alpha, lo, hi)
	case kBlockMatMulTransB:
		blockMatMulTransBRange(j.out, j.a, j.b, j.block, j.alpha, j.flag, lo, hi)
	case kBlockMatMulTransA:
		blockMatMulTransARange(j.out, j.a, j.b, j.block, j.alpha, lo, hi)
	case kSoftmaxRows:
		softmaxRowsRange(j.out, j.a, j.block, j.blocks, lo, hi)
	}
}

// kernelJobs recycles job structs across forked kernel calls. A plain
// mutex-guarded free list (rather than sync.Pool) guarantees the steady
// state allocates nothing even across GC cycles.
var (
	kernelJobMu   sync.Mutex
	kernelJobFree []*kernelJob
)

// runKernel dispatches n items of flopsPerItem real work each (one
// multiply-add = 2 flops) onto the shared pool. Threading the per-item
// cost through is what lets the pool gate fan-out exactly: small block
// kernels no longer wake workers for microseconds of arithmetic, and
// tiny-but-tall shapes (a B×1 loss column) stay inline. kj is the
// caller's stack value; it runs in place when the loop would stay inline
// (no shared state touched at all) and is copied into a recycled
// heap job only when the pool will actually fork.
func runKernel(n, flopsPerItem int, kj *kernelJob) {
	pool := sched.Default()
	if !pool.WouldFork(n, flopsPerItem) {
		kj.Run(0, n)
		return
	}
	kernelJobMu.Lock()
	var j *kernelJob
	if k := len(kernelJobFree); k > 0 {
		j = kernelJobFree[k-1]
		kernelJobFree[k-1] = nil
		kernelJobFree = kernelJobFree[:k-1]
	} else {
		j = new(kernelJob)
	}
	kernelJobMu.Unlock()
	*j = *kj
	pool.ParallelFor(n, flopsPerItem, j)
	*j = kernelJob{}
	kernelJobMu.Lock()
	kernelJobFree = append(kernelJobFree, j)
	kernelJobMu.Unlock()
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*m.rows+i] = v
		}
	}
	return t
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) (*Matrix, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("%w: Add %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// AddInPlace computes m += o.
func (m *Matrix) AddInPlace(o *Matrix) error {
	if !m.SameShape(o) {
		return fmt.Errorf("%w: AddInPlace %dx%d += %dx%d", ErrShape, m.rows, m.cols, o.rows, o.cols)
	}
	for i, v := range o.data {
		m.data[i] += v
	}
	return nil
}

// AddScaledInPlace computes m += alpha*o (axpy).
func (m *Matrix) AddScaledInPlace(alpha float64, o *Matrix) error {
	if !m.SameShape(o) {
		return fmt.Errorf("%w: AddScaledInPlace %dx%d += %dx%d",
			ErrShape, m.rows, m.cols, o.rows, o.cols)
	}
	for i, v := range o.data {
		m.data[i] += alpha * v
	}
	return nil
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) (*Matrix, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("%w: Sub %dx%d - %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Mul returns the Hadamard (elementwise) product a⊙b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("%w: Mul %dx%d ⊙ %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out, nil
}

// Scale returns alpha*m.
func Scale(alpha float64, m *Matrix) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// ScaleInPlace computes m *= alpha.
func (m *Matrix) ScaleInPlace(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// AddRowVector returns m with v (1×cols) added to every row.
func AddRowVector(m, v *Matrix) (*Matrix, error) {
	if v.rows != 1 || v.cols != m.cols {
		return nil, fmt.Errorf("%w: AddRowVector %dx%d + %dx%d",
			ErrShape, m.rows, m.cols, v.rows, v.cols)
	}
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		row := out.Row(i)
		for j, b := range v.data {
			row[j] += b
		}
	}
	return out, nil
}

// SumRows returns a 1×cols matrix with the column sums of m (i.e. the sum
// over rows).
func SumRows(m *Matrix) *Matrix {
	out := New(1, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.data))
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply returns a new matrix with f applied elementwise.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f elementwise in place.
func (m *Matrix) ApplyInPlace(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// SoftmaxRows returns row-wise softmax of m, numerically stabilized by
// subtracting each row's max.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.rows, m.cols)
	SoftmaxRowsInto(out, m)
	return out
}

// SoftmaxRowsInto writes the row-wise softmax of src into dst (same shape)
// without allocating. Rows are independent, so the kernel parallelizes on
// the shared pool once the work amortizes the handoff.
func SoftmaxRowsInto(dst, src *Matrix) {
	var j kernelJob
	j.kind, j.out, j.a = kSoftmaxRows, dst, src
	runKernel(src.rows, softmaxFlopsPerCol*src.cols, &j)
}

// BlockSoftmaxRowsInto writes the row-wise softmax of src into dst,
// restricted per row block to non-padded key columns: row r of block g is
// normalized over columns j with !padMasks[g][j], and padded columns get
// exactly 0. padMasks may be nil (no padding anywhere) and individual
// entries may be nil. This is the attention-probability kernel; shape and
// mask validation is the caller's job (the autograd op does it once per
// node).
func BlockSoftmaxRowsInto(dst, src *Matrix, block int, padMasks [][]bool) {
	var j kernelJob
	j.kind, j.out, j.a = kSoftmaxRows, dst, src
	j.block = block
	j.blocks = padMasks
	runKernel(src.rows, softmaxFlopsPerCol*src.cols, &j)
}

// softmaxFlopsPerCol approximates the per-element cost of a softmax row in
// multiply-add-equivalent flops (exp dominates at ~15-20 simple ops).
const softmaxFlopsPerCol = 16

// softmaxRowsRange computes rows [lo, hi) of the (optionally block-masked)
// row softmax.
func softmaxRowsRange(dst, src *Matrix, block int, padMasks [][]bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		var mask []bool
		if padMasks != nil {
			mask = padMasks[i/block]
		}
		if mask == nil {
			softmaxRow(dst.Row(i), src.Row(i))
			continue
		}
		maskedSoftmaxRow(dst.Row(i), src.Row(i), mask)
	}
}

// maskedSoftmaxRow writes softmax(src) over columns with !mask[j] into
// dst, zeroing masked columns exactly.
func maskedSoftmaxRow(dst, src []float64, mask []bool) {
	mx := math.Inf(-1)
	for j, v := range src {
		if !mask[j] && v > mx {
			mx = v
		}
	}
	var sum float64
	for j, v := range src {
		if mask[j] {
			dst[j] = 0
			continue
		}
		e := math.Exp(v - mx)
		dst[j] = e
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// softmaxRow writes softmax(src) into dst.
func softmaxRow(dst, src []float64) {
	mx := math.Inf(-1)
	for _, v := range src {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(v - mx)
		dst[j] = e
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func ArgmaxRows(m *Matrix) []int {
	out := make([]int, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// Concat stacks matrices vertically (same column count).
func Concat(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return New(0, 0), nil
	}
	cols := ms[0].cols
	total := 0
	for _, m := range ms {
		if m.cols != cols {
			return nil, fmt.Errorf("%w: Concat col mismatch %d vs %d", ErrShape, m.cols, cols)
		}
		total += m.rows
	}
	out := New(total, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:off+len(m.data)], m.data)
		off += len(m.data)
	}
	return out, nil
}

// SliceRows returns a copy of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > m.rows || lo > hi {
		return nil, fmt.Errorf("%w: SliceRows [%d,%d) of %d rows", ErrShape, lo, hi, m.rows)
	}
	out := New(hi-lo, m.cols)
	copy(out.data, m.data[lo*m.cols:hi*m.cols])
	return out, nil
}

// SliceCols returns a copy of columns [lo, hi).
func (m *Matrix) SliceCols(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > m.cols || lo > hi {
		return nil, fmt.Errorf("%w: SliceCols [%d,%d) of %d cols", ErrShape, lo, hi, m.cols)
	}
	out := New(m.rows, hi-lo)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out, nil
}
