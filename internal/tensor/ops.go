package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the minimum number of output elements before
// MatMul fans out across goroutines; below it the goroutine overhead
// dominates.
const matmulParallelThreshold = 64 * 64

// MatMul returns a×b. a is m×k, b is k×n, result is m×n.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: MatMul %dx%d × %dx%d",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	matmulInto(out, a, b)
	return out, nil
}

// MatMulInto computes dst = a×b without allocating. dst must be a.rows×b.cols
// and is overwritten.
func MatMulInto(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: MatMulInto %dx%d × %dx%d",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("%w: MatMulInto dst %dx%d, want %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, b.cols)
	}
	dst.Zero()
	matmulInto(dst, a, b)
	return nil
}

// matmulInto accumulates a×b into out (out must be zeroed by the caller).
// The kernel is an ikj loop (streaming over b's rows) which is cache-friendly
// for row-major data, parallelized over blocks of output rows.
//
// The inner loop is unrolled 4-wide over k: each pass streams four b rows
// against one output row, quartering the load/store traffic on the output
// row and exposing independent multiply-adds to the CPU's pipelines. On the
// single-socket CPUs this reproduction targets that roughly doubles
// throughput over the scalar ikj loop (see BenchmarkAblation_Matmul).
func matmulInto(out, a, b *Matrix) {
	m, k, n := a.rows, a.cols, b.cols
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			p := 0
			for ; p+4 <= k; p += 4 {
				av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
					continue
				}
				b0 := b.data[p*n : (p+1)*n]
				b1 := b.data[(p+1)*n : (p+2)*n]
				b2 := b.data[(p+2)*n : (p+3)*n]
				b3 := b.data[(p+3)*n : (p+4)*n]
				for j, bv := range b0 {
					orow[j] += av0*bv + av1*b1[j] + av2*b2[j] + av3*b3[j]
				}
			}
			for ; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.data[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if m*n < matmulParallelThreshold {
		work(0, m)
		return
	}
	parallelRows(m, work)
}

// MatMulTransB returns a×bᵀ. a is m×k, b is n×k, result is m×n. This avoids
// materializing the transpose in attention and backward passes.
func MatMulTransB(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.cols {
		return nil, fmt.Errorf("%w: MatMulTransB %dx%d × (%dx%d)ᵀ",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	m, k, n := a.rows, a.cols, b.rows
	out := New(m, n)
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] = dot(arow, b.data[j*k:(j+1)*k])
			}
		}
	}
	if m*n < matmulParallelThreshold {
		work(0, m)
		return out, nil
	}
	parallelRows(m, work)
	return out, nil
}

// MatMulTransA returns aᵀ×b. a is k×m, b is k×n, result is m×n.
func MatMulTransA(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows {
		return nil, fmt.Errorf("%w: MatMulTransA (%dx%d)ᵀ × %dx%d",
			ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	k, m, n := a.rows, a.cols, b.cols
	out := New(m, n)
	// out[i][j] = sum_p a[p][i] * b[p][j]; stream over p for cache locality,
	// 4-wide like matmulInto so each output row is loaded/stored once per
	// four b rows. The a accesses are column-strided but only 4 per row.
	work := func(lo, hi int) {
		p := 0
		for ; p+4 <= k; p += 4 {
			a0 := a.data[p*m : (p+1)*m]
			a1 := a.data[(p+1)*m : (p+2)*m]
			a2 := a.data[(p+2)*m : (p+3)*m]
			a3 := a.data[(p+3)*m : (p+4)*m]
			b0 := b.data[p*n : (p+1)*n]
			b1 := b.data[(p+1)*n : (p+2)*n]
			b2 := b.data[(p+2)*n : (p+3)*n]
			b3 := b.data[(p+3)*n : (p+4)*n]
			for i := lo; i < hi; i++ {
				av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
				if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
					continue
				}
				orow := out.data[i*n : (i+1)*n]
				for j, bv := range b0 {
					orow[j] += av0*bv + av1*b1[j] + av2*b2[j] + av3*b3[j]
				}
			}
		}
		for ; p < k; p++ {
			arow := a.data[p*m : (p+1)*m]
			brow := b.data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if m*n < matmulParallelThreshold {
		work(0, m)
	} else {
		parallelRows(m, work)
	}
	return out, nil
}

// dot returns the inner product of x and y (len(y) >= len(x)), accumulated
// in four independent lanes so the multiply-adds pipeline instead of
// serializing on one accumulator.
func dot(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	p := 0
	for ; p+4 <= len(x); p += 4 {
		s0 += x[p] * y[p]
		s1 += x[p+1] * y[p+1]
		s2 += x[p+2] * y[p+2]
		s3 += x[p+3] * y[p+3]
	}
	for ; p < len(x); p++ {
		s0 += x[p] * y[p]
	}
	return s0 + s1 + s2 + s3
}

// parallelRows splits [0,m) row ranges across GOMAXPROCS workers and waits.
// With a single worker (GOMAXPROCS=1 or m=1) it runs inline, skipping the
// goroutine spawn entirely.
func parallelRows(m int, work func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		work(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			work(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*m.rows+i] = v
		}
	}
	return t
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) (*Matrix, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("%w: Add %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// AddInPlace computes m += o.
func (m *Matrix) AddInPlace(o *Matrix) error {
	if !m.SameShape(o) {
		return fmt.Errorf("%w: AddInPlace %dx%d += %dx%d", ErrShape, m.rows, m.cols, o.rows, o.cols)
	}
	for i, v := range o.data {
		m.data[i] += v
	}
	return nil
}

// AddScaledInPlace computes m += alpha*o (axpy).
func (m *Matrix) AddScaledInPlace(alpha float64, o *Matrix) error {
	if !m.SameShape(o) {
		return fmt.Errorf("%w: AddScaledInPlace %dx%d += %dx%d",
			ErrShape, m.rows, m.cols, o.rows, o.cols)
	}
	for i, v := range o.data {
		m.data[i] += alpha * v
	}
	return nil
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) (*Matrix, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("%w: Sub %dx%d - %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Mul returns the Hadamard (elementwise) product a⊙b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("%w: Mul %dx%d ⊙ %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out, nil
}

// Scale returns alpha*m.
func Scale(alpha float64, m *Matrix) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// ScaleInPlace computes m *= alpha.
func (m *Matrix) ScaleInPlace(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// AddRowVector returns m with v (1×cols) added to every row.
func AddRowVector(m, v *Matrix) (*Matrix, error) {
	if v.rows != 1 || v.cols != m.cols {
		return nil, fmt.Errorf("%w: AddRowVector %dx%d + %dx%d",
			ErrShape, m.rows, m.cols, v.rows, v.cols)
	}
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		row := out.Row(i)
		for j, b := range v.data {
			row[j] += b
		}
	}
	return out, nil
}

// SumRows returns a 1×cols matrix with the column sums of m (i.e. the sum
// over rows).
func SumRows(m *Matrix) *Matrix {
	out := New(1, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.data))
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply returns a new matrix with f applied elementwise.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f elementwise in place.
func (m *Matrix) ApplyInPlace(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// SoftmaxRows returns row-wise softmax of m, numerically stabilized by
// subtracting each row's max.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		softmaxRow(dst, src)
	}
	return out
}

// softmaxRow writes softmax(src) into dst.
func softmaxRow(dst, src []float64) {
	mx := math.Inf(-1)
	for _, v := range src {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(v - mx)
		dst[j] = e
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func ArgmaxRows(m *Matrix) []int {
	out := make([]int, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// Concat stacks matrices vertically (same column count).
func Concat(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return New(0, 0), nil
	}
	cols := ms[0].cols
	total := 0
	for _, m := range ms {
		if m.cols != cols {
			return nil, fmt.Errorf("%w: Concat col mismatch %d vs %d", ErrShape, m.cols, cols)
		}
		total += m.rows
	}
	out := New(total, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:off+len(m.data)], m.data)
		off += len(m.data)
	}
	return out, nil
}

// SliceRows returns a copy of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > m.rows || lo > hi {
		return nil, fmt.Errorf("%w: SliceRows [%d,%d) of %d rows", ErrShape, lo, hi, m.rows)
	}
	out := New(hi-lo, m.cols)
	copy(out.data, m.data[lo*m.cols:hi*m.cols])
	return out, nil
}

// SliceCols returns a copy of columns [lo, hi).
func (m *Matrix) SliceCols(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > m.cols || lo > hi {
		return nil, fmt.Errorf("%w: SliceCols [%d,%d) of %d cols", ErrShape, lo, hi, m.cols)
	}
	out := New(m.rows, hi-lo)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out, nil
}
