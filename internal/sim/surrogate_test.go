package sim

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"clinfl/internal/fl"
)

// diffSystemFields compares the system-side trajectory of two runs —
// everything except model quality (losses, validation scores, weights).
// The multiplexed run must reproduce these exactly: per-client speed,
// link, jitter and fault draws are index-keyed hash streams, and the
// surrogate byte model is exact for every codec.
func diffSystemFields(t *testing.T, real, multi *RunResult) {
	t.Helper()
	ra, rb := real.Result.History.Rounds, multi.Result.History.Rounds
	if len(ra) != len(rb) {
		t.Fatalf("round counts differ: real %d, multiplexed %d", len(ra), len(rb))
	}
	for i := range ra {
		a, b := ra[i], rb[i]
		check := func(field string, av, bv any) {
			if fmt.Sprint(av) != fmt.Sprint(bv) {
				t.Errorf("round %d %s: real %v, multiplexed %v", a.Round, field, av, bv)
			}
		}
		check("Sampled", a.Sampled, b.Sampled)
		check("Participants", a.Participants, b.Participants)
		check("LateApplied", a.LateApplied, b.LateApplied)
		check("LateDropped", a.LateDropped, b.LateDropped)
		check("Failures", a.Failures, b.Failures)
		check("BytesUp", a.BytesUp, b.BytesUp)
		check("BytesDown", a.BytesDown, b.BytesDown)
		check("Duration", a.Duration, b.Duration)
	}
	if real.BytesUp != multi.BytesUp || real.BytesDown != multi.BytesDown {
		t.Errorf("total bytes differ: real %d/%d, multiplexed %d/%d",
			real.BytesUp, real.BytesDown, multi.BytesUp, multi.BytesDown)
	}
	if fmt.Sprint(real.Stragglers) != fmt.Sprint(multi.Stragglers) {
		t.Errorf("straggler sets differ")
	}
	if fmt.Sprint(real.Faulty) != fmt.Sprint(multi.Faulty) {
		t.Errorf("faulty sets differ")
	}
	if real.VirtualElapsed != multi.VirtualElapsed {
		t.Errorf("virtual elapsed differs: real %v, multiplexed %v", real.VirtualElapsed, multi.VirtualElapsed)
	}
}

// TestSurrogateCalibrationAgainstFullyReal is the surrogate-vs-real
// acceptance bound on the fully-real 200-client baseline scenario: the
// multiplexed run (32 real shards, 168 surrogates) must reproduce the
// real run's system trajectory byte-for-byte, and its model quality —
// the one thing surrogates approximate — must stay within the pinned
// tolerance of the fully-real result.
func TestSurrogateCalibrationAgainstFullyReal(t *testing.T) {
	real, err := ScaleScenario(7).Run()
	if err != nil {
		t.Fatal(err)
	}
	sc := ScaleScenario(7)
	sc.RealClients = 32
	multi, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	diffSystemFields(t, real, multi)

	// Model-quality tolerance: both runs must converge well clear of the
	// initial model, and the surrogate run's final holdout MSE must stay
	// within 0.05 absolute of the fully-real one (the fully-real scenario
	// lands around 0.02; see docs/capacity/ for the calibrated numbers).
	if multi.FinalMSE >= multi.InitialMSE/10 {
		t.Errorf("multiplexed run did not converge: MSE %v -> %v", multi.InitialMSE, multi.FinalMSE)
	}
	if d := math.Abs(multi.FinalMSE - real.FinalMSE); d > 0.05 {
		t.Errorf("surrogate model error out of tolerance: real MSE %.6f, multiplexed %.6f (|d| %.6f > 0.05)",
			real.FinalMSE, multi.FinalMSE, d)
	}
}

// TestCalibratedCostsExact pins the byte model itself: for every codec in
// the negotiation set, the calibrated size equals the size of a real
// encoded update — and stays equal for a *different* shard and *different*
// round weights, because all four encodings are shape-determined.
func TestCalibratedCostsExact(t *testing.T) {
	sc := Scenario{
		Seed:    11,
		Clients: 8,
		Codecs:  []string{"raw", "f32", "topk:0.25", "int8"},
	}.withDefaults()
	pop := sc.Task.NewPopulation(sc.Seed, 4)
	downCodec, err := fl.CodecByName(sc.DownCodec)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := calibrateCosts(sc, pop, downCodec)
	if err != nil {
		t.Fatal(err)
	}
	// Train a different shard from non-initial weights.
	mid, _, err := pop.Shards[1].Train(InitialLinearWeights(sc.Task.Dim))
	if err != nil {
		t.Fatal(err)
	}
	trained, _, err := pop.Shards[3].Train(mid)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sc.Codecs {
		codec, err := fl.CodecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := codec.Encode(trained)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cm.UpBytes[name], len(blob); got != want {
			t.Errorf("codec %q: calibrated %d bytes, real encode %d", name, got, want)
		}
	}
	downBlob, err := downCodec.Encode(mid)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cm.DownBytes, len(downBlob); got != want {
		t.Errorf("down codec: calibrated %d bytes, real encode %d", got, want)
	}
}

// Planner100kScenario is the headline multiplexed spec: 100k clients, 64
// real shards, 5% sampled per round (5000 participants), mixed codecs
// including the int8 uplink, stragglers and faults on. It is the scale
// ROADMAP item 5 asks the capacity planner to reach deterministically.
func Planner100kScenario(seed int64) Scenario {
	return Scenario{
		Name:           "planner-100k",
		Seed:           seed,
		Clients:        100_000,
		RealClients:    64,
		Rounds:         3,
		SampleFraction: 0.05,
		MinUpdates:     2000,
		MinClients:     100,
		RoundDeadline:  1500 * time.Millisecond,
		FedAsyncAlpha:  0.5,
		Validate:       true,
		Codecs:         []string{"raw", "f32", "int8", "topk:0.25"},
		Compute: ComputeProfile{
			Mean:              200 * time.Millisecond,
			Jitter:            100 * time.Millisecond,
			StragglerFraction: 0.10,
			StragglerFactor:   20,
		},
		Faults: FaultProfile{FaultyFraction: 0.05, DropProb: 0.3},
	}
}

// TestPlanner100kSmoke runs the 100k-client multiplexed scenario twice
// and requires byte-identical History — the capacity planner's core
// claim: two and a half orders of magnitude past the paper's 4 sites,
// deterministic, in seconds of real time.
func TestPlanner100kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-client scenario skipped in -short mode")
	}
	res, err := Planner100kScenario(7).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RealElapsed > 60*time.Second {
		t.Fatalf("100k-client scenario took %v real time, want well under a minute", res.RealElapsed)
	}
	if got := len(res.Result.History.Rounds); got != 3 {
		t.Fatalf("completed %d rounds, want 3", got)
	}
	for _, rec := range res.Result.History.Rounds {
		if len(rec.Sampled) != 5000 {
			t.Fatalf("round %d sampled %d clients, want 5000", rec.Round, len(rec.Sampled))
		}
		if rec.BytesDown == 0 {
			t.Fatalf("round %d recorded no downlink bytes", rec.Round)
		}
	}
	if res.FinalMSE >= res.InitialMSE {
		t.Fatalf("100k scenario did not improve: MSE %v -> %v", res.InitialMSE, res.FinalMSE)
	}
	js1, err := res.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Planner100kScenario(7).Run()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := res2.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("100k-client scenario is not deterministic across runs")
	}
}
