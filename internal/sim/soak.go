package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"clinfl/internal/fl"
	"clinfl/internal/fl/durable"
	"clinfl/internal/metrics"
	"clinfl/internal/tensor"
)

// CrashPoint scripts one server crash at an exact, reproducible position
// in the WAL record stream: the Nth record of type After belonging to
// Round kills the run. OnAppend fires synchronously on the appending
// goroutine right after the record is written, and the segment's
// cooperative shutdown flushes the group-commit tail on Close, so the
// record the hook saw always survives into the next segment — the crash
// lands *between* intact records, exactly like a power cut the WAL's
// framing absorbs (a real mid-write cut is the torn tail the replay
// truncates).
type CrashPoint struct {
	Round int
	After durable.RecordType
	// N is the 1-based occurrence within the segment (e.g. After=RecUpdate,
	// N=3 crashes once three client updates of the round are on disk).
	N int
}

// SoakScenario is a crash-restart soak: a deterministic Scenario run
// under a WAL, killed and restarted at each scripted CrashPoint. Every
// segment rebuilds the population, executors, and virtual clock from the
// spec — exactly what a restarted server process would do — and resumes
// from the WAL alone.
type SoakScenario struct {
	Scenario Scenario
	Crashes  []CrashPoint
}

// SoakResult summarizes a crash-restart soak.
type SoakResult struct {
	// Final is the converged global model; FinalMSE its holdout score.
	Final    map[string]*tensor.Matrix
	FinalMSE float64
	// Segments counts process lifetimes (crashes + the final clean run).
	Segments int
	// ReplayedRecords totals WAL records replayed across all restarts.
	ReplayedRecords int64
	// ResumedMidRound reports that at least one restart recovered an open
	// round (the crash happened mid-gather).
	ResumedMidRound bool
	// PendingUpdatesRecovered counts client updates re-seeded from open
	// rounds across all restarts — updates that survived a crash on disk
	// and were aggregated without re-training.
	PendingUpdatesRecovered int
	// Registry carries the soak's metrics (shared across segments, like a
	// scrape target that outlives server restarts).
	Registry *metrics.Registry
}

// Run executes the soak over the WAL at walPath. It fails if a segment
// dies for any reason other than its scripted crash, or if there are more
// scripted crashes than segments that consume them.
func (ss SoakScenario) Run(walPath string) (*SoakResult, error) {
	sc := ss.Scenario.withDefaults()
	reg := metrics.NewRegistry()
	crashes := append([]CrashPoint(nil), ss.Crashes...)
	res := &SoakResult{Registry: reg}

	for seg := 0; ; seg++ {
		if seg > len(ss.Crashes) {
			return nil, fmt.Errorf("sim: soak %s segment %d exceeded scripted crashes", sc.Name, seg)
		}
		clock := NewVirtualClock()
		set, err := sc.build(clock)
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		var crashed atomic.Bool
		opts := durable.Options{Metrics: reg}
		if len(crashes) > 0 {
			cp := crashes[0]
			seen := 0
			opts.OnAppend = func(_ int64, rec *durable.Record) {
				if rec.Type != cp.After || rec.Round != cp.Round {
					return
				}
				seen++
				if seen == cp.N {
					crashed.Store(true)
					cancel()
				}
			}
		}
		wal, err := durable.Open(walPath, opts)
		if err != nil {
			cancel()
			return nil, err
		}
		if seg > 0 {
			st := wal.Recovered()
			res.ReplayedRecords += st.Records
			if st.Open != nil {
				res.ResumedMidRound = true
				res.PendingUpdatesRecovered += len(st.Open.Updates)
			}
		}
		set.cfg.WAL = wal
		set.cfg.Metrics = reg
		ctrl, err := fl.NewController(set.cfg, set.execs)
		if err != nil {
			cancel()
			_ = wal.Close()
			return nil, err
		}
		out, runErr := ctrl.Run(ctx, set.initial)
		// Let in-flight virtual actors finish so the segment's goroutines
		// all exit before its clock is discarded.
		clock.Drain()
		_ = wal.Close()
		cancel()
		if runErr == nil {
			res.Final = out.FinalWeights
			res.Segments = seg + 1
			res.FinalMSE, err = set.pop.Eval(out.FinalWeights)
			if err != nil {
				return nil, err
			}
			return res, nil
		}
		if !crashed.Load() {
			return nil, fmt.Errorf("sim: soak %s segment %d died outside its scripted crash: %w", sc.Name, seg, runErr)
		}
		crashes = crashes[1:]
	}
}

// SoakCrashScenario is the pinned crash-restart spec: 8 clients over 6
// rounds with two faulty clients failing outright on rounds 2 and 4,
// mixed raw/f32 uplinks, and three scripted crashes — one mid-gather with
// three updates already durable (the recovered-pending-updates case), one
// right after a round opens, one straight after a model commit. Every
// source of nondeterminism that cannot survive re-execution (sampling,
// jitter, probabilistic drops, deadlines) is off, so the soak's final
// model must be byte-identical to an uninterrupted run of the same
// Scenario. Do not re-tune casually — its weight digest is checked in.
func SoakCrashScenario(seed int64) SoakScenario {
	return SoakScenario{
		Scenario: Scenario{
			Name:       "soak-crash-8",
			Seed:       seed,
			Clients:    8,
			Rounds:     6,
			MinClients: 1,
			Codecs:     []string{"raw", "f32"},
			Compute:    ComputeProfile{Mean: 100 * time.Millisecond},
			Faults:     FaultProfile{FaultyFraction: 0.25, DropRounds: []int{2, 4}},
		},
		Crashes: []CrashPoint{
			{Round: 1, After: durable.RecUpdate, N: 3},
			{Round: 3, After: durable.RecRoundOpen, N: 1},
			{Round: 4, After: durable.RecModelCommit, N: 1},
		},
	}
}

// CanonicalWeightsDigest hashes a weight map in name-sorted wire encoding:
// equal digests mean byte-identical models. The golden soak test pins this
// digest in testdata.
func CanonicalWeightsDigest(w map[string]*tensor.Matrix) (string, error) {
	names := make([]string, 0, len(w))
	for name := range w {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
		if _, err := w[name].WriteTo(h); err != nil {
			return "", fmt.Errorf("sim: digest %q: %w", name, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
