package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestTierScenario10kDeterministic pins the hierarchical-aggregation
// scenario at 10k clients: the run must complete every round with full
// participation, reproduce byte-identical History across runs and at
// every GOMAXPROCS (run with -cpu 1,2,4 in CI), match the digest pinned
// in testdata, and carry tier accounting in every round record.
// Regenerate the digest with -update after an intentional change.
func TestTierScenario10kDeterministic(t *testing.T) {
	const clients = 10_000
	res1, err := TierScenario(7, clients).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.RealElapsed > 60*time.Second {
		t.Fatalf("tier scenario took %v real time, want < 60s", res1.RealElapsed)
	}
	js1, err := res1.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := TierScenario(7, clients).Run()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := res2.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("same seed, different History across two tier runs")
	}

	sum := sha256.Sum256(js1)
	digest := hex.EncodeToString(sum[:]) + "\n"
	golden := filepath.Join("testdata", "tier_10k.digest")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(digest), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden digest (regenerate with -update): %v", err)
	}
	if digest != string(want) {
		t.Fatalf("History digest diverged from golden (regenerate with -update if intended)\ngot:  %swant: %s", digest, want)
	}

	rounds := res1.Result.History.Rounds
	if len(rounds) != 8 {
		t.Fatalf("completed %d rounds, want 8", len(rounds))
	}
	// TierScenario's widths are {64, 8}: each round encodes 64 edge
	// partials up to the regional tier and 8 regionals up to the root.
	const wantPartials = 64 + 8
	for _, rec := range rounds {
		if len(rec.Participants) != clients {
			t.Fatalf("round %d: %d participants, want %d", rec.Round, len(rec.Participants), clients)
		}
		if rec.TierPartials != wantPartials {
			t.Fatalf("round %d: TierPartials = %d, want %d", rec.Round, rec.TierPartials, wantPartials)
		}
		if rec.TierBytesUp <= 0 || rec.TierResidentBytes <= 0 {
			t.Fatalf("round %d: tier byte accounting missing (up=%d resident=%d)",
				rec.Round, rec.TierBytesUp, rec.TierResidentBytes)
		}
	}
	if res1.FinalMSE >= res1.InitialMSE/10 {
		t.Fatalf("tier scenario did not converge: MSE %v -> %v", res1.InitialMSE, res1.FinalMSE)
	}
}

// TestTierRootStateIndependentOfClientCount is the O(model) memory
// evidence: quadrupling the roster must leave the root's resident
// aggregation state essentially unchanged (expansion components grow with
// the condition of the sum, never with the number of folds), and that
// state must sit orders of magnitude below what buffering per-client
// updates at the root would cost.
func TestTierRootStateIndependentOfClientCount(t *testing.T) {
	resident := func(clients int) int64 {
		res, err := TierScenario(7, clients).Run()
		if err != nil {
			t.Fatal(err)
		}
		rounds := res.Result.History.Rounds
		r := rounds[len(rounds)-1].TierResidentBytes
		if r <= 0 {
			t.Fatalf("%d clients: no resident-state accounting", clients)
		}
		return r
	}
	small, big := resident(2_500), resident(10_000)
	if big > small*3/2 {
		t.Fatalf("root resident state grew with the roster: %d bytes at 10k vs %d at 2.5k", big, small)
	}
	// Buffering raw per-client updates at the root costs at least one
	// float64 per model element per client.
	elems := 0
	for _, m := range InitialLinearWeights(TierScenario(7, 1).Task.withDefaults().Dim) {
		elems += m.Rows() * m.Cols()
	}
	naive := int64(10_000) * int64(elems) * 8
	if big*20 > naive {
		t.Fatalf("root resident state %d bytes is not far below the naive per-client buffer %d", big, naive)
	}
}
