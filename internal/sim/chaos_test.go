package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clinfl/internal/fl"
)

// TestChaosFlapSoakDeterministic is the chaos soak: the pinned flap
// scenario must complete every round (no deadlocked parks, no quorum
// collapse), reproduce byte-identical History across runs and at every
// GOMAXPROCS, match the digest pinned in testdata, and account for every
// lost assignment — a sampled client either participates, has a failure
// recorded, or lands late; never silently vanishes. Regenerate the
// digest with -update after an intentional behavior change.
func TestChaosFlapSoakDeterministic(t *testing.T) {
	res1, err := ChaosFlapScenario(11).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.RealElapsed > 30*time.Second {
		t.Fatalf("chaos soak took %v real time, want < 30s", res1.RealElapsed)
	}
	js1, err := res1.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ChaosFlapScenario(11).Run()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := res2.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatalf("same seed, different History:\nrun1: %s\nrun2: %s", js1, js2)
	}

	sum := sha256.Sum256(js1)
	digest := hex.EncodeToString(sum[:]) + "\n"
	golden := filepath.Join("testdata", "chaos_flap_24.digest")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(digest), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden digest (regenerate with -update): %v", err)
	}
	if digest != string(want) {
		t.Fatalf("History digest diverged from golden (regenerate with -update if intended)\ngot:  %swant: %s", digest, want)
	}

	rounds := res1.Result.History.Rounds
	if len(rounds) != 16 {
		t.Fatalf("completed %d rounds, want 16", len(rounds))
	}
	if len(res1.Flapping) == 0 {
		t.Fatal("no clients marked flapping")
	}

	// Lost-assignment accounting: every sampled client of every round
	// (final round exempt — its in-flight tasks drain after the run)
	// must show up as a participant or recorded failure that round, or
	// as a late/failed outcome in a later round.
	for ri, rec := range rounds {
		if ri == len(rounds)-1 {
			break
		}
		for _, name := range rec.Sampled {
			if !accounted(rounds[ri:], name) {
				t.Errorf("round %d: sampled client %s has no recorded outcome", rec.Round, name)
			}
		}
	}

	// Reassignment origins are never silent: every "x>y" retry implies a
	// recorded failure for x (the slot that was lost) in the same round.
	crossClient := false
	reassigned := 0
	for _, rec := range rounds {
		for _, ra := range rec.Reassigned {
			reassigned++
			origin, target, ok := strings.Cut(ra, ">")
			if !ok {
				t.Fatalf("round %d: malformed Reassigned entry %q", rec.Round, ra)
			}
			if origin != target && origin != "probe" {
				crossClient = true
			}
			if origin != "probe" && !failedIn(rec.Failures, origin) {
				t.Errorf("round %d: reassignment %q without a recorded failure for %s",
					rec.Round, ra, origin)
			}
		}
	}
	if reassigned == 0 {
		t.Fatal("no task was ever reassigned — the flap waves did not exercise the requeue path")
	}
	if !crossClient {
		t.Fatal("no cross-client substitution happened — expected at least one x>y reassignment")
	}

	// The mass wave must actually degrade service, and the run must
	// still converge through it.
	degraded := 0
	for _, rec := range rounds {
		if rec.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("no round finalized degraded — the mass wave should squeeze at least one below MinUpdates")
	}
	if res1.FinalMSE >= res1.InitialMSE/10 {
		t.Fatalf("chaos scenario did not converge: MSE %v -> %v", res1.InitialMSE, res1.FinalMSE)
	}
	if len(res1.Result.Health) == 0 {
		t.Fatal("result carries no health snapshot")
	}
}

// accounted reports whether name has a recorded outcome in recs[0]
// (participant or failure) or any later record (late or failure).
func accounted(recs []fl.RoundRecord, name string) bool {
	for i, rec := range recs {
		for _, p := range rec.Participants {
			if i == 0 && p == name {
				return true
			}
		}
		if failedIn(rec.Failures, name) {
			return true
		}
		if i > 0 {
			for _, l := range rec.LateApplied {
				if l == name {
					return true
				}
			}
			for _, l := range rec.LateDropped {
				if l == name {
					return true
				}
			}
		}
	}
	return false
}

// failedIn reports whether failures contains an entry for name.
func failedIn(failures []string, name string) bool {
	prefix := fmt.Sprintf("%s:", name)
	for _, f := range failures {
		if strings.HasPrefix(f, prefix) {
			return true
		}
	}
	return false
}
