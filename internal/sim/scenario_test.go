package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files from the current output")

func TestScenarioConvergesOnLinearTask(t *testing.T) {
	res, err := Scenario{
		Name:     "converge",
		Seed:     1,
		Clients:  8,
		Rounds:   12,
		Validate: true,
		Net:      NetProfile{NoTransferCost: true},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.History.Rounds) != 12 {
		t.Fatalf("ran %d rounds, want 12", len(res.Result.History.Rounds))
	}
	if res.FinalMSE >= res.InitialMSE/10 {
		t.Fatalf("FedAvg did not converge: MSE %v -> %v", res.InitialMSE, res.FinalMSE)
	}
}

func TestScenarioStragglersNeverBlockRounds(t *testing.T) {
	sc := Scenario{
		Name:          "stragglers",
		Seed:          3,
		Clients:       12,
		Rounds:        4,
		MinUpdates:    8,
		MinClients:    4,
		RoundDeadline: time.Second,
		FedAsyncAlpha: 0.5,
		Compute: ComputeProfile{
			Mean:              100 * time.Millisecond,
			StragglerFraction: 0.25,
			StragglerFactor:   50, // way past every deadline
		},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stragglers) != 3 {
		t.Fatalf("stragglers %v, want 3 of 12", res.Stragglers)
	}
	slow := map[string]bool{}
	for _, s := range res.Stragglers {
		slow[s] = true
	}
	for _, rec := range res.Result.History.Rounds {
		for _, p := range rec.Participants {
			if slow[p] {
				t.Fatalf("round %d aggregated straggler %s in-round", rec.Round, p)
			}
		}
		// Virtual round time is capped by the deadline (plus zero-cost
		// drain), never by the stragglers' 5s compute.
		if rec.Duration > 1100*time.Millisecond {
			t.Fatalf("round %d virtual duration %v exceeds deadline", rec.Round, rec.Duration)
		}
	}
}

func TestScenarioMixedCodecsAccountBytes(t *testing.T) {
	base := Scenario{
		Name:    "codec-bytes",
		Seed:    5,
		Clients: 6,
		Rounds:  3,
		Net:     NetProfile{NoTransferCost: true},
	}
	raw := base
	raw.Codecs = []string{"raw"}
	f32 := base
	f32.Codecs = []string{"f32"}
	rres, err := raw.Run()
	if err != nil {
		t.Fatal(err)
	}
	fres, err := f32.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rres.BytesUp <= 0 || fres.BytesUp <= 0 {
		t.Fatalf("uplink bytes unaccounted: raw=%d f32=%d", rres.BytesUp, fres.BytesUp)
	}
	if float64(fres.BytesUp) > 0.7*float64(rres.BytesUp) {
		t.Fatalf("f32 uplink %d bytes, want well below raw %d", fres.BytesUp, rres.BytesUp)
	}
	var recUp int64
	for _, rec := range rres.Result.History.Rounds {
		if rec.BytesUp <= 0 {
			t.Fatalf("round %d BytesUp unrecorded", rec.Round)
		}
		recUp += rec.BytesUp
	}
	// The stats counter includes 8-byte frame headers and any updates that
	// never aggregated; the History counter is payload bytes that reached
	// the model. Frame overhead aside they must agree.
	if recUp > rres.BytesUp {
		t.Fatalf("History BytesUp %d exceeds simulated uplink total %d", recUp, rres.BytesUp)
	}
}

// TestGolden16HistoryByteStable is the golden determinism test: the pinned
// 16-client mixed-codec scenario must reproduce byte-for-byte identical
// History JSON on every run, at every GOMAXPROCS (CI runs this package
// with -cpu 1,2,4), on every platform. Regenerate with -update after an
// intentional behavior change.
func TestGolden16HistoryByteStable(t *testing.T) {
	res1, err := Golden16Scenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	js1, err := res1.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Golden16Scenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := res2.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatalf("same seed, different History:\nrun1: %s\nrun2: %s", js1, js2)
	}

	golden := filepath.Join("testdata", "golden16_history.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, js1, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(js1, want) {
		t.Fatalf("History diverged from golden file (regenerate with -update if intended)\ngot:  %s\nwant: %s", js1, want)
	}
}

// TestScale200Smoke is the acceptance scenario: 200 clients × 20 rounds
// with 10%% stragglers and 5%% faulty clients completes deterministically
// in well under 30s of real time, simulating minutes of federation wall
// time under the virtual clock.
func TestScale200Smoke(t *testing.T) {
	res, err := ScaleScenario(7).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RealElapsed > 30*time.Second {
		t.Fatalf("200-client scenario took %v real time, want < 30s", res.RealElapsed)
	}
	if got := len(res.Result.History.Rounds); got != 20 {
		t.Fatalf("completed %d rounds, want 20", got)
	}
	if len(res.Stragglers) != 20 || len(res.Faulty) != 10 {
		t.Fatalf("population: %d stragglers / %d faulty, want 20 / 10",
			len(res.Stragglers), len(res.Faulty))
	}
	if res.VirtualElapsed < 10*res.RealElapsed {
		t.Fatalf("virtual time %v did not dominate real time %v", res.VirtualElapsed, res.RealElapsed)
	}
	if res.FinalMSE >= res.InitialMSE/10 {
		t.Fatalf("scale scenario did not converge: MSE %v -> %v", res.InitialMSE, res.FinalMSE)
	}
	// Determinism at scale: a second run reproduces History exactly.
	js1, err := res.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ScaleScenario(7).Run()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := res2.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("200-client scenario is not deterministic across runs")
	}
}

// BenchmarkScale200 measures simulator throughput on the acceptance
// scenario (rounds simulated per second of real time go in BENCH notes).
func BenchmarkScale200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ScaleScenario(7).Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Result.History.Rounds))/res.RealElapsed.Seconds(), "rounds/s")
	}
}
