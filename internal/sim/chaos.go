package sim

import (
	"time"

	"clinfl/internal/fl"
)

// ChaosFlapScenario is the chaos soak spec behind the reconciliation
// golden test: 24 clients × 12 rounds under the reconciliation control
// plane, with two scripted connectivity waves on top of the usual fault
// draws — a 25% flap early in the run and a 50% mass outage later. Dark
// clients fail their connection attempts and their recovery probes until
// the wave passes, so the run exercises the full control-plane surface:
// requeued re-assignment with substitution, health demotion out of the
// sample pool, probe-paced rejoin, and degraded partial finalization
// when the mass wave squeezes a round below MinUpdates. Under the
// virtual clock the whole soak — including its parks and deadline
// rounds — is a pure function of the seed; its History digest is pinned
// in testdata and checked at -cpu 1,2,4. Do not re-tune casually.
func ChaosFlapScenario(seed int64) Scenario {
	return Scenario{
		Name:           "chaos-flap-24",
		Seed:           seed,
		Clients:        24,
		Rounds:         16,
		SampleFraction: 0.75,
		MinUpdates:     14,
		MinClients:     4,
		RoundDeadline:  time.Second,
		FedAsyncAlpha:  0.5,
		Validate:       true,
		Codecs:         []string{"raw", "f32"},
		Compute: ComputeProfile{
			Mean:   100 * time.Millisecond,
			Jitter: 30 * time.Millisecond,
		},
		Faults: FaultProfile{FaultyFraction: 0.125, DropProb: 0.2},
		Reconcile: &fl.ReconcilePolicy{
			RequeueBackoff:    fl.Backoff{Base: 50 * time.Millisecond, Max: 400 * time.Millisecond, Jitter: 0.2, Seed: seed + 1},
			ProbeBackoff:      fl.Backoff{Base: 200 * time.Millisecond, Max: 1600 * time.Millisecond, Jitter: 0.2, Seed: seed + 2},
			MaxAssignAttempts: 3,
			Substitute:        true,
			MaxPark:           5 * time.Second,
		},
		Flaps: []FlapWave{
			{From: 400 * time.Millisecond, Until: 900 * time.Millisecond, Fraction: 0.25},
			{From: 1500 * time.Millisecond, Until: 2800 * time.Millisecond, Fraction: 0.75},
		},
	}
}
