package sim

import (
	"fmt"

	"clinfl/internal/tensor"
)

// LinearTask parameterizes the synthetic federated learning problem the
// simulator trains: each client holds a shard of a noisy linear regression
// y = x·w* + b*, with per-client heterogeneity (a client-specific tilt of
// the ground truth, the non-IID-ness knob). Linear least squares keeps the
// per-round compute trivial — scenario cost is dominated by the simulated
// system dynamics, not the model — while still giving FedAvg/FedAsync a
// real convergence signal to verify.
type LinearTask struct {
	// Dim is the feature dimension (default 8).
	Dim int
	// SamplesMin / SamplesMax bound per-client shard sizes (defaults 20,
	// 60); actual sizes are drawn uniformly, so aggregation weights vary.
	SamplesMin, SamplesMax int
	// Noise is the label-noise amplitude: labels get a uniform
	// [-Noise, Noise) perturbation (default 0.05).
	Noise float64
	// Hetero tilts each client's ground truth by a uniform [-Hetero,
	// Hetero) per-coordinate offset (default 0.2): client optima disagree,
	// so a client that trains alone drifts from the global optimum.
	Hetero float64
	// LR is the local gradient-descent learning rate (default 0.05).
	LR float64
	// Steps is the number of local full-batch GD steps per round
	// (default 4).
	Steps int
}

// withDefaults fills zero fields.
func (t LinearTask) withDefaults() LinearTask {
	if t.Dim <= 0 {
		t.Dim = 8
	}
	if t.SamplesMin <= 0 {
		t.SamplesMin = 20
	}
	if t.SamplesMax < t.SamplesMin {
		t.SamplesMax = 3 * t.SamplesMin
	}
	if t.Noise == 0 {
		t.Noise = 0.05
	}
	if t.Hetero == 0 {
		t.Hetero = 0.2
	}
	if t.LR <= 0 {
		t.LR = 0.05
	}
	if t.Steps <= 0 {
		t.Steps = 4
	}
	return t
}

// LinearShard is one client's local dataset plus its training hyperparams.
type LinearShard struct {
	task LinearTask
	x    [][]float64
	y    []float64
}

// Samples is the shard size (the client's aggregation weight).
func (s *LinearShard) Samples() int { return len(s.y) }

// Train runs the task's local GD steps starting from the global weights
// and returns the post-training weights plus the final training loss.
// All arithmetic is plain serial float64, so results are bit-identical
// everywhere.
func (s *LinearShard) Train(global map[string]*tensor.Matrix) (map[string]*tensor.Matrix, float64, error) {
	w, b, err := unpackLinear(global, s.task.Dim)
	if err != nil {
		return nil, 0, err
	}
	m := float64(len(s.y))
	gw := make([]float64, s.task.Dim)
	var loss float64
	for step := 0; step < s.task.Steps; step++ {
		for i := range gw {
			gw[i] = 0
		}
		gb := 0.0
		loss = 0
		for i, xi := range s.x {
			pred := b
			for j, xij := range xi {
				pred += xij * w[j]
			}
			r := pred - s.y[i]
			loss += r * r
			for j, xij := range xi {
				gw[j] += r * xij
			}
			gb += r
		}
		loss /= m
		for j := range w {
			w[j] -= s.task.LR * 2 * gw[j] / m
		}
		b -= s.task.LR * 2 * gb / m
	}
	out := InitialLinearWeights(s.task.Dim)
	copy(out["w"].Data(), w)
	out["b"].Data()[0] = b
	return out, loss, nil
}

// Population is a full client population over one ground truth, plus a
// noise-free holdout for scoring the global model.
type Population struct {
	Task   LinearTask
	Shards []*LinearShard

	truth []float64 // dim weights + bias last
	holdX [][]float64
	holdY []float64
}

// NewPopulation generates n client shards and a holdout set from seed.
// Generation order is fixed (truth, holdout, then shards in client-index
// order), so a seed pins every byte of every dataset.
func (t LinearTask) NewPopulation(seed int64, n int) *Population {
	t = t.withDefaults()
	rng := tensor.NewRNG(seed)
	truth := make([]float64, t.Dim+1)
	for i := range truth {
		truth[i] = rng.Float64()*2 - 1
	}
	p := &Population{Task: t, truth: truth}
	const holdout = 256
	p.holdX, p.holdY = genExamples(rng, t, truth, nil, holdout, 0)
	for c := 0; c < n; c++ {
		m := t.SamplesMin + rng.Intn(t.SamplesMax-t.SamplesMin+1)
		tilt := make([]float64, t.Dim)
		for i := range tilt {
			tilt[i] = (rng.Float64()*2 - 1) * t.Hetero
		}
		x, y := genExamples(rng, t, truth, tilt, m, t.Noise)
		p.Shards = append(p.Shards, &LinearShard{task: t, x: x, y: y})
	}
	return p
}

// genExamples draws m examples from the (optionally tilted) ground truth.
func genExamples(rng *tensor.RNG, t LinearTask, truth, tilt []float64, m int, noise float64) ([][]float64, []float64) {
	x := make([][]float64, m)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		xi := make([]float64, t.Dim)
		yi := truth[t.Dim] // bias
		for j := range xi {
			xi[j] = rng.Float64()*2 - 1
			wj := truth[j]
			if tilt != nil {
				wj += tilt[j]
			}
			yi += xi[j] * wj
		}
		if noise > 0 {
			yi += (rng.Float64()*2 - 1) * noise
		}
		x[i] = xi
		y[i] = yi
	}
	return x, y
}

// Eval returns the global model's mean squared error on the noise-free
// holdout (lower is better).
func (p *Population) Eval(weights map[string]*tensor.Matrix) (float64, error) {
	w, b, err := unpackLinear(weights, p.Task.Dim)
	if err != nil {
		return 0, err
	}
	var mse float64
	for i, xi := range p.holdX {
		pred := b
		for j, xij := range xi {
			pred += xij * w[j]
		}
		r := pred - p.holdY[i]
		mse += r * r
	}
	return mse / float64(len(p.holdY)), nil
}

// Holdout returns the noise-free holdout as a design matrix (one example
// per row) and its label vector, for callers that score the global model
// through the tensor kernels (e.g. under reduced eval precision) instead
// of Eval's serial loop.
func (p *Population) Holdout() (*tensor.Matrix, []float64) {
	x := tensor.New(len(p.holdX), p.Task.Dim)
	for i, xi := range p.holdX {
		copy(x.Data()[i*p.Task.Dim:(i+1)*p.Task.Dim], xi)
	}
	return x, append([]float64(nil), p.holdY...)
}

// InitialLinearWeights is the zero starting model for a LinearTask.
func InitialLinearWeights(dim int) map[string]*tensor.Matrix {
	return map[string]*tensor.Matrix{
		"w": tensor.New(1, dim),
		"b": tensor.New(1, 1),
	}
}

// unpackLinear extracts (w, b) from a weight map, copying w so training
// never mutates the caller's global model.
func unpackLinear(weights map[string]*tensor.Matrix, dim int) ([]float64, float64, error) {
	wm, ok := weights["w"]
	if !ok || wm.Rows()*wm.Cols() != dim {
		return nil, 0, fmt.Errorf("sim: weight map missing 1x%d param \"w\"", dim)
	}
	bm, ok := weights["b"]
	if !ok || bm.Rows()*bm.Cols() != 1 {
		return nil, 0, fmt.Errorf("sim: weight map missing 1x1 param \"b\"")
	}
	w := make([]float64, dim)
	copy(w, wm.Data())
	return w, bm.Data()[0], nil
}
