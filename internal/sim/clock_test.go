package sim

import (
	"testing"
	"time"
)

// collectOrder runs n actors with the given virtual sleeps and returns the
// order their completions were observed by a driver Wait loop.
func collectOrder(t *testing.T, sleeps map[string]time.Duration) []string {
	t.Helper()
	vc := NewVirtualClock()
	done := make(chan string, len(sleeps))
	// Spawn in deterministic name order.
	names := []string{"a", "b", "c", "d"}
	for _, name := range names {
		d, ok := sleeps[name]
		if !ok {
			continue
		}
		name, d := name, d
		vc.Go(func() {
			vc.Sleep(d)
			done <- name
		})
	}
	var got []string
	for len(got) < len(sleeps) {
		var v string
		if !vc.Wait(func() bool {
			select {
			case v = <-done:
				return true
			default:
				return false
			}
		}, time.Time{}) {
			t.Fatal("Wait returned deadline with zero deadline")
		}
		got = append(got, v)
	}
	return got
}

func TestVirtualClockFiresInTimeOrder(t *testing.T) {
	got := collectOrder(t, map[string]time.Duration{
		"a": 300 * time.Millisecond,
		"b": 100 * time.Millisecond,
		"c": 200 * time.Millisecond,
	})
	want := []string{"b", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion order %v, want %v", got, want)
		}
	}
}

func TestVirtualClockTiesFireInScheduleOrder(t *testing.T) {
	for run := 0; run < 20; run++ {
		got := collectOrder(t, map[string]time.Duration{
			"a": 50 * time.Millisecond,
			"b": 50 * time.Millisecond,
			"c": 50 * time.Millisecond,
			"d": 50 * time.Millisecond,
		})
		for i, want := range []string{"a", "b", "c", "d"} {
			if got[i] != want {
				t.Fatalf("run %d: tie order %v, want spawn order abcd", run, got)
			}
		}
	}
}

func TestVirtualClockAdvancesNoRealTime(t *testing.T) {
	vc := NewVirtualClock()
	start := vc.Now()
	realStart := time.Now()
	finished := false
	vc.Go(func() {
		vc.Sleep(24 * time.Hour)
		finished = true
	})
	vc.Drain()
	if !finished {
		t.Fatal("actor did not finish")
	}
	if got := vc.Since(start); got != 24*time.Hour {
		t.Fatalf("virtual elapsed %v, want 24h", got)
	}
	if real := time.Since(realStart); real > 2*time.Second {
		t.Fatalf("simulating 24h took %v of real time", real)
	}
}

func TestVirtualClockDeadlineWinsTies(t *testing.T) {
	vc := NewVirtualClock()
	deadline := vc.Now().Add(100 * time.Millisecond)
	done := make(chan struct{}, 1)
	vc.Go(func() {
		vc.Sleep(100 * time.Millisecond) // lands exactly on the deadline
		done <- struct{}{}
	})
	ok := vc.Wait(func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}, deadline)
	if ok {
		t.Fatal("event at the deadline should lose the tie to the deadline")
	}
	if got := vc.Now(); !got.Equal(deadline) {
		t.Fatalf("clock at %v, want the deadline %v", got, deadline)
	}
	vc.Drain() // let the actor finish
}

func TestVirtualClockAfter(t *testing.T) {
	vc := NewVirtualClock()
	ch := vc.After(time.Second)
	fired := false
	vc.Wait(func() bool {
		select {
		case <-ch:
			fired = true
			return true
		default:
			return false
		}
	}, vc.Now().Add(2*time.Second))
	if !fired {
		t.Fatal("After timer did not fire before the 2s deadline")
	}
	if got := vc.Since(epoch); got != time.Second {
		t.Fatalf("After fired at +%v, want +1s", got)
	}
}

func TestVirtualClockDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wait with nothing to advance and no deadline must panic")
		}
	}()
	NewVirtualClock().Wait(func() bool { return false }, time.Time{})
}
