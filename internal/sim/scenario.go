package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"clinfl/internal/fl"
	"clinfl/internal/tensor"
)

// ComputeProfile shapes per-client local-training speed.
type ComputeProfile struct {
	// Mean is the nominal per-round compute time (default 200ms of
	// virtual time); each client's base is drawn from [0.5, 1.5)×Mean.
	Mean time.Duration
	// Jitter adds a fresh uniform [0, Jitter) delay every round.
	Jitter time.Duration
	// StragglerFraction marks this fraction of clients as stragglers
	// whose compute is multiplied by StragglerFactor (default 20×).
	StragglerFraction float64
	StragglerFactor   float64
}

// withDefaults fills zero fields.
func (p ComputeProfile) withDefaults() ComputeProfile {
	if p.Mean <= 0 {
		p.Mean = 200 * time.Millisecond
	}
	if p.StragglerFactor <= 0 {
		p.StragglerFactor = 20
	}
	return p
}

// NetProfile shapes per-client link behavior: every task download and
// update upload pays latency plus serialization time for its encoded
// bytes, so codec choices show up as round-time differences exactly as
// they would on a real WAN.
type NetProfile struct {
	// Latency is the nominal one-way per-message delay (default 10ms);
	// each client's actual latency is drawn from [0.5, 1.5)×Latency.
	Latency time.Duration
	// BytesPerSec is the link bandwidth (default 20 MB/s; 0 keeps the
	// default — use NoTransferCost to disable transfer modeling).
	BytesPerSec int64
	// NoTransferCost turns off transfer-time modeling (bytes are still
	// accounted).
	NoTransferCost bool
}

// withDefaults fills zero fields.
func (p NetProfile) withDefaults() NetProfile {
	if p.Latency <= 0 {
		p.Latency = 10 * time.Millisecond
	}
	if p.BytesPerSec <= 0 {
		p.BytesPerSec = 20 << 20
	}
	return p
}

// FaultProfile scripts client failures.
type FaultProfile struct {
	// FaultyFraction marks this fraction of clients as faulty.
	FaultyFraction float64
	// DropProb is a faulty client's per-round failure probability
	// (default 0.3 when FaultyFraction > 0).
	DropProb float64
	// DropRounds lists rounds on which every faulty client fails
	// outright (a correlated outage).
	DropRounds []int
}

// withDefaults fills zero fields.
func (p FaultProfile) withDefaults() FaultProfile {
	if p.FaultyFraction > 0 && p.DropProb == 0 && len(p.DropRounds) == 0 {
		p.DropProb = 0.3
	}
	return p
}

// FlapWave scripts a correlated connectivity outage: Fraction of the
// roster goes dark for the virtual-time window [From, Until) measured
// from run start. A dark client fails task execution immediately (the
// connection attempt costs one link latency) and fails recovery probes,
// then answers again once the wave passes — the signature workload of
// the reconciliation control plane (Scenario.Reconcile).
type FlapWave struct {
	// From / Until bound the outage window in virtual time since run
	// start (From inclusive, Until exclusive).
	From, Until time.Duration
	// Fraction of the roster affected. Waves pick their victims from the
	// same deterministic role shuffle as stragglers and faulty clients
	// (disjoint from both, roster permitting), so a larger wave's set is
	// a superset of a smaller one's.
	Fraction float64
}

// Scenario is the declarative spec of one simulated federation: N clients
// drawn from data/speed/fault/codec profiles, driving the unmodified
// fl.Controller round loop under a virtual clock.
type Scenario struct {
	// Name labels the scenario in output.
	Name string
	// Seed pins every random choice: datasets, speeds, fault draws,
	// client sampling. Two runs with the same spec and seed produce
	// byte-identical History at any GOMAXPROCS.
	Seed int64
	// Clients is N (default 8); Rounds is E (default 5).
	Clients, Rounds int

	// Federation knobs, mirroring fl.ControllerConfig.
	SampleFraction float64
	MinUpdates     int
	MinClients     int
	RoundDeadline  time.Duration
	// FedAsyncAlpha, when > 0, merges stragglers' late updates with
	// staleness weighting; 0 drops them.
	FedAsyncAlpha float64
	// Validate scores every round's global model on the noise-free
	// holdout (score = -MSE) so History carries a convergence curve.
	Validate bool

	// Codecs cycles uplink codecs across clients by index ("raw", "f32",
	// "topk:0.1", ...); empty means raw everywhere. DownCodec encodes the
	// simulated task downloads (default raw).
	Codecs    []string
	DownCodec string

	// RealClients, when in (0, Clients), enables client multiplexing:
	// only the first RealClients indices hold real data shards and run
	// real local training; every client above the cap is a surrogate that
	// replays calibrated compute-time and byte costs (see surrogate.go)
	// and submits its twin real client's update. Memory and CPU become
	// O(RealClients + sampled-per-round) instead of O(Clients), which is
	// what pushes deterministic scenarios past 100k clients. The system
	// trajectory (sampling, participation, deadlines, failures, bytes,
	// durations) is byte-identical to the fully-real run; model quality is
	// the approximation the surrogate calibration test bounds. 0 (or >=
	// Clients) keeps every client real.
	RealClients int

	// Reconcile, when non-nil, runs the controller with the
	// reconciliation control plane: health state machines, requeued
	// task re-assignment, probes and parking. Nil keeps the legacy
	// single-shot round loop.
	Reconcile *fl.ReconcilePolicy
	// Tier, when non-empty, runs rounds through hierarchical streaming
	// aggregation with these fan-in widths (fl.TierConfig.Aggregators):
	// updates fold into edge-shard partials as they arrive and the root
	// holds O(model) state regardless of Clients. Incompatible with
	// FedAsyncAlpha and Reconcile (fl validates the combination).
	Tier []int
	// Flaps scripts correlated connectivity outages (see FlapWave).
	Flaps []FlapWave

	// Population profiles.
	Task    LinearTask
	Compute ComputeProfile
	Net     NetProfile
	Faults  FaultProfile
}

// withDefaults fills zero fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.Name == "" {
		sc.Name = "scenario"
	}
	if sc.Clients <= 0 {
		sc.Clients = 8
	}
	if sc.Rounds <= 0 {
		sc.Rounds = 5
	}
	if sc.MinClients <= 0 {
		sc.MinClients = 1
	}
	sc.Task = sc.Task.withDefaults()
	sc.Compute = sc.Compute.withDefaults()
	sc.Net = sc.Net.withDefaults()
	sc.Faults = sc.Faults.withDefaults()
	return sc
}

// RunResult is one simulated federation's outcome plus simulator stats.
type RunResult struct {
	// Result is the controller's output, exactly as a real federation
	// would report it; Result.History under the virtual clock carries
	// deterministic virtual durations.
	Result *fl.Result
	// VirtualElapsed is the simulated wall time of the whole federation;
	// RealElapsed is what it actually cost.
	VirtualElapsed, RealElapsed time.Duration
	// BytesUp / BytesDown total the encoded weight payload bytes moved
	// up- and downlink (8-byte frame headers included), summed over all
	// clients including stragglers whose updates arrived late or never.
	BytesUp, BytesDown int64
	// Stragglers / Faulty / Flapping name the clients the profiles and
	// flap waves marked.
	Stragglers, Faulty, Flapping []string
	// InitialMSE / FinalMSE score the zero model and the final global
	// model on the noise-free holdout.
	InitialMSE, FinalMSE float64
}

// HistoryJSON renders the run's History in a canonical (indented,
// key-stable) form — the byte string golden determinism tests compare.
func (r *RunResult) HistoryJSON() ([]byte, error) {
	return json.MarshalIndent(r.Result.History, "", "  ")
}

// simClient is one scenario client: an fl.Executor whose round execution
// pays virtual time for task download, local compute, and update upload,
// and fails per its fault script. A real client (twin == nil surrogate
// path off) trains its own shard and round-trips its update through its
// uplink codec for byte accounting and honest quantization loss; a
// surrogate client replays calibrated byte costs and its twin's training
// result instead — same virtual-time trajectory, none of the per-client
// data or codec work.
type simClient struct {
	name      string
	clock     Clock
	shard     *LinearShard // nil for surrogates
	codec     fl.WeightCodec
	codecName string
	downCodec fl.WeightCodec
	net       NetProfile

	// twin and costs are set only on surrogates.
	twin  *twinState
	costs *CostModel

	computeBase time.Duration
	jitter      time.Duration
	latency     time.Duration

	faulty     bool
	dropProb   float64
	dropRounds []int
	seed       uint64 // per-client draw-stream seed (see surrogate.go)

	// start anchors the client's flap windows; flaps lists the waves
	// covering this client (empty for most of the roster).
	start time.Time
	flaps []FlapWave

	bytesUp, bytesDown *atomic.Int64
}

var _ fl.Executor = (*simClient)(nil)

// Name implements fl.Executor.
func (c *simClient) Name() string { return c.name }

// NumSamples implements fl.Executor.
func (c *simClient) NumSamples() int {
	if c.twin != nil {
		return c.twin.samples
	}
	return c.shard.Samples()
}

// transfer returns the virtual time one message of n payload bytes costs.
func (c *simClient) transfer(n int) time.Duration {
	if c.net.NoTransferCost {
		return 0
	}
	return c.latency + time.Duration(int64(n+8)*int64(time.Second)/c.net.BytesPerSec)
}

// down reports whether a flap wave covers the client at virtual now.
func (c *simClient) down(now time.Time) bool {
	since := now.Sub(c.start)
	for _, w := range c.flaps {
		if since >= w.From && since < w.Until {
			return true
		}
	}
	return false
}

// Probe implements fl.Prober: a flapping client is unreachable while a
// wave covers it and answers one link latency later once it has passed.
func (c *simClient) Probe() error {
	if c.down(c.clock.Now()) {
		c.clock.Sleep(c.latency)
		return fmt.Errorf("sim: %s unreachable (connectivity flap)", c.name)
	}
	c.clock.Sleep(2 * c.latency)
	return nil
}

// ExecuteRound implements fl.Executor.
func (c *simClient) ExecuteRound(round int, global map[string]*tensor.Matrix) (*fl.ClientUpdate, error) {
	// A dark client fails the connection attempt outright: one link
	// latency, no download or compute.
	if c.down(c.clock.Now()) {
		c.clock.Sleep(c.latency)
		return nil, fmt.Errorf("sim: %s down (connectivity flap) on round %d", c.name, round)
	}

	// Task download: real clients encode the actual global weights;
	// surrogates replay the calibrated size (exact — the codecs are
	// shape-determined), so both pay identical virtual transfer time.
	downBytes := 0
	if c.twin != nil {
		downBytes = c.costs.DownBytes
	} else {
		downBlob, err := c.downCodec.Encode(global)
		if err != nil {
			return nil, fmt.Errorf("sim: %s encode task: %w", c.name, err)
		}
		downBytes = len(downBlob)
	}
	c.bytesDown.Add(int64(downBytes + 8))
	c.clock.Sleep(c.transfer(downBytes))

	compute := c.computeBase
	if c.jitter > 0 {
		compute += time.Duration(unitDraw(c.seed, streamJitter, uint64(round)) * float64(c.jitter))
	}
	c.clock.Sleep(compute)

	if c.down(c.clock.Now()) {
		// A wave opened while the task was in flight: the upload is lost.
		return nil, fmt.Errorf("sim: %s dropped mid-round (connectivity flap) on round %d", c.name, round)
	}
	if c.drops(round) {
		return nil, fmt.Errorf("sim: %s faulted on round %d", c.name, round)
	}

	if c.twin != nil {
		// Surrogate: replay the twin's training result (computed once per
		// twin per round) and the calibrated uplink byte cost. No codec
		// round-trip — the quantization noise a lossy codec would add is
		// part of the bounded surrogate error.
		weights, loss, err := c.twin.result(round, global)
		if err != nil {
			return nil, fmt.Errorf("sim: %s surrogate train: %w", c.name, err)
		}
		upBytes := c.costs.UpBytes[c.codecName]
		c.bytesUp.Add(int64(upBytes + 8))
		c.clock.Sleep(c.transfer(upBytes))
		return &fl.ClientUpdate{
			ClientName:   c.name,
			Round:        round,
			Weights:      cloneWeightMap(weights),
			NumSamples:   c.twin.samples,
			TrainLoss:    loss,
			PayloadBytes: upBytes,
			DownBytes:    downBytes,
		}, nil
	}

	weights, loss, err := c.shard.Train(global)
	if err != nil {
		return nil, err
	}
	blob, err := c.codec.Encode(weights)
	if err != nil {
		return nil, fmt.Errorf("sim: %s encode update: %w", c.name, err)
	}
	c.bytesUp.Add(int64(len(blob) + 8))
	c.clock.Sleep(c.transfer(len(blob)))
	decoded, err := fl.DecodeWeights(blob)
	if err != nil {
		return nil, fmt.Errorf("sim: %s decode update: %w", c.name, err)
	}
	return &fl.ClientUpdate{
		ClientName:   c.name,
		Round:        round,
		Weights:      decoded,
		NumSamples:   c.shard.Samples(),
		TrainLoss:    loss,
		PayloadBytes: len(blob),
		DownBytes:    downBytes,
	}, nil
}

// drops decides whether this round fails, from the client's fault script.
func (c *simClient) drops(round int) bool {
	if !c.faulty {
		return false
	}
	for _, r := range c.dropRounds {
		if r == round {
			return true
		}
	}
	return c.dropProb > 0 && unitDraw(c.seed, streamDrop, uint64(round)) < c.dropProb
}

// scenarioSetup is one materialized scenario: the population, the
// executor roster bound to a clock, and the controller config. The soak
// harness rebuilds it per crash segment — the same spec and seed always
// materialize the same roster, so a restarted segment's clients are pure
// re-executions of the crashed one's.
type scenarioSetup struct {
	pop        *Population
	execs      []fl.Executor
	cfg        fl.ControllerConfig
	bytesUp    *atomic.Int64
	bytesDown  *atomic.Int64
	stragglers []string
	faulty     []string
	flapping   []string
	initial    map[string]*tensor.Matrix
}

// build materializes the scenario's deterministic population and roster
// under the given clock. Every random choice is a pure function of the
// spec and seed; the clock only carries virtual time. With RealClients
// set, only the real prefix gets data shards — population generation is a
// fixed-order stream (truth, holdout, shards by index), so the real
// subset's shards are bit-identical to the first RealClients shards of
// the fully-real run.
func (sc Scenario) build(clock Clock) (*scenarioSetup, error) {
	nReal := sc.Clients
	if sc.RealClients > 0 && sc.RealClients < sc.Clients {
		nReal = sc.RealClients
	}
	pop := sc.Task.NewPopulation(sc.Seed, nReal)
	downCodec, err := fl.CodecByName(sc.DownCodec)
	if err != nil {
		return nil, err
	}
	var costs *CostModel
	var twins []*twinState
	if nReal < sc.Clients {
		if costs, err = calibrateCosts(sc, pop, downCodec); err != nil {
			return nil, err
		}
		twins = make([]*twinState, nReal)
		for i, shard := range pop.Shards {
			twins[i] = &twinState{shard: shard, samples: shard.Samples()}
		}
	}
	set := &scenarioSetup{pop: pop, bytesUp: new(atomic.Int64), bytesDown: new(atomic.Int64)}

	// Role assignment: one deterministic shuffle of the client indices,
	// stragglers from the front, faulty clients right after (disjoint).
	rng := tensor.NewRNG(sc.Seed + 104729)
	order := make([]int, sc.Clients)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	nStrag := int(sc.Compute.StragglerFraction * float64(sc.Clients))
	nFaulty := int(sc.Faults.FaultyFraction * float64(sc.Clients))
	if nStrag+nFaulty > sc.Clients {
		nFaulty = sc.Clients - nStrag
	}
	isStraggler := make(map[int]bool, nStrag)
	isFaulty := make(map[int]bool, nFaulty)
	for _, i := range order[:nStrag] {
		isStraggler[i] = true
	}
	for _, i := range order[nStrag : nStrag+nFaulty] {
		isFaulty[i] = true
	}
	// Flap victims come from the same shuffle, right after the faulty
	// block — no extra RNG draws, so legacy scenarios' populations are
	// untouched. Each wave covers a prefix of the pool, so a larger
	// wave's set strictly contains a smaller one's.
	flapPool := order[nStrag+nFaulty:]
	flapsFor := make(map[int][]FlapWave)
	for _, w := range sc.Flaps {
		n := int(w.Fraction * float64(sc.Clients))
		if n > len(flapPool) {
			n = len(flapPool)
		}
		for _, i := range flapPool[:n] {
			flapsFor[i] = append(flapsFor[i], w)
		}
	}

	// Codec objects are shared across clients (stateless), so a 100k-client
	// roster allocates one codec per distinct name, not per client.
	codecByName := map[string]fl.WeightCodec{}
	set.execs = make([]fl.Executor, sc.Clients)
	for i := 0; i < sc.Clients; i++ {
		name := fmt.Sprintf("site-%03d", i)
		codecName := ""
		if len(sc.Codecs) > 0 {
			codecName = sc.Codecs[i%len(sc.Codecs)]
		}
		codec, ok := codecByName[codecName]
		if !ok {
			if codec, err = fl.CodecByName(codecName); err != nil {
				return nil, err
			}
			codecByName[codecName] = codec
		}
		// Per-client randomness (speed, link, jitter, faults) comes from an
		// O(1)-memory hash stream keyed on (scenario seed, client index) —
		// see surrogate.go — so a client's draws are identical whether its
		// neighbors are real or surrogate, and 100k clients cost 8 bytes of
		// RNG state each instead of a ~5KB math/rand source.
		cseed := clientSeed(sc.Seed, i)
		base := time.Duration((0.5 + unitDraw(cseed, streamComputeBase, 0)) * float64(sc.Compute.Mean))
		if isStraggler[i] {
			base = time.Duration(float64(base) * sc.Compute.StragglerFactor)
			set.stragglers = append(set.stragglers, name)
		}
		if isFaulty[i] {
			set.faulty = append(set.faulty, name)
		}
		if len(flapsFor[i]) > 0 {
			set.flapping = append(set.flapping, name)
		}
		c := &simClient{
			name:        name,
			clock:       clock,
			codec:       codec,
			codecName:   codecName,
			downCodec:   downCodec,
			net:         sc.Net,
			computeBase: base,
			jitter:      sc.Compute.Jitter,
			latency:     time.Duration((0.5 + unitDraw(cseed, streamLatency, 0)) * float64(sc.Net.Latency)),
			faulty:      isFaulty[i],
			dropProb:    sc.Faults.DropProb,
			dropRounds:  sc.Faults.DropRounds,
			seed:        cseed,
			start:       clock.Now(),
			flaps:       flapsFor[i],
			bytesUp:     set.bytesUp,
			bytesDown:   set.bytesDown,
		}
		if i < nReal {
			c.shard = pop.Shards[i]
		} else {
			c.twin = twins[i%nReal]
			c.costs = costs
		}
		set.execs[i] = c
	}
	sort.Strings(set.stragglers)
	sort.Strings(set.faulty)
	sort.Strings(set.flapping)

	set.cfg = fl.ControllerConfig{
		Rounds:         sc.Rounds,
		MinClients:     sc.MinClients,
		SampleFraction: sc.SampleFraction,
		MinUpdates:     sc.MinUpdates,
		RoundDeadline:  sc.RoundDeadline,
		Seed:           sc.Seed,
		Clock:          clock,
		Reconcile:      sc.Reconcile,
	}
	if sc.FedAsyncAlpha > 0 {
		set.cfg.AsyncAggregator = fl.FedAsync{Alpha: sc.FedAsyncAlpha}
	}
	if len(sc.Tier) > 0 {
		set.cfg.Tier = &fl.TierConfig{Aggregators: sc.Tier}
	}
	if sc.Validate {
		set.cfg.Validate = func(w map[string]*tensor.Matrix) (float64, error) {
			mse, err := pop.Eval(w)
			return -mse, err
		}
	}
	set.initial = InitialLinearWeights(sc.Task.Dim)
	return set, nil
}

// Run executes the scenario under a fresh virtual clock and returns the
// federation result plus simulator stats.
func (sc Scenario) Run() (*RunResult, error) {
	sc = sc.withDefaults()
	clock := NewVirtualClock()
	start := clock.Now()
	realStart := time.Now()

	set, err := sc.build(clock)
	if err != nil {
		return nil, err
	}
	res := &RunResult{Stragglers: set.stragglers, Faulty: set.faulty, Flapping: set.flapping}
	res.InitialMSE, err = set.pop.Eval(set.initial)
	if err != nil {
		return nil, err
	}
	ctrl, err := fl.NewController(set.cfg, set.execs)
	if err != nil {
		return nil, err
	}
	out, err := ctrl.Run(context.Background(), set.initial)
	if err != nil {
		return nil, fmt.Errorf("sim: scenario %s: %w", sc.Name, err)
	}
	// Let stragglers still in flight finish in virtual time, so every
	// spawned actor exits and their uplink bytes are fully accounted.
	clock.Drain()

	res.Result = out
	res.VirtualElapsed = clock.Since(start)
	res.RealElapsed = time.Since(realStart)
	res.BytesUp = set.bytesUp.Load()
	res.BytesDown = set.bytesDown.Load()
	res.FinalMSE, err = set.pop.Eval(out.FinalWeights)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ScaleScenario is the acceptance-scale spec: 200 clients × 20 rounds
// with 10% stragglers (20× slower than the deadline allows), 5% faulty
// clients, mixed raw/f32 codecs, deadline-based partial aggregation and
// FedAsync late merging. Under the virtual clock it simulates roughly an
// hour of federation wall time in a couple of seconds of real time.
func ScaleScenario(seed int64) Scenario {
	return Scenario{
		Name:           "scale-200",
		Seed:           seed,
		Clients:        200,
		Rounds:         20,
		SampleFraction: 0.5,
		MinUpdates:     80,
		MinClients:     20,
		RoundDeadline:  2 * time.Second,
		FedAsyncAlpha:  0.5,
		Validate:       true,
		Codecs:         []string{"raw", "f32"},
		Compute: ComputeProfile{
			Mean:              200 * time.Millisecond,
			Jitter:            100 * time.Millisecond,
			StragglerFraction: 0.10,
			StragglerFactor:   20,
		},
		Faults: FaultProfile{FaultyFraction: 0.05, DropProb: 0.3},
	}
}

// TierScenario is the hierarchical-aggregation spec: clients clients (10k
// in the pinned digest test) fold through a 64-edge, 8-regional tier into
// the root, with surrogate multiplexing keeping training cost at 64 real
// shards. Full participation and no faults: every round's tier accounting
// (TierPartials, TierBytesUp, TierResidentBytes) is exercised at scale,
// and TierResidentBytes is the memory-independence evidence — it tracks
// the model size, not the roster size.
func TierScenario(seed int64, clients int) Scenario {
	return Scenario{
		Name:        "tier",
		Seed:        seed,
		Clients:     clients,
		Rounds:      8,
		RealClients: 64,
		MinClients:  1,
		Validate:    true,
		Tier:        []int{64, 8},
		Compute: ComputeProfile{
			Mean:   100 * time.Millisecond,
			Jitter: 50 * time.Millisecond,
		},
	}
}

// Golden16Scenario is the pinned mixed-codec spec behind the golden
// determinism test: 16 clients, every codec in the negotiation set, a
// deadline tight enough to strand its stragglers, and fault injection on.
// Do not re-tune casually — its History JSON is checked in byte-for-byte.
func Golden16Scenario() Scenario {
	return Scenario{
		Name:           "golden-16",
		Seed:           42,
		Clients:        16,
		Rounds:         6,
		SampleFraction: 0.75,
		MinUpdates:     8,
		MinClients:     4,
		RoundDeadline:  1500 * time.Millisecond,
		FedAsyncAlpha:  0.5,
		Validate:       true,
		Codecs:         []string{"raw", "f32", "topk:0.25"},
		Compute: ComputeProfile{
			Mean:              150 * time.Millisecond,
			Jitter:            50 * time.Millisecond,
			StragglerFraction: 0.25,
			StragglerFactor:   15,
		},
		Faults: FaultProfile{FaultyFraction: 0.125, DropProb: 0.25},
	}
}
