//go:build race

package plan

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
