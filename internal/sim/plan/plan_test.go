package plan

import (
	"bytes"
	"testing"
	"time"

	"clinfl/internal/sim"
)

// smallGrid is a cheap 2×2×2 sweep for driver-level tests.
func smallGrid() Grid {
	return Grid{
		Name:            "small",
		Seed:            3,
		Clients:         []int{12, 24},
		Codecs:          []string{"raw", "int8"},
		Deadlines:       []time.Duration{800 * time.Millisecond, 2 * time.Second},
		SampleFractions: []float64{0.5},
		QuorumFractions: []float64{0.5},
		Rounds:          3,
		RealClients:     6,
		FedAsyncAlpha:   0.5,
		Compute: sim.ComputeProfile{
			Mean:              150 * time.Millisecond,
			Jitter:            50 * time.Millisecond,
			StragglerFraction: 0.25,
			StragglerFactor:   15,
		},
		Faults: sim.FaultProfile{FaultyFraction: 0.1, DropProb: 0.25},
	}
}

func TestCellsEnumerateInGridOrder(t *testing.T) {
	cells := smallGrid().Cells()
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	// Nested-loop order: clients outermost, quorum innermost.
	if cells[0].Clients != 12 || cells[0].Codec != "raw" || cells[0].Deadline != 800*time.Millisecond {
		t.Fatalf("unexpected first cell %+v", cells[0])
	}
	if cells[1].Deadline != 2*time.Second {
		t.Fatalf("deadline should vary before codec: %+v", cells[1])
	}
	if cells[4].Clients != 24 {
		t.Fatalf("clients should be the outermost axis: %+v", cells[4])
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key()] {
			t.Fatalf("duplicate cell key %q", c.Key())
		}
		seen[c.Key()] = true
		if c.Seed < 0 {
			t.Fatalf("cell %q has negative seed %d", c.Key(), c.Seed)
		}
	}
}

// Cell seeds must be a pure function of (grid seed, cell parameters) so a
// grid edit — adding a codec, dropping a deadline — never silently
// reshuffles the remaining cells' scenarios.
func TestCellSeedsStableUnderGridEdits(t *testing.T) {
	base := smallGrid()
	seeds := map[string]int64{}
	for _, c := range base.Cells() {
		seeds[c.Key()] = c.Seed
	}
	edited := smallGrid()
	edited.Codecs = []string{"int8", "raw", "topk:0.25"} // reordered + grown
	edited.Deadlines = edited.Deadlines[:1]              // shrunk
	for _, c := range edited.Cells() {
		if want, ok := seeds[c.Key()]; ok && c.Seed != want {
			t.Fatalf("cell %q seed drifted under grid edit: %d -> %d", c.Key(), want, c.Seed)
		}
	}
}

func TestQuorumSizing(t *testing.T) {
	g := smallGrid()
	sc := g.Scenario(Cell{Clients: 100, SampleFraction: 0.05, QuorumFraction: 0.5, Codec: "raw"})
	// 5 sampled per round, half of them as quorum.
	if sc.MinUpdates != 2 || sc.MinClients != 2 {
		t.Fatalf("quorum: MinUpdates %d MinClients %d, want 2/2", sc.MinUpdates, sc.MinClients)
	}
	sc = g.Scenario(Cell{Clients: 10, SampleFraction: 0, QuorumFraction: 0.5, Codec: "raw"})
	if sc.MinUpdates != 5 {
		t.Fatalf("sampling off: MinUpdates %d, want 5 (half the roster)", sc.MinUpdates)
	}
	sc = g.Scenario(Cell{Clients: 4, SampleFraction: 0.1, QuorumFraction: 0.1, Codec: "raw"})
	if sc.MinUpdates != 1 {
		t.Fatalf("quorum floor: MinUpdates %d, want 1", sc.MinUpdates)
	}
}

// The sweep driver fans cells across pool workers; the report must come
// out in grid order with every cell populated, and two sweeps of the same
// grid must serialize identically (JSON and markdown).
func TestSweepDeterministicAcrossRuns(t *testing.T) {
	rep1, _, err := smallGrid().Run()
	if err != nil {
		t.Fatal(err)
	}
	cells := smallGrid().Cells()
	if len(rep1.Cells) != len(cells) {
		t.Fatalf("report has %d cells, want %d", len(rep1.Cells), len(cells))
	}
	for i, c := range rep1.Cells {
		if c.Key() != cells[i].Key() {
			t.Fatalf("cell %d out of order: %q, want %q", i, c.Key(), cells[i].Key())
		}
		if c.Rounds == 0 || c.VirtualSeconds == 0 {
			t.Fatalf("cell %q looks unpopulated: %+v", c.Key(), c)
		}
		if c.UpBytesPerRound == 0 || c.DownBytesPerRound == 0 {
			t.Fatalf("cell %q has no byte accounting: %+v", c.Key(), c)
		}
	}
	rep2, _, err := smallGrid().Run()
	if err != nil {
		t.Fatal(err)
	}
	js1, err := rep1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := rep2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("sweep JSON not deterministic across runs")
	}
	if rep1.Markdown() != rep2.Markdown() {
		t.Fatal("sweep markdown not deterministic across runs")
	}
}
