package plan

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// CellResult is one swept cell's capacity summary. Every field is a pure
// function of the cell's scenario spec and seed: durations are virtual,
// counters are deterministic, and no wall-clock or host-dependent value
// is ever recorded — which is what lets the golden reports under
// docs/capacity/ replay byte-identically at -cpu 1,2,4.
type CellResult struct {
	Cell
	// Rounds is the number of rounds actually completed (early stop can
	// trim it below the grid's configured count).
	Rounds int
	// VirtualSeconds is the federation's simulated wall time.
	VirtualSeconds float64
	// RoundsPerSecond is round throughput in virtual time — the planner's
	// headline capacity number.
	RoundsPerSecond float64
	// MeanParticipants is the average in-round (pre-deadline) aggregation
	// cohort size.
	MeanParticipants float64
	// UpBytesPerRound / DownBytesPerRound average the encoded payload
	// bytes moved per round in each direction, frame headers included,
	// over all clients (stragglers' late uploads count).
	UpBytesPerRound   float64
	DownBytesPerRound float64
	// StragglerExclusionRate is the fraction of sampled task assignments
	// whose updates missed the round deadline (arriving late, to be
	// staleness-merged or dropped).
	StragglerExclusionRate float64
	// FailureRate is the fraction of sampled task assignments that
	// errored outright.
	FailureRate float64
	// InitialMSE / FinalMSE score the zero model and the final global
	// model on the noise-free holdout — the accuracy axis of the
	// accuracy-vs-deadline curves.
	InitialMSE float64
	FinalMSE   float64
}

// Report is a completed sweep: grid identity plus one CellResult per cell
// in grid order.
type Report struct {
	// Name and Seed identify the grid; Rounds and RealClients echo the
	// shared scenario shape.
	Name        string
	Seed        int64
	Rounds      int
	RealClients int
	Cells       []CellResult
}

// JSON renders the report canonically (indented, key-stable, trailing
// newline) — the machine-readable golden format.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// mb formats a byte count as mebibytes.
func mb(b float64) string { return fmt.Sprintf("%.3f", b/(1<<20)) }

// pct formats a rate as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// Markdown renders the human-readable capacity report: one capacity table
// per client count, then accuracy-vs-deadline curves per (clients, codec)
// pair. Output is deterministic byte-for-byte for a given report.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Capacity report: %s\n\n", r.Name)
	fmt.Fprintf(&b, "Grid seed %d; %d rounds per cell; %d real clients multiplexed per scenario (surrogates replay calibrated costs); %d cells.\n\n",
		r.Seed, r.Rounds, r.RealClients, len(r.Cells))
	b.WriteString("All durations and rates are virtual time — deterministic under the simulator's clock, independent of host speed and GOMAXPROCS. Regenerate with `go test ./internal/sim/plan -run TestCapacityBaselineGolden -update` or inspect interactively with `flsim -exp capacity`.\n")

	for _, n := range sortedClients(r.Cells) {
		fmt.Fprintf(&b, "\n## %d clients\n\n", n)
		b.WriteString("| codec | deadline | sample | quorum | rounds/s | participants/round | MiB up/round | MiB down/round | excluded | failed | final MSE |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
		for _, c := range r.Cells {
			if c.Clients != n {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %g | %g | %.3f | %.1f | %s | %s | %s | %s | %.5f |\n",
				c.Codec, c.Deadline, c.SampleFraction, c.QuorumFraction,
				c.RoundsPerSecond, c.MeanParticipants,
				mb(c.UpBytesPerRound), mb(c.DownBytesPerRound),
				pct(c.StragglerExclusionRate), pct(c.FailureRate), c.FinalMSE)
		}
	}

	deadlines := sortedDeadlines(r.Cells)
	if len(deadlines) > 1 {
		b.WriteString("\n## Accuracy vs deadline\n\n")
		b.WriteString("Final holdout MSE (lower is better) as the round deadline tightens: tighter deadlines exclude more stragglers from in-round aggregation, trading convergence for throughput.\n\n")
		b.WriteString("| clients | codec |")
		for _, d := range deadlines {
			fmt.Fprintf(&b, " %s |", d)
		}
		b.WriteString("\n|---|---|")
		for range deadlines {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for _, n := range sortedClients(r.Cells) {
			for _, codec := range sortedCodecs(r.Cells) {
				row := make(map[time.Duration]float64, len(deadlines))
				found := false
				for _, c := range r.Cells {
					if c.Clients == n && c.Codec == codec {
						row[c.Deadline] = c.FinalMSE
						found = true
					}
				}
				if !found {
					continue
				}
				fmt.Fprintf(&b, "| %d | %s |", n, codec)
				for _, d := range deadlines {
					if v, ok := row[d]; ok {
						fmt.Fprintf(&b, " %.5f |", v)
					} else {
						b.WriteString(" — |")
					}
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}
