package plan

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden capacity report under docs/capacity/")

// goldenDir is the published capacity-report directory at the repo root —
// the goldens double as operator-facing docs, so they live under docs/
// rather than testdata/.
func goldenDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "..", "docs", "capacity"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCapacityBaselineGolden sweeps the pinned Baseline grid — 24 cells,
// half of them 100k-client scenarios — and requires the checked-in JSON
// and markdown reports to match byte-for-byte. CI runs this at -cpu 1,2,4
// and regenerates with -update to fail on drift, so the published report
// can never fall out of sync with the code that produces it.
func TestCapacityBaselineGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("baseline sweep skipped under the race detector (100k-client rosters)")
	}
	if testing.Short() {
		t.Skip("baseline sweep skipped in -short mode")
	}
	rep, elapsed, err := Baseline().Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("swept %d cells in %v real time", len(rep.Cells), elapsed)
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	md := []byte(rep.Markdown())

	dir := goldenDir(t)
	jsonPath := filepath.Join(dir, "baseline.json")
	mdPath := filepath.Join(dir, "baseline.md")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mdPath, md, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s", jsonPath, mdPath)
		return
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if string(js) != string(wantJSON) {
		t.Errorf("baseline.json drifted from the checked-in report; regenerate with -update and review the diff")
	}
	wantMD, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if string(md) != string(wantMD) {
		t.Errorf("baseline.md drifted from the checked-in report; regenerate with -update and review the diff")
	}
}
