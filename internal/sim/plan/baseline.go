package plan

import (
	"time"

	"clinfl/internal/sim"
)

// Baseline is the pinned capacity-planning grid behind the checked-in
// report under docs/capacity/: the paper's 200-client acceptance scale
// and the 100k-client planner scale, crossed with every uplink codec in
// the negotiation set and three round deadlines around the straggler
// knee. 24 cells; the heavy half samples 5000 participants per round.
// The golden test regenerates docs/capacity/baseline.{json,md} from this
// grid — change it deliberately and regenerate with -update.
func Baseline() Grid {
	return Grid{
		Name:            "baseline",
		Seed:            7,
		Clients:         []int{200, 100_000},
		Codecs:          []string{"raw", "f32", "int8", "topk:0.25"},
		Deadlines:       []time.Duration{700 * time.Millisecond, 1500 * time.Millisecond, 3 * time.Second},
		SampleFractions: []float64{0.05},
		QuorumFractions: []float64{0.5},
		Rounds:          5,
		RealClients:     64,
		FedAsyncAlpha:   0.5,
		Compute: sim.ComputeProfile{
			Mean:              200 * time.Millisecond,
			Jitter:            100 * time.Millisecond,
			StragglerFraction: 0.10,
			StragglerFactor:   20,
		},
		Faults: sim.FaultProfile{FaultyFraction: 0.05, DropProb: 0.3},
	}
}
